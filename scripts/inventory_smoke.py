#!/usr/bin/env python
"""Smoke test of the continuous-inventory engine's asyncio session layer.

Drives 32 concurrent :class:`InventorySession`s (HPP / TPP / EHPP mix,
incremental re-planning) over churning populations for several epochs,
multiplexed through one :class:`AsyncInventoryService` so the
per-epoch polls execute as lockstep DES batches, then checks:

1. every session completes every epoch (32 x EPOCHS reports);
2. the service actually multiplexed (some batch held > 1 session) and
   executed exactly one poll per session-epoch;
3. epoch polls detect the planted gone-missing tags: across sessions,
   every tag the churn model silenced and never returned is in its
   session's final believed-missing set;
4. a spot-checked session replayed synchronously (no service, no
   batching) produces bit-identical reports.

Runs under both kernel legs in CI (``REPRO_KERNELS=numpy|numba``).
Exits non-zero with a diagnostic on the first violated expectation.
Usage: ``python scripts/inventory_smoke.py`` (PYTHONPATH must include
``src``).
"""

from __future__ import annotations

import asyncio
import sys
import time

import numpy as np

from repro.apps.inventory import (
    AsyncInventoryService,
    InventorySession,
    run_concurrent_sessions,
)
from repro.core.ehpp import EHPP
from repro.core.hpp import HPP
from repro.core.tpp import TPP
from repro.kernels import active_backend
from repro.workloads.inventory import ChurnModel
from repro.workloads.tagsets import uniform_tagset

N_SESSIONS = 32
EPOCHS = 4
SEED = 9


def fail(msg: str) -> None:
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def make_sessions() -> list[InventorySession]:
    protos = [HPP(), TPP(), EHPP()]
    return [
        InventorySession(
            protos[i % 3],
            uniform_tagset(40 + 2 * i, np.random.default_rng(50 + i)),
            seed=i,
        )
        for i in range(N_SESSIONS)
    ]


def main() -> int:
    churn = ChurnModel(arrival_rate=0.03, departure_rate=0.01,
                       missing_rate=0.02, return_rate=0.0)
    service = AsyncInventoryService()
    sessions = make_sessions()
    t0 = time.perf_counter()
    reports = asyncio.run(run_concurrent_sessions(
        sessions, [churn] * N_SESSIONS, EPOCHS, service, seed=SEED))
    elapsed = time.perf_counter() - t0

    if len(reports) != N_SESSIONS:
        fail(f"{len(reports)} sessions completed, expected {N_SESSIONS}")
    if any(len(r) != EPOCHS for r in reports):
        fail("a session missed an epoch")
    sizes = [s for _, s in service.executed_batches]
    if sum(sizes) != N_SESSIONS * EPOCHS:
        fail(f"{sum(sizes)} polls executed, "
             f"expected {N_SESSIONS * EPOCHS}")
    if max(sizes) <= 1:
        fail("service never multiplexed concurrent sessions")

    # every silenced-and-never-returned tag must end up believed missing
    for i, sess in enumerate(sessions):
        truly_absent = {
            int(s) for s in sess.store.slots().tolist()
            if sess.store.status(int(s)) == 1  # STATUS_ABSENT
        }
        undetected = truly_absent - sess.believed_missing
        if undetected:
            fail(f"session {i}: absent tags {sorted(undetected)} "
                 f"never detected missing")

    # sync replay of session 0 must be bit-identical
    replay = InventorySession(
        HPP(), uniform_tagset(40, np.random.default_rng(50)), seed=0)
    rng = np.random.default_rng((SEED, 0, 0xC0FFEE))
    for ep, async_rep in enumerate(reports[0]):
        sync_rep = replay.step(churn.draw(replay.store, rng))
        if (async_rep.detected_missing != sync_rep.detected_missing
                or async_rep.time_us != sync_rep.time_us
                or async_rep.n_retries != sync_rep.n_retries):
            fail(f"async/sync divergence at epoch {ep}")

    detections = sum(len(r.newly_missing) for reps in reports for r in reps)
    print(f"inventory smoke OK ({active_backend()} kernels): "
          f"{N_SESSIONS} sessions x {EPOCHS} epochs in {elapsed:.1f}s, "
          f"{len(service.executed_batches)} lockstep batches "
          f"(largest {max(sizes)}), {detections} missing-tag detections, "
          f"sync replay bit-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
