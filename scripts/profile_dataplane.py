#!/usr/bin/env python3
"""Profile the shared-memory dataplane against the legacy transport.

Times the same cold-cache DES-metric sweep through both transports::

    python scripts/profile_dataplane.py [--n N] [--runs R] [--jobs J]
                                        [--reps K] [--start METHOD]

* ``off``  — ``REPRO_SHM=off`` semantics: a fresh ``ProcessPoolExecutor``
  per sweep, every worker regenerates every cell's tag population from
  seed (the pre-dataplane shipping path);
* ``warm`` — the persistent worker pool plus shared-memory population
  columns, measured after one untimed warm-up sweep (pool birth, kernel
  warm-up, arena publication).

Reports best-of-K wall times, the pool spawn/warm-up cost the warm path
amortises, per-sweep bytes shipped through pickled blobs, arena segment
stats, and the end-to-end speedup — the number the
``benchmarks/test_bench_shm.py`` gate holds at ≥3x.  Run via
``make profile-dataplane`` or with ``PYTHONPATH=src``.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from repro.core.hpp import HPP  # noqa: E402
from repro.experiments import shm  # noqa: E402
from repro.experiments.runner import DESMetric, SweepRunner  # noqa: E402


def _best_of(fn, reps: int) -> tuple[float, object]:
    best = float("inf")
    out = None
    for _ in range(reps):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="profile the shared-memory dataplane")
    parser.add_argument("--n", type=int, default=10_000,
                        help="tags per cell (default 10000)")
    parser.add_argument("--runs", type=int, default=16,
                        help="Monte-Carlo runs, i.e. cells (default 16)")
    parser.add_argument("--jobs", type=int, default=2,
                        help="worker processes (default 2)")
    parser.add_argument("--reps", type=int, default=2,
                        help="best-of repetitions per transport (default 2)")
    parser.add_argument("--start", default=None,
                        choices=("auto", "fork", "spawn", "forkserver"),
                        help="pool start method (default: REPRO_POOL_START)")
    args = parser.parse_args(argv)

    if args.start is not None:
        import os
        os.environ["REPRO_POOL_START"] = args.start
    method = shm.resolve_start_method()
    metric = DESMetric()

    def sweep(runner: SweepRunner, seed: int = 0) -> np.ndarray:
        return runner.sweep_values(HPP(), [args.n], n_runs=args.runs,
                                   seed=seed, metric=metric)

    print(f"# dataplane profile: n={args.n}, runs={args.runs}, "
          f"jobs={args.jobs}, start={method}, best of {args.reps}")

    shm.shutdown_worker_pool()
    shm.close_arena()

    off_runner = SweepRunner(jobs=args.jobs, cache=None, shm=False)
    off_t, off_vals = _best_of(lambda: sweep(off_runner), args.reps)
    off_bytes = off_runner.bytes_shipped // max(args.reps, 1)

    warm_runner = SweepRunner(jobs=args.jobs, cache=None, shm=True)
    t0 = time.perf_counter()
    sweep(warm_runner, seed=1)  # untimed: pool birth + publish + warm-up
    first_sweep = time.perf_counter() - t0
    pool, _ = shm.get_worker_pool(args.jobs)
    spawn_s = pool.spawn_seconds
    warm_runner.bytes_shipped = 0
    warm_t, warm_vals = _best_of(lambda: sweep(warm_runner), args.reps)
    warm_bytes = warm_runner.bytes_shipped // max(args.reps, 1)
    segments, seg_bytes = shm.arena_stats()

    identical = np.array_equal(np.asarray(off_vals), np.asarray(warm_vals))

    print(f"{'transport':<10} {'wall ms':>10} {'bytes/sweep':>12}")
    print(f"{'off':<10} {off_t * 1e3:>10.1f} {off_bytes:>12}")
    print(f"{'warm':<10} {warm_t * 1e3:>10.1f} {warm_bytes:>12}")
    print(f"pool spawn+warmup : {spawn_s * 1e3:.1f} ms "
          f"(first warm sweep total {first_sweep * 1e3:.1f} ms)")
    print(f"arena             : {segments} segments, {seg_bytes} bytes")
    print(f"pool reuses       : {warm_runner.pool_reused}")
    print(f"values identical  : {identical}")
    print(f"speedup           : {off_t / warm_t:.2f}x "
          f"(bench gate requires >= 3x)")

    shm.shutdown_worker_pool()
    shm.close_arena()
    return 0 if identical else 1


if __name__ == "__main__":
    sys.exit(main())
