#!/usr/bin/env python
"""Cross-process smoke test of the persistent sweep-cell cache.

Runs the same small sweep in four *separate* Python processes sharing
one ``--cache-dir``:

1. cold run   — every cell computed (misses only), store written;
2. warm run   — 100% hits, values bit-identical to the cold run;
3. edited run — a comment is appended to a metric-path source file
   (``src/repro/core/hpp.py``), so the code-version fingerprint changes
   and every cell must MISS (the stale-cache bugfix this store exists
   for).  The fingerprint is content-based: a bare ``touch`` would not
   do it;
4. restored run — the edit is reverted; the original entries are still
   on disk (the sweep is below the compaction garbage threshold), so
   the old version's cells hit again.

Exits non-zero with a diagnostic on the first violated expectation.
Usage: ``python scripts/cache_smoke.py [CACHE_DIR]`` (defaults to a
temporary directory; PYTHONPATH must include ``src``).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
HPP_SOURCE = REPO / "src" / "repro" / "core" / "hpp.py"
PROBE = "\n# cache-smoke fingerprint probe (auto-removed)\n"

# the child sweep: 2 protocols x 3 populations x 2 runs = 12 cells,
# planning-only metric, < 64 cells so no compaction drops old versions
CHILD = """
import json, sys
from repro.experiments.runner import SweepRunner, ResultCache
from repro.core.hpp import HPP
from repro.core.tpp import TPP

runner = SweepRunner(cache=ResultCache(sys.argv[1]))
values = {}
for proto in (HPP(), TPP()):
    v = runner.sweep_values(proto, n_values=(50, 80, 120), n_runs=2,
                            metric="avg_vector_bits")
    values[type(proto).__name__] = v.tolist()
runner.cache.flush()
print(json.dumps({"hits": runner.cache.hits,
                  "misses": runner.cache.misses,
                  "values": values}))
"""


def run_child(cache_dir: Path) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get(
        "PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", CHILD, str(cache_dir)],
        capture_output=True, text=True, env=env, cwd=REPO,
    )
    if proc.returncode != 0:
        sys.exit(f"child sweep failed:\n{proc.stderr}")
    return json.loads(proc.stdout.splitlines()[-1])


def expect(cond: bool, message: str) -> None:
    if not cond:
        sys.exit(f"cache smoke FAILED: {message}")


def main() -> None:
    if len(sys.argv) > 1:
        cache_dir = Path(sys.argv[1])
        cache_dir.mkdir(parents=True, exist_ok=True)
        cleanup = None
    else:
        cleanup = tempfile.TemporaryDirectory(prefix="cache-smoke-")
        cache_dir = Path(cleanup.name)

    original = HPP_SOURCE.read_text(encoding="utf-8")
    try:
        cold = run_child(cache_dir)
        expect(cold["misses"] > 0 and cold["hits"] == 0,
               f"cold run expected all misses, got {cold}")
        n_cells = cold["misses"]

        warm = run_child(cache_dir)
        expect(warm["hits"] == n_cells and warm["misses"] == 0,
               f"warm run expected {n_cells} hits / 0 misses, got {warm}")
        expect(warm["values"] == cold["values"],
               "warm values differ from cold values")

        HPP_SOURCE.write_text(original + PROBE, encoding="utf-8")
        edited = run_child(cache_dir)
        expect(edited["misses"] == n_cells and edited["hits"] == 0,
               f"edited-source run expected {n_cells} misses, got {edited}")

        HPP_SOURCE.write_text(original, encoding="utf-8")
        restored = run_child(cache_dir)
        expect(restored["hits"] == n_cells and restored["misses"] == 0,
               f"restored-source run expected {n_cells} hits, "
               f"got {restored}")
        expect(restored["values"] == cold["values"],
               "restored values differ from cold values")
    finally:
        HPP_SOURCE.write_text(original, encoding="utf-8")
        if cleanup is not None:
            cleanup.cleanup()

    print(f"cache smoke OK: {n_cells} cells; cold miss -> warm hit -> "
          "edit invalidates -> restore re-hits")


if __name__ == "__main__":
    main()
