#!/usr/bin/env python
"""End-to-end smoke test of the distributed sweep dispatch path.

Boots two real ``repro-rfid hostagent`` processes on ephemeral
localhost ports, then checks the acceptance contract from three angles:

1. a cold-cache sweep dispatched over ``REPRO_HOSTS`` produces values
   *and* persisted ``cells-*.seg`` CellStore segments byte-for-byte
   identical to the plain local-pool run, with every computed shard
   actually served remotely;
2. SIGKILLing one agent mid-sweep (after the dispatcher has connected
   to it) never loses or duplicates a cell: the sweep completes with
   identical values, identical store bytes, and a non-zero failover
   count;
3. teardown is clean — no agent port is left listening (a fork-started
   pool worker inheriting the listener would keep it alive) and no
   ``repro-shm-*`` segment is left in ``/dev/shm``.

Exits non-zero with a diagnostic on the first violated expectation.
Usage: ``python scripts/distributed_smoke.py`` (PYTHONPATH must include
``src``; skips cleanly when ``/dev/shm`` is unavailable).
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.experiments import remote  # noqa: E402

# the child sweep: DES + planning metrics over 2 populations x 4 runs.
# argv: cache_dir [kill_pid] — with kill_pid the child connects the
# dispatcher first (so the doomed agent is a live, shard-carrying
# connection), SIGKILLs that agent, then sweeps through the wreckage.
CHILD = """
import json, os, signal, sys
from repro.core.hpp import HPP
from repro.core.tpp import TPP
from repro.experiments import remote, shm
from repro.experiments.runner import DESMetric, ResultCache, SweepRunner

hosts = remote.parse_hosts(os.environ.get("REPRO_HOSTS"))
if len(sys.argv) > 2:
    dispatcher = remote.get_dispatcher(hosts)
    assert dispatcher is not None and len(dispatcher.live()) == len(hosts)
    os.kill(int(sys.argv[2]), signal.SIGKILL)

runner = SweepRunner(jobs=2, cache=ResultCache(sys.argv[1]))
values = {}
for proto in (HPP(), TPP()):
    des = runner.sweep_values(proto, n_values=(400, 700), n_runs=4,
                              seed=11, metric=DESMetric(ber=1e-4))
    plan = runner.sweep_values(proto, n_values=(400, 700), n_runs=4,
                               seed=11, metric="time_us")
    values[type(proto).__name__] = {"des": des.tolist(),
                                    "plan": plan.tolist()}
runner.cache.flush()
cov = runner.batch_coverage
remote.close_dispatchers()
shm.shutdown_worker_pool()
shm.close_arena()
print(json.dumps({"hits": runner.cache.hits,
                  "misses": runner.cache.misses,
                  "values": values,
                  "bytes_raw": cov["bytes_raw"],
                  "bytes_shipped": cov["bytes_shipped"],
                  "hosts_live": cov["hosts_live"],
                  "remote_shards": cov["remote_shards"],
                  "failovers": cov["failovers"]}))
"""


def run_child(cache_dir: Path, hosts: str = "",
              kill_pid: int | None = None) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get(
        "PYTHONPATH", "")
    env["REPRO_SHM_MIN_BYTES"] = "0"  # the smoke grid is tiny
    if hosts:
        env["REPRO_HOSTS"] = hosts
    else:
        env.pop("REPRO_HOSTS", None)
    argv = [sys.executable, "-c", CHILD, str(cache_dir)]
    if kill_pid is not None:
        argv.append(str(kill_pid))
    proc = subprocess.run(
        argv, capture_output=True, text=True, env=env, cwd=REPO,
    )
    if proc.returncode != 0:
        sys.exit(f"child sweep (hosts={hosts or 'none'}) failed:\n"
                 f"{proc.stderr}")
    return json.loads(proc.stdout.splitlines()[-1])


def store_bytes(cache_dir: Path) -> dict[str, bytes]:
    return {p.name: p.read_bytes()
            for p in sorted(cache_dir.glob("cells-*.seg"))}


def shm_residue() -> list[str]:
    root = Path("/dev/shm")
    if not root.is_dir():
        return []
    return sorted(p.name for p in root.glob("repro-shm-*"))


def port_open(address: str) -> bool:
    host, _, port = address.rpartition(":")
    try:
        socket.create_connection((host, int(port)), timeout=2.0).close()
        return True
    except OSError:
        return False


def expect(cond: bool, message: str) -> None:
    if not cond:
        sys.exit(f"distributed smoke FAILED: {message}")


def main() -> None:
    if not Path("/dev/shm").is_dir():
        print("distributed smoke SKIPPED: no /dev/shm on this platform")
        return

    before = set(shm_residue())
    agents = [remote.spawn_local_agent(jobs=1) for _ in range(2)]
    procs = [proc for proc, _ in agents]
    addresses = [address for _, address in agents]
    hosts = ",".join(addresses)
    try:
        with tempfile.TemporaryDirectory(prefix="dist-smoke-") as tmp:
            local_dir = Path(tmp) / "local"
            remote_dir = Path(tmp) / "remote"
            failover_dir = Path(tmp) / "failover"
            for d in (local_dir, remote_dir, failover_dir):
                d.mkdir()

            local = run_child(local_dir)
            dist = run_child(remote_dir, hosts=hosts)

            expect(local["values"] == dist["values"],
                   "sweep values differ between local pool and host "
                   "agents")
            expect(dist["hosts_live"] == 2,
                   f"expected 2 live agents, saw {dist['hosts_live']}")
            expect(dist["remote_shards"] > 0,
                   f"no shard was served remotely: {dist}")
            expect(dist["failovers"] == 0,
                   f"healthy agents reported failovers: {dist}")
            expect(dist["misses"] == local["misses"],
                   f"cold runs disagree on cell count: {local['misses']}"
                   f" vs {dist['misses']}")
            expect(store_bytes(local_dir) == store_bytes(remote_dir),
                   "CellStore segments are not byte-identical between "
                   "local and distributed runs")

            # SIGKILL the first agent mid-sweep: the child connects the
            # dispatcher, murders it, then sweeps — the survivor (or
            # the local lane) must absorb every orphaned shard
            doomed = procs[0]
            failover = run_child(failover_dir, hosts=hosts,
                                 kill_pid=doomed.pid)
            doomed.wait(timeout=10)
            expect(failover["values"] == local["values"],
                   "values diverged after killing an agent mid-sweep")
            expect(failover["failovers"] > 0,
                   f"agent kill produced no recorded failover: "
                   f"{failover}")
            expect(failover["misses"] == local["misses"],
                   f"failover run lost or duplicated cells: "
                   f"{failover['misses']} vs {local['misses']}")
            expect(store_bytes(local_dir) == store_bytes(failover_dir),
                   "CellStore segments are not byte-identical after "
                   "failover")
            expect(not port_open(addresses[0]),
                   f"SIGKILLed agent's port {addresses[0]} is still "
                   f"listening (orphaned socket)")
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in procs:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover
                proc.kill()
                proc.wait(timeout=10)

    deadline = time.monotonic() + 5.0
    while any(port_open(a) for a in addresses):
        expect(time.monotonic() < deadline,
               "an agent port is still listening after shutdown")
        time.sleep(0.1)
    leaked = sorted(set(shm_residue()) - before)
    expect(not leaked, f"leaked /dev/shm segments: {leaked}")

    print(f"distributed smoke OK: {local['misses']} cells bit-identical "
          f"local vs 2 agents ({dist['remote_shards']} shards remote, "
          f"{dist['bytes_shipped']} of {dist['bytes_raw']} raw bytes "
          f"shipped); agent SIGKILL absorbed with "
          f"{failover['failovers']} failover(s); no orphaned sockets or "
          f"/dev/shm residue")


if __name__ == "__main__":
    main()
