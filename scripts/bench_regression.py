#!/usr/bin/env python3
"""Bench-regression gate: re-run smoke-size benchmark cases against the
committed ``BENCH_engine.json`` baseline and fail on a >3x slowdown.

Selection: only cases whose committed median falls in a smoke window
(default 1 ms – 250 ms).  Below that, timer noise dominates and a "3x
regression" is a rounding artifact; above it, the gate would make CI
too slow (the machines-backend cases run for tens of seconds each).
Cases whose node id no longer collects (renamed or removed benchmarks)
are reported and skipped rather than failed — the baseline refresh
happens via ``make bench``, not here.

The baseline also records which kernel backend produced it
(``machine_info.kernel_backend``, written by ``scripts/slim_bench.py``;
missing in old baselines means the numpy oracle).  When the current
environment resolves a *different* backend the whole gate is skipped
with a loud note instead of comparing numpy timings against numba
ones — that ratio measures the JIT, not a regression.

It also records the host topology (``machine_info.host_topology``) —
distributed-dispatch cases (``benchmarks/test_bench_remote.py``) scale
with how many cores the dispatcher can reach, so when the current
topology differs from the baseline's those cases are skipped with a
loud note while everything machine-local still gates.

The 3x threshold is deliberately loose: shared CI runners are easily
2x off the baseline machine.  The gate exists to catch order-of-
magnitude accidents (a vectorized path silently falling back to the
scalar one), not single-digit-percent drift.

Usage::

    PYTHONPATH=src python scripts/bench_regression.py [--baseline FILE]
        [--threshold 3.0] [--min-ms 1] [--max-ms 250]
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: benchmark files whose medians depend on the host topology (how many
#: cores the remote dispatcher can reach), not just this machine
_TOPOLOGY_CASES = "test_bench_remote.py"


def _current_backend() -> str:
    sys.path.insert(0, str(REPO / "src"))
    from repro.kernels import active_backend

    return active_backend()


def _collected_ids() -> set[str]:
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", "benchmarks/", "--collect-only", "-q"],
        cwd=REPO, capture_output=True, text=True,
    )
    return {line.strip() for line in proc.stdout.splitlines() if "::" in line}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", type=Path,
                        default=REPO / "BENCH_engine.json")
    parser.add_argument("--threshold", type=float, default=3.0,
                        help="fail when new_median > threshold * baseline")
    parser.add_argument("--min-ms", type=float, default=1.0)
    parser.add_argument("--max-ms", type=float, default=250.0)
    args = parser.parse_args(argv)

    baseline = json.loads(args.baseline.read_text())
    if baseline.get("format") != "slim-bench/1":
        print(f"error: {args.baseline} is not a slim-bench/1 file; "
              f"regenerate it with `make bench`", file=sys.stderr)
        return 2

    skip_topology_cases = False
    base_topology = baseline.get("machine_info", {}).get("host_topology")
    if base_topology is not None:
        sys.path.insert(0, str(REPO / "scripts"))
        from slim_bench import _host_topology

        cur_topology = _host_topology()
        if base_topology != cur_topology:
            skip_topology_cases = True
            print(f"NOTE: baseline was benched on host topology "
                  f"{base_topology!r} but this environment is "
                  f"{cur_topology!r} — distributed-dispatch medians "
                  f"scale with reachable cores, so the "
                  f"{_TOPOLOGY_CASES} cases are skipped, not compared "
                  f"(re-bench on {base_topology!r} or refresh the "
                  f"baseline with `make bench`).")

    base_backend = baseline.get("machine_info", {}).get(
        "kernel_backend", "numpy")
    cur_backend = _current_backend()
    if base_backend != cur_backend:
        print(f"SKIPPED: baseline was benched under the {base_backend!r} "
              f"kernel backend but this environment resolves "
              f"{cur_backend!r} — cross-backend medians measure the JIT, "
              f"not a regression.  Re-bench under {base_backend!r} "
              f"(REPRO_KERNELS={base_backend}) or refresh the baseline "
              f"with `make bench`.")
        return 0

    window = {
        case["fullname"]: case["median"]
        for case in baseline["cases"]
        if args.min_ms / 1e3 <= case["median"] <= args.max_ms / 1e3
        and not (skip_topology_cases
                 and case["fullname"].startswith(_TOPOLOGY_CASES))
    }
    print(f"baseline: {len(baseline['cases'])} cases, "
          f"{len(window)} in the [{args.min_ms:g}ms, {args.max_ms:g}ms] "
          f"smoke window")
    if not window:
        print("nothing to gate")
        return 0

    collected = _collected_ids()
    gated = sorted(name for name in window if name in collected)
    for name in sorted(set(window) - set(gated)):
        print(f"skip (no longer collects): {name}")
    if not gated:
        print("no gated case still collects; refresh the baseline "
              "with `make bench`")
        return 0

    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        out_json = Path(tmp.name)
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", *gated, "--benchmark-only",
         f"--benchmark-json={out_json}", "-q", "--no-header", "-p",
         "no:cacheprovider"],
        cwd=REPO,
    )
    if proc.returncode != 0:
        print("error: gated benchmark run failed", file=sys.stderr)
        return proc.returncode

    fresh = {
        bench["fullname"]: bench["stats"]["median"]
        for bench in json.loads(out_json.read_text())["benchmarks"]
    }
    out_json.unlink()

    failures = []
    for name in gated:
        old = window[name]
        new = fresh.get(name)
        if new is None:  # collected but didn't produce stats (e.g. skipped)
            print(f"skip (no fresh stats): {name}")
            continue
        ratio = new / old
        flag = "FAIL" if ratio > args.threshold else "ok"
        print(f"{flag:>4}  {ratio:5.2f}x  {old * 1e3:8.2f}ms -> "
              f"{new * 1e3:8.2f}ms  {name}")
        if ratio > args.threshold:
            failures.append(name)

    if failures:
        print(f"\n{len(failures)} case(s) regressed by more than "
              f"{args.threshold:g}x", file=sys.stderr)
        return 1
    print(f"\nall {len(gated)} gated cases within {args.threshold:g}x "
          f"of baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
