#!/usr/bin/env python3
"""Slim pytest-benchmark JSON into the committed aggregate format.

``pytest --benchmark-json`` dumps every raw timing sample, which made
the committed ``BENCH_engine.json`` tens of thousands of lines of
mostly noise.  This tool keeps one line per case — the aggregates a
regression check actually reads (median/min/max/mean/stddev plus
sample counts) — so the committed artifact stays a few hundred lines
and diffs stay reviewable.

Usage::

    python scripts/slim_bench.py INPUT [INPUT ...] -o BENCH_engine.json

Inputs may be raw pytest-benchmark files *or* already-slim files (so
the committed baseline can be merged with a fresh partial run); later
inputs win on duplicate case names.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

FORMAT = "slim-bench/1"

#: per-case aggregates carried over from the raw stats block
_STATS = ("median", "min", "max", "mean", "stddev")
_MACHINE = ("node", "machine", "system", "release", "python_version",
            "python_implementation")


def _kernel_backend_info() -> dict:
    """The kernel backend the bench host resolves, for ``machine_info``.

    Timings taken under the numpy oracle and the numba JIT backend are
    not comparable, so the committed baseline records which backend
    produced it (``scripts/bench_regression.py`` refuses cross-backend
    comparisons).  Import failure degrades to an empty dict: slimming a
    bench file must work even without the package on the path.
    """
    import sys as _sys

    _sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    try:
        from repro.kernels import active_backend, numba_version
    except Exception:
        return {}
    out = {"kernel_backend": active_backend()}
    nv = numba_version()
    if nv is not None:
        out["numba"] = nv
    return out


def _host_topology() -> str:
    """The host topology the bench ran under, for ``machine_info``.

    Distributed benches (``test_bench_remote.py``) scale with how many
    cores the dispatcher can reach, so a baseline taken on a different
    topology is not comparable (``scripts/bench_regression.py`` skips
    cross-topology comparisons).  Localhost-agent runs are described by
    the core count; real multi-host rigs set ``REPRO_BENCH_TOPOLOGY``
    to name theirs (e.g. ``3xhost-8cpu``).
    """
    import os

    override = os.environ.get("REPRO_BENCH_TOPOLOGY")
    if override:
        return override
    return f"local-{os.cpu_count() or 1}cpu"


def _slim_machine(machine_info: dict) -> dict:
    out = {k: machine_info[k] for k in _MACHINE if k in machine_info}
    brand = (machine_info.get("cpu") or {}).get("brand_raw")
    if brand:
        out["cpu"] = brand
    out.update(_kernel_backend_info())
    out["host_topology"] = _host_topology()
    return out


def _load_cases(path: Path) -> tuple[dict, dict]:
    """Returns (header fields, {fullname: case dict}) for one input."""
    data = json.loads(path.read_text())
    if data.get("format") == FORMAT:
        return (
            {k: data[k] for k in ("datetime", "machine_info") if k in data},
            {case["fullname"]: case for case in data["cases"]},
        )
    # raw pytest-benchmark layout
    cases = {}
    for bench in data["benchmarks"]:
        stats = bench["stats"]
        case = {"fullname": bench["fullname"]}
        if bench.get("group"):
            case["group"] = bench["group"]
        case.update({k: stats[k] for k in _STATS})
        case["samples"] = stats["rounds"]
        case["iterations"] = stats["iterations"]
        cases[case["fullname"]] = case
    header = {"datetime": data.get("datetime")}
    if "machine_info" in data:
        header["machine_info"] = _slim_machine(data["machine_info"])
    return header, cases


def _render(header: dict, cases: dict) -> str:
    """One line per case, stable order, so diffs read case by case."""
    lines = ["{", f'    "format": {json.dumps(FORMAT)},']
    for key in ("datetime", "machine_info"):
        if header.get(key) is not None:
            lines.append(f'    "{key}": {json.dumps(header[key], sort_keys=True)},')
    lines.append('    "cases": [')
    rows = [
        "        " + json.dumps(cases[name])
        for name in sorted(cases)
    ]
    lines.append(",\n".join(rows))
    lines.append("    ]")
    lines.append("}")
    return "\n".join(lines) + "\n"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("inputs", nargs="+", type=Path,
                        help="raw pytest-benchmark or slim JSON files; "
                             "later inputs win on duplicate cases")
    parser.add_argument("-o", "--output", type=Path, required=True)
    args = parser.parse_args(argv)

    header: dict = {}
    cases: dict = {}
    for path in args.inputs:
        file_header, file_cases = _load_cases(path)
        header.update({k: v for k, v in file_header.items() if v is not None})
        cases.update(file_cases)
    args.output.write_text(_render(header, cases))
    print(f"{args.output}: {len(cases)} cases")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
