#!/usr/bin/env python
"""Cross-process parity smoke test of the shared-memory dataplane.

Runs the same cold-cache sweep in two *separate* Python processes —
one with ``REPRO_SHM=off`` (legacy transport: fresh pool per sweep,
workers regenerate populations from seed) and one with
``REPRO_SHM=auto`` (warm persistent pool, populations attached from
``/dev/shm`` segments) — each into its own ``--cache-dir``, then
checks:

1. the sweep values agree exactly between the two transports;
2. the persisted ``cells-*.seg`` CellStore segments are byte-for-byte
   identical, so the dataplane can never poison the cache;
3. the ``auto`` leg actually used the dataplane (bytes shipped through
   pickled blobs, shared-memory segments published, pool reused on the
   second sweep) while the ``off`` leg provably never touched
   ``multiprocessing.shared_memory``;
4. a cache written by one transport re-hits 100% under the other;
5. no ``repro-shm-*`` segment is left behind in ``/dev/shm``.

Exits non-zero with a diagnostic on the first violated expectation.
Usage: ``python scripts/dataplane_smoke.py`` (PYTHONPATH must include
``src``; skips cleanly when ``/dev/shm`` is unavailable).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# the child sweep: DES + planning metrics over 2 populations x 4 runs,
# 2 workers, run twice so the auto leg exercises warm-pool reuse
CHILD = """
import json, sys
from repro.core.hpp import HPP
from repro.core.tpp import TPP
from repro.experiments import shm
from repro.experiments.runner import DESMetric, ResultCache, SweepRunner

runner = SweepRunner(jobs=2, cache=ResultCache(sys.argv[1]))
values = {}
for proto in (HPP(), TPP()):
    des = runner.sweep_values(proto, n_values=(400, 700), n_runs=4,
                              seed=11, metric=DESMetric(ber=1e-4))
    plan = runner.sweep_values(proto, n_values=(400, 700), n_runs=4,
                               seed=11, metric="time_us")
    values[type(proto).__name__] = {"des": des.tolist(),
                                    "plan": plan.tolist()}
runner.cache.flush()
cov = runner.batch_coverage
shm.shutdown_worker_pool()
shm.close_arena()
print(json.dumps({"hits": runner.cache.hits,
                  "misses": runner.cache.misses,
                  "values": values,
                  "bytes_shipped": cov["bytes_shipped"],
                  "shm_segments": cov["shm_segments"],
                  "pool_reused": cov["pool_reused"],
                  "touches": shm.shared_memory_touches}))
"""


def run_child(cache_dir: Path, mode: str) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get(
        "PYTHONPATH", "")
    env["REPRO_SHM"] = mode
    env["REPRO_SHM_MIN_BYTES"] = "0"  # the smoke grid is tiny
    proc = subprocess.run(
        [sys.executable, "-c", CHILD, str(cache_dir)],
        capture_output=True, text=True, env=env, cwd=REPO,
    )
    if proc.returncode != 0:
        sys.exit(f"child sweep (REPRO_SHM={mode}) failed:\n{proc.stderr}")
    return json.loads(proc.stdout.splitlines()[-1])


def store_bytes(cache_dir: Path) -> dict[str, bytes]:
    return {p.name: p.read_bytes()
            for p in sorted(cache_dir.glob("cells-*.seg"))}


def shm_residue() -> list[str]:
    root = Path("/dev/shm")
    if not root.is_dir():
        return []
    return sorted(p.name for p in root.glob("repro-shm-*"))


def expect(cond: bool, message: str) -> None:
    if not cond:
        sys.exit(f"dataplane smoke FAILED: {message}")


def main() -> None:
    if not Path("/dev/shm").is_dir():
        print("dataplane smoke SKIPPED: no /dev/shm on this platform")
        return

    before = set(shm_residue())
    with tempfile.TemporaryDirectory(prefix="dataplane-smoke-") as tmp:
        off_dir = Path(tmp) / "off"
        auto_dir = Path(tmp) / "auto"
        off_dir.mkdir()
        auto_dir.mkdir()

        off = run_child(off_dir, "off")
        auto = run_child(auto_dir, "auto")

        expect(off["values"] == auto["values"],
               "sweep values differ between REPRO_SHM=off and auto")
        expect(off["misses"] > 0 and auto["misses"] == off["misses"],
               f"cold runs disagree on cell count: {off['misses']} vs "
               f"{auto['misses']}")

        off_bytes = store_bytes(off_dir)
        auto_bytes = store_bytes(auto_dir)
        expect(off_bytes.keys() == auto_bytes.keys(),
               f"CellStore segment names differ: "
               f"{sorted(off_bytes)} vs {sorted(auto_bytes)}")
        expect(off_bytes == auto_bytes,
               "CellStore segments are not byte-identical across "
               "transports")

        expect(off["touches"] == 0 and off["shm_segments"] == 0
               and off["pool_reused"] == 0,
               f"REPRO_SHM=off touched the dataplane: {off}")
        expect(auto["bytes_shipped"] > 0,
               f"auto leg shipped no pickled blobs: {auto}")
        expect(auto["shm_segments"] > 0,
               f"auto leg published no shared-memory segments: {auto}")
        expect(auto["pool_reused"] > 0,
               f"auto leg never reused the warm pool: {auto}")

        # a cache written with the dataplane ON must fully re-hit OFF
        cross = run_child(auto_dir, "off")
        expect(cross["hits"] == off["misses"] and cross["misses"] == 0,
               f"off-transport re-read of auto-written cache expected "
               f"{off['misses']} hits, got {cross}")
        expect(cross["values"] == off["values"],
               "cross-transport cached values differ")

    leaked = sorted(set(shm_residue()) - before)
    expect(not leaked, f"leaked /dev/shm segments: {leaked}")

    n_cells = off["misses"]
    print(f"dataplane smoke OK: {n_cells} cells bit-identical across "
          f"transports; auto leg shipped {auto['bytes_shipped']} bytes "
          f"over {auto['shm_segments']} segments with "
          f"{auto['pool_reused']} warm-pool reuses; no /dev/shm residue")


if __name__ == "__main__":
    main()
