#!/usr/bin/env python3
"""Profile the hot-path kernels across every available backend.

Thin wrapper around :mod:`repro.kernels.profile` so the profiler runs
from a checkout without installing the package::

    python scripts/profile_kernels.py [--repeats N] [--scale F] [--no-bench]

Prints the backend resolution (``REPRO_KERNELS``, numba availability),
the kernel registry, and a best-of-N timing table with per-kernel
speedups of each backend over the numpy oracle.  Also reachable as
``repro-rfid kernels`` once installed.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.kernels.profile import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
