"""Shim for editable installs on environments without the `wheel` package.

All metadata lives in pyproject.toml; setuptools reads it from there.
"""
from setuptools import setup

setup()
