# Convenience targets for the repro workflow.

.PHONY: install test bench bench-full bench-check cache-smoke inventory-smoke dataplane-smoke distributed-smoke profile-dataplane experiments experiments-quick examples clean

install:
	pip install -e . --no-build-isolation

test:
	PYTHONPATH=src python -m pytest tests/

# default bench run: skips the minute-scale slow_bench baselines and
# merges the fresh aggregates over the committed ones (later input
# wins), so the excluded cases keep their recorded numbers
bench:
	PYTHONPATH=src python -m pytest benchmarks/ -m "not slow_bench" --benchmark-only --benchmark-json=.bench_raw.json
	python scripts/slim_bench.py BENCH_engine.json .bench_raw.json -o BENCH_engine.json
	rm -f .bench_raw.json

bench-full:
	PYTHONPATH=src python -m pytest benchmarks/ --benchmark-only --benchmark-json=.bench_raw.json
	python scripts/slim_bench.py .bench_raw.json -o BENCH_engine.json
	rm -f .bench_raw.json

bench-check:
	PYTHONPATH=src python scripts/bench_regression.py

cache-smoke:
	PYTHONPATH=src python scripts/cache_smoke.py

inventory-smoke:
	PYTHONPATH=src python scripts/inventory_smoke.py

dataplane-smoke:
	PYTHONPATH=src python scripts/dataplane_smoke.py

distributed-smoke:
	PYTHONPATH=src python scripts/distributed_smoke.py

profile-dataplane:
	python scripts/profile_dataplane.py

experiments:
	python -m repro.experiments

experiments-quick:
	python -m repro.experiments --quick

examples:
	@for f in examples/*.py; do echo "== $$f =="; python $$f; echo; done

clean:
	rm -rf .pytest_cache .hypothesis src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
