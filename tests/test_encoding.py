"""Tests for the C1G2 symbol-encoding layer."""

import pytest

from repro.phy.encoding import (
    PAPER_PROFILE,
    LinkProfile,
    pie_mean_bit_us,
    pie_symbol_us,
    uplink_bit_us,
)


class TestPIE:
    def test_symbol_lengths(self):
        assert pie_symbol_us(25.0, 0) == 25.0
        assert pie_symbol_us(25.0, 1) == 50.0
        assert pie_symbol_us(12.5, 1, one_ratio=1.5) == pytest.approx(18.75)

    def test_mean_bit(self):
        assert pie_mean_bit_us(25.0) == pytest.approx(37.5)
        assert pie_mean_bit_us(25.0, p_one=0.0) == 25.0
        assert pie_mean_bit_us(25.0, p_one=1.0) == 50.0

    def test_standard_rate_extremes(self):
        # the standard's quoted reader rate range is 26.7-128 kbps:
        # slowest = Tari 25 µs ratio 2.0, fastest = Tari 6.25 µs ratio 1.5
        fast = pie_mean_bit_us(6.25, one_ratio=1.5)
        slow = pie_mean_bit_us(25.0, one_ratio=2.0)
        assert 1e3 / fast == pytest.approx(128.0, abs=0.5)
        assert 1e3 / slow == pytest.approx(26.7, abs=0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            pie_symbol_us(5.0, 0)  # Tari too small
        with pytest.raises(ValueError):
            pie_symbol_us(25.0, 0, one_ratio=2.5)
        with pytest.raises(ValueError):
            pie_symbol_us(25.0, 2)
        with pytest.raises(ValueError):
            pie_mean_bit_us(25.0, p_one=1.5)


class TestUplink:
    def test_fm0_rates(self):
        # FM0 at BLF 40-640 kHz -> 40-640 kbps
        assert 1e3 / uplink_bit_us(40.0, 1) == pytest.approx(40.0)
        assert 1e3 / uplink_bit_us(640.0, 1) == pytest.approx(640.0)

    def test_miller_divides_rate(self):
        assert uplink_bit_us(40.0, 8) == pytest.approx(8 * uplink_bit_us(40.0, 1))
        # Miller-8 at the slowest BLF: the standard's 5 kbps floor
        assert 1e3 / uplink_bit_us(40.0, 8) == pytest.approx(5.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            uplink_bit_us(0.0, 1)
        with pytest.raises(ValueError):
            uplink_bit_us(40.0, 3)


class TestLinkProfile:
    def test_paper_profile_rates(self):
        p = PAPER_PROFILE
        assert p.downlink_bit_us == pytest.approx(37.5)
        assert p.uplink_bit_us == pytest.approx(25.0)
        assert p.blf_khz == pytest.approx(40.0)
        assert p.t2_us == pytest.approx(50.0)

    def test_to_timing_roundtrip(self):
        t = PAPER_PROFILE.to_timing()
        assert t.reader_bit_us == pytest.approx(37.5)
        assert t.tag_bit_us == pytest.approx(25.0)
        assert t.t2_us == pytest.approx(50.0)

    def test_rtcal_definition(self):
        # RTcal = data-0 + data-1 lengths
        p = LinkProfile(tari_us=12.5, one_ratio=1.6, trcal_us=40.0)
        assert p.rtcal_us == pytest.approx(12.5 * 2.6)

    def test_t1_nominal_formula(self):
        p = PAPER_PROFILE
        assert p.t1_us == pytest.approx(max(p.rtcal_us, 10 * 1e3 / p.blf_khz))

    def test_fast_profile_speeds_up_protocols(self):
        from numpy.random import default_rng

        from repro.core.tpp import TPP
        from repro.phy.link import LinkBudget
        from repro.workloads.tagsets import uniform_tagset

        fast = LinkProfile(tari_us=6.25, one_ratio=1.5, dr=8.0,
                           trcal_us=25.0, miller_m=1)
        tags = uniform_tagset(500, default_rng(1))
        plan = TPP().plan(tags, default_rng(2))
        slow_t = LinkBudget(timing=PAPER_PROFILE.to_timing()).plan_us(plan, 1)
        fast_t = LinkBudget(timing=fast.to_timing()).plan_us(plan, 1)
        assert fast_t < slow_t / 4

    def test_invalid_profiles(self):
        with pytest.raises(ValueError):
            LinkProfile(dr=10.0)
        with pytest.raises(ValueError):
            LinkProfile(miller_m=3)
        with pytest.raises(ValueError):
            LinkProfile(trcal_us=1000.0)  # outside [1.1, 3] RTcal
        with pytest.raises(ValueError):
            LinkProfile(t2_tpri=50.0)
