"""Unit + statistical tests for the Tree-based Polling Protocol (§IV)."""

import math

import numpy as np
import pytest

from repro.analysis.tpp_model import global_upper_bound
from repro.core.hpp import HPP
from repro.core.planner import CoveringPolicy
from repro.core.polling_tree import PollingTree
from repro.core.tpp import TPP
from repro.workloads.tagsets import uniform_tagset


class TestTPPPlan:
    def test_everyone_polled_once(self, medium_tags, rng):
        TPP().plan(medium_tags, rng).validate_complete()

    def test_round_bits_equal_tree_nodes(self, medium_tags, rng):
        plan = TPP().plan(medium_tags, rng)
        for r in plan.rounds:
            tree = PollingTree.from_indices(r.extra["singleton_indices"], r.extra["h"])
            assert int(r.poll_vector_bits.sum()) == tree.n_nodes == r.extra["tree_nodes"]

    def test_load_factor_band(self, medium_tags, rng):
        plan = TPP().plan(medium_tags, rng)
        for r in plan.rounds:
            lam = r.extra["n_active"] / (1 << r.extra["h"])
            assert math.log(2) <= lam < 2 * math.log(2)

    def test_per_round_vector_under_bound(self, rng):
        # eq. (16): per-poll average bits < 3.443 in EVERY round with
        # enough singletons for the asymptotics to hold
        tags = uniform_tagset(20_000, rng)
        plan = TPP().plan(tags, rng)
        bound = global_upper_bound()
        for r in plan.rounds:
            if r.n_polls >= 64:
                assert r.poll_vector_bits.mean() < bound + 0.25

    def test_headline_three_bits(self, rng):
        # paper Fig. 10: levels off around 3.06 bits (incl. round inits)
        vals = []
        for run in range(10):
            r = np.random.default_rng(run)
            tags = uniform_tagset(10_000, r)
            vals.append(TPP().plan(tags, r).avg_vector_bits)
        assert np.mean(vals) == pytest.approx(3.1, abs=0.15)

    def test_beats_hpp(self, rng):
        tags = uniform_tagset(5000, rng)
        tpp = TPP().plan(tags, np.random.default_rng(1)).avg_vector_bits
        hpp = HPP().plan(tags, np.random.default_rng(1)).avg_vector_bits
        assert tpp < hpp / 3

    def test_stable_across_population_sizes(self, rng):
        # the paper's headline: w̄ independent of n
        w = []
        for n in (2000, 8000, 32_000):
            tags = uniform_tagset(n, np.random.default_rng(n))
            w.append(TPP().plan(tags, np.random.default_rng(n)).avg_vector_bits)
        assert max(w) - min(w) < 0.35

    def test_segments_never_longer_than_h(self, medium_tags, rng):
        plan = TPP().plan(medium_tags, rng)
        for r in plan.rounds:
            if r.n_polls:
                assert r.poll_vector_bits.max() <= r.extra["h"]
                assert r.poll_vector_bits[0] == r.extra["h"]  # first leaf: full path

    def test_single_tag(self, rng):
        plan = TPP().plan(uniform_tagset(1, rng), rng)
        plan.validate_complete()

    def test_empty_population(self, rng):
        assert TPP().plan(uniform_tagset(0, rng), rng).n_rounds == 0


class TestPolicyAblation:
    def test_covering_policy_is_worse(self, rng):
        """The eq.-15 index length beats HPP's covering length for TPP."""
        tags = uniform_tagset(8000, rng)
        opt = TPP().plan(tags, np.random.default_rng(3)).avg_vector_bits
        cov = TPP(policy=CoveringPolicy()).plan(
            tags, np.random.default_rng(3)
        ).avg_vector_bits
        assert opt < cov
