"""Shared-memory dataplane: arena lifecycle, zero-copy attach,
bit-identity with the dataplane on vs off, and the persistent pool.

The dataplane (:mod:`repro.experiments.shm`) is an invisible transport
optimisation by contract: every float, cache key, and CellStore byte
must be identical with ``REPRO_SHM=auto`` and ``REPRO_SHM=off``, on
every kernel backend, and a crashed worker must never leak a
``/dev/shm`` segment.  These tests pin all of that.
"""

from __future__ import annotations

import os
import pickle
import signal
import subprocess
import sys
from dataclasses import dataclass
from pathlib import Path

import numpy as np
import pytest

from repro.core.hpp import HPP
from repro.core.tpp import TPP
from repro.experiments import shm
from repro.experiments.cellstore import cache_version
from repro.experiments.runner import (
    DESMetric,
    ResultCache,
    SweepRunner,
    _tagset_memo,
    cell_seed_children,
)
from repro.kernels import available_backends, use_backend
from repro.phy.schedule import WireSchedule, compile_plan
from repro.workloads.tagsets import TagSet, uniform_tagset

pytestmark = pytest.mark.skipif(
    not Path("/dev/shm").is_dir(), reason="no POSIX shared memory"
)


def _live_segments() -> set[str]:
    return {p for p in os.listdir("/dev/shm") if p.startswith(shm.SEGMENT_PREFIX)}


@pytest.fixture(autouse=True)
def _clean_dataplane(monkeypatch):
    """Every test runs against a fresh, unbounded-threshold arena and
    leaves no segment or pool behind."""
    monkeypatch.setenv("REPRO_SHM_MIN_BYTES", "0")
    monkeypatch.delenv("REPRO_SHM", raising=False)
    shm.close_arena()
    shm.detach_all()
    before = _live_segments()
    yield
    shm.close_arena()
    shm.detach_all()
    shm.shutdown_worker_pool()
    assert _live_segments() <= before, "test leaked /dev/shm segments"


# ----------------------------------------------------------------------
# arena mechanics
# ----------------------------------------------------------------------
class TestArena:
    def test_publish_attach_round_trip_zero_copy(self):
        arena = shm.ColumnArena(min_bytes=0)
        try:
            cols = {
                "a": np.arange(100, dtype=np.uint64),
                "b": np.linspace(0.0, 1.0, 33),
                "c": np.array([1, -1, 7], dtype=np.int8),
            }
            manifest = arena.publish("k", cols)
            assert manifest is not None
            assert pickle.loads(pickle.dumps(manifest)) == manifest
            views = shm.attach(manifest)
            assert views is not None
            for name, arr in cols.items():
                np.testing.assert_array_equal(views[name], arr)
                assert views[name].dtype == arr.dtype
                assert not views[name].flags.writeable
            # cached attach returns the same views, no second mapping
            assert shm.attach(manifest) is views
        finally:
            shm.detach_all()
            arena.close()

    def test_publish_is_memoised_per_key(self):
        arena = shm.ColumnArena(min_bytes=0)
        try:
            cols = {"a": np.arange(10, dtype=np.int64)}
            m1 = arena.publish("k", cols)
            m2 = arena.publish("k", cols)
            assert m1.segment == m2.segment
            assert arena.segments == 1
        finally:
            arena.close()

    def test_min_bytes_threshold_skips_small_columns(self):
        arena = shm.ColumnArena(min_bytes=1 << 20)
        try:
            assert arena.publish("k", {"a": np.arange(8)}) is None
            assert arena.segments == 0
        finally:
            arena.close()

    def test_byte_budget_evicts_lru(self):
        one_mb = np.zeros(1 << 17, dtype=np.float64)  # 1 MiB
        arena = shm.ColumnArena(max_bytes=int(2.5 * (1 << 20)), min_bytes=0)
        try:
            arena.publish("k0", {"a": one_mb})
            arena.publish("k1", {"a": one_mb})
            arena.manifest("k0")  # refresh k0: k1 becomes LRU
            arena.publish("k2", {"a": one_mb})
            assert arena.manifest("k1") is None, "LRU k1 should be evicted"
            assert arena.manifest("k0") is not None
            assert arena.manifest("k2") is not None
            assert arena.total_bytes <= int(2.5 * (1 << 20))
        finally:
            arena.close()

    def test_attach_gone_segment_returns_none(self):
        arena = shm.ColumnArena(min_bytes=0)
        manifest = arena.publish("k", {"a": np.arange(10)})
        arena.close()  # segment unlinked before the worker attaches
        assert shm.attach(manifest) is None

    def test_double_close_idempotent(self):
        arena = shm.ColumnArena(min_bytes=0)
        arena.publish("k", {"a": np.arange(10)})
        arena.close()
        arena.close()  # must not raise
        assert arena.segments == 0
        shm.close_arena()
        shm.close_arena()  # global variant, equally idempotent

    def test_tagset_round_trip_bit_identical(self):
        tags = uniform_tagset(257, np.random.default_rng(5))
        arena = shm.ColumnArena(min_bytes=0)
        try:
            manifest = arena.publish("tags", tags.columns())
            rebuilt = shm.attach_tagset(manifest)
            np.testing.assert_array_equal(rebuilt.id_hi, tags.id_hi)
            np.testing.assert_array_equal(rebuilt.id_lo, tags.id_lo)
            np.testing.assert_array_equal(rebuilt.id_words, tags.id_words)
            assert len(rebuilt) == len(tags)
            # zero-copy: the rebuilt columns are views over /dev/shm
            assert not rebuilt.id_words.flags.owndata
        finally:
            shm.detach_all()
            arena.close()

    def test_schedule_columns_round_trip(self):
        tags = uniform_tagset(64, np.random.default_rng(1))
        plan = HPP().plan(tags, np.random.default_rng(2))
        sched = compile_plan(plan, reply_bits=4)
        rebuilt = WireSchedule.from_columns(
            sched.protocol, sched.n_tags, sched.columns(), meta=sched.meta,
        )
        for name in WireSchedule._COLUMN_NAMES:
            np.testing.assert_array_equal(
                getattr(rebuilt, name), getattr(sched, name))
        ci, ci2 = sched.cost_index(), rebuilt.cost_index()
        np.testing.assert_array_equal(ci.down_sums, ci2.down_sums)
        np.testing.assert_array_equal(ci.run_count, ci2.run_count)


# ----------------------------------------------------------------------
# crash-safety: orphan sweep and worker death
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_orphan_sweep_reclaims_dead_pid_segments(self):
        # a PID that is certainly dead: a waited-out child
        child = subprocess.Popen([sys.executable, "-c", "pass"])
        child.wait()
        orphan = Path(f"/dev/shm/{shm.SEGMENT_PREFIX}-{child.pid}-000000")
        orphan.write_bytes(b"\0" * 64)
        live = Path(f"/dev/shm/{shm.SEGMENT_PREFIX}-{os.getpid()}-999999")
        live.write_bytes(b"\0" * 64)
        try:
            reclaimed = shm.sweep_orphans()
            assert orphan.name in reclaimed
            assert not orphan.exists()
            assert live.exists(), "own-PID segments must survive the sweep"
        finally:
            live.unlink(missing_ok=True)
            orphan.unlink(missing_ok=True)

    def test_worker_crash_falls_back_and_leaks_nothing(self):
        """SIGKILLing a worker mid-shard breaks the pool; the sweep must
        still complete (in-process fallback, correct values) and closing
        the arena must leave /dev/shm clean."""
        runner = SweepRunner(jobs=2, cache=None, shm=True)
        crash = _CrashMetric(parent_pid=os.getpid())
        values = runner.sweep_values(
            HPP(), [64, 96], n_runs=3, seed=9, metric=crash)
        ref = SweepRunner(jobs=1, cache=None, shm=False).sweep_values(
            HPP(), [64, 96], n_runs=3, seed=9, metric=crash)
        np.testing.assert_array_equal(values, ref)
        shm.close_arena()
        shm.shutdown_worker_pool()
        assert not {
            s for s in _live_segments() if f"-{os.getpid()}-" in s
        }, "crashed-worker sweep left /dev/shm residue"

    def test_broken_pool_is_respawned_next_sweep(self):
        runner = SweepRunner(jobs=2, cache=None, shm=True)
        runner.sweep_values(HPP(), [64, 96], n_runs=3, seed=9,
                            metric=_CrashMetric(parent_pid=os.getpid()))
        # next sweep gets a fresh pool and completes through it
        out = runner.sweep_values(HPP(), [128], n_runs=4, seed=1,
                                  metric="n_rounds")
        ref = SweepRunner(jobs=1, cache=None, shm=False).sweep_values(
            HPP(), [128], n_runs=4, seed=1, metric="n_rounds")
        np.testing.assert_array_equal(out, ref)


@dataclass(frozen=True)
class _CrashMetric:
    """A sweep metric that SIGKILLs any *worker* process it runs in
    (the parent evaluates it normally), forcing BrokenProcessPool."""

    parent_pid: int

    def __call__(self, protocol, tags, seed_seq, budget, info_bits):
        if os.getpid() != self.parent_pid:
            os.kill(os.getpid(), signal.SIGKILL)
        plan = protocol.plan(tags, np.random.default_rng(seed_seq))
        return float(plan.n_rounds)


# ----------------------------------------------------------------------
# the REPRO_SHM=off contract
# ----------------------------------------------------------------------
class TestOffPath:
    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_off_never_touches_shared_memory(self, monkeypatch,
                                             start_method):
        import multiprocessing

        if start_method not in multiprocessing.get_all_start_methods():
            pytest.skip(f"{start_method} unavailable")
        monkeypatch.setenv("REPRO_SHM", "off")
        monkeypatch.setenv("REPRO_POOL_START", start_method)
        before_touches = shm.shared_memory_touches
        before_segments = _live_segments()
        runner = SweepRunner(jobs=2, cache=None)
        runner.sweep_values(HPP(), [64, 96], n_runs=3, seed=2,
                            metric="n_rounds")
        assert runner.shm_enabled is False
        assert shm.shared_memory_touches == before_touches
        assert _live_segments() == before_segments
        assert runner.batch_coverage["shm_segments"] == 0
        assert runner.batch_coverage["pool_reused"] == 0

    def test_env_gate_parsing(self, monkeypatch):
        for raw, expected in [("auto", True), ("on", True), ("1", True),
                              ("off", False), ("0", False), ("no", False)]:
            monkeypatch.setenv("REPRO_SHM", raw)
            assert shm.dataplane_enabled() is expected
        monkeypatch.setenv("REPRO_SHM", "bogus")
        with pytest.raises(ValueError):
            shm.dataplane_enabled()


# ----------------------------------------------------------------------
# bit-identity: values, cache keys, CellStore bytes — on vs off
# ----------------------------------------------------------------------
class TestBitIdentity:
    @pytest.mark.parametrize("backend", available_backends())
    def test_values_and_store_bytes_identical(self, tmp_path, backend):
        """The acceptance contract: same floats, same cache keys, and
        byte-for-byte identical CellStore segments with the dataplane
        on vs off, per kernel backend."""
        grids = {}
        with use_backend(backend):
            for mode in ("off", "on"):
                cache_dir = tmp_path / f"cache-{backend}-{mode}"
                runner = SweepRunner(
                    jobs=2, cache=ResultCache(cache_dir),
                    shm=(mode == "on"),
                )
                des = runner.sweep_values(
                    TPP(), [200, 300], n_runs=4, seed=7,
                    metric=DESMetric(ber=1e-4))
                plan = runner.sweep_values(
                    HPP(), [200, 300], n_runs=4, seed=7, metric="time_us")
                grids[mode] = (des, plan, _store_bytes(cache_dir))
        des_off, plan_off, bytes_off = grids["off"]
        des_on, plan_on, bytes_on = grids["on"]
        np.testing.assert_array_equal(des_on, des_off)
        np.testing.assert_array_equal(plan_on, plan_off)
        assert bytes_on == bytes_off, "CellStore segments diverged"

    def test_on_cache_rehits_off_cache(self, tmp_path):
        """An off-written disk cache is fully served to an on runner
        (same keys), and vice versa — the dataplane never enters keys."""
        cache_dir = tmp_path / "cache"
        writer = SweepRunner(jobs=2, cache=ResultCache(cache_dir), shm=False)
        writer.sweep_values(HPP(), [200], n_runs=4, seed=3, metric="time_us")
        reader = SweepRunner(jobs=2, cache=ResultCache(cache_dir), shm=True)
        reader.sweep_values(HPP(), [200], n_runs=4, seed=3, metric="time_us")
        assert reader.cache.hits == 4 and reader.cache.misses == 0
        assert reader.bytes_shipped == 0  # nothing left to compute

    def test_attached_memo_entry_matches_regeneration(self):
        """The worker-side memo pre-population installs populations
        bit-identical to what the worker would regenerate."""
        runner = SweepRunner(jobs=2, cache=None, shm=True)
        factory = uniform_tagset
        cells = [(300, 0), (300, 1)]
        manifests = runner._publish_tagsets(cells, seed=11,
                                            tagset_factory=factory)
        assert manifests, "publication should succeed with min_bytes=0"
        for (seed, n, run, _), manifest in manifests.items():
            attached = shm.attach_tagset(manifest)
            tag_child, _ = cell_seed_children(seed, n, run)
            regenerated = factory(n, np.random.default_rng(tag_child))
            np.testing.assert_array_equal(attached.id_hi, regenerated.id_hi)
            np.testing.assert_array_equal(attached.id_lo, regenerated.id_lo)
            np.testing.assert_array_equal(
                attached.id_words, regenerated.id_words)


def _store_bytes(cache_dir: Path) -> dict[str, bytes]:
    return {
        p.name: p.read_bytes()
        for p in sorted(cache_dir.glob("cells-*.seg"))
    }


# ----------------------------------------------------------------------
# the persistent pool and the shipping counters
# ----------------------------------------------------------------------
class TestWorkerPool:
    def test_pool_reused_across_sweeps_and_respawned_on_jobs_change(self):
        runner = SweepRunner(jobs=2, cache=None, shm=True)
        runner.sweep_values(HPP(), [100, 150], n_runs=3, seed=0,
                            metric="n_rounds")
        assert runner.pool_reused == 0  # first dispatch spawned it
        runner.sweep_values(HPP(), [100, 150], n_runs=3, seed=1,
                            metric="n_rounds")
        assert runner.pool_reused == 1
        pool, reused = shm.get_worker_pool(2)
        assert reused and pool.jobs == 2
        pool3, reused3 = shm.get_worker_pool(3)
        assert not reused3 and pool3.jobs == 3

    def test_bytes_shipped_counts_pool_dispatch_only(self):
        serial = SweepRunner(jobs=1, cache=None, shm=True)
        serial.sweep_values(HPP(), [100], n_runs=3, seed=0,
                            metric="n_rounds")
        assert serial.bytes_shipped == 0
        pooled = SweepRunner(jobs=2, cache=None, shm=True)
        pooled.sweep_values(HPP(), [100, 150], n_runs=3, seed=0,
                            metric="n_rounds")
        assert pooled.bytes_shipped > 0
        cov = pooled.batch_coverage
        assert cov["bytes_shipped"] == pooled.bytes_shipped
        assert cov["shm_segments"] > 0 and cov["shm_bytes"] > 0

    def test_unpicklable_config_still_falls_back(self):
        """The explicit-blob dispatch preserves the legacy contract:
        a closure tagset factory degrades to in-process, same values."""
        def factory(n, rng):
            return uniform_tagset(n, rng)

        runner = SweepRunner(jobs=2, cache=None, shm=True)
        out = runner.sweep_values(HPP(), [64, 96], n_runs=3, seed=5,
                                  metric="n_rounds",
                                  tagset_factory=factory)
        ref = SweepRunner(jobs=1, cache=None, shm=False).sweep_values(
            HPP(), [64, 96], n_runs=3, seed=5, metric="n_rounds",
            tagset_factory=factory)
        np.testing.assert_array_equal(out, ref)
        assert runner.bytes_shipped == 0

    def test_cache_version_covers_dataplane_source(self):
        """shm.py is on the metric path: editing it must invalidate
        cached cells (the fingerprint hashes its source)."""
        from repro.experiments import cellstore

        assert "experiments/shm.py" in cellstore._METRIC_PATH_MODULES
        assert len(cache_version()) == 16
