"""Unit tests for the C1G2 command-size table."""

import pytest

from repro.phy.commands import CommandSizes, DEFAULT_COMMAND_SIZES, EPC_ID_BITS


def test_epc_length_is_96():
    assert EPC_ID_BITS == 96


def test_paper_defaults():
    c = DEFAULT_COMMAND_SIZES
    assert c.query_rep == 4  # the framing charged per polling vector
    assert c.round_init == 32  # §V-B: per-HPP-round initiation
    assert c.circle_command == 128  # §V-B: EHPP circle command


def test_select_bits_adds_mask():
    c = CommandSizes()
    assert c.select_bits(32) == c.select_header + 32
    assert c.select_bits(0) == c.select_header


def test_select_bits_negative_mask_rejected():
    with pytest.raises(ValueError):
        CommandSizes().select_bits(-1)


@pytest.mark.parametrize(
    "field,value",
    [("query_rep", -1), ("round_init", -4), ("circle_command", 1.5)],
)
def test_invalid_sizes_rejected(field, value):
    with pytest.raises(ValueError):
        CommandSizes(**{field: value})
