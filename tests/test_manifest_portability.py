"""Manifest portability: the inline-columns degrade path and the
attach guard rails.

A :class:`~repro.experiments.shm.SegmentManifest` pickled across a
*machine* boundary cannot assume its ``/dev/shm`` segment is reachable.
These tests pin the off-host contract: inline manifests round-trip
byte-identically under both ``spawn`` and ``fork`` start methods, a
dangling segment name raises loudly when the caller demands resolution
(``missing_ok=False``), and a manifest that disagrees with its
segment's actual size refuses to attach garbage.
"""

from __future__ import annotations

import pickle
from dataclasses import replace
from pathlib import Path

import numpy as np
import pytest

from repro.experiments import shm
from repro.workloads.tagsets import uniform_tagset

pytestmark = pytest.mark.skipif(
    not Path("/dev/shm").is_dir(), reason="no POSIX shared memory"
)


@pytest.fixture(autouse=True)
def _clean_attachments():
    shm.detach_all()
    yield
    shm.detach_all()


def _columns() -> dict[str, np.ndarray]:
    rng = np.random.default_rng(42)
    return {
        "a": rng.integers(0, 2**63, size=311, dtype=np.uint64),
        "b": rng.standard_normal(97),
        "c": rng.integers(-100, 100, size=13, dtype=np.int8),
    }


# ----------------------------------------------------------------------
# the inline degrade path
# ----------------------------------------------------------------------
class TestInlineManifest:
    def test_inline_round_trips_bit_identically(self):
        cols = _columns()
        arena = shm.ColumnArena(min_bytes=0)
        try:
            arena.publish("k", cols)
            inline = arena.inline_manifest("k")
            assert inline is not None
            assert inline.segment == "" and inline.inline is not None
            # survives pickling (what the socket transport does to it)
            inline = pickle.loads(pickle.dumps(inline))
            views = shm.attach(inline)
            for name, arr in cols.items():
                np.testing.assert_array_equal(views[name], arr)
                assert views[name].dtype == arr.dtype
                assert not views[name].flags.writeable
        finally:
            shm.detach_all()
            arena.close()

    def test_inline_attach_never_touches_shared_memory(self):
        cols = _columns()
        arena = shm.ColumnArena(min_bytes=0)
        try:
            arena.publish("k", cols)
            inline = arena.inline_manifest("k")
        finally:
            arena.close()  # the segment is gone; only the bytes remain
        shm.detach_all()
        before = shm.shared_memory_touches
        views = shm.attach(inline)
        assert shm.shared_memory_touches == before
        np.testing.assert_array_equal(views["a"], cols["a"])
        # and the attachment is cached
        assert shm.attach(inline) is views

    def test_inline_bytes_equal_segment_bytes(self):
        """The inline buffer is the published segment verbatim — the
        strongest form of the bit-identity contract."""
        arena = shm.ColumnArena(min_bytes=0)
        try:
            named = arena.publish("k", _columns())
            inline = arena.inline_manifest("k")
            seg = arena._segments[named.segment]
            assert inline.inline == bytes(seg.buf[:named.nbytes])
            assert inline.columns == named.columns
            assert inline.nbytes == named.nbytes
        finally:
            arena.close()

    def test_inline_manifest_unknown_key_is_none(self):
        arena = shm.ColumnArena(min_bytes=0)
        try:
            assert arena.inline_manifest("nope") is None
        finally:
            arena.close()

    @pytest.mark.parametrize("start_method", ["spawn", "fork"])
    def test_cross_process_round_trip(self, start_method):
        """An inline manifest shipped to a *different* process (either
        start method — what a remote host agent's pool does with it)
        rebuilds byte-identical columns."""
        import multiprocessing

        if start_method not in multiprocessing.get_all_start_methods():
            pytest.skip(f"{start_method} unavailable")
        tags = uniform_tagset(501, np.random.default_rng(7))
        arena = shm.ColumnArena(min_bytes=0)
        try:
            arena.publish("tags", tags.columns())
            inline = arena.inline_manifest("tags")
        finally:
            arena.close()  # no live segment: the child sees bytes only
        ctx = multiprocessing.get_context(start_method)
        with ctx.Pool(1) as pool:
            digests = pool.apply(
                _attach_digests, (pickle.dumps(inline),))
        expected = {
            name: arr.tobytes() for name, arr in tags.columns().items()
        }
        assert digests == expected

    def test_tagset_from_inline_manifest(self):
        tags = uniform_tagset(260, np.random.default_rng(3))
        arena = shm.ColumnArena(min_bytes=0)
        try:
            arena.publish("tags", tags.columns())
            inline = arena.inline_manifest("tags")
        finally:
            arena.close()
        rebuilt = shm.attach_tagset(pickle.loads(pickle.dumps(inline)))
        np.testing.assert_array_equal(rebuilt.id_hi, tags.id_hi)
        np.testing.assert_array_equal(rebuilt.id_lo, tags.id_lo)
        np.testing.assert_array_equal(rebuilt.id_words, tags.id_words)


def _attach_digests(manifest_blob: bytes) -> dict[str, bytes]:
    """Child-process worker: attach an inline manifest, return the raw
    column bytes (module-level so ``spawn`` can pickle it)."""
    from repro.experiments import shm as _shm

    views = _shm.attach(pickle.loads(manifest_blob))
    return {name: arr.tobytes() for name, arr in views.items()}


# ----------------------------------------------------------------------
# guard rails: dangling names, stripped manifests, size lies
# ----------------------------------------------------------------------
class TestAttachGuards:
    def test_dangling_segment_raises_when_demanded(self):
        arena = shm.ColumnArena(min_bytes=0)
        manifest = arena.publish("k", {"a": np.arange(10)})
        arena.close()  # unlinked: the name now dangles
        # the legacy contract: None by default (callers regenerate) ...
        assert shm.attach(manifest) is None
        # ... but a caller that *needs* the segment gets a loud error
        with pytest.raises(FileNotFoundError, match="does not exist"):
            shm.attach(manifest, missing_ok=False)

    def test_stripped_manifest_always_raises(self):
        arena = shm.ColumnArena(min_bytes=0)
        try:
            manifest = arena.publish("k", {"a": np.arange(10)})
            stripped = replace(manifest, segment="", inline=None)
            with pytest.raises(ValueError, match="nothing to attach"):
                shm.attach(stripped)
        finally:
            arena.close()

    def test_size_mismatch_refuses_garbage(self):
        """A manifest promising more bytes than its segment holds must
        raise, not silently alias out-of-range memory."""
        arena = shm.ColumnArena(min_bytes=0)
        try:
            manifest = arena.publish("k", {"a": np.arange(64)})
            lying = replace(manifest, nbytes=manifest.nbytes + (1 << 20))
            with pytest.raises(ValueError, match="refusing to attach"):
                shm.attach(lying)
        finally:
            shm.detach_all()
            arena.close()

    def test_column_overrun_refuses_garbage(self):
        arena = shm.ColumnArena(min_bytes=0)
        try:
            manifest = arena.publish("k", {"a": np.arange(64)})
            spec = manifest.columns[0]
            fat = replace(
                manifest,
                columns=(replace(spec, shape=(1 << 22,)),),
            )
            with pytest.raises(ValueError, match="overruns"):
                shm.attach(fat)
        finally:
            shm.detach_all()
            arena.close()

    def test_inline_size_mismatch_refuses_garbage(self):
        arena = shm.ColumnArena(min_bytes=0)
        try:
            arena.publish("k", {"a": np.arange(64)})
            inline = arena.inline_manifest("k")
        finally:
            arena.close()
        truncated = replace(inline, inline=inline.inline[:16])
        with pytest.raises(ValueError, match="refusing to attach"):
            shm.attach(truncated)
