"""Unit tests for wire-time costing (LinkBudget, paper §V-A formulas)."""

import numpy as np
import pytest

from repro.core.base import InterrogationPlan, RoundPlan
from repro.phy.link import LinkBudget, lower_bound_us, plan_wire_time, poll_time_us
from repro.phy.timing import PAPER_TIMING


class TestPollFormula:
    def test_paper_per_poll_formula(self):
        # 37.45*(4+w) + T1 + 25*l + T2  with w=3, l=1
        expected = 37.45 * 7 + 100 + 25 + 50
        assert poll_time_us(3, 1) == pytest.approx(expected)

    def test_cpp_per_tag_time(self):
        # bare 96-bit ID, 1-bit reply -> 3770.2 µs (Table I: 37.70 s / 1e4)
        assert poll_time_us(96, 1, overhead_bits=0) == pytest.approx(3770.2)

    def test_zero_vector(self):
        assert poll_time_us(0, 1) == pytest.approx(37.45 * 4 + 175)


class TestLowerBound:
    def test_paper_lower_bound_1bit(self):
        # (37.45*4 + T1 + 25 + T2) * 1e4 = 3.248 s
        assert lower_bound_us(10_000, 1) / 1e6 == pytest.approx(3.248, abs=1e-3)

    def test_paper_lower_bound_32bit(self):
        assert lower_bound_us(10_000, 32) / 1e6 == pytest.approx(10.998, abs=1e-3)

    def test_scales_linearly_with_n(self):
        assert lower_bound_us(2000, 8) == pytest.approx(2 * lower_bound_us(1000, 8))

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            lower_bound_us(-1, 1)


class TestLinkBudgetSlots:
    def test_empty_slot_full_cost(self):
        b = LinkBudget(empty_slot_full_cost=True)
        assert b.empty_slot_us(4) == pytest.approx(4 * 37.45 + 150)

    def test_empty_slot_short(self):
        b = LinkBudget(empty_slot_full_cost=False)
        assert b.empty_slot_us(4) == pytest.approx(4 * 37.45 + 100 + PAPER_TIMING.t3_us)

    def test_collision_slot_burns_reply(self):
        b = LinkBudget()
        assert b.collision_slot_us(4, 16) == pytest.approx(4 * 37.45 + 150 + 400)

    def test_collision_factor(self):
        b = LinkBudget(collision_reply_bits_factor=0.5)
        assert b.collision_slot_us(0, 16) == pytest.approx(150 + 200)

    def test_broadcast_is_tx_only(self):
        assert LinkBudget().broadcast_us(128) == pytest.approx(128 * 37.45)


class TestPlanCosting:
    def _plan(self) -> InterrogationPlan:
        rounds = [
            RoundPlan(
                label="r0",
                init_bits=32,
                poll_vector_bits=np.array([3, 3, 5]),
                poll_tag_idx=np.array([0, 1, 2]),
                poll_overhead_bits=4,
            ),
            RoundPlan(
                label="r1",
                init_bits=0,
                poll_vector_bits=np.array([2]),
                poll_tag_idx=np.array([3]),
                poll_overhead_bits=4,
                empty_slots=2,
                collision_slots=1,
            ),
        ]
        return InterrogationPlan(protocol="X", n_tags=4, rounds=rounds)

    def test_plan_wire_time_decomposes(self):
        plan = self._plan()
        b = LinkBudget()
        by_rounds = sum(b.round_us(r, 8) for r in plan.rounds)
        assert plan_wire_time(plan, 8) == pytest.approx(by_rounds)

    def test_plan_wire_time_manual(self):
        plan = self._plan()
        t = PAPER_TIMING
        expected = (
            32 * t.reader_bit_us  # round-0 init
            + (11 + 3 * 4) * t.reader_bit_us  # round-0 polls downlink
            + 3 * (t.t1_us + 8 * t.tag_bit_us + t.t2_us)
            + (2 + 4) * t.reader_bit_us  # round-1 poll
            + (t.t1_us + 8 * t.tag_bit_us + t.t2_us)
            + 2 * (4 * t.reader_bit_us + t.t1_us + t.t2_us)  # empty (full cost)
            + 1 * (4 * t.reader_bit_us + t.t1_us + 8 * t.tag_bit_us + t.t2_us)
        )
        assert plan_wire_time(plan, 8) == pytest.approx(expected)

    def test_negative_reply_bits_rejected(self):
        with pytest.raises(ValueError):
            plan_wire_time(self._plan(), -1)

    def test_custom_timing_flows_through(self):
        fast = PAPER_TIMING.with_(reader_bit_us=1.0, tag_bit_us=1.0,
                                  t1_us=0.0, t2_us=0.0)
        plan = self._plan()
        t = plan_wire_time(plan, 0, timing=fast)
        # pure bit count: 32 + 11+12 + 2+4 + 2*4 + 1*4 reader bits
        assert t == pytest.approx(32 + 23 + 6 + 8 + 4)
