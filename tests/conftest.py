"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.tagsets import TagSet, uniform_tagset


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture
def small_tags() -> TagSet:
    """50 tags — sized for exhaustive / DES checks."""
    return uniform_tagset(50, np.random.default_rng(11))


@pytest.fixture
def medium_tags() -> TagSet:
    """1000 tags — sized for statistical checks."""
    return uniform_tagset(1000, np.random.default_rng(12))


def pytest_configure(config):
    config.addinivalue_line("markers", "slow: long-running statistical test")
