"""Unit tests for the channel models."""

import numpy as np
import pytest

from repro.phy.channel import BitErrorChannel, IdealChannel


class TestIdealChannel:
    def test_always_delivers(self, rng):
        ch = IdealChannel()
        assert all(ch.deliver(b, rng) for b in (0, 1, 96, 10_000))

    def test_loss_probability_zero(self):
        assert IdealChannel().frame_loss_probability(1000) == 0.0

    def test_negative_bits_rejected(self, rng):
        with pytest.raises(ValueError):
            IdealChannel().deliver(-1, rng)


class TestBitErrorChannel:
    def test_loss_probability_formula(self):
        ch = BitErrorChannel(0.01)
        assert ch.frame_loss_probability(1) == pytest.approx(0.01)
        assert ch.frame_loss_probability(2) == pytest.approx(1 - 0.99**2)
        assert ch.frame_loss_probability(0) == 0.0

    def test_loss_increases_with_length(self):
        ch = BitErrorChannel(0.001)
        probs = [ch.frame_loss_probability(b) for b in (1, 10, 100, 1000)]
        assert probs == sorted(probs)
        assert probs[-1] > probs[0]

    def test_empirical_loss_rate(self):
        ch = BitErrorChannel(0.02)
        rng = np.random.default_rng(5)
        n = 20_000
        losses = sum(not ch.deliver(10, rng) for _ in range(n))
        expected = ch.frame_loss_probability(10)
        assert losses / n == pytest.approx(expected, rel=0.1)

    def test_zero_ber_never_loses(self, rng):
        ch = BitErrorChannel(0.0)
        assert all(ch.deliver(1000, rng) for _ in range(100))

    @pytest.mark.parametrize("ber", [-0.1, 1.0, 1.5])
    def test_invalid_ber(self, ber):
        with pytest.raises(ValueError):
            BitErrorChannel(ber)

    def test_negative_bits_rejected(self):
        with pytest.raises(ValueError):
            BitErrorChannel(0.1).frame_loss_probability(-5)


class _UnmemoizedBitErrorChannel(BitErrorChannel):
    """Reference channel computing the loss probability from scratch."""

    def frame_loss_probability(self, bits: int) -> float:
        if bits < 0:
            raise ValueError("bits must be non-negative")
        if bits == 0:
            return 0.0
        return 1.0 - (1.0 - self.ber) ** bits


class TestLossMemo:
    def test_memo_matches_formula(self):
        ch = BitErrorChannel(0.003)
        ref = _UnmemoizedBitErrorChannel(0.003)
        for bits in (1, 7, 96, 96, 1024, 7, 1):  # repeats hit the memo
            assert ch.frame_loss_probability(bits) == ref.frame_loss_probability(bits)
        assert len(ch._loss_memo) == 4

    def test_memo_is_bounded(self):
        from repro.phy.channel import _LOSS_MEMO_MAX

        ch = BitErrorChannel(0.01)
        for bits in range(1, 2 * _LOSS_MEMO_MAX):
            ch.frame_loss_probability(bits)
        assert len(ch._loss_memo) == _LOSS_MEMO_MAX

    def test_channel_survives_pickling(self):
        # channels ride into worker processes with the sweep pool
        import pickle

        ch = BitErrorChannel(0.01)
        ch.frame_loss_probability(96)
        clone = pickle.loads(pickle.dumps(ch))
        assert clone.frame_loss_probability(96) == ch.frame_loss_probability(96)

    def test_lossy_des_counters_bit_identical(self):
        """The memo is transparent: full DES runs match an unmemoized ref."""
        from repro.core.hpp import HPP
        from repro.sim.executor import simulate
        from repro.workloads.tagsets import uniform_tagset

        tags = uniform_tagset(200, np.random.default_rng(3))
        kwargs = dict(info_bits=16, seed=7, keep_trace=False)
        memo = simulate(HPP(), tags, channel=BitErrorChannel(1e-3), **kwargs)
        ref = simulate(
            HPP(), tags, channel=_UnmemoizedBitErrorChannel(1e-3), **kwargs
        )
        assert memo.time_us == ref.time_us
        assert memo.reader_bits == ref.reader_bits
        assert memo.tag_bits == ref.tag_bits
        assert memo.n_retries == ref.n_retries
        assert memo.polled_order == ref.polled_order
        assert memo.missing == ref.missing
        assert memo.n_retries > 0  # the channel actually dropped frames
