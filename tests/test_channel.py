"""Unit tests for the channel models."""

import numpy as np
import pytest

from repro.phy.channel import BitErrorChannel, IdealChannel


class TestIdealChannel:
    def test_always_delivers(self, rng):
        ch = IdealChannel()
        assert all(ch.deliver(b, rng) for b in (0, 1, 96, 10_000))

    def test_loss_probability_zero(self):
        assert IdealChannel().frame_loss_probability(1000) == 0.0

    def test_negative_bits_rejected(self, rng):
        with pytest.raises(ValueError):
            IdealChannel().deliver(-1, rng)


class TestBitErrorChannel:
    def test_loss_probability_formula(self):
        ch = BitErrorChannel(0.01)
        assert ch.frame_loss_probability(1) == pytest.approx(0.01)
        assert ch.frame_loss_probability(2) == pytest.approx(1 - 0.99**2)
        assert ch.frame_loss_probability(0) == 0.0

    def test_loss_increases_with_length(self):
        ch = BitErrorChannel(0.001)
        probs = [ch.frame_loss_probability(b) for b in (1, 10, 100, 1000)]
        assert probs == sorted(probs)
        assert probs[-1] > probs[0]

    def test_empirical_loss_rate(self):
        ch = BitErrorChannel(0.02)
        rng = np.random.default_rng(5)
        n = 20_000
        losses = sum(not ch.deliver(10, rng) for _ in range(n))
        expected = ch.frame_loss_probability(10)
        assert losses / n == pytest.approx(expected, rel=0.1)

    def test_zero_ber_never_loses(self, rng):
        ch = BitErrorChannel(0.0)
        assert all(ch.deliver(1000, rng) for _ in range(100))

    @pytest.mark.parametrize("ber", [-0.1, 1.0, 1.5])
    def test_invalid_ber(self, ber):
        with pytest.raises(ValueError):
            BitErrorChannel(ber)

    def test_negative_bits_rejected(self):
        with pytest.raises(ValueError):
            BitErrorChannel(0.1).frame_loss_probability(-5)
