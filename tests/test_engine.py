"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Event, EventKind, EventQueue, Trace


class TestEventQueue:
    def test_clock_advances_on_pop(self):
        q = EventQueue()
        q.schedule(5.0, EventKind.READER_TX_END)
        q.schedule(2.0, EventKind.ROUND_START)
        e1 = q.pop()
        assert e1.kind is EventKind.ROUND_START
        assert q.now_us == 2.0
        e2 = q.pop()
        assert e2.time_us == 5.0
        assert q.now_us == 5.0

    def test_stable_order_for_ties(self):
        q = EventQueue()
        a = q.schedule(1.0, EventKind.READER_TX_START, tag=1)
        b = q.schedule(1.0, EventKind.READER_TX_START, tag=2)
        assert q.pop() is a
        assert q.pop() is b

    def test_relative_scheduling(self):
        q = EventQueue()
        q.schedule(1.0, EventKind.ROUND_START)
        q.pop()
        e = q.schedule(1.0, EventKind.DONE)
        assert e.time_us == 2.0

    def test_cannot_schedule_past(self):
        q = EventQueue()
        with pytest.raises(ValueError):
            q.schedule(-0.1, EventKind.DONE)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_rejects_non_finite_delays(self, bad):
        """NaN/inf delays would corrupt heap ordering and the clock."""
        q = EventQueue()
        with pytest.raises(ValueError, match="finite"):
            q.schedule(bad, EventKind.DONE)

    def test_non_finite_delay_leaves_queue_untouched(self):
        q = EventQueue()
        q.schedule(1.0, EventKind.ROUND_START)
        with pytest.raises(ValueError):
            q.schedule(float("nan"), EventKind.DONE)
        assert len(q) == 1
        assert q.pop().kind is EventKind.ROUND_START
        assert q.now_us == 1.0

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_run_drains(self):
        q = EventQueue()
        for i in range(5):
            q.schedule(float(i), EventKind.TAG_READ, i=i)
        seen = []
        assert q.run(lambda e: seen.append(e.data["i"])) == 5
        assert seen == [0, 1, 2, 3, 4]
        assert len(q) == 0

    def test_run_max_events(self):
        q = EventQueue()
        for i in range(5):
            q.schedule(float(i), EventKind.TAG_READ)
        assert q.run(lambda e: None, max_events=3) == 3
        assert len(q) == 2

    def test_event_data_payload(self):
        q = EventQueue()
        q.schedule(0.0, EventKind.COLLISION, tags=[1, 2])
        assert q.pop().data == {"tags": [1, 2]}


class TestTrace:
    def test_record_and_filter(self):
        t = Trace()
        t.record(Event(0.0, 0, EventKind.ROUND_START))
        t.record(Event(1.0, 1, EventKind.TAG_READ, {"tag": 3}))
        t.record(Event(2.0, 2, EventKind.TAG_READ, {"tag": 4}))
        assert t.count(EventKind.TAG_READ) == 2
        assert [e.data["tag"] for e in t.of_kind(EventKind.TAG_READ)] == [3, 4]
        assert t.duration_us == 2.0
        assert len(t) == 3

    def test_disabled_trace_keeps_nothing(self):
        t = Trace(keep=False)
        t.record(Event(0.0, 0, EventKind.ROUND_START))
        assert len(t) == 0
        assert t.duration_us == 0.0

    def test_empty_trace_duration_is_zero(self):
        assert Trace().duration_us == 0.0
        assert Trace(keep=False).duration_us == 0.0
