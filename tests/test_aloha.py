"""Unit + statistical tests for the framed-slotted ALOHA baselines."""

import numpy as np
import pytest

from repro.baselines.aloha import DFSA, FramedSlottedAloha
from repro.core.hpp import HPP
from repro.phy.link import plan_wire_time
from repro.workloads.tagsets import uniform_tagset


class TestFSA:
    def test_everyone_read(self, medium_tags, rng):
        FramedSlottedAloha(frame_size=1024).plan(medium_tags, rng).validate_complete()

    def test_slot_accounting(self, rng):
        tags = uniform_tagset(500, rng)
        plan = FramedSlottedAloha(frame_size=512).plan(tags, rng)
        for r in plan.rounds:
            assert r.n_polls + r.empty_slots + r.collision_slots == r.extra["frame_size"]

    def test_validation(self):
        with pytest.raises(ValueError):
            FramedSlottedAloha(frame_size=0)
        with pytest.raises(ValueError):
            FramedSlottedAloha(frame_size=4, frame_init_bits=-1)


class TestDFSA:
    def test_everyone_read(self, medium_tags, rng):
        DFSA().plan(medium_tags, rng).validate_complete()

    def test_slot_type_fractions_at_load_one(self):
        # classic ALOHA at λ=1: empty ≈ e^-1 ≈ 36.8%, singleton ≈ 36.8%,
        # collision ≈ 26.4% of the first frame
        rng = np.random.default_rng(6)
        tags = uniform_tagset(30_000, rng)
        plan = DFSA(load=1.0).plan(tags, rng)
        first = plan.rounds[0]
        f = first.extra["frame_size"]
        assert first.n_polls / f == pytest.approx(np.exp(-1), abs=0.01)
        assert first.empty_slots / f == pytest.approx(np.exp(-1), abs=0.01)
        assert first.collision_slots / f == pytest.approx(1 - 2 * np.exp(-1), abs=0.01)

    def test_wasted_slots_motivate_polling(self, rng):
        # the paper's premise: ALOHA wastes ~63% of slots; HPP wastes none
        tags = uniform_tagset(2000, rng)
        aloha = DFSA().plan(tags, np.random.default_rng(0))
        hpp = HPP().plan(tags, np.random.default_rng(0))
        assert hpp.wasted_slots == 0
        assert aloha.wasted_slots > 0.5 * 2000

    def test_slower_than_hpp_for_collection(self, rng):
        tags = uniform_tagset(2000, rng)
        t_aloha = plan_wire_time(DFSA().plan(tags, np.random.default_rng(0)), 16)
        t_hpp = plan_wire_time(HPP().plan(tags, np.random.default_rng(0)), 16)
        assert t_hpp < t_aloha

    def test_frame_shrinks_with_backlog(self, rng):
        tags = uniform_tagset(4000, rng)
        plan = DFSA().plan(tags, rng)
        sizes = [r.extra["frame_size"] for r in plan.rounds]
        assert sizes[0] == 4000
        assert all(a >= b for a, b in zip(sizes, sizes[1:]))

    def test_validation(self):
        with pytest.raises(ValueError):
            DFSA(load=0)
