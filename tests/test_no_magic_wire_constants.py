"""Grep-lint: the wire cost constants live in ``repro.phy`` ONLY.

ISSUE 3's single-source-of-truth invariant, machine-enforced: the
paper's per-bit timings (37.45 µs reader bit, 25 µs tag bit) and the
4-bit QueryRep framing must come from :mod:`repro.phy.timing` /
:mod:`repro.phy.commands`.  Any literal re-derivation elsewhere in
``src/repro`` fails this test with the offending file:line.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: (name, regex) — matched per line against every non-phy source file
FORBIDDEN = [
    (
        "reader bit time 37.45 hard-coded",
        re.compile(r"37\.45"),
    ),
    (
        "tag bit time 25 µs hard-coded",
        # 25.0 as a float literal, or 25 multiplying/multiplied by a
        # reply-length variable; lookarounds keep 0.25, 125, 25_000 etc.
        # out of scope
        re.compile(
            r"(?<![\d._])25\.0(?![\d])"
            r"|(?<![\d._])25\s*\*\s*(?:l\b|info_bits|reply_bits)"
            r"|(?:\bl|info_bits|reply_bits)\s*\*\s*25(?![\d._])"
        ),
    ),
    (
        "QueryRep framing 4 hard-coded",
        re.compile(
            r"(?:poll_overhead_bits|slot_overhead_bits"
            r"|command_overhead_bits|overhead_bits)\s*=\s*4\b"
            r"|(?:empty_slot_us|collision_slot_us|reader_tx_us)\(\s*4\b"
            r"|poll_us\(\s*[\w.]+\s*,\s*4\b"
        ),
    ),
]


def _scannable_files() -> list[Path]:
    return sorted(
        p for p in SRC.rglob("*.py") if "phy" not in p.relative_to(SRC).parts
    )


def test_the_scan_covers_the_tree():
    files = _scannable_files()
    assert len(files) > 20  # the glob is wired to the real source tree
    assert not any("phy" in str(p.relative_to(SRC)) for p in files)


@pytest.mark.parametrize("name,pattern", FORBIDDEN, ids=[n for n, _ in FORBIDDEN])
def test_no_magic_wire_constants(name: str, pattern: re.Pattern):
    offenders = []
    for path in _scannable_files():
        for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            if pattern.search(line):
                offenders.append(f"{path.relative_to(SRC.parent)}:{lineno}: {line.strip()}")
    assert not offenders, (
        f"{name} outside repro/phy — use CommandSizes / C1G2Timing:\n"
        + "\n".join(offenders)
    )
