"""Unit tests for CPP, enhanced CPP and Coded Polling."""

import numpy as np
import pytest

from repro.core.coded_polling import CodedPolling
from repro.core.cpp import CPP, EnhancedCPP
from repro.phy.link import plan_wire_time
from repro.workloads.tagsets import clustered_tagset, sequential_tagset, uniform_tagset


class TestCPP:
    def test_plan_polls_everyone_once(self, medium_tags, rng):
        plan = CPP().plan(medium_tags, rng)
        plan.validate_complete()
        assert plan.n_rounds == 1

    def test_vector_is_96_bits(self, small_tags, rng):
        plan = CPP().plan(small_tags, rng)
        assert plan.avg_vector_bits == 96.0

    def test_no_framing_overhead(self, small_tags, rng):
        plan = CPP().plan(small_tags, rng)
        assert plan.reader_bits == 96 * len(small_tags)

    def test_paper_execution_time(self, rng):
        # Table I anchor: 37.70 s for n = 1e4, l = 1 — check per tag
        tags = uniform_tagset(100, rng)
        plan = CPP().plan(tags, rng)
        assert plan_wire_time(plan, 1) / 100 == pytest.approx(3770.2)

    def test_shuffle_off_is_identity_order(self, small_tags, rng):
        plan = CPP(shuffle=False).plan(small_tags, rng)
        assert plan.polled_tags().tolist() == list(range(len(small_tags)))

    def test_empty_population(self, rng):
        plan = CPP().plan(uniform_tagset(0, rng), rng)
        assert plan.n_polls == 0

    def test_invalid_id_bits(self):
        with pytest.raises(ValueError):
            CPP(id_bits=0)


class TestEnhancedCPP:
    def test_groups_by_category(self, rng):
        tags = clustered_tagset(400, rng, n_categories=4, category_bits=32)
        plan = EnhancedCPP(category_bits=32).plan(tags, rng)
        plan.validate_complete()
        assert plan.n_rounds <= 4  # one round per distinct category

    def test_suffix_is_64_bits(self, rng):
        tags = clustered_tagset(200, rng, n_categories=2, category_bits=32)
        plan = EnhancedCPP(category_bits=32).plan(tags, rng)
        for r in plan.rounds:
            assert set(r.poll_vector_bits.tolist()) == {64}

    def test_beats_cpp_on_clustered_ids(self, rng):
        tags = clustered_tagset(1000, rng, n_categories=2, category_bits=32)
        ecpp = EnhancedCPP(category_bits=32).plan(tags, rng)
        cpp = CPP().plan(tags, rng)
        assert ecpp.reader_bits < cpp.reader_bits

    def test_degenerates_on_uniform_ids(self, rng):
        # every tag its own category -> one Select per tag: worse than CPP
        tags = uniform_tagset(300, rng)
        ecpp = EnhancedCPP(category_bits=32).plan(tags, rng)
        cpp = CPP().plan(tags, rng)
        assert ecpp.reader_bits > cpp.reader_bits

    def test_still_far_from_efficient(self, rng):
        # the paper's §II-B point: >= 64-bit vectors even with 32-bit category
        tags = clustered_tagset(500, rng, n_categories=1, category_bits=32)
        plan = EnhancedCPP(category_bits=32).plan(tags, rng)
        assert plan.avg_vector_bits >= 64

    def test_category_spilling_into_low_word(self, rng):
        tags = sequential_tagset(64)
        plan = EnhancedCPP(category_bits=40).plan(tags, rng)
        plan.validate_complete()

    def test_invalid_category_bits(self):
        with pytest.raises(ValueError):
            EnhancedCPP(category_bits=0)
        with pytest.raises(ValueError):
            EnhancedCPP(category_bits=96)


class TestCodedPolling:
    def test_halves_the_vector(self, medium_tags, rng):
        plan = CodedPolling().plan(medium_tags, rng)
        plan.validate_complete()
        assert plan.avg_vector_bits == pytest.approx(48.0)

    def test_odd_population_tail_pays_full_id(self, rng):
        tags = uniform_tagset(7, rng)
        plan = CodedPolling().plan(tags, rng)
        bits = plan.rounds[0].poll_vector_bits
        assert bits[:-1].tolist() == [48] * 6
        assert bits[-1] == 96

    def test_between_cpp_and_hpp(self, medium_tags, rng):
        from repro.core.hpp import HPP

        cp = plan_wire_time(CodedPolling().plan(medium_tags, rng), 1)
        cpp = plan_wire_time(CPP().plan(medium_tags, rng), 1)
        hpp = plan_wire_time(HPP().plan(medium_tags, rng), 1)
        assert hpp < cp < cpp

    def test_odd_id_bits_rejected(self):
        with pytest.raises(ValueError):
            CodedPolling(id_bits=95)
