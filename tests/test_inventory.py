"""The continuous-inventory engine: store, sessions, async multiplexer.

Covers :mod:`repro.workloads.inventory` (epoch/diff log, churn
generator) and :mod:`repro.apps.inventory` (monitoring loop, belief
tracking, the asyncio session layer over the batched DES backend).
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.apps.inventory import (
    AsyncInventoryService,
    EpochReport,
    InventorySession,
    run_concurrent_sessions,
    run_inventory,
)
from repro.core.cpp import CPP
from repro.core.ehpp import EHPP
from repro.core.hpp import HPP
from repro.core.tpp import TPP
from repro.workloads.inventory import (
    STATUS_ABSENT,
    STATUS_DEPARTED,
    STATUS_PRESENT,
    ChurnModel,
    InventoryStore,
    PopulationDiff,
)
from repro.workloads.tagsets import uniform_tagset


def _tags(n: int, seed: int = 0):
    return uniform_tagset(n, np.random.default_rng(seed))


def _churn():
    return ChurnModel(arrival_rate=0.03, departure_rate=0.015,
                      missing_rate=0.015, return_rate=0.2)


# ----------------------------------------------------------------------
# InventoryStore: the epoch/diff log
# ----------------------------------------------------------------------
class TestInventoryStore:
    def test_slots_are_stable_across_epochs(self):
        store = InventoryStore(_tags(10))
        base = store.slots().tolist()
        arr = _tags(3, seed=9)
        view = store.apply(PopulationDiff.from_tags(arr, departed=[2, 5]))
        assert view.departed_slots.tolist() == [2, 5]
        # surviving tags keep their slot ids; arrivals extend the space
        assert store.slots().tolist() == (
            [s for s in base if s not in (2, 5)]
            + view.arrived_slots.tolist())
        assert store.n_known == 11

    def test_status_transitions(self):
        store = InventoryStore(_tags(6))
        store.apply(PopulationDiff(gone_missing=[1, 4]))
        assert store.status(1) == STATUS_ABSENT
        assert store.n_present == 4
        store.apply(PopulationDiff(returned=[1], departed=[4]))
        assert store.status(1) == STATUS_PRESENT
        assert store.status(4) == STATUS_DEPARTED
        # departed slots leave every compacted view
        assert 4 not in store.slots().tolist()

    def test_transition_validation(self):
        store = InventoryStore(_tags(4))
        store.apply(PopulationDiff(gone_missing=[0]))
        with pytest.raises(ValueError):  # already absent
            store.apply(PopulationDiff(gone_missing=[0]))
        with pytest.raises(ValueError):  # present tags cannot "return"
            store.apply(PopulationDiff(returned=[1]))

    def test_local_of_inverts_slots(self):
        store = InventoryStore(_tags(8))
        store.apply(PopulationDiff.from_tags(_tags(2, seed=5),
                                             departed=[0, 3]))
        slots = store.slots()
        local = store.local_of()
        assert np.array_equal(local[slots], np.arange(slots.size))

    def test_churn_model_is_deterministic(self):
        model = _churn()
        d1 = model.draw(InventoryStore(_tags(200)),
                        np.random.default_rng(3))
        d2 = model.draw(InventoryStore(_tags(200)),
                        np.random.default_rng(3))
        assert d1.departed.tolist() == d2.departed.tolist()
        assert d1.arrived_hi.tolist() == d2.arrived_hi.tolist()


# ----------------------------------------------------------------------
# EpochReport / InventorySession
# ----------------------------------------------------------------------
class TestInventorySession:
    def test_report_lists_sorted_at_construction(self):
        rep = EpochReport(
            epoch=1, protocol="HPP", n_known=3, n_present=2, n_arrived=0,
            n_departed=0, detected_missing=[5, 1, 3],
            newly_missing=[3, 1], time_us=0.0, n_retries=0, n_rounds=0,
            incremental=True)
        assert rep.detected_missing == [1, 3, 5]
        assert rep.newly_missing == [1, 3]

    @pytest.mark.parametrize("proto", [HPP(), TPP(), EHPP()],
                             ids=lambda p: p.name)
    def test_incremental_matches_full_verdicts(self, proto):
        reports_i = run_inventory(proto, _tags(150, seed=4), _churn(),
                                  5, seed=21, incremental=True)
        reports_f = run_inventory(proto, _tags(150, seed=4), _churn(),
                                  5, seed=21, incremental=False)
        for a, b in zip(reports_i, reports_f):
            assert a.incremental and not b.incremental
            assert a.n_known == b.n_known
            assert a.n_present == b.n_present
            # the plans differ, the *verdicts* must not
            assert a.detected_missing == b.detected_missing
            assert a.newly_missing == b.newly_missing

    def test_belief_tracking(self):
        session = InventorySession(HPP(), _tags(30, seed=2), seed=7)
        r1 = session.step(PopulationDiff(gone_missing=[3, 8]))
        assert r1.detected_missing == [3, 8]
        assert r1.newly_missing == [3, 8]
        # already believed missing: detected again, but not "new"
        r2 = session.step(PopulationDiff())
        assert r2.detected_missing == [3, 8]
        assert r2.newly_missing == []
        # a return clears the belief; the tag answers again
        r3 = session.step(PopulationDiff(returned=[3]))
        assert r3.detected_missing == [8]
        assert session.believed_missing == {8}

    def test_protocol_without_planner_falls_back(self):
        session = InventorySession(CPP(), _tags(20, seed=3), seed=1)
        assert not session.incremental  # CPP has no plan_state
        rep = session.step(PopulationDiff(gone_missing=[4]))
        assert rep.detected_missing == [4]
        assert rep.replan is None

    def test_replan_stats_scale_with_churn(self):
        session = InventorySession(HPP(), _tags(500, seed=6), seed=2)
        quiet = session.step(PopulationDiff())
        assert quiet.replan is not None and quiet.replan.identity
        busy = session.step(PopulationDiff(departed=[1, 2, 3, 4, 5]))
        assert busy.replan.departed == 5
        assert 0 < busy.replan.dirty_rounds < busy.n_rounds


# ----------------------------------------------------------------------
# asyncio session layer
# ----------------------------------------------------------------------
class TestAsyncSessions:
    def test_concurrent_sessions_batch_and_match_sync(self):
        protos = [HPP(), TPP(), EHPP()]
        n_sessions, n_epochs = 32, 2

        def make_sessions():
            return [
                InventorySession(protos[i % 3], _tags(25 + i, seed=50 + i),
                                 seed=i)
                for i in range(n_sessions)
            ]

        service = AsyncInventoryService()
        reports = asyncio.run(run_concurrent_sessions(
            make_sessions(), [_churn()] * n_sessions, n_epochs, service,
            seed=9))
        assert len(reports) == n_sessions
        assert all(len(r) == n_epochs for r in reports)
        sizes = [s for _, s in service.executed_batches]
        assert sum(sizes) == n_sessions * n_epochs
        assert max(sizes) > 1, "sessions were never multiplexed"
        # the batched execution is bit-identical to the sync loop
        sync = InventorySession(protos[0], _tags(25, seed=50), seed=0)
        rng = np.random.default_rng((9, 0, 0xC0FFEE))
        for async_rep in reports[0]:
            sync_rep = sync.step(_churn().draw(sync.store, rng))
            assert async_rep.detected_missing == sync_rep.detected_missing
            assert async_rep.time_us == sync_rep.time_us
            assert async_rep.n_retries == sync_rep.n_retries

    def test_service_propagates_failures(self, monkeypatch):
        import repro.apps.inventory as inv

        def explode(*args, **kw):
            raise RuntimeError("reader on fire")

        monkeypatch.setattr(inv, "execute_plan_batch", explode)

        async def broken():
            service = AsyncInventoryService()
            session = InventorySession(HPP(), _tags(10), seed=0)
            await session.step_async(PopulationDiff(), service)

        with pytest.raises(RuntimeError, match="reader on fire"):
            asyncio.run(broken())
