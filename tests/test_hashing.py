"""Unit and statistical tests for the seeded hash family."""

import numpy as np
import pytest
from scipy import stats

from repro.hashing.universal import (
    derive_seed,
    hash_indices,
    hash_mod,
    hash_u64,
    splitmix64,
)


@pytest.fixture
def words(rng) -> np.ndarray:
    return rng.integers(0, 1 << 63, size=5000, dtype=np.uint64)


class TestSplitmix:
    def test_deterministic(self):
        assert splitmix64(12345) == splitmix64(12345)

    def test_scalar_matches_vector(self):
        xs = np.array([0, 1, 2**40, 2**63], dtype=np.uint64)
        vec = splitmix64(xs)
        for x, v in zip(xs, vec):
            assert splitmix64(int(x)) == v

    def test_known_avalanche(self):
        # flipping one input bit flips ~half the output bits
        a = int(splitmix64(0))
        b = int(splitmix64(1))
        assert 20 <= bin(a ^ b).count("1") <= 44


class TestHashU64:
    def test_seed_changes_everything(self, words):
        h1 = hash_u64(words, 1)
        h2 = hash_u64(words, 2)
        assert not np.any(h1 == h2) or np.count_nonzero(h1 == h2) < 3

    def test_deterministic_per_seed(self, words):
        assert np.array_equal(hash_u64(words, 99), hash_u64(words, 99))


class TestHashIndices:
    @pytest.mark.parametrize("h", [1, 4, 10, 30, 63])
    def test_range(self, words, h):
        idx = hash_indices(words, 7, h)
        assert idx.min() >= 0
        assert int(idx.max()) < (1 << h)

    def test_invalid_h(self, words):
        with pytest.raises(ValueError):
            hash_indices(words, 1, -1)
        with pytest.raises(ValueError):
            hash_indices(words, 1, 64)

    def test_uniformity_chi_square(self, words):
        # 5000 draws into 64 buckets; chi-square should not reject
        idx = hash_indices(words, seed=31337, h=6)
        counts = np.bincount(idx, minlength=64)
        _, p = stats.chisquare(counts)
        assert p > 0.001

    def test_independent_across_seeds(self, words):
        # indices under two seeds should be uncorrelated
        a = hash_indices(words, 1, 8).astype(float)
        b = hash_indices(words, 2, 8).astype(float)
        r = np.corrcoef(a, b)[0, 1]
        assert abs(r) < 0.05


class TestHashMod:
    def test_range(self, words):
        x = hash_mod(words, 3, 1000)
        assert x.min() >= 0 and x.max() < 1000

    def test_non_power_of_two_uniform(self, words):
        x = hash_mod(words, 17, 10)
        counts = np.bincount(x, minlength=10)
        _, p = stats.chisquare(counts)
        assert p > 0.001

    def test_invalid_modulus(self, words):
        with pytest.raises(ValueError):
            hash_mod(words, 1, 0)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(5, 1, 2) == derive_seed(5, 1, 2)

    def test_salts_matter(self):
        seeds = {derive_seed(5, j) for j in range(50)}
        assert len(seeds) == 50

    def test_order_matters(self):
        assert derive_seed(5, 1, 2) != derive_seed(5, 2, 1)

    def test_derived_draws_independent(self, words):
        # MIC relies on the k derived seeds giving independent mappings
        a = hash_mod(words, derive_seed(9, 1), 256).astype(float)
        b = hash_mod(words, derive_seed(9, 2), 256).astype(float)
        assert abs(np.corrcoef(a, b)[0, 1]) < 0.05
