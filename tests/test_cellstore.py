"""Unit tests for the columnar cell store and the code fingerprint.

The runner-level behavior (cache hits, invalidation, crash recovery
through ``ResultCache``) lives in ``tests/test_runner.py``; this module
exercises the store layer directly: segment encode/decode, framing
damage, flush batching, compaction accounting, and the version
fingerprint's sensitivity to content (not mtime).
"""

import numpy as np
import pytest

from repro.experiments import cellstore
from repro.experiments.cellstore import (
    CellStore,
    _decode_segment,
    _encode_segment,
    cache_version,
)


class TestSegmentCodec:
    def test_round_trip_scalars_and_vectors(self):
        entries = [
            ("k-scalar", 1.5),
            ("k-vector", [0.25, -3.0, 1e300]),
            ("k-one-element-list", [7.0]),
            ("k-unicode-µs", 0.0),
            ("", 42.0),
        ]
        assert _decode_segment(_encode_segment(entries)) == entries

    def test_one_element_list_stays_a_list(self):
        (_, vec), (_, scalar) = _decode_segment(
            _encode_segment([("a", [7.0]), ("b", 7.0)])
        )
        assert vec == [7.0] and isinstance(vec, list)
        assert scalar == 7.0 and isinstance(scalar, float)

    def test_empty_segment(self):
        assert _decode_segment(_encode_segment([])) == []

    def test_values_bit_exact(self):
        values = np.random.default_rng(0).standard_normal(64).tolist()
        [(_, out)] = _decode_segment(_encode_segment([("k", values)]))
        assert np.asarray(out).tobytes() == np.asarray(values).tobytes()

    @pytest.mark.parametrize("damage", ["truncate", "magic", "flip", "tail"])
    def test_framing_damage_raises(self, damage):
        raw = bytearray(_encode_segment([("key", 1.0), ("other", [2.0])]))
        if damage == "truncate":
            raw = raw[:-7]
        elif damage == "magic":
            raw[0] ^= 0xFF
        elif damage == "flip":
            raw[len(raw) // 2] ^= 0x01
        elif damage == "tail":
            raw[-1] ^= 0xFF
        with pytest.raises(ValueError):
            _decode_segment(bytes(raw))


class TestCellStore:
    def test_flush_threshold_seals_segments(self, tmp_path):
        store = CellStore(tmp_path, flush_threshold=3)
        for i in range(7):
            store.append(f"k{i}", float(i))
        assert len(list(tmp_path.glob("cells-*.seg"))) == 2  # 2 auto-seals
        store.flush()
        assert len(list(tmp_path.glob("cells-*.seg"))) == 3
        store.flush()  # empty buffer: no new segment
        assert len(list(tmp_path.glob("cells-*.seg"))) == 3
        assert CellStore(tmp_path).load() == {
            f"k{i}": float(i) for i in range(7)
        }

    def test_last_write_wins_across_segments(self, tmp_path):
        store = CellStore(tmp_path)
        store.append("k", 1.0)
        store.flush()
        store.append("k", 2.0)
        store.flush()
        assert CellStore(tmp_path).load() == {"k": 2.0}

    def test_garbage_below_threshold_is_kept(self, tmp_path):
        store = CellStore(tmp_path, compact_min_garbage=64)
        for v in (1.0, 2.0):
            store.append("k", v)
            store.flush()
        fresh = CellStore(tmp_path, compact_min_garbage=64)
        fresh.load()
        assert not fresh.stats.compacted
        assert fresh.stats.duplicate_entries == 1

    def test_forced_compaction_consolidates(self, tmp_path):
        store = CellStore(tmp_path)
        for i in range(5):
            store.append(f"k{i}", float(i))
            store.flush()
        live = CellStore(tmp_path).load()
        reader = CellStore(tmp_path)
        reader.load()
        reader.compact(live)
        assert len(list(tmp_path.glob("cells-*.seg"))) == 1
        assert CellStore(tmp_path).load() == live

    def test_stale_version_counts_as_garbage_and_compacts(self, tmp_path):
        old = CellStore(tmp_path, version_salt="v=old|",
                        compact_min_garbage=4)
        for i in range(8):
            old.append(f"v=old|k{i}", float(i))
        old.flush()
        new = CellStore(tmp_path, version_salt="v=new|",
                        compact_min_garbage=4)
        assert new.load() == {}  # nothing servable under the new version
        assert new.stats.compacted  # 8/8 garbage > 25%
        # the stale entries are physically gone after compaction
        assert CellStore(tmp_path, version_salt="v=old|").load() == {}

    def test_describe_reports_counts(self, tmp_path):
        store = CellStore(tmp_path, version_salt="v=x|",
                          compact_min_garbage=1000)
        store.append("v=x|a", 1.0)
        store.append("v=x|a", 2.0)
        store.append("v=y|b", 3.0)
        store.flush()
        fresh = CellStore(tmp_path, version_salt="v=x|",
                          compact_min_garbage=1000)
        fresh.load()
        desc = fresh.describe()
        assert desc["disk_entries"] == 3
        assert desc["live_entries"] == 1
        assert desc["stale_entries"] == 1
        assert desc["duplicate_entries"] == 1
        assert desc["segments"] == 1
        assert desc["disk_bytes"] > 0


class TestCacheVersion:
    def test_stable_within_a_process(self):
        assert cache_version() == cache_version()

    def test_tracks_content_not_mtime(self, tmp_path, monkeypatch):
        src = tmp_path / "metric.py"
        src.write_text("X = 1\n")
        monkeypatch.setattr(cellstore, "_metric_path_files",
                            lambda: [src])
        monkeypatch.setattr(cellstore, "_version_memo", None)
        v1 = cache_version()
        monkeypatch.setattr(cellstore, "_version_memo", None)
        assert cache_version() == v1  # same content, same fingerprint

        src.touch()  # mtime-only change
        monkeypatch.setattr(cellstore, "_version_memo", None)
        assert cache_version() == v1

        src.write_text("X = 2\n")  # a real edit
        monkeypatch.setattr(cellstore, "_version_memo", None)
        assert cache_version() != v1

    def test_metric_path_covers_the_value_producing_layers(self):
        names = {str(p) for p in cellstore._metric_path_files()}
        for fragment in ("core/hpp.py", "phy/link.py", "sim/batch.py",
                         "baselines/estimation.py", "workloads/tagsets.py",
                         "experiments/runner.py"):
            assert any(n.endswith(fragment) for n in names), fragment
        # presentation layers must NOT invalidate caches
        assert not any(n.endswith("experiments/figures.py") for n in names)
        assert not any(n.endswith("cli.py") for n in names)
