"""Unit + statistical tests for the Hash Polling Protocol (§III)."""

import numpy as np
import pytest

from repro.analysis.hpp_model import expected_vector_length
from repro.core.hpp import HPP
from repro.core.rounds import draw_round
from repro.hashing.universal import hash_indices
from repro.workloads.tagsets import adversarial_tagset, uniform_tagset


class TestDrawRound:
    def test_singletons_are_singletons(self, medium_tags):
        active = np.arange(len(medium_tags))
        draw = draw_round(medium_tags.id_words, active, seed=7, h=10)
        idx = hash_indices(medium_tags.id_words, 7, 10)
        counts = np.bincount(idx, minlength=1 << 10)
        assert np.all(counts[draw.singleton_indices] == 1)
        # every singleton tag's index is its broadcast index
        assert np.array_equal(idx[draw.singleton_tags], draw.singleton_indices)

    def test_partition(self, medium_tags):
        active = np.arange(len(medium_tags))
        draw = draw_round(medium_tags.id_words, active, seed=3, h=10)
        merged = np.sort(np.concatenate([draw.singleton_tags, draw.remaining_tags]))
        assert np.array_equal(merged, active)

    def test_indices_sorted_ascending(self, medium_tags):
        draw = draw_round(medium_tags.id_words, np.arange(1000), seed=1, h=10)
        assert np.all(np.diff(draw.singleton_indices) > 0)

    def test_empty_active(self, medium_tags):
        draw = draw_round(medium_tags.id_words, np.array([], dtype=np.int64), 1, 4)
        assert draw.n_singletons == 0
        assert draw.remaining_tags.size == 0


class TestHPPPlan:
    def test_everyone_polled_once(self, medium_tags, rng):
        HPP().plan(medium_tags, rng).validate_complete()

    def test_single_tag(self, rng):
        plan = HPP().plan(uniform_tagset(1, rng), rng)
        plan.validate_complete()
        assert plan.n_rounds == 1

    def test_vector_bits_bounded_by_log_n(self, rng):
        # eq. (5): every vector <= ceil(log2 n) bits
        tags = uniform_tagset(700, rng)
        plan = HPP().plan(tags, rng)
        h_max = int(np.ceil(np.log2(700)))
        for r in plan.rounds:
            assert r.extra["h"] <= h_max

    def test_index_length_shrinks_with_population(self, medium_tags, rng):
        plan = HPP().plan(medium_tags, rng)
        hs = [r.extra["h"] for r in plan.rounds]
        assert hs[0] == 10
        assert all(a >= b for a, b in zip(hs, hs[1:]))  # non-increasing

    def test_singleton_fraction_band(self, rng):
        # paper §III-A: "about 36.8%-60.7% of tags are read" per round
        tags = uniform_tagset(5000, rng)
        plan = HPP().plan(tags, rng)
        first = plan.rounds[0]
        frac = first.n_polls / 5000
        assert 0.33 <= frac <= 0.64

    def test_matches_analytic_model(self, rng):
        # eq. (4) vs simulation, averaged over runs
        n = 4000
        sims = []
        for run in range(15):
            r = np.random.default_rng(run)
            tags = uniform_tagset(n, r)
            plan = HPP().plan(tags, r)
            # exclude the 32-bit round inits: eq. (4) counts index bits only
            bits = sum(int(rp.poll_vector_bits.sum()) for rp in plan.rounds)
            sims.append(bits / n)
        model = expected_vector_length(n)
        assert np.mean(sims) == pytest.approx(model, rel=0.03)

    def test_seeds_fresh_each_round(self, medium_tags, rng):
        plan = HPP().plan(medium_tags, rng)
        seeds = [r.extra["seed"] for r in plan.rounds]
        assert len(set(seeds)) == len(seeds)

    def test_adversarial_ids_harmless(self, rng):
        # seeded hashing must not degrade on structured IDs
        tags = adversarial_tagset(2000, rng)
        plan = HPP().plan(tags, rng)
        plan.validate_complete()
        uni = HPP().plan(uniform_tagset(2000, rng), rng)
        assert plan.n_rounds <= uni.n_rounds + 5

    def test_empty_population(self, rng):
        plan = HPP().plan(uniform_tagset(0, rng), rng)
        assert plan.n_rounds == 0

    def test_round_init_charged(self, medium_tags, rng):
        plan = HPP().plan(medium_tags, rng)
        assert all(r.init_bits == 32 for r in plan.rounds)
