"""Unit tests for Coded Polling: CRCs, frame code, and the CRC pitfall."""

import numpy as np
import pytest

from repro.core.coded_polling import (
    CodedPolling,
    coded_frame,
    pair_crc,
    validate_coded_partner,
    validate_epc_crc,
)
from repro.phy.crc import crc5, crc16, crc16_check
from repro.workloads.tagsets import crc_embedded_tagset, uniform_tagset


class TestCRC:
    def test_ccitt_check_value(self):
        # CRC-16/CCITT-FALSE("123456789") = 0x29B1; C1G2 inverts output
        msg = int.from_bytes(b"123456789", "big")
        assert crc16(msg, 72) ^ 0xFFFF == 0x29B1

    def test_check_roundtrip(self):
        assert crc16_check(0xDEADBEEF, 32, crc16(0xDEADBEEF, 32))
        assert not crc16_check(0xDEADBEEF, 32, crc16(0xDEADBEEF, 32) ^ 1)

    def test_single_bit_flip_detected(self):
        msg = 0x123456789ABC
        base = crc16(msg, 48)
        for pos in (0, 7, 23, 47):
            assert crc16(msg ^ (1 << pos), 48) != base

    def test_crc5_width(self):
        for v in (0, 1, 0x3FFFFF):
            assert 0 <= crc5(v, 22) < 32

    def test_value_too_wide_rejected(self):
        with pytest.raises(ValueError):
            crc16(1 << 32, 32)
        with pytest.raises(ValueError):
            crc16(-1, 8)


class TestCRCEmbeddedIds:
    def test_every_epc_self_validates(self, rng):
        tags = crc_embedded_tagset(100, rng)
        for i in range(100):
            assert validate_epc_crc(tags.epc(i))

    def test_plain_epcs_rarely_validate(self, rng):
        tags = uniform_tagset(500, rng)
        hits = sum(validate_epc_crc(tags.epc(i)) for i in range(500))
        assert hits <= 1  # expected 500 / 65536


class TestCRCValidationIsBlind:
    """Why CP cannot validate with the CRC unit alone (module docstring).

    CRC-16 is affine over GF(2) and absorbs appended self-checksums, so
    XOR-coded frames built from self-validating IDs look valid to every
    listener.  These are regression tests for the design note.
    """

    def test_crc_xor_validation_is_blind_naive(self, rng):
        # xor of two valid words is itself a valid word — for EVERY tag
        tags = crc_embedded_tagset(32, rng)
        a, b = tags.epc(0), tags.epc(1)
        for i in range(2, 32):
            assert validate_epc_crc(a ^ b ^ tags.epc(i))

    def test_crc_xor_validation_is_blind_pair_crc(self, rng):
        # even a CRC over the ordered pair concatenation collapses: the
        # bystander's recomputation always matches
        tags = crc_embedded_tagset(32, rng)
        a, b = tags.epc(0), tags.epc(1)
        v80 = (a >> 16) ^ (b >> 16)
        sent = pair_crc(a, b)
        for i in range(2, 32):
            c = tags.epc(i)
            cand_hi = v80 ^ (c >> 16)
            cand = (cand_hi << 16) | crc16(cand_hi, 80)
            assert pair_crc(c, cand) == sent  # blind!


class TestCodedFrame:
    def test_pair_members_recover_each_other(self, rng):
        tags = uniform_tagset(2, rng)
        a, b = tags.epc(0), tags.epc(1)
        frame = coded_frame(a, b)
        assert validate_coded_partner(frame, a) == b >> 16
        assert validate_coded_partner(frame, b) == a >> 16

    def test_identical_tops_rejected(self):
        with pytest.raises(ValueError):
            coded_frame(5 << 16 | 1, 5 << 16 | 2)

    def test_third_party_false_positive_rate(self, rng):
        # the hash-unit check makes bystander acceptance ~2^-16
        tags = uniform_tagset(402, rng)
        frame = coded_frame(tags.epc(0), tags.epc(1))
        false_hits = sum(
            validate_coded_partner(frame, tags.epc(i)) is not None
            for i in range(2, 402)
        )
        assert false_hits <= 1

    def test_frame_width_is_id_bits(self, rng):
        tags = uniform_tagset(2, rng)
        frame = coded_frame(tags.epc(0), tags.epc(1))
        assert frame.bit_length() <= 96

    def test_plan_orders_pairs_by_id_top(self, rng):
        tags = uniform_tagset(40, rng)
        plan = CodedPolling().plan(tags, rng)
        idx = plan.rounds[0].poll_tag_idx
        for p in range(20):
            assert tags.epc(int(idx[2 * p])) >> 16 < tags.epc(int(idx[2 * p + 1])) >> 16
