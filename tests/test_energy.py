"""Tests for the energy-accounting model."""

import numpy as np
import pytest

from repro.analysis.energy import EnergyModel, plan_energy
from repro.core.cpp import CPP
from repro.core.hpp import HPP
from repro.core.tpp import TPP
from repro.phy.link import LinkBudget
from repro.workloads.tagsets import uniform_tagset


@pytest.fixture
def tags(rng):
    return uniform_tagset(1000, rng)


class TestEnergyModel:
    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            EnergyModel(reader_tx_mw=-1)

    def test_report_totals(self, tags, rng):
        plan = TPP().plan(tags, rng)
        rep = plan_energy(plan, reply_bits=16)
        assert rep.total_mj == pytest.approx(rep.reader_mj + rep.tag_total_mj)
        assert rep.tag_total_mj == pytest.approx(rep.tag_listen_mj + rep.tag_tx_mj)
        assert rep.n_tags == 1000

    def test_reader_energy_proportional_to_bits(self, tags, rng):
        plan = CPP().plan(tags, rng)
        base = plan_energy(plan, 1)
        double = plan_energy(plan, 1, model=EnergyModel(reader_tx_mw=1650.0))
        assert double.reader_mj == pytest.approx(2 * base.reader_mj)

    def test_tpp_cheaper_than_cpp_everywhere(self, tags):
        rng1, rng2 = np.random.default_rng(1), np.random.default_rng(1)
        cpp = plan_energy(CPP().plan(tags, rng1), 1)
        tpp = plan_energy(TPP().plan(tags, rng2), 1)
        # shorter interrogation: less reader TX AND less tag listening
        assert tpp.reader_mj < cpp.reader_mj
        assert tpp.tag_listen_mj < cpp.tag_listen_mj

    def test_tag_tx_energy_scales_with_reply(self, tags, rng):
        plan = HPP().plan(tags, rng)
        e1 = plan_energy(plan, 1)
        e32 = plan_energy(plan, 32)
        assert e32.tag_tx_mj == pytest.approx(32 * e1.tag_tx_mj)

    def test_listening_decreases_as_tags_sleep(self, tags, rng):
        # per-tag listening must be well below "every tag listens to the
        # whole interrogation" — tags sleep as rounds progress
        plan = HPP().plan(tags, rng)
        budget = LinkBudget()
        total_us = budget.plan_us(plan, 1)
        rep = plan_energy(plan, 1)
        model = EnergyModel()
        worst_case_mj = model.tag_rx_mw * total_us * 1e-6 * 1000
        assert rep.tag_listen_mj < 0.8 * worst_case_mj

    def test_empty_plan(self):
        from repro.core.base import InterrogationPlan

        rep = plan_energy(InterrogationPlan("X", 0, []), 1)
        assert rep.total_mj == 0.0
        assert rep.tag_listen_per_tag_mj == 0.0
