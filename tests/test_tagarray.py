"""Parity tests: the vectorised array backend vs the machines oracle.

The array backend (:mod:`repro.sim.tagarray`) re-implements every tag
state machine as numpy arrays plus per-poll lookups; these tests pin it
to the object-machine oracle bit for bit — every ``DESResult`` counter
(time_us, reader_bits, tag_bits, polled_order, n_retries, missing) must
be identical on ideal and lossy channels, in plain interrogation and in
missing-tag mode.
"""

import numpy as np
import pytest

from repro.baselines.mic import MIC
from repro.core.coded_polling import CodedPolling
from repro.core.cpp import CPP, EnhancedCPP
from repro.core.ehpp import EHPP
from repro.core.hpp import HPP
from repro.core.tpp import TPP
from repro.phy.channel import BitErrorChannel
from repro.sim.engine import EventKind
from repro.sim.executor import execute_plan, simulate
from repro.workloads.tagsets import (
    clustered_tagset,
    crc_embedded_tagset,
    uniform_tagset,
)


def _counters(result):
    """Everything a DESResult reports except the trace object."""
    return (
        result.protocol,
        result.n_tags,
        result.time_us,
        result.reader_bits,
        result.tag_bits,
        tuple(result.polled_order),
        result.n_retries,
        tuple(result.missing),
    )


def _tagset_for(proto, n, seed):
    rng = np.random.default_rng(seed)
    if proto.name == "CP":
        return crc_embedded_tagset(n, rng)
    if proto.name == "eCPP":
        return clustered_tagset(n, rng, n_categories=3)
    return uniform_tagset(n, rng)


ALL_PROTOCOLS = [CPP(), EnhancedCPP(), CodedPolling(), HPP(),
                 EHPP(subset_size=60), TPP(), MIC()]
#: protocols whose executor supports the lossy retransmission extension
LOSSY_PROTOCOLS = [CPP(), EnhancedCPP(), CodedPolling(), HPP(),
                   EHPP(subset_size=60), TPP()]


@pytest.mark.parametrize("proto", ALL_PROTOCOLS, ids=lambda p: p.name)
def test_parity_ideal_channel(proto):
    tags = _tagset_for(proto, 180, seed=1)
    a = simulate(proto, tags, info_bits=8, seed=5, backend="machines")
    b = simulate(proto, tags, info_bits=8, seed=5, backend="array")
    assert _counters(a) == _counters(b)
    assert b.all_read


@pytest.mark.parametrize("proto", LOSSY_PROTOCOLS, ids=lambda p: p.name)
@pytest.mark.parametrize("ber", [0.002, 0.01])
def test_parity_lossy_channel(proto, ber):
    tags = _tagset_for(proto, 180, seed=2)
    a = simulate(proto, tags, info_bits=8, seed=5,
                 channel=BitErrorChannel(ber), backend="machines")
    b = simulate(proto, tags, info_bits=8, seed=5,
                 channel=BitErrorChannel(ber), backend="array")
    assert _counters(a) == _counters(b)
    assert b.all_read


def test_parity_lossy_exercises_retries():
    """The lossy parity cases must actually walk the retry machinery."""
    tags = uniform_tagset(400, np.random.default_rng(7))
    a = simulate(TPP(), tags, seed=5, channel=BitErrorChannel(0.03),
                 backend="machines")
    b = simulate(TPP(), tags, seed=5, channel=BitErrorChannel(0.03),
                 backend="array")
    assert a.n_retries > 0
    assert _counters(a) == _counters(b)


@pytest.mark.parametrize("proto", [CPP(), HPP(), TPP(), MIC()],
                         ids=lambda p: p.name)
def test_parity_missing_tag_mode(proto):
    tags = _tagset_for(proto, 200, seed=3)
    rng = np.random.default_rng(9)
    absent = rng.choice(200, size=12, replace=False)
    present = np.setdiff1d(np.arange(200), absent)
    a = simulate(proto, tags, seed=5, present=present, backend="machines")
    b = simulate(proto, tags, seed=5, present=present, backend="array")
    assert _counters(a) == _counters(b)
    assert b.missing == sorted(absent.tolist())


def test_parity_missing_tag_mode_lossy():
    tags = uniform_tagset(200, np.random.default_rng(4))
    present = np.setdiff1d(np.arange(200), [3, 77, 141])
    kw = dict(seed=5, present=present, channel=BitErrorChannel(0.005),
              missing_attempts=4)
    a = simulate(HPP(), tags, backend="machines", **kw)
    b = simulate(HPP(), tags, backend="array", **kw)
    assert _counters(a) == _counters(b)
    assert b.missing == [3, 77, 141]


def test_parity_with_payloads():
    tags = uniform_tagset(120, np.random.default_rng(6))
    payloads = np.random.default_rng(8).integers(0, 1 << 16, size=120,
                                                 dtype=np.int64)
    plan = TPP().plan(tags, np.random.default_rng(5))
    a = execute_plan(plan, tags, info_bits=16, payloads=payloads,
                     backend="machines")
    b = execute_plan(plan, tags, info_bits=16, payloads=payloads,
                     backend="array")
    assert _counters(a) == _counters(b)


def test_unknown_backend_rejected():
    tags = uniform_tagset(10, np.random.default_rng(0))
    with pytest.raises(ValueError, match="unknown backend"):
        simulate(HPP(), tags, backend="quantum")


# ----------------------------------------------------------------------
# trace-free fast clock
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", ["machines", "array"])
def test_fast_clock_matches_traced_run(backend):
    """keep_trace=False must not change any counter, only skip events."""
    tags = uniform_tagset(150, np.random.default_rng(1))
    kw = dict(seed=5, channel=BitErrorChannel(0.005), backend=backend)
    traced = simulate(TPP(), tags, keep_trace=True, **kw)
    fast = simulate(TPP(), tags, keep_trace=False, **kw)
    assert _counters(traced) == _counters(fast)
    assert len(traced.trace) > 0
    assert len(fast.trace.events) == 0


@pytest.mark.parametrize("backend", ["machines", "array"])
def test_fast_clock_still_counts_kinds(backend):
    """Trace.count reports would-have-been events even when keep=False."""
    tags = uniform_tagset(80, np.random.default_rng(2))
    traced = simulate(HPP(), tags, seed=3, keep_trace=True, backend=backend)
    fast = simulate(HPP(), tags, seed=3, keep_trace=False, backend=backend)
    for kind in (EventKind.TAG_READ, EventKind.READER_TX_END,
                 EventKind.REPLY_TIMEOUT, EventKind.COLLISION):
        assert fast.trace.count(kind) == traced.trace.count(kind)
    assert fast.trace.count(EventKind.TAG_READ) == 80


# ----------------------------------------------------------------------
# scale
# ----------------------------------------------------------------------
@pytest.mark.slow
def test_tpp_100k_tags_array_backend():
    """The tentpole claim: DES validation at the paper's full scale."""
    tags = uniform_tagset(100_000, np.random.default_rng(11))
    result = simulate(TPP(), tags, seed=2, keep_trace=False, backend="array")
    assert result.all_read
    assert result.trace.count(EventKind.TAG_READ) == 100_000


def test_tpp_10k_tags_array_backend_fast():
    """A CI-speed stand-in for the 10^5 smoke test (< a second)."""
    tags = uniform_tagset(10_000, np.random.default_rng(11))
    result = simulate(TPP(), tags, seed=2, keep_trace=False, backend="array")
    assert result.all_read
