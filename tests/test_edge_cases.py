"""Edge-case coverage: tiny populations, degenerate parameters, stats."""

import numpy as np
import pytest

from repro.apps.information_collection import stats_from_report, collect_information
from repro.baselines.mic import MIC
from repro.core.base import ProtocolStats
from repro.core.coded_polling import CodedPolling
from repro.core.cpp import CPP
from repro.core.ehpp import EHPP
from repro.core.hpp import HPP
from repro.core.tpp import TPP
from repro.phy.link import plan_wire_time
from repro.sim.executor import execute_plan
from repro.workloads.tagsets import uniform_tagset

ALL = [CPP, CodedPolling, HPP, EHPP, TPP, MIC]


@pytest.mark.parametrize("n", [1, 2, 3])
@pytest.mark.parametrize("proto_cls", ALL, ids=lambda c: c.__name__)
def test_tiny_populations_complete(n, proto_cls):
    tags = uniform_tagset(n, np.random.default_rng(n))
    plan = proto_cls().plan(tags, np.random.default_rng(n + 1))
    plan.validate_complete()
    assert plan_wire_time(plan, 1) > 0


@pytest.mark.parametrize("proto_cls", [CPP, HPP, EHPP, TPP, MIC],
                         ids=lambda c: c.__name__)
def test_single_tag_des(proto_cls):
    tags = uniform_tagset(1, np.random.default_rng(9))
    plan = proto_cls().plan(tags, np.random.default_rng(10))
    result = execute_plan(plan, tags, info_bits=1)
    assert result.all_read


@pytest.mark.parametrize("proto_cls", ALL, ids=lambda c: c.__name__)
def test_empty_population(proto_cls):
    tags = uniform_tagset(0, np.random.default_rng(1))
    plan = proto_cls().plan(tags, np.random.default_rng(2))
    assert plan.n_polls == 0
    assert plan_wire_time(plan, 1) == 0.0


def test_zero_bit_information_collection():
    """l = 0: pure presence ping (reply is an unmodulated burst)."""
    tags = uniform_tagset(50, np.random.default_rng(3))
    rep = collect_information(TPP(), tags, info_bits=0, n_runs=2)
    assert rep.mean_time_us > 0


def test_huge_info_payload():
    tags = uniform_tagset(20, np.random.default_rng(4))
    rep = collect_information(HPP(), tags, info_bits=1024, n_runs=1)
    # uplink dominates: > 1024*25 µs per tag
    assert rep.mean_time_us > 20 * 1024 * 25


def test_ehpp_tiny_selection_modulus():
    tags = uniform_tagset(500, np.random.default_rng(5))
    plan = EHPP(subset_size=50, selection_modulus=2).plan(
        tags, np.random.default_rng(6)
    )
    plan.validate_complete()


def test_mic_overloaded_frame():
    # load 4: tiny frames, heavy collisions — must still converge
    tags = uniform_tagset(400, np.random.default_rng(7))
    plan = MIC(k=2, load=4.0).plan(tags, np.random.default_rng(8))
    plan.validate_complete()


def test_protocol_stats_record():
    stats = ProtocolStats(
        protocol="X", n_tags=10, n_rounds=2, n_polls=10,
        reader_bits=100, wasted_slots=0, avg_vector_bits=3.0,
        wire_time_us=5000.0,
    )
    assert stats.time_per_tag_us == 500.0
    empty = ProtocolStats("X", 0, 0, 0, 0, 0, 0.0, 0.0)
    assert empty.time_per_tag_us == 0.0


def test_stats_from_report_roundtrip():
    tags = uniform_tagset(100, np.random.default_rng(9))
    rep = collect_information(TPP(), tags, info_bits=4, n_runs=2)
    stats = stats_from_report(rep)
    assert stats.protocol == "TPP"
    assert stats.n_polls == 100
    assert stats.wire_time_us == rep.mean_time_us


def test_markdown_flag_in_experiments_cli(tmp_path, capsys):
    from repro.experiments.__main__ import main

    out = tmp_path / "r.md"
    assert main(["fig8", "--markdown", str(out)]) == 0
    assert out.exists()
    assert "fig8" in out.read_text()


def test_dfsa_high_load_converges():
    from repro.baselines.aloha import DFSA

    tags = uniform_tagset(50, np.random.default_rng(11))
    DFSA(load=8.0).plan(tags, np.random.default_rng(12)).validate_complete()


def test_iip_high_load_converges():
    from repro.baselines.iip import simulate_iip

    tags = uniform_tagset(50, np.random.default_rng(13))
    result = simulate_iip(tags, np.arange(50), np.random.default_rng(14),
                          load=8.0)
    assert len(result.present) == 50
