"""Unit + property tests for the index-length policies."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.planner import (
    CoveringPolicy,
    FixedLoadPolicy,
    SingletonMaxPolicy,
    hpp_index_length,
    tpp_index_length,
)

_LN2 = math.log(2.0)


class TestHPPIndexLength:
    @pytest.mark.parametrize(
        "n,h", [(1, 1), (2, 1), (3, 2), (4, 2), (5, 3), (1024, 10), (1025, 11)]
    )
    def test_examples(self, n, h):
        assert hpp_index_length(n) == h

    @given(st.integers(2, 10**7))
    def test_covering_invariant(self, n):
        h = hpp_index_length(n)
        # paper §III-B: 2^(h-1) < n <= 2^h
        assert (1 << (h - 1)) < n <= (1 << h)

    def test_invalid(self):
        with pytest.raises(ValueError):
            hpp_index_length(0)


class TestTPPIndexLength:
    @given(st.integers(2, 10**7))
    def test_load_in_eq15_band(self, n):
        h = tpp_index_length(n)
        lam = n / (1 << h)
        # eq. (15): ln2 <= n/2^h < 2 ln2
        assert _LN2 <= lam < 2 * _LN2

    @given(st.integers(2, 10**7))
    def test_within_one_of_hpp(self, n):
        # the bands (0.5, 1] and [ln2, 2ln2) overlap, so TPP's h is
        # either HPP's h or one bit shorter (λ is allowed to exceed 1)
        h_hpp = hpp_index_length(n)
        h_tpp = tpp_index_length(n)
        assert h_hpp - 1 <= h_tpp <= h_hpp

    def test_invalid(self):
        with pytest.raises(ValueError):
            tpp_index_length(0)


class TestPolicies:
    def test_policy_objects_delegate(self):
        assert CoveringPolicy()(1000) == hpp_index_length(1000)
        assert SingletonMaxPolicy()(1000) == tpp_index_length(1000)

    @given(st.integers(2, 10**6), st.sampled_from([0.25, 0.5, 1.0, 2.0]))
    def test_fixed_load_close_to_target(self, n, target):
        h = FixedLoadPolicy(target=target)(n)
        lam = n / (1 << h)
        # within a factor sqrt(2) of the target (integer h granularity),
        # except when clamped at h = 1
        if h > 1:
            assert target / 2 < lam < target * 2

    def test_fixed_load_validation(self):
        with pytest.raises(ValueError):
            FixedLoadPolicy(target=0.0)
        with pytest.raises(ValueError):
            FixedLoadPolicy(target=1.0)(0)
