"""Replica-batched DES execution must be bit-identical to sequential.

The contract under test (the whole point of :mod:`repro.sim.batch`):
``execute_plan_batch`` over R replicas produces, replica for replica,
*exactly* the :class:`DESResult` that R separate ``execute_plan`` calls
produce — same event clock, same counters, same polled order, same
missing verdicts, same trace tallies — and when a lossy missing-tag
watch falsely declares a present tag missing, the batch raises the same
``RuntimeError`` the sequential executor raises.
"""

import numpy as np
import pytest

from repro.core.coded_polling import CodedPolling
from repro.core.cpp import CPP, EnhancedCPP
from repro.core.ehpp import EHPP
from repro.core.hpp import HPP
from repro.core.tpp import TPP
from repro.phy.channel import BitErrorChannel, IdealChannel
from repro.sim.batch import execute_plan_batch
from repro.sim.executor import execute_plan, simulate
from repro.workloads.tagsets import uniform_tagset

PROTOCOLS = [
    pytest.param(lambda: HPP(), id="hpp"),
    pytest.param(lambda: EHPP(subset_size=50), id="ehpp"),
    pytest.param(lambda: TPP(), id="tpp"),
    pytest.param(lambda: CPP(), id="cpp"),
    pytest.param(lambda: EnhancedCPP(), id="ecpp"),
    pytest.param(lambda: CodedPolling(), id="cp-fallback"),
]

CHANNELS = [pytest.param(0.0, id="ideal"), pytest.param(0.001, id="lossy")]

INFO_BITS = 4


def _channel(ber):
    return BitErrorChannel(ber) if ber else IdealChannel()


def _outcome(fn):
    """Run ``fn``; a missing-watch invariant trip becomes a comparable
    string outcome instead of failing the test outright."""
    try:
        return fn()
    except RuntimeError as exc:
        return f"RuntimeError: {exc}"


def _fingerprint(res):
    if isinstance(res, str):
        return res
    return (
        res.protocol, res.n_tags, res.time_us, res.reader_bits,
        res.tag_bits, res.polled_order, res.n_retries, res.missing,
        {kind.name: count for kind, count in res.trace._counts.items()},
    )


def _replicas(protocol, sizes, seed, missing_fraction=0.0):
    """Per-replica plans, tagsets, present subsets, and channel seeds."""
    plans, tags_list, present_list, rng_seeds = [], [], [], []
    for r, n in enumerate(sizes):
        tags = uniform_tagset(n, np.random.default_rng((seed, r)))
        plans.append(protocol.plan(tags, np.random.default_rng((seed, r, 1))))
        present = None
        if missing_fraction and n:
            k = int(round(n * missing_fraction))
            present = np.sort(
                np.random.default_rng((seed, r, 2)).permutation(n)[: n - k]
            ).astype(np.int64)
        tags_list.append(tags)
        present_list.append(present)
        rng_seeds.append((seed, r, 3))
    return plans, tags_list, present_list, rng_seeds


def _sequential(plans, tags_list, present_list, rng_seeds, ber,
                backend="array", missing_attempts=3):
    outs = []
    for plan, tags, present, rs in zip(plans, tags_list, present_list,
                                       rng_seeds):
        outs.append(_outcome(lambda p=plan, t=tags, pr=present, s=rs:
                             execute_plan(
                                 p, t, info_bits=INFO_BITS,
                                 channel=_channel(ber),
                                 rng=np.random.default_rng(s),
                                 keep_trace=False, present=pr,
                                 missing_attempts=missing_attempts,
                                 backend=backend)))
    return outs


def _batched(plans, tags_list, present_list, rng_seeds, ber,
             missing_attempts=3):
    return _outcome(lambda: execute_plan_batch(
        plans, tags_list, info_bits=INFO_BITS, channel=_channel(ber),
        rngs=[np.random.default_rng(s) for s in rng_seeds],
        present_list=present_list, missing_attempts=missing_attempts,
        backend="array"))


def _assert_parity(batch_out, sequential_outs):
    raising = [o for o in sequential_outs if isinstance(o, str)]
    if raising:
        # _finish walks replicas in order, so the batch surfaces the
        # first replica's exception — identical text, same trip
        assert isinstance(batch_out, str), (
            "sequential raised but the batch did not"
        )
        assert batch_out == raising[0]
        return
    assert not isinstance(batch_out, str), batch_out
    assert len(batch_out) == len(sequential_outs)
    for r, (got, ref) in enumerate(zip(batch_out, sequential_outs)):
        assert _fingerprint(got) == _fingerprint(ref), f"replica {r}"


# ----------------------------------------------------------------------
# the parity matrix
# ----------------------------------------------------------------------
@pytest.mark.parametrize("make_protocol", PROTOCOLS)
@pytest.mark.parametrize("ber", CHANNELS)
@pytest.mark.parametrize("n", [0, 1, 7])
def test_small_population_parity_vs_both_oracles(make_protocol, ber, n):
    """Tiny populations (incl. empty and singleton), R=2, checked
    against the sequential array backend *and* the machine oracle."""
    protocol = make_protocol()
    inputs = _replicas(protocol, [n, n], seed=17)
    batch = _batched(*inputs, ber)
    _assert_parity(batch, _sequential(*inputs, ber, backend="array"))
    _assert_parity(batch, _sequential(*inputs, ber, backend="machines"))


@pytest.mark.parametrize("make_protocol", PROTOCOLS)
@pytest.mark.parametrize("ber", CHANNELS)
def test_large_population_parity(make_protocol, ber):
    """n=1000, R=2, against the sequential array backend."""
    protocol = make_protocol()
    inputs = _replicas(protocol, [1000, 1000], seed=23)
    _assert_parity(_batched(*inputs, ber), _sequential(*inputs, ber))


def test_large_population_parity_vs_machines():
    """One n=1000 lossy case against the (slow) machine oracle."""
    inputs = _replicas(HPP(), [1000], seed=29)
    _assert_parity(_batched(*inputs, 0.001),
                   _sequential(*inputs, 0.001, backend="machines"))


@pytest.mark.parametrize("replicas", [1, 2, 33])
def test_replica_count_axis(replicas):
    """R ∈ {1, 2, 33} same-size replicas, lossy, exact parity."""
    inputs = _replicas(HPP(), [41] * replicas, seed=31)
    _assert_parity(_batched(*inputs, 0.002), _sequential(*inputs, 0.002))


@pytest.mark.parametrize("make_protocol", PROTOCOLS)
def test_torn_replica_batch(make_protocol):
    """Mixed replica sizes — one empty, one singleton — in one batch."""
    protocol = make_protocol()
    inputs = _replicas(protocol, [40, 0, 17, 1], seed=37)
    _assert_parity(_batched(*inputs, 0.002), _sequential(*inputs, 0.002))


@pytest.mark.parametrize("make_protocol", PROTOCOLS)
@pytest.mark.parametrize("ber", CHANNELS)
def test_missing_tag_mode_parity(make_protocol, ber):
    """Presence polling with absent tags: detected-missing sets and
    retry counters match replica for replica (machine oracle too)."""
    protocol = make_protocol()
    inputs = _replicas(protocol, [50, 30], seed=41, missing_fraction=0.1)
    batch = _batched(*inputs, ber, missing_attempts=2)
    _assert_parity(batch, _sequential(*inputs, ber, missing_attempts=2))
    _assert_parity(
        batch,
        _sequential(*inputs, ber, backend="machines", missing_attempts=2),
    )


def test_missing_mode_false_positive_exception_parity():
    """At high BER a present tag can stay silent ``missing_attempts``
    times; the sequential ``_finish`` invariant then raises — the batch
    must raise the identical error, not swallow or reorder it."""
    inputs = _replicas(HPP(), [60] * 6, seed=2, missing_fraction=0.1)
    ber = 0.02
    sequential = _sequential(*inputs, ber, missing_attempts=1)
    assert any(isinstance(o, str) for o in sequential), (
        "fixture no longer trips the invariant; raise ber or replicas"
    )
    _assert_parity(_batched(*inputs, ber, missing_attempts=1), sequential)


# ----------------------------------------------------------------------
# the public replica APIs
# ----------------------------------------------------------------------
def test_execute_plan_replicas_argument():
    tags = uniform_tagset(80, np.random.default_rng(1))
    protocol = TPP()
    plans = [protocol.plan(tags, np.random.default_rng(s)) for s in (1, 2, 3)]
    rngs = [np.random.default_rng(s + 100) for s in (1, 2, 3)]
    batch = execute_plan(plans, [tags] * 3, info_bits=INFO_BITS,
                         channel=BitErrorChannel(0.001), rng=rngs,
                         backend="array", replicas=3)
    for r in range(3):
        ref = execute_plan(plans[r], tags, info_bits=INFO_BITS,
                           channel=BitErrorChannel(0.001),
                           rng=np.random.default_rng(r + 1 + 100),
                           keep_trace=False, backend="array")
        assert _fingerprint(batch[r]) == _fingerprint(ref)


def test_execute_plan_replicas_rejects_shared_generator():
    tags = uniform_tagset(5, np.random.default_rng(0))
    plan = CPP().plan(tags, np.random.default_rng(0))
    with pytest.raises(ValueError, match="one generator per replica"):
        execute_plan([plan] * 2, [tags] * 2, rng=np.random.default_rng(0),
                     backend="array", replicas=2)


def test_simulate_replicas_matches_shifted_seeds():
    tags = uniform_tagset(60, np.random.default_rng(4))
    protocol = EHPP(subset_size=50)
    batch = simulate(protocol, tags, info_bits=INFO_BITS, seed=9,
                     channel=BitErrorChannel(0.001), backend="array",
                     replicas=3)
    for r in range(3):
        solo = simulate(protocol, tags, info_bits=INFO_BITS, seed=9 + r,
                        channel=BitErrorChannel(0.001), keep_trace=False,
                        backend="array")
        assert _fingerprint(batch[r]) == _fingerprint(solo)


def test_batch_rejects_mixed_protocols():
    tags = uniform_tagset(4, np.random.default_rng(0))
    plan_a = CPP().plan(tags, np.random.default_rng(0))
    plan_b = HPP().plan(tags, np.random.default_rng(0))
    with pytest.raises(ValueError, match="one protocol per batch"):
        execute_plan_batch([plan_a, plan_b], [tags, tags])


# ----------------------------------------------------------------------
# seed-split regression (the lossy-sweep draw order)
# ----------------------------------------------------------------------
class TestLossySweepSeedSplit:
    """The lossy-sweep metric must feed the channel a *fresh* seed
    child, never the stream the planner already consumed — the
    correlated-draw bug class the sweep engine was rebuilt to kill."""

    def _setup(self):
        tags = uniform_tagset(40, np.random.default_rng(0))
        return HPP(), tags, np.random.SeedSequence(1234)

    def test_metric_pins_spawn_order(self):
        from repro.experiments.extensions import _lossy_trial
        from repro.experiments.runner import DESMetric

        protocol, tags, seed_seq = self._setup()
        got = DESMetric(ber=0.01, backend="array")(
            protocol, tags, np.random.SeedSequence(1234), None, INFO_BITS)
        legacy = _lossy_trial(protocol, tags, np.random.SeedSequence(1234),
                              None, INFO_BITS, ber=0.01, backend="array")
        # the pinned derivation: child 0 plans, child 1 drives the loss
        # draws, in exactly this spawn order
        plan_ss, channel_ss = seed_seq.spawn(2)
        plan = protocol.plan(tags, np.random.default_rng(plan_ss))
        ref = execute_plan(plan, tags, info_bits=INFO_BITS,
                           channel=BitErrorChannel(0.01),
                           rng=np.random.default_rng(channel_ss),
                           keep_trace=False, backend="array")
        assert got == [ref.time_us / 1e6, float(ref.n_retries)]
        assert legacy == got

    def test_channel_stream_is_not_the_planner_stream(self):
        from repro.experiments.runner import DESMetric

        protocol, tags, seed_seq = self._setup()
        got = DESMetric(ber=0.01, backend="array")(
            protocol, tags, np.random.SeedSequence(1234), None, INFO_BITS)
        plan_ss, channel_ss = seed_seq.spawn(2)
        plan = protocol.plan(tags, np.random.default_rng(plan_ss))
        for wrong_rng in (
            np.random.default_rng(plan_ss),     # re-used planner child
            np.random.default_rng(seed_seq),    # undivided root stream
        ):
            wrong = execute_plan(plan, tags, info_bits=INFO_BITS,
                                 channel=BitErrorChannel(0.01),
                                 rng=wrong_rng, keep_trace=False,
                                 backend="array")
            assert got != [wrong.time_us / 1e6, float(wrong.n_retries)]


# ----------------------------------------------------------------------
# runner integration
# ----------------------------------------------------------------------
class TestRunnerDESBatch:
    """DESMetric cells route through the batch executor bit-identically
    and the runner reports its routing coverage."""

    def _sweep(self, **kwargs):
        from repro.experiments.runner import DESMetric, SweepRunner

        runner = SweepRunner(cache=None, **kwargs)
        values = runner.sweep_values(
            TPP(), [30, 90], n_runs=3, seed=6,
            metric=DESMetric(ber=0.002, backend="array"),
            info_bits=INFO_BITS,
        )
        return runner, values

    def test_batched_equals_per_cell(self):
        _, batched = self._sweep(batch=True)
        _, sequential = self._sweep(batch=False)
        assert np.array_equal(batched, sequential)
        assert batched.shape == (2, 2)  # [time_s, n_retries] columns

    def test_batched_equals_sharded(self):
        _, serial = self._sweep(batch=True, jobs=1)
        _, sharded = self._sweep(batch=True, jobs=2)
        assert np.array_equal(serial, sharded)

    def test_coverage_counters(self):
        runner, _ = self._sweep(batch=True)
        cov = runner.batch_coverage
        assert cov["batched_cells"] == 6 and cov["fallback_cells"] == 0
        assert cov["batched_fraction"] == 1.0
        runner, _ = self._sweep(batch=False)
        cov = runner.batch_coverage
        assert cov["batched_cells"] == 0 and cov["fallback_cells"] == 6
        assert cov["batched_fraction"] == 0.0
