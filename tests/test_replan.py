"""Incremental re-planning parity (:mod:`repro.core.replan`).

The replan contract has two halves:

- an **empty diff is a bit-identical no-op** — the cached plan and
  spliced schedule objects survive untouched, and their columns and
  cost index equal a from-scratch compile;
- a **non-empty diff is counter-equivalent** — after arrivals,
  departures, or both, the spliced schedule's columns still equal
  compiling the maintained plan from scratch, and executing the
  localized plan on the churned population reads every live tag with
  zero retries and zero missing verdicts on the ideal DES channel.

Both halves run for HPP, TPP, and EHPP at n ∈ {0, 1, 7, 1000} under
every available kernel backend (the numba CI leg re-runs the module
with ``REPRO_KERNELS=numba``).
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core.ehpp import EHPP
from repro.core.hpp import HPP
from repro.core.replan import PlanDiff
from repro.core.tpp import TPP
from repro.kernels import available_backends, use_backend
from repro.phy.schedule import compile_plan
from repro.sim.executor import execute_plan
from repro.workloads.tagsets import TagSet, uniform_tagset

_COLUMNS = ("kind", "downlink_bits", "uplink_bits", "tag_idx", "round_id")
_SIZES = (0, 1, 7, 1000)


def _protocols():
    return [HPP(), TPP(), EHPP()]


@pytest.fixture(params=available_backends())
def backend(request) -> str:
    with use_backend(request.param):
        yield request.param


def _assert_columns_equal(sched, ref, context: str) -> None:
    for col in _COLUMNS:
        assert np.array_equal(getattr(sched, col), getattr(ref, col)), (
            f"{context}: column {col} diverged")


def _assert_cost_index_equal(sched, ref, context: str) -> None:
    a, b = sched.cost_index(), ref.cost_index()
    for f in dataclasses.fields(a):
        va, vb = getattr(a, f.name), getattr(b, f.name)
        if isinstance(va, np.ndarray):
            assert np.array_equal(va, vb), f"{context}: cost index {f.name}"
        else:
            assert va == vb, f"{context}: cost index {f.name}"


class _Population:
    """Slot-space population bookkeeping for a churn scenario.

    Tracks ``(id_hi, id_lo)`` per slot — identity *words* are an
    injective fold of the pair and cannot be split back apart, so the
    executed TagSet must be rebuilt from the originals.
    """

    def __init__(self, n: int, seed: int):
        self.pool = uniform_tagset(n + 256, np.random.default_rng(seed))
        self.live = {s: (int(self.pool.id_hi[s]), int(self.pool.id_lo[s]))
                     for s in range(n)}
        self.next_slot = n
        self.pool_i = n

    def tags(self) -> TagSet:
        return TagSet(id_hi=self.pool.id_hi[:len(self.live)],
                      id_lo=self.pool.id_lo[:len(self.live)])

    def diff(self, n_dep: int, n_arr: int,
             rng: np.random.Generator) -> PlanDiff:
        lv = sorted(self.live)
        n_dep = min(n_dep, len(lv))
        dep = sorted(rng.choice(np.asarray(lv, dtype=np.int64), size=n_dep,
                                replace=False).tolist()) if n_dep else []
        arr = list(range(self.next_slot, self.next_slot + n_arr))
        self.next_slot += n_arr
        words = self.pool.id_words[self.pool_i:self.pool_i + n_arr]
        for s in dep:
            del self.live[s]
        for s in arr:
            self.live[s] = (int(self.pool.id_hi[self.pool_i]),
                            int(self.pool.id_lo[self.pool_i]))
            self.pool_i += 1
        return PlanDiff(arrived_slots=np.asarray(arr, dtype=np.int64),
                        arrived_words=np.asarray(words, dtype=np.uint64),
                        departed_slots=np.asarray(dep, dtype=np.int64))

    def local_of(self) -> np.ndarray:
        lv = sorted(self.live)
        local = np.full(max(lv) + 1 if lv else 1, -1, dtype=np.int64)
        for i, s in enumerate(lv):
            local[s] = i
        return local

    def current_tagset(self) -> TagSet:
        lv = sorted(self.live)
        return TagSet(
            id_hi=np.asarray([self.live[s][0] for s in lv], dtype=np.uint64),
            id_lo=np.asarray([self.live[s][1] for s in lv], dtype=np.uint64))


# ----------------------------------------------------------------------
# empty diff: bit-identical no-op
# ----------------------------------------------------------------------
@pytest.mark.parametrize("proto", _protocols(), ids=lambda p: p.name)
@pytest.mark.parametrize("n", _SIZES)
class TestEmptyDiffIdentity:
    def test_noop_preserves_objects_and_columns(self, proto, n, backend):
        rng = np.random.default_rng(100 + n)
        tags = uniform_tagset(n, np.random.default_rng(n))
        state = proto.plan_state(tags, rng)
        plan_before = state.plan()
        sched_before = state.schedule()
        stats = proto.replan(state, PlanDiff(), rng)
        assert stats.identity
        # the cached objects survive — not equal copies, the SAME objects
        assert state.plan() is plan_before
        assert state.schedule() is sched_before
        ctx = f"{proto.name} n={n} {backend}"
        ref = compile_plan(state.plan(), 1)
        _assert_columns_equal(state.schedule(), ref, ctx)
        _assert_cost_index_equal(state.schedule(), ref, ctx)


# ----------------------------------------------------------------------
# non-empty diffs: counter equivalence with a from-scratch compile
# ----------------------------------------------------------------------
_CHURNS = {
    "arrivals": (0, 3),
    "departures": (3, 0),
    "mixed": (3, 3),
}


@pytest.mark.parametrize("proto", _protocols(), ids=lambda p: p.name)
@pytest.mark.parametrize("n", _SIZES)
@pytest.mark.parametrize("churn", sorted(_CHURNS), ids=str)
class TestChurnParity:
    def test_replan_matches_from_scratch(self, proto, n, churn, backend):
        n_dep, n_arr = _CHURNS[churn]
        pop = _Population(n, seed=1000 + n)
        rng = np.random.default_rng(200 + n)
        churn_rng = np.random.default_rng(77)
        state = proto.plan_state(pop.tags(), rng)
        for ep in range(4):
            diff = pop.diff(n_dep, n_arr, churn_rng)
            stats = proto.replan(state, diff, rng)
            assert not stats.identity or diff.is_empty
            state.check_invariants()
            ctx = f"{proto.name} n={n} {churn} ep={ep} {backend}"
            ref = compile_plan(state.plan(), state.reply_bits)
            _assert_columns_equal(state.schedule(), ref, ctx)
            _assert_cost_index_equal(state.schedule(), ref, ctx)
            # the localized plan polls exactly the live population
            lp = state.plan(pop.local_of())
            lp.validate_complete()

    def test_executed_des_counters(self, proto, n, churn, backend):
        n_dep, n_arr = _CHURNS[churn]
        pop = _Population(n, seed=2000 + n)
        rng = np.random.default_rng(300 + n)
        churn_rng = np.random.default_rng(88)
        state = proto.plan_state(pop.tags(), rng)
        for _ in range(2):
            proto.replan(state, pop.diff(n_dep, n_arr, churn_rng), rng)
        lp = state.plan(pop.local_of())
        cur = pop.current_tagset()
        des_backends = ("machines", "array") if n <= 7 else ("array",)
        for des in des_backends:
            res = execute_plan(lp, cur, rng=np.random.default_rng(0),
                               backend=des)
            ctx = f"{proto.name} n={n} {churn} des={des} {backend}"
            assert res.all_read, ctx
            assert res.n_retries == 0, ctx
            assert not res.missing, ctx
            assert sorted(res.polled_order) == list(range(cur.n)), ctx
