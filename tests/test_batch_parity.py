"""Replica-axis batched planning must be bit-identical to sequential.

The contract under test (the whole point of the batch path): for every
protocol that overrides ``plan_schedule_batch``, planning R runs jointly
yields, run for run, *exactly* the schedule, wire times, and plan
metrics that R independent ``plan()`` + ``compile_plan()`` calls
produce — same seeds, same rounds, same floats — so cached sweep cells
and paper numbers are unchanged by the fast path.
"""

import pickle

import numpy as np
import pytest

from repro.core.ehpp import EHPP
from repro.core.hpp import HPP
from repro.core.planner import (
    CoveringPolicy,
    SingletonMaxPolicy,
    hpp_index_length,
    tpp_index_length,
)
from repro.core.rounds import SeedStream, draw_round, draw_rounds_batch, fresh_seed
from repro.core.tpp import TPP
from repro.experiments.runner import cell_seed_children
from repro.hashing.universal import (
    hash_indices,
    hash_indices_ragged,
    hash_mod,
    hash_mod_ragged,
)
from repro.phy.link import LinkBudget
from repro.phy.schedule import ScheduleBatch, _build_cost_index, compile_plan
from repro.workloads.tagsets import uniform_tagset

BUDGET = LinkBudget()
COLUMNS = ("kind", "downlink_bits", "uplink_bits", "tag_idx", "round_id")
METRICS = ("n_rounds", "n_polls", "wasted_slots", "reader_bits",
           "avg_vector_bits")

PROTOCOLS = [
    pytest.param(lambda: HPP(), id="hpp"),
    pytest.param(lambda: TPP(), id="tpp"),
    pytest.param(lambda: EHPP(), id="ehpp"),
    pytest.param(lambda: EHPP(subset_size=50), id="ehpp-small-circles"),
]


def _cell_inputs(seed, n, runs):
    """Per-run tagsets, batch generators, and reference plans/schedules."""
    tags_list, rngs, refs = [], [], []
    proto_rngs = []
    for run in range(runs):
        tag_child, plan_child = cell_seed_children(seed, n, run)
        tags_list.append(uniform_tagset(n, np.random.default_rng(tag_child)))
        rngs.append(np.random.default_rng(plan_child))
        proto_rngs.append(np.random.default_rng(plan_child))
    return tags_list, rngs, proto_rngs


@pytest.mark.parametrize("make_protocol", PROTOCOLS)
@pytest.mark.parametrize("seed", [0, 7])
@pytest.mark.parametrize("n", [0, 1, 7, 1000])
def test_batch_equals_sequential_compile(make_protocol, seed, n):
    """Columns, wire times, and plan metrics, run for run, incl. the
    empty-population and single-tag edges."""
    runs = 5
    protocol = make_protocol()
    tags_list, rngs, proto_rngs = _cell_inputs(seed, n, runs)
    plans = [
        protocol.plan(tags, rng) for tags, rng in zip(tags_list, proto_rngs)
    ]
    batch = protocol.plan_schedule_batch(tags_list, rngs, reply_bits=3)

    times = BUDGET.schedule_batch_us(batch)
    per_metric = {m: batch.per_run_metric(m).tolist() for m in METRICS}
    for r, plan in enumerate(plans):
        ref = compile_plan(plan, 3)
        sub = batch.schedule_for_run(r)
        for col in COLUMNS:
            assert np.array_equal(getattr(sub, col), getattr(ref, col)), (
                f"run {r}: column {col} diverges from compile_plan"
            )
        assert times[r] == BUDGET.schedule_us(ref)
        assert per_metric["n_rounds"][r] == len(plan.rounds)
        assert per_metric["n_polls"][r] == plan.n_polls
        assert per_metric["wasted_slots"][r] == plan.wasted_slots
        assert per_metric["reader_bits"][r] == plan.reader_bits
        assert per_metric["avg_vector_bits"][r] == plan.avg_vector_bits


@pytest.mark.parametrize("make_protocol", PROTOCOLS)
def test_mixed_population_batch(make_protocol):
    """One batch may mix replica sizes, including an empty run."""
    protocol = make_protocol()
    sizes = [13, 0, 200, 1, 64]
    tags_list, rngs, proto_rngs = [], [], []
    for run, n in enumerate(sizes):
        tag_child, plan_child = cell_seed_children(3, n, run)
        tags_list.append(uniform_tagset(n, np.random.default_rng(tag_child)))
        rngs.append(np.random.default_rng(plan_child))
        proto_rngs.append(np.random.default_rng(plan_child))
    batch = protocol.plan_schedule_batch(tags_list, rngs, reply_bits=1)
    assert batch.n_runs == len(sizes)
    times = BUDGET.schedule_batch_us(batch)
    for r, n in enumerate(sizes):
        plan = protocol.plan(tags_list[r], proto_rngs[r])
        ref = compile_plan(plan, 1)
        sub = batch.schedule_for_run(r)
        for col in COLUMNS:
            assert np.array_equal(getattr(sub, col), getattr(ref, col))
        assert times[r] == BUDGET.schedule_us(ref)


def test_from_schedules_matches_planner_batch():
    """The reference stacker and the planner's batch agree on every
    aggregate (the eager and deferred code paths cross-check)."""
    protocol = EHPP()
    tags_list, rngs, proto_rngs = _cell_inputs(11, 300, 4)
    batch = protocol.plan_schedule_batch(tags_list, rngs, reply_bits=2)
    stacked = ScheduleBatch.from_schedules(
        [
            compile_plan(protocol.plan(tags, rng), 2)
            for tags, rng in zip(tags_list, proto_rngs)
        ]
    )
    for m in METRICS:
        assert np.array_equal(
            batch.per_run_metric(m), stacked.per_run_metric(m)
        ), f"metric {m}"
    assert np.array_equal(
        BUDGET.schedule_batch_us(batch), BUDGET.schedule_batch_us(stacked)
    )
    for col in COLUMNS + ("run_id",):
        assert np.array_equal(getattr(batch, col), getattr(stacked, col))


class TestDeferredColumns:
    """Pricing and plan metrics must not build the exchange rows."""

    def _batch(self):
        tags_list, rngs, _ = _cell_inputs(5, 400, 3)
        return HPP().plan_schedule_batch(tags_list, rngs, reply_bits=1)

    def test_pricing_and_metrics_stay_lazy(self):
        batch = self._batch()
        BUDGET.schedule_batch_us(batch)
        for m in METRICS:
            batch.per_run_metric(m)
        assert batch.n_exchanges > 0 and batch.n_rounds > 0
        assert batch.__dict__.get("_lazy") is not None, (
            "pricing or metrics forced column materialisation"
        )

    def test_aggregate_cost_index_equals_column_built(self):
        batch = self._batch()
        from_aggregates = batch.cost_index()
        from_columns = _build_cost_index(batch)  # forces the columns
        for name in ("down_sums", "run_rid", "run_kind", "run_down",
                     "run_up", "run_count"):
            a = getattr(from_aggregates, name)
            b = getattr(from_columns, name)
            assert a.dtype == b.dtype
            assert np.array_equal(a, b), f"cost index field {name}"

    def test_column_access_materialises_once(self):
        batch = self._batch()
        kind = batch.kind
        assert batch.__dict__.get("_lazy") is None
        assert kind is batch.kind
        assert batch.run_id.shape == kind.shape
        batch.validate()

    def test_pickle_round_trip(self):
        batch = self._batch()
        clone = pickle.loads(pickle.dumps(batch))
        for col in COLUMNS + ("run_id",):
            assert np.array_equal(getattr(clone, col), getattr(batch, col))
        assert np.array_equal(
            BUDGET.schedule_batch_us(clone), BUDGET.schedule_batch_us(batch)
        )


class TestBatchBuildingBlocks:
    """The vectorised primitives the joint planners are built from."""

    def test_seed_stream_matches_fresh_seed(self):
        a = SeedStream(np.random.default_rng(42))
        ref_rng = np.random.default_rng(42)
        for _ in range(1000):  # spans several buffer refills
            assert a() == fresh_seed(ref_rng)

    def test_policy_batch_matches_scalar(self):
        sizes = np.concatenate([
            np.arange(1, 5000, dtype=np.int64),
            np.random.default_rng(0).integers(1, 1 << 62, size=500),
        ])
        for policy, fn in ((CoveringPolicy(), hpp_index_length),
                           (SingletonMaxPolicy(), tpp_index_length)):
            got = policy.batch(sizes)
            ref = np.fromiter((fn(int(s)) for s in sizes), np.int64,
                              sizes.size)
            assert np.array_equal(got, ref), policy.name

    def test_policy_batch_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            CoveringPolicy().batch(np.array([4, 0, 9]))

    def test_draw_rounds_batch_matches_draw_round(self):
        rng = np.random.default_rng(9)
        id_words = rng.integers(0, 1 << 64, size=600, dtype=np.uint64)
        actives = [
            np.arange(0, 200, dtype=np.int64),
            np.arange(200, 200, dtype=np.int64),  # empty replica
            np.arange(200, 600, dtype=np.int64),
        ]
        seeds = [11, 22, 33]
        hs = [8, 4, 9]
        draws = draw_rounds_batch(id_words, actives, seeds, hs)
        for active, seed, h, got in zip(actives, seeds, hs, draws):
            ref = draw_round(id_words, active, seed, h)
            assert got.seed == ref.seed and got.h == ref.h
            assert np.array_equal(got.singleton_indices, ref.singleton_indices)
            assert np.array_equal(got.singleton_tags, ref.singleton_tags)
            assert np.array_equal(got.remaining_tags, ref.remaining_tags)

    def test_ragged_hashing_matches_per_segment(self):
        rng = np.random.default_rng(13)
        words = rng.integers(0, 1 << 64, size=500, dtype=np.uint64)
        counts = np.array([200, 0, 299, 1], dtype=np.int64)
        seeds = [5, 6, 7, 8]
        bounds = np.concatenate(([0], np.cumsum(counts)))
        hs = [10, 3, 12, 1]
        got_idx = hash_indices_ragged(words, seeds, hs, counts)
        got_mod = hash_mod_ragged(words, seeds, 1000, counts)
        for k in range(len(counts)):
            lo, hi = bounds[k], bounds[k + 1]
            assert np.array_equal(
                got_idx[lo:hi], hash_indices(words[lo:hi], seeds[k], hs[k])
            )
            assert np.array_equal(
                got_mod[lo:hi], hash_mod(words[lo:hi], seeds[k], 1000)
            )
