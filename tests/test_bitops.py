"""Unit + property tests for bit-string helpers."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.hashing.bitops import (
    bit_length_array,
    bits_to_index,
    common_prefix_len,
    common_prefix_len_array,
    index_to_bits,
)


class TestIndexBits:
    def test_examples(self):
        assert index_to_bits(5, 4) == "0101"
        assert index_to_bits(0, 3) == "000"
        assert index_to_bits(0, 0) == ""
        assert bits_to_index("0101") == 5
        assert bits_to_index("") == 0

    def test_zero_padding(self):
        # paper §III-B: pad zeros in front
        assert index_to_bits(1, 5) == "00001"

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            index_to_bits(8, 3)
        with pytest.raises(ValueError):
            index_to_bits(1, 0)

    def test_bad_bit_string(self):
        with pytest.raises(ValueError):
            bits_to_index("01x")

    @given(st.integers(0, 20).flatmap(
        lambda h: st.tuples(st.just(h), st.integers(0, max((1 << h) - 1, 0)))
    ))
    def test_roundtrip(self, h_index):
        h, index = h_index
        assert bits_to_index(index_to_bits(index, h)) == index
        assert len(index_to_bits(index, h)) == h


class TestCommonPrefix:
    def test_paper_examples(self):
        # Fig. 6 indices: 000, 010, 011, 101, 111
        assert common_prefix_len(0b000, 0b010, 3) == 1
        assert common_prefix_len(0b010, 0b011, 3) == 2
        assert common_prefix_len(0b011, 0b101, 3) == 0
        assert common_prefix_len(0b101, 0b111, 3) == 1

    def test_equal_indices(self):
        assert common_prefix_len(5, 5, 4) == 4

    @given(st.integers(1, 30), st.data())
    def test_against_string_lcp(self, h, data):
        a = data.draw(st.integers(0, (1 << h) - 1))
        b = data.draw(st.integers(0, (1 << h) - 1))
        sa, sb = index_to_bits(a, h), index_to_bits(b, h)
        lcp = 0
        while lcp < h and sa[lcp] == sb[lcp]:
            lcp += 1
        assert common_prefix_len(a, b, h) == lcp


class TestBitLengthArray:
    @given(st.lists(st.integers(0, 2**62 - 1), min_size=1, max_size=50))
    def test_matches_python_bit_length(self, values):
        arr = np.array(values, dtype=np.int64)
        expected = np.array([v.bit_length() for v in values], dtype=np.int64)
        assert np.array_equal(bit_length_array(arr), expected)

    def test_powers_of_two_edges(self):
        vals = np.array([1, 2, 3, 4, 2**52, 2**52 + 1, 2**62 - 1], dtype=np.int64)
        expected = np.array([v.bit_length() for v in vals.tolist()])
        assert np.array_equal(bit_length_array(vals), expected)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bit_length_array(np.array([-1]))


class TestCommonPrefixArray:
    def test_paper_sequence(self):
        idx = np.array([0b000, 0b010, 0b011, 0b101, 0b111])
        lcp = common_prefix_len_array(idx, 3)
        assert lcp.tolist() == [0, 1, 2, 0, 1]

    def test_requires_sorted_distinct(self):
        with pytest.raises(ValueError):
            common_prefix_len_array(np.array([3, 3]), 3)
        with pytest.raises(ValueError):
            common_prefix_len_array(np.array([4, 2]), 3)

    def test_empty(self):
        assert common_prefix_len_array(np.array([], dtype=np.int64), 5).size == 0

    @given(st.integers(1, 24), st.data())
    def test_matches_scalar(self, h, data):
        values = data.draw(
            st.sets(st.integers(0, (1 << h) - 1), min_size=1, max_size=40)
        )
        idx = np.array(sorted(values), dtype=np.int64)
        lcp = common_prefix_len_array(idx, h)
        assert lcp[0] == 0
        for i in range(1, idx.size):
            assert lcp[i] == common_prefix_len(int(idx[i - 1]), int(idx[i]), h)
