"""Unit + property tests for the binary polling tree (paper §IV-C)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.polling_tree import (
    PollingTree,
    Segment,
    decode_segments,
    segment_lengths,
    segment_values,
)

#: the paper's running example (Fig. 6/7): five singleton indices, h = 3
PAPER_INDICES = [0b000, 0b010, 0b011, 0b101, 0b111]


class TestPaperExample:
    def test_node_count_is_eleven(self):
        # Fig. 7: "the reader in this round transmits only 11 bits"
        tree = PollingTree.from_indices(PAPER_INDICES, 3)
        assert tree.n_nodes == 11
        assert tree.n_leaves == 5

    def test_segments_match_fig7(self):
        tree = PollingTree.from_indices(PAPER_INDICES, 3)
        segs = tree.segments()
        assert [s.bits() for s in segs] == ["000", "10", "1", "101", "11"]

    def test_decode_recovers_indices(self):
        tree = PollingTree.from_indices(PAPER_INDICES, 3)
        assert tree.leaf_indices() == PAPER_INDICES

    def test_closed_form_lengths(self):
        lengths = segment_lengths(np.array(PAPER_INDICES), 3)
        assert lengths.tolist() == [3, 2, 1, 3, 2]
        assert lengths.sum() == 11

    def test_closed_form_values(self):
        values = segment_values(np.array(PAPER_INDICES), 3)
        assert values.tolist() == [0b000, 0b10, 0b1, 0b101, 0b11]


class TestTreeConstruction:
    def test_duplicate_rejected(self):
        with pytest.raises(ValueError):
            PollingTree.from_indices([1, 1], 2)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            PollingTree.from_indices([4], 2)

    def test_single_index_is_a_path(self):
        tree = PollingTree.from_indices([0b1010], 4)
        assert tree.n_nodes == 4
        assert [s.bits() for s in tree.segments()] == ["1010"]

    def test_full_tree(self):
        h = 3
        tree = PollingTree.from_indices(list(range(8)), h)
        # complete binary tree: 2 + 4 + 8 = 14 nodes
        assert tree.n_nodes == 14
        assert tree.leaf_indices() == list(range(8))

    def test_preorder_visits_root_first(self):
        tree = PollingTree.from_indices([0, 3], 2)
        order = tree.preorder()
        assert order[0] is tree.root


class TestDecodeSegments:
    def test_register_update_rule(self):
        # A starts anywhere; each segment overwrites the LAST k bits
        segs = [Segment(0b000, 3), Segment(0b10, 2), Segment(0b1, 1)]
        assert decode_segments(segs, 3) == [0b000, 0b010, 0b011]

    def test_invalid_segment_length(self):
        with pytest.raises(ValueError):
            decode_segments([Segment(0, 4)], 3)

    def test_value_too_wide(self):
        with pytest.raises(ValueError):
            decode_segments([Segment(0b111, 2)], 3)


@st.composite
def index_sets(draw):
    h = draw(st.integers(1, 16))
    count = draw(st.integers(1, min(1 << h, 64)))
    values = draw(
        st.sets(st.integers(0, (1 << h) - 1), min_size=count, max_size=count)
    )
    return h, sorted(values)


class TestProperties:
    @given(index_sets())
    def test_total_bits_equals_node_count(self, case):
        """Σ segment lengths == trie node count (the eq.-6 identity)."""
        h, indices = case
        tree = PollingTree.from_indices(indices, h)
        lengths = segment_lengths(np.array(indices), h)
        assert int(lengths.sum()) == tree.n_nodes

    @given(index_sets())
    def test_explicit_tree_matches_closed_form(self, case):
        h, indices = case
        tree = PollingTree.from_indices(indices, h)
        segs = tree.segments()
        assert [s.length for s in segs] == segment_lengths(
            np.array(indices), h
        ).tolist()
        assert [s.value for s in segs] == segment_values(
            np.array(indices), h
        ).tolist()

    @given(index_sets())
    def test_roundtrip_through_register(self, case):
        """Broadcast + tag-register decoding recovers every index."""
        h, indices = case
        tree = PollingTree.from_indices(indices, h)
        assert decode_segments(tree.segments(), h) == indices

    @given(index_sets())
    def test_tree_never_beats_lower_bound_nor_naive(self, case):
        """m <= nodes <= m*h: the tree saves vs naive h*m broadcasting."""
        h, indices = case
        tree = PollingTree.from_indices(indices, h)
        m = len(indices)
        assert m <= tree.n_nodes <= m * h

    @given(index_sets())
    def test_insertion_order_invariance(self, case):
        """The trie (hence wire cost) is independent of insertion order."""
        h, indices = case
        shuffled = list(reversed(indices))
        a = PollingTree.from_indices(indices, h)
        b = PollingTree.from_indices(shuffled, h)
        assert a.n_nodes == b.n_nodes
        assert a.leaf_indices() == b.leaf_indices()
