"""Integration tests: discrete-event execution vs the planner.

The strongest checks in the repository: independent tag state machines
must reproduce exactly the behaviour the reader-side planner predicted,
and the event clock must agree with the closed-form wire-time model.
"""

import numpy as np
import pytest

from repro.baselines.mic import MIC
from repro.core.coded_polling import CodedPolling
from repro.core.cpp import CPP, EnhancedCPP
from repro.core.ehpp import EHPP
from repro.core.hpp import HPP
from repro.core.tpp import TPP
from repro.phy.channel import BitErrorChannel
from repro.phy.link import LinkBudget, plan_wire_time
from repro.sim.executor import build_tag_machines, execute_plan, simulate
from repro.workloads.tagsets import clustered_tagset, uniform_tagset

PROTOCOLS = [CPP(), CodedPolling(), HPP(), EHPP(subset_size=60), TPP(), MIC()]


@pytest.mark.parametrize("proto", PROTOCOLS, ids=lambda p: p.name)
@pytest.mark.parametrize("info_bits", [1, 16])
def test_des_time_matches_plan(proto, info_bits):
    tags = uniform_tagset(200, np.random.default_rng(1))
    plan = proto.plan(tags, np.random.default_rng(42))
    result = execute_plan(plan, tags, info_bits=info_bits)
    if result.n_retries == 0:
        assert result.time_us == pytest.approx(
            plan_wire_time(plan, info_bits), rel=1e-9
        )
        assert result.reader_bits == plan.reader_bits
    else:
        # only CP can retry on the ideal channel (2^-16 bystander false
        # positives recovered via bare-ID polls) — costs extra air time
        assert proto.name == "CP"
        assert result.time_us > plan_wire_time(plan, info_bits)
    assert result.all_read


@pytest.mark.parametrize("proto", PROTOCOLS, ids=lambda p: p.name)
def test_des_reads_each_tag_once(proto):
    tags = uniform_tagset(150, np.random.default_rng(2))
    result = simulate(proto, tags, info_bits=1, seed=7)
    assert sorted(result.polled_order) == list(range(150))


def test_ecpp_des_matches_plan():
    tags = clustered_tagset(150, np.random.default_rng(3), n_categories=3)
    plan = EnhancedCPP().plan(tags, np.random.default_rng(4))
    result = execute_plan(plan, tags, info_bits=8)
    assert result.time_us == pytest.approx(plan_wire_time(plan, 8), rel=1e-9)
    assert result.all_read


def test_mic_non_uniform_cost_matches_matching_budget():
    tags = uniform_tagset(150, np.random.default_rng(5))
    budget = LinkBudget(empty_slot_full_cost=False)
    plan = MIC(uniform_slot_cost=False).plan(tags, np.random.default_rng(6))
    result = execute_plan(plan, tags, info_bits=1, budget=budget)
    assert result.time_us == pytest.approx(
        plan_wire_time(plan, 1, budget=budget), rel=1e-9
    )


def test_trace_events_recorded():
    tags = uniform_tagset(30, np.random.default_rng(7))
    result = simulate(HPP(), tags, info_bits=1)
    from repro.sim.engine import EventKind

    assert result.trace.count(EventKind.TAG_READ) == 30
    assert result.trace.count(EventKind.COLLISION) == 0
    # clock is monotone
    times = [e.time_us for e in result.trace]
    assert times == sorted(times)


def test_keep_trace_false_drops_events():
    tags = uniform_tagset(20, np.random.default_rng(8))
    result = simulate(TPP(), tags, keep_trace=False)
    assert len(result.trace) == 0
    assert result.trace.duration_us == 0.0
    assert result.all_read


@pytest.mark.parametrize("proto", PROTOCOLS, ids=lambda p: p.name)
def test_keep_trace_false_preserves_all_counters(proto):
    """Dropping the trace must not change any measured quantity."""
    tags = uniform_tagset(120, np.random.default_rng(21))
    kept = simulate(proto, tags, info_bits=8, seed=13, keep_trace=True)
    dropped = simulate(proto, tags, info_bits=8, seed=13, keep_trace=False)
    assert dropped.reader_bits == kept.reader_bits
    assert dropped.tag_bits == kept.tag_bits
    assert dropped.n_retries == kept.n_retries
    assert dropped.time_us == kept.time_us
    assert dropped.polled_order == kept.polled_order
    assert len(kept.trace) > 0 and len(dropped.trace) == 0


def test_keep_trace_false_preserves_counters_under_bit_errors():
    """Same parity on the lossy path, where retries mutate the air state."""
    tags = uniform_tagset(120, np.random.default_rng(22))
    channel = BitErrorChannel(0.002)
    kept = simulate(TPP(), tags, info_bits=8, seed=14,
                    channel=channel, keep_trace=True)
    dropped = simulate(TPP(), tags, info_bits=8, seed=14,
                       channel=BitErrorChannel(0.002), keep_trace=False)
    assert kept.n_retries > 0  # the channel actually bit
    assert dropped.n_retries == kept.n_retries
    assert dropped.reader_bits == kept.reader_bits
    assert dropped.tag_bits == kept.tag_bits
    assert dropped.time_us == kept.time_us
    assert dropped.polled_order == kept.polled_order


def test_coded_polling_des_matches_plan():
    tags = uniform_tagset(101, np.random.default_rng(10))  # odd: tail tag
    plan = CodedPolling().plan(tags, np.random.default_rng(11))
    result = execute_plan(plan, tags, info_bits=4)
    assert result.all_read
    assert result.time_us == pytest.approx(plan_wire_time(plan, 4), rel=1e-9)
    assert result.reader_bits == plan.reader_bits


def test_dfsa_has_no_des():
    from repro.baselines.aloha import DFSA

    tags = uniform_tagset(10, np.random.default_rng(9))
    plan = DFSA().plan(tags, np.random.default_rng(9))
    with pytest.raises(NotImplementedError):
        build_tag_machines(plan, tags)


class TestLossyChannel:
    @pytest.mark.parametrize(
        "proto",
        [CPP(), CodedPolling(), HPP(), EHPP(subset_size=60), TPP()],
        ids=lambda p: p.name,
    )
    def test_retry_recovers_all_tags(self, proto):
        tags = uniform_tagset(120, np.random.default_rng(10))
        result = simulate(proto, tags, info_bits=8, seed=3,
                          channel=BitErrorChannel(0.002))
        assert result.all_read

    def test_lossy_run_costs_more(self):
        tags = uniform_tagset(200, np.random.default_rng(11))
        clean = simulate(HPP(), tags, info_bits=8, seed=5)
        lossy = simulate(HPP(), tags, info_bits=8, seed=5,
                         channel=BitErrorChannel(0.004))
        assert lossy.n_retries > 0
        assert lossy.time_us > clean.time_us

    def test_retries_grow_with_ber(self):
        tags = uniform_tagset(200, np.random.default_rng(12))
        r_low = simulate(TPP(), tags, seed=1, channel=BitErrorChannel(0.0005))
        r_high = simulate(TPP(), tags, seed=1, channel=BitErrorChannel(0.005))
        assert r_high.n_retries > r_low.n_retries

    def test_mic_rejects_lossy_channel(self):
        tags = uniform_tagset(50, np.random.default_rng(13))
        with pytest.raises(NotImplementedError):
            simulate(MIC(), tags, channel=BitErrorChannel(0.01))


class TestMissingTags:
    @pytest.mark.parametrize("proto", [CPP(), HPP(), TPP(), MIC()],
                             ids=lambda p: p.name)
    def test_exact_detection_ideal_channel(self, proto):
        tags = uniform_tagset(150, np.random.default_rng(14))
        present = np.setdiff1d(np.arange(150), np.array([3, 77, 149]))
        result = simulate(proto, tags, present=present, seed=2)
        assert result.missing == [3, 77, 149]
        assert sorted(result.polled_order) == present.tolist()

    def test_lossy_channel_detection(self):
        tags = uniform_tagset(150, np.random.default_rng(15))
        present = np.setdiff1d(np.arange(150), np.array([10, 20]))
        result = simulate(HPP(), tags, present=present, seed=2,
                          channel=BitErrorChannel(0.001), missing_attempts=6)
        assert result.missing == [10, 20]

    def test_nobody_missing(self):
        tags = uniform_tagset(80, np.random.default_rng(16))
        result = simulate(TPP(), tags, present=np.arange(80), seed=1)
        assert result.missing == []
