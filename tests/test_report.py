"""Tests for the markdown report writer."""

import pytest

from repro.experiments.common import ExperimentResult, Series
from repro.experiments.report import (
    comparison_row_md,
    series_table_md,
    table_md,
    write_markdown_report,
)
from repro.experiments.tables import table1


@pytest.fixture
def result():
    return ExperimentResult(
        name="demo",
        title="a demo curve",
        series=[
            Series("a", [1.0, 2.0], [0.5, 0.25]),
            Series("b", [1.0, 2.0], [1.5, 2.5]),
        ],
        notes={"k": "v"},
    )


class TestSeriesTable:
    def test_markdown_structure(self, result):
        md = series_table_md(result)
        assert "### demo" in md
        assert "| x | a | b |" in md
        assert "| 1 | 0.500 | 1.500 |" in md
        assert "*k*: v" in md

    def test_ragged_series_render_dash(self):
        r = ExperimentResult(
            name="r", title="t",
            series=[Series("a", [1.0, 2.0], [1.0, 2.0]),
                    Series("b", [1.0, 2.0], [3.0])],
        )
        assert "—" in series_table_md(r)


class TestTableMd:
    def test_table1_renders(self):
        t = table1(n_values=(200,), n_runs=2, seed=1)
        md = table_md(t)
        assert "Table I" in md
        assert "| CPP |" in md
        assert "n=200" in md


class TestComparisonRow:
    def test_deviation_computed(self):
        row = comparison_row_md("TPP @1e4", 4.39, 4.42)
        assert "paper 4.39" in row
        assert "measured 4.42" in row
        assert "+0.7 %" in row

    def test_zero_paper_value_rejected(self):
        with pytest.raises(ValueError):
            comparison_row_md("x", 0.0, 1.0)


class TestWriteReport:
    def test_writes_combined_document(self, tmp_path, result):
        t = table1(n_values=(200,), n_runs=1, seed=2)
        out = write_markdown_report(tmp_path / "report.md", [result, t],
                                    title="Combined")
        text = out.read_text()
        assert text.startswith("# Combined")
        assert "### demo" in text
        assert "Table I" in text
