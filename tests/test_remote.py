"""Distributed sweep execution: frame protocol, blob codec, cost-model
host dimension, host agents, and the failover contract.

The transport (:mod:`repro.experiments.remote`) is invisible by
contract: a sweep dispatched to host agents must produce the same
floats, the same cache keys, and byte-identical ``cells-*.seg``
segments as local execution — and killing an agent mid-sweep must
never lose or duplicate a cell.  These tests pin the protocol layer
with socketpairs and the execution contract with real agent
subprocesses on localhost.
"""

from __future__ import annotations

import json
import os
import pickle
import signal
import socket
import time
import zlib
from collections import deque
from pathlib import Path

import numpy as np
import pytest

from repro.core.hpp import HPP
from repro.core.tpp import TPP
from repro.experiments import remote, shm
from repro.experiments.costmodel import CostModel, assign_to_hosts
from repro.experiments.runner import DESMetric, ResultCache, SweepRunner

pytestmark = pytest.mark.skipif(
    not Path("/dev/shm").is_dir(), reason="no POSIX shared memory"
)


@pytest.fixture(autouse=True)
def _clean_transport(monkeypatch):
    """Every test starts with no cached dispatcher and a quiet env."""
    monkeypatch.delenv("REPRO_HOSTS", raising=False)
    monkeypatch.delenv("REPRO_SHIP_COMPRESS_MIN", raising=False)
    monkeypatch.delenv("REPRO_REMOTE_KEY", raising=False)
    remote.close_dispatchers()
    remote._warned_unreachable.clear()
    yield
    remote.close_dispatchers()
    shm.close_arena()
    shm.detach_all()
    shm.shutdown_worker_pool()


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------
class TestFraming:
    def _pair(self):
        a, b = socket.socketpair()
        a.settimeout(5.0)
        b.settimeout(5.0)
        return a, b

    @pytest.mark.parametrize("payload", [
        b"", b"x", b"hello world", os.urandom(100)])
    def test_round_trip_small(self, payload):
        a, b = self._pair()
        try:
            remote.send_frame(a, remote.MSG_SHARD, payload)
            mtype, got, _ = remote.recv_frame(b)
            assert mtype == remote.MSG_SHARD
            assert got == payload
        finally:
            a.close()
            b.close()

    def test_large_compressible_payload_ships_compressed(self):
        payload = b"A" * 100_000  # far over the threshold, compresses well
        a, b = self._pair()
        try:
            wire = remote.send_frame(a, remote.MSG_RESULT, payload)
            assert wire < len(payload) // 10
            mtype, got, _ = remote.recv_frame(b)
            assert mtype == remote.MSG_RESULT and got == payload
        finally:
            a.close()
            b.close()

    def test_corrupt_payload_fails_crc(self):
        a, b = self._pair()
        try:
            payload = b"precious bits"
            header = remote.FRAME_HEADER.pack(
                remote.MAGIC, remote.PROTOCOL_VERSION, 0, remote.MSG_SHARD,
                len(payload), len(payload), zlib.crc32(payload),
            )
            corrupted = bytearray(payload)
            corrupted[3] ^= 0xFF  # one flipped byte on the wire
            a.sendall(header + bytes(corrupted))
            with pytest.raises(remote.FrameError, match="CRC"):
                remote.recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_bad_magic_rejected(self):
        a, b = self._pair()
        try:
            header = remote.FRAME_HEADER.pack(
                b"HTTP", remote.PROTOCOL_VERSION, 0, 1, 0, 0, zlib.crc32(b""))
            a.sendall(header)
            with pytest.raises(remote.FrameError, match="magic"):
                remote.recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_version_mismatch_rejected(self):
        a, b = self._pair()
        try:
            header = remote.FRAME_HEADER.pack(
                remote.MAGIC, remote.PROTOCOL_VERSION + 1, 0, 1,
                0, 0, zlib.crc32(b""))
            a.sendall(header)
            with pytest.raises(remote.FrameError, match="version"):
                remote.recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_truncated_stream_is_a_frame_error(self):
        a, b = self._pair()
        try:
            header = remote.FRAME_HEADER.pack(
                remote.MAGIC, remote.PROTOCOL_VERSION, 0, 1,
                1000, 1000, 0)
            a.sendall(header + b"only a little")
            a.close()
            with pytest.raises(remote.FrameError, match="closed"):
                remote.recv_frame(b)
        finally:
            b.close()


class TestFrameAuth:
    """Per-frame HMAC: frames are authenticated before anything is
    unpickled, and key presence must match on both sides."""

    KEY = b"unit-test-shared-secret"

    def _pair(self):
        a, b = socket.socketpair()
        a.settimeout(5.0)
        b.settimeout(5.0)
        return a, b

    def test_resolve_key(self, monkeypatch):
        assert remote.resolve_key(None) is None
        assert remote.resolve_key("abc") == b"abc"
        assert remote.resolve_key(b"abc") == b"abc"
        monkeypatch.setenv("REPRO_REMOTE_KEY", "from-env")
        assert remote.resolve_key(None) == b"from-env"
        assert remote.resolve_key("explicit wins") == b"explicit wins"

    def test_keyed_round_trip(self):
        a, b = self._pair()
        try:
            wire = remote.send_frame(a, remote.MSG_SHARD, b"bits", self.KEY)
            assert wire >= remote.FRAME_HEADER.size + 4 + remote.AUTH_TAG_LEN
            mtype, got, counted = remote.recv_frame(b, self.KEY)
            assert mtype == remote.MSG_SHARD and got == b"bits"
            assert counted == wire  # tag bytes counted on both ends
        finally:
            a.close()
            b.close()

    def test_wrong_key_rejected(self):
        a, b = self._pair()
        try:
            remote.send_frame(a, remote.MSG_SHARD, b"bits", self.KEY)
            with pytest.raises(remote.FrameError, match="HMAC"):
                remote.recv_frame(b, b"a different key")
        finally:
            a.close()
            b.close()

    def test_bare_frame_rejected_by_keyed_receiver(self):
        a, b = self._pair()
        try:
            remote.send_frame(a, remote.MSG_SHARD, b"bits")
            with pytest.raises(remote.FrameError, match="unauthenticated"):
                remote.recv_frame(b, self.KEY)
        finally:
            a.close()
            b.close()

    def test_keyed_frame_rejected_by_keyless_receiver(self):
        a, b = self._pair()
        try:
            remote.send_frame(a, remote.MSG_SHARD, b"bits", self.KEY)
            with pytest.raises(remote.FrameError, match="REPRO_REMOTE_KEY"):
                remote.recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_tampered_payload_fails_authentication(self):
        """A flipped payload byte under a valid-looking frame fails the
        MAC (checked before CRC and before any deserialization)."""
        a, b = self._pair()
        try:
            payload = b"precious bits"
            header = remote.FRAME_HEADER.pack(
                remote.MAGIC, remote.PROTOCOL_VERSION, remote.FLAG_HMAC,
                remote.MSG_SHARD, len(payload), len(payload),
                zlib.crc32(payload),
            )
            tag = remote._frame_tag(self.KEY, header, payload)
            corrupted = bytearray(payload)
            corrupted[0] ^= 0xFF
            a.sendall(header + bytes(corrupted) + tag)
            with pytest.raises(remote.FrameError, match="HMAC"):
                remote.recv_frame(b, self.KEY)
        finally:
            a.close()
            b.close()


# ----------------------------------------------------------------------
# the shard blob codec (shared by socket frames and the local pool)
# ----------------------------------------------------------------------
class TestBlobCodec:
    def test_round_trip_below_threshold_is_raw(self):
        raw = b"tiny shard"
        blob = remote.pack_blob(raw)
        assert blob[:1] == b"\x00" and blob[1:] == raw
        assert remote.unpack_blob(blob) == raw

    def test_round_trip_above_threshold_compresses(self):
        raw = json.dumps([[i, i % 7] for i in range(5000)]).encode()
        blob = remote.pack_blob(raw)
        assert blob[:1] == b"\x01"
        assert len(blob) < len(raw) // 3
        assert remote.unpack_blob(blob) == raw

    def test_incompressible_ships_raw_even_above_threshold(self):
        raw = os.urandom(100_000)
        blob = remote.pack_blob(raw)
        assert blob[:1] == b"\x00"  # deflate would only grow it
        assert remote.unpack_blob(blob) == raw

    def test_threshold_env_gate(self, monkeypatch):
        raw = b"z" * 2048
        assert remote.pack_blob(raw)[:1] == b"\x00"  # default 4096
        monkeypatch.setenv("REPRO_SHIP_COMPRESS_MIN", "1024")
        assert remote.pack_blob(raw)[:1] == b"\x01"

    def test_unknown_tag_raises(self):
        with pytest.raises(remote.FrameError, match="tag"):
            remote.unpack_blob(b"\x07garbage")

    def test_parse_hosts(self):
        assert remote.parse_hosts(None) == ()
        assert remote.parse_hosts("") == ()
        assert remote.parse_hosts("a:1, b:2 ,") == ("a:1", "b:2")
        assert remote.parse_hosts(["x:7355"]) == ("x:7355",)
        for bad in ("nohost", "h:notaport", "h:0", ":5"):
            with pytest.raises(ValueError):
                remote.parse_hosts(bad)


# ----------------------------------------------------------------------
# the cost model's host dimension + atomic merge save
# ----------------------------------------------------------------------
class TestCostModelHosts:
    def test_assign_to_hosts_respects_capacity(self):
        costs = [1.0] * 100
        owner = assign_to_hosts(costs, [3.0, 1.0])
        counts = [owner.count(0), owner.count(1)]
        # the 3x host should carry ~3x the shards
        assert 65 <= counts[0] <= 85
        assert sorted(set(owner)) == [0, 1]
        assert len(owner) == 100

    def test_assign_to_hosts_single_host(self):
        assert assign_to_hosts([5.0, 1.0], [2.0]) == [0, 0]
        with pytest.raises(ValueError):
            assign_to_hosts([1.0], [])

    def test_host_speed_seed_and_ema(self):
        model = CostModel(bench_path="/nonexistent")
        assert model.host_speed("h:1") == 1.0
        model.seed_host("h:1", 2.0)
        assert model.host_speed("h:1") == 2.0
        model.seed_host("h:1", 9.0)  # seed never overwrites
        assert model.host_speed("h:1") == 2.0
        model.observe_host("h:1", predicted=4.0, elapsed=1.0)  # obs 4.0
        assert model.host_speed("h:1") == pytest.approx(3.0)  # EMA 0.5

    def test_save_is_atomic_and_merges(self, tmp_path):
        path = tmp_path / "costs.json"
        first = CostModel(bench_path="/nonexistent")
        first.table["HPP|b10"] = 1.5
        first.hosts["h:1"] = 2.0
        first.save(path)
        # a second, concurrent-ish model that learned different buckets
        second = CostModel(bench_path="/nonexistent")
        second.table["EHPP|b12"] = 9.0
        second.save(path)
        data = json.loads(path.read_text())
        assert data["table"] == {"HPP|b10": 1.5, "EHPP|b12": 9.0}
        assert data["hosts"] == {"h:1": 2.0}
        assert not list(tmp_path.glob("*.tmp.*")), "tmp file left behind"

    def test_save_prefers_own_fresher_buckets(self, tmp_path):
        path = tmp_path / "costs.json"
        stale = CostModel(bench_path="/nonexistent")
        stale.table["HPP|b10"] = 99.0
        stale.save(path)
        fresh = CostModel(bench_path="/nonexistent")
        fresh.table["HPP|b10"] = 1.0
        fresh.save(path)
        assert json.loads(path.read_text())["table"]["HPP|b10"] == 1.0

    def test_load_round_trips_hosts(self, tmp_path):
        path = tmp_path / "costs.json"
        model = CostModel(bench_path="/nonexistent")
        model.hosts["agent:9"] = 1.7
        model.save(path)
        loaded = CostModel(bench_path="/nonexistent")
        loaded.load(path)
        assert loaded.host_speed("agent:9") == 1.7

    def test_corrupt_file_survived(self, tmp_path):
        path = tmp_path / "costs.json"
        path.write_text("{definitely not json")
        model = CostModel(bench_path="/nonexistent")
        model.load(path)  # must not raise
        model.table["HPP|b5"] = 0.5
        model.save(path)  # merge with corrupt disk = just ours
        assert json.loads(path.read_text())["table"] == {"HPP|b5": 0.5}


# ----------------------------------------------------------------------
# live agents on localhost
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def agent():
    """One warm host agent on an ephemeral localhost port."""
    proc, address = remote.spawn_local_agent(jobs=2)
    yield address
    proc.terminate()
    proc.wait(timeout=10)


class TestHostAgent:
    def test_hello_advertises_cores_and_throughput(self, agent):
        client = remote.HostClient(agent)
        try:
            assert client.cores == 2
            assert client.agent_pid > 0
            assert client.throughput > 0
        finally:
            client.close()

    def test_ping_pong(self, agent):
        client = remote.HostClient(agent)
        try:
            client.send(remote.MSG_PING, b"")
            mtype, _ = client.recv(timeout=10.0)
            assert mtype == remote.MSG_PONG
        finally:
            client.close()

    def test_bad_entry_name_gets_error_frame(self, agent):
        client = remote.HostClient(agent)
        try:
            client.send(remote.MSG_SHARD, pickle.dumps(
                (0, "rm_rf", b"\x00whatever")))
            mtype, payload = client.recv(timeout=30.0)
            assert mtype == remote.MSG_ERROR
            shard_id, message = pickle.loads(payload)
            assert shard_id == 0 and "rm_rf" in message
        finally:
            client.close()

    def test_remote_sweep_bit_identical_with_store_bytes(self, agent,
                                                         tmp_path):
        """The acceptance contract: same floats, same cache keys, and
        byte-identical CellStore segments, local pool vs host agent."""
        grids = {}
        for mode, hosts in (("local", None), ("remote", agent)):
            cache_dir = tmp_path / f"cache-{mode}"
            runner = SweepRunner(
                jobs=2, cache=ResultCache(cache_dir), hosts=hosts)
            des = runner.sweep_values(
                TPP(), [200, 300], n_runs=4, seed=7,
                metric=DESMetric(ber=1e-4))
            plan = runner.sweep_values(
                HPP(), [200, 300], n_runs=4, seed=7, metric="time_us")
            grids[mode] = (des, plan, _store_bytes(cache_dir), runner)
        des_l, plan_l, bytes_l, _ = grids["local"]
        des_r, plan_r, bytes_r, remote_runner = grids["remote"]
        np.testing.assert_array_equal(des_r, des_l)
        np.testing.assert_array_equal(plan_r, plan_l)
        assert bytes_r == bytes_l, "CellStore segments diverged"
        assert remote_runner.remote_shards > 0
        assert remote_runner.batch_coverage["hosts_live"] == 1
        # the host-speed EMA learned from the dispatcher-side round-trip
        # clock: completed predicted cost over busy core-seconds
        dispatcher = remote.get_dispatcher((agent,))
        assert dispatcher is not None
        cost_done, core_seconds = dispatcher.last_host_stats[agent]
        assert cost_done > 0 and core_seconds > 0
        assert agent in remote_runner.cost_model.hosts

    def test_remote_rehits_local_cache(self, agent, tmp_path):
        """The transport never enters cache keys: a locally-written
        cache is fully served to a remote-dispatching runner."""
        cache_dir = tmp_path / "cache"
        writer = SweepRunner(jobs=2, cache=ResultCache(cache_dir))
        writer.sweep_values(HPP(), [200], n_runs=4, seed=3,
                            metric="time_us")
        reader = SweepRunner(jobs=1, cache=ResultCache(cache_dir),
                             hosts=agent)
        reader.sweep_values(HPP(), [200], n_runs=4, seed=3,
                            metric="time_us")
        assert reader.cache.hits == 4 and reader.cache.misses == 0
        assert reader.remote_shards == 0  # nothing left to compute

    def test_inline_manifests_cross_the_socket(self, agent, monkeypatch):
        """With publication forced on, remote shards carry inline column
        bytes (no /dev/shm name) and still compute identical values."""
        monkeypatch.setenv("REPRO_SHM_MIN_BYTES", "0")
        ref = SweepRunner(jobs=1, cache=None).sweep_values(
            HPP(), [300, 400], n_runs=3, seed=5, metric="n_rounds")
        runner = SweepRunner(jobs=1, cache=None, hosts=agent)
        out = runner.sweep_values(
            HPP(), [300, 400], n_runs=3, seed=5, metric="n_rounds")
        np.testing.assert_array_equal(out, ref)
        assert runner.remote_shards > 0

    def test_env_var_gates_hosts(self, agent, monkeypatch):
        monkeypatch.setenv("REPRO_HOSTS", agent)
        runner = SweepRunner(jobs=1, cache=None)
        assert runner.hosts_tuple == (agent,)
        runner.sweep_values(HPP(), [128, 192], n_runs=3, seed=1,
                            metric="n_rounds")
        assert runner.remote_shards > 0

    def test_unset_hosts_is_pure_local(self):
        runner = SweepRunner(jobs=2, cache=None)
        assert runner.hosts_tuple == ()
        runner.sweep_values(HPP(), [128], n_runs=3, seed=1,
                            metric="n_rounds")
        assert runner.remote_shards == 0
        assert runner.batch_coverage["hosts_live"] == 0

    def test_nonloopback_bind_requires_key(self):
        """Shard frames are pickles; an open unauthenticated port would
        be remote code execution, so the agent refuses to serve one."""
        with pytest.raises(RuntimeError, match="REPRO_REMOTE_KEY"):
            remote.HostAgent(bind="0.0.0.0").start()

    def test_keyed_agent_authenticates_clients(self, monkeypatch):
        """A keyed agent rejects keyless and wrong-key clients, serves
        same-key clients, and a keyed sweep stays bit-identical."""
        env = dict(os.environ, REPRO_REMOTE_KEY="s3cret")
        proc, address = remote.spawn_local_agent(jobs=1, env=env)
        try:
            with pytest.raises(remote.FrameError, match="REPRO_REMOTE_KEY"):
                remote.HostClient(address)  # keyless: HELLO rejected
            with pytest.raises(remote.FrameError, match="HMAC"):
                remote.HostClient(address, key="wrong")
            client = remote.HostClient(address, key="s3cret")
            try:
                client.send(remote.MSG_PING, b"")
                mtype, _ = client.recv(timeout=10.0)
                assert mtype == remote.MSG_PONG
            finally:
                client.close()
            monkeypatch.setenv("REPRO_REMOTE_KEY", "s3cret")
            runner = SweepRunner(jobs=1, cache=None, hosts=address)
            out = runner.sweep_values(HPP(), [200, 300], n_runs=3,
                                      seed=5, metric="n_rounds")
            ref = SweepRunner(jobs=1, cache=None).sweep_values(
                HPP(), [200, 300], n_runs=3, seed=5, metric="n_rounds")
            np.testing.assert_array_equal(out, ref)
            assert runner.remote_shards > 0
        finally:
            proc.terminate()
            proc.wait(timeout=10)


class TestFailover:
    def test_unreachable_agent_falls_back_cleanly(self):
        """Hosts configured but nobody answering: the sweep runs on the
        local pool, values identical, no exception."""
        runner = SweepRunner(jobs=2, cache=None, hosts="127.0.0.1:9")
        out = runner.sweep_values(HPP(), [128, 192], n_runs=3, seed=2,
                                  metric="n_rounds")
        ref = SweepRunner(jobs=1, cache=None).sweep_values(
            HPP(), [128, 192], n_runs=3, seed=2, metric="n_rounds")
        np.testing.assert_array_equal(out, ref)
        assert runner.remote_shards == 0

    def test_killed_agent_never_loses_a_cell(self, tmp_path):
        """SIGKILL the only agent after the dispatcher has connected:
        every shard is reassigned (here: to the local lane), values are
        bit-identical, and the failover is reported."""
        proc, address = remote.spawn_local_agent(jobs=1)
        try:
            dispatcher = remote.get_dispatcher((address,))
            assert dispatcher is not None and len(dispatcher.live()) == 1
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=10)
            runner = SweepRunner(jobs=1, cache=None, hosts=address)
            out = runner.sweep_values(
                TPP(), [200, 250], n_runs=3, seed=4, metric="n_rounds")
            ref = SweepRunner(jobs=1, cache=None).sweep_values(
                TPP(), [200, 250], n_runs=3, seed=4, metric="n_rounds")
            np.testing.assert_array_equal(out, ref)
            assert runner.failovers > 0
            assert runner.batch_coverage["failovers"] == runner.failovers
        finally:
            if proc.poll() is None:  # pragma: no cover - kill raced
                proc.kill()
            proc.wait(timeout=10)

    def test_dead_host_shards_move_to_survivor(self):
        """Two agents, one SIGKILLed after connect: the survivor (or the
        local lane) absorbs the dead host's shards with identical
        values and no duplicates."""
        proc_a, addr_a = remote.spawn_local_agent(jobs=1)
        proc_b, addr_b = remote.spawn_local_agent(jobs=1)
        hosts = f"{addr_a},{addr_b}"
        try:
            dispatcher = remote.get_dispatcher(remote.parse_hosts(hosts))
            assert dispatcher is not None and len(dispatcher.live()) == 2
            os.kill(proc_b.pid, signal.SIGKILL)
            proc_b.wait(timeout=10)
            runner = SweepRunner(jobs=1, cache=None, hosts=hosts)
            out = runner.sweep_values(
                TPP(), [200, 250], n_runs=4, seed=6, metric="n_rounds")
            ref = SweepRunner(jobs=1, cache=None).sweep_values(
                TPP(), [200, 250], n_runs=4, seed=6, metric="n_rounds")
            np.testing.assert_array_equal(out, ref)
        finally:
            for proc in (proc_a, proc_b):
                if proc.poll() is None:
                    proc.terminate()
                proc.wait(timeout=10)

    def test_send_failure_never_loses_a_shard(self):
        """A send that dies mid-frame (EPIPE, send timeout) must leave
        the shard visible to the dead-host handler: it joins the
        in-flight set before the frame is written, so the handler's
        pending set reassigns it instead of hanging the run."""

        class _ExplodingClient:
            address = "boom:1"
            cores = 1
            dead = False

            def __init__(self):
                self.inflight: set[int] = set()
                self.last_activity = time.monotonic()

            def send(self, mtype, payload):
                raise OSError("simulated EPIPE mid-send")

            def close(self, polite=True):
                self.dead = True

        dispatcher = remote.RemoteDispatcher(("boom:1",))
        state = remote._DispatchState(2)
        state.queues["boom:1"] = deque([0, 1])
        client = _ExplodingClient()
        dispatcher._host_loop(client, state, "chunk", [b"a", b"b"],
                              [1.0, 1.0])
        # no survivors: both shards (the one that died in send() AND the
        # still-queued one) must land on the local lane
        drained = []
        idx = state.pop_local()
        while idx is not None:
            drained.append(idx)
            idx = state.pop_local()
        assert sorted(drained) == [0, 1]
        assert state.failovers == 2
        assert client.dead

    def test_reassign_weighs_learned_host_speed(self):
        """Failover packing uses the run's capacities (cores x learned
        speed), not raw core counts: with equal cores but a 3:1 learned
        speed split, the fast host absorbs ~3x the dead host's shards."""

        class _FakeClient:
            dead = False
            cores = 2

        dispatcher = remote.RemoteDispatcher(("fast:1", "slow:1"))
        dispatcher.clients = {"fast:1": _FakeClient(), "slow:1": _FakeClient()}
        state = remote._DispatchState(40)
        state.capacities = {"fast:1": 3.0, "slow:1": 1.0}
        state.queues = {"fast:1": deque(), "slow:1": deque()}
        dispatcher._reassign(list(range(40)), state, [1.0] * 40)
        n_fast = len(state.queues["fast:1"])
        n_slow = len(state.queues["slow:1"])
        assert n_fast + n_slow == 40
        assert n_fast > 2 * n_slow  # cores alone would split 20/20

    def test_cache_version_covers_remote_source(self):
        """remote.py is on the metric path: editing the transport must
        invalidate cached cells."""
        from repro.experiments import cellstore

        assert "experiments/remote.py" in cellstore._METRIC_PATH_MODULES


def _store_bytes(cache_dir: Path) -> dict[str, bytes]:
    return {
        p.name: p.read_bytes()
        for p in sorted(cache_dir.glob("cells-*.seg"))
    }
