"""Cross-cutting property-based tests (hypothesis).

The central invariants of the whole system, checked over randomly drawn
populations, seeds, and protocol configurations:

1. every protocol plan polls every tag exactly once, with no wasted
   slots for the polling family;
2. the discrete-event execution agrees with the plan (time and bits) and
   reads every tag, for every protocol and any population;
3. wire time decomposes per the timing model (scaling T1/T2 and rates
   changes the cost exactly as the formula predicts).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.baselines.aloha import DFSA
from repro.baselines.mic import MIC
from repro.core.coded_polling import CodedPolling
from repro.core.cpp import CPP
from repro.core.ehpp import EHPP
from repro.core.hpp import HPP
from repro.core.tpp import TPP
from repro.phy.link import LinkBudget, plan_wire_time
from repro.phy.timing import C1G2Timing
from repro.sim.executor import execute_plan
from repro.workloads.tagsets import uniform_tagset

_PLAN_PROTOS = st.sampled_from(
    ["cpp", "cp", "hpp", "ehpp", "tpp", "mic", "dfsa"]
)
_DES_PROTOS = st.sampled_from(["cpp", "cp", "hpp", "ehpp", "tpp", "mic"])


def _make(name: str):
    return {
        "cpp": lambda: CPP(),
        "cp": lambda: CodedPolling(),
        "hpp": lambda: HPP(),
        "ehpp": lambda: EHPP(subset_size=40),
        "tpp": lambda: TPP(),
        "mic": lambda: MIC(k=3),
        "dfsa": lambda: DFSA(),
    }[name]()


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(proto=_PLAN_PROTOS, n=st.integers(1, 400), seed=st.integers(0, 2**31))
def test_every_plan_is_complete(proto, n, seed):
    rng = np.random.default_rng(seed)
    tags = uniform_tagset(n, rng)
    plan = _make(proto).plan(tags, rng)
    plan.validate_complete()
    assert plan.n_polls == n


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(proto=st.sampled_from(["hpp", "ehpp", "tpp"]),
       n=st.integers(1, 400), seed=st.integers(0, 2**31))
def test_polling_family_never_wastes_slots(proto, n, seed):
    rng = np.random.default_rng(seed)
    tags = uniform_tagset(n, rng)
    plan = _make(proto).plan(tags, rng)
    assert plan.wasted_slots == 0


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(proto=_DES_PROTOS, n=st.integers(1, 120),
       seed=st.integers(0, 2**31), info_bits=st.integers(0, 64))
def test_des_always_agrees_with_plan(proto, n, seed, info_bits):
    rng = np.random.default_rng(seed)
    tags = uniform_tagset(n, rng)
    plan = _make(proto).plan(tags, np.random.default_rng(seed + 1))
    result = execute_plan(plan, tags, info_bits=info_bits, keep_trace=False)
    assert result.all_read
    if proto == "cp" and result.n_retries:
        # CP's inherent 2^-16 bystander false positives trigger bare-ID
        # recovery polls on top of the planned schedule
        assert result.time_us > plan_wire_time(plan, info_bits)
    else:
        assert result.time_us == pytest.approx(
            plan_wire_time(plan, info_bits), rel=1e-9
        )
        assert result.reader_bits == plan.reader_bits
        assert result.tag_bits == n * info_bits


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(n=st.integers(1, 200), seed=st.integers(0, 2**31))
def test_tpp_round_bits_never_exceed_hpp_encoding(n, seed):
    """The tree encoding never transmits more than naive h·m bits."""
    rng = np.random.default_rng(seed)
    tags = uniform_tagset(n, rng)
    plan = TPP().plan(tags, rng)
    for r in plan.rounds:
        m = r.n_polls
        if m:
            assert int(r.poll_vector_bits.sum()) <= r.extra["h"] * m


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(n=st.integers(1, 150), seed=st.integers(0, 2**31),
       t1=st.floats(0, 500), t2=st.floats(0, 500))
def test_turnaround_cost_scales_per_poll(n, seed, t1, t2):
    """Changing T1/T2 changes total time by exactly n·Δ for polling plans."""
    rng = np.random.default_rng(seed)
    tags = uniform_tagset(n, rng)
    plan = HPP().plan(tags, np.random.default_rng(seed))
    base = LinkBudget()
    moved = LinkBudget(timing=C1G2Timing(t1_us=t1, t2_us=t2))
    delta = (t1 - 100.0) + (t2 - 50.0)
    assert moved.plan_us(plan, 1) == pytest.approx(
        base.plan_us(plan, 1) + n * delta, rel=1e-9, abs=1e-6
    )


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(n=st.integers(128, 400), seed=st.integers(0, 2**31))
def test_protocol_ordering_holds_pointwise(n, seed):
    """TPP < HPP < CP < CPP in reader bits, once n amortises round inits.

    (Below ~100 tags the 32-bit round-init commands dominate and the
    ordering between TPP and HPP can flip — measured flip rates: ~8% of
    seeds at n=64, ~2% at n=80, none observed from n=96 on; 128 leaves
    margin.  That regime is covered by the statistical tests instead.)
    """
    rng = np.random.default_rng(seed)
    tags = uniform_tagset(n, rng)
    bits = {}
    for name in ("tpp", "hpp", "cp", "cpp"):
        bits[name] = _make(name).plan(tags, np.random.default_rng(seed)).reader_bits
    assert bits["tpp"] < bits["hpp"] < bits["cp"] < bits["cpp"]


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(n=st.integers(1, 200), seed=st.integers(0, 2**31),
       absent=st.integers(0, 50))
def test_missing_detection_is_exact_for_any_subset(n, seed, absent):
    rng = np.random.default_rng(seed)
    tags = uniform_tagset(n, rng)
    k = min(absent, n)
    missing = rng.choice(n, size=k, replace=False)
    present = np.setdiff1d(np.arange(n), missing)
    plan = HPP().plan(tags, np.random.default_rng(seed))
    result = execute_plan(plan, tags, present=present, keep_trace=False)
    assert result.missing == sorted(missing.tolist())
