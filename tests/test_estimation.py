"""Tests for the cardinality-estimation substrate."""

import numpy as np
import pytest

from repro.baselines.estimation import (
    FrameObservation,
    estimate_cardinality,
    lottery_frame_estimator,
    observe_frame,
    observe_lottery_frame,
    vogt_estimator,
    zero_estimator,
)


class TestObservation:
    def test_counts_sum_to_frame(self, rng):
        obs = observe_frame(500, 512, rng)
        assert obs.empty + obs.singleton + obs.collision == 512

    def test_zero_tags_all_empty(self, rng):
        obs = observe_frame(0, 64, rng)
        assert obs.empty == 64
        assert obs.singleton == obs.collision == 0

    def test_inconsistent_counts_rejected(self):
        with pytest.raises(ValueError):
            FrameObservation(frame_size=4, empty=1, singleton=1, collision=1)

    def test_lottery_occupancy_geometric(self, rng):
        occ = observe_lottery_frame(10_000, 32, rng)
        # low slots certainly occupied, very high slots certainly not
        assert occ[:8].all()
        assert not occ[-4:].any()

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            observe_frame(10, 0, rng)
        with pytest.raises(ValueError):
            observe_frame(-1, 10, rng)
        with pytest.raises(ValueError):
            observe_lottery_frame(10, 0, rng)


class TestZeroEstimator:
    def test_unbiased_at_load_one(self):
        rng = np.random.default_rng(8)
        n, f = 2000, 2000
        est = np.mean([zero_estimator(observe_frame(n, f, rng)) for _ in range(50)])
        assert est == pytest.approx(n, rel=0.05)

    def test_saturated_frame_fallback(self):
        obs = FrameObservation(frame_size=8, empty=0, singleton=2, collision=6)
        assert zero_estimator(obs) > 8  # still a sane, finite guess


class TestVogtEstimator:
    def test_recovers_truth(self):
        rng = np.random.default_rng(9)
        n, f = 800, 1024
        est = np.mean([vogt_estimator(observe_frame(n, f, rng)) for _ in range(30)])
        assert est == pytest.approx(n, rel=0.07)

    def test_zero_tags(self):
        obs = FrameObservation(frame_size=64, empty=64, singleton=0, collision=0)
        assert vogt_estimator(obs) == 0.0


class TestLoF:
    def test_log_scale_accuracy(self):
        # LoF is coarse (powers of two) but must land within ~1.5x
        rng = np.random.default_rng(10)
        for n in (100, 1000, 10_000):
            est = estimate_cardinality(n, rng, method="lof", n_rounds=64)
            assert n / 1.6 < est < n * 1.6

    def test_single_frame_estimator_is_power_of_two_scaled(self, rng):
        occ = observe_lottery_frame(1000, 32, rng)
        est = lottery_frame_estimator(occ)
        assert est > 0

    def test_truncated_draws_do_not_clamp_onto_last_slot(self):
        """Draws past the frame are overflow, not last-slot occupancy."""

        class _FixedDraws:
            def geometric(self, p, size):
                # slots after the -1 shift: 0, 2, 9, 30 (frame_size=8)
                return np.array([1, 3, 10, 31])

        occ, overflow = observe_lottery_frame(
            4, 8, _FixedDraws(), return_overflow=True
        )
        assert occ.tolist() == [True, False, True, False,
                                False, False, False, False]
        assert not occ[-1]  # the clamp bug marked this slot
        assert overflow == 2

    def test_small_frame_bias_n10k_f8(self):
        """n=10k into an f=8 frame: every slot saturates.

        The old clamp-and-fallback path censored the estimate at
        2^8/phi ~ 331 regardless of n; the overflow-count moment
        estimator must recover the true order of magnitude.
        """
        rng = np.random.default_rng(21)
        est = estimate_cardinality(
            10_000, rng, method="lof", n_rounds=32, frame_size=8
        )
        assert 5_000 < est < 20_000

    def test_overflow_de_censors_saturated_frame(self):
        occ = np.ones(8, dtype=bool)
        assert lottery_frame_estimator(occ, overflow=39) == 39 * 256.0
        # no overflow info: the old conservative fallback survives
        assert lottery_frame_estimator(occ) == pytest.approx(256.0 / 0.77351)


class TestEstimateCardinality:
    @pytest.mark.parametrize("method", ["zero", "vogt"])
    def test_accuracy_with_bootstrap_sizing(self, method):
        rng = np.random.default_rng(11)
        for n in (300, 3000):
            est = estimate_cardinality(n, rng, method=method, n_rounds=24)
            assert est == pytest.approx(n, rel=0.15)

    def test_more_rounds_less_variance(self):
        n = 1000
        few, many = [], []
        for trial in range(12):
            few.append(estimate_cardinality(
                n, np.random.default_rng(trial), "zero", n_rounds=2,
                frame_size=1000))
            many.append(estimate_cardinality(
                n, np.random.default_rng(trial), "zero", n_rounds=32,
                frame_size=1000))
        assert np.std(many) < np.std(few)

    def test_unknown_method_rejected(self, rng):
        with pytest.raises(ValueError):
            estimate_cardinality(10, rng, method="magic")

    def test_invalid_rounds(self, rng):
        with pytest.raises(ValueError):
            estimate_cardinality(10, rng, n_rounds=0)

    def test_feeds_protocol_parameterisation(self):
        """The use case: size EHPP's circles without knowing n exactly."""
        from repro.core.ehpp import EHPP
        from repro.workloads.tagsets import uniform_tagset

        n = 2500
        rng = np.random.default_rng(12)
        n_hat = estimate_cardinality(n, rng, method="zero", n_rounds=16)
        tags = uniform_tagset(n, rng)
        plan = EHPP().plan(tags, rng)  # EHPP adapts to the real remainder
        assert plan.n_polls == n
        assert 0.8 * n < n_hat < 1.2 * n