"""Triple-parity matrix (ISSUE 3): for every protocol, the legacy
per-round loop, the vectorised schedule coster, and the ideal-channel
DES agree on wire time.

- ``plan_wire_time(plan) == schedule_time_us(compile_plan(plan))`` must
  hold with EXACT float equality (the schedule coster replicates the
  loop's IEEE-754 operation order).
- Both must match the discrete-event executor's clock on BOTH backends
  (to 1e-9 relative: the DES advances turnarounds event by event, which
  regroups the same terms).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.aloha import DFSA, FramedSlottedAloha
from repro.baselines.mic import MIC
from repro.core.coded_polling import CodedPolling
from repro.core.cpp import CPP, EnhancedCPP
from repro.core.ehpp import EHPP
from repro.core.hpp import HPP
from repro.core.tpp import TPP
from repro.phy.link import LinkBudget, plan_wire_time, schedule_time_us
from repro.phy.schedule import compile_plan
from repro.sim.executor import execute_plan
from repro.workloads.tagsets import uniform_tagset

INFO_BITS = 8

ALL_PROTOCOLS = [
    CPP(),
    EnhancedCPP(),
    CodedPolling(),
    HPP(),
    EHPP(),
    TPP(),
    MIC(),
    MIC(uniform_slot_cost=False),
    FramedSlottedAloha(128),
    DFSA(),
]

#: protocols with a DES executor (ALOHA plans are costed, not executed)
EXECUTABLE = [p for p in ALL_PROTOCOLS
              if not isinstance(p, FramedSlottedAloha)]


def _plan(protocol, n=60, seed=7):
    tags = uniform_tagset(n, np.random.default_rng(seed))
    plan = protocol.plan(tags, np.random.default_rng(seed + 1))
    return tags, plan


@pytest.mark.parametrize(
    "protocol", ALL_PROTOCOLS, ids=lambda p: f"{p.name}-{id(p) % 97}"
)
class TestLoopVsSchedule:
    def test_exact_equality_default_budget(self, protocol):
        _, plan = _plan(protocol)
        legacy = plan_wire_time(plan, INFO_BITS)
        compiled = schedule_time_us(compile_plan(plan, INFO_BITS))
        assert legacy == compiled  # bit-identical, not approx

    @pytest.mark.parametrize("budget", [
        LinkBudget(),
        LinkBudget(empty_slot_full_cost=False),
        LinkBudget(collision_reply_bits_factor=0.5),
    ], ids=["default", "short-empty", "half-collision"])
    @pytest.mark.parametrize("reply_bits", [0, 1, 32])
    def test_exact_equality_all_budgets(self, protocol, budget, reply_bits):
        _, plan = _plan(protocol)
        legacy = budget.plan_us_loop(plan, reply_bits)
        compiled = budget.schedule_us(compile_plan(plan, reply_bits))
        assert legacy == compiled


@pytest.mark.parametrize(
    "protocol", EXECUTABLE, ids=lambda p: f"{p.name}-{id(p) % 97}"
)
@pytest.mark.parametrize("backend", ["machines", "array"])
class TestDESAgreement:
    def test_des_time_and_bits(self, protocol, backend):
        tags, plan = _plan(protocol)
        # MIC's non-uniform variant times out silent slots at T1+T3 on
        # the wire, which is the budget's short-empty convention
        budget = LinkBudget(
            empty_slot_full_cost=getattr(protocol, "uniform_slot_cost", True)
        )
        wire = budget.plan_us(plan, INFO_BITS)
        assert wire == budget.plan_us_loop(plan, INFO_BITS)
        result = execute_plan(
            tags=tags, plan=plan, info_bits=INFO_BITS, budget=budget,
            keep_trace=False, backend=backend,
        )
        assert result.time_us == pytest.approx(wire, rel=1e-9)
        assert result.reader_bits == plan.reader_bits
        assert result.all_read
