"""Tests for the TRP probabilistic missing-tag detection baseline."""

import numpy as np
import pytest

from repro.baselines.trp import (
    simulate_trp,
    trp_required_rounds,
    trp_singleton_probability,
)
from repro.workloads.tagsets import uniform_tagset


@pytest.fixture
def tags():
    return uniform_tagset(1000, np.random.default_rng(1))


class TestAnalysis:
    def test_singleton_probability_limits(self):
        assert trp_singleton_probability(1, 100) == 1.0
        p = trp_singleton_probability(1000, 1000)
        assert p == pytest.approx(np.exp(-1), abs=0.01)

    def test_required_rounds_grow_with_alpha(self):
        r90 = trp_required_rounds(1000, 1000, 0.90)
        r99 = trp_required_rounds(1000, 1000, 0.99)
        r999 = trp_required_rounds(1000, 1000, 0.999)
        assert r90 < r99 < r999

    def test_required_rounds_formula(self):
        # p1 = e^-1-ish; k rounds give 1-(1-p1)^k >= alpha
        n = f = 1000
        p1 = trp_singleton_probability(n, f)
        k = trp_required_rounds(n, f, 0.99)
        assert 1 - (1 - p1) ** k >= 0.99
        assert 1 - (1 - p1) ** (k - 1) < 0.99

    def test_validation(self):
        with pytest.raises(ValueError):
            trp_required_rounds(10, 10, 1.0)
        with pytest.raises(ValueError):
            trp_singleton_probability(0, 10)


class TestSimulation:
    def test_no_missing_no_detection(self, tags):
        rng = np.random.default_rng(2)
        result = simulate_trp(tags, np.arange(1000), rng, alpha=0.99)
        assert not result.detected
        assert result.n_missing == 0
        assert result.rounds_run == trp_required_rounds(1000, 1000, 0.99)

    def test_detects_single_missing_within_budget(self, tags):
        hits = 0
        trials = 30
        for trial in range(trials):
            rng = np.random.default_rng(100 + trial)
            present = np.delete(np.arange(1000), 123)
            result = simulate_trp(tags, present, rng, alpha=0.99)
            hits += result.detected
        # alpha = 0.99: expect ~29.7/30; allow slack
        assert hits >= trials - 2

    def test_many_missing_detected_fast(self, tags):
        rng = np.random.default_rng(3)
        present = np.arange(1000)[50:]  # 50 missing
        result = simulate_trp(tags, present, rng, alpha=0.99)
        assert result.detected
        assert result.first_detection_round == 0  # 50 chances in round 1

    def test_detection_vs_identification_tradeoff(self, tags):
        """The paper's positioning: TRP detects an event, polling names
        every missing tag.

        With many tags missing TRP fires in its first frame, which is
        cheaper than a full identification sweep; with few missing tags
        it may need several full frames and TPP's complete sweep can
        actually be *cheaper* — polling vectors are that short.
        """
        from repro.apps.missing_tag import detect_missing_tags
        from repro.core.tpp import TPP
        from repro.workloads.scenarios import Scenario

        present = np.arange(1000)[50:]  # 50 missing: detection is instant
        rng = np.random.default_rng(4)
        trp = simulate_trp(tags, present, rng, alpha=0.99)
        scenario = Scenario(name="x", tags=tags, info_bits=1, present=present)
        polled = detect_missing_tags(TPP(), scenario, seed=5)
        assert trp.detected and trp.first_detection_round == 0
        assert trp.wire_time_us < polled.time_us  # one frame < full sweep
        assert polled.exact  # ...but only polling names the missing tags
        assert trp.n_missing == len(polled.detected_missing) == 50

    def test_stop_on_detection_false_runs_budget(self, tags):
        rng = np.random.default_rng(6)
        present = np.arange(1000)[10:]
        result = simulate_trp(tags, present, rng, alpha=0.9,
                              stop_on_detection=False)
        assert result.rounds_run == trp_required_rounds(1000, 1000, 0.9)
        assert result.detected

    def test_time_accounting_positive(self, tags):
        rng = np.random.default_rng(7)
        result = simulate_trp(tags, np.arange(1000), rng, max_rounds=2)
        assert result.wire_time_us > 0
        assert result.time_s == pytest.approx(result.wire_time_us / 1e6)

    def test_empty_population_rejected(self):
        with pytest.raises(ValueError):
            simulate_trp(uniform_tagset(0, np.random.default_rng(0)),
                         np.array([]), np.random.default_rng(0))
