"""Unit tests for the C1G2 timing model."""

import math

import pytest

from repro.phy.timing import C1G2Timing, PAPER_TIMING


class TestPaperTiming:
    def test_paper_constants(self):
        assert PAPER_TIMING.t1_us == 100.0
        assert PAPER_TIMING.t2_us == 50.0
        assert PAPER_TIMING.reader_bit_us == 37.45
        assert PAPER_TIMING.tag_bit_us == 25.0

    def test_turnaround(self):
        assert PAPER_TIMING.turnaround_us() == 150.0

    def test_reader_tx(self):
        # 96-bit ID: the paper's CPP payload duration
        assert PAPER_TIMING.reader_tx_us(96) == pytest.approx(3595.2)

    def test_tag_tx(self):
        assert PAPER_TIMING.tag_tx_us(32) == pytest.approx(800.0)


class TestFromRates:
    def test_paper_rates_recovered(self):
        t = C1G2Timing.from_rates(reader_kbps=26.7, tag_kbps=40.0)
        assert t.reader_bit_us == pytest.approx(37.453, abs=1e-3)
        assert t.tag_bit_us == pytest.approx(25.0)

    def test_fast_rates(self):
        t = C1G2Timing.from_rates(reader_kbps=128.0, tag_kbps=640.0)
        assert t.reader_bit_us == pytest.approx(1e3 / 128)
        assert t.tag_bit_us == pytest.approx(1e3 / 640)

    @pytest.mark.parametrize("reader,tag", [(0, 40), (-1, 40), (26.7, 0)])
    def test_invalid_rates(self, reader, tag):
        with pytest.raises(ValueError):
            C1G2Timing.from_rates(reader_kbps=reader, tag_kbps=tag)


class TestValidation:
    def test_negative_t1_rejected(self):
        with pytest.raises(ValueError):
            C1G2Timing(t1_us=-1.0)

    def test_zero_bit_time_rejected(self):
        with pytest.raises(ValueError):
            C1G2Timing(reader_bit_us=0.0)

    def test_negative_bits_rejected(self):
        with pytest.raises(ValueError):
            PAPER_TIMING.reader_tx_us(-1)
        with pytest.raises(ValueError):
            PAPER_TIMING.tag_tx_us(-1)

    def test_with_replaces_fields(self):
        t = PAPER_TIMING.with_(t1_us=200.0)
        assert t.t1_us == 200.0
        assert t.t2_us == PAPER_TIMING.t2_us
        # original untouched (frozen)
        assert PAPER_TIMING.t1_us == 100.0

    def test_frozen(self):
        with pytest.raises(Exception):
            PAPER_TIMING.t1_us = 1.0  # type: ignore[misc]
