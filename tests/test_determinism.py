"""Reproducibility guarantees: identical seeds yield identical runs.

Experiments in the repository are only meaningful if every source of
randomness flows through the passed Generator — these tests would catch
any protocol reaching for global random state.
"""

import numpy as np
import pytest

from repro.baselines.aloha import DFSA
from repro.baselines.estimation import estimate_cardinality
from repro.baselines.iip import simulate_iip
from repro.baselines.mic import MIC
from repro.baselines.trp import simulate_trp
from repro.core.coded_polling import CodedPolling
from repro.core.cpp import CPP
from repro.core.ehpp import EHPP
from repro.core.hpp import HPP
from repro.core.tpp import TPP
from repro.sim.executor import simulate
from repro.workloads.tagsets import uniform_tagset

ALL_PROTOCOLS = [CPP, CodedPolling, HPP, EHPP, TPP, MIC, DFSA]


def _plan_fingerprint(plan) -> tuple:
    return (
        plan.protocol,
        plan.n_rounds,
        plan.reader_bits,
        tuple(plan.polled_tags().tolist()),
        tuple(r.label for r in plan.rounds),
    )


@pytest.mark.parametrize("proto_cls", ALL_PROTOCOLS,
                         ids=lambda c: c.__name__)
def test_same_seed_same_plan(proto_cls):
    tags = uniform_tagset(300, np.random.default_rng(1))
    a = proto_cls().plan(tags, np.random.default_rng(99))
    b = proto_cls().plan(tags, np.random.default_rng(99))
    assert _plan_fingerprint(a) == _plan_fingerprint(b)


@pytest.mark.parametrize("proto_cls", [HPP, TPP, MIC],
                         ids=lambda c: c.__name__)
def test_different_seed_different_plan(proto_cls):
    tags = uniform_tagset(300, np.random.default_rng(1))
    a = proto_cls().plan(tags, np.random.default_rng(1))
    b = proto_cls().plan(tags, np.random.default_rng(2))
    assert _plan_fingerprint(a) != _plan_fingerprint(b)


def test_tagset_generation_deterministic():
    a = uniform_tagset(500, np.random.default_rng(7))
    b = uniform_tagset(500, np.random.default_rng(7))
    assert np.array_equal(a.id_hi, b.id_hi)
    assert np.array_equal(a.id_lo, b.id_lo)


def test_des_run_deterministic():
    tags = uniform_tagset(100, np.random.default_rng(3))
    a = simulate(TPP(), tags, info_bits=8, seed=5, keep_trace=False)
    b = simulate(TPP(), tags, info_bits=8, seed=5, keep_trace=False)
    assert a.time_us == b.time_us
    assert a.polled_order == b.polled_order


def test_trp_deterministic():
    tags = uniform_tagset(200, np.random.default_rng(4))
    present = np.arange(200)[5:]
    a = simulate_trp(tags, present, np.random.default_rng(6))
    b = simulate_trp(tags, present, np.random.default_rng(6))
    assert (a.detected, a.rounds_run, a.wire_time_us) == (
        b.detected, b.rounds_run, b.wire_time_us)


def test_iip_deterministic():
    tags = uniform_tagset(200, np.random.default_rng(5))
    present = np.arange(200)[3:]
    a = simulate_iip(tags, present, np.random.default_rng(7))
    b = simulate_iip(tags, present, np.random.default_rng(7))
    assert a.missing == b.missing
    assert a.wire_time_us == b.wire_time_us


def test_estimation_deterministic():
    a = estimate_cardinality(1000, np.random.default_rng(8), "zero", 8)
    b = estimate_cardinality(1000, np.random.default_rng(8), "zero", 8)
    assert a == b
