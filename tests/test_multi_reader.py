"""Tests for the multi-reader scheduling subsystem."""

import networkx as nx
import numpy as np
import pytest

from repro.apps.multi_reader import (
    Deployment,
    Reader,
    grid_deployment,
    simulate_deployment,
)
from repro.core.tpp import TPP
from repro.workloads.tagsets import uniform_tagset


@pytest.fixture
def deployment(rng) -> Deployment:
    return grid_deployment(400, rng, rows=2, cols=3, spacing_m=8.0, range_m=6.0)


class TestReader:
    def test_coverage_mask(self):
        r = Reader(0, 0.0, 0.0, 5.0)
        x = np.array([0.0, 3.0, 5.0, 5.1])
        y = np.array([0.0, 4.0, 0.0, 0.0])
        assert r.covers(x, y).tolist() == [True, True, True, False]

    def test_interference_symmetric(self):
        a = Reader(0, 0, 0, 5)
        b = Reader(1, 9, 0, 5)  # zones overlap (distance 9 < 10)
        c = Reader(2, 20, 0, 5)
        assert a.interferes(b) and b.interferes(a)
        assert not a.interferes(c)

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            Reader(0, 0, 0, 0)


class TestDeployment:
    def test_grid_shape(self, deployment):
        assert len(deployment.readers) == 6
        assert deployment.n_tags == 400

    def test_assignment_partitions_tags(self, deployment):
        assignment = deployment.assign_tags()
        merged = np.sort(np.concatenate(list(assignment.values())))
        assert np.array_equal(merged, np.arange(400))

    def test_assignment_respects_coverage(self, deployment):
        cover = deployment.coverage()
        for rid, tag_idx in deployment.assign_tags().items():
            assert np.isin(tag_idx, cover[rid]).all()

    def test_assignment_is_balanced(self, deployment):
        sizes = [v.size for v in deployment.assign_tags().values()]
        assert max(sizes) <= 2.5 * max(min(sizes), 1)

    def test_uncovered_tag_rejected(self):
        d = Deployment([Reader(0, 0, 0, 1.0)], np.array([10.0]), np.array([0.0]))
        with pytest.raises(ValueError):
            d.assign_tags()

    def test_interference_graph_grid(self, deployment):
        g = deployment.interference_graph()
        assert g.number_of_nodes() == 6
        # adjacent grid zones overlap (8 < 12); diagonal ones (11.3 < 12) too
        assert g.has_edge(0, 1)
        assert not g.has_edge(0, 5)  # distance sqrt(8^2+16^2) = 17.9 > 12

    def test_schedule_is_proper_coloring(self, deployment):
        g = deployment.interference_graph()
        schedule = deployment.schedule()
        color_of = {}
        for color, group in enumerate(schedule):
            for rid in group:
                color_of[rid] = color
        assert set(color_of) == set(g.nodes)
        for u, v in g.edges:
            assert color_of[u] != color_of[v]

    def test_disjoint_readers_single_color(self):
        readers = [Reader(i, 30.0 * i, 0, 5) for i in range(4)]
        rng = np.random.default_rng(3)
        xs = np.concatenate([rng.uniform(-4, 4, 10) + 30 * i for i in range(4)])
        ys = np.tile(rng.uniform(-3, 3, 10), 4)
        d = Deployment(readers, xs, ys)
        assert len(d.schedule()) == 1

    def test_duplicate_reader_ids_rejected(self):
        with pytest.raises(ValueError):
            Deployment(
                [Reader(0, 0, 0, 1), Reader(0, 5, 0, 1)],
                np.array([0.0]),
                np.array([0.0]),
            )


class TestSimulateDeployment:
    def test_speedup_over_single_reader(self, rng, deployment):
        tags = uniform_tagset(400, rng)
        result = simulate_deployment(TPP(), deployment, tags, info_bits=1, seed=2)
        assert result.n_readers == 6
        assert 1.0 < result.speedup <= 6.0
        assert result.total_time_us < result.single_reader_time_us

    def test_total_is_sum_of_class_maxima(self, rng, deployment):
        tags = uniform_tagset(400, rng)
        result = simulate_deployment(TPP(), deployment, tags, seed=2)
        expected = sum(
            max(result.per_reader_time_us[rid] for rid in group)
            for group in result.schedule
        )
        assert result.total_time_us == pytest.approx(expected)

    def test_tag_counts_match_assignment(self, rng, deployment):
        tags = uniform_tagset(400, rng)
        result = simulate_deployment(TPP(), deployment, tags, seed=2)
        assert sum(result.per_reader_tags.values()) == 400

    def test_misaligned_tags_rejected(self, rng, deployment):
        tags = uniform_tagset(399, rng)
        with pytest.raises(ValueError):
            simulate_deployment(TPP(), deployment, tags)

    def test_more_colors_less_speedup(self, rng):
        # fully overlapping readers -> every reader its own colour ->
        # no speedup over sequential operation
        readers = [Reader(i, 0.0, 0.0, 10.0) for i in range(3)]
        n = 90
        xs = rng.uniform(-5, 5, n)
        ys = rng.uniform(-5, 5, n)
        d = Deployment(readers, xs, ys)
        tags = uniform_tagset(n, rng)
        result = simulate_deployment(TPP(), d, tags, seed=4)
        assert result.n_colors == 3
        assert result.speedup < 1.5
