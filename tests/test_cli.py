"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.tags == 10_000
        assert args.info_bits == 1
        assert set(args.protocols) == {"CPP", "CP", "HPP", "EHPP", "TPP", "MIC"}

    def test_unknown_protocol_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "-p", "XYZ"])


class TestCompare:
    def test_small_run_output(self, capsys):
        rc = main(["compare", "-n", "300", "-r", "2", "-p", "CPP", "TPP"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "CPP" in out and "TPP" in out and "bound" in out

    def test_ordering_visible(self, capsys):
        main(["compare", "-n", "500", "-r", "2", "-p", "CPP", "TPP"])
        out = capsys.readouterr().out
        cpp_line = next(line for line in out.splitlines() if line.startswith("CPP"))
        tpp_line = next(line for line in out.splitlines() if line.startswith("TPP"))
        cpp_t = float(cpp_line.split()[3].rstrip("s"))
        tpp_t = float(tpp_line.split()[3].rstrip("s"))
        assert tpp_t < cpp_t


class TestMissing:
    def test_exact_detection_returns_zero(self, capsys):
        rc = main(["missing", "-n", "400", "-m", "0.05", "-p", "HPP"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "exact" in out

    def test_lossy_channel_flag(self, capsys):
        rc = main(["missing", "-n", "300", "-m", "0.03", "-p", "HPP",
                   "--ber", "0.001"])
        assert rc == 0


class TestEstimate:
    def test_zero_estimator_runs(self, capsys):
        rc = main(["estimate", "-n", "2000", "--method", "zero", "--rounds", "8"])
        assert rc == 0
        assert "estimate" in capsys.readouterr().out

    def test_lof_runs(self, capsys):
        rc = main(["estimate", "-n", "1000", "--method", "lof"])
        assert rc == 0


class TestExperimentsForwarding:
    def test_fig8_via_cli(self, capsys):
        rc = main(["experiments", "fig8"])
        assert rc == 0
        assert "fig8" in capsys.readouterr().out

    def test_unknown_experiment_errors(self):
        with pytest.raises(SystemExit):
            main(["experiments", "fig999"])


class TestCacheSubcommand:
    def test_inspect_reports_counts(self, tmp_path, capsys):
        from repro.experiments.cellstore import CellStore, cache_version

        salt = f"v={cache_version()}|"
        store = CellStore(tmp_path, version_salt=salt)
        store.append(f"{salt}a", 1.0)
        store.append(f"{salt}a", 2.0)  # superseded
        store.append("v=old|b", 3.0)   # stale version
        store.flush()
        rc = main(["cache", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "disk entries    : 3" in out
        assert "live entries    : 1" in out
        assert "stale version   : 1" in out
        assert "superseded      : 1" in out

    def test_compact_flag_shrinks_store(self, tmp_path, capsys):
        from repro.experiments.cellstore import CellStore, cache_version

        salt = f"v={cache_version()}|"
        store = CellStore(tmp_path, version_salt=salt, flush_threshold=1)
        for i in range(6):
            store.append(f"{salt}k", float(i))
        store.flush()
        assert len(list(tmp_path.glob("cells-*.seg"))) == 6
        rc = main(["cache", str(tmp_path), "--compact"])
        assert rc == 0
        assert "compacted this run" in capsys.readouterr().out
        assert len(list(tmp_path.glob("cells-*.seg"))) == 1
        assert CellStore(tmp_path, version_salt=salt).load() == {
            f"{salt}k": 5.0
        }

    def test_missing_directory_errors(self, tmp_path, capsys):
        rc = main(["cache", str(tmp_path / "nope")])
        assert rc == 2
        assert "not a directory" in capsys.readouterr().err
