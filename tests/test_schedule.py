"""Unit tests for the wire-schedule IR (repro.phy.schedule)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.iip import IIP, plan_iip
from repro.baselines.query_tree import QueryTree, plan_query_tree
from repro.baselines.trp import TRP, plan_trp
from repro.core.hpp import HPP
from repro.io import (
    SCHEDULE_FORMAT,
    load_schedule,
    save_schedule,
    schedule_from_dict,
    schedule_to_dict,
)
from repro.phy.link import LinkBudget, schedule_time_us
from repro.phy.schedule import (
    KIND_BROADCAST,
    KIND_COLLISION_SLOT,
    KIND_EMPTY_SLOT,
    KIND_POLL,
    ScheduleBuilder,
    WireSchedule,
    compile_plan,
)
from repro.workloads.tagsets import uniform_tagset


class TestCompilePlan:
    def test_counters_match_plan(self, medium_tags, rng):
        plan = HPP().plan(medium_tags, rng)
        sched = compile_plan(plan, reply_bits=8)
        sched.validate()
        assert sched.protocol == plan.protocol
        assert sched.n_rounds == len(plan.rounds)
        assert sched.n_polls == plan.n_polls
        assert sched.reader_bits == plan.reader_bits
        assert sched.tag_bits == 8 * plan.n_polls
        assert np.array_equal(sched.polled_tags(), plan.polled_tags())

    def test_row_layout_per_round(self, small_tags, rng):
        plan = HPP().plan(small_tags, rng)
        sched = compile_plan(plan, reply_bits=1)
        for rp, view in zip(plan.rounds, sched.iter_rounds()):
            assert view.init_bits == rp.init_bits
            assert view.n_polls == rp.n_polls
            assert np.array_equal(view.poll_tag, rp.poll_tag_idx)
            assert np.array_equal(
                view.poll_downlink,
                rp.poll_vector_bits + rp.poll_overhead_bits,
            )
            assert view.empty_downlink.size == rp.empty_slots
            assert view.collision_downlink.size == rp.collision_slots

    def test_reply_bits_recorded_in_meta(self, small_tags, rng):
        sched = compile_plan(HPP().plan(small_tags, rng), reply_bits=32)
        assert sched.meta["reply_bits"] == 32
        assert np.all(sched.uplink_bits[sched.kind == KIND_POLL] == 32)

    def test_negative_reply_bits_rejected(self, small_tags, rng):
        plan = HPP().plan(small_tags, rng)
        with pytest.raises(ValueError):
            compile_plan(plan, reply_bits=-1)

    def test_empty_plan(self):
        from repro.core.base import InterrogationPlan

        sched = compile_plan(
            InterrogationPlan(protocol="HPP", n_tags=0, rounds=[])
        )
        assert sched.n_exchanges == 0
        assert sched.n_rounds == 0
        assert schedule_time_us(sched) == 0.0


class TestScheduleBuilder:
    def test_builds_rows_in_order(self):
        b = ScheduleBuilder("X", 4)
        b.begin_round()
        b.broadcast(32)
        b.poll(7, 1, 2)
        b.empty_slot(4, window_bits=1, count=2)
        b.collision_slot(4, 1)
        b.begin_round()
        b.poll(7, 1, 3)
        s = b.build()
        assert s.kind.tolist() == [
            KIND_BROADCAST, KIND_POLL, KIND_EMPTY_SLOT, KIND_EMPTY_SLOT,
            KIND_COLLISION_SLOT, KIND_POLL,
        ]
        assert s.round_id.tolist() == [0, 0, 0, 0, 0, 1]
        assert s.polled_tags().tolist() == [2, 3]
        assert s.n_rounds == 2
        assert s.wasted_slots == 3

    def test_rows_require_open_round(self):
        b = ScheduleBuilder("X", 1)
        with pytest.raises(RuntimeError):
            b.broadcast(8)

    def test_zero_count_is_noop(self):
        b = ScheduleBuilder("X", 1)
        b.begin_round()
        b.poll(4, 1, -1, count=0)
        b.broadcast(8)
        assert b.build().n_exchanges == 1


class TestValidate:
    def _schedule(self, **overrides):
        cols = dict(
            protocol="X",
            n_tags=2,
            kind=[KIND_BROADCAST, KIND_POLL],
            downlink_bits=[8, 4],
            uplink_bits=[0, 1],
            tag_idx=[-1, 1],
            round_id=[0, 0],
        )
        cols.update(overrides)
        return WireSchedule(**cols)

    def test_accepts_well_formed(self):
        self._schedule().validate()

    def test_rejects_misaligned_columns(self):
        with pytest.raises(ValueError, match="misaligned"):
            self._schedule(round_id=[0]).validate()

    def test_rejects_decreasing_round_id(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            self._schedule(round_id=[1, 0]).validate()

    def test_rejects_tag_on_non_poll(self):
        with pytest.raises(ValueError, match="poll rows"):
            self._schedule(tag_idx=[1, 1]).validate()

    def test_rejects_out_of_range_tag(self):
        with pytest.raises(ValueError, match="tag_idx"):
            self._schedule(tag_idx=[-1, 2]).validate()

    def test_rejects_negative_bits(self):
        with pytest.raises(ValueError, match="non-negative"):
            self._schedule(downlink_bits=[-1, 4]).validate()


class TestScheduleIO:
    def test_column_round_trip(self, tmp_path, small_tags, rng):
        sched = plan_query_tree(small_tags, info_bits=4)
        path = save_schedule(sched, tmp_path / "qt.json")
        back = load_schedule(path)
        assert back.protocol == sched.protocol
        assert back.n_tags == sched.n_tags
        for col in ("kind", "downlink_bits", "uplink_bits", "tag_idx", "round_id"):
            assert np.array_equal(getattr(back, col), getattr(sched, col))
        b = LinkBudget()
        assert b.schedule_us(back) == b.schedule_us(sched)

    def test_plan_fallback_recompiles(self, tmp_path, small_tags, rng):
        plan = HPP().plan(small_tags, rng)
        sched = compile_plan(plan, reply_bits=8)
        path = save_schedule(sched, tmp_path / "hpp.json", plan=plan)
        doc = path.read_text(encoding="utf-8")
        assert '"plan"' in doc and '"columns"' not in doc
        back = load_schedule(path)
        for col in ("kind", "downlink_bits", "uplink_bits", "tag_idx", "round_id"):
            assert np.array_equal(getattr(back, col), getattr(sched, col))

    def test_format_stability(self, small_tags, rng):
        """The v1 document shape is frozen: exact top-level keys, int
        columns, and a format tag loaders must refuse to misread."""
        sched = compile_plan(HPP().plan(small_tags, rng), reply_bits=1)
        doc = schedule_to_dict(sched)
        assert doc["format"] == SCHEDULE_FORMAT == "wire-schedule/v1"
        assert set(doc) == {"format", "protocol", "n_tags", "meta", "columns"}
        assert set(doc["columns"]) == {
            "kind", "downlink_bits", "uplink_bits", "tag_idx", "round_id",
        }
        assert all(
            isinstance(v, int)
            for col in doc["columns"].values() for v in col
        )
        bad = dict(doc, format="wire-schedule/v0")
        with pytest.raises(ValueError, match="unsupported schedule format"):
            schedule_from_dict(bad)


class TestScheduleEmitterSweeps:
    """QT/TRP/IIP run through SweepRunner with cell caching (ISSUE 3)."""

    @pytest.mark.parametrize("emitter", [
        QueryTree(),
        TRP(missing_fraction=0.05, max_rounds=50),
        IIP(missing_fraction=0.05),
    ])
    def test_sweeps_and_caches(self, emitter):
        from repro.experiments.runner import ResultCache, SweepRunner

        runner = SweepRunner(jobs=1, cache=ResultCache())
        series = runner.sweep(
            emitter, n_values=[20, 40], n_runs=3, metric="time_us",
            tagset_factory=uniform_tagset,
        )
        assert series.label == emitter.name
        assert all(y > 0 for y in series.y)
        misses = runner.cache.misses
        again = runner.sweep(
            emitter, n_values=[20, 40], n_runs=3, metric="time_us",
            tagset_factory=uniform_tagset,
        )
        assert again.y == series.y
        assert runner.cache.misses == misses  # every cell came from cache

    def test_schedule_attribute_and_meta_metrics(self):
        from repro.experiments.runner import SweepRunner

        runner = SweepRunner(jobs=1, cache=None)
        wasted = runner.sweep(
            IIP(missing_fraction=0.1, bitmap=False),
            n_values=[50], n_runs=2, metric="wasted_slots",
        )
        assert wasted.y[0] > 0
        rounds = runner.sweep(
            TRP(missing_fraction=0.1, max_rounds=50),
            n_values=[50], n_runs=2, metric="rounds_run",
        )
        assert rounds.y[0] >= 1


class TestScheduleEnergy:
    def test_plan_energy_equals_schedule_energy(self, medium_tags, rng):
        from repro.analysis.energy import plan_energy, schedule_energy

        plan = HPP().plan(medium_tags, rng)
        via_plan = plan_energy(plan, reply_bits=8)
        via_schedule = schedule_energy(compile_plan(plan, reply_bits=8))
        assert via_plan == via_schedule
        assert via_plan.total_mj > 0

    def test_emitted_baseline_is_energy_priceable(self, small_tags, rng):
        from repro.analysis.energy import schedule_energy

        report = schedule_energy(plan_query_tree(small_tags))
        assert report.protocol == "QT"
        assert report.reader_mj > 0
        assert report.tag_tx_mj > 0


class TestBaselineSchedules:
    def test_trp_slots_cover_frame(self, small_tags, rng):
        present = np.arange(len(small_tags) - 2)
        sched = plan_trp(small_tags, present, rng, max_rounds=5)
        sched.validate()
        f = sched.meta["frame_size"]
        for view in sched.iter_rounds():
            n_slots = (
                view.n_polls + view.empty_downlink.size
                + view.collision_downlink.size
            )
            assert n_slots == f
            assert view.init_bits == 32
        # anonymous busy slots: TRP never learns who replied
        assert np.all(sched.polled_tags() == -1)

    def test_iip_partition_lands_in_meta(self, small_tags, rng):
        present = np.arange(0, len(small_tags), 2)
        sched = plan_iip(small_tags, present, rng)
        sched.validate()
        missing = sorted(set(range(len(small_tags))) - set(present.tolist()))
        assert sched.meta["missing"] == missing
        assert sched.meta["present"] == present.tolist()
        # every present verification is an identified 1-bit poll
        assert sorted(sched.polled_tags().tolist()) == present.tolist()
        assert np.all(sched.uplink_bits[sched.kind == KIND_POLL] == 1)
