"""Backend dispatch, bit-exact parity, and cache-neutrality of the
hot-path kernel layer (:mod:`repro.kernels`).

Three guarantees are pinned here:

- **dispatch** — ``REPRO_KERNELS`` resolution, the programmatic
  overrides, the loud failure when numba is requested but missing, and
  the silent numpy fallback for kernels a backend doesn't implement;
- **parity** — every backend's output is bit-identical to the numpy
  oracle, checked against *independent* scalar references (pure-int
  splitmix64 loops, a sequential DES clock fold) on adversarial ragged
  shapes: zero-length segments interleaved, single-segment batches,
  batches whose counts sum to zero, ``h`` at both ends of [0, 63], and
  non-power-of-two moduli;
- **cache neutrality** — the sweep-cache version fingerprint and the
  cached values themselves never depend on the active backend, so a
  cache written under numpy re-hits under numba.

The whole module runs per backend: with numba absent only the numpy
parametrisation runs (the compiled leg is exercised by CI's numba
matrix job via ``REPRO_KERNELS=numba``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.hpp import HPP
from repro.experiments.runner import ResultCache, SweepRunner
from repro.hashing.universal import (
    _splitmix64_scalar,
    hash_indices,
    hash_indices_ragged,
    hash_mod,
    hash_mod_ragged,
    hash_u64,
    hash_u64_ragged,
)
from repro.kernels import (
    KernelBackendError,
    active_backend,
    available_backends,
    get_kernel,
    numba_available,
    registered_kernels,
    resolve_backend,
    set_backend,
    use_backend,
)
from repro.kernels import numpy_kernels as oracle

requires_numba = pytest.mark.skipif(
    not numba_available(), reason="numba not installed (fast extra)"
)


@pytest.fixture(params=available_backends())
def backend(request) -> str:
    """Run the test under every backend usable in this environment."""
    with use_backend(request.param):
        yield request.param


# ----------------------------------------------------------------------
# dispatch
# ----------------------------------------------------------------------
class TestDispatch:
    def test_auto_resolution_matches_environment(self):
        expected = "numba" if numba_available() else "numpy"
        assert resolve_backend("auto") == expected

    def test_explicit_numpy_always_resolves(self):
        assert resolve_backend("numpy") == "numpy"

    def test_unknown_backend_rejected(self):
        with pytest.raises(KernelBackendError, match="expected auto"):
            resolve_backend("fortran")

    @pytest.mark.skipif(numba_available(), reason="numba is installed")
    def test_explicit_numba_without_numba_fails_loudly(self):
        with pytest.raises(KernelBackendError, match="not installed"):
            resolve_backend("numba")

    def test_env_var_drives_resolution(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "numpy")
        set_backend(None)  # drop the memoised resolution
        try:
            assert active_backend() == "numpy"
        finally:
            monkeypatch.delenv("REPRO_KERNELS")
            set_backend(None)

    def test_use_backend_restores_previous_override(self):
        before = active_backend()
        with use_backend("numpy") as name:
            assert name == "numpy"
            assert active_backend() == "numpy"
        assert active_backend() == before

    def test_every_kernel_has_a_numpy_oracle(self):
        table = registered_kernels()
        assert table, "no kernels registered"
        for name, backends in table.items():
            assert "numpy" in backends, f"{name} lacks the numpy oracle"

    def test_expected_kernels_registered(self):
        assert set(registered_kernels()) >= {
            "hash_u64", "hash_u64_ragged", "hash_indices_ragged",
            "hash_mod_ragged", "round_draw", "circle_join", "poll_commit",
        }

    def test_unknown_kernel_raises(self):
        with pytest.raises(KeyError):
            get_kernel("no_such_kernel")

    def test_missing_backend_impl_falls_back_to_numpy(self, backend):
        """A kernel registered only for numpy dispatches to the oracle
        under every backend."""
        from repro.kernels import _registry

        name = "_test_numpy_only_kernel"
        _registry[name] = {"numpy": lambda: "oracle"}
        set_backend(backend)  # force a table rebuild under this backend
        try:
            assert get_kernel(name)() == "oracle"
        finally:
            del _registry[name]
            set_backend(None)

    @requires_numba
    def test_numba_backend_compiles_hot_kernels(self):
        table = registered_kernels()
        for name in ("hash_u64_ragged", "hash_indices_ragged",
                     "hash_mod_ragged", "round_draw", "circle_join",
                     "poll_commit"):
            assert "numba" in table[name], f"{name} has no numba impl"


# ----------------------------------------------------------------------
# scalar references (independent of both backends)
# ----------------------------------------------------------------------
def _scalar_hash(word: int, seed: int) -> int:
    """``H(r, id)`` via the pure-int splitmix64 — no numpy at all."""
    return _splitmix64_scalar(word ^ _splitmix64_scalar(seed))


def _ragged_case(rng, counts, seeds=None):
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    words = rng.integers(0, 1 << 63, size=total, dtype=np.uint64)
    if seeds is None:
        seeds = rng.integers(0, 1 << 62, size=counts.size, dtype=np.int64)
    return words, np.asarray(seeds), counts


# interleaved zeros, R=1, all-zero counts, and a plain dense batch
ADVERSARIAL_COUNTS = [
    [0, 5, 0, 0, 3, 0, 7, 0],
    [11],
    [0, 0, 0],
    [0],
    [4, 1, 9, 2],
]


class TestRaggedHashParity:
    """Ragged kernels vs pure-int scalar loops, on every backend."""

    @pytest.mark.parametrize("counts", ADVERSARIAL_COUNTS)
    def test_hash_u64_ragged_matches_scalar(self, rng, backend, counts):
        words, seeds, counts = _ragged_case(rng, counts)
        got = hash_u64_ragged(words, seeds, counts)
        expected = []
        pos = 0
        for r, c in enumerate(counts):
            for w in words[pos:pos + c]:
                expected.append(_scalar_hash(int(w), int(seeds[r])))
            pos += c
        assert got.dtype == np.uint64 and got.size == pos
        assert got.tolist() == expected

    @pytest.mark.parametrize("counts", ADVERSARIAL_COUNTS)
    def test_hash_indices_ragged_matches_scalar(self, rng, backend, counts):
        words, seeds, counts = _ragged_case(rng, counts)
        # force both extremes of the h range into every non-trivial case
        hs = rng.integers(0, 64, size=counts.size)
        if hs.size >= 2:
            hs[0], hs[-1] = 0, 63
        got = hash_indices_ragged(words, seeds, hs, counts)
        expected = []
        pos = 0
        for r, c in enumerate(counts):
            mask = (1 << int(hs[r])) - 1
            for w in words[pos:pos + c]:
                expected.append(_scalar_hash(int(w), int(seeds[r])) & mask)
            pos += c
        assert got.dtype == np.int64
        assert got.tolist() == expected

    @pytest.mark.parametrize("counts", ADVERSARIAL_COUNTS)
    @pytest.mark.parametrize("modulus", [1, 3, 10_007, 1 << 16, (1 << 16) + 1])
    def test_hash_mod_ragged_matches_scalar(self, rng, backend, counts,
                                            modulus):
        words, seeds, counts = _ragged_case(rng, counts)
        got = hash_mod_ragged(words, seeds, modulus, counts)
        expected = []
        pos = 0
        for r, c in enumerate(counts):
            for w in words[pos:pos + c]:
                expected.append(_scalar_hash(int(w), int(seeds[r])) % modulus)
            pos += c
        assert got.dtype == np.int64
        assert got.tolist() == expected

    def test_ragged_matches_per_segment_public_calls(self, rng, backend):
        """The ragged batch is bit-identical to R separate calls."""
        words, seeds, counts = _ragged_case(rng, [0, 7, 1, 0, 12])
        hs = np.array([0, 5, 63, 13, 9], dtype=np.int64)
        bounds = np.concatenate(([0], np.cumsum(counts)))
        batched_u = hash_u64_ragged(words, seeds, counts)
        batched_i = hash_indices_ragged(words, seeds, hs, counts)
        batched_m = hash_mod_ragged(words, seeds, 10_007, counts)
        for r in range(counts.size):
            seg = words[bounds[r]:bounds[r + 1]]
            assert np.array_equal(batched_u[bounds[r]:bounds[r + 1]],
                                  hash_u64(seg, int(seeds[r])))
            assert np.array_equal(batched_i[bounds[r]:bounds[r + 1]],
                                  hash_indices(seg, int(seeds[r]), int(hs[r])))
            assert np.array_equal(batched_m[bounds[r]:bounds[r + 1]],
                                  hash_mod(seg, int(seeds[r]), 10_007))

    def test_hash_u64_scalar_seed_path(self, rng, backend):
        words = rng.integers(0, 1 << 63, size=257, dtype=np.uint64)
        got = hash_u64(words, 0xDEADBEEF)
        assert got.tolist() == [_scalar_hash(int(w), 0xDEADBEEF)
                                for w in words]


# ----------------------------------------------------------------------
# fused round draw
# ----------------------------------------------------------------------
def _naive_round_draw(id_words, actives, seeds, hs):
    """Set-logic reference for the fused singleton classification."""
    sing_bounds, singles, tags, rem_bounds, remaining = [0], [], [], [0], []
    base = 0
    for active, seed, h in zip(actives, seeds, hs):
        idx = hash_indices(id_words[active], int(seed), int(h))
        count: dict[int, int] = {}
        for i in idx.tolist():
            count[i] = count.get(i, 0) + 1
        seg = sorted((i for i, n in count.items() if n == 1))
        owner = {int(i): int(t) for i, t in zip(idx, active) if count[int(i)] == 1}
        singles.extend(base + i for i in seg)
        tags.extend(owner[i] for i in seg)
        remaining.extend(int(t) for i, t in zip(idx, active)
                         if count[int(i)] != 1)
        sing_bounds.append(len(singles))
        rem_bounds.append(len(remaining))
        base += 1 << int(h)
    return sing_bounds, singles, tags, rem_bounds, remaining


class TestRoundDrawParity:
    @pytest.mark.parametrize("pops", [
        [37, 0, 64, 5, 0, 120],   # zero-population rounds interleaved
        [200],                    # R=1
        [16, 16, 16],             # forced collisions (h chosen small)
    ])
    def test_matches_naive_reference(self, rng, backend, pops):
        n = 256
        id_words = rng.integers(0, 1 << 63, size=n, dtype=np.uint64)
        actives = [np.sort(rng.choice(n, size=p, replace=False)).astype(np.int64)
                   for p in pops]
        seeds = rng.integers(0, 1 << 62, size=len(pops)).astype(np.uint64)
        hs = np.array([max(int(p).bit_length() - 1, 1) for p in pops],
                      dtype=np.int64)
        counts = np.fromiter((a.size for a in actives), np.int64, len(pops))
        bases = np.concatenate(([0], np.cumsum(np.int64(1) << hs)))
        flat = np.concatenate(actives) if counts.sum() else \
            np.empty(0, dtype=np.int64)

        got = get_kernel("round_draw")(id_words, flat, counts, seeds, hs,
                                       bases)
        exp = _naive_round_draw(id_words, actives, seeds, hs)
        for g, e in zip(got, exp):
            assert np.asarray(g).tolist() == list(e)

    def test_matches_numpy_oracle(self, rng, backend):
        n = 512
        id_words = rng.integers(0, 1 << 63, size=n, dtype=np.uint64)
        counts = np.array([300, 0, 512, 1], dtype=np.int64)
        flat = np.concatenate([
            np.sort(rng.choice(n, size=int(c), replace=False))
            for c in counts
        ]).astype(np.int64)
        seeds = rng.integers(0, 1 << 62, size=4).astype(np.uint64)
        hs = np.array([9, 1, 10, 0], dtype=np.int64)
        bases = np.concatenate(([0], np.cumsum(np.int64(1) << hs)))
        got = get_kernel("round_draw")(id_words, flat, counts, seeds, hs, bases)
        exp = oracle.round_draw(id_words, flat, counts, seeds, hs, bases)
        for g, e in zip(got, exp):
            assert np.array_equal(g, e), "backend diverged from numpy oracle"


# ----------------------------------------------------------------------
# EHPP circle join
# ----------------------------------------------------------------------
class TestCircleJoinParity:
    @pytest.mark.parametrize("counts,modulus", [
        ([40, 0, 25, 0, 0, 60], 1 << 16),   # pow2 modulus, zero circles
        ([80], 10_007),                     # R=1, non-pow2 modulus
        ([0, 0], 3),
        ([10, 10, 10], 1),                  # everything joins (mod 1 == 0)
    ])
    def test_matches_naive_reference(self, rng, backend, counts, modulus):
        n = 200
        counts = np.asarray(counts, dtype=np.int64)
        flat = np.concatenate([
            np.sort(rng.choice(n, size=int(c), replace=False))
            for c in counts
        ]).astype(np.int64) if counts.sum() else np.empty(0, dtype=np.int64)
        id_words = rng.integers(0, 1 << 63, size=n, dtype=np.uint64)
        seeds = rng.integers(0, 1 << 62, size=counts.size).astype(np.uint64)
        fs = rng.integers(0, modulus, size=counts.size).astype(np.int64)

        joined, kept, jb = get_kernel("circle_join")(
            id_words, flat, counts, seeds, modulus, fs)

        e_joined, e_kept, e_jb = [], [], [0]
        bounds = np.concatenate(([0], np.cumsum(counts)))
        for r in range(counts.size):
            for t in flat[bounds[r]:bounds[r + 1]].tolist():
                sel = _scalar_hash(int(id_words[t]), int(seeds[r])) % modulus
                (e_joined if sel <= int(fs[r]) else e_kept).append(t)
            e_jb.append(len(e_joined))
        assert joined.tolist() == e_joined
        assert kept.tolist() == e_kept
        assert jb.tolist() == e_jb


# ----------------------------------------------------------------------
# DES poll span commit
# ----------------------------------------------------------------------
def _naive_poll_commit(now, down, bit_us, t1, reply, t2, miss, pattern):
    """Sequential float fold — the pre-batch DES ``_advance`` chain."""
    n_read = 0
    for j, bits in enumerate(down.tolist()):
        now += bits * bit_us
        if pattern is None or pattern[j]:
            now += t1
            now += reply
            now += t2
            now += 0.0
            n_read += 1
        else:
            now += miss
    return now, n_read, int(down.sum())


class TestPollCommitParity:
    @pytest.mark.parametrize("pattern_kind", ["clean", "mixed", "all_miss",
                                              "empty"])
    def test_matches_sequential_fold(self, rng, backend, pattern_kind):
        m = 0 if pattern_kind == "empty" else 400
        down = rng.integers(1, 97, size=m).astype(np.int64)
        if pattern_kind == "clean":
            pattern = None
        elif pattern_kind == "all_miss":
            pattern = np.zeros(m, dtype=bool)
        else:
            pattern = rng.random(m) < 0.9
        now, t1, reply, t2, bit = 1234.5, 100.0, 37.25, 50.0, 25.0
        miss = t1 + 300.0 + t2
        got = get_kernel("poll_commit")(now, down, bit, t1, reply, t2, miss,
                                        pattern)
        exp = _naive_poll_commit(now, down, bit, t1, reply, t2, miss, pattern)
        # bit-identical clock, not approximately-equal: the kernel must
        # reproduce the sequential float fold exactly
        assert got == exp

    def test_clock_bit_identity_is_strict(self, rng, backend):
        down = rng.integers(1, 200, size=1000).astype(np.int64)
        a = get_kernel("poll_commit")(
            0.1, down, 37.45, 100.1, 25.3, 50.7, 300.9, None)
        b = get_kernel("poll_commit")(
            0.1, down, 37.45, 100.1, 25.3, 50.7, 300.9, None)
        assert a[0] == b[0] and a == b


# ----------------------------------------------------------------------
# cross-backend equality of the full kernel surface
# ----------------------------------------------------------------------
@requires_numba
class TestCrossBackendBitIdentity:
    """With numba installed, compiled output == oracle output, bitwise."""

    def test_all_kernels_match_oracle_on_profiling_workloads(self):
        from repro.kernels.profile import _equal, _workloads

        workloads = _workloads(scale=0.2)
        for name in registered_kernels():
            args = workloads[name]
            with use_backend("numpy"):
                expected = get_kernel(name)(*args)
            with use_backend("numba"):
                got = get_kernel(name)(*args)
            assert _equal(got, expected), f"{name} diverged under numba"


# ----------------------------------------------------------------------
# the sweep cache is backend-agnostic
# ----------------------------------------------------------------------
class TestCacheBackendNeutrality:
    def test_cache_version_ignores_backend_selection(self, monkeypatch):
        from repro.experiments.cellstore import cache_version

        with use_backend("numpy"):
            v_numpy = cache_version()
        monkeypatch.setenv("REPRO_KERNELS", "numpy")
        set_backend(None)
        try:
            assert cache_version() == v_numpy
        finally:
            monkeypatch.delenv("REPRO_KERNELS")
            set_backend(None)
        if numba_available():
            with use_backend("numba"):
                assert cache_version() == v_numpy

    def test_cache_version_fingerprints_kernel_sources(self):
        """Editing a kernel must invalidate cached cells: the kernels
        package is part of the metric-path fingerprint."""
        from repro.experiments import cellstore

        assert "kernels" in cellstore._METRIC_PATH_DIRS

    @requires_numba
    def test_numpy_warmed_cache_rehits_under_numba(self, tmp_path):
        with use_backend("numpy"):
            warm = ResultCache(tmp_path)
            r1 = SweepRunner(jobs=1, cache=warm)
            series_numpy = r1.sweep(HPP(), (100, 200), n_runs=2, seed=5)
            warm.flush()
            assert warm.misses > 0 and warm.hits == 0
        with use_backend("numba"):
            reloaded = ResultCache(tmp_path)
            r2 = SweepRunner(jobs=1, cache=reloaded)
            series_numba = r2.sweep(HPP(), (100, 200), n_runs=2, seed=5)
            assert reloaded.misses == 0, \
                "numpy-written cells missed under the numba backend"
            assert reloaded.hits == warm.misses
        assert series_numba.y == series_numpy.y

    def test_runner_reports_kernel_backend(self):
        r = SweepRunner(jobs=1, cache=None)
        assert r.kernel_backend == active_backend()
        assert r.batch_coverage["kernel_backend"] == active_backend()
