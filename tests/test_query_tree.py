"""Unit tests for the binary query-tree baseline."""

import pytest

from repro.baselines.query_tree import simulate_query_tree
from repro.workloads.tagsets import sequential_tagset, uniform_tagset


class TestQueryTree:
    def test_identifies_everyone(self, rng):
        tags = uniform_tagset(200, rng)
        result = simulate_query_tree(tags)
        assert result.n_singleton == 200
        assert result.n_tags == 200

    def test_query_count_structure(self, rng):
        # a binary splitting tree over n leaves has n-1 internal
        # (collision) nodes at minimum; empties only appear where a split
        # goes one-sided
        tags = uniform_tagset(128, rng)
        r = simulate_query_tree(tags)
        assert r.n_collision >= 127
        assert r.n_queries == r.n_singleton + r.n_collision + r.n_empty

    def test_sequential_ids_are_pathological(self):
        # consecutive serials share 90 bits: the tree must descend a
        # 90-level one-sided chain before any split resolves, so query
        # trees do WORSE on sequential IDs than on uniform ones — the
        # classic argument against prefix-splitting identification
        seq = simulate_query_tree(sequential_tagset(64))
        rng_tags = uniform_tagset(64, __import__("numpy").random.default_rng(1))
        uni = simulate_query_tree(rng_tags)
        assert seq.n_queries > uni.n_queries
        assert seq.n_empty > uni.n_empty

    def test_single_tag(self, rng):
        r = simulate_query_tree(uniform_tagset(1, rng))
        assert r.n_queries == 1
        assert r.n_collision == 0

    def test_per_tag_time_positive(self, rng):
        r = simulate_query_tree(uniform_tagset(10, rng), info_bits=8)
        assert r.time_per_tag_us > 0
        assert r.wire_time_us == pytest.approx(r.time_per_tag_us * 10)

    def test_info_bits_increase_uplink(self, rng):
        tags = uniform_tagset(50, rng)
        r0 = simulate_query_tree(tags, info_bits=0)
        r32 = simulate_query_tree(tags, info_bits=32)
        assert r32.tag_bits == r0.tag_bits + 32 * 50
        assert r32.wire_time_us > r0.wire_time_us

    def test_duplicate_ids_rejected(self):
        import numpy as np

        from repro.workloads.tagsets import TagSet

        tags = TagSet(np.zeros(2, dtype=np.uint64), np.array([7, 7], dtype=np.uint64))
        with pytest.raises(ValueError):
            simulate_query_tree(tags)

    def test_slower_than_known_id_polling(self, rng):
        # knowing IDs in advance (polling regime) beats discovering them
        from repro.core.hpp import HPP
        from repro.phy.link import plan_wire_time

        tags = uniform_tagset(500, rng)
        qt = simulate_query_tree(tags, info_bits=1)
        hpp = plan_wire_time(HPP().plan(tags, rng), 1)
        assert hpp < qt.wire_time_us
