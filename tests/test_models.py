"""Tests of the analytical models (paper eqs. 1-16 and Theorems 1-2)."""

import math

import numpy as np
import pytest

from repro.analysis import ehpp_model, exec_time, hpp_model, lower_bound, tpp_model


class TestHPPModel:
    def test_singleton_fraction_band(self):
        # eq. (1): λ ∈ (0.5, 1] ⇒ e^{-λ} ∈ [e^-1, e^-0.5) ≈ [36.8%, 60.7%)
        lo = hpp_model.singleton_fraction(1024, 1024)  # λ = 1
        hi = hpp_model.singleton_fraction(513, 1024)  # λ ≈ 0.5
        assert lo == pytest.approx(math.exp(-1023 / 1024), rel=1e-9)
        assert 0.36 < lo < hi < 0.61

    def test_fig3_anchor_points(self):
        # paper: w ≈ 10 at n=1000, w ≈ 16 at n=1e5, all under 16.5
        assert hpp_model.expected_vector_length(1_000) == pytest.approx(10, abs=0.8)
        assert hpp_model.expected_vector_length(100_000) == pytest.approx(16, abs=0.8)

    def test_monotone_growth(self):
        w = [hpp_model.expected_vector_length(n) for n in (100, 1000, 10_000, 100_000)]
        assert w == sorted(w)

    def test_upper_bound_eq5(self):
        for n in (10, 1000, 12_345):
            assert hpp_model.expected_vector_length(n) <= hpp_model.vector_length_upper_bound(n)

    def test_total_bits_includes_round_inits(self):
        n = 1000
        base = hpp_model.expected_total_bits(n, 0)
        with_init = hpp_model.expected_total_bits(n, 32)
        rounds = hpp_model.expected_rounds(n)
        assert with_init == pytest.approx(base + 32 * rounds)

    def test_round_trace_conserves_population(self):
        trace = hpp_model.hpp_round_trace(5000)
        assert sum(r.n_singletons for r in trace) == pytest.approx(5000, rel=1e-6)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            hpp_model.expected_vector_length(0)
        with pytest.raises(ValueError):
            hpp_model.singleton_fraction(0, 4)


class TestEHPPModel:
    def test_circle_cost_decomposition(self):
        cost = ehpp_model.circle_cost_per_tag(100, 200, 0)
        assert cost == pytest.approx(
            (hpp_model.expected_total_bits(100) + 200) / 100
        )

    def test_fig5_anchor(self):
        # paper: ≈7.94 bits at l_c = 200 for 1e5 tags
        w = ehpp_model.expected_vector_length(100_000, 200)
        assert w == pytest.approx(7.94, abs=0.15)

    def test_flat_in_n(self):
        w = [ehpp_model.expected_vector_length(n, 128) for n in (20_000, 100_000)]
        assert abs(w[0] - w[1]) < 0.1

    def test_increases_with_lc(self):
        w = [ehpp_model.expected_vector_length(50_000, lc) for lc in (100, 200, 400)]
        assert w == sorted(w)

    def test_validation(self):
        with pytest.raises(ValueError):
            ehpp_model.circle_cost_per_tag(0, 100)
        with pytest.raises(ValueError):
            ehpp_model.subset_size_bounds(-1)
        with pytest.raises(ValueError):
            ehpp_model.expected_vector_length(0, 100)


class TestTPPModel:
    def test_mu_peak(self):
        # Fig. 8: µ peaks at 1/e when λ = 1
        assert tpp_model.singleton_probability(1.0) == pytest.approx(1 / math.e)
        assert tpp_model.singleton_probability(0.5) < 1 / math.e
        assert tpp_model.singleton_probability(2.0) < 1 / math.e

    def test_theorem2_monotonicity(self):
        # larger µ (at fixed h) gives a smaller bound
        h = 10
        w = [
            tpp_model.worst_case_vector_length_round(mu * (1 << h), h)
            for mu in (0.15, 0.25, 0.3466)
        ]
        assert w == sorted(w, reverse=True)

    def test_global_bound_344(self):
        assert tpp_model.global_upper_bound() == pytest.approx(3.4427, abs=1e-3)

    def test_fig9_level(self):
        # paper: stable at about 3.38
        for n in (1000, 10_000, 100_000):
            assert tpp_model.expected_vector_length(n) == pytest.approx(3.38, abs=0.1)

    def test_exact_model_below_worst_case(self):
        for n in (1000, 30_000):
            exact = tpp_model.expected_vector_length(n, exact=True)
            worst = tpp_model.expected_vector_length(n)
            assert exact < worst <= tpp_model.global_upper_bound() + 0.05

    def test_worst_case_tree_nodes_eq7(self):
        # m=5, h=3: complete top of depth k=2 (2^2<5<=2^3): 2^3-2=6 nodes
        # plus 5 tails of length h-k=1 -> 11
        assert tpp_model.worst_case_tree_nodes(5, 3) == 11.0

    def test_expected_tree_nodes_extremes(self):
        # all leaves selected -> full tree; one leaf -> a path
        assert tpp_model.expected_tree_nodes(8, 3) == pytest.approx(14.0)
        assert tpp_model.expected_tree_nodes(1, 3) == pytest.approx(3.0)
        assert tpp_model.expected_tree_nodes(0, 3) == 0.0

    def test_expected_tree_nodes_matches_monte_carlo(self):
        from repro.core.polling_tree import PollingTree

        h, m = 8, 60
        rng = np.random.default_rng(9)
        sims = []
        for _ in range(300):
            leaves = rng.choice(1 << h, size=m, replace=False)
            sims.append(PollingTree.from_indices(sorted(leaves), h).n_nodes)
        assert tpp_model.expected_tree_nodes(m, h) == pytest.approx(
            np.mean(sims), rel=0.02
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            tpp_model.singleton_probability(-1)
        with pytest.raises(ValueError):
            tpp_model.worst_case_tree_nodes(9, 3)
        with pytest.raises(ValueError):
            tpp_model.expected_tree_nodes(9, 3)


class TestExecTime:
    def test_fig1_is_linear(self):
        w, t_ms = exec_time.execution_time_curve(96, 1)
        slopes = np.diff(t_ms)
        assert np.allclose(slopes, 37.45e-3)
        assert w.size == 97

    def test_cpp_anchor(self):
        assert exec_time.cpp_per_tag_time_us(1) == pytest.approx(3770.2)

    def test_vectorised_matches_scalar(self):
        ws = np.array([0.0, 3.0, 96.0])
        vec = exec_time.per_tag_time_us(ws, 16)
        for w, v in zip(ws, vec):
            assert exec_time.per_tag_time_us(float(w), 16) == pytest.approx(v)


class TestLowerBound:
    def test_ratio_helper(self):
        lb = lower_bound.lower_bound_s(10_000, 1)
        assert lower_bound.ratio_to_lower_bound(lb * 1.35, 10_000, 1) == pytest.approx(1.35)

    def test_table_anchor(self):
        assert lower_bound.lower_bound_s(10_000, 32) == pytest.approx(10.998, abs=1e-2)
