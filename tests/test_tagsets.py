"""Unit tests for tag populations."""

import numpy as np
import pytest

from repro.workloads.tagsets import (
    TagSet,
    adversarial_tagset,
    clustered_tagset,
    sequential_tagset,
    uniform_tagset,
)


class TestTagSet:
    def test_epc_reconstruction(self):
        ts = TagSet(np.array([0xABCD], dtype=np.uint64),
                    np.array([0x1122334455667788], dtype=np.uint64))
        assert ts.epc(0) == (0xABCD << 64) | 0x1122334455667788

    def test_len_and_words(self, rng):
        ts = uniform_tagset(100, rng)
        assert len(ts) == ts.n == 100
        assert ts.id_words.dtype == np.uint64
        assert ts.id_words.shape == (100,)

    def test_subset_preserves_identity(self, rng):
        ts = uniform_tagset(20, rng)
        sub = ts.subset(np.array([3, 7, 11]))
        assert len(sub) == 3
        assert sub.epc(1) == ts.epc(7)
        assert sub.id_words[2] == ts.id_words[11]

    def test_hi_bits_validated(self):
        with pytest.raises(ValueError):
            TagSet(np.array([1 << 33], dtype=np.uint64),
                   np.array([0], dtype=np.uint64))

    def test_misaligned_arrays_rejected(self):
        with pytest.raises(ValueError):
            TagSet(np.zeros(2, dtype=np.uint64), np.zeros(3, dtype=np.uint64))

    def test_duplicate_detection(self):
        ts = TagSet(np.zeros(2, dtype=np.uint64), np.array([5, 5], dtype=np.uint64))
        with pytest.raises(ValueError):
            ts.assert_unique()


class TestUniform:
    def test_unique_ids(self, rng):
        ts = uniform_tagset(5000, rng)
        ts.assert_unique()

    def test_ids_span_full_width(self, rng):
        ts = uniform_tagset(2000, rng)
        # with 2000 uniform 96-bit draws, both halves must vary
        assert np.unique(ts.id_hi).size > 1900
        assert np.unique(ts.id_lo).size == 2000

    def test_zero_tags(self, rng):
        assert len(uniform_tagset(0, rng)) == 0

    def test_negative_rejected(self, rng):
        with pytest.raises(ValueError):
            uniform_tagset(-1, rng)


class TestClustered:
    def test_category_count(self, rng):
        ts = clustered_tagset(1000, rng, n_categories=4, category_bits=16)
        prefixes = np.unique(ts.id_hi >> np.uint64(16))
        assert 1 <= prefixes.size <= 4

    def test_unique(self, rng):
        clustered_tagset(2000, rng, n_categories=3).assert_unique()

    def test_invalid_params(self, rng):
        with pytest.raises(ValueError):
            clustered_tagset(10, rng, category_bits=0)
        with pytest.raises(ValueError):
            clustered_tagset(10, rng, n_categories=0)


class TestSequential:
    def test_consecutive(self):
        ts = sequential_tagset(10, base=100)
        assert [ts.epc(i) for i in range(10)] == list(range(100, 110))

    def test_carry_into_high_word(self):
        base = (5 << 64) | 0xFFFFFFFFFFFFFFFE
        ts = sequential_tagset(4, base=base)
        assert ts.epc(0) == base
        assert ts.epc(2) == base + 2  # crosses the 64-bit boundary
        assert int(ts.id_hi[2]) == 6

    def test_maximal_shared_prefix(self):
        ts = sequential_tagset(4, base=1 << 80)
        # four consecutive serials differ only in the last 2 bits
        assert ts.category_prefix_bits() >= 94


class TestAdversarial:
    def test_low_bits_fixed(self, rng):
        ts = adversarial_tagset(500, rng)
        low16 = ts.id_lo & np.uint64(0xFFFF)
        assert np.unique(low16).size == 1

    def test_unique(self, rng):
        adversarial_tagset(500, rng).assert_unique()


class TestCategoryPrefix:
    def test_uniform_shares_little(self, rng):
        ts = uniform_tagset(100, rng)
        assert ts.category_prefix_bits() <= 10

    def test_single_tag_full_prefix(self, rng):
        assert uniform_tagset(1, rng).category_prefix_bits() == 96
