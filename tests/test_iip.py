"""Tests for the iterative ID-free missing-tag identification baseline."""

import numpy as np
import pytest

from repro.baselines.iip import simulate_iip
from repro.workloads.tagsets import uniform_tagset


@pytest.fixture
def tags():
    return uniform_tagset(1000, np.random.default_rng(1))


class TestIdentification:
    def test_exact_partition(self, tags):
        rng = np.random.default_rng(2)
        absent = [5, 250, 999]
        present = np.delete(np.arange(1000), absent)
        result = simulate_iip(tags, present, rng)
        assert result.missing == absent
        assert len(result.present) == 997
        assert sorted(result.missing + result.present) == list(range(1000))

    def test_nobody_missing(self, tags):
        rng = np.random.default_rng(3)
        result = simulate_iip(tags, np.arange(1000), rng)
        assert result.missing == []
        assert len(result.present) == 1000

    def test_everyone_missing(self, tags):
        rng = np.random.default_rng(4)
        result = simulate_iip(tags, np.array([], dtype=np.int64), rng)
        assert len(result.missing) == 1000

    def test_rounds_scale_logarithmically(self, tags):
        rng = np.random.default_rng(5)
        result = simulate_iip(tags, np.arange(1000), rng)
        # ~63% verified per round at load 1: well under 30 rounds for 1e3
        assert result.rounds < 30

    def test_empty_population_rejected(self):
        with pytest.raises(ValueError):
            simulate_iip(uniform_tagset(0, np.random.default_rng(0)),
                         np.array([]), np.random.default_rng(0))


class TestWireVariants:
    def test_bitmap_skips_waste(self, tags):
        present = np.arange(1000)
        a = simulate_iip(tags, present, np.random.default_rng(6), bitmap=True)
        b = simulate_iip(tags, present, np.random.default_rng(6), bitmap=False)
        assert a.wasted_slots == 0
        assert b.wasted_slots > 0
        assert a.missing == b.missing == []

    def test_bitmap_is_faster_at_load_one(self, tags):
        # trading an f-bit vector (37.45 µs/bit) for ~63% wasted slots
        # (~300 µs each) pays off
        present = np.arange(1000)
        a = simulate_iip(tags, present, np.random.default_rng(7), bitmap=True)
        b = simulate_iip(tags, present, np.random.default_rng(7), bitmap=False)
        assert a.wire_time_us < b.wire_time_us

    def test_total_slots_accounting(self, tags):
        result = simulate_iip(tags, np.arange(1000), np.random.default_rng(8),
                              bitmap=False)
        assert result.total_slots >= 1000  # at least one slot per tag
        assert result.wasted_slots < result.total_slots


class TestVsPolling:
    def test_polling_identification_competitive(self, tags):
        """§VI's claim in numbers: polling removes the slot waste that

        even refined ALOHA identification keeps paying, and TPP's 3-bit
        vectors put it ahead of the bitmap-free IIP variant."""
        from repro.apps.missing_tag import detect_missing_tags
        from repro.core.tpp import TPP
        from repro.workloads.scenarios import Scenario

        absent = list(range(0, 1000, 97))
        present = np.delete(np.arange(1000), absent)
        iip_walk = simulate_iip(tags, present, np.random.default_rng(9),
                                bitmap=False)
        scenario = Scenario(name="x", tags=tags, info_bits=1, present=present)
        polled = detect_missing_tags(TPP(), scenario, seed=10)
        assert polled.exact
        assert sorted(iip_walk.missing) == polled.detected_missing
        assert polled.time_us < iip_walk.wire_time_us
