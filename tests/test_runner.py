"""Tests for the parallel, cached Monte-Carlo sweep engine.

Covers the two guarantees the engine was built around:

- the correlated-RNG bugfix: the tagset draw and the protocol's plan
  seeds come from independent ``SeedSequence`` children (the old sweep
  fed one shared generator to both), and
- determinism: serial and multi-process execution produce bit-identical
  series, and the cell cache returns exactly what was computed.
"""

import numpy as np
import pytest

from repro.core.hpp import HPP
from repro.core.tpp import TPP
from repro.experiments.common import sweep_protocol
from repro.experiments.runner import (
    ResultCache,
    SweepRunner,
    cell_seed_children,
    configure_default_runner,
    describe,
    evaluate_cell,
    get_default_runner,
    set_default_runner,
)
from repro.phy.commands import CommandSizes
from repro.phy.link import LinkBudget
from repro.workloads.tagsets import uniform_tagset


def _hungry_tagset(n, rng):
    """A tagset factory that consumes extra randomness before drawing."""
    rng.integers(0, 1 << 30, size=7)
    return uniform_tagset(n, rng)


def _first_plan_seed(plan) -> int:
    """The first hash seed a plan broadcasts (HPP round 0)."""
    return plan.rounds[0].extra["seed"]


class TestRNGSplitRegression:
    """The headline bugfix: plan seeds must not depend on the tagset draw."""

    def test_old_shared_rng_path_correlates_tagset_and_plan_seeds(self):
        """Documents the seed repo's bug: one generator fed both the
        tagset draw and the plan, so how much entropy the tagset factory
        consumed changed the protocol's hash seeds."""
        def old_cell(tagset_factory):
            rng = np.random.default_rng((0, 200, 0))
            tags = tagset_factory(200, rng)
            return _first_plan_seed(HPP().plan(tags, rng))

        assert old_cell(uniform_tagset) != old_cell(_hungry_tagset)

    def test_new_path_decouples_plan_seeds_from_tagset_draw(self):
        """With independent SeedSequence children, the plan's hash seeds
        are identical no matter what the tagset factory consumed."""
        def new_cell_seed(tagset_factory):
            tag_child, plan_child = cell_seed_children(0, 200, 0)
            tags = tagset_factory(200, np.random.default_rng(tag_child))
            return _first_plan_seed(HPP().plan(tags, np.random.default_rng(plan_child)))

        assert new_cell_seed(uniform_tagset) == new_cell_seed(_hungry_tagset)

    def test_tag_and_plan_streams_differ(self):
        tag_child, plan_child = cell_seed_children(3, 100, 4)
        a = np.random.default_rng(tag_child).integers(0, 1 << 62, size=8)
        b = np.random.default_rng(plan_child).integers(0, 1 << 62, size=8)
        assert not np.array_equal(a, b)

    def test_fixed_seed_is_deterministic(self):
        r = SweepRunner(jobs=1, cache=None)
        a = r.sweep(HPP(), (300, 600), n_runs=4, seed=9)
        b = r.sweep(HPP(), (300, 600), n_runs=4, seed=9)
        assert a.y == b.y and a.x == b.x
        c = r.sweep(HPP(), (300, 600), n_runs=4, seed=10)
        assert c.y != a.y


class TestParallelDeterminism:
    def test_parallel_sweep_bit_identical_to_serial(self):
        """The acceptance criterion: 4 worker processes, same bits."""
        grid = (200, 400, 800, 1600)
        serial = SweepRunner(jobs=1, cache=None).sweep(
            TPP(commands=CommandSizes(round_init=32, circle_command=128)),
            grid, n_runs=3, seed=0)
        parallel = SweepRunner(jobs=4, cache=None).sweep(
            TPP(commands=CommandSizes(round_init=32, circle_command=128)),
            grid, n_runs=3, seed=0)
        assert serial.y == parallel.y

    def test_tagset_draw_shared_across_protocols(self):
        """The tag child depends only on (seed, n, run), so sweeping two
        protocols over one grid must draw each population once."""
        calls = []

        def counting_factory(n, rng):
            calls.append(n)
            return uniform_tagset(n, rng)

        r = SweepRunner(jobs=1, cache=None)
        a = r.sweep(HPP(), (150,), n_runs=2, seed=5,
                    tagset_factory=counting_factory)
        b = r.sweep(TPP(), (150,), n_runs=2, seed=5,
                    tagset_factory=counting_factory)
        assert len(calls) == 2  # one draw per cell, not per protocol
        assert a.y != b.y  # distinct protocols still computed separately

    def test_unpicklable_config_falls_back_to_serial(self):
        captured = []

        def peeking_factory(n, rng):  # local function: not picklable
            captured.append(n)
            return uniform_tagset(n, rng)

        s = SweepRunner(jobs=4, cache=None).sweep(
            HPP(), (100, 200), n_runs=2, seed=0,
            tagset_factory=peeking_factory)
        assert len(s.y) == 2
        assert captured  # ran in-process, so the closure was exercised


class TestCache:
    def test_second_sweep_hits_cache(self):
        cache = ResultCache()
        r = SweepRunner(jobs=1, cache=cache)
        first = r.sweep(HPP(), (150, 300), n_runs=3, seed=1)
        assert cache.misses == 6 and cache.hits == 0
        second = r.sweep(HPP(), (150, 300), n_runs=3, seed=1)
        assert cache.hits == 6
        assert first.y == second.y

    def test_cache_key_separates_configurations(self):
        cache = ResultCache()
        r = SweepRunner(jobs=1, cache=cache)
        a = r.sweep(HPP(), (200,), n_runs=2, seed=0, metric="avg_vector_bits")
        b = r.sweep(HPP(), (200,), n_runs=2, seed=0, metric="time_us")
        c = r.sweep(HPP(commands=CommandSizes(round_init=64)), (200,),
                    n_runs=2, seed=0)
        assert len(cache) == 6  # three distinct keys per cell
        assert a.y != b.y and a.y != c.y

    def test_disk_cache_round_trip(self, tmp_path):
        r1 = SweepRunner(jobs=1, cache=ResultCache(tmp_path))
        first = r1.sweep(HPP(), (150, 300), n_runs=2, seed=4)
        assert (tmp_path / "cells.jsonl").exists()
        # a fresh process would reload from disk: simulate with a new cache
        reloaded = ResultCache(tmp_path)
        assert len(reloaded) == 4
        r2 = SweepRunner(jobs=1, cache=reloaded)
        second = r2.sweep(HPP(), (150, 300), n_runs=2, seed=4)
        assert second.y == first.y
        assert reloaded.hits == 4 and reloaded.misses == 0

    def test_corrupt_cache_line_is_skipped(self, tmp_path):
        (tmp_path / "cells.jsonl").write_text(
            '{"key": "good", "value": 1.5}\nnot json at all\n{"broken": 1}\n'
        )
        cache = ResultCache(tmp_path)
        assert len(cache) == 1
        assert cache.get("good") == 1.5

    def test_no_cache_recomputes(self):
        r = SweepRunner(jobs=1, cache=None)
        a = r.sweep(HPP(), (150,), n_runs=2, seed=0)
        b = r.sweep(HPP(), (150,), n_runs=2, seed=0)
        assert a.y == b.y  # still deterministic, just not memoised


class TestVectorMetrics:
    def test_callable_metric_returns_components(self):
        def two_metrics(protocol, tags, seed_seq, budget, info_bits):
            plan = protocol.plan(tags, np.random.default_rng(seed_seq))
            return [plan.avg_vector_bits, float(plan.n_rounds)]

        r = SweepRunner(jobs=1, cache=None)
        means = r.sweep_values(HPP(), (200, 400), n_runs=3, seed=0,
                               metric=two_metrics)
        assert means.shape == (2, 2)
        scalar = r.sweep_values(HPP(), (200, 400), n_runs=3, seed=0)
        assert np.allclose(means[:, 0], scalar[:, 0])

    def test_evaluate_cell_matches_sweep(self):
        value = evaluate_cell(HPP(), 250, 1, 7, "avg_vector_bits", 1,
                              LinkBudget(), uniform_tagset)
        means = SweepRunner(jobs=1, cache=None).sweep_values(
            HPP(), (250,), n_runs=2, seed=7)
        other = evaluate_cell(HPP(), 250, 0, 7, "avg_vector_bits", 1,
                              LinkBudget(), uniform_tagset)
        assert means[0, 0] == pytest.approx((value + other) / 2)


class TestDescribe:
    def test_protocol_description_is_config_complete(self):
        a = describe(HPP())
        b = describe(HPP(commands=CommandSizes(round_init=64)))
        assert a != b
        assert describe(HPP()) == describe(HPP())

    def test_lazy_attributes_do_not_change_the_key(self):
        from repro.core.ehpp import EHPP

        fresh = EHPP()
        resolved = EHPP()
        resolved.subset_size  # force the lazy optimum
        assert describe(fresh) == describe(resolved)

    def test_partial_and_function_descriptions(self):
        import functools

        from repro.workloads.tagsets import clustered_tagset

        d = describe(functools.partial(clustered_tagset, n_categories=4))
        assert "clustered_tagset" in d and "n_categories=4" in d
        assert describe(uniform_tagset) == "uniform_tagset"


class TestDefaultRunnerPlumbing:
    def test_configure_and_restore(self):
        previous = get_default_runner()
        try:
            configured = configure_default_runner(jobs=2, use_cache=False)
            assert get_default_runner() is configured
            assert configured.jobs == 2 and configured.cache is None
            with pytest.raises(ValueError):
                configure_default_runner(jobs=0)
        finally:
            set_default_runner(previous)

    def test_sweep_protocol_accepts_factory_and_instance(self):
        via_factory = sweep_protocol(lambda: HPP(), (200,), n_runs=2, seed=0,
                                     runner=SweepRunner(jobs=1, cache=None))
        via_instance = sweep_protocol(HPP(), (200,), n_runs=2, seed=0,
                                      runner=SweepRunner(jobs=1, cache=None))
        assert via_factory.y == via_instance.y
        assert via_factory.label == "HPP"


class TestBatchPath:
    """The replica-axis fast path must be an invisible optimisation:
    same values, same cache entries, for every jobs count."""

    GRID = (40, 130)

    def _values(self, protocol, *, batch, jobs=1, metric="avg_vector_bits"):
        runner = SweepRunner(jobs=jobs, cache=None, batch=batch)
        return runner.sweep_values(
            protocol, self.GRID, n_runs=4, seed=5, metric=metric
        )

    @pytest.mark.parametrize("metric", ["avg_vector_bits", "time_us",
                                        "n_rounds", "reader_bits"])
    def test_batch_matches_sequential(self, metric):
        from repro.core.ehpp import EHPP

        for protocol in (HPP(), TPP(), EHPP(subset_size=30)):
            fast = self._values(protocol, batch=True, metric=metric)
            slow = self._values(protocol, batch=False, metric=metric)
            assert np.array_equal(fast, slow), (describe(protocol), metric)

    def test_batch_parallel_matches_serial(self):
        fast = self._values(HPP(), batch=True, jobs=2, metric="time_us")
        slow = self._values(HPP(), batch=False, jobs=1, metric="time_us")
        assert np.array_equal(fast, slow)

    def test_batch_and_sequential_share_cache_entries(self):
        cache = ResultCache()
        batched = SweepRunner(jobs=1, cache=cache, batch=True)
        batched.sweep_values(HPP(), self.GRID, n_runs=3, seed=1)
        assert cache.misses == len(self.GRID) * 3
        sequential = SweepRunner(jobs=1, cache=cache, batch=False)
        again = sequential.sweep_values(HPP(), self.GRID, n_runs=3, seed=1)
        assert cache.hits == len(self.GRID) * 3, (
            "sequential runner must hit every batch-written cell"
        )
        assert np.array_equal(
            again,
            SweepRunner(jobs=1, cache=None, batch=False).sweep_values(
                HPP(), self.GRID, n_runs=3, seed=1
            ),
        )

    def test_unsupported_metric_falls_back(self):
        def spread(protocol, tags, plan_seed, budget, info_bits):
            plan = protocol.plan(tags, np.random.default_rng(plan_seed))
            return [float(len(plan.rounds)), float(plan.n_polls)]

        fast = self._values(HPP(), batch=True, metric=spread)
        slow = self._values(HPP(), batch=False, metric=spread)
        assert np.array_equal(fast, slow)

    def test_unsupported_protocol_falls_back(self):
        from repro.baselines.mic import MIC

        fast = self._values(MIC(), batch=True)
        slow = self._values(MIC(), batch=False)
        assert np.array_equal(fast, slow)


class TestCacheTornTail:
    """A crash mid-append must cost at most the torn cell, never the file."""

    def _sweep(self, cache):
        runner = SweepRunner(jobs=1, cache=cache)
        return runner.sweep_values(HPP(), (60,), n_runs=3, seed=2)

    def test_truncated_final_line_recovers(self, tmp_path):
        first = self._sweep(ResultCache(tmp_path))
        path = tmp_path / "cells.jsonl"
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 9])  # tear the last record

        reloaded = ResultCache(tmp_path)
        assert len(reloaded) == 2  # the torn cell is dropped, not the file
        again = self._sweep(reloaded)
        assert np.array_equal(again, first)
        assert reloaded.misses == 1

        # the repaired file must parse cleanly on the next load
        final = ResultCache(tmp_path)
        assert len(final) == 3
        for line in path.read_bytes().splitlines():
            assert line == b"" or line.lstrip().startswith(b"{")

    def test_append_after_torn_tail_does_not_fuse_records(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("a", 1.0)
        path = tmp_path / "cells.jsonl"
        path.write_bytes(path.read_bytes()[:-3])  # no trailing newline

        recovered = ResultCache(tmp_path)
        recovered.put("b", 2.0)
        entries = [
            line for line in path.read_text().splitlines() if line.strip()
        ]
        reparsed = ResultCache(tmp_path)
        assert reparsed.get("b") == 2.0
        assert len(entries) >= 2  # the torn tail sits on its own line
