"""Tests for the parallel, cached Monte-Carlo sweep engine.

Covers the two guarantees the engine was built around:

- the correlated-RNG bugfix: the tagset draw and the protocol's plan
  seeds come from independent ``SeedSequence`` children (the old sweep
  fed one shared generator to both), and
- determinism: serial and multi-process execution produce bit-identical
  series, and the cell cache returns exactly what was computed.
"""

import numpy as np
import pytest

from repro.core.hpp import HPP
from repro.core.tpp import TPP
from repro.experiments.common import sweep_protocol
from repro.experiments.runner import (
    ResultCache,
    SweepRunner,
    cell_seed_children,
    configure_default_runner,
    describe,
    evaluate_cell,
    get_default_runner,
    set_default_runner,
)
from repro.phy.commands import CommandSizes
from repro.phy.link import LinkBudget
from repro.workloads.tagsets import uniform_tagset


def _hungry_tagset(n, rng):
    """A tagset factory that consumes extra randomness before drawing."""
    rng.integers(0, 1 << 30, size=7)
    return uniform_tagset(n, rng)


def _first_plan_seed(plan) -> int:
    """The first hash seed a plan broadcasts (HPP round 0)."""
    return plan.rounds[0].extra["seed"]


class TestRNGSplitRegression:
    """The headline bugfix: plan seeds must not depend on the tagset draw."""

    def test_old_shared_rng_path_correlates_tagset_and_plan_seeds(self):
        """Documents the seed repo's bug: one generator fed both the
        tagset draw and the plan, so how much entropy the tagset factory
        consumed changed the protocol's hash seeds."""
        def old_cell(tagset_factory):
            rng = np.random.default_rng((0, 200, 0))
            tags = tagset_factory(200, rng)
            return _first_plan_seed(HPP().plan(tags, rng))

        assert old_cell(uniform_tagset) != old_cell(_hungry_tagset)

    def test_new_path_decouples_plan_seeds_from_tagset_draw(self):
        """With independent SeedSequence children, the plan's hash seeds
        are identical no matter what the tagset factory consumed."""
        def new_cell_seed(tagset_factory):
            tag_child, plan_child = cell_seed_children(0, 200, 0)
            tags = tagset_factory(200, np.random.default_rng(tag_child))
            return _first_plan_seed(HPP().plan(tags, np.random.default_rng(plan_child)))

        assert new_cell_seed(uniform_tagset) == new_cell_seed(_hungry_tagset)

    def test_tag_and_plan_streams_differ(self):
        tag_child, plan_child = cell_seed_children(3, 100, 4)
        a = np.random.default_rng(tag_child).integers(0, 1 << 62, size=8)
        b = np.random.default_rng(plan_child).integers(0, 1 << 62, size=8)
        assert not np.array_equal(a, b)

    def test_fixed_seed_is_deterministic(self):
        r = SweepRunner(jobs=1, cache=None)
        a = r.sweep(HPP(), (300, 600), n_runs=4, seed=9)
        b = r.sweep(HPP(), (300, 600), n_runs=4, seed=9)
        assert a.y == b.y and a.x == b.x
        c = r.sweep(HPP(), (300, 600), n_runs=4, seed=10)
        assert c.y != a.y


class TestParallelDeterminism:
    def test_parallel_sweep_bit_identical_to_serial(self):
        """The acceptance criterion: 4 worker processes, same bits."""
        grid = (200, 400, 800, 1600)
        serial = SweepRunner(jobs=1, cache=None).sweep(
            TPP(commands=CommandSizes(round_init=32, circle_command=128)),
            grid, n_runs=3, seed=0)
        parallel = SweepRunner(jobs=4, cache=None).sweep(
            TPP(commands=CommandSizes(round_init=32, circle_command=128)),
            grid, n_runs=3, seed=0)
        assert serial.y == parallel.y

    def test_tagset_draw_shared_across_protocols(self):
        """The tag child depends only on (seed, n, run), so sweeping two
        protocols over one grid must draw each population once."""
        calls = []

        def counting_factory(n, rng):
            calls.append(n)
            return uniform_tagset(n, rng)

        r = SweepRunner(jobs=1, cache=None)
        a = r.sweep(HPP(), (150,), n_runs=2, seed=5,
                    tagset_factory=counting_factory)
        b = r.sweep(TPP(), (150,), n_runs=2, seed=5,
                    tagset_factory=counting_factory)
        assert len(calls) == 2  # one draw per cell, not per protocol
        assert a.y != b.y  # distinct protocols still computed separately

    def test_unpicklable_config_falls_back_to_serial(self):
        captured = []

        def peeking_factory(n, rng):  # local function: not picklable
            captured.append(n)
            return uniform_tagset(n, rng)

        s = SweepRunner(jobs=4, cache=None).sweep(
            HPP(), (100, 200), n_runs=2, seed=0,
            tagset_factory=peeking_factory)
        assert len(s.y) == 2
        assert captured  # ran in-process, so the closure was exercised


class TestCache:
    def test_second_sweep_hits_cache(self):
        cache = ResultCache()
        r = SweepRunner(jobs=1, cache=cache)
        first = r.sweep(HPP(), (150, 300), n_runs=3, seed=1)
        assert cache.misses == 6 and cache.hits == 0
        second = r.sweep(HPP(), (150, 300), n_runs=3, seed=1)
        assert cache.hits == 6
        assert first.y == second.y

    def test_cache_key_separates_configurations(self):
        cache = ResultCache()
        r = SweepRunner(jobs=1, cache=cache)
        a = r.sweep(HPP(), (200,), n_runs=2, seed=0, metric="avg_vector_bits")
        b = r.sweep(HPP(), (200,), n_runs=2, seed=0, metric="time_us")
        c = r.sweep(HPP(commands=CommandSizes(round_init=64)), (200,),
                    n_runs=2, seed=0)
        assert len(cache) == 6  # three distinct keys per cell
        assert a.y != b.y and a.y != c.y

    def test_disk_cache_round_trip(self, tmp_path):
        r1 = SweepRunner(jobs=1, cache=ResultCache(tmp_path))
        first = r1.sweep(HPP(), (150, 300), n_runs=2, seed=4)
        assert list(tmp_path.glob("cells-*.seg"))  # sealed on sweep end
        # a fresh process would reload from disk: simulate with a new cache
        reloaded = ResultCache(tmp_path)
        assert len(reloaded) == 4
        r2 = SweepRunner(jobs=1, cache=reloaded)
        second = r2.sweep(HPP(), (150, 300), n_runs=2, seed=4)
        assert second.y == first.y
        assert reloaded.hits == 4 and reloaded.misses == 0

    def test_corrupt_legacy_cache_line_is_skipped(self, tmp_path):
        (tmp_path / "cells.jsonl").write_text(
            '{"key": "good", "value": 1.5}\nnot json at all\n{"broken": 1}\n'
        )
        cache = ResultCache(tmp_path)
        assert len(cache) == 1
        assert cache.get("good") == 1.5

    def test_code_version_edit_invalidates_cache(self, tmp_path):
        """The stale-cache regression: a changed code-version fingerprint
        (what an edit to any metric-path source produces) must make every
        previously cached value a miss, never serve it."""
        r1 = SweepRunner(jobs=1, cache=ResultCache(tmp_path, version="aaaa"))
        r1.sweep_values(HPP(), (60, 120), n_runs=2, seed=0)

        edited = ResultCache(tmp_path, version="bbbb")  # "edited" source
        r2 = SweepRunner(jobs=1, cache=edited)
        r2.sweep_values(HPP(), (60, 120), n_runs=2, seed=0)
        assert edited.hits == 0 and edited.misses == 4

        same = ResultCache(tmp_path, version="bbbb")  # unedited re-render
        r3 = SweepRunner(jobs=1, cache=same)
        r3.sweep_values(HPP(), (60, 120), n_runs=2, seed=0)
        assert same.hits == 4 and same.misses == 0

    def test_default_version_is_code_fingerprint(self):
        from repro.experiments.cellstore import cache_version

        assert ResultCache().version == cache_version()
        assert len(cache_version()) == 16

    def test_duplicate_writes_compact_on_load(self, tmp_path):
        """The unbounded-growth regression: re-putting the same keys
        forever must not grow the store without bound — load-time
        compaction rewrites it down to the live set."""
        cache = ResultCache(tmp_path, version="v0")
        for _ in range(40):  # 200 writes, 5 live keys
            for k in range(5):
                cache.put(f"cell-{k}", float(k))
            cache.flush()
        grown = sum(p.stat().st_size for p in tmp_path.glob("cells-*.seg"))

        reloaded = ResultCache(tmp_path, version="v0")
        shrunk = sum(p.stat().st_size for p in tmp_path.glob("cells-*.seg"))
        assert len(reloaded) == 5
        assert all(reloaded.get(f"cell-{k}") == float(k) for k in range(5))
        assert reloaded.store.stats.compacted
        assert shrunk < grown / 10  # 200 entries on disk -> 5

    def test_no_cache_recomputes(self):
        r = SweepRunner(jobs=1, cache=None)
        a = r.sweep(HPP(), (150,), n_runs=2, seed=0)
        b = r.sweep(HPP(), (150,), n_runs=2, seed=0)
        assert a.y == b.y  # still deterministic, just not memoised


class TestVectorMetrics:
    def test_callable_metric_returns_components(self):
        def two_metrics(protocol, tags, seed_seq, budget, info_bits):
            plan = protocol.plan(tags, np.random.default_rng(seed_seq))
            return [plan.avg_vector_bits, float(plan.n_rounds)]

        r = SweepRunner(jobs=1, cache=None)
        means = r.sweep_values(HPP(), (200, 400), n_runs=3, seed=0,
                               metric=two_metrics)
        assert means.shape == (2, 2)
        scalar = r.sweep_values(HPP(), (200, 400), n_runs=3, seed=0)
        assert np.allclose(means[:, 0], scalar[:, 0])

    def test_evaluate_cell_matches_sweep(self):
        value = evaluate_cell(HPP(), 250, 1, 7, "avg_vector_bits", 1,
                              LinkBudget(), uniform_tagset)
        means = SweepRunner(jobs=1, cache=None).sweep_values(
            HPP(), (250,), n_runs=2, seed=7)
        other = evaluate_cell(HPP(), 250, 0, 7, "avg_vector_bits", 1,
                              LinkBudget(), uniform_tagset)
        assert means[0, 0] == pytest.approx((value + other) / 2)


class TestDescribe:
    def test_protocol_description_is_config_complete(self):
        a = describe(HPP())
        b = describe(HPP(commands=CommandSizes(round_init=64)))
        assert a != b
        assert describe(HPP()) == describe(HPP())

    def test_lazy_attributes_do_not_change_the_key(self):
        from repro.core.ehpp import EHPP

        fresh = EHPP()
        resolved = EHPP()
        resolved.subset_size  # force the lazy optimum
        assert describe(fresh) == describe(resolved)

    def test_partial_and_function_descriptions(self):
        import functools

        from repro.workloads.tagsets import clustered_tagset

        d = describe(functools.partial(clustered_tagset, n_categories=4))
        assert "clustered_tagset" in d and "n_categories=4" in d
        assert describe(uniform_tagset) == "uniform_tagset"


class TestDefaultRunnerPlumbing:
    def test_configure_and_restore(self):
        previous = get_default_runner()
        try:
            configured = configure_default_runner(jobs=2, use_cache=False)
            assert get_default_runner() is configured
            assert configured.jobs == 2 and configured.cache is None
            with pytest.raises(ValueError):
                configure_default_runner(jobs=0)
        finally:
            set_default_runner(previous)

    def test_sweep_protocol_accepts_factory_and_instance(self):
        via_factory = sweep_protocol(lambda: HPP(), (200,), n_runs=2, seed=0,
                                     runner=SweepRunner(jobs=1, cache=None))
        via_instance = sweep_protocol(HPP(), (200,), n_runs=2, seed=0,
                                      runner=SweepRunner(jobs=1, cache=None))
        assert via_factory.y == via_instance.y
        assert via_factory.label == "HPP"


class TestBatchPath:
    """The replica-axis fast path must be an invisible optimisation:
    same values, same cache entries, for every jobs count."""

    GRID = (40, 130)

    def _values(self, protocol, *, batch, jobs=1, metric="avg_vector_bits"):
        runner = SweepRunner(jobs=jobs, cache=None, batch=batch)
        return runner.sweep_values(
            protocol, self.GRID, n_runs=4, seed=5, metric=metric
        )

    @pytest.mark.parametrize("metric", ["avg_vector_bits", "time_us",
                                        "n_rounds", "reader_bits"])
    def test_batch_matches_sequential(self, metric):
        from repro.core.ehpp import EHPP

        for protocol in (HPP(), TPP(), EHPP(subset_size=30)):
            fast = self._values(protocol, batch=True, metric=metric)
            slow = self._values(protocol, batch=False, metric=metric)
            assert np.array_equal(fast, slow), (describe(protocol), metric)

    def test_batch_parallel_matches_serial(self):
        fast = self._values(HPP(), batch=True, jobs=2, metric="time_us")
        slow = self._values(HPP(), batch=False, jobs=1, metric="time_us")
        assert np.array_equal(fast, slow)

    def test_batch_and_sequential_share_cache_entries(self):
        cache = ResultCache()
        batched = SweepRunner(jobs=1, cache=cache, batch=True)
        batched.sweep_values(HPP(), self.GRID, n_runs=3, seed=1)
        assert cache.misses == len(self.GRID) * 3
        sequential = SweepRunner(jobs=1, cache=cache, batch=False)
        again = sequential.sweep_values(HPP(), self.GRID, n_runs=3, seed=1)
        assert cache.hits == len(self.GRID) * 3, (
            "sequential runner must hit every batch-written cell"
        )
        assert np.array_equal(
            again,
            SweepRunner(jobs=1, cache=None, batch=False).sweep_values(
                HPP(), self.GRID, n_runs=3, seed=1
            ),
        )

    def test_unsupported_metric_falls_back(self):
        def spread(protocol, tags, plan_seed, budget, info_bits):
            plan = protocol.plan(tags, np.random.default_rng(plan_seed))
            return [float(len(plan.rounds)), float(plan.n_polls)]

        fast = self._values(HPP(), batch=True, metric=spread)
        slow = self._values(HPP(), batch=False, metric=spread)
        assert np.array_equal(fast, slow)

    def test_unsupported_protocol_falls_back(self):
        from repro.baselines.mic import MIC

        fast = self._values(MIC(), batch=True)
        slow = self._values(MIC(), batch=False)
        assert np.array_equal(fast, slow)


class TestStoreBitIdentical:
    """Acceptance: values served through the columnar store equal
    uncached evaluation exactly, on the serial, multi-process, and
    replica-batched paths alike."""

    GRID = (50, 140)

    def _uncached(self, metric):
        return SweepRunner(jobs=1, cache=None, batch=False).sweep_values(
            HPP(), self.GRID, n_runs=3, seed=6, metric=metric
        )

    @pytest.mark.parametrize("metric", ["avg_vector_bits", "time_us"])
    def test_plan_metrics_round_trip(self, tmp_path, metric):
        reference = self._uncached(metric)
        writer = SweepRunner(jobs=2, cache=ResultCache(tmp_path), batch=True)
        written = writer.sweep_values(
            HPP(), self.GRID, n_runs=3, seed=6, metric=metric
        )
        assert np.array_equal(written, reference)
        for jobs, batch in ((1, False), (2, True)):
            reader_cache = ResultCache(tmp_path)
            served = SweepRunner(
                jobs=jobs, cache=reader_cache, batch=batch
            ).sweep_values(HPP(), self.GRID, n_runs=3, seed=6, metric=metric)
            assert np.array_equal(served, reference)
            assert reader_cache.misses == 0  # pure hits: same bits, no work

    def test_des_metric_round_trips(self, tmp_path):
        from repro.experiments.runner import DESMetric

        metric = DESMetric(ber=1e-4)
        reference = SweepRunner(jobs=1, cache=None, batch=False).sweep_values(
            HPP(), (30,), n_runs=2, seed=3, metric=metric
        )
        writer = SweepRunner(jobs=1, cache=ResultCache(tmp_path), batch=True)
        written = writer.sweep_values(HPP(), (30,), n_runs=2, seed=3,
                                      metric=metric)
        assert np.array_equal(written, reference)
        served = SweepRunner(
            jobs=1, cache=ResultCache(tmp_path), batch=False
        ).sweep_values(HPP(), (30,), n_runs=2, seed=3, metric=metric)
        assert np.array_equal(served, reference)


class TestCostAwareScheduling:
    """Cost-packed shards must cover every cell exactly once and never
    change values; the model itself learns from observations."""

    def test_parallel_cost_packed_matches_serial(self):
        from repro.core.ehpp import EHPP

        grid = (40, 80, 160, 320)
        protocol = EHPP(subset_size=30)
        serial = SweepRunner(jobs=1, cache=None, batch=False).sweep_values(
            protocol, grid, n_runs=3, seed=1
        )
        packed = SweepRunner(jobs=3, cache=None, batch=False).sweep_values(
            protocol, grid, n_runs=3, seed=1
        )
        assert np.array_equal(serial, packed)

    def test_observe_updates_and_persists(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = SweepRunner(jobs=1, cache=cache)
        runner.sweep_values(HPP(), (100, 400), n_runs=2, seed=0)
        assert any(k.startswith("HPP|b") for k in runner.cost_model.table)
        assert (tmp_path / "costs.json").exists()
        # a fresh runner on the same cache dir starts from the learned table
        fresh = SweepRunner(jobs=1, cache=ResultCache(tmp_path))
        assert fresh.cost_model.table == runner.cost_model.table

    def test_bench_seeded_protocol_ratios(self):
        from repro.experiments.costmodel import CostModel

        model = CostModel()  # seeds from the committed BENCH_engine.json
        n = 10_000
        # EHPP's per-cell planning cost dominates both light protocols by a
        # wide margin on every machine the bench has run on; the HPP/TPP
        # ordering is within noise of each other, so it is not asserted.
        assert model.predict("EHPP", n) > 2.0 * model.predict("TPP", n)
        assert model.predict("EHPP", n) > 2.0 * model.predict("HPP", n)
        assert 0.0 < model.predict("TPP", n)
        assert 0.0 < model.predict("HPP", n)
        assert model.predict("HPP", 4 * n) > model.predict("HPP", n)

    def test_sharding_helpers_partition_exactly(self):
        from repro.experiments.costmodel import (
            balanced_contiguous_bounds,
            greedy_shards,
        )

        costs = [10.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 10.0, 1.0, 1.0]
        bounds = balanced_contiguous_bounds(costs, 3)
        assert bounds[0] == 0 and bounds[-1] == len(costs)
        assert bounds == sorted(bounds)
        shards = greedy_shards(costs, 3)
        flat = sorted(i for shard in shards for i in shard)
        assert flat == list(range(len(costs)))
        loads = sorted(sum(costs[i] for i in shard) for shard in shards)
        assert loads[-1] <= 12.0  # the two heavy cells land on
        # different shards — that is the point of cost packing

    def test_degenerate_shard_counts(self):
        from repro.experiments.costmodel import (
            balanced_contiguous_bounds,
            greedy_shards,
        )

        assert balanced_contiguous_bounds([1.0], 4) == [0, 1]
        assert balanced_contiguous_bounds([0.0, 0.0], 2) == [0, 1, 2]
        assert greedy_shards([2.0], 5) == [[0]]


class TestCacheTornTail:
    """Crash recovery: a torn write must never poison valid entries.

    The segment store's failure matrix — torn segment tail, truncated
    footer, stale-version load, leftover temp file from a killed write,
    and legacy ``cells.jsonl`` migration (including its own torn tail) —
    each recovers to a loadable store that serves every intact entry.
    """

    def _sweep(self, cache, grid=(60,)):
        runner = SweepRunner(jobs=1, cache=cache)
        return runner.sweep_values(HPP(), grid, n_runs=3, seed=2)

    def _segments(self, tmp_path):
        return sorted(tmp_path.glob("cells-*.seg"))

    def test_torn_segment_tail_drops_only_that_segment(self, tmp_path):
        first = self._sweep(ResultCache(tmp_path, version="v0"))
        more = self._sweep(ResultCache(tmp_path, version="v0"), grid=(90,))
        segs = self._segments(tmp_path)
        assert len(segs) == 2
        raw = segs[1].read_bytes()
        segs[1].write_bytes(raw[: len(raw) - 9])  # tear the newest tail

        reloaded = ResultCache(tmp_path, version="v0")
        assert len(reloaded) == 3  # first sweep's segment intact
        assert reloaded.store.stats.corrupt_segments == 1
        again = self._sweep(reloaded)
        assert np.array_equal(again, first)
        assert reloaded.hits == 3  # intact entries all served
        re_more = self._sweep(ResultCache(tmp_path, version="v0"), grid=(90,))
        assert np.array_equal(re_more, more)  # torn cells recomputed

    def test_truncated_footer_fails_checksum(self, tmp_path):
        cache = ResultCache(tmp_path, version="v0")
        cache.put("a", 1.0)
        cache.flush()
        seg = self._segments(tmp_path)[0]
        seg.write_bytes(seg.read_bytes()[:-4])  # chop half the footer

        reloaded = ResultCache(tmp_path, version="v0")
        assert len(reloaded) == 0
        assert reloaded.store.stats.corrupt_segments == 1
        reloaded.put("a", 1.0)  # the store stays writable afterwards
        reloaded.flush()
        assert ResultCache(tmp_path, version="v0").get("a") == 1.0

    def test_corrupted_payload_fails_checksum(self, tmp_path):
        cache = ResultCache(tmp_path, version="v0")
        cache.put("a", 1.0)
        cache.put("b", [2.0, 3.0])
        cache.flush()
        seg = self._segments(tmp_path)[0]
        raw = bytearray(seg.read_bytes())
        raw[len(raw) // 2] ^= 0xFF  # flip one payload byte
        seg.write_bytes(bytes(raw))

        reloaded = ResultCache(tmp_path, version="v0")
        assert len(reloaded) == 0 and reloaded.store.stats.corrupt_segments == 1

    def test_version_mismatch_load_keeps_the_file_loadable(self, tmp_path):
        old = ResultCache(tmp_path, version="old")
        old.put("a", 1.0)
        old.flush()
        fresh = ResultCache(tmp_path, version="new")
        assert fresh.get("a") is None  # stale entry never served
        assert fresh.store.stats.stale_entries == 1
        fresh.put("a", 2.0)
        fresh.flush()
        # both versions coexist on disk until compaction: reverting the
        # code (version "old") still finds its own entry
        assert ResultCache(tmp_path, version="old").get("a") == 1.0
        assert ResultCache(tmp_path, version="new").get("a") == 2.0

    def test_leftover_tmp_file_from_killed_write_is_ignored(self, tmp_path):
        cache = ResultCache(tmp_path, version="v0")
        cache.put("a", 1.0)
        cache.flush()
        # a kill between tmp-write and rename leaves a half-written .tmp
        (tmp_path / "cells-00000007.tmp").write_bytes(b"RFCELLS1\x01\x00")

        reloaded = ResultCache(tmp_path, version="v0")
        assert reloaded.get("a") == 1.0
        reloaded.put("b", 2.0)
        reloaded.flush()
        assert ResultCache(tmp_path, version="v0").get("b") == 2.0

    def test_legacy_jsonl_migrates_with_torn_tail(self, tmp_path):
        import json

        with (tmp_path / "cells.jsonl").open("w") as fh:
            fh.write(json.dumps({"key": "good", "value": 1.5}) + "\n")
            fh.write(json.dumps({"key": "vec", "value": [1.0, 2.5]}) + "\n")
            fh.write('{"key": "torn-mid-crash')  # no newline, no close

        migrated = ResultCache(tmp_path, version="v0")
        assert migrated.get("good") == 1.5
        assert migrated.get("vec") == [1.0, 2.5]
        assert not (tmp_path / "cells.jsonl").exists()
        assert migrated.store.stats.migrated_entries == 2
        # the adopted entries now live in a checksummed segment
        assert self._segments(tmp_path)
        assert ResultCache(tmp_path, version="v0").get("good") == 1.5

    def test_legacy_values_identical_through_migration(self, tmp_path):
        """A cells.jsonl written by the v1 cache round-trips bit-identical
        through migration into the segment store."""
        import json

        cache = ResultCache(tmp_path, version="v0")
        first = self._sweep(cache)
        entries = [
            {"key": k[len("v=v0|"):], "value": v}
            for k, v in cache._memory.items()
        ]
        for seg in self._segments(tmp_path):
            seg.unlink()
        with (tmp_path / "cells.jsonl").open("w") as fh:
            for e in entries:
                fh.write(json.dumps(e) + "\n")

        migrated = ResultCache(tmp_path, version="v0")
        again = self._sweep(migrated)
        assert np.array_equal(again, first)
        assert migrated.hits == 3 and migrated.misses == 0
