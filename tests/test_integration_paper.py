"""Integration tests: the paper's headline claims, end to end.

Every numbered claim from the abstract and §V is checked against this
repository's implementation at reduced-but-sufficient scale.  Full-scale
paper-vs-measured numbers live in EXPERIMENTS.md.
"""

import numpy as np
import pytest

from repro.apps.information_collection import collect_information
from repro.baselines.mic import MIC
from repro.core.cpp import CPP
from repro.core.ehpp import EHPP
from repro.core.hpp import HPP
from repro.core.tpp import TPP
from repro.phy.link import lower_bound_us
from repro.workloads.tagsets import uniform_tagset

N = 10_000
RUNS = 5


@pytest.fixture(scope="module")
def table1_at_10k():
    """Execution time (s) for 1-bit collection at n = 10⁴ (paper Table I)."""
    out = {}
    for proto in (CPP(), HPP(), EHPP(), MIC(), TPP()):
        acc = 0.0
        for run in range(RUNS):
            rng = np.random.default_rng(run)
            tags = uniform_tagset(N, rng)
            rep = collect_information(proto, tags, info_bits=1, n_runs=1, seed=run)
            acc += rep.mean_time_s
        out[proto.name] = acc / RUNS
    out["LB"] = lower_bound_us(N, 1) / 1e6
    return out


class TestTableIAnchors:
    """The individually-quoted cells of Table I (n = 10⁴, l = 1)."""

    def test_cpp_37_70s(self, table1_at_10k):
        assert table1_at_10k["CPP"] == pytest.approx(37.70, abs=0.02)

    def test_hpp_8_12s(self, table1_at_10k):
        assert table1_at_10k["HPP"] == pytest.approx(8.12, abs=0.15)

    def test_ehpp_6_63s(self, table1_at_10k):
        assert table1_at_10k["EHPP"] == pytest.approx(6.63, abs=0.15)

    def test_mic_5_15s(self, table1_at_10k):
        assert table1_at_10k["MIC"] == pytest.approx(5.15, abs=0.20)

    def test_tpp_4_39s(self, table1_at_10k):
        assert table1_at_10k["TPP"] == pytest.approx(4.39, abs=0.10)

    def test_lower_bound_3_25s(self, table1_at_10k):
        assert table1_at_10k["LB"] == pytest.approx(3.248, abs=0.01)

    def test_tpp_within_1_35x_of_lower_bound(self, table1_at_10k):
        ratio = table1_at_10k["TPP"] / table1_at_10k["LB"]
        assert ratio == pytest.approx(1.35, abs=0.03)

    def test_tpp_beats_mic_by_about_14_8_percent(self, table1_at_10k):
        improvement = 1 - table1_at_10k["TPP"] / table1_at_10k["MIC"]
        assert improvement == pytest.approx(0.148, abs=0.03)

    def test_full_ordering(self, table1_at_10k):
        t = table1_at_10k
        assert t["LB"] < t["TPP"] < t["MIC"] < t["EHPP"] < t["HPP"] < t["CPP"]


class TestAbstractClaims:
    def test_tpp_vector_28x_shorter_than_ids_analytically(self):
        from repro.analysis.tpp_model import global_upper_bound

        assert 96 / global_upper_bound() == pytest.approx(28, abs=0.5)

    def test_tpp_vector_31x_shorter_in_simulation(self):
        rng = np.random.default_rng(0)
        tags = uniform_tagset(N, rng)
        w = TPP().plan(tags, rng).avg_vector_bits
        assert 96 / w == pytest.approx(31, abs=2.0)

    def test_hpp_vector_under_log2n(self):
        rng = np.random.default_rng(1)
        tags = uniform_tagset(N, rng)
        plan = HPP().plan(tags, rng)
        # per-round index length never exceeds ceil(log2 n)
        assert max(r.extra["h"] for r in plan.rounds) <= 14

    def test_no_slot_waste_in_polling_protocols(self):
        rng = np.random.default_rng(2)
        tags = uniform_tagset(2_000, rng)
        for proto in (HPP(), EHPP(), TPP()):
            plan = proto.plan(tags, np.random.default_rng(3))
            assert plan.wasted_slots == 0
            assert plan.n_polls == 2_000  # number of polls == number of tags

    def test_fewer_tag_hashes_than_mic(self):
        # storage argument: our protocols need 1 hash draw per round; MIC
        # requires k=7 hash units on the tag
        assert MIC().k == 7


class TestTableIIIRatios:
    """Table III (l = 32): multiples of the lower bound at n = 10⁴."""

    @pytest.fixture(scope="class")
    def ratios(self):
        lb = lower_bound_us(N, 32) / 1e6
        out = {}
        for proto in (CPP(), HPP(), EHPP(), MIC(), TPP()):
            rng = np.random.default_rng(11)
            tags = uniform_tagset(N, rng)
            rep = collect_information(proto, tags, info_bits=32, n_runs=3, seed=5)
            out[proto.name] = rep.mean_time_s / lb
        return out

    def test_tpp_1_10x(self, ratios):
        assert ratios["TPP"] == pytest.approx(1.10, abs=0.03)

    def test_mic_1_28x(self, ratios):
        assert ratios["MIC"] == pytest.approx(1.28, abs=0.05)

    def test_ehpp_1_31x(self, ratios):
        assert ratios["EHPP"] == pytest.approx(1.31, abs=0.04)

    def test_hpp_1_45x(self, ratios):
        assert ratios["HPP"] == pytest.approx(1.45, abs=0.04)

    def test_cpp_4_14x(self, ratios):
        assert ratios["CPP"] == pytest.approx(4.14, abs=0.05)


class TestTableIIRatios:
    """Table II (l = 16): TPP relative to the others at n = 10⁴."""

    def test_quoted_percentages(self):
        times = {}
        for proto in (CPP(), HPP(), EHPP(), MIC(), TPP()):
            rng = np.random.default_rng(21)
            tags = uniform_tagset(N, rng)
            times[proto.name] = collect_information(
                proto, tags, info_bits=16, n_runs=3, seed=9
            ).mean_time_s
        assert times["TPP"] / times["MIC"] == pytest.approx(0.857, abs=0.03)
        assert times["TPP"] / times["EHPP"] == pytest.approx(0.783, abs=0.03)
        assert times["TPP"] / times["HPP"] == pytest.approx(0.686, abs=0.03)
        assert times["TPP"] / times["CPP"] == pytest.approx(0.196, abs=0.01)
