"""Unit + statistical tests for the Enhanced HPP (§III-D)."""

import math

import numpy as np
import pytest

from repro.analysis.ehpp_model import optimal_subset_size, subset_size_bounds
from repro.core.ehpp import EHPP
from repro.core.hpp import HPP
from repro.workloads.tagsets import uniform_tagset


class TestSubsetSize:
    def test_theorem1_bracket(self):
        # the paper-default search stays inside Theorem 1's interval
        for lc in (64, 128, 200, 400):
            lo, hi = subset_size_bounds(lc)
            n_star = optimal_subset_size(lc, 0)
            assert lo <= n_star <= hi

    def test_global_search_near_optimal_in_cost(self):
        # the stepwise cost admits minima below the bracket, but the
        # bracket-restricted choice is within 2% of the global optimum
        from repro.analysis.ehpp_model import circle_cost_per_tag

        for lc in (128, 200, 400):
            bracketed = optimal_subset_size(lc, 0)
            global_opt = optimal_subset_size(lc, 0, global_search=True)
            c_b = circle_cost_per_tag(bracketed, lc, 0)
            c_g = circle_cost_per_tag(global_opt, lc, 0)
            assert c_g <= c_b <= c_g * 1.02

    def test_grows_with_circle_command(self):
        sizes = [optimal_subset_size(lc, 32) for lc in (50, 100, 200, 400)]
        assert sizes == sorted(sizes)
        assert sizes[-1] > sizes[0]

    def test_bounds_formula(self):
        lo, hi = subset_size_bounds(200)
        assert lo == pytest.approx(200 * math.log(2))
        assert hi == pytest.approx(math.e * 200 * math.log(2))


class TestEHPPPlan:
    def test_everyone_polled_once(self, rng):
        tags = uniform_tagset(3000, rng)
        EHPP().plan(tags, rng).validate_complete()

    def test_small_population_runs_plain_hpp(self, rng):
        # paper §V-C: with 100 tags EHPP "just executes HPP as-is"
        tags = uniform_tagset(100, rng)
        plan = EHPP().plan(tags, np.random.default_rng(5))
        assert plan.meta["n_circles"] == 0
        assert all(r.init_bits == 32 for r in plan.rounds)  # no circle cmd
        hpp = HPP().plan(tags, np.random.default_rng(5))
        assert plan.reader_bits == hpp.reader_bits

    def test_circle_sizes_near_target(self, rng):
        tags = uniform_tagset(10_000, rng)
        proto = EHPP()
        plan = proto.plan(tags, rng)
        joined = [
            r.extra["n_joined"]
            for r in plan.rounds
            if "n_joined" in r.extra and r.extra["n_remaining"] > 2 * proto.subset_size
        ]
        assert len(joined) > 10
        mean = np.mean(joined)
        assert mean == pytest.approx(proto.subset_size, rel=0.2)

    def test_flat_vector_length_in_n(self):
        # the paper's selling point: w̄ stays put as n grows
        w = []
        for n in (5000, 20_000, 60_000):
            rng = np.random.default_rng(n)
            w.append(EHPP().plan(uniform_tagset(n, rng), rng).avg_vector_bits)
        assert max(w) - min(w) < 0.4

    def test_beats_hpp_at_scale(self):
        rng = np.random.default_rng(4)
        tags = uniform_tagset(30_000, rng)
        e = EHPP().plan(tags, np.random.default_rng(1)).avg_vector_bits
        h = HPP().plan(tags, np.random.default_rng(1)).avg_vector_bits
        assert e < h - 3

    def test_headline_nine_bits(self):
        # Fig. 10 setting (l_c = 128, init 32): about 9.0 bits
        vals = []
        for run in range(5):
            rng = np.random.default_rng(run)
            tags = uniform_tagset(10_000, rng)
            vals.append(EHPP().plan(tags, rng).avg_vector_bits)
        assert np.mean(vals) == pytest.approx(9.0, abs=0.3)

    def test_explicit_subset_size(self, rng):
        tags = uniform_tagset(2000, rng)
        plan = EHPP(subset_size=100).plan(tags, rng)
        plan.validate_complete()
        assert plan.meta["subset_size"] == 100

    def test_circle_commands_charged(self, rng):
        tags = uniform_tagset(3000, rng)
        plan = EHPP().plan(tags, rng)
        circle_cmds = [r for r in plan.rounds if "F" in r.extra]
        assert len(circle_cmds) == plan.meta["n_circles"]
        assert all(r.init_bits == 128 for r in circle_cmds)

    def test_validation(self):
        with pytest.raises(ValueError):
            EHPP(subset_size=0)
        with pytest.raises(ValueError):
            EHPP(selection_modulus=1)
