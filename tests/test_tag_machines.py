"""Unit tests for the tag-side state machines."""

import numpy as np
import pytest

from repro.hashing.universal import derive_seed, hash_mod, hash_u64
from repro.sim.tag import (
    CPPTagMachine,
    HashTagMachine,
    MICTagMachine,
    TagState,
    TPPTagMachine,
)


def _hash_tag(idx=0, word=12345, epc=999):
    return HashTagMachine(idx, word, epc)


class TestLifecycle:
    def test_reply_then_ack_sleeps(self):
        tag = CPPTagMachine(0, 1, 42)
        reply = tag.on_message({"kind": "cpp_poll", "epc": 42})
        assert reply is not None and reply.tag_index == 0
        assert tag.state is TagState.REPLIED
        tag.acknowledge()
        assert tag.state is TagState.ASLEEP

    def test_asleep_ignores_everything(self):
        tag = CPPTagMachine(0, 1, 42)
        tag.on_message({"kind": "cpp_poll", "epc": 42})
        tag.acknowledge()
        assert tag.on_message({"kind": "cpp_poll", "epc": 42}) is None

    def test_revert_reply_stays_awake(self):
        tag = CPPTagMachine(0, 1, 42)
        tag.on_message({"kind": "cpp_poll", "epc": 42})
        tag.revert_reply()
        assert tag.state is TagState.READY
        assert tag.on_message({"kind": "cpp_poll", "epc": 42}) is not None

    def test_ack_in_wrong_state_raises(self):
        with pytest.raises(RuntimeError):
            CPPTagMachine(0, 1, 42).acknowledge()

    def test_unknown_message_ignored(self):
        assert _hash_tag().on_message({"kind": "mystery"}) is None


class TestCPPTag:
    def test_only_matching_id_replies(self):
        tag = CPPTagMachine(0, 1, 42)
        assert tag.on_message({"kind": "cpp_poll", "epc": 43}) is None
        assert tag.on_message({"kind": "cpp_poll", "epc": 42}) is not None

    def test_select_then_suffix(self):
        epc = (0xAB << 64) | 0x1234
        tag = CPPTagMachine(0, 1, epc, id_bits=96)
        tag.on_message({"kind": "select", "prefix": 0xAB >> 24, "prefix_bits": 8})
        # matching prefix (top 8 bits of 96 = 0x00): epc >> 88 = 0
        tag2 = CPPTagMachine(1, 2, epc)
        tag2.on_message({"kind": "select", "prefix": epc >> 64, "prefix_bits": 32})
        assert tag2.selected
        r = tag2.on_message(
            {"kind": "suffix_poll", "suffix": epc & ((1 << 64) - 1), "suffix_bits": 64}
        )
        assert r is not None

    def test_unselected_tag_silent(self):
        epc = (0xAB << 64) | 0x1234
        tag = CPPTagMachine(0, 1, epc)
        tag.on_message({"kind": "select", "prefix": 0xCD, "prefix_bits": 32})
        assert not tag.selected
        r = tag.on_message(
            {"kind": "suffix_poll", "suffix": epc & ((1 << 64) - 1), "suffix_bits": 64}
        )
        assert r is None


class TestHashTag:
    def test_index_matches_reader_computation(self):
        word = 98765
        tag = _hash_tag(word=word)
        tag.on_message({"kind": "round_init", "h": 8, "seed": 77})
        expected = int(hash_u64(np.array([word], dtype=np.uint64), 77)[0]) & 0xFF
        assert tag._index == expected

    def test_replies_only_to_own_index(self):
        tag = _hash_tag()
        tag.on_message({"kind": "round_init", "h": 6, "seed": 5})
        own = tag._index
        assert tag.on_message({"kind": "poll_index", "index": (own + 1) % 64}) is None
        assert tag.on_message({"kind": "poll_index", "index": own}) is not None

    def test_circle_membership(self):
        word = 555
        tag = _hash_tag(word=word)
        draw = int(hash_mod(np.array([word], dtype=np.uint64), 9, 100)[0])
        tag.on_message({"kind": "circle_cmd", "seed": 9, "f": draw, "F": 100})
        assert tag.in_circle  # boundary inclusive
        tag.on_message({"kind": "circle_cmd", "seed": 9, "f": draw - 1, "F": 100})
        assert not tag.in_circle

    def test_non_member_ignores_scoped_round(self):
        tag = _hash_tag()
        tag.in_circle = False
        tag.on_message({"kind": "round_init", "h": 4, "seed": 1, "global_scope": False})
        assert tag._index is None
        assert tag.on_message({"kind": "poll_index", "index": 0}) is None

    def test_global_scope_overrides_circle(self):
        tag = _hash_tag()
        tag.in_circle = False
        tag.on_message({"kind": "round_init", "h": 4, "seed": 1, "global_scope": True})
        assert tag._index is not None


class TestTPPTag:
    def test_register_update_paper_fig7(self):
        """Replay Fig. 7 against a tag whose index is 011 (tag C)."""
        tag = TPPTagMachine(0, 1, 2)
        tag.on_message({"kind": "round_init", "h": 3, "seed": 0})
        tag._index = 0b011  # force the paper's index for tag C
        assert tag.on_message({"kind": "tpp_segment", "value": 0b000, "length": 3}) is None
        assert tag.on_message({"kind": "tpp_segment", "value": 0b10, "length": 2}) is None
        # Seq[3] = '1' completes 011 -> C replies
        assert tag.on_message({"kind": "tpp_segment", "value": 0b1, "length": 1}) is not None

    def test_full_length_segment_rewrites_register(self):
        tag = TPPTagMachine(0, 1, 2)
        tag.on_message({"kind": "round_init", "h": 4, "seed": 3})
        tag._index = 0b1010
        tag._a = 0b1111  # stale junk
        assert tag.on_message(
            {"kind": "tpp_segment", "value": 0b1010, "length": 4}
        ) is not None

    def test_round_init_resets_register(self):
        tag = TPPTagMachine(0, 1, 2)
        tag.on_message({"kind": "round_init", "h": 3, "seed": 0})
        tag._a = 0b111
        tag.on_message({"kind": "round_init", "h": 3, "seed": 1})
        assert tag._a == 0

    def test_invalid_segment_length(self):
        tag = TPPTagMachine(0, 1, 2)
        tag.on_message({"kind": "round_init", "h": 3, "seed": 0})
        with pytest.raises(ValueError):
            tag.on_message({"kind": "tpp_segment", "value": 0, "length": 4})


class TestMICTag:
    def test_claims_assigned_slot(self):
        word, seed, f, k = 424242, 88, 64, 7
        tag = MICTagMachine(0, word, 1, k=k)
        # find this tag's hash-1 slot and build a vector marking it
        slot = int(
            hash_mod(np.array([word], dtype=np.uint64), derive_seed(seed, 1), f)[0]
        )
        vector = np.zeros(f, dtype=np.int64)
        vector[slot] = 1
        tag.on_message({"kind": "mic_frame", "seed": seed, "vector": vector})
        assert tag._claimed_slot == slot
        assert tag.on_message({"kind": "mic_slot", "slot": slot}) is not None

    def test_no_claim_when_vector_empty(self):
        tag = MICTagMachine(0, 7, 1, k=3)
        vector = np.zeros(32, dtype=np.int64)
        tag.on_message({"kind": "mic_frame", "seed": 1, "vector": vector})
        assert tag._claimed_slot is None
        assert tag.on_message({"kind": "mic_slot", "slot": 0}) is None

    def test_wrong_pass_number_not_claimed(self):
        word, seed, f = 424242, 88, 64
        tag = MICTagMachine(0, word, 1, k=2)
        slot = int(
            hash_mod(np.array([word], dtype=np.uint64), derive_seed(seed, 1), f)[0]
        )
        vector = np.zeros(f, dtype=np.int64)
        vector[slot] = 2  # marked for hash 2, but tag's hash-2 slot differs
        slot2 = int(
            hash_mod(np.array([word], dtype=np.uint64), derive_seed(seed, 2), f)[0]
        )
        if slot2 != slot:  # overwhelmingly likely
            tag.on_message({"kind": "mic_frame", "seed": seed, "vector": vector})
            assert tag._claimed_slot is None
