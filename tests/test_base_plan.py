"""Unit tests for the plan data model (RoundPlan / InterrogationPlan)."""

import numpy as np
import pytest

from repro.core.base import InterrogationPlan, RoundPlan


def _round(tags=(0, 1, 2), bits=(3, 3, 3), **kw):
    return RoundPlan(
        label="r",
        init_bits=kw.pop("init_bits", 32),
        poll_vector_bits=np.array(bits),
        poll_tag_idx=np.array(tags),
        **kw,
    )


class TestRoundPlan:
    def test_reader_bits(self):
        r = _round(bits=(3, 5, 2))
        # init 32 + payload 10 + 3 polls * 4-bit framing
        assert r.reader_bits == 32 + 10 + 12

    def test_vector_bits_excludes_framing(self):
        r = _round(bits=(3, 5, 2))
        assert r.vector_bits == 32 + 10

    def test_wasted_slots_counted(self):
        r = _round(empty_slots=2, collision_slots=3)
        assert r.reader_bits == 32 + 9 + 12 + 5 * 4

    def test_misaligned_arrays_rejected(self):
        with pytest.raises(ValueError):
            RoundPlan("r", 0, np.array([1, 2]), np.array([0]))

    def test_negative_bits_rejected(self):
        with pytest.raises(ValueError):
            RoundPlan("r", 0, np.array([-1]), np.array([0]))

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            _round(empty_slots=-1)


class TestInterrogationPlan:
    def _plan(self, rounds=None, n=3):
        return InterrogationPlan("P", n, rounds if rounds is not None else [_round()])

    def test_aggregates(self):
        plan = self._plan([_round((0, 1), (4, 4)), _round((2,), (2,), init_bits=0)])
        assert plan.n_rounds == 2
        assert plan.n_polls == 3
        assert plan.reader_bits == (32 + 8 + 8) + (0 + 2 + 4)
        assert plan.avg_vector_bits == pytest.approx((32 + 8 + 2) / 3)

    def test_polled_tags_order(self):
        plan = self._plan([_round((2, 0), (1, 1)), _round((1,), (1,), init_bits=0)])
        assert plan.polled_tags().tolist() == [2, 0, 1]

    def test_validate_complete_passes(self):
        self._plan().validate_complete()

    def test_validate_detects_missing(self):
        plan = self._plan([_round((0, 1), (1, 1))], n=3)
        with pytest.raises(ValueError):
            plan.validate_complete()

    def test_validate_detects_duplicates(self):
        plan = self._plan([_round((0, 1, 1), (1, 1, 1))], n=3)
        with pytest.raises(ValueError):
            plan.validate_complete()

    def test_validate_detects_out_of_range(self):
        plan = self._plan([_round((0, 1, 7), (1, 1, 1))], n=3)
        with pytest.raises(ValueError):
            plan.validate_complete()

    def test_empty_plan(self):
        plan = InterrogationPlan("P", 0, [])
        plan.validate_complete()
        assert plan.avg_vector_bits == 0.0
        assert plan.polled_tags().size == 0
