"""Unit + statistical tests for the MIC baseline.

Decode-rule soundness sketch (verified empirically below): the reader
records, per useful slot, the pass number ``j`` at which the greedy
assignment happened.  ``vector[s] == j`` therefore certifies "at pass
``j`` slot ``s`` was free and exactly one then-unassigned tag hashed to
it".  If any tag ``t`` (assigned later, or never) had ``H_j(t) == s``
while still unassigned at pass ``j``, there would have been two
candidates and the slot would not have been marked — so the first
ascending match each tag finds is precisely its own assignment, and
unresolved tags find none.
"""

import numpy as np
import pytest

from repro.analysis.mic_model import (
    expected_total_slots_per_tag,
    indicator_bits_per_slot,
    tag_resolution_fraction,
    useful_slot_fraction,
    wasted_slot_fraction,
)
from repro.baselines.mic import MIC
from repro.workloads.tagsets import uniform_tagset


class TestAssignment:
    def test_everyone_polled_once(self, medium_tags, rng):
        MIC().plan(medium_tags, rng).validate_complete()

    def test_assignment_slots_unique(self, medium_tags, rng):
        plan = MIC().plan(medium_tags, rng)
        for r in plan.rounds:
            slots = r.extra["assigned_slots"]
            assert np.unique(slots).size == slots.size

    def test_useful_fraction_matches_mic_paper(self):
        # "wasted slots drop from 63.2% to 13.9%" at k = 7, load 1
        rng = np.random.default_rng(2)
        tags = uniform_tagset(20_000, rng)
        plan = MIC(k=7).plan(tags, rng)
        first = plan.rounds[0]
        frac = first.extra["useful_slots"] / first.extra["frame_size"]
        assert frac == pytest.approx(0.861, abs=0.01)

    def test_k1_is_plain_aloha_hashing(self):
        rng = np.random.default_rng(3)
        tags = uniform_tagset(20_000, rng)
        plan = MIC(k=1).plan(tags, rng)
        first = plan.rounds[0]
        frac = first.extra["useful_slots"] / first.extra["frame_size"]
        assert frac == pytest.approx(np.exp(-1), abs=0.01)  # 36.8%

    def test_more_hashes_fewer_frames(self, rng):
        tags = uniform_tagset(5000, rng)
        n1 = MIC(k=1).plan(tags, np.random.default_rng(0)).n_rounds
        n7 = MIC(k=7).plan(tags, np.random.default_rng(0)).n_rounds
        assert n7 < n1


class TestDecoding:
    def test_tag_side_decode_agrees_with_reader(self, rng):
        """Every assigned tag claims exactly its slot; unresolved claim none."""
        tags = uniform_tagset(800, rng)
        mic = MIC(k=7)
        active = np.arange(800, dtype=np.int64)
        seed, f = 1234, 800
        slots, owners, passes, deferred = mic.assign_frame(
            tags.id_words, active, seed, f
        )
        vector = mic.indicator_vector(slots, passes, f)
        for slot, owner in zip(slots.tolist(), owners.tolist()):
            assert mic.decode_vector(tags.id_words, owner, vector, seed) == slot
        for tag in deferred.tolist():
            assert mic.decode_vector(tags.id_words, tag, vector, seed) == -1

    def test_indicator_vector_validation(self):
        mic = MIC(k=3)
        with pytest.raises(ValueError):
            mic.indicator_vector(np.array([0]), np.array([4]), 4)  # pass > k
        with pytest.raises(ValueError):
            mic.indicator_vector(np.array([0, 1]), np.array([1]), 4)

    def test_indicator_bits(self):
        assert MIC(k=7).indicator_bits_per_slot == 3
        assert MIC(k=1).indicator_bits_per_slot == 1
        assert MIC(k=8).indicator_bits_per_slot == 4


class TestCosting:
    def test_uniform_slot_convention(self, rng):
        tags = uniform_tagset(500, rng)
        plan = MIC(uniform_slot_cost=True).plan(tags, np.random.default_rng(1))
        assert all(r.empty_slots == 0 for r in plan.rounds)
        assert plan.wasted_slots > 0

    def test_short_empty_convention(self, rng):
        tags = uniform_tagset(500, rng)
        plan = MIC(uniform_slot_cost=False).plan(tags, np.random.default_rng(1))
        assert all(r.collision_slots == 0 for r in plan.rounds)

    def test_vector_bits_charged_in_init(self, rng):
        tags = uniform_tagset(300, rng)
        plan = MIC(k=7, frame_init_bits=32).plan(tags, rng)
        first = plan.rounds[0]
        assert first.init_bits == 32 + first.extra["frame_size"] * 3

    def test_validation(self):
        with pytest.raises(ValueError):
            MIC(k=0)
        with pytest.raises(ValueError):
            MIC(load=0)
        with pytest.raises(ValueError):
            MIC(frame_init_bits=-1)


class TestAnalyticModel:
    def test_matches_simulation(self):
        rng = np.random.default_rng(5)
        tags = uniform_tagset(30_000, rng)
        for k in (1, 3, 7):
            plan = MIC(k=k).plan(tags, np.random.default_rng(k))
            first = plan.rounds[0]
            sim = first.extra["useful_slots"] / first.extra["frame_size"]
            assert useful_slot_fraction(k) == pytest.approx(sim, abs=0.012)

    def test_published_waste_numbers(self):
        assert wasted_slot_fraction(1) == pytest.approx(0.632, abs=0.002)
        assert wasted_slot_fraction(7) == pytest.approx(0.139, abs=0.002)

    def test_resolution_equals_useful_at_load_one(self):
        assert tag_resolution_fraction(5, 1.0) == useful_slot_fraction(5, 1.0)

    def test_slots_per_tag(self):
        assert expected_total_slots_per_tag(7) == pytest.approx(1.162, abs=0.002)

    def test_indicator_bits_formula(self):
        assert indicator_bits_per_slot(7) == 3
        assert indicator_bits_per_slot(15) == 4
        with pytest.raises(ValueError):
            indicator_bits_per_slot(0)


class TestDecodingProperty:
    from hypothesis import given, settings, strategies as st

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(2, 300),
        k=st.integers(1, 8),
        seed=st.integers(0, 2**31),
        load=st.sampled_from([0.5, 1.0, 2.0]),
    )
    def test_decode_sound_for_any_frame(self, n, k, seed, load):
        """For random frames: every assigned tag claims exactly its slot,

        every deferred tag claims nothing — the decode-rule soundness
        argument, exercised adversarially."""
        rng = np.random.default_rng(seed)
        tags = uniform_tagset(n, rng)
        mic = MIC(k=k, load=load)
        f = max(int(round(n / load)), 2)
        slots, owners, passes, deferred = mic.assign_frame(
            tags.id_words, np.arange(n), seed, f
        )
        vector = mic.indicator_vector(slots, passes, f)
        claimed = {}
        for slot, owner in zip(slots.tolist(), owners.tolist()):
            claimed[owner] = mic.decode_vector(tags.id_words, owner, vector, seed)
        assert claimed == dict(zip(owners.tolist(), slots.tolist()))
        for tag in deferred.tolist():
            assert mic.decode_vector(tags.id_words, tag, vector, seed) == -1
