"""Tests for the experiment harness (reduced-scale shape checks)."""

import numpy as np
import pytest

from repro.experiments import (
    ablate_ecpp_clustering,
    ablate_ehpp_subset_size,
    ablate_mic_hash_count,
    ablate_tpp_index_policy,
    fig1,
    fig3,
    fig4,
    fig5,
    fig8,
    fig9,
    fig10,
    table1,
)


class TestFigures:
    def test_fig1_linear_in_w(self):
        r = fig1()
        x, y = r.series_by_label("exec_time_ms").as_arrays()
        assert np.allclose(np.diff(y), 37.45e-3)
        assert y[0] == pytest.approx((37.45 * 4 + 175) / 1e3)

    def test_fig3_growth_and_bound(self):
        r = fig3(n_values=(1_000, 10_000, 100_000))
        w = r.series_by_label("HPP_w").y
        bound = r.series_by_label("upper_bound_log2n").y
        assert w == sorted(w)
        assert all(a <= b for a, b in zip(w, bound))

    def test_fig4_optimal_sandwiched(self):
        r = fig4(lc_values=(100, 200, 400))
        lo = r.series_by_label("lower_bound").y
        hi = r.series_by_label("upper_bound").y
        opt = r.series_by_label("optimal").y
        assert all(a <= o <= b for a, o, b in zip(lo, opt, hi))
        assert opt == sorted(opt)  # bigger l_c, bigger n*

    def test_fig5_flat_and_ordered_by_lc(self):
        r = fig5(n_values=(20_000, 60_000, 100_000))
        series = {s.label: s.y for s in r.series}
        for ys in series.values():
            assert max(ys) - min(ys) < 0.2  # flat in n
        at_last = [series[f"l_c={lc}"][-1] for lc in (100, 200, 400)]
        assert at_last == sorted(at_last)

    def test_fig8_peak(self):
        r = fig8()
        x, y = r.series_by_label("mu").as_arrays()
        peak = x[np.argmax(y)]
        assert peak == pytest.approx(1.0, abs=0.05)
        assert y.max() == pytest.approx(np.exp(-1), abs=1e-3)

    def test_fig9_level(self):
        r = fig9(n_values=(1_000, 50_000, 100_000))
        for y in r.series_by_label("TPP_w_worst_case").y:
            assert y == pytest.approx(3.38, abs=0.08)

    def test_fig10_shapes(self):
        r = fig10(n_values=(2_000, 20_000), n_runs=3, seed=1)
        hpp = r.series_by_label("HPP").y
        ehpp = r.series_by_label("EHPP").y
        tpp = r.series_by_label("TPP").y
        assert hpp[1] > hpp[0]  # HPP grows with n
        assert abs(ehpp[1] - ehpp[0]) < 0.5  # EHPP flat
        assert abs(tpp[1] - tpp[0]) < 0.3  # TPP flat
        assert tpp[-1] < ehpp[-1] < hpp[-1]

    def test_render_smoke(self):
        text = fig8().render()
        assert "fig8" in text and "mu" in text


class TestRenderGridAlignment:
    """`render` must align series by x value, not by series[0] position."""

    def test_mismatched_grids_align_by_x(self):
        from repro.experiments.common import ExperimentResult, Series

        r = ExperimentResult(
            name="mixed",
            title="series on different x grids",
            series=[
                Series("coarse", [10.0, 30.0], [1.0, 3.0]),
                Series("fine", [10.0, 20.0, 30.0], [1.5, 2.5, 3.5]),
            ],
        )
        lines = r.render(y_fmt="{:.1f}").splitlines()
        rows = {line.split("\t")[0]: line.split("\t")[1:] for line in lines[2:]}
        # x=20 exists only in the fine series: coarse renders "-" there,
        # and the fine series' y values stay attached to their own x
        assert rows["20"] == ["-", "2.5"]
        assert rows["10"] == ["1.0", "1.5"]
        assert rows["30"] == ["3.0", "3.5"]

    def test_shorter_first_series_does_not_hide_rows(self):
        from repro.experiments.common import ExperimentResult, Series

        r = ExperimentResult(
            name="mixed",
            title="first series shorter than the second",
            series=[
                Series("short", [1.0], [10.0]),
                Series("long", [1.0, 2.0], [10.0, 20.0]),
            ],
        )
        lines = r.render(y_fmt="{:.0f}").splitlines()
        # the old renderer iterated series[0].x and dropped x=2 entirely
        assert any(line.startswith("2\t") for line in lines)

    def test_x_y_length_mismatch_raises(self):
        from repro.experiments.common import ExperimentResult, Series

        r = ExperimentResult(
            name="bad",
            title="ragged series",
            series=[Series("s", [1.0, 2.0], [1.0])],
        )
        with pytest.raises(ValueError, match="x values"):
            r.render()


class TestTables:
    def test_table1_reduced_matches_paper_ordering(self):
        t = table1(n_values=(1_000,), n_runs=3, seed=2)
        row = {k: v[0] for k, v in t.seconds.items()}
        assert (
            row["LowerBound"]
            < row["TPP"]
            < row["MIC, k=7"]
            < row["EHPP"]
            < row["HPP"]
            < row["CPP"]
        )

    def test_table_cell_access(self):
        t = table1(n_values=(500, 1_000), n_runs=2, seed=3)
        assert t.cell("CPP", 1_000) == pytest.approx(2 * t.cell("CPP", 500), rel=0.01)
        assert "Table I" in t.render()


class TestAblations:
    def test_tpp_policy_eq15_wins(self):
        r = ablate_tpp_index_policy(n=4_000, n_runs=5)
        values = {s.label: s.y[0] for s in r.series}
        best = min(values.values())
        assert values["eq15 (λ≈ln2)"] == pytest.approx(best, rel=0.02)

    def test_ehpp_subset_sweep_dips_in_bracket(self):
        r = ablate_ehpp_subset_size(n=4_000, n_runs=3,
                                    subset_sizes=(30, 90, 160, 600, 1500))
        xs, ys = r.series_by_label("EHPP").as_arrays()
        # extremes are worse than the mid-range (convex-ish dip)
        mid_best = ys[1:4].min()
        assert ys[0] > mid_best and ys[-1] > mid_best

    def test_mic_k_monotone(self):
        r = ablate_mic_hash_count(n=4_000, n_runs=3, ks=(1, 3, 7))
        waste = r.series_by_label("wasted_slot_frac").y
        times = r.series_by_label("time_s").y
        assert waste == sorted(waste, reverse=True)
        assert times == sorted(times, reverse=True)
        assert waste[0] == pytest.approx(0.632, abs=0.03)
        assert waste[-1] == pytest.approx(0.139, abs=0.03)

    def test_ecpp_needs_clustering(self):
        r = ablate_ecpp_clustering(n=1_000, n_runs=3,
                                   n_categories=(1, 8, 1024))
        ys = r.series_by_label("eCPP_clustered").y
        assert ys == sorted(ys)  # more categories -> less benefit
        assert ys[0] >= 64.0  # paper: >= 64 bits even in the best case
        assert r.notes["eCPP_on_uniform_ids"] > r.notes["CPP"]
