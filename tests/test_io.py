"""Tests for JSON serialisation of plans and results."""

import numpy as np
import pytest

from repro.core.hpp import HPP
from repro.core.tpp import TPP
from repro.baselines.mic import MIC
from repro.experiments import fig8
from repro.io import (
    load_plan,
    load_result,
    plan_from_dict,
    plan_to_dict,
    result_from_dict,
    result_to_dict,
    save_plan,
    save_result,
)
from repro.phy.link import plan_wire_time
from repro.sim.executor import execute_plan
from repro.workloads.tagsets import uniform_tagset


@pytest.fixture
def tags():
    return uniform_tagset(120, np.random.default_rng(1))


class TestPlanRoundtrip:
    @pytest.mark.parametrize("proto_cls", [HPP, TPP, MIC])
    def test_metrics_preserved(self, tags, proto_cls):
        plan = proto_cls().plan(tags, np.random.default_rng(2))
        clone = plan_from_dict(plan_to_dict(plan))
        assert clone.protocol == plan.protocol
        assert clone.n_rounds == plan.n_rounds
        assert clone.reader_bits == plan.reader_bits
        assert clone.avg_vector_bits == plan.avg_vector_bits
        assert plan_wire_time(clone, 8) == pytest.approx(plan_wire_time(plan, 8))
        assert np.array_equal(clone.polled_tags(), plan.polled_tags())

    @pytest.mark.parametrize("proto_cls", [HPP, TPP, MIC])
    def test_reloaded_plan_is_executable(self, tags, proto_cls, tmp_path):
        """The archived schedule can be replayed against live tags."""
        plan = proto_cls().plan(tags, np.random.default_rng(3))
        path = save_plan(plan, tmp_path / "plan.json")
        clone = load_plan(path)
        result = execute_plan(clone, tags, info_bits=4)
        assert result.all_read
        assert result.time_us == pytest.approx(plan_wire_time(plan, 4), rel=1e-9)

    def test_json_is_plain_data(self, tags, tmp_path):
        import json

        plan = HPP().plan(tags, np.random.default_rng(4))
        text = save_plan(plan, tmp_path / "p.json").read_text()
        json.loads(text)  # valid JSON, no numpy leakage

    def test_unserialisable_extra_rejected(self, tags):
        plan = HPP().plan(tags, np.random.default_rng(5))
        plan.rounds[0].extra["bad"] = object()
        with pytest.raises(TypeError):
            plan_to_dict(plan)


class TestResultRoundtrip:
    def test_fig8_roundtrip(self, tmp_path):
        result = fig8(points=20)
        clone = load_result(save_result(result, tmp_path / "r.json"))
        assert clone.name == result.name
        assert clone.series_by_label("mu").y == result.series_by_label("mu").y
        assert clone.notes["peak_lambda"] == 1.0

    def test_dict_roundtrip_pure(self):
        result = fig8(points=5)
        assert result_to_dict(result_from_dict(result_to_dict(result))) == (
            result_to_dict(result)
        )


class TestMorePlanRoundtrips:
    def test_ehpp_plan_with_circles_roundtrips(self, tags, tmp_path):
        from repro.core.ehpp import EHPP

        plan = EHPP(subset_size=40).plan(tags, np.random.default_rng(6))
        clone = load_plan(save_plan(plan, tmp_path / "ehpp.json"))
        result = execute_plan(clone, tags, info_bits=2)
        assert result.all_read
        assert result.time_us == pytest.approx(plan_wire_time(plan, 2), rel=1e-9)

    def test_ecpp_plan_roundtrips(self, tmp_path):
        from repro.core.cpp import EnhancedCPP
        from repro.workloads.tagsets import clustered_tagset

        ctags = clustered_tagset(90, np.random.default_rng(7), n_categories=3)
        plan = EnhancedCPP().plan(ctags, np.random.default_rng(8))
        clone = load_plan(save_plan(plan, tmp_path / "ecpp.json"))
        result = execute_plan(clone, ctags, info_bits=2)
        assert result.all_read
        assert clone.meta["category_bits"] == 32
