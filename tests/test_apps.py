"""Tests for the application layer (collection, missing-tag)."""

import numpy as np
import pytest

from repro.apps.information_collection import collect_information, compare_protocols
from repro.apps.missing_tag import detect_missing_tags
from repro.core.cpp import CPP
from repro.core.hpp import HPP
from repro.core.tpp import TPP
from repro.phy.channel import BitErrorChannel
from repro.workloads.scenarios import (
    cold_chain_scenario,
    theft_watch_scenario,
    warehouse_scenario,
)
from repro.workloads.tagsets import uniform_tagset


class TestCollection:
    def test_report_fields(self, rng):
        tags = uniform_tagset(300, rng)
        rep = collect_information(TPP(), tags, info_bits=16, n_runs=5)
        assert rep.protocol == "TPP"
        assert rep.n_tags == 300
        assert rep.mean_time_us > rep.lower_bound_us
        assert rep.ratio_to_lower_bound > 1.0
        assert rep.mean_time_s == pytest.approx(rep.mean_time_us / 1e6)
        assert rep.collected is None

    def test_des_mode_collects_ground_truth(self, rng):
        tags = uniform_tagset(120, rng)
        payloads = np.arange(120, dtype=np.int64)
        rep = collect_information(
            HPP(), tags, info_bits=8, use_des=True, payloads=payloads
        )
        assert rep.collected == {i: i for i in range(120)}
        assert rep.n_runs == 1

    def test_variance_across_runs(self, rng):
        tags = uniform_tagset(400, rng)
        rep = collect_information(HPP(), tags, info_bits=1, n_runs=8)
        assert rep.std_time_us > 0  # hash draws differ per run

    def test_cpp_deterministic_time(self, rng):
        tags = uniform_tagset(100, rng)
        rep = collect_information(CPP(), tags, info_bits=1, n_runs=4)
        assert rep.std_time_us == pytest.approx(0.0)
        assert rep.mean_time_us == pytest.approx(100 * 3770.2)

    def test_compare_orders_protocols(self, rng):
        tags = uniform_tagset(500, rng)
        reports = compare_protocols([CPP(), HPP(), TPP()], tags, info_bits=1, n_runs=3)
        times = {r.protocol: r.mean_time_us for r in reports}
        assert times["TPP"] < times["HPP"] < times["CPP"]

    def test_validation(self, rng):
        tags = uniform_tagset(10, rng)
        with pytest.raises(ValueError):
            collect_information(TPP(), tags, info_bits=-1)
        with pytest.raises(ValueError):
            collect_information(TPP(), tags, info_bits=1, n_runs=0)


class TestMissingTagApp:
    def test_exact_detection(self):
        scenario = theft_watch_scenario(n=300, missing_fraction=0.05, seed=4)
        report = detect_missing_tags(HPP(), scenario, seed=1)
        assert report.exact
        assert report.detected_missing == scenario.missing.tolist()
        assert report.n_known == 300
        assert report.time_s > 0

    def test_no_theft(self):
        scenario = theft_watch_scenario(n=100, missing_fraction=0.0, seed=5)
        report = detect_missing_tags(TPP(), scenario, seed=1)
        assert report.exact
        assert report.detected_missing == []

    def test_lossy_channel_with_retries(self):
        scenario = theft_watch_scenario(n=200, missing_fraction=0.03, seed=6)
        report = detect_missing_tags(
            HPP(), scenario, seed=2, channel=BitErrorChannel(0.001),
            missing_attempts=6,
        )
        assert report.false_negatives == []  # can never miss a real theft
        assert report.false_positives == []  # 6 attempts -> vanishing FP rate


class TestScenarios:
    def test_warehouse(self):
        s = warehouse_scenario(n=500)
        assert s.n_known == s.n_present == 500
        assert s.info_bits == 1
        assert s.missing.size == 0

    def test_cold_chain_payloads(self, rng):
        s = cold_chain_scenario(n=100, info_bits=16)
        p = s.payloads(rng)
        assert p.shape == (100,)
        assert p.max() < (1 << 16)

    def test_theft_watch_consistency(self):
        s = theft_watch_scenario(n=200, missing_fraction=0.1, seed=1)
        assert s.n_present == 180
        assert s.missing.size == 20
        assert np.intersect1d(s.present, s.missing).size == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            theft_watch_scenario(missing_fraction=1.5)
