#!/usr/bin/env python3
"""Multi-reader deployment: schedule six readers over one floor.

The paper's protocols are single-reader but extend directly once a
collision-free schedule among readers exists (§II-A). This example
builds a 2×3 reader grid whose interrogation zones overlap, colours the
interference graph, assigns tags to readers, and runs TPP concurrently
within each colour class — cutting the sweep time well below a single
reader's.

Run:  python examples/multi_reader_warehouse.py
"""

import numpy as np

from repro import TPP, CPP, uniform_tagset
from repro.apps.multi_reader import grid_deployment, simulate_deployment

N_TAGS = 6_000


def main() -> None:
    rng = np.random.default_rng(31)
    deployment = grid_deployment(N_TAGS, rng, rows=2, cols=3,
                                 spacing_m=8.0, range_m=6.0)
    tags = uniform_tagset(N_TAGS, rng)

    g = deployment.interference_graph()
    print(f"{len(deployment.readers)} readers, {N_TAGS:,} tags; "
          f"interference graph has {g.number_of_edges()} overlapping pairs")

    for proto in (TPP(), CPP()):
        result = simulate_deployment(proto, deployment, tags, info_bits=1, seed=5)
        print(f"\n{result.protocol}: schedule uses {result.n_colors} colour "
              f"classes {result.schedule}")
        for rid in sorted(result.per_reader_time_us):
            print(f"  reader {rid}: {result.per_reader_tags[rid]:>5} tags, "
                  f"{result.per_reader_time_us[rid] / 1e6:6.2f}s")
        print(f"  scheduled total: {result.total_time_us / 1e6:6.2f}s "
              f"(single reader: {result.single_reader_time_us / 1e6:6.2f}s, "
              f"speed-up {result.speedup:.2f}x)")


if __name__ == "__main__":
    main()
