#!/usr/bin/env python3
"""Warehouse inventory: presence polling over per-SKU clustered EPCs.

Items of the same SKU share a 32-bit category prefix, so this example
also shows the *enhanced CPP* of the paper's §II-B: masking the shared
prefix helps conventional polling (96 → ~64+ bits per poll) but is still
an order of magnitude behind the hash-index protocols, whose cost does
not depend on the ID distribution at all.

Run:  python examples/warehouse_inventory.py
"""

import numpy as np

from repro import (
    CPP,
    EHPP,
    HPP,
    TPP,
    EnhancedCPP,
    collect_information,
    warehouse_scenario,
)


def main() -> None:
    scenario = warehouse_scenario(n=5_000, seed=3)
    tags = scenario.tags
    shared = tags.category_prefix_bits()
    print(f"Scenario: {scenario.description}")
    print(f"{scenario.n_known:,} tags, globally shared ID prefix: {shared} bits\n")

    protocols = [
        CPP(),
        EnhancedCPP(category_bits=32),
        HPP(),
        EHPP(),
        TPP(),
    ]
    print(f"{'protocol':<8} {'vector bits':>12} {'air time':>10}")
    results = {}
    for proto in protocols:
        rep = collect_information(proto, tags, scenario.info_bits, n_runs=5, seed=1)
        results[rep.protocol] = rep
        print(f"{rep.protocol:<8} {rep.mean_vector_bits:>12.2f} "
              f"{rep.mean_time_s:>9.2f}s")

    ecpp, tpp = results["eCPP"], results["TPP"]
    print(
        f"\nPrefix masking saves CPP "
        f"{results['CPP'].mean_time_s - ecpp.mean_time_s:.1f}s, but TPP is "
        f"still {ecpp.mean_time_s / tpp.mean_time_s:.1f}x faster — and would "
        "be unaffected if the SKU structure disappeared."
    )


if __name__ == "__main__":
    main()
