#!/usr/bin/env python3
"""Quickstart: poll 10,000 tags with every protocol and compare.

Reproduces the headline comparison of the paper (Table I, n = 10⁴,
1-bit information): TPP collects from ten thousand tags in ~4.4 s of
air time versus ~37.7 s for conventional 96-bit-ID polling.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    CPP,
    EHPP,
    HPP,
    MIC,
    TPP,
    CodedPolling,
    collect_information,
    lower_bound_us,
    uniform_tagset,
)

N_TAGS = 10_000
INFO_BITS = 1


def main() -> None:
    tags = uniform_tagset(N_TAGS, np.random.default_rng(7))
    protocols = [CPP(), CodedPolling(), HPP(), EHPP(), MIC(), TPP()]

    print(f"Collecting {INFO_BITS}-bit information from {N_TAGS:,} tags "
          f"(C1G2 timing, 10 runs each)\n")
    print(f"{'protocol':<8} {'vector bits':>12} {'rounds':>8} "
          f"{'air time':>10} {'vs lower bound':>15}")
    lb_s = lower_bound_us(N_TAGS, INFO_BITS) / 1e6
    for proto in protocols:
        rep = collect_information(proto, tags, INFO_BITS, n_runs=10, seed=0)
        print(
            f"{rep.protocol:<8} {rep.mean_vector_bits:>12.2f} "
            f"{rep.mean_rounds:>8.1f} {rep.mean_time_s:>9.2f}s "
            f"{rep.ratio_to_lower_bound:>14.2f}x"
        )
    print(f"{'(bound)':<8} {'-':>12} {'-':>8} {lb_s:>9.2f}s {'1.00x':>15}")

    print(
        "\nTPP's polling vector is ~3 bits — about 31x shorter than the "
        "96-bit tag IDs\nconventional polling broadcasts, and every slot "
        "carries a useful reply."
    )


if __name__ == "__main__":
    main()
