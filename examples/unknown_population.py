#!/usr/bin/env python3
"""Full pipeline over an unknown population: estimate → identify → collect.

The paper's protocols assume the reader knows every tag ID (§II-A).
This example shows how a deployment *gets* there, end to end:

1. **Estimate** the cardinality with anonymous 1-bit frames (zero-slot
   estimator) — no IDs exchanged, just slot statistics.
2. **Identify** the tags once with DFSA sized by the estimate — each
   singleton slot yields one 96-bit EPC (the one-time expensive step).
3. **Collect** sensor data repeatedly with TPP over the now-known
   population — the regime where fast polling pays off every cycle.

The printout compares the one-time identification cost against the
recurring collection cost, which is the paper's economic argument:
inventories are read once, polled forever.

Run:  python examples/unknown_population.py
"""

import numpy as np

from repro import DFSA, TPP, plan_wire_time, uniform_tagset
from repro.baselines.estimation import estimate_cardinality

N_TRUE = 4_000  # hidden ground truth
INFO_BITS = 16
COLLECTION_CYCLES = 24  # e.g. hourly sensor sweeps for a day


def main() -> None:
    rng = np.random.default_rng(77)

    # 1. estimation: anonymous frames only
    n_hat = estimate_cardinality(N_TRUE, rng, method="zero", n_rounds=16)
    print(f"1. estimated population: {n_hat:,.0f} "
          f"(truth: {N_TRUE:,}, error {abs(n_hat - N_TRUE) / N_TRUE:.1%})")

    # 2. one-time identification: DFSA frames sized by the estimate;
    #    every singleton reply carries the 96-bit EPC
    tags = uniform_tagset(N_TRUE, rng)
    dfsa_plan = DFSA(load=1.0).plan(tags, rng)
    identify_s = plan_wire_time(dfsa_plan, 96) / 1e6
    print(f"2. DFSA identification: {dfsa_plan.n_rounds} frames, "
          f"{dfsa_plan.wasted_slots:,} wasted slots, {identify_s:.2f}s "
          "(each tag backscatters its 96-bit EPC once)")

    # 3. recurring collection with the paper's best protocol
    tpp_s = plan_wire_time(TPP().plan(tags, rng), INFO_BITS) / 1e6
    naive_s = plan_wire_time(DFSA().plan(tags, rng), INFO_BITS) / 1e6
    print(f"3. one TPP collection sweep ({INFO_BITS}-bit): {tpp_s:.2f}s "
          f"(DFSA would need {naive_s:.2f}s per sweep)")

    total_tpp = identify_s + COLLECTION_CYCLES * tpp_s
    total_dfsa = COLLECTION_CYCLES * naive_s
    print(
        f"\nOver {COLLECTION_CYCLES} sweeps: identify-once + TPP = "
        f"{total_tpp:.1f}s vs pure DFSA = {total_dfsa:.1f}s "
        f"({total_dfsa / total_tpp:.2f}x more air time)"
    )


if __name__ == "__main__":
    main()
