#!/usr/bin/env python3
"""Cold-chain monitoring: collect 16-bit temperature words, verified.

Sensor-augmented tags (the paper's §I motivation) each hold a
temperature reading.  This example runs TPP through the **discrete-event
simulator** — real tag state machines answer real polls — and checks the
collected readings bit-for-bit against ground truth, then flags every
crate whose reading breaches the cold-chain threshold.

Run:  python examples/cold_chain_monitoring.py
"""

import numpy as np

from repro import MIC, TPP, cold_chain_scenario, collect_information

THRESHOLD_C = 8.0


def to_celsius(word: int) -> float:
    """Decode a 16-bit sensor word as fixed-point Celsius in [-40, 87.96]."""
    return word / 512.0 - 40.0


def main() -> None:
    scenario = cold_chain_scenario(n=2_000, seed=42, info_bits=16)
    rng = np.random.default_rng(42)
    # ground truth: mostly cold, a few crates warming up
    readings_c = rng.normal(4.0, 1.5, size=scenario.n_known)
    warm = rng.choice(scenario.n_known, size=12, replace=False)
    readings_c[warm] += rng.uniform(5.0, 10.0, size=12)
    payloads = np.round((readings_c + 40.0) * 512).astype(np.int64)

    print(f"Scenario: {scenario.description} ({scenario.n_known:,} crates)")
    for proto in (TPP(), MIC()):
        rep = collect_information(
            proto,
            scenario.tags,
            info_bits=16,
            use_des=True,
            payloads=payloads,
            seed=7,
        )
        assert rep.collected is not None and len(rep.collected) == scenario.n_known
        # verify against ground truth, crate by crate
        mismatches = [
            i for i, v in rep.collected.items() if v != int(payloads[i])
        ]
        alarms = sorted(
            i for i, v in rep.collected.items() if to_celsius(v) > THRESHOLD_C
        )
        print(
            f"  {rep.protocol:<4} collected in {rep.mean_time_s:6.2f}s air time "
            f"({rep.ratio_to_lower_bound:.2f}x bound), "
            f"{len(mismatches)} mismatches, {len(alarms)} alarms"
        )
        assert not mismatches, "collected values must equal ground truth"
        assert set(alarms) == set(
            i for i in range(scenario.n_known) if to_celsius(int(payloads[i])) > THRESHOLD_C
        )
    print(f"\nAll readings verified; crates above {THRESHOLD_C:.0f} °C flagged.")


if __name__ == "__main__":
    main()
