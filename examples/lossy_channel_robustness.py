#!/usr/bin/env python3
"""Robustness extension: polling under bit errors.

The paper assumes an error-free channel. This example exercises the
library's retransmission extension: each protocol is executed in the
discrete-event simulator over channels of increasing bit-error rate;
escalating retries (re-poll → re-send round init → re-send circle
command) guarantee every tag is still read, at a measurable time cost.

TPP gets a dedicated recovery message — a full-length tree segment that
rewrites the whole tag register — because a lost segment desynchronises
the shared register state that the tree encoding relies on.

Run:  python examples/lossy_channel_robustness.py
"""

import numpy as np

from repro import CPP, EHPP, HPP, TPP, BitErrorChannel, simulate, uniform_tagset

N = 1_000
BERS = (0.0, 0.0005, 0.002, 0.005)


def main() -> None:
    tags = uniform_tagset(N, np.random.default_rng(13))
    print(f"Collecting 16-bit info from {N:,} tags over lossy channels\n")
    header = f"{'BER':>8} | " + " | ".join(
        f"{name:>18}" for name in ("CPP", "HPP", "EHPP", "TPP")
    )
    print(header)
    print("-" * len(header))
    for ber in BERS:
        channel = None if ber == 0.0 else BitErrorChannel(ber)
        cells = []
        for proto in (CPP(), HPP(), EHPP(), TPP()):
            result = simulate(
                proto, tags, info_bits=16, seed=3, channel=channel,
                keep_trace=False,
            )
            assert result.all_read, "retransmission must recover every tag"
            cells.append(
                f"{result.time_us / 1e6:6.2f}s /{result.n_retries:4d} rtx"
            )
        print(f"{ber:>8.4f} | " + " | ".join(f"{c:>18}" for c in cells))

    print(
        "\nEvery run reads all tags. CPP retries are the most expensive "
        "(each re-poll re-broadcasts a 96-bit ID); the hash protocols "
        "recover with a few cheap index or segment re-sends."
    )


if __name__ == "__main__":
    main()
