#!/usr/bin/env python3
"""Theft watch: identify exactly which tags are missing, deterministically.

Polling's advantage for missing-tag identification (paper §I): because
every poll maps one-to-one to a known tag, a silent poll *identifies*
the missing tag with certainty — no probabilistic detection. This
example removes 2% of a 3,000-tag population, sweeps the field with
HPP and TPP, and recovers the exact stolen set; it then repeats the
sweep on a noisy channel where the retransmission extension keeps the
false-positive rate at zero.

Run:  python examples/missing_tag_watch.py
"""

from repro import (
    HPP,
    TPP,
    BitErrorChannel,
    detect_missing_tags,
    theft_watch_scenario,
)


def main() -> None:
    scenario = theft_watch_scenario(n=3_000, missing_fraction=0.02, seed=23)
    print(f"Scenario: {scenario.description}\n")

    for proto in (HPP(), TPP()):
        report = detect_missing_tags(proto, scenario, seed=5)
        assert report.exact
        print(
            f"{report.protocol:<4} ideal channel : found all "
            f"{len(report.detected_missing)} missing tags in "
            f"{report.time_s:.2f}s — exact"
        )

    # noisy channel: each poll may be lost; 5 silent attempts before a
    # tag is declared missing bounds P[false alarm] <= p_loss^5
    report = detect_missing_tags(
        HPP(),
        scenario,
        seed=5,
        channel=BitErrorChannel(0.002),
        missing_attempts=5,
    )
    print(
        f"\nHPP  BER=0.2%     : {len(report.detected_missing)} flagged, "
        f"{len(report.false_positives)} false alarms, "
        f"{len(report.false_negatives)} misses, "
        f"{report.n_retries} retransmissions, {report.time_s:.2f}s"
    )
    assert report.false_negatives == []  # a stolen tag can never answer
    first = report.detected_missing[:6]
    print(f"First flagged tag indices: {first} ...")


if __name__ == "__main__":
    main()
