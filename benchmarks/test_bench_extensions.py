"""Benchmarks for the extension experiments (beyond the paper)."""

import pytest

from repro.experiments import ext_energy, ext_lossy_channel, ext_multi_reader


def test_ext_lossy_channel(benchmark):
    r = benchmark(lambda: ext_lossy_channel(n=300, bers=(0.0, 0.002),
                                            n_runs=1))
    clean = r.series_by_label("TPP_time_s").y[0]
    lossy = r.series_by_label("TPP_time_s").y[-1]
    assert lossy > clean
    assert r.series_by_label("TPP_retries").y[-1] > 0


def test_ext_energy(benchmark):
    r = benchmark(lambda: ext_energy(n=3_000, n_runs=2))
    labels = r.notes["protocols"]
    reader = dict(zip(labels, r.series_by_label("reader_mj").y))
    listen = dict(zip(labels, r.series_by_label("tag_listen_mj").y))
    # shorter interrogations save energy on both sides
    assert reader["TPP"] < reader["CPP"]
    assert listen["TPP"] < listen["CPP"]


def test_ext_multi_reader(benchmark):
    r = benchmark(lambda: ext_multi_reader(n=1_000,
                                           grids=((1, 1), (2, 2), (2, 3))))
    speedups = r.series_by_label("speedup").y
    assert speedups[0] == pytest.approx(1.0, abs=0.05)
    assert speedups[-1] > speedups[0]
