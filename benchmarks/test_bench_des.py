"""DES backend benchmarks: machines (oracle) vs array (vectorised).

The numbers recorded here back the dispatch-complexity argument of
``docs/SIMULATOR.md``: the machines backend pays a Python loop over the
awake set for every broadcast (O(n·polls) interpreter work per run),
while the array backend resolves each poll from per-round lookups
(O(polls)).  The gap therefore *grows* with n — the acceptance bar is
>= 5x at n = 10_000, and in practice it is two orders of magnitude.

The machines backend at n = 10_000 takes tens of seconds per run, so
those cases use ``pedantic`` with a single round; benchmark precision
matters less than having the baseline on record.  They carry the
``slow_bench`` marker: ``make bench`` excludes them (merging the
committed aggregates forward instead) and ``make bench-full`` re-times
everything.
"""

import numpy as np
import pytest

from repro.core.hpp import HPP
from repro.core.tpp import TPP
from repro.sim.executor import simulate
from repro.workloads.tagsets import uniform_tagset

PROTOCOLS = {"TPP": TPP, "HPP": HPP}


@pytest.fixture(scope="module")
def tagsets():
    return {n: uniform_tagset(n, np.random.default_rng(1)) for n in (1_000, 10_000)}


def _run(proto_name, tags, backend):
    result = simulate(PROTOCOLS[proto_name](), tags, info_bits=1, seed=1,
                      keep_trace=False, backend=backend)
    assert result.all_read
    return result


@pytest.mark.parametrize("proto", list(PROTOCOLS), ids=str)
@pytest.mark.parametrize("n", [
    pytest.param(1_000, id="n1000"),
    # ~30-60 s each: opt-in via `make bench-full` (or -m slow_bench)
    pytest.param(10_000, marks=pytest.mark.slow_bench, id="n10000"),
])
def test_des_machines_backend(benchmark, tagsets, proto, n):
    if n >= 10_000:  # ~30 s per run: one round keeps `make bench` sane
        if benchmark.disabled:  # CI smoke runs skip the slow baseline
            pytest.skip("machines backend at n=10k only timed in real runs")
        benchmark.pedantic(_run, args=(proto, tagsets[n], "machines"),
                           rounds=1, iterations=1)
    else:
        benchmark(_run, proto, tagsets[n], "machines")


@pytest.mark.parametrize("proto", list(PROTOCOLS), ids=str)
@pytest.mark.parametrize("n", [1_000, 10_000], ids=lambda n: f"n{n}")
def test_des_array_backend(benchmark, tagsets, proto, n):
    benchmark(_run, proto, tagsets[n], "array")
