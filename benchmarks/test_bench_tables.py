"""One benchmark per paper table: execution-time comparisons."""

import pytest

from repro.experiments import table1, table2, table3

#: reduced table columns for benching (full columns in EXPERIMENTS.md)
_NS = (1_000, 10_000)


def _check_ordering(table, n):
    row = {k: table.cell(k, n) for k in table.seconds}
    assert (
        row["LowerBound"]
        < row["TPP"]
        < row["MIC, k=7"]
        < row["EHPP"]
        < row["HPP"]
        < row["CPP"]
    )
    return row


def test_table1_1bit(benchmark, bench_runs):
    t = benchmark(lambda: table1(n_values=_NS, n_runs=bench_runs, seed=1))
    row = _check_ordering(t, 10_000)
    assert row["CPP"] == pytest.approx(37.70, abs=0.02)
    assert row["TPP"] == pytest.approx(4.39, abs=0.10)
    assert row["MIC, k=7"] == pytest.approx(5.15, abs=0.20)


def test_table2_16bit(benchmark, bench_runs):
    t = benchmark(lambda: table2(n_values=_NS, n_runs=bench_runs, seed=2))
    row = _check_ordering(t, 10_000)
    # Table II's quoted ratios at n = 1e4
    assert row["TPP"] / row["MIC, k=7"] == pytest.approx(0.857, abs=0.03)
    assert row["TPP"] / row["CPP"] == pytest.approx(0.196, abs=0.01)


def test_table3_32bit(benchmark, bench_runs):
    t = benchmark(lambda: table3(n_values=_NS, n_runs=bench_runs, seed=3))
    row = _check_ordering(t, 10_000)
    lb = row["LowerBound"]
    assert row["TPP"] / lb == pytest.approx(1.10, abs=0.03)
    assert row["CPP"] / lb == pytest.approx(4.14, abs=0.05)
