"""Benchmarks for the wire-schedule coster (ISSUE 3).

Compares the legacy per-round Python loop (``LinkBudget.plan_us_loop``)
against the vectorised columnar path: compile once, then
``LinkBudget.schedule_us`` over the structured arrays.  The acceptance
bar is >= 5x at n = 100k; the gate lives in the n=100k case so a
regression of the vectorised coster fails ``make bench``.
"""

import numpy as np
import pytest

from repro.core.ehpp import EHPP
from repro.phy.link import LinkBudget
from repro.phy.schedule import compile_plan
from repro.workloads.tagsets import uniform_tagset

INFO_BITS = 8
SIZES = (1_000, 10_000, 100_000)


@pytest.fixture(scope="module")
def plans():
    out = {}
    for n in SIZES:
        tags = uniform_tagset(n, np.random.default_rng(n))
        out[n] = EHPP().plan(tags, np.random.default_rng(n + 1))
    return out


@pytest.fixture(scope="module")
def schedules(plans):
    return {n: compile_plan(plan, INFO_BITS) for n, plan in plans.items()}


@pytest.mark.parametrize("n", SIZES)
def test_legacy_loop(benchmark, plans, n):
    budget = LinkBudget()
    total = benchmark(lambda: budget.plan_us_loop(plans[n], INFO_BITS))
    assert total > 0


@pytest.mark.parametrize("n", SIZES)
def test_schedule_coster(benchmark, schedules, n):
    budget = LinkBudget()
    total = benchmark(lambda: budget.schedule_us(schedules[n]))
    assert total > 0


@pytest.mark.parametrize("n", SIZES)
def test_compile_plus_cost(benchmark, plans, n):
    budget = LinkBudget()
    total = benchmark(
        lambda: budget.schedule_us(compile_plan(plans[n], INFO_BITS))
    )
    assert total > 0


def test_speedup_at_100k(benchmark, plans, schedules):
    """Acceptance gate: vectorised coster >= 5x the loop at n = 100k."""
    import time

    budget = LinkBudget()
    plan, sched = plans[100_000], schedules[100_000]

    def best_of(fn, reps=3):
        times = []
        for _ in range(reps):
            t0 = time.perf_counter()
            fn()
            times.append(time.perf_counter() - t0)
        return min(times)

    loop_s = best_of(lambda: budget.plan_us_loop(plan, INFO_BITS))
    vec_s = best_of(lambda: budget.schedule_us(sched))
    assert budget.plan_us_loop(plan, INFO_BITS) == benchmark(
        lambda: budget.schedule_us(sched)
    )
    assert loop_s / vec_s >= 5.0, f"speedup only {loop_s / vec_s:.1f}x"
