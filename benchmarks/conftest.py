"""Benchmark-suite configuration.

Each benchmark regenerates one of the paper's figures or tables at a
reduced-but-representative scale (full-scale runs are recorded in
EXPERIMENTS.md via ``python -m repro.experiments``).  Benchmarks also
sanity-check their output shape, so ``pytest benchmarks/
--benchmark-only`` doubles as an end-to-end smoke of the harness.
"""

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slow_bench: minute-scale baseline benchmark, excluded from "
        "`make bench` (run with `make bench-full`)",
    )


@pytest.fixture
def bench_ns() -> tuple[int, ...]:
    """Population sizes used by the sweep benchmarks."""
    return (5_000, 20_000)


@pytest.fixture
def bench_runs() -> int:
    """Simulation runs per point in benchmarks (paper: 100)."""
    return 3
