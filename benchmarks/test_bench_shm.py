"""Shared-memory dataplane benchmarks and the warm-pool speedup gate.

Two kinds of test, mirroring ``test_bench_kernels.py``:

* ``test_dataplane_sweep_gate`` — the dataplane has to *earn* its
  default-on slot: a cold-cache DES-metric ``SweepRunner`` grid at
  n=10k with 8 cells per worker must run ≥3x faster through the warm
  persistent pool + shared-memory populations than through the legacy
  ``REPRO_SHM=off`` path, where every sweep pays a fresh
  ``ProcessPoolExecutor`` spawn (interpreter boot, module re-import,
  kernel re-warm under the ``spawn`` start method the gate pins) and
  every worker regenerates every cell's population from seed.  Values
  must be bit-identical.  Measured with ``perf_counter`` so it also
  gates under ``--benchmark-disable``.
* ``test_sweep_dataplane_{off,on}`` — informational pytest-benchmark
  timings of one sweep under each transport at a reduced grid, so
  ``BENCH_engine.json`` tracks the shipping-path trajectory.
"""

import time

import numpy as np
import pytest

from repro.core.hpp import HPP
from repro.experiments import shm
from repro.experiments.runner import DESMetric, SweepRunner

N = 10_000
RUNS = 16
JOBS = 2  # 16 cells / 2 workers = 8 cells per worker (gate floor)
SEED = 0
METRIC = DESMetric()


def _sweep(runner: SweepRunner, seed: int = SEED) -> np.ndarray:
    """One cold-cache sweep of the gate grid (cache=None: every cell
    is recomputed every call)."""
    return runner.sweep_values(HPP(), [N], n_runs=RUNS, seed=seed,
                               metric=METRIC)


def _best_of(fn, reps=2):
    best = float("inf")
    out = None
    for _ in range(reps):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


@pytest.fixture
def fresh_dataplane(monkeypatch):
    """No inherited pool or arena, and ``spawn`` pinned — the portable
    start method whose per-pool cost the persistent pool amortises
    (the issue's baseline: fresh spawn + re-import + kernel re-warm
    per sweep)."""
    monkeypatch.setenv("REPRO_POOL_START", "spawn")
    shm.shutdown_worker_pool()
    shm.close_arena()
    yield
    shm.shutdown_worker_pool()
    shm.close_arena()
    shm.detach_all()


def test_dataplane_sweep_gate(fresh_dataplane):
    """The tentpole acceptance gate: ≥3x end-to-end SweepRunner speedup
    with the dataplane on vs ``REPRO_SHM=off`` on a cold-cache
    DES-metric grid (n=10k, 16 cells, 2 workers), fresh-pool spawn and
    per-cell tagset regeneration included in the baseline — and
    bit-identical values.
    """
    baseline = SweepRunner(jobs=JOBS, cache=None, shm=False)
    base_t, base_vals = _best_of(lambda: _sweep(baseline))

    warm = SweepRunner(jobs=JOBS, cache=None, shm=True)
    _sweep(warm, seed=SEED + 1)  # untimed: pool birth + kernel warmup
    warm_t, warm_vals = _best_of(lambda: _sweep(warm))

    np.testing.assert_array_equal(np.asarray(base_vals),
                                  np.asarray(warm_vals))
    assert warm.pool_reused > 0, "gate never hit the warm pool"
    speedup = base_t / warm_t
    assert speedup >= 3.0, (
        f"dataplane sweep gate: {speedup:.1f}x < 3x "
        f"(off {base_t * 1e3:.0f} ms, on {warm_t * 1e3:.0f} ms)"
    )


# ----------------------------------------------------------------------
# informational trajectory benches (reduced grid, auto start method)
# ----------------------------------------------------------------------
N_INFO = 5_000
RUNS_INFO = 8


def _info_sweep(runner: SweepRunner) -> np.ndarray:
    return runner.sweep_values(HPP(), [N_INFO], n_runs=RUNS_INFO,
                               seed=SEED, metric=METRIC)


@pytest.fixture
def clean_pool():
    yield
    shm.shutdown_worker_pool()
    shm.close_arena()
    shm.detach_all()


def test_sweep_dataplane_off(benchmark, clean_pool):
    """Informational: one pooled DES sweep, legacy transport (a fresh
    pool per sweep, workers regenerate populations)."""
    runner = SweepRunner(jobs=JOBS, cache=None, shm=False)
    out = benchmark(lambda: _info_sweep(runner))
    assert np.asarray(out).shape == (1, 2)


def test_sweep_dataplane_on(benchmark, clean_pool):
    """Informational: the same sweep through the warm pool and the
    shared-memory population columns."""
    runner = SweepRunner(jobs=JOBS, cache=None, shm=True)
    _info_sweep(runner)  # warm-up: pool birth, arena publish
    out = benchmark(lambda: _info_sweep(runner))
    assert np.asarray(out).shape == (1, 2)
    assert runner.pool_reused > 0
