"""Continuous-inventory engine benchmarks and the incremental-replan gate.

Mirrors ``test_bench_kernels.py``'s structure:

* ``test_incremental_replan_gate`` — the incremental engine has to
  *earn* its complexity: absorbing 1% churn into an EHPP plan over
  n=10k tags (splice + re-schedule) must run ≥5x faster per epoch than
  rebuilding the plan state from scratch over the same populations.
  Measured with ``perf_counter`` so it also gates under
  ``--benchmark-disable`` (the CI benchmark smoke step).
* ``test_bench_*`` — informational pytest-benchmark timings of the
  replan hot path and one full monitoring epoch, recorded into
  ``BENCH_engine.json`` by ``make bench``.
"""

import time

import numpy as np
import pytest

from repro.core.ehpp import EHPP
from repro.core.replan import PlanDiff
from repro.workloads.tagsets import TagSet, uniform_tagset

N = 10_000
CHURN = 0.01
EPOCHS = 8
GATE = 5.0


@pytest.fixture(scope="module")
def pool():
    extra = EPOCHS * int(N * CHURN) + 16
    return uniform_tagset(N + extra, np.random.default_rng(42))


def _churn_diffs(pool):
    """EPOCHS diffs at 1% churn (half departures, half arrivals)."""
    churn = np.random.default_rng(7)
    live = set(range(N))
    next_slot = N
    k = max(1, int(N * CHURN / 2))
    diffs = []
    for _ in range(EPOCHS):
        lv = np.asarray(sorted(live), dtype=np.int64)
        dep = np.sort(churn.choice(lv, size=k, replace=False))
        arr = np.arange(next_slot, next_slot + k, dtype=np.int64)
        next_slot += k
        live -= set(dep.tolist())
        live |= set(arr.tolist())
        diffs.append(PlanDiff(arr, pool.id_words[arr], dep))
    return diffs


def _incremental_s_per_epoch(pool, diffs) -> float:
    tags = TagSet(id_hi=pool.id_hi[:N], id_lo=pool.id_lo[:N])
    state = EHPP().plan_state(tags, np.random.default_rng(5))
    t0 = time.perf_counter()
    for d in diffs:
        state.apply(d, np.random.default_rng(11))
        state.schedule()
    return (time.perf_counter() - t0) / len(diffs)


def _full_rebuild_s_per_epoch(pool, diffs) -> float:
    proto = EHPP()
    rng = np.random.default_rng(5)
    live = set(range(N))
    total = 0.0
    for d in diffs:
        live -= set(d.departed_slots.tolist())
        live |= set(d.arrived_slots.tolist())
        lv = np.asarray(sorted(live), dtype=np.int64)
        cur = TagSet(id_hi=pool.id_hi[lv], id_lo=pool.id_lo[lv])
        t0 = time.perf_counter()
        state = proto.plan_state(cur, rng, slots=lv)
        state.schedule()
        total += time.perf_counter() - t0
    return total / len(diffs)


def test_incremental_replan_gate(pool):
    """Incremental EHPP replan ≥5x faster than full rebuild (n=10k, 1%)."""
    diffs = _churn_diffs(pool)
    inc = min(_incremental_s_per_epoch(pool, diffs) for _ in range(3))
    full = min(_full_rebuild_s_per_epoch(pool, diffs) for _ in range(3))
    ratio = full / inc
    assert ratio >= GATE, (
        f"incremental replan gate: {ratio:.1f}x < {GATE:.0f}x "
        f"(incremental {inc * 1e3:.2f} ms/epoch, "
        f"full rebuild {full * 1e3:.2f} ms/epoch)")


def test_bench_incremental_replan(benchmark, pool):
    diffs = _churn_diffs(pool)
    benchmark(lambda: _incremental_s_per_epoch(pool, diffs))


def test_bench_full_rebuild(benchmark, pool):
    diffs = _churn_diffs(pool)
    benchmark(lambda: _full_rebuild_s_per_epoch(pool, diffs))


def test_bench_monitoring_epoch(benchmark):
    """One full epoch: churn draw + replan + localized DES poll."""
    from repro.apps.inventory import InventorySession
    from repro.workloads.inventory import ChurnModel, PopulationDiff

    session = InventorySession(
        EHPP(), uniform_tagset(2_000, np.random.default_rng(9)), seed=1)
    model = ChurnModel(arrival_rate=0.005, departure_rate=0.005,
                       missing_rate=0.005, return_rate=0.2)
    rng = np.random.default_rng(13)

    def one_epoch():
        return session.step(model.draw(session.store, rng))

    report = benchmark(one_epoch)
    assert report.n_known > 0
