"""Replica-batched DES benchmarks and the batched-execution gate.

A lossy-channel DES-metric sweep cell is R Monte-Carlo *executions* of
one (protocol, n) point — the expensive kind of cell, where every poll
used to cost a Python round-trip per replica.  The batch executor
(:func:`repro.sim.batch.execute_plan_batch`) replays all R replicas in
one lockstep pass: joint ragged hashing, span commits, RNG-speculated
loss resolution.  These benchmarks pin down what that buys at the
paper's cell size (n = 10 000, R = 100).

Two kinds of test live here:

* ``test_batched_des_gate`` — a hard ≥5x assertion on the full cell,
  measured with ``perf_counter`` so it also runs (and gates) under
  ``--benchmark-disable`` in the CI smoke.  Parity is asserted first:
  the speedup only counts because the counters are bit-identical.
* ``test_des_cell_*`` — informational pytest-benchmark timings of a
  reduced cell (R = 10), sequential vs batched, so BENCH_engine.json
  records both sides.
"""

import time

import numpy as np
import pytest

from repro.core.hpp import HPP
from repro.experiments.runner import cell_seed_children
from repro.phy.channel import BitErrorChannel
from repro.sim.batch import execute_plan_batch
from repro.sim.executor import execute_plan
from repro.workloads.tagsets import uniform_tagset

N = 10_000
R = 100
BER = 1e-4
BITS = 1
SEED = 0

#: the informational cell benches run a tenth of a cell to keep the
#: benchmark suite's wall time reasonable; the gate uses the full R.
R_BENCH = 10


@pytest.fixture(scope="module")
def cell():
    """Plans, tagsets, and channel seed children of the (n=10k) cell,
    derived exactly like the runner's ``DESMetric`` evaluates it."""
    plans, tags_list, channel_children = [], [], []
    for run in range(R):
        tag_child, plan_child = cell_seed_children(SEED, N, run)
        tags = uniform_tagset(N, np.random.default_rng(tag_child))
        plan_ss, channel_ss = plan_child.spawn(2)
        plans.append(HPP().plan(tags, np.random.default_rng(plan_ss)))
        tags_list.append(tags)
        channel_children.append(channel_ss)
    return plans, tags_list, channel_children


def _sequential_cell(cell, runs):
    plans, tags_list, channel_children = cell
    return [
        execute_plan(plan, tags, info_bits=BITS, channel=BitErrorChannel(BER),
                     rng=np.random.default_rng(ss), keep_trace=False,
                     backend="array")
        for plan, tags, ss in zip(plans[:runs], tags_list[:runs],
                                  channel_children[:runs])
    ]


def _batched_cell(cell, runs):
    plans, tags_list, channel_children = cell
    return execute_plan_batch(
        plans[:runs], tags_list[:runs], info_bits=BITS,
        channel=BitErrorChannel(BER),
        rngs=[np.random.default_rng(ss) for ss in channel_children[:runs]],
        backend="array",
    )


def _fingerprints(results):
    return [(r.time_us, r.reader_bits, r.tag_bits, r.n_retries,
             r.polled_order) for r in results]


def _best_of(fn, reps):
    best = float("inf")
    out = None
    for _ in range(reps):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def test_batched_des_gate(cell):
    """Executing the R=100 lossy cell as one batch is ≥5x faster than
    one replica at a time on the same array backend (n=10k, HPP,
    BER 1e-4).

    What each side measures:

    * sequential — R ``execute_plan`` calls, the per-cell path a
      DES-metric sweep took before the replica axis existed (best of 1:
      ~9 s, timing noise is negligible at that scale);
    * batched — one ``execute_plan_batch`` call over the same plans and
      generators (best of 2).

    Both sides must produce identical counters replica for replica;
    measured headroom on the gate is ~13x, asserted at 5x to absorb CI
    timing noise.
    """
    seq_t, seq_results = _best_of(lambda: _sequential_cell(cell, R), reps=1)
    bat_t, bat_results = _best_of(lambda: _batched_cell(cell, R), reps=2)

    assert _fingerprints(bat_results) == _fingerprints(seq_results), (
        "batched DES execution diverged from sequential execute_plan"
    )
    speedup = seq_t / bat_t
    assert speedup >= 5.0, (
        f"batched DES gate: {speedup:.1f}x < 5x "
        f"(sequential {seq_t:.2f} s, batched {bat_t:.2f} s)"
    )


def test_des_cell_sequential(benchmark, cell):
    """Informational: execute a tenth of the cell one replica at a time."""
    results = benchmark(lambda: _sequential_cell(cell, R_BENCH))
    assert all(r.all_read for r in results)


def test_des_cell_batched(benchmark, cell):
    """Informational: execute the same tenth of the cell as one batch.

    Also asserts counter parity against the sequential path — the
    speedup is only meaningful because the numbers are bit-identical.
    """
    reference = _fingerprints(_sequential_cell(cell, R_BENCH))
    results = benchmark(lambda: _batched_cell(cell, R_BENCH))
    assert _fingerprints(results) == reference
