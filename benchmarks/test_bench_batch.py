"""Replica-axis batching benchmarks and the batched-costing gate.

A plan-metric sweep cell is R Monte-Carlo runs of one (protocol, n)
point whose metrics come from the plan alone (no DES).  The batch path
plans all R runs in one vectorized pass and prices them as a single
:class:`~repro.phy.schedule.ScheduleBatch`; these benchmarks pin down
what that buys at the paper's cell size (n = 10 000, R = 100).

Two kinds of test live here:

* ``test_batched_costing_gate`` — a hard ≥5x assertion on the costing
  stage, measured with ``perf_counter`` so it also runs (and gates)
  under ``--benchmark-disable`` in the CI smoke.
* ``test_cell_*`` — informational pytest-benchmark timings of the full
  planning+costing cell, sequential vs batched, so BENCH_engine.json
  records both sides.  End-to-end the batch path is bounded by the
  hashing work both paths share, so expect low single-digit ratios
  there — the order-of-magnitude win is in the costing stage.
"""

import time

import numpy as np
import pytest

from repro.core.ehpp import EHPP
from repro.core.hpp import HPP
from repro.core.tpp import TPP
from repro.experiments.runner import cell_seed_children
from repro.phy.link import LinkBudget
from repro.phy.schedule import compile_plan
from repro.workloads.tagsets import uniform_tagset

N = 10_000
R = 100
BITS = 1
SEED = 0
BUDGET = LinkBudget()

#: the informational cell benches run a quarter cell to keep the
#: benchmark suite's wall time reasonable; the gate uses the full R.
R_BENCH = 25


@pytest.fixture(scope="module")
def cell_tags():
    """The R tag populations of the (n=10k) cell, seeded like the runner."""
    tags = []
    for run in range(R):
        tag_child, _ = cell_seed_children(SEED, N, run)
        tags.append(uniform_tagset(N, np.random.default_rng(tag_child)))
    return tags


def _plan_rngs(runs=R):
    """Fresh plan-seed generators (planning consumes them)."""
    return [
        np.random.default_rng(cell_seed_children(SEED, N, run)[1])
        for run in range(runs)
    ]


def _best_of(fn, reps=5):
    best = float("inf")
    out = None
    for _ in range(reps):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def test_batched_costing_gate(cell_tags):
    """Costing R planned runs as one batch is ≥5x faster than one at
    a time (n=10k, R=100, EHPP).

    What each side measures (best of 5):

    * sequential — compile each run's ``InterrogationPlan`` to a
      ``WireSchedule`` and price it (``compile_plan`` +
      ``LinkBudget.schedule_us``), the per-run path the runner took
      before the replica axis existed;
    * batched — price the planner's ``ScheduleBatch`` in one
      ``LinkBudget.schedule_batch_us`` call.  The batch's per-round
      cost aggregates are assembled during joint planning without ever
      materialising the per-exchange rows, which is where the win
      comes from.

    Both sides must produce identical wire times; measured headroom on
    the gate is ~30x, asserted at 5x to absorb CI timing noise.
    """
    protocol = EHPP()
    plans = [
        protocol.plan(tags, rng)
        for tags, rng in zip(cell_tags, _plan_rngs())
    ]
    batch = protocol.plan_schedule_batch(cell_tags, _plan_rngs(),
                                         reply_bits=BITS)

    seq_t, seq_times = _best_of(
        lambda: [BUDGET.schedule_us(compile_plan(p, BITS)) for p in plans]
    )
    bat_t, bat_times = _best_of(lambda: BUDGET.schedule_batch_us(batch))

    assert np.array_equal(np.asarray(seq_times), np.asarray(bat_times)), (
        "batched costing diverged from sequential compile+cost"
    )
    speedup = seq_t / bat_t
    assert speedup >= 5.0, (
        f"batched costing gate: {speedup:.1f}x < 5x "
        f"(sequential {seq_t * 1e3:.1f} ms, batched {bat_t * 1e3:.1f} ms)"
    )


PROTOCOLS = [
    pytest.param(HPP, id="hpp"),
    pytest.param(TPP, id="tpp"),
    pytest.param(EHPP, id="ehpp"),
]


def _sequential_cell(protocol, tags):
    rngs = _plan_rngs(R_BENCH)
    return [
        BUDGET.schedule_us(compile_plan(protocol.plan(t, rng), BITS))
        for t, rng in zip(tags, rngs)
    ]


def _batched_cell(protocol, tags):
    batch = protocol.plan_schedule_batch(tags, _plan_rngs(R_BENCH),
                                         reply_bits=BITS)
    return BUDGET.schedule_batch_us(batch)


@pytest.mark.parametrize("make_protocol", PROTOCOLS)
def test_cell_sequential(benchmark, cell_tags, make_protocol):
    """Informational: plan+compile+cost a quarter cell one run at a time."""
    protocol = make_protocol()
    tags = cell_tags[:R_BENCH]
    times = benchmark(lambda: _sequential_cell(protocol, tags))
    assert len(times) == R_BENCH


@pytest.mark.parametrize("make_protocol", PROTOCOLS)
def test_cell_batched(benchmark, cell_tags, make_protocol):
    """Informational: plan+cost the same quarter cell as one batch.

    Also asserts value parity against the sequential path — the speedup
    is only meaningful because the numbers are bit-identical.
    """
    protocol = make_protocol()
    tags = cell_tags[:R_BENCH]
    reference = _sequential_cell(protocol, tags)
    times = benchmark(lambda: _batched_cell(protocol, tags))
    assert np.array_equal(np.asarray(times), np.asarray(reference))
