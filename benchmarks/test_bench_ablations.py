"""Ablation benchmarks: the design-choice sweeps DESIGN.md calls out."""

import pytest

from repro.experiments import (
    ablate_ecpp_clustering,
    ablate_ehpp_subset_size,
    ablate_mic_hash_count,
    ablate_tpp_index_policy,
)


def test_ablate_tpp_index_policy(benchmark):
    r = benchmark(lambda: ablate_tpp_index_policy(n=10_000, n_runs=3))
    values = {s.label: s.y[0] for s in r.series}
    assert values["eq15 (λ≈ln2)"] <= min(values.values()) * 1.02


def test_ablate_ehpp_subset_size(benchmark):
    r = benchmark(lambda: ablate_ehpp_subset_size(n=10_000, n_runs=3))
    xs, ys = r.series_by_label("EHPP").as_arrays()
    assert ys[0] > ys.min() and ys[-1] > ys.min()


def test_ablate_mic_hash_count(benchmark):
    r = benchmark(lambda: ablate_mic_hash_count(n=10_000, n_runs=3))
    waste = r.series_by_label("wasted_slot_frac").y
    assert waste[0] == pytest.approx(0.632, abs=0.02)
    assert waste[-2] == pytest.approx(0.139, abs=0.02)  # k = 7


def test_ablate_ecpp_clustering(benchmark):
    r = benchmark(lambda: ablate_ecpp_clustering(n=3_000, n_runs=3))
    ys = r.series_by_label("eCPP_clustered").y
    assert ys == sorted(ys)
