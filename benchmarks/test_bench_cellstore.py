"""Benchmarks for the columnar cell store (ISSUE 6).

Compares loading a 100k-cell cache from the legacy line-per-cell JSON
format (``cells.jsonl``, parsed by ``iter_jsonl_cells``) against the
columnar segment store (``CellStore.load``).  Both fixtures replay the
same write history — the initial render plus one re-render of every
cell — and each format is measured in the steady state that history
produces: the jsonl keeps every superseded line forever (the unbounded
growth bug this store replaces), while the segment store auto-compacts
on load.  The acceptance bar is >= 5x for load + lookup at >= 100k
cached cells; the gate lives in ``test_speedup_at_100k`` so a codec
regression fails ``make bench``.
"""

import json

import numpy as np
import pytest

from repro.experiments.cellstore import CellStore
from repro.io import iter_jsonl_cells

N_CELLS = 100_000
N_GENERATIONS = 2  # initial render + one re-render of every cell
_SALT = "v=bench0000000000|"


def _cell_key(i: int) -> str:
    return f"{_SALT}fig8|EHPP|n={i}|l=8|seed=0|run={i % 10}"


@pytest.fixture(scope="module")
def cell_values():
    rng = np.random.default_rng(42)
    return [
        rng.standard_normal(N_CELLS).tolist() for _ in range(N_GENERATIONS)
    ]


@pytest.fixture(scope="module")
def jsonl_path(tmp_path_factory, cell_values):
    directory = tmp_path_factory.mktemp("legacy")
    path = directory / "cells.jsonl"
    with path.open("w", encoding="utf-8") as fh:
        for generation in cell_values:
            for i, v in enumerate(generation):
                fh.write(json.dumps({"key": _cell_key(i), "value": v}) + "\n")
    return path


@pytest.fixture(scope="module")
def store_dir(tmp_path_factory, cell_values):
    directory = tmp_path_factory.mktemp("columnar")
    store = CellStore(directory, version_salt=_SALT,
                      flush_threshold=N_CELLS + 1)
    for generation in cell_values:
        for i, v in enumerate(generation):
            store.append(_cell_key(i), v)
        store.flush()
    # first post-history load crosses the garbage threshold (50% of the
    # entries are superseded) and compacts to one segment — the steady
    # state every later load sees
    reader = CellStore(directory, version_salt=_SALT)
    reader.load()
    assert reader.stats.compacted
    return directory


def _load_jsonl(path):
    cells = dict(iter_jsonl_cells(path))  # last line per key wins
    # lookups: every 97th key, like a warm sweep re-run probing the cache
    return sum(cells[_cell_key(i)] for i in range(0, N_CELLS, 97))


def _load_store(directory):
    cells = CellStore(directory, version_salt=_SALT).load()
    return sum(cells[_cell_key(i)] for i in range(0, N_CELLS, 97))


def test_legacy_jsonl_load(benchmark, jsonl_path):
    assert benchmark(lambda: _load_jsonl(jsonl_path)) is not None


def test_columnar_load(benchmark, store_dir):
    assert benchmark(lambda: _load_store(store_dir)) is not None


def test_speedup_at_100k(benchmark, jsonl_path, store_dir):
    """Acceptance gate: columnar load+lookup >= 5x jsonl at 100k cells."""
    import time

    def timed(fn):
        t0 = time.perf_counter()
        fn()
        return time.perf_counter() - t0

    # interleave the measurements so transient machine load hits both
    # sides alike; compare the minima
    jsonl_ts, store_ts = [], []
    for _ in range(5):
        jsonl_ts.append(timed(lambda: _load_jsonl(jsonl_path)))
        store_ts.append(timed(lambda: _load_store(store_dir)))
    jsonl_s, store_s = min(jsonl_ts), min(store_ts)
    # both paths resolve the exact same cells
    assert _load_jsonl(jsonl_path) == pytest.approx(
        benchmark(lambda: _load_store(store_dir))
    )
    assert jsonl_s / store_s >= 5.0, f"speedup only {jsonl_s / store_s:.1f}x"
