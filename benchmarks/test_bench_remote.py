"""Distributed dispatch benchmarks: the two-agent scaling gate, the
transport-overhead trajectory, and the shard compression gate.

Three kinds of test, mirroring ``test_bench_shm.py``:

* ``test_two_agents_beat_one_gate`` — two localhost host agents must
  run a cold-cache DES-metric ``SweepRunner`` grid at n=10k ≥1.5x
  faster than a single agent with the same per-agent worker count, and
  bit-identically.  The two-agent leg is timed *first* so the one-agent
  leg benefits from every process-level warm-up (conservative gate).
  Requires ≥2 usable CPUs: on a single core both legs serialize on the
  same silicon and the gate would measure the scheduler, not the
  dispatcher.  Measured with ``perf_counter`` so it also gates under
  ``--benchmark-disable``.
* ``test_shard_compression_gate`` — the zlib-over-threshold blob codec
  must ship batch-path shards ≥3x smaller than the raw pickles
  (``bytes_raw`` vs ``bytes_shipped`` in ``batch_coverage``).
* ``test_sweep_{local_pool,one_agent}`` — informational
  pytest-benchmark timings of the same reduced sweep through the local
  warm pool vs one socket-attached agent, so ``BENCH_engine.json``
  tracks the transport overhead trajectory.
"""

import os
import time

import numpy as np
import pytest

from repro.core.hpp import HPP
from repro.experiments import remote, shm
from repro.experiments.runner import DESMetric, SweepRunner

N = 10_000
RUNS = 16
AGENT_JOBS = 2
SEED = 0
METRIC = DESMetric()

_CPUS = len(os.sched_getaffinity(0))


def _sweep(runner: SweepRunner, seed: int = SEED) -> np.ndarray:
    """One cold-cache sweep of the gate grid (cache=None: every cell
    is recomputed every call)."""
    return runner.sweep_values(HPP(), [N], n_runs=RUNS, seed=seed,
                               metric=METRIC)


def _best_of(fn, reps=2):
    best = float("inf")
    out = None
    for _ in range(reps):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


@pytest.fixture
def clean_transport():
    yield
    remote.close_dispatchers()
    shm.shutdown_worker_pool()
    shm.close_arena()
    shm.detach_all()


def _spawn_agents(count: int):
    procs, addresses = [], []
    for _ in range(count):
        proc, address = remote.spawn_local_agent(jobs=AGENT_JOBS)
        procs.append(proc)
        addresses.append(address)
    return procs, addresses


@pytest.mark.skipif(_CPUS < 2 * AGENT_JOBS, reason=(
    f"{_CPUS} usable CPU(s): two {AGENT_JOBS}-worker agents cannot "
    "outrun one on shared silicon"))
def test_two_agents_beat_one_gate(clean_transport):
    """The distributed acceptance gate: two localhost agents ≥1.5x one
    agent on a cold-cache DES grid at n=10k, bit-identical values."""
    procs, addresses = _spawn_agents(2)
    try:
        pair = SweepRunner(jobs=1, cache=None, hosts=addresses)
        _sweep(pair, seed=SEED + 1)  # untimed: connect + remote warm-up
        pair_t, pair_vals = _best_of(lambda: _sweep(pair))
        assert pair.remote_shards > 0, "gate never dispatched remotely"

        solo = SweepRunner(jobs=1, cache=None, hosts=addresses[:1])
        _sweep(solo, seed=SEED + 1)
        solo_t, solo_vals = _best_of(lambda: _sweep(solo))
        assert solo.remote_shards > 0
    finally:
        for proc in procs:
            proc.terminate()
        for proc in procs:
            proc.wait(timeout=10)

    np.testing.assert_array_equal(np.asarray(pair_vals),
                                  np.asarray(solo_vals))
    speedup = solo_t / pair_t
    assert speedup >= 1.5, (
        f"two-agent scaling gate: {speedup:.2f}x < 1.5x "
        f"(one agent {solo_t * 1e3:.0f} ms, two {pair_t * 1e3:.0f} ms)"
    )


def test_shard_compression_gate(clean_transport):
    """Shipped batch shards must be ≥3x smaller than their raw pickles
    — the threshold-gated zlib codec applies to the local pool too, so
    no agents are needed to measure it."""
    runner = SweepRunner(jobs=2, cache=None)
    _sweep(runner)
    cov = runner.batch_coverage
    assert cov["batched_cells"] == RUNS
    assert cov["bytes_raw"] > 0 and cov["bytes_shipped"] > 0
    ratio = cov["bytes_raw"] / cov["bytes_shipped"]
    assert ratio >= 3.0, (
        f"shard compression gate: {ratio:.1f}x < 3x "
        f"({cov['bytes_raw']} raw, {cov['bytes_shipped']} shipped)"
    )


# ----------------------------------------------------------------------
# informational trajectory benches (reduced grid)
# ----------------------------------------------------------------------
N_INFO = 5_000
RUNS_INFO = 8


def _info_sweep(runner: SweepRunner) -> np.ndarray:
    return runner.sweep_values(HPP(), [N_INFO], n_runs=RUNS_INFO,
                               seed=SEED, metric=METRIC)


def test_sweep_local_pool(benchmark, clean_transport):
    """Informational: the reference leg — the same sweep the remote
    bench runs, through the in-process warm pool."""
    runner = SweepRunner(jobs=AGENT_JOBS, cache=None)
    _info_sweep(runner)  # warm-up: pool birth, arena publish
    out = benchmark(lambda: _info_sweep(runner))
    assert np.asarray(out).shape == (1, 2)


def test_sweep_one_agent(benchmark, clean_transport):
    """Informational: one socket-attached agent serving the same sweep
    — the difference to ``test_sweep_local_pool`` is the transport
    overhead (framing, zlib, TCP on loopback)."""
    proc, address = remote.spawn_local_agent(jobs=AGENT_JOBS)
    try:
        runner = SweepRunner(jobs=1, cache=None, hosts=address)
        _info_sweep(runner)  # warm-up: connect + agent-side warm pool
        out = benchmark(lambda: _info_sweep(runner))
        assert np.asarray(out).shape == (1, 2)
        assert runner.remote_shards > 0
    finally:
        proc.terminate()
        proc.wait(timeout=10)
