"""One benchmark per paper figure: regenerate the figure's data."""

import numpy as np
import pytest

from repro.experiments import fig1, fig3, fig4, fig5, fig8, fig9, fig10


def test_fig1_exec_time_curve(benchmark):
    result = benchmark(fig1)
    x, y = result.series_by_label("exec_time_ms").as_arrays()
    assert y[-1] > y[0]
    assert np.allclose(np.diff(y), 37.45e-3)


def test_fig3_hpp_analysis(benchmark):
    result = benchmark(lambda: fig3(n_values=tuple(range(10_000, 100_001, 10_000))))
    w = result.series_by_label("HPP_w").y
    # "almost monotonously increases with n" (paper): small dips below
    # powers of two are expected from the stepwise index length
    assert all(b > a - 0.2 for a, b in zip(w, w[1:]))
    assert w[-1] > w[0]
    assert w[-1] == pytest.approx(16, abs=0.8)


def test_fig4_subset_size_bounds(benchmark):
    result = benchmark(lambda: fig4(lc_values=tuple(range(50, 501, 50))))
    lo = result.series_by_label("lower_bound").y
    hi = result.series_by_label("upper_bound").y
    opt = result.series_by_label("optimal").y
    assert all(a <= o <= b for a, o, b in zip(lo, opt, hi))


def test_fig5_ehpp_analysis(benchmark):
    result = benchmark(
        lambda: fig5(n_values=(20_000, 60_000, 100_000), lc_values=(100, 200, 400))
    )
    w200 = result.series_by_label("l_c=200").y
    assert w200[-1] == pytest.approx(7.94, abs=0.15)


def test_fig8_mu_curve(benchmark):
    result = benchmark(fig8)
    x, y = result.series_by_label("mu").as_arrays()
    assert y.max() == pytest.approx(np.exp(-1), abs=1e-3)


def test_fig9_tpp_analysis(benchmark):
    result = benchmark(lambda: fig9(n_values=tuple(range(10_000, 100_001, 10_000))))
    for w in result.series_by_label("TPP_w_worst_case").y:
        assert w == pytest.approx(3.38, abs=0.08)


def test_fig10_simulated_vectors(benchmark, bench_ns, bench_runs):
    result = benchmark(lambda: fig10(n_values=bench_ns, n_runs=bench_runs, seed=1))
    tpp = result.series_by_label("TPP").y
    ehpp = result.series_by_label("EHPP").y
    hpp = result.series_by_label("HPP").y
    assert tpp[-1] == pytest.approx(3.1, abs=0.15)
    assert ehpp[-1] == pytest.approx(9.0, abs=0.3)
    assert tpp[-1] < ehpp[-1] < hpp[-1]
