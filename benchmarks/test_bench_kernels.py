"""Hot-path kernel benchmarks and the numba speedup gate.

Two kinds of test live here, mirroring ``test_bench_batch.py``:

* ``test_numba_ehpp_cell_gate`` — the compiled backend has to *earn*
  its dispatch slot: the EHPP batched sweep cell (joint planning +
  batched costing, the workload the kernel layer was built for) must
  run ≥3x faster under ``REPRO_KERNELS=numba`` than under the numpy
  oracle, with bit-identical wire times.  Measured with
  ``perf_counter`` so it also gates under ``--benchmark-disable``;
  skipped when numba is not installed (the CI numba matrix leg runs
  it).
* ``test_kernel_*`` — informational pytest-benchmark timings of each
  registered kernel on its profiling workload under the *active*
  backend, so ``BENCH_engine.json`` records per-kernel numbers for
  whichever backend the bench host resolves.
"""

import time

import numpy as np
import pytest

from repro.core.ehpp import EHPP
from repro.kernels import (
    active_backend,
    get_kernel,
    numba_available,
    use_backend,
)
from repro.experiments.runner import cell_seed_children
from repro.kernels.profile import _workloads
from repro.phy.link import LinkBudget
from repro.workloads.tagsets import uniform_tagset

# same cell geometry as test_bench_batch.py (a quarter of the paper's
# n=10k, R=100 sweep cell)
N = 10_000
R_BENCH = 25
BITS = 1
SEED = 0
BUDGET = LinkBudget()

requires_numba = pytest.mark.skipif(
    not numba_available(), reason="numba not installed (fast extra)"
)


@pytest.fixture(scope="module")
def cell_tags():
    """The quarter-cell tag populations, seeded like the runner."""
    tags = []
    for run in range(R_BENCH):
        tag_child, _ = cell_seed_children(SEED, N, run)
        tags.append(uniform_tagset(N, np.random.default_rng(tag_child)))
    return tags


def _plan_rngs(runs=R_BENCH):
    """Fresh plan-seed generators (planning consumes them)."""
    return [
        np.random.default_rng(cell_seed_children(SEED, N, run)[1])
        for run in range(runs)
    ]


def _best_of(fn, reps=5):
    best = float("inf")
    out = None
    for _ in range(reps):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def _ehpp_cell(tags):
    batch = EHPP().plan_schedule_batch(tags, _plan_rngs(R_BENCH),
                                       reply_bits=BITS)
    return BUDGET.schedule_batch_us(batch)


@requires_numba
def test_numba_ehpp_cell_gate(cell_tags):
    """The tentpole acceptance gate: the EHPP batched sweep cell is
    ≥3x faster under the numba backend (n=10k, R=25, best of 5), and
    the wire times are bit-identical — the compiled round draw and
    circle join must replace the numpy oracle without changing a single
    planned schedule.
    """
    tags = cell_tags[:R_BENCH]
    with use_backend("numpy"):
        numpy_t, numpy_times = _best_of(lambda: _ehpp_cell(tags))
    with use_backend("numba"):
        _ehpp_cell(tags)  # warm-up: JIT compilation, untimed
        numba_t, numba_times = _best_of(lambda: _ehpp_cell(tags))

    assert np.array_equal(np.asarray(numpy_times), np.asarray(numba_times)), (
        "numba backend diverged from the numpy oracle on the EHPP cell"
    )
    speedup = numpy_t / numba_t
    assert speedup >= 3.0, (
        f"numba EHPP cell gate: {speedup:.1f}x < 3x "
        f"(numpy {numpy_t * 1e3:.1f} ms, numba {numba_t * 1e3:.1f} ms)"
    )


#: per-kernel informational benches on the profiler's representative
#: workloads (one joint round of an n=10k, R=32 cell)
_ARGS = _workloads(scale=1.0)

KERNELS = [
    pytest.param(name, id=f"{name}")
    for name in sorted(_ARGS)
]


@pytest.mark.parametrize("kernel", KERNELS)
def test_kernel(benchmark, kernel):
    """Informational: one kernel call under the active backend.

    The backend is whatever the bench host resolves (recorded in
    ``machine_info.kernel_backend`` by ``scripts/slim_bench.py``), so
    committed baselines are only comparable backend-to-backend —
    ``scripts/bench_regression.py`` skips cross-backend comparisons.
    """
    impl = get_kernel(kernel)
    args = _ARGS[kernel]
    impl(*args)  # warm-up (JIT compile under numba)
    out = benchmark(lambda: impl(*args))
    assert out is not None
    assert active_backend() in ("numpy", "numba")
