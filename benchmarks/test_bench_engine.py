"""Micro-benchmarks of the building blocks (planning and DES throughput).

Not paper artifacts — these track the cost of the library's own hot
paths so performance regressions in the planner or the event engine
surface in CI.
"""

import numpy as np
import pytest

from repro.baselines.mic import MIC
from repro.core.ehpp import EHPP
from repro.core.hpp import HPP
from repro.core.polling_tree import segment_lengths
from repro.core.tpp import TPP
from repro.hashing.universal import hash_indices
from repro.sim.executor import simulate
from repro.workloads.tagsets import uniform_tagset

N = 50_000


@pytest.fixture(scope="module")
def big_tags():
    return uniform_tagset(N, np.random.default_rng(1))


def test_hashing_throughput(benchmark, big_tags):
    benchmark(lambda: hash_indices(big_tags.id_words, 7, 16))


def test_hpp_planning(benchmark, big_tags):
    plan = benchmark(lambda: HPP().plan(big_tags, np.random.default_rng(2)))
    assert plan.n_polls == N


def test_tpp_planning(benchmark, big_tags):
    plan = benchmark(lambda: TPP().plan(big_tags, np.random.default_rng(3)))
    assert plan.n_polls == N


def test_ehpp_planning(benchmark, big_tags):
    plan = benchmark(lambda: EHPP().plan(big_tags, np.random.default_rng(4)))
    assert plan.n_polls == N


def test_mic_planning(benchmark, big_tags):
    plan = benchmark(lambda: MIC().plan(big_tags, np.random.default_rng(5)))
    assert plan.n_polls == N


def test_segment_lengths_closed_form(benchmark):
    rng = np.random.default_rng(6)
    idx = np.sort(rng.choice(1 << 17, size=40_000, replace=False))
    lengths = benchmark(lambda: segment_lengths(idx, 17))
    assert lengths.sum() >= 40_000


def test_des_execution_throughput(benchmark):
    tags = uniform_tagset(500, np.random.default_rng(7))
    result = benchmark(
        lambda: simulate(TPP(), tags, info_bits=1, seed=1, keep_trace=False)
    )
    assert result.all_read


SWEEP_GRID = (500, 1_000, 2_000, 4_000)


def test_sweep_engine_serial(benchmark):
    from repro.experiments.runner import SweepRunner

    runner = SweepRunner(jobs=1, cache=None)
    series = benchmark(
        lambda: runner.sweep(HPP(), SWEEP_GRID, n_runs=3, seed=0)
    )
    assert len(series.y) == len(SWEEP_GRID)


def test_sweep_engine_parallel_4(benchmark):
    from repro.experiments.runner import SweepRunner

    runner = SweepRunner(jobs=4, cache=None)
    series = benchmark(
        lambda: runner.sweep(HPP(), SWEEP_GRID, n_runs=3, seed=0)
    )
    assert len(series.y) == len(SWEEP_GRID)
