"""Per-kernel backend profiler: time every registered backend, print
the dispatch table.

This is how a new kernel (or a new backend) earns its place: run

    PYTHONPATH=src python scripts/profile_kernels.py

(or ``repro-rfid kernels``) and compare the backends column by column.
Each kernel is timed on a representative hot-path workload — sized like
one joint round of the paper's n=10k, R-replica sweep cell — with a
warm-up call first so numba's one-off JIT compilation never pollutes a
measurement.  Backends are checked bit-identical on the profiling
workload before timings are reported; a backend that diverges from the
numpy oracle is a bug, not a speedup.
"""

from __future__ import annotations

import argparse
import time
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.kernels import (
    active_backend,
    get_kernel,
    numba_available,
    numba_version,
    registered_kernels,
    use_backend,
)
from repro.phy.timing import PAPER_TIMING

__all__ = ["KernelTiming", "profile_kernels", "format_table", "main"]


@dataclass(frozen=True)
class KernelTiming:
    """One (kernel, backend) measurement."""

    kernel: str
    backend: str
    best_s: float
    speedup: float  # vs the numpy oracle on the same workload
    active: bool  # is this the implementation get_kernel dispatches to?


def _ragged_words(rng: np.random.Generator, n_segments: int,
                  mean_count: int) -> tuple[np.ndarray, ...]:
    counts = rng.integers(0, 2 * mean_count, size=n_segments).astype(np.int64)
    words = rng.integers(0, 1 << 63, size=int(counts.sum()), dtype=np.int64)
    seeds = rng.integers(0, 1 << 63, size=n_segments).astype(np.uint64)
    return words.astype(np.uint64), seeds, counts


def _workloads(scale: float) -> dict[str, tuple[Any, ...]]:
    """Kernel name -> positional args for one representative call."""
    rng = np.random.default_rng(0xBEEF)
    n = max(int(200_000 * scale), 1_000)
    seg = max(int(64 * scale), 4)

    words_flat = rng.integers(0, 1 << 63, size=n, dtype=np.int64)
    words_flat = words_flat.astype(np.uint64)

    rw, rs, rc = _ragged_words(rng, seg, max(n // seg, 1))
    hs = rng.integers(4, 17, size=seg).astype(np.int64)

    # round_draw / circle_join: R replicas of one n=10k population
    pop = max(int(10_000 * scale), 500)
    reps = max(int(32 * scale), 2)
    id_words = rng.integers(0, 1 << 63, size=pop, dtype=np.int64)
    id_words = id_words.astype(np.uint64)
    actives = [
        np.sort(rng.choice(pop, size=rng.integers(pop // 2, pop),
                           replace=False)).astype(np.int64)
        for _ in range(reps)
    ]
    counts = np.fromiter((a.size for a in actives), np.int64, reps)
    flat_active = np.concatenate(actives)
    seeds = rng.integers(0, 1 << 63, size=reps).astype(np.uint64)
    draw_hs = np.fromiter(
        (max(int(c).bit_length(), 1) for c in counts), np.int64, reps
    )
    bases = np.concatenate(([0], np.cumsum(np.int64(1) << draw_hs)))
    fs = rng.integers(0, 1 << 16, size=reps).astype(np.int64)

    m = max(int(20_000 * scale), 100)
    down = np.full(m, 16, dtype=np.int64)
    pattern = rng.random(m) < 0.98
    t = PAPER_TIMING
    reply_us = 16 * t.tag_bit_us
    miss_us = t.t1_us + t.t3_us + t.t2_us

    return {
        "hash_u64": (words_flat, np.uint64(0x12345678)),
        "hash_u64_ragged": (rw, rs, rc),
        "hash_indices_ragged": (rw, rs, hs, rc),
        "hash_mod_ragged": (rw, rs, 10_007, rc),
        "round_draw": (id_words, flat_active, counts, seeds, draw_hs, bases),
        "circle_join": (id_words, flat_active, counts, seeds, 1 << 16, fs),
        "poll_commit": (0.0, down, t.reader_bit_us, t.t1_us, reply_us,
                        t.t2_us, miss_us, pattern),
    }


def _equal(a: Any, b: Any) -> bool:
    if isinstance(a, tuple):
        return len(a) == len(b) and all(_equal(x, y) for x, y in zip(a, b))
    if isinstance(a, np.ndarray):
        return bool(np.array_equal(a, b))
    return a == b


def _best_of(fn: Callable[[], Any], repeats: int) -> tuple[float, Any]:
    out = fn()  # warm-up: JIT compilation happens here, untimed
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def profile_kernels(repeats: int = 5,
                    scale: float = 1.0) -> list[KernelTiming]:
    """Time every registered (kernel, backend) pair; verify parity."""
    table = registered_kernels()
    workloads = _workloads(scale)
    current = active_backend()
    timings: list[KernelTiming] = []
    for kernel, backends in table.items():
        args = workloads.get(kernel)
        if args is None:  # a kernel without a profiling workload yet
            continue
        results: dict[str, tuple[float, Any]] = {}
        for backend in backends:
            with use_backend(backend):
                impl = get_kernel(kernel)
                results[backend] = _best_of(lambda: impl(*args), repeats)
        base_t, base_out = results["numpy"]
        for backend, (best, out) in results.items():
            if not _equal(out, base_out):
                raise AssertionError(
                    f"kernel {kernel!r} backend {backend!r} diverged from "
                    "the numpy oracle on the profiling workload"
                )
            timings.append(KernelTiming(
                kernel=kernel,
                backend=backend,
                best_s=best,
                speedup=base_t / best if best else float("inf"),
                active=backend == current
                or (backend == "numpy" and current not in backends),
            ))
    return timings


def format_table(timings: list[KernelTiming]) -> str:
    lines = [
        f"{'kernel':<22} {'backend':<8} {'best':>10} {'vs numpy':>9}  ",
        "-" * 55,
    ]
    for t in timings:
        mark = "*" if t.active else " "
        lines.append(
            f"{t.kernel:<22} {t.backend:<8} {t.best_s * 1e3:>8.3f}ms "
            f"{t.speedup:>8.2f}x {mark}"
        )
    lines.append("-" * 55)
    lines.append("* = dispatched by the active backend "
                 f"({active_backend()})")
    return "\n".join(lines)


def print_report(repeats: int = 5, scale: float = 1.0,
                 bench: bool = True) -> None:
    """The ``repro-rfid kernels`` / ``scripts/profile_kernels.py`` body."""
    import os

    print(f"REPRO_KERNELS   : {os.environ.get('REPRO_KERNELS', '(unset)')}")
    print(f"active backend  : {active_backend()}")
    nv = numba_version() or ("not installed (numpy oracle only; "
                             "pip install repro[fast])")
    print(f"numba           : {nv}")
    print("registered kernels:")
    for kernel, backends in registered_kernels().items():
        print(f"  {kernel:<22} {', '.join(backends)}")
    if bench:
        print()
        print(format_table(profile_kernels(repeats=repeats, scale=scale)))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Time all registered kernel backends and print the "
                    "dispatch table",
    )
    parser.add_argument("--repeats", type=int, default=5,
                        help="timed repetitions per backend (best-of)")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload scale factor (0.1 = quick smoke)")
    parser.add_argument("--no-bench", action="store_true",
                        help="print the dispatch table only, no timings")
    args = parser.parse_args(argv)
    print_report(repeats=args.repeats, scale=args.scale,
                 bench=not args.no_bench)
    return 0
