"""Numpy implementations of the hot-path kernels — the bit-exactness
oracle.

These are the bodies the pre-kernel code ran inline in
``hashing/universal.py``, ``core/rounds.py``, ``core/ehpp.py`` and
``sim/batch.py``, moved behind the registry unchanged: every other
backend is tested bit-identical against *these* functions, so edits
here are edits to the contract (and invalidate the sweep cache via
``cache_version()``, which fingerprints this package).

Input conventions (normalised by the dispatching call sites, trusted
here): identity words are ``uint64``, tag indices / counts / index
lengths are ``int64``, seeds arrive pre-converted as a ``uint64`` array,
and ``counts.sum()`` equals the flat payload length.
"""

from __future__ import annotations

import numpy as np

from repro.kernels import register

_MASK64 = np.uint64(0xFFFFFFFFFFFFFFFF)
_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
_SHIFT30 = np.uint64(30)
_SHIFT27 = np.uint64(27)
_SHIFT31 = np.uint64(31)


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """Elementwise splitmix64 over a *private* uint64 temporary.

    First op copies (callers keep their array); the rest mutate the
    copy in place — same wrap-around arithmetic, half the temporaries.
    """
    z = x + _GOLDEN
    z ^= z >> _SHIFT30
    z *= _MIX1
    z ^= z >> _SHIFT27
    z *= _MIX2
    z ^= z >> _SHIFT31
    return z


def _residues(hashed: np.ndarray, modulus: int) -> np.ndarray:
    """``hashed % modulus`` with a mask fast path for powers of two.

    ``hashed`` is the hash's own fresh temporary, so the mask is applied
    in place.
    """
    if modulus & (modulus - 1) == 0:
        hashed &= np.uint64(modulus - 1)
        return hashed
    return hashed % np.uint64(modulus)


def _as_int64(values: np.ndarray, modulus: int) -> np.ndarray:
    """Residues -> int64: a free reinterpretation when they fit int63."""
    if modulus <= (1 << 63):
        return values.view(np.int64)
    return values.astype(np.int64)  # pragma: no cover - 2^63 < modulus


# ----------------------------------------------------------------------
# elementwise and ragged hashing
# ----------------------------------------------------------------------
@register("hash_u64", "numpy")
def hash_u64(words: np.ndarray, mixed_seed: np.uint64) -> np.ndarray:
    """Full 64-bit hash of each identity word under a pre-mixed seed."""
    return _splitmix64(words ^ mixed_seed)


@register("hash_u64_ragged", "numpy")
def hash_u64_ragged(
    words: np.ndarray, seeds: np.ndarray, counts: np.ndarray
) -> np.ndarray:
    """Hash a flattened ragged batch: segment ``i`` is ``counts[i]``
    consecutive words hashed under ``seeds[i]``."""
    mixed = _splitmix64(seeds)
    return _splitmix64(words ^ np.repeat(mixed, counts))


@register("hash_indices_ragged", "numpy")
def hash_indices_ragged(
    words: np.ndarray, seeds: np.ndarray, hs: np.ndarray, counts: np.ndarray
) -> np.ndarray:
    """Ragged ``H(r, id) mod 2**h`` with per-segment ``h`` (int64 out)."""
    masks = ((np.int64(1) << hs) - 1).astype(np.uint64)
    hashed = hash_u64_ragged(words, seeds, counts)
    hashed &= np.repeat(masks, counts)
    return hashed.view(np.int64)


@register("hash_mod_ragged", "numpy")
def hash_mod_ragged(
    words: np.ndarray, seeds: np.ndarray, modulus: int, counts: np.ndarray
) -> np.ndarray:
    """Ragged ``H(r, id) mod modulus`` (one shared modulus, int64 out)."""
    residues = _residues(hash_u64_ragged(words, seeds, counts), modulus)
    return _as_int64(residues, modulus)


# ----------------------------------------------------------------------
# the fused ragged round draw (hash + offset bincount + singleton sift)
# ----------------------------------------------------------------------
@register("round_draw", "numpy")
def round_draw(
    id_words: np.ndarray,
    flat_active: np.ndarray,
    counts: np.ndarray,
    seeds: np.ndarray,
    hs: np.ndarray,
    bases: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Joint singleton/collision classification over R ragged segments.

    Segment ``r``'s indices are shifted into the disjoint range
    ``[bases[r], bases[r+1])`` so one ``bincount`` partitions the whole
    count space; distinct singleton indices come out of the count array
    already sorted — no argsort — and a scatter/gather recovers the
    aligned tags.  Returns ``(sing_bounds, sorted_singletons,
    sorted_tags, rem_bounds, remaining_flat)``; ``flat_active`` is
    non-empty (the caller short-circuits the empty batch).
    """
    idx = hash_indices_ragged(id_words[flat_active], seeds, hs, counts)
    shifted = idx
    shifted += np.repeat(bases[:-1], counts)  # idx is a private temporary
    space = int(bases[-1])
    index_count = np.bincount(shifted, minlength=space)
    is_singleton = index_count[shifted] == 1
    sorted_singletons = np.flatnonzero(index_count == 1)
    tag_of_index = np.empty(space, dtype=np.int64)
    tag_of_index[shifted[is_singleton]] = flat_active[is_singleton]
    sorted_tags = tag_of_index[sorted_singletons]

    sing_bounds = np.searchsorted(sorted_singletons, bases)
    remaining_flat = flat_active[~is_singleton]
    rem_counts = counts - np.diff(sing_bounds)
    rem_bounds = np.concatenate(([0], np.cumsum(rem_counts)))
    return sing_bounds, sorted_singletons, sorted_tags, rem_bounds, \
        remaining_flat


# ----------------------------------------------------------------------
# EHPP circle join (hash mod F + threshold partition)
# ----------------------------------------------------------------------
@register("circle_join", "numpy")
def circle_join(
    id_words: np.ndarray,
    flat_rem: np.ndarray,
    counts: np.ndarray,
    seeds: np.ndarray,
    modulus: int,
    fs: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Partition R circles' remaining tags into joiners and keepers.

    Segment ``r`` joins iff ``H(seeds[r], ID) mod modulus <= fs[r]``.
    Returns ``(joined_flat, kept_flat, join_bounds)`` where
    ``join_bounds[r]`` is the cumulative joiner count at segment ``r``'s
    start (length R+1), all in stable flat order.
    """
    sel = hash_mod_ragged(id_words[flat_rem], seeds, modulus, counts)
    jmask = sel <= np.repeat(fs, counts)
    joined_flat = flat_rem[jmask]
    kept_flat = flat_rem[~jmask]
    cb = np.concatenate(([0], np.cumsum(counts)))
    join_bounds = np.concatenate(
        ([0], np.cumsum(jmask, dtype=np.int64))
    )[cb]
    return joined_flat, kept_flat, join_bounds


# ----------------------------------------------------------------------
# DES span commit (the poll clock fold)
# ----------------------------------------------------------------------
@register("poll_commit", "numpy")
def poll_commit(
    now_us: float,
    down: np.ndarray,
    reader_bit_us: float,
    t1_us: float,
    reply_us: float,
    t2_us: float,
    miss_us: float,
    pattern: np.ndarray | None,
) -> tuple[float, int, int]:
    """Fold a committed poll span into the DES clock.

    Per poll: downlink TX (``down[j] * reader_bit_us``), the T1
    turnaround, the tag reply, the T2 turnaround — or, for a poll whose
    tag times out into a missing verdict (``pattern[j]`` False), the
    single ``miss_us`` wait.  The deltas fold strictly left-to-right
    (one ``cumsum``), reproducing the sequential ``_advance`` chain's
    float arithmetic exactly.  Returns ``(new_now_us, n_read,
    downlink_bits)``.
    """
    count = down.size
    tx = down * reader_bit_us
    if pattern is None:
        deltas = np.empty(5 * count + 1, dtype=np.float64)
        deltas[0] = now_us
        deltas[1::5] = tx
        deltas[2::5] = t1_us
        deltas[3::5] = reply_us
        deltas[4::5] = t2_us
        deltas[5::5] = 0.0  # the TAG_READ zero-advance
        n_read = count
    else:
        n_read = int(np.count_nonzero(pattern))
        lens = np.where(pattern, 5, 2)
        ends = np.cumsum(lens)
        starts = ends - lens + 1
        total = int(ends[-1]) if count else 0
        deltas = np.zeros(total + 1, dtype=np.float64)
        deltas[0] = now_us
        hit = starts[pattern]
        deltas[hit] = tx[pattern]
        deltas[hit + 1] = t1_us
        deltas[hit + 2] = reply_us
        deltas[hit + 3] = t2_us
        miss = starts[~pattern]
        deltas[miss] = tx[~pattern]
        deltas[miss + 1] = miss_us
    return float(np.cumsum(deltas)[-1]), n_read, int(down.sum())
