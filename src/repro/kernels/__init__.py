"""Backend-dispatch registry for the hot-path kernels.

The vectorization campaign put every layer on columnar numpy paths, and
the bench now shows numpy itself as the ceiling: the fused ragged round
draw, EHPP's circle join, and the DES span commit dominate batched
planning and execution.  This package keeps the numpy implementations
as the **bit-exactness oracle** and lets a Numba-JIT backend replace
them behind one interface:

- :func:`register` — backends register one callable per
  ``(kernel name, backend name)``.  The numpy implementations live in
  :mod:`repro.kernels.numpy_kernels`, the ``@njit`` ones in
  :mod:`repro.kernels.numba_kernels` (imported only when selected, so
  numba is never a hard dependency — it ships as the ``fast`` extra:
  ``pip install .[fast]``).
- :func:`get_kernel` — hot call sites fetch the active backend's
  implementation; kernels without an implementation for the active
  backend silently fall back to the numpy oracle.
- ``REPRO_KERNELS=auto|numpy|numba`` selects the backend.  ``auto``
  (the default) uses numba when it is importable and numpy otherwise;
  ``numba`` fails loudly when numba is missing rather than silently
  degrading a benchmark.

Every backend must be **bit-identical** to the numpy oracle (uint64
hashes, int64 indices, float64 DES clocks fold in the same order), so
swapping backends can never change a planned schedule, a DES counter,
or a sweep-cache key — ``tests/test_kernels.py`` pins that parity and
``cache_version()`` stays backend-agnostic by construction.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from importlib import import_module
from importlib.util import find_spec
from typing import Any, Callable, Iterator

__all__ = [
    "register",
    "get_kernel",
    "registered_kernels",
    "available_backends",
    "active_backend",
    "resolve_backend",
    "set_backend",
    "use_backend",
    "warmup",
    "numba_available",
    "numba_version",
    "KernelBackendError",
]

#: backend load order; "numpy" is the oracle every kernel must provide
BACKENDS = ("numpy", "numba")

#: module that implements each backend's kernels
_BACKEND_MODULES = {
    "numpy": "repro.kernels.numpy_kernels",
    "numba": "repro.kernels.numba_kernels",
}

#: kernel name -> backend name -> implementation
_registry: dict[str, dict[str, Callable[..., Any]]] = {}
#: resolved kernel name -> implementation for the active backend
_table: dict[str, Callable[..., Any]] | None = None
#: memoised env-var resolution (None = not resolved yet)
_active: str | None = None
#: programmatic override (tests, profiling); wins over the env var
_override: str | None = None
_loaded: set[str] = set()


class KernelBackendError(RuntimeError):
    """An explicitly requested kernel backend cannot be used."""


def numba_available() -> bool:
    """Is numba importable (without importing it)?"""
    return find_spec("numba") is not None


def numba_version() -> str | None:
    """The installed numba version, or ``None`` when not installed."""
    if not numba_available():
        return None
    import numba  # noqa: PLC0415 - deliberate lazy import

    return getattr(numba, "__version__", "unknown")


def register(name: str, backend: str) -> Callable[[Callable], Callable]:
    """Class the decorated callable as kernel ``name`` on ``backend``."""
    if backend not in BACKENDS:
        raise ValueError(f"unknown kernel backend {backend!r}")

    def decorator(fn: Callable) -> Callable:
        _registry.setdefault(name, {})[backend] = fn
        return fn

    return decorator


def resolve_backend(choice: str | None = None) -> str:
    """Resolve a backend request to a concrete backend name.

    ``choice=None`` reads ``REPRO_KERNELS`` (default ``auto``).  ``auto``
    picks numba when importable, else numpy; an explicit ``numba``
    raises :class:`KernelBackendError` when numba is missing.
    """
    if choice is None:
        choice = os.environ.get("REPRO_KERNELS", "auto")
    choice = choice.strip().lower() or "auto"
    if choice == "auto":
        return "numba" if numba_available() else "numpy"
    if choice not in BACKENDS:
        raise KernelBackendError(
            f"REPRO_KERNELS={choice!r}: expected auto, numpy or numba"
        )
    if choice == "numba" and not numba_available():
        raise KernelBackendError(
            "REPRO_KERNELS=numba but numba is not installed "
            "(pip install repro[fast] or unset REPRO_KERNELS)"
        )
    return choice


def active_backend() -> str:
    """The backend kernels dispatch to right now."""
    global _active
    if _override is not None:
        return _override
    if _active is None:
        _active = resolve_backend()
    return _active


def available_backends() -> tuple[str, ...]:
    """Backends usable in this environment (numpy always; numba if
    importable)."""
    return BACKENDS if numba_available() else ("numpy",)


def set_backend(name: str | None) -> None:
    """Override the env-var backend selection (``None`` removes the
    override and re-reads ``REPRO_KERNELS`` on the next dispatch)."""
    global _override, _active, _table
    _override = None if name is None else resolve_backend(name)
    _active = None
    _table = None


@contextmanager
def use_backend(name: str) -> Iterator[str]:
    """Temporarily dispatch to ``name`` (tests and profiling)."""
    global _override, _active, _table
    previous = _override
    set_backend(name)
    try:
        yield active_backend()
    finally:
        _override = previous
        _active = None
        _table = None


def _load_backend(backend: str) -> None:
    """Import a backend module so its kernels register (idempotent)."""
    if backend in _loaded:
        return
    import_module(_BACKEND_MODULES[backend])
    _loaded.add(backend)


def _build_table() -> dict[str, Callable[..., Any]]:
    backend = active_backend()
    _load_backend("numpy")
    if backend != "numpy":
        _load_backend(backend)
    table = {}
    for name, impls in _registry.items():
        # kernels are allowed to lack a compiled implementation; the
        # numpy oracle is the mandatory fallback
        table[name] = impls.get(backend, impls["numpy"])
    return table


def get_kernel(name: str) -> Callable[..., Any]:
    """The active backend's implementation of kernel ``name``."""
    global _table
    table = _table
    if table is None:
        table = _table = _build_table()
    return table[name]


_warmed: set[str] = set()


def warmup(scale: float = 0.005) -> str:
    """Run every registered kernel once on a tiny workload.

    The worker-pool birth hook: under the numba backend the first call
    to each kernel pays JIT compilation (or ``cache=True`` disk load) —
    paying it here, once per worker process, keeps it out of the first
    sweep shard's measured wall time (which feeds the cost model).
    Under numpy it is a sub-millisecond no-op.  Returns the backend
    that was warmed; repeated calls for the same backend are free.
    """
    backend = active_backend()
    if backend in _warmed:
        return backend
    from repro.kernels.profile import _workloads

    for name, args in _workloads(scale).items():
        try:
            impl = get_kernel(name)
        except KeyError:  # pragma: no cover - workload without a kernel
            continue
        impl(*args)
    _warmed.add(backend)
    return backend


def registered_kernels() -> dict[str, tuple[str, ...]]:
    """Kernel name -> backends that implement it (loads every available
    backend so the listing is complete)."""
    _load_backend("numpy")
    if numba_available():
        _load_backend("numba")
    return {
        name: tuple(b for b in BACKENDS if b in impls)
        for name, impls in sorted(_registry.items())
    }
