"""Numba-JIT implementations of the hot-path kernels.

Imported only when the resolved backend is ``numba`` (see
:mod:`repro.kernels`); the import fails fast when numba is missing, so
this module must never be imported unconditionally.

Every kernel here is pinned **bit-identical** to the numpy oracle in
:mod:`repro.kernels.numpy_kernels`:

- integer work is fixed-width uint64/int64 with the same wrap-around
  arithmetic (every splitmix64 constant below is a ``np.uint64`` so no
  operand ever promotes);
- float work folds strictly left-to-right, reproducing ``np.cumsum``'s
  sequential accumulation (no fastmath, no reassociation);
- outputs carry the same dtypes as the oracle (uint64 hashes, int64
  indices and bounds, float64 clocks).

What the JIT buys over numpy is *fusion*: the ragged round draw runs
gather + seed mix + word mix + mask + offset bincount in one pass with
zero intermediate temporaries, and the singleton sift reads the count
array once instead of four full-array passes.  The functions registered
with the dispatcher are thin Python wrappers so argument normalisation
(and the ``pattern is None`` split) stays out of compiled code.
"""

from __future__ import annotations

import numpy as np
from numba import njit

from repro.kernels import register

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
_S30 = np.uint64(30)
_S27 = np.uint64(27)
_S31 = np.uint64(31)
_U1 = np.uint64(1)


@njit(cache=True, inline="always")
def _mix(z):
    """splitmix64 finaliser on one uint64 (wraps mod 2^64)."""
    z = z + _GOLDEN
    z ^= z >> _S30
    z *= _MIX1
    z ^= z >> _S27
    z *= _MIX2
    z ^= z >> _S31
    return z


# ----------------------------------------------------------------------
# elementwise and ragged hashing
# ----------------------------------------------------------------------
@njit(cache=True)
def _hash_u64(words, mixed_seed, out):
    for i in range(words.shape[0]):
        out[i] = _mix(words[i] ^ mixed_seed)


@register("hash_u64", "numba")
def hash_u64(words: np.ndarray, mixed_seed: np.uint64) -> np.ndarray:
    out = np.empty(words.shape[0], dtype=np.uint64)
    _hash_u64(words, mixed_seed, out)
    return out


@njit(cache=True)
def _hash_u64_ragged(words, seeds, counts, out):
    pos = 0
    for r in range(seeds.shape[0]):
        mseed = _mix(seeds[r])
        for _ in range(counts[r]):
            out[pos] = _mix(words[pos] ^ mseed)
            pos += 1


@register("hash_u64_ragged", "numba")
def hash_u64_ragged(
    words: np.ndarray, seeds: np.ndarray, counts: np.ndarray
) -> np.ndarray:
    out = np.empty(words.shape[0], dtype=np.uint64)
    _hash_u64_ragged(words, seeds, counts, out)
    return out


@njit(cache=True)
def _hash_indices_ragged(words, seeds, hs, counts, out):
    pos = 0
    for r in range(seeds.shape[0]):
        mseed = _mix(seeds[r])
        mask = (_U1 << np.uint64(hs[r])) - _U1
        for _ in range(counts[r]):
            out[pos] = np.int64(_mix(words[pos] ^ mseed) & mask)
            pos += 1


@register("hash_indices_ragged", "numba")
def hash_indices_ragged(
    words: np.ndarray, seeds: np.ndarray, hs: np.ndarray, counts: np.ndarray
) -> np.ndarray:
    out = np.empty(words.shape[0], dtype=np.int64)
    _hash_indices_ragged(words, seeds, hs, counts, out)
    return out


@njit(cache=True)
def _hash_mod_ragged(words, seeds, modulus, pow2, mask, counts, out):
    pos = 0
    for r in range(seeds.shape[0]):
        mseed = _mix(seeds[r])
        if pow2:
            for _ in range(counts[r]):
                out[pos] = np.int64(_mix(words[pos] ^ mseed) & mask)
                pos += 1
        else:
            for _ in range(counts[r]):
                out[pos] = np.int64(_mix(words[pos] ^ mseed) % modulus)
                pos += 1


@register("hash_mod_ragged", "numba")
def hash_mod_ragged(
    words: np.ndarray, seeds: np.ndarray, modulus: int, counts: np.ndarray
) -> np.ndarray:
    out = np.empty(words.shape[0], dtype=np.int64)
    pow2 = modulus & (modulus - 1) == 0
    mask = np.uint64(modulus - 1) if pow2 else np.uint64(0)
    _hash_mod_ragged(
        words, seeds, np.uint64(modulus), pow2, mask, counts, out
    )
    return out


# ----------------------------------------------------------------------
# the fused ragged round draw
# ----------------------------------------------------------------------
@njit(cache=True)
def _round_draw(id_words, flat_active, counts, seeds, hs, bases):
    n_rep = counts.shape[0]
    total = flat_active.shape[0]
    space = bases[n_rep]
    shifted = np.empty(total, dtype=np.int64)
    index_count = np.zeros(space, dtype=np.int64)
    pos = 0
    for r in range(n_rep):
        mseed = _mix(seeds[r])
        mask = (_U1 << np.uint64(hs[r])) - _U1
        base = bases[r]
        for _ in range(counts[r]):
            v = np.int64(
                _mix(id_words[flat_active[pos]] ^ mseed) & mask
            ) + base
            shifted[pos] = v
            index_count[v] += 1
            pos += 1

    # owners of singleton indices (scatter; collision owners irrelevant)
    owner = np.empty(space, dtype=np.int64)
    n_sing = 0
    for i in range(total):
        v = shifted[i]
        if index_count[v] == 1:
            owner[v] = flat_active[i]
            n_sing += 1

    # ascending scan of the count space: distinct singleton indices come
    # out already sorted, and the replica bounds fall out of the bases
    sorted_singletons = np.empty(n_sing, dtype=np.int64)
    sorted_tags = np.empty(n_sing, dtype=np.int64)
    sing_bounds = np.empty(n_rep + 1, dtype=np.int64)
    k = 0
    r_ptr = 0
    for v in range(space):
        while r_ptr <= n_rep and bases[r_ptr] == v:
            sing_bounds[r_ptr] = k
            r_ptr += 1
        if index_count[v] == 1:
            sorted_singletons[k] = v
            sorted_tags[k] = owner[v]
            k += 1
    while r_ptr <= n_rep:  # trailing bases at the end of the space
        sing_bounds[r_ptr] = k
        r_ptr += 1

    remaining_flat = np.empty(total - n_sing, dtype=np.int64)
    m = 0
    for i in range(total):
        if index_count[shifted[i]] != 1:
            remaining_flat[m] = flat_active[i]
            m += 1
    rem_bounds = np.empty(n_rep + 1, dtype=np.int64)
    rem_bounds[0] = 0
    for r in range(n_rep):
        seg_sing = sing_bounds[r + 1] - sing_bounds[r]
        rem_bounds[r + 1] = rem_bounds[r] + counts[r] - seg_sing
    return sing_bounds, sorted_singletons, sorted_tags, rem_bounds, \
        remaining_flat


@register("round_draw", "numba")
def round_draw(
    id_words: np.ndarray,
    flat_active: np.ndarray,
    counts: np.ndarray,
    seeds: np.ndarray,
    hs: np.ndarray,
    bases: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    return _round_draw(id_words, flat_active, counts, seeds, hs, bases)


# ----------------------------------------------------------------------
# EHPP circle join
# ----------------------------------------------------------------------
@njit(cache=True)
def _circle_join(id_words, flat_rem, counts, seeds, modulus, pow2, mask, fs):
    n_rep = counts.shape[0]
    total = flat_rem.shape[0]
    joined = np.empty(total, dtype=np.int64)
    kept = np.empty(total, dtype=np.int64)
    join_bounds = np.empty(n_rep + 1, dtype=np.int64)
    join_bounds[0] = 0
    nj = 0
    nk = 0
    pos = 0
    for r in range(n_rep):
        mseed = _mix(seeds[r])
        f = fs[r]
        for _ in range(counts[r]):
            w = _mix(id_words[flat_rem[pos]] ^ mseed)
            sel = np.int64(w & mask) if pow2 else np.int64(w % modulus)
            if sel <= f:
                joined[nj] = flat_rem[pos]
                nj += 1
            else:
                kept[nk] = flat_rem[pos]
                nk += 1
            pos += 1
        join_bounds[r + 1] = nj
    return joined[:nj], kept[:nk], join_bounds


@register("circle_join", "numba")
def circle_join(
    id_words: np.ndarray,
    flat_rem: np.ndarray,
    counts: np.ndarray,
    seeds: np.ndarray,
    modulus: int,
    fs: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    pow2 = modulus & (modulus - 1) == 0
    mask = np.uint64(modulus - 1) if pow2 else np.uint64(0)
    return _circle_join(
        id_words, flat_rem, counts, seeds, np.uint64(modulus), pow2, mask, fs
    )


# ----------------------------------------------------------------------
# DES span commit
# ----------------------------------------------------------------------
@njit(cache=True)
def _poll_commit_clean(now_us, down, bit_us, t1_us, reply_us, t2_us):
    acc = now_us
    bits = np.int64(0)
    for j in range(down.shape[0]):
        # same left-to-right fold as the oracle's cumsum over the
        # interleaved delta array (the TAG_READ zero-advance adds
        # +0.0 to a non-negative clock: bit-identical, skipped)
        acc = acc + down[j] * bit_us
        acc = acc + t1_us
        acc = acc + reply_us
        acc = acc + t2_us
        bits += down[j]
    return acc, bits


@njit(cache=True)
def _poll_commit_mixed(now_us, down, bit_us, t1_us, reply_us, t2_us,
                       miss_us, pattern):
    acc = now_us
    bits = np.int64(0)
    n_read = 0
    for j in range(down.shape[0]):
        acc = acc + down[j] * bit_us
        if pattern[j]:
            acc = acc + t1_us
            acc = acc + reply_us
            acc = acc + t2_us
            n_read += 1
        else:
            acc = acc + miss_us
        bits += down[j]
    return acc, n_read, bits


@register("poll_commit", "numba")
def poll_commit(
    now_us: float,
    down: np.ndarray,
    reader_bit_us: float,
    t1_us: float,
    reply_us: float,
    t2_us: float,
    miss_us: float,
    pattern: np.ndarray | None,
) -> tuple[float, int, int]:
    if pattern is None:
        acc, bits = _poll_commit_clean(
            now_us, down, reader_bit_us, t1_us, reply_us, t2_us
        )
        return float(acc), int(down.size), int(bits)
    acc, n_read, bits = _poll_commit_mixed(
        now_us, down, reader_bit_us, t1_us, reply_us, t2_us, miss_us, pattern
    )
    return float(acc), int(n_read), int(bits)
