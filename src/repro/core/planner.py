"""Index-length policies — how long should a round's hash index be?

Two policies appear in the paper:

- **HPP** (§III-B): the smallest power of two covering the unread tags,
  ``2**(h-1) < n <= 2**h``, i.e. a load factor λ = n/2^h in (0.5, 1].
- **TPP** (§IV-D, eq. 15): the ``h`` that maximises the singleton
  probability µ = λ·e^{-λ} over integers, which lands the load factor in
  ``[ln 2, 2 ln 2)`` — the tree protocol prefers λ ≈ ln 2 because the
  wire cost is tree *nodes*, not raw index bits.

Both are exposed as pure functions plus small strategy objects so the
ablation benchmarks can swap policies between protocols.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "hpp_index_length",
    "tpp_index_length",
    "IndexLengthPolicy",
    "CoveringPolicy",
    "SingletonMaxPolicy",
    "FixedLoadPolicy",
]

_LN2 = math.log(2.0)
_MAX_H = 62  # indices are int64 on the wire-model side


def hpp_index_length(n_unread: int) -> int:
    """HPP's policy: smallest ``h`` with ``n <= 2**h`` (and ``h >= 1``).

    >>> hpp_index_length(4)
    2
    >>> hpp_index_length(5)
    3
    """
    if n_unread < 1:
        raise ValueError("n_unread must be positive")
    return min(max(1, math.ceil(math.log2(n_unread))), _MAX_H)


def tpp_index_length(n_unread: int) -> int:
    """TPP's policy (eq. 15): the integer ``h`` with λ = n/2^h ∈ [ln2, 2·ln2).

    Derivation: µ(λ) = λe^{-λ} is maximised over the feasible integer
    grid exactly when λ ∈ [ln 2, 2 ln 2) (paper eq. 13–15).

    >>> import math
    >>> h = tpp_index_length(1000)
    >>> math.log(2) <= 1000 / 2**h < 2 * math.log(2)
    True
    """
    if n_unread < 1:
        raise ValueError("n_unread must be positive")
    # ln2 <= n / 2^h  < 2 ln2   <=>   log2(n / (2 ln2)) < h <= log2(n / ln2)
    h = math.floor(math.log2(n_unread / _LN2))
    # guard float edges: enforce the defining inequality explicitly
    while h > 1 and n_unread / (1 << h) < _LN2:
        h -= 1
    while h < _MAX_H and n_unread / (1 << h) >= 2 * _LN2:
        h += 1
    return min(max(1, h), _MAX_H)


_THRESHOLD_TABLES: dict = {}


def _policy_thresholds(fn) -> np.ndarray:
    """``t[h-2] = min{n : fn(n) >= h}`` for ``h`` in 2..62, by bisection.

    Both paper policies are monotone non-decreasing in ``n`` (their load
    factor bands are ordered disjoint intervals), so the vectorised
    lookup ``1 + searchsorted(t, n, 'right')`` is *exactly* the scalar
    policy — the table is built from the scalar function itself, no
    float re-derivation involved.
    """
    thresholds = []
    for h in range(2, _MAX_H + 1):
        lo, hi = 1, 1 << 63
        while lo < hi:
            mid = (lo + hi) // 2
            if fn(mid) >= h:
                hi = mid
            else:
                lo = mid + 1
        thresholds.append(lo)
    return np.asarray(thresholds, dtype=np.int64)


def _batch_via_thresholds(fn, sizes: np.ndarray) -> np.ndarray:
    table = _THRESHOLD_TABLES.get(fn)
    if table is None:
        table = _THRESHOLD_TABLES[fn] = _policy_thresholds(fn)
    sizes = np.asarray(sizes, dtype=np.int64)
    if sizes.size and int(sizes.min()) < 1:
        raise ValueError("n_unread must be positive")
    return 1 + np.searchsorted(table, sizes, side="right")


class IndexLengthPolicy:
    """Strategy interface: pick the round index length from ``n_unread``."""

    name = "abstract"

    def __call__(self, n_unread: int) -> int:  # pragma: no cover - interface
        raise NotImplementedError

    def batch(self, sizes: np.ndarray) -> np.ndarray:
        """Vectorised ``[self(n) for n in sizes]`` (int64 in/out).

        Subclass contract: element-for-element equal to the scalar call
        — the replica-axis planners rely on this for bit-identical
        plans.  The base implementation simply loops; the paper's two
        policies override it with an exact table lookup.
        """
        sizes = np.asarray(sizes, dtype=np.int64)
        return np.fromiter(
            (self(n) for n in sizes.tolist()), np.int64, sizes.size
        )


@dataclass(frozen=True)
class CoveringPolicy(IndexLengthPolicy):
    """HPP's covering policy, λ ∈ (0.5, 1]."""

    name: str = "covering"

    def __call__(self, n_unread: int) -> int:
        return hpp_index_length(n_unread)

    def batch(self, sizes: np.ndarray) -> np.ndarray:
        return _batch_via_thresholds(hpp_index_length, sizes)


@dataclass(frozen=True)
class SingletonMaxPolicy(IndexLengthPolicy):
    """TPP's singleton-maximising policy, λ ∈ [ln2, 2·ln2)."""

    name: str = "singleton-max"

    def __call__(self, n_unread: int) -> int:
        return tpp_index_length(n_unread)

    def batch(self, sizes: np.ndarray) -> np.ndarray:
        return _batch_via_thresholds(tpp_index_length, sizes)


@dataclass(frozen=True)
class FixedLoadPolicy(IndexLengthPolicy):
    """Ablation policy: target an arbitrary load factor λ* = n/2^h.

    Picks the integer ``h`` whose load factor is closest to ``target`` in
    log space.
    """

    target: float = 1.0
    name: str = "fixed-load"

    def __post_init__(self) -> None:
        if not 0 < self.target:
            raise ValueError("target load factor must be positive")

    def __call__(self, n_unread: int) -> int:
        if n_unread < 1:
            raise ValueError("n_unread must be positive")
        exact = math.log2(max(n_unread / self.target, 1.0))
        candidates = {max(1, math.floor(exact)), max(1, math.ceil(exact))}
        best = min(
            candidates,
            key=lambda h: abs(math.log(n_unread / (1 << h)) - math.log(self.target)),
        )
        return min(best, _MAX_H)
