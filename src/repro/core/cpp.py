"""Conventional Polling Protocol (CPP) and its prefix-masking variant.

CPP (paper §II-B) is the baseline every improvement is measured against:
the reader broadcasts each tag's full 96-bit EPC and waits for that tag's
reply — a 96-bit polling vector per tag, no framing command.

The *enhanced* CPP exploits ID structure when it exists: if all tags (or
each category of tags) share an ID prefix, the reader broadcasts the
prefix once per group in a Select-style mask and then polls each group
member with only the differential suffix bits.  The paper notes this
"relies on the specific distribution of tag IDs" — with a 32-bit shared
category ID the vector is still ≥ 64 bits, far from efficient; our
implementation quantifies exactly that on clustered populations.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import InterrogationPlan, PollingProtocol, RoundPlan
from repro.phy.commands import DEFAULT_COMMAND_SIZES, EPC_ID_BITS, CommandSizes
from repro.phy.schedule import ScheduleBatch, build_schedule_batch
from repro.workloads.tagsets import TagSet

__all__ = ["CPP", "EnhancedCPP"]


class CPP(PollingProtocol):
    """Conventional polling: one bare 96-bit ID broadcast per tag."""

    name = "CPP"

    def __init__(self, id_bits: int = EPC_ID_BITS, shuffle: bool = True):
        if id_bits <= 0:
            raise ValueError("id_bits must be positive")
        self.id_bits = id_bits
        #: poll tags in random order (matches a reader walking its
        #: inventory list in no particular order); disable for
        #: deterministic traces in tests.
        self.shuffle = shuffle

    def plan(self, tags: TagSet, rng: np.random.Generator) -> InterrogationPlan:
        n = len(tags)
        order = np.arange(n, dtype=np.int64)
        if self.shuffle and n > 1:
            rng.shuffle(order)
        round_plan = RoundPlan(
            label="cpp",
            init_bits=0,
            poll_vector_bits=np.full(n, self.id_bits, dtype=np.int64),
            poll_tag_idx=order,
            poll_overhead_bits=0,  # CPP broadcasts the raw ID, unframed
        )
        return InterrogationPlan(
            protocol=self.name,
            n_tags=n,
            rounds=[round_plan],
            meta={"id_bits": self.id_bits},
        )

    def plan_schedule_batch(
        self,
        tags_list: list[TagSet],
        rngs: list[np.random.Generator],
        reply_bits: int = 1,
    ) -> ScheduleBatch:
        """Plan R runs jointly; bit-identical to R ``plan`` calls.

        CPP's only randomness is the polling order, so each replica
        draws its shuffle from its own generator and everything else —
        the single round, the uniform ``id_bits`` payload — is assembled
        once for the whole batch.
        """
        n_per = [len(t) for t in tags_list]
        tag_bases = np.concatenate(
            ([0], np.cumsum(np.asarray(n_per, dtype=np.int64)))
        )[:-1]
        sinks: list[list] = []
        for n, base, rng in zip(n_per, tag_bases.tolist(), rngs):
            order = np.arange(n, dtype=np.int64)
            if self.shuffle and n > 1:
                rng.shuffle(order)
            sinks.append([(0, self.id_bits, order + base)])
        return build_schedule_batch(
            self.name,
            np.asarray(n_per, dtype=np.int64),
            sinks,
            tag_bases,
            reply_bits,
            poll_overhead_bits=0,
            run_metas=[{"id_bits": self.id_bits} for _ in tags_list],
        )


class EnhancedCPP(PollingProtocol):
    """Prefix-masking CPP (paper §II-B).

    Groups tags by their top ``category_bits`` ID bits; per group the
    reader broadcasts one Select mask carrying the shared prefix, then
    polls each member with the remaining ``96 - category_bits``
    differential bits.  Degenerates to (slightly worse than) CPP when IDs
    share no structure, and caps the per-tag vector at 64 bits for a
    32-bit category — exactly the paper's criticism.
    """

    name = "eCPP"

    def __init__(
        self,
        category_bits: int = 32,
        id_bits: int = EPC_ID_BITS,
        commands: CommandSizes = DEFAULT_COMMAND_SIZES,
    ):
        if not 0 < category_bits < id_bits:
            raise ValueError("category_bits must be in (0, id_bits)")
        self.category_bits = category_bits
        self.id_bits = id_bits
        self.commands = commands

    def plan(self, tags: TagSet, rng: np.random.Generator) -> InterrogationPlan:
        n = len(tags)
        if n == 0:
            return InterrogationPlan(protocol=self.name, n_tags=0, rounds=[])
        # top `category_bits` of the 96-bit ID live in id_hi (32 bits)
        # and possibly spill into id_lo for category_bits > 32.
        hi_bits = EPC_ID_BITS - 64
        if self.category_bits <= hi_bits:
            shift = np.uint64(hi_bits - self.category_bits)
            keys = (tags.id_hi >> shift).astype(np.int64)
        else:
            spill = self.category_bits - hi_bits
            keys_hi = tags.id_hi.astype(np.int64) << np.int64(spill)
            keys_lo = (tags.id_lo >> np.uint64(64 - spill)).astype(np.int64)
            keys = keys_hi | keys_lo

        suffix_bits = self.id_bits - self.category_bits
        mask_bits = self.commands.select_bits(self.category_bits)

        rounds: list[RoundPlan] = []
        for key in np.unique(keys):
            members = np.flatnonzero(keys == key).astype(np.int64)
            rng.shuffle(members)
            rounds.append(
                RoundPlan(
                    label=f"ecpp-category-{key:x}",
                    init_bits=mask_bits,
                    poll_vector_bits=np.full(members.size, suffix_bits, dtype=np.int64),
                    poll_tag_idx=members,
                    poll_overhead_bits=0,
                    extra={"category": int(key)},
                )
            )
        return InterrogationPlan(
            protocol=self.name,
            n_tags=n,
            rounds=rounds,
            meta={"category_bits": self.category_bits, "id_bits": self.id_bits},
        )
