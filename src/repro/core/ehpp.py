"""Enhanced Hash Polling Protocol (EHPP) — paper §III-D.

HPP's polling vector grows like log₂ n.  EHPP caps it by splitting the
population into subsets of (near-)optimal size ``n*`` and interrogating
each subset with HPP in its own *circle*:

- The reader opens a circle by broadcasting ``⟨f, F, r⟩`` (the *circle
  command*, ``l_c`` bits); each still-unread tag joins the circle iff
  ``H(r, ID) mod F <= f``.  Choosing ``f ≈ F·n*/n_remaining`` yields an
  expected ``n*`` participants — the paper's probability-based subset
  selection, which (unlike C1G2 Select masks) needs no assumption on the
  ID distribution.
- Within the circle, plain HPP runs to completion over the joiners.
- Circles repeat until every tag is read.  Once the remainder is no
  larger than ``n*``, EHPP "just executes HPP as-is" (paper §V-C) with
  no further circle command.

Theorem 1 bounds the optimal subset size: ``n* ∈ [l_c·ln2, e·l_c·ln2]``;
:func:`repro.analysis.ehpp_model.optimal_subset_size` searches the exact
minimiser numerically, and this class uses it by default.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import InterrogationPlan, PollingProtocol, RoundPlan
from repro.core.hpp import MAX_ROUNDS, batch_population, hpp_rounds
from repro.core.planner import CoveringPolicy, IndexLengthPolicy
from repro.core.rounds import SeedStream, draw_rounds_batch_flat, fresh_seed
from repro.hashing.universal import hash_mod
from repro.kernels import get_kernel
from repro.phy.commands import DEFAULT_COMMAND_SIZES, CommandSizes
from repro.phy.schedule import ScheduleBatch, build_schedule_batch
from repro.workloads.tagsets import TagSet

__all__ = ["EHPP"]

#: modulus of the circle-selection hash; 2^16 gives fine-grained control
#: of the join probability f/F.
DEFAULT_F = 1 << 16


class EHPP(PollingProtocol):
    """Enhanced HPP: optimal-size circles, each resolved by HPP."""

    name = "EHPP"

    def __init__(
        self,
        commands: CommandSizes = DEFAULT_COMMAND_SIZES,
        subset_size: int | None = None,
        selection_modulus: int = DEFAULT_F,
        policy: IndexLengthPolicy | None = None,
    ):
        """
        Args:
            commands: command sizes; ``commands.circle_command`` is the
                ``l_c`` of the paper, ``commands.round_init`` the per-HPP
                round initiation charge.
            subset_size: target tags per circle; ``None`` (default) uses
                the numerically optimal ``n*`` for ``l_c`` (Theorem 1).
            selection_modulus: the ``F`` of the circle command.
            policy: index-length policy for the inner HPP rounds.
        """
        self.commands = commands
        if selection_modulus < 2:
            raise ValueError("selection_modulus must be >= 2")
        self.selection_modulus = selection_modulus
        if subset_size is not None and subset_size < 1:
            raise ValueError("subset_size must be positive")
        self._subset_size = subset_size
        self.policy = policy if policy is not None else CoveringPolicy()

    @property
    def subset_size(self) -> int:
        if self._subset_size is None:
            # imported lazily: repro.analysis depends on repro.core for
            # the planner policies, so a module-level import would cycle
            from repro.analysis.ehpp_model import optimal_subset_size

            self._subset_size = optimal_subset_size(
                self.commands.circle_command, self.commands.round_init
            )
        return self._subset_size

    # ------------------------------------------------------------------
    def plan(self, tags: TagSet, rng: np.random.Generator) -> InterrogationPlan:
        n = len(tags)
        if n == 0:
            return InterrogationPlan(protocol=self.name, n_tags=0, rounds=[])
        n_star = self.subset_size
        big_f = self.selection_modulus
        rounds: list[RoundPlan] = []
        remaining = np.arange(n, dtype=np.int64)
        n_circles = 0
        guard = 0
        while remaining.size:
            guard += 1
            if guard > MAX_ROUNDS:
                raise RuntimeError(
                    f"ehpp: EHPP did not converge after {n_circles} circles "
                    f"(MAX_ROUNDS={MAX_ROUNDS}, {remaining.size} tags remaining)"
                )
            if remaining.size <= n_star:
                # small remainder: plain HPP, no circle command (§V-C)
                rounds.extend(
                    hpp_rounds(
                        tags.id_words,
                        remaining,
                        rng,
                        self.policy,
                        self.commands.round_init,
                        label_prefix="ehpp-tail",
                    )
                )
                break
            seed = fresh_seed(rng)
            # join iff H(r, ID) mod F <= f ; (f+1)/F ≈ n*/n_remaining
            f = max(int(round(big_f * n_star / remaining.size)) - 1, 0)
            sel = hash_mod(tags.id_words[remaining], seed, big_f)
            joined = remaining[sel <= f]
            rounds.append(
                RoundPlan(
                    label=f"ehpp-circle-{n_circles}",
                    init_bits=self.commands.circle_command,
                    poll_vector_bits=np.empty(0, dtype=np.int64),
                    poll_tag_idx=np.empty(0, dtype=np.int64),
                    extra={"seed": seed, "f": f, "F": big_f,
                           "n_joined": int(joined.size),
                           "n_remaining": int(remaining.size)},
                )
            )
            if joined.size:
                rounds.extend(
                    hpp_rounds(
                        tags.id_words,
                        joined,
                        rng,
                        self.policy,
                        self.commands.round_init,
                        label_prefix=f"ehpp-circle-{n_circles}",
                    )
                )
                keep = sel > f
                remaining = remaining[keep]
            n_circles += 1
        return InterrogationPlan(
            protocol=self.name,
            n_tags=n,
            rounds=rounds,
            meta={"subset_size": n_star, "n_circles": n_circles},
        )

    def plan_state(self, tags, rng, reply_bits=1, slots=None):
        """Incremental re-planning state (see :mod:`repro.core.replan`).

        The circle partition is frozen at creation: arrivals join the
        first circle whose selection hash accepts them (the same rule
        the tag machines apply on the air) or the tail chain, created on
        demand; the per-circle inner chains update incrementally.
        """
        from repro.core.replan import EHPPReplanState

        return EHPPReplanState(self, tags, rng, reply_bits=reply_bits,
                               slots=slots)

    # ------------------------------------------------------------------
    def plan_schedule_batch(
        self,
        tags_list: list[TagSet],
        rngs: list[np.random.Generator],
        reply_bits: int = 1,
    ) -> ScheduleBatch:
        """Plan R runs jointly; bit-identical to R ``plan`` calls.

        A per-replica state machine interleaves the replicas in lockstep:
        each joint iteration, every live replica takes exactly one step —
        either a circle-selection hash (all such replicas share one
        :func:`hash_mod_ragged` call) or one inner/tail HPP round (all
        such replicas share one :func:`draw_rounds_batch` call).  Every
        step consumes exactly one ``fresh_seed`` from that replica's own
        generator, in the same order as the sequential planner (circle
        seed, then that circle's round seeds, ...), so the per-replica
        round sequences are unchanged; a replica that opens a circle in
        iteration ``t`` draws its first inner round in iteration
        ``t + 1``.
        """
        n_star = self.subset_size
        big_f = self.selection_modulus
        circle_bits = self.commands.circle_command
        round_init = self.commands.round_init
        policy = self.policy
        id_words, run_n_tags, tag_bases = batch_population(tags_list)
        n_runs = len(tags_list)
        empty64 = np.empty(0, dtype=np.int64)

        # per-replica state; a replica is in exactly one of: select_live
        # (next step hashes a circle command or enters the tail),
        # hpp_live (next step draws one inner HPP round), or done.
        remaining = [
            np.arange(b, b + n, dtype=np.int64)
            for b, n in zip(tag_bases.tolist(), run_n_tags.tolist())
        ]
        active: list[np.ndarray] = [empty64] * n_runs  # inner-HPP set
        streams = [SeedStream(rng) for rng in rngs]
        tail = [False] * n_runs
        guard = [0] * n_runs
        inner_round = [0] * n_runs
        n_circles = [0] * n_runs
        sinks: list[list] = [[] for _ in range(n_runs)]
        select_live = [i for i in range(n_runs) if remaining[i].size]
        hpp_live: list[int] = []
        iteration = 0

        while select_live or hpp_live:
            iteration += 1
            circle_idx: list[int] = []
            tail_entrants: list[int] = []
            for i in select_live:
                guard[i] += 1
                if guard[i] > MAX_ROUNDS:
                    raise RuntimeError(
                        f"ehpp: EHPP did not converge after {n_circles[i]} "
                        f"circles (MAX_ROUNDS={MAX_ROUNDS}, "
                        f"{remaining[i].size} tags remaining)"
                    )
                if remaining[i].size <= n_star:
                    # small remainder: plain HPP, no circle command (§V-C)
                    tail[i] = True
                    active[i] = remaining[i]
                    inner_round[i] = 0
                    tail_entrants.append(i)
                else:
                    circle_idx.append(i)
            # tail entrants round this very iteration; circle entrants
            # draw their first inner round only next iteration
            hpp_idx = hpp_live + tail_entrants
            next_select: list[int] = []
            circle_entrants: list[int] = []

            if circle_idx:
                seeds = [streams[i]() for i in circle_idx]
                counts = np.fromiter(
                    (remaining[i].size for i in circle_idx),
                    np.int64, len(circle_idx),
                )
                flat_rem = (
                    remaining[circle_idx[0]]
                    if len(circle_idx) == 1
                    else np.concatenate([remaining[i] for i in circle_idx])
                )
                # join iff H(r, ID) mod F <= f ; (f+1)/F ≈ n*/n_rem —
                # np.rint rounds half to even exactly like Python round()
                fs = np.maximum(
                    np.rint((big_f * n_star) / counts).astype(np.int64) - 1,
                    0,
                )
                # fused circle-selection hash + threshold partition
                # (numpy oracle or JIT, bit-identical; see repro.kernels)
                joined_flat, kept_flat, jb_arr = get_kernel("circle_join")(
                    id_words, flat_rem, counts,
                    np.asarray(seeds, dtype=np.uint64), big_f, fs,
                )
                cb = np.concatenate(([0], np.cumsum(counts)))
                kb = (cb - jb_arr).tolist()
                jb = jb_arr.tolist()
                for k, i in enumerate(circle_idx):
                    sinks[i].append((circle_bits, 0, empty64))
                    n_circles[i] += 1
                    jlo, jhi = jb[k], jb[k + 1]
                    if jhi != jlo:
                        active[i] = joined_flat[jlo:jhi]
                        tail[i] = False
                        inner_round[i] = 0
                        remaining[i] = kept_flat[kb[k]:kb[k + 1]]
                        circle_entrants.append(i)
                    else:
                        next_select.append(i)

            next_hpp: list[int] = []
            if hpp_idx:
                if iteration > MAX_ROUNDS:
                    # a replica's inner_round never exceeds the joint
                    # iteration count, so the per-replica check only
                    # needs to run once the cheap global bound trips
                    for i in hpp_idx:
                        if inner_round[i] >= MAX_ROUNDS:
                            label = (
                                "ehpp-tail" if tail[i]
                                else f"ehpp-circle-{n_circles[i] - 1}"
                            )
                            raise RuntimeError(
                                f"{label}: HPP did not converge after "
                                f"{inner_round[i]} rounds "
                                f"(MAX_ROUNDS={MAX_ROUNDS}, "
                                f"{active[i].size} tags still active)"
                            )
                counts = np.fromiter(
                    (active[i].size for i in hpp_idx), np.int64, len(hpp_idx)
                )
                hs = policy.batch(counts)
                seeds = [streams[i]() for i in hpp_idx]
                flat_active = (
                    active[hpp_idx[0]]
                    if len(hpp_idx) == 1
                    else np.concatenate([active[i] for i in hpp_idx])
                )
                _, sing_bounds, _, sorted_tags, rem_bounds, remaining_flat = \
                    draw_rounds_batch_flat(
                        id_words, flat_active, counts, seeds, hs
                    )
                sb = sing_bounds.tolist()
                rb = rem_bounds.tolist()
                for i, h, lo, hi, r0, r1 in zip(
                    hpp_idx, hs.tolist(), sb, sb[1:], rb, rb[1:]
                ):
                    inner_round[i] += 1
                    sinks[i].append((round_init, h, sorted_tags[lo:hi]))
                    if r1 != r0:
                        active[i] = remaining_flat[r0:r1]
                        next_hpp.append(i)
                    elif not (tail[i] or remaining[i].size == 0):
                        next_select.append(i)

            hpp_live = next_hpp + circle_entrants
            select_live = next_select

        run_metas = [
            {"subset_size": n_star, "n_circles": n_circles[i]}
            if run_n_tags[i] else {}
            for i in range(n_runs)
        ]
        return build_schedule_batch(
            self.name, run_n_tags, sinks, tag_bases, reply_bits,
            run_metas=run_metas,
        )
