"""Enhanced Hash Polling Protocol (EHPP) — paper §III-D.

HPP's polling vector grows like log₂ n.  EHPP caps it by splitting the
population into subsets of (near-)optimal size ``n*`` and interrogating
each subset with HPP in its own *circle*:

- The reader opens a circle by broadcasting ``⟨f, F, r⟩`` (the *circle
  command*, ``l_c`` bits); each still-unread tag joins the circle iff
  ``H(r, ID) mod F <= f``.  Choosing ``f ≈ F·n*/n_remaining`` yields an
  expected ``n*`` participants — the paper's probability-based subset
  selection, which (unlike C1G2 Select masks) needs no assumption on the
  ID distribution.
- Within the circle, plain HPP runs to completion over the joiners.
- Circles repeat until every tag is read.  Once the remainder is no
  larger than ``n*``, EHPP "just executes HPP as-is" (paper §V-C) with
  no further circle command.

Theorem 1 bounds the optimal subset size: ``n* ∈ [l_c·ln2, e·l_c·ln2]``;
:func:`repro.analysis.ehpp_model.optimal_subset_size` searches the exact
minimiser numerically, and this class uses it by default.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import InterrogationPlan, PollingProtocol, RoundPlan
from repro.core.hpp import MAX_ROUNDS, hpp_rounds
from repro.core.planner import CoveringPolicy, IndexLengthPolicy
from repro.core.rounds import fresh_seed
from repro.hashing.universal import hash_mod
from repro.phy.commands import DEFAULT_COMMAND_SIZES, CommandSizes
from repro.workloads.tagsets import TagSet

__all__ = ["EHPP"]

#: modulus of the circle-selection hash; 2^16 gives fine-grained control
#: of the join probability f/F.
DEFAULT_F = 1 << 16


class EHPP(PollingProtocol):
    """Enhanced HPP: optimal-size circles, each resolved by HPP."""

    name = "EHPP"

    def __init__(
        self,
        commands: CommandSizes = DEFAULT_COMMAND_SIZES,
        subset_size: int | None = None,
        selection_modulus: int = DEFAULT_F,
        policy: IndexLengthPolicy | None = None,
    ):
        """
        Args:
            commands: command sizes; ``commands.circle_command`` is the
                ``l_c`` of the paper, ``commands.round_init`` the per-HPP
                round initiation charge.
            subset_size: target tags per circle; ``None`` (default) uses
                the numerically optimal ``n*`` for ``l_c`` (Theorem 1).
            selection_modulus: the ``F`` of the circle command.
            policy: index-length policy for the inner HPP rounds.
        """
        self.commands = commands
        if selection_modulus < 2:
            raise ValueError("selection_modulus must be >= 2")
        self.selection_modulus = selection_modulus
        if subset_size is not None and subset_size < 1:
            raise ValueError("subset_size must be positive")
        self._subset_size = subset_size
        self.policy = policy if policy is not None else CoveringPolicy()

    @property
    def subset_size(self) -> int:
        if self._subset_size is None:
            # imported lazily: repro.analysis depends on repro.core for
            # the planner policies, so a module-level import would cycle
            from repro.analysis.ehpp_model import optimal_subset_size

            self._subset_size = optimal_subset_size(
                self.commands.circle_command, self.commands.round_init
            )
        return self._subset_size

    # ------------------------------------------------------------------
    def plan(self, tags: TagSet, rng: np.random.Generator) -> InterrogationPlan:
        n = len(tags)
        if n == 0:
            return InterrogationPlan(protocol=self.name, n_tags=0, rounds=[])
        n_star = self.subset_size
        big_f = self.selection_modulus
        rounds: list[RoundPlan] = []
        remaining = np.arange(n, dtype=np.int64)
        n_circles = 0
        guard = 0
        while remaining.size:
            guard += 1
            if guard > MAX_ROUNDS:
                raise RuntimeError("EHPP did not converge")
            if remaining.size <= n_star:
                # small remainder: plain HPP, no circle command (§V-C)
                rounds.extend(
                    hpp_rounds(
                        tags.id_words,
                        remaining,
                        rng,
                        self.policy,
                        self.commands.round_init,
                        label_prefix="ehpp-tail",
                    )
                )
                break
            seed = fresh_seed(rng)
            # join iff H(r, ID) mod F <= f ; (f+1)/F ≈ n*/n_remaining
            f = max(int(round(big_f * n_star / remaining.size)) - 1, 0)
            sel = hash_mod(tags.id_words[remaining], seed, big_f)
            joined = remaining[sel <= f]
            rounds.append(
                RoundPlan(
                    label=f"ehpp-circle-{n_circles}",
                    init_bits=self.commands.circle_command,
                    poll_vector_bits=np.empty(0, dtype=np.int64),
                    poll_tag_idx=np.empty(0, dtype=np.int64),
                    extra={"seed": seed, "f": f, "F": big_f,
                           "n_joined": int(joined.size),
                           "n_remaining": int(remaining.size)},
                )
            )
            if joined.size:
                rounds.extend(
                    hpp_rounds(
                        tags.id_words,
                        joined,
                        rng,
                        self.policy,
                        self.commands.round_init,
                        label_prefix=f"ehpp-circle-{n_circles}",
                    )
                )
                keep = sel > f
                remaining = remaining[keep]
            n_circles += 1
        return InterrogationPlan(
            protocol=self.name,
            n_tags=n,
            rounds=rounds,
            meta={"subset_size": n_star, "n_circles": n_circles},
        )
