"""Shared round machinery: hashing a tag subset and sifting singletons.

HPP, EHPP and TPP all start a round the same way (paper §III-B, §IV-C):
the reader broadcasts ``⟨h, r⟩``, every active tag picks the index
``H(r, id) mod 2**h``, and — because the reader knows all IDs — the
reader precomputes which indices are *singletons* (picked by exactly one
tag).  Only the encoding of those singleton indices on the wire differs
between the protocols, so the draw itself lives here, vectorised.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kernels import get_kernel

__all__ = [
    "RoundDraw",
    "SeedStream",
    "draw_round",
    "draw_rounds_batch",
    "draw_rounds_batch_flat",
    "fresh_seed",
]


@dataclass(frozen=True)
class RoundDraw:
    """Result of one index draw over the active tags.

    Attributes:
        h: index length used.
        seed: the seed broadcast to the tags.
        singleton_indices: sorted, distinct indices picked by exactly one
            tag (the reader polls these, in ascending order).
        singleton_tags: global tag indices aligned with
            ``singleton_indices`` (the unique picker of each index).
        remaining_tags: global indices of tags that picked collision
            indices and stay active for the next round.
    """

    h: int
    seed: int
    singleton_indices: np.ndarray
    singleton_tags: np.ndarray
    remaining_tags: np.ndarray

    @property
    def n_singletons(self) -> int:
        return int(self.singleton_indices.size)


def fresh_seed(rng: np.random.Generator) -> int:
    """A 63-bit round seed drawn from the experiment RNG."""
    return int(rng.integers(0, 1 << 63))


class SeedStream:
    """Buffered :func:`fresh_seed` — identical values, amortised cost.

    For a power-of-two bound, numpy's bounded generation consumes
    exactly one raw 64-bit draw per value (masked rejection always
    accepts), so ``rng.integers(0, 2**63, size=k)`` yields the very same
    value sequence as ``k`` scalar :func:`fresh_seed` calls — which lets
    the replica-axis planners draw their tens of thousands of per-step
    seeds a chunk at a time instead of paying the per-call Generator
    overhead.  The buffer over-fetches, advancing ``rng`` further than
    the seeds actually consumed, so this is only for planners that own
    their generator outright (the sweep runner's per-cell plan child is
    created for one plan and discarded).
    """

    __slots__ = ("_rng", "_buf", "_pos")

    _CHUNK = 256

    def __init__(self, rng: np.random.Generator):
        self._rng = rng
        self._buf: list[int] = []
        self._pos = 0

    def __call__(self) -> int:
        pos = self._pos
        buf = self._buf
        if pos == len(buf):
            buf = self._buf = self._rng.integers(
                0, 1 << 63, size=self._CHUNK
            ).tolist()
            pos = 0
        self._pos = pos + 1
        return buf[pos]


def draw_round(
    id_words: np.ndarray,
    active: np.ndarray,
    seed: int,
    h: int,
) -> RoundDraw:
    """Hash the active tags and classify indices.

    Args:
        id_words: uint64 identity words of the *whole* population.
        active: global indices of tags participating in this round.
        seed: round seed ``r``.
        h: index length in bits.

    Returns:
        The singleton/collision split for this round.
    """
    active = np.asarray(active, dtype=np.int64)
    if active.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return RoundDraw(h=h, seed=seed, singleton_indices=empty,
                         singleton_tags=empty, remaining_tags=empty)
    # the single-segment fused draw: distinct singleton indices come out
    # of the count space already ascending, exactly the order the
    # stable argsort of distinct values used to produce
    _, _, sorted_singletons, sorted_tags, _, remaining = \
        draw_rounds_batch_flat(
            np.asarray(id_words, dtype=np.uint64), active,
            np.array([active.size], dtype=np.int64), [seed],
            np.array([h], dtype=np.int64),
        )
    return RoundDraw(
        h=h,
        seed=seed,
        singleton_indices=sorted_singletons,
        singleton_tags=sorted_tags,
        remaining_tags=remaining,
    )


def draw_rounds_batch(
    id_words: np.ndarray,
    actives: list[np.ndarray],
    seeds: list[int],
    hs: list[int],
) -> list[RoundDraw]:
    """Hash R replicas' active sets in one pass — the replica-axis draw.

    Each replica ``r`` is an independent Monte-Carlo run: its own active
    set ``actives[r]`` (global indices into ``id_words``), its own round
    seed ``seeds[r]`` and index length ``hs[r]``.  The whole ragged batch
    is hashed with a single :func:`hash_u64` pass over the flattened
    words, and singletons are classified with a single offset-``bincount``
    in which replica ``r``'s indices are shifted into the disjoint range
    ``[base_r, base_r + 2**hs[r])`` (``base_r`` = prefix sum of the
    index-space sizes), so no two replicas can ever collide.

    The per-replica results are **bit-identical** to R separate
    :func:`draw_round` calls: the hash is elementwise, the offset
    bucketing partitions the count space, and singleton indices (being
    distinct) have a unique ascending order, which the batch recovers
    directly from the count array instead of sorting.

    Returns:
        One :class:`RoundDraw` per replica, aligned with ``actives``.
    """
    n_replicas = len(actives)
    if not (n_replicas == len(seeds) == len(hs)):
        raise ValueError("actives, seeds and hs must be aligned")
    actives = [np.asarray(a, dtype=np.int64) for a in actives]
    counts = np.fromiter((a.size for a in actives), np.int64, n_replicas)
    flat_active = actives[0] if n_replicas == 1 else np.concatenate(actives)
    bases, sing_bounds, sorted_singletons, sorted_tags, rem_bounds, \
        remaining_flat = draw_rounds_batch_flat(
            np.asarray(id_words, dtype=np.uint64), flat_active, counts,
            seeds, hs,
        )
    draws: list[RoundDraw] = []
    for r in range(n_replicas):
        lo, hi = int(sing_bounds[r]), int(sing_bounds[r + 1])
        rlo, rhi = int(rem_bounds[r]), int(rem_bounds[r + 1])
        draws.append(
            RoundDraw(
                h=int(hs[r]),
                seed=int(seeds[r]),
                singleton_indices=sorted_singletons[lo:hi] - bases[r],
                singleton_tags=sorted_tags[lo:hi],
                remaining_tags=remaining_flat[rlo:rhi],
            )
        )
    return draws


def draw_rounds_batch_flat(
    id_words: np.ndarray,
    flat_active: np.ndarray,
    counts: np.ndarray,
    seeds: list[int],
    hs: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray,
           np.ndarray]:
    """:func:`draw_rounds_batch`'s core on pre-flattened inputs.

    The planners' hot loop calls this directly: no per-replica
    :class:`RoundDraw` objects are built, the caller slices what it
    needs out of the flat result arrays.  Inputs are trusted (``id_words``
    uint64, ``flat_active``/``counts`` int64, ``counts.sum() ==
    flat_active.size``).

    Returns ``(bases, sing_bounds, sorted_singletons, sorted_tags,
    rem_bounds, remaining_flat)``; replica ``r``'s ascending singleton
    indices are ``sorted_singletons[sing_bounds[r]:sing_bounds[r+1]] -
    bases[r]``, its polled tags the matching ``sorted_tags`` slice, and
    its still-active tags ``remaining_flat[rem_bounds[r]:rem_bounds[r+1]]``
    — all bit-identical to per-replica :func:`draw_round` calls.
    """
    hs = np.asarray(hs, dtype=np.int64)
    sizes = np.int64(1) << hs
    bases = np.concatenate(([0], np.cumsum(sizes)))
    if flat_active.size == 0:
        zeros = np.zeros(len(seeds) + 1, dtype=np.int64)
        empty = np.empty(0, dtype=np.int64)
        return bases, zeros, empty, empty, zeros, empty
    # the fused hash + offset-bincount + singleton-sift kernel (numpy
    # oracle or JIT, selected via REPRO_KERNELS — bit-identical either
    # way; see repro.kernels)
    sing_bounds, sorted_singletons, sorted_tags, rem_bounds, \
        remaining_flat = get_kernel("round_draw")(
            id_words, flat_active, counts,
            np.asarray(seeds, dtype=np.uint64), hs, bases,
        )
    return (bases, sing_bounds, sorted_singletons, sorted_tags, rem_bounds,
            remaining_flat)
