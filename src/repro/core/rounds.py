"""Shared round machinery: hashing a tag subset and sifting singletons.

HPP, EHPP and TPP all start a round the same way (paper §III-B, §IV-C):
the reader broadcasts ``⟨h, r⟩``, every active tag picks the index
``H(r, id) mod 2**h``, and — because the reader knows all IDs — the
reader precomputes which indices are *singletons* (picked by exactly one
tag).  Only the encoding of those singleton indices on the wire differs
between the protocols, so the draw itself lives here, vectorised.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hashing.universal import hash_indices

__all__ = ["RoundDraw", "draw_round", "fresh_seed"]


@dataclass(frozen=True)
class RoundDraw:
    """Result of one index draw over the active tags.

    Attributes:
        h: index length used.
        seed: the seed broadcast to the tags.
        singleton_indices: sorted, distinct indices picked by exactly one
            tag (the reader polls these, in ascending order).
        singleton_tags: global tag indices aligned with
            ``singleton_indices`` (the unique picker of each index).
        remaining_tags: global indices of tags that picked collision
            indices and stay active for the next round.
    """

    h: int
    seed: int
    singleton_indices: np.ndarray
    singleton_tags: np.ndarray
    remaining_tags: np.ndarray

    @property
    def n_singletons(self) -> int:
        return int(self.singleton_indices.size)


def fresh_seed(rng: np.random.Generator) -> int:
    """A 63-bit round seed drawn from the experiment RNG."""
    return int(rng.integers(0, 1 << 63))


def draw_round(
    id_words: np.ndarray,
    active: np.ndarray,
    seed: int,
    h: int,
) -> RoundDraw:
    """Hash the active tags and classify indices.

    Args:
        id_words: uint64 identity words of the *whole* population.
        active: global indices of tags participating in this round.
        seed: round seed ``r``.
        h: index length in bits.

    Returns:
        The singleton/collision split for this round.
    """
    active = np.asarray(active, dtype=np.int64)
    if active.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return RoundDraw(h=h, seed=seed, singleton_indices=empty,
                         singleton_tags=empty, remaining_tags=empty)
    idx = hash_indices(id_words[active], seed, h)
    counts = np.bincount(idx, minlength=1 << h)
    is_singleton = counts[idx] == 1
    singleton_tags = active[is_singleton]
    singleton_idx = idx[is_singleton]
    order = np.argsort(singleton_idx, kind="stable")
    return RoundDraw(
        h=h,
        seed=seed,
        singleton_indices=singleton_idx[order],
        singleton_tags=singleton_tags[order],
        remaining_tags=active[~is_singleton],
    )
