"""Hash Polling Protocol (HPP) — paper §III.

Each round the reader broadcasts ``⟨h, r⟩``; every unread tag picks the
index ``H(r, id) mod 2**h`` with ``2**(h-1) < n' <= 2**h``.  The reader,
knowing all IDs, sifts out the *singleton* indices and broadcasts each
one in turn (framed by a 4-bit QueryRep); exactly the tag that picked it
replies, then sleeps.  Tags on collision indices stay active for the
next round.  Empty and collision indices are never transmitted, so every
poll yields a useful reply — no slot waste, by construction.

Per round, 36.8 %–60.7 % of the unread tags are read (eq. 1); the
expected polling-vector length is bounded by ⌈log₂ n⌉ bits (eq. 5) and
follows the recursion of eq. (4), which
:mod:`repro.analysis.hpp_model` evaluates and the integration tests
compare against this simulator.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import InterrogationPlan, PollingProtocol, RoundPlan
from repro.core.planner import CoveringPolicy, IndexLengthPolicy
from repro.core.rounds import draw_round, fresh_seed
from repro.phy.commands import DEFAULT_COMMAND_SIZES, CommandSizes
from repro.workloads.tagsets import TagSet

__all__ = ["HPP", "hpp_rounds"]

#: hard cap on rounds; reaching it means the hash family failed to make
#: progress, which for a sound implementation is astronomically unlikely.
MAX_ROUNDS = 100_000


def hpp_rounds(
    id_words: np.ndarray,
    active: np.ndarray,
    rng: np.random.Generator,
    policy: IndexLengthPolicy,
    round_init_bits: int,
    label_prefix: str = "hpp",
) -> list[RoundPlan]:
    """Run HPP rounds over ``active`` until every tag is polled.

    Shared by :class:`HPP` itself and by EHPP (which runs it per circle).
    Each round charges ``round_init_bits`` for the ``⟨h, r⟩`` broadcast
    and ``h`` payload bits per singleton poll.
    """
    rounds: list[RoundPlan] = []
    active = np.asarray(active, dtype=np.int64)
    for round_no in range(MAX_ROUNDS):
        if active.size == 0:
            return rounds
        h = policy(int(active.size))
        draw = draw_round(id_words, active, fresh_seed(rng), h)
        rounds.append(
            RoundPlan(
                label=f"{label_prefix}-round-{round_no}",
                init_bits=round_init_bits,
                poll_vector_bits=np.full(draw.n_singletons, h, dtype=np.int64),
                poll_tag_idx=draw.singleton_tags,
                extra={
                    "h": h,
                    "seed": draw.seed,
                    "singleton_indices": draw.singleton_indices,
                    "n_active": int(active.size),
                },
            )
        )
        active = draw.remaining_tags
    raise RuntimeError(f"HPP did not converge within {MAX_ROUNDS} rounds")


class HPP(PollingProtocol):
    """Hash Polling Protocol (paper §III-A..C)."""

    name = "HPP"

    def __init__(
        self,
        commands: CommandSizes = DEFAULT_COMMAND_SIZES,
        policy: IndexLengthPolicy | None = None,
    ):
        self.commands = commands
        #: index-length policy; the paper's HPP covers the population
        #: (λ ∈ (0.5, 1]); ablations may swap in others.
        self.policy = policy if policy is not None else CoveringPolicy()

    def plan(self, tags: TagSet, rng: np.random.Generator) -> InterrogationPlan:
        n = len(tags)
        if n == 0:
            return InterrogationPlan(protocol=self.name, n_tags=0, rounds=[])
        rounds = hpp_rounds(
            tags.id_words,
            np.arange(n, dtype=np.int64),
            rng,
            self.policy,
            self.commands.round_init,
        )
        return InterrogationPlan(protocol=self.name, n_tags=n, rounds=rounds)
