"""Hash Polling Protocol (HPP) — paper §III.

Each round the reader broadcasts ``⟨h, r⟩``; every unread tag picks the
index ``H(r, id) mod 2**h`` with ``2**(h-1) < n' <= 2**h``.  The reader,
knowing all IDs, sifts out the *singleton* indices and broadcasts each
one in turn (framed by a 4-bit QueryRep); exactly the tag that picked it
replies, then sleeps.  Tags on collision indices stay active for the
next round.  Empty and collision indices are never transmitted, so every
poll yields a useful reply — no slot waste, by construction.

Per round, 36.8 %–60.7 % of the unread tags are read (eq. 1); the
expected polling-vector length is bounded by ⌈log₂ n⌉ bits (eq. 5) and
follows the recursion of eq. (4), which
:mod:`repro.analysis.hpp_model` evaluates and the integration tests
compare against this simulator.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import InterrogationPlan, PollingProtocol, RoundPlan
from repro.core.planner import CoveringPolicy, IndexLengthPolicy
from repro.core.rounds import (
    SeedStream,
    draw_round,
    draw_rounds_batch_flat,
    fresh_seed,
)
from repro.phy.commands import DEFAULT_COMMAND_SIZES, CommandSizes
from repro.phy.schedule import ScheduleBatch, build_schedule_batch
from repro.workloads.tagsets import TagSet

__all__ = [
    "HPP",
    "hpp_rounds",
    "run_hpp_rounds_batch",
    "batch_population",
]

#: hard cap on rounds; reaching it means the hash family failed to make
#: progress, which for a sound implementation is astronomically unlikely.
MAX_ROUNDS = 100_000


def hpp_rounds(
    id_words: np.ndarray,
    active: np.ndarray,
    rng: np.random.Generator,
    policy: IndexLengthPolicy,
    round_init_bits: int,
    label_prefix: str = "hpp",
) -> list[RoundPlan]:
    """Run HPP rounds over ``active`` until every tag is polled.

    Shared by :class:`HPP` itself and by EHPP (which runs it per circle).
    Each round charges ``round_init_bits`` for the ``⟨h, r⟩`` broadcast
    and ``h`` payload bits per singleton poll.
    """
    rounds: list[RoundPlan] = []
    active = np.asarray(active, dtype=np.int64)
    for round_no in range(MAX_ROUNDS):
        if active.size == 0:
            return rounds
        h = policy(int(active.size))
        draw = draw_round(id_words, active, fresh_seed(rng), h)
        rounds.append(
            RoundPlan(
                label=f"{label_prefix}-round-{round_no}",
                init_bits=round_init_bits,
                poll_vector_bits=np.full(draw.n_singletons, h, dtype=np.int64),
                poll_tag_idx=draw.singleton_tags,
                extra={
                    "h": h,
                    "seed": draw.seed,
                    "singleton_indices": draw.singleton_indices,
                    "n_active": int(active.size),
                },
            )
        )
        active = draw.remaining_tags
    raise RuntimeError(
        f"{label_prefix}: HPP did not converge after {len(rounds)} rounds "
        f"(MAX_ROUNDS={MAX_ROUNDS}, {active.size} tags still active)"
    )


# ----------------------------------------------------------------------
# the replica axis: R runs planned jointly
# ----------------------------------------------------------------------
def batch_population(
    tags_list: list[TagSet],
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Concatenate R runs' populations for joint hashing.

    Returns ``(id_words, run_n_tags, tag_bases)``: run ``r``'s tags sit
    at global indices ``[tag_bases[r], tag_bases[r] + run_n_tags[r])`` of
    the flattened identity-word array.
    """
    n_per = np.fromiter((len(t) for t in tags_list), np.int64, len(tags_list))
    bases = np.concatenate(([0], np.cumsum(n_per)))[:-1]
    words = [t.id_words for t in tags_list if len(t)]
    id_words = (
        np.concatenate(words) if words else np.empty(0, dtype=np.uint64)
    )
    return id_words, n_per, bases


def run_hpp_rounds_batch(
    id_words: np.ndarray,
    actives: list[np.ndarray],
    rngs: list[np.random.Generator],
    policy: IndexLengthPolicy,
    round_init_bits: int,
    sinks: list[list],
    poll_bits_fn=None,
    label_prefix: str = "hpp",
) -> None:
    """Run the HPP shrink-until-empty loop jointly over R replicas.

    Each joint iteration draws one round for every still-active replica
    with a single :func:`draw_rounds_batch_flat` call; converged replicas
    drop out of the ragged batch.  Per replica, seeds come from its own
    ``rngs[i]`` in plan order (through a :class:`SeedStream`, which
    yields the exact :func:`fresh_seed` values), so the rounds appended
    to ``sinks[i]`` — tuples ``(init_bits, poll_bits, poll_tag_global)``
    — are bit-identical to a sequential :func:`hpp_rounds` call for that
    replica alone.  ``poll_bits`` is the *scalar* per-poll payload for
    HPP's uniform ``h`` bits per singleton, or the per-poll array
    ``poll_bits_fn(singleton_indices, h)`` (TPP's tree segments);
    :func:`repro.phy.schedule.build_schedule_batch` expands scalars
    vectorised at assembly.
    """
    id_words = np.asarray(id_words, dtype=np.uint64)
    streams = [SeedStream(rng) for rng in rngs]
    live = [i for i in range(len(actives)) if actives[i].size]
    round_no = 0
    while live:
        if round_no >= MAX_ROUNDS:
            raise RuntimeError(
                f"{label_prefix}: HPP did not converge after {round_no} "
                f"rounds (MAX_ROUNDS={MAX_ROUNDS}, {len(live)} replicas "
                "still active)"
            )
        counts = np.fromiter((actives[i].size for i in live), np.int64,
                             len(live))
        hs = policy.batch(counts)
        seeds = [streams[i]() for i in live]
        flat_active = (
            actives[live[0]] if len(live) == 1
            else np.concatenate([actives[i] for i in live])
        )
        bases, sing_bounds, sorted_singletons, sorted_tags, rem_bounds, \
            remaining_flat = draw_rounds_batch_flat(
                id_words, flat_active, counts, seeds, hs
            )
        sb = sing_bounds.tolist()
        rb = rem_bounds.tolist()
        next_live = []
        if poll_bits_fn is None:
            for i, h, lo, hi, r0, r1 in zip(
                live, hs.tolist(), sb, sb[1:], rb, rb[1:]
            ):
                sinks[i].append((round_init_bits, h, sorted_tags[lo:hi]))
                if r1 != r0:
                    actives[i] = remaining_flat[r0:r1]
                    next_live.append(i)
        else:
            for i, h, b, lo, hi, r0, r1 in zip(
                live, hs.tolist(), bases.tolist(), sb, sb[1:], rb, rb[1:]
            ):
                bits = poll_bits_fn(sorted_singletons[lo:hi] - b, h)
                sinks[i].append((round_init_bits, bits, sorted_tags[lo:hi]))
                if r1 != r0:
                    actives[i] = remaining_flat[r0:r1]
                    next_live.append(i)
        live = next_live
        round_no += 1


class HPP(PollingProtocol):
    """Hash Polling Protocol (paper §III-A..C)."""

    name = "HPP"

    def __init__(
        self,
        commands: CommandSizes = DEFAULT_COMMAND_SIZES,
        policy: IndexLengthPolicy | None = None,
    ):
        self.commands = commands
        #: index-length policy; the paper's HPP covers the population
        #: (λ ∈ (0.5, 1]); ablations may swap in others.
        self.policy = policy if policy is not None else CoveringPolicy()

    def plan(self, tags: TagSet, rng: np.random.Generator) -> InterrogationPlan:
        n = len(tags)
        if n == 0:
            return InterrogationPlan(protocol=self.name, n_tags=0, rounds=[])
        rounds = hpp_rounds(
            tags.id_words,
            np.arange(n, dtype=np.int64),
            rng,
            self.policy,
            self.commands.round_init,
        )
        return InterrogationPlan(protocol=self.name, n_tags=n, rounds=rounds)

    def plan_state(self, tags, rng, reply_bits=1, slots=None):
        """Incremental re-planning state (see :mod:`repro.core.replan`)."""
        from repro.core.replan import HashChainReplanState

        return HashChainReplanState(self, tags, rng, reply_bits=reply_bits,
                                    slots=slots, tree=False)

    def plan_schedule_batch(
        self,
        tags_list: list[TagSet],
        rngs: list[np.random.Generator],
        reply_bits: int = 1,
    ) -> ScheduleBatch:
        """Plan R runs jointly; bit-identical to R ``plan`` calls."""
        id_words, run_n_tags, tag_bases = batch_population(tags_list)
        actives = [
            np.arange(b, b + n, dtype=np.int64)
            for b, n in zip(tag_bases.tolist(), run_n_tags.tolist())
        ]
        sinks: list[list] = [[] for _ in tags_list]
        run_hpp_rounds_batch(
            id_words, actives, rngs, self.policy,
            self.commands.round_init, sinks,
        )
        return build_schedule_batch(
            self.name, run_n_tags, sinks, tag_bases, reply_bits
        )
