"""Tree-based Polling Protocol (TPP) — paper §IV.

TPP reuses HPP's round structure but changes two things:

1. **Index length** — instead of covering the population
   (λ ∈ (0.5, 1]), TPP picks ``h`` to maximise the singleton probability
   µ = λe^{-λ} (eq. 15, λ ∈ [ln 2, 2·ln 2)): because the tree transmits
   each shared prefix once, what matters is the density of singletons
   per tree node, which peaks near λ = 1 rather than in HPP's band.
2. **Wire encoding** — the singleton indices are inserted into a binary
   polling tree whose pre-order traversal is broadcast in per-leaf
   segments; a round costs exactly the number of tree nodes, so each
   common prefix is paid once (paper Fig. 6–7).

Theoretical upper bound of the per-tag vector: 3.44 bits regardless of
``n`` (eq. 16); simulation levels off around 3.06 bits (paper Fig. 10).
"""

from __future__ import annotations

import numpy as np

from repro.core.base import InterrogationPlan, PollingProtocol, RoundPlan
from repro.core.planner import IndexLengthPolicy, SingletonMaxPolicy
from repro.core.polling_tree import segment_lengths
from repro.core.hpp import MAX_ROUNDS, batch_population, run_hpp_rounds_batch
from repro.core.rounds import draw_round, fresh_seed
from repro.phy.commands import DEFAULT_COMMAND_SIZES, CommandSizes
from repro.phy.schedule import ScheduleBatch, build_schedule_batch
from repro.workloads.tagsets import TagSet

__all__ = ["TPP"]


class TPP(PollingProtocol):
    """Tree-based Polling Protocol (paper §IV)."""

    name = "TPP"

    def __init__(
        self,
        commands: CommandSizes = DEFAULT_COMMAND_SIZES,
        policy: IndexLengthPolicy | None = None,
    ):
        self.commands = commands
        #: index-length policy; the paper's TPP maximises the singleton
        #: probability (eq. 15).  Swappable for the ablation that runs
        #: the tree encoding under HPP's covering policy.
        self.policy = policy if policy is not None else SingletonMaxPolicy()

    def plan(self, tags: TagSet, rng: np.random.Generator) -> InterrogationPlan:
        n = len(tags)
        if n == 0:
            return InterrogationPlan(protocol=self.name, n_tags=0, rounds=[])
        rounds: list[RoundPlan] = []
        active = np.arange(n, dtype=np.int64)
        for round_no in range(MAX_ROUNDS):
            if active.size == 0:
                return InterrogationPlan(protocol=self.name, n_tags=n, rounds=rounds)
            h = self.policy(int(active.size))
            draw = draw_round(tags.id_words, active, fresh_seed(rng), h)
            seg_bits = segment_lengths(draw.singleton_indices, h)
            rounds.append(
                RoundPlan(
                    label=f"tpp-round-{round_no}",
                    init_bits=self.commands.round_init,
                    poll_vector_bits=seg_bits,
                    poll_tag_idx=draw.singleton_tags,
                    extra={
                        "h": h,
                        "seed": draw.seed,
                        "singleton_indices": draw.singleton_indices,
                        "n_active": int(active.size),
                        "tree_nodes": int(seg_bits.sum()),
                    },
                )
            )
            active = draw.remaining_tags
        raise RuntimeError(
            f"tpp: TPP did not converge after {len(rounds)} rounds "
            f"(MAX_ROUNDS={MAX_ROUNDS}, {active.size} tags still active)"
        )

    def plan_state(self, tags, rng, reply_bits=1, slots=None):
        """Incremental re-planning state (see :mod:`repro.core.replan`)."""
        from repro.core.replan import HashChainReplanState

        return HashChainReplanState(self, tags, rng, reply_bits=reply_bits,
                                    slots=slots, tree=True)

    def plan_schedule_batch(
        self,
        tags_list: list[TagSet],
        rngs: list[np.random.Generator],
        reply_bits: int = 1,
    ) -> ScheduleBatch:
        """Plan R runs jointly; bit-identical to R ``plan`` calls.

        Reuses HPP's joint shrink loop with TPP's tree encoding: each
        singleton's payload is its pre-order tree segment, computed from
        the batch draw's (identical) singleton indices.
        """
        id_words, run_n_tags, tag_bases = batch_population(tags_list)
        actives = [
            np.arange(b, b + n, dtype=np.int64)
            for b, n in zip(tag_bases.tolist(), run_n_tags.tolist())
        ]
        sinks: list[list] = [[] for _ in tags_list]
        run_hpp_rounds_batch(
            id_words, actives, rngs, self.policy,
            self.commands.round_init, sinks,
            poll_bits_fn=segment_lengths,
            label_prefix="tpp",
        )
        return build_schedule_batch(
            self.name, run_n_tags, sinks, tag_bases, reply_bits
        )
