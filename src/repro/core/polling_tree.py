"""The binary polling tree (paper §IV-C) and its wire encoding.

TPP does not broadcast singleton indices verbatim.  The reader inserts
every singleton index into a binary trie (left edge = bit 0, right edge
= bit 1, virtual root), pre-order-traverses it, and slices the traversal
at each leaf: segment ``Seq[j]`` contains the nodes strictly after leaf
``j-1`` up to and including leaf ``j``.  Each node corresponds to one
broadcast bit, so a round's wire cost equals the number of tree nodes
(root excluded) — every common prefix is transmitted exactly once.

Tag-side decoding (paper Fig. 7): each tag keeps an ``h``-bit register
``A`` and, on receiving a ``k``-bit segment, overwrites the *last*
``k`` bits of ``A`` with it.  After each segment, ``A`` equals the next
singleton index, and the unique tag that picked it replies.

Two implementations live here:

- :class:`PollingTree` — an explicit node tree, used by the
  discrete-event simulator and the tests (legible, O(m·h)).
- :func:`segment_lengths` / :func:`segment_values` — closed-form
  vectorised equivalents used by the planner at scale: for sorted
  distinct indices the pre-order slice for leaf ``j`` has length
  ``h − lcp(s_{j−1}, s_j)`` and its payload is the last
  ``h − lcp`` bits of ``s_j``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hashing.bitops import common_prefix_len_array, index_to_bits

__all__ = [
    "TreeNode",
    "PollingTree",
    "Segment",
    "segment_lengths",
    "segment_values",
    "decode_segments",
]


@dataclass
class TreeNode:
    """One node of the polling tree; ``bit`` is None only for the root."""

    bit: int | None
    children: list["TreeNode | None"] = field(default_factory=lambda: [None, None])

    @property
    def is_leaf(self) -> bool:
        return self.children[0] is None and self.children[1] is None


@dataclass(frozen=True)
class Segment:
    """One wire segment ``Seq[j]``: ``length`` bits with value ``value``.

    ``value`` holds the bits MSB-first, i.e. the segment for bit string
    ``"101"`` is ``Segment(value=0b101, length=3)``.
    """

    value: int
    length: int

    def bits(self) -> str:
        return index_to_bits(self.value, self.length)


class PollingTree:
    """Explicit binary polling tree built from singleton indices."""

    def __init__(self, h: int):
        if h < 0:
            raise ValueError("h must be non-negative")
        self.h = h
        self.root = TreeNode(bit=None)
        self._n_nodes = 0
        self._n_leaves = 0

    # ------------------------------------------------------------------
    @classmethod
    def from_indices(cls, indices: np.ndarray | list[int], h: int) -> "PollingTree":
        """Insert every index (paper Fig. 6); duplicates are rejected."""
        tree = cls(h)
        seen: set[int] = set()
        for raw in np.asarray(indices, dtype=np.int64).tolist():
            if raw in seen:
                raise ValueError(f"duplicate singleton index {raw}")
            seen.add(raw)
            tree.insert(int(raw))
        return tree

    def insert(self, index: int) -> None:
        """Insert one ``h``-bit index, creating missing nodes on the path."""
        if index < 0 or index >= (1 << self.h):
            raise ValueError(f"index {index} does not fit in {self.h} bits")
        node = self.root
        for pos in range(self.h - 1, -1, -1):
            bit = (index >> pos) & 1
            child = node.children[bit]
            if child is None:
                child = TreeNode(bit=bit)
                node.children[bit] = child
                self._n_nodes += 1
            node = child
        self._n_leaves += 1

    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        """Nodes excluding the virtual root = total broadcast bits."""
        return self._n_nodes

    @property
    def n_leaves(self) -> int:
        return self._n_leaves

    def preorder(self) -> list[TreeNode]:
        """Pre-order traversal (root first, 0-child before 1-child)."""
        out: list[TreeNode] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            out.append(node)
            # push right first so left is visited first
            for bit in (1, 0):
                child = node.children[bit]
                if child is not None:
                    stack.append(child)
        return out

    def segments(self) -> list[Segment]:
        """The wire segments Seq[1..m], in poll order (ascending index)."""
        segments: list[Segment] = []
        value = 0
        length = 0
        for node in self.preorder():
            if node.bit is None:
                continue  # virtual root contributes no bits
            value = (value << 1) | node.bit
            length += 1
            if node.is_leaf:
                segments.append(Segment(value=value, length=length))
                value = 0
                length = 0
        return segments

    def leaf_indices(self) -> list[int]:
        """All stored indices, in pre-order (= ascending) order."""
        return decode_segments(self.segments(), self.h)


# ----------------------------------------------------------------------
# vectorised closed forms
# ----------------------------------------------------------------------
def segment_lengths(sorted_indices: np.ndarray, h: int) -> np.ndarray:
    """Length (bits) of each pre-order segment for sorted distinct indices.

    ``lengths[0] == h`` and ``lengths[j] == h - lcp(s[j-1], s[j])`` —
    exactly the per-leaf node count of the trie, so
    ``lengths.sum() == PollingTree.n_nodes``.
    """
    idx = np.asarray(sorted_indices, dtype=np.int64)
    if idx.size == 0:
        return np.empty(0, dtype=np.int64)
    lcp = common_prefix_len_array(idx, h)
    lengths = h - lcp
    lengths[0] = h
    return lengths


def segment_values(sorted_indices: np.ndarray, h: int) -> np.ndarray:
    """Payload of each segment: the last ``lengths[j]`` bits of ``s[j]``."""
    idx = np.asarray(sorted_indices, dtype=np.int64)
    lengths = segment_lengths(idx, h)
    if idx.size == 0:
        return np.empty(0, dtype=np.int64)
    mask = (np.int64(1) << lengths) - np.int64(1)
    # lengths may equal 64 never (h <= 62), so the shift is safe
    return idx & mask


def decode_segments(segments: list[Segment], h: int) -> list[int]:
    """Tag-side decoding: replay the ``A``-register updates (Fig. 7)."""
    out: list[int] = []
    a = 0
    full_mask = (1 << h) - 1
    for seg in segments:
        if not 0 <= seg.length <= h:
            raise ValueError(f"segment length {seg.length} outside [0, {h}]")
        if seg.length and not 0 <= seg.value < (1 << seg.length):
            raise ValueError("segment value does not fit its length")
        keep_mask = full_mask ^ ((1 << seg.length) - 1)
        a = (a & keep_mask) | seg.value
        out.append(a)
    return out
