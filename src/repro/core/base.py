"""Protocol base classes and the interrogation-plan data model.

Every polling protocol in this library is a *reader-side planner*: given
the known tag population and a random seed it produces an
:class:`InterrogationPlan` — the exact sequence of rounds the reader
would execute, with per-poll bit counts and the identity of the tag that
answers each poll.  The plan is the single source of truth consumed by

- :func:`repro.phy.link.plan_wire_time` to compute air time,
- the discrete-event simulator (:mod:`repro.sim`) which *independently*
  re-executes the protocol with genuine tag state machines and checks
  that reality matches the plan,
- the experiment harness, which aggregates plan metrics over many runs.

Plans keep per-round data in numpy arrays so that planning and costing
stay vectorised even at 10^5 tags (see the HPC guide: avoid per-item
Python objects in hot paths).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator

import numpy as np

from repro.phy.commands import DEFAULT_COMMAND_SIZES

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.workloads.tagsets import TagSet

__all__ = [
    "RoundPlan",
    "InterrogationPlan",
    "PollingProtocol",
    "ProtocolStats",
]


@dataclass
class RoundPlan:
    """One reader round (or EHPP circle segment, or MIC frame).

    Attributes:
        label: human-readable round tag, e.g. ``"hpp-round-3"``.
        init_bits: reader bits broadcast once at the start of the round
            (round-initiation command, circle command, indicator vector).
            Charged as pure downlink transmission time — no turnaround,
            because the reader keeps talking.
        poll_vector_bits: array, payload bits of each polling vector.
        poll_tag_idx: array, global index (into the tag population) of
            the unique tag that replies to each poll.  Aligned with
            ``poll_vector_bits``.
        poll_overhead_bits: command-framing bits charged per poll (the
            4-bit QueryRep for the paper's protocols; 0 for bare-ID CPP).
        empty_slots: wasted slots with no reply (ALOHA baselines).
        collision_slots: wasted slots in which ≥2 tags garble a reply of
            the full payload length (ALOHA baselines, MIC).
        slot_overhead_bits: framing bits charged per wasted slot.
        extra: free-form per-round diagnostics (``h``, seed, ...).
    """

    label: str
    init_bits: int
    poll_vector_bits: np.ndarray
    poll_tag_idx: np.ndarray
    poll_overhead_bits: int = DEFAULT_COMMAND_SIZES.query_rep
    empty_slots: int = 0
    collision_slots: int = 0
    slot_overhead_bits: int = DEFAULT_COMMAND_SIZES.query_rep
    extra: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.poll_vector_bits = np.asarray(self.poll_vector_bits, dtype=np.int64)
        self.poll_tag_idx = np.asarray(self.poll_tag_idx, dtype=np.int64)
        if self.poll_vector_bits.shape != self.poll_tag_idx.shape:
            raise ValueError(
                "poll_vector_bits and poll_tag_idx must be aligned: "
                f"{self.poll_vector_bits.shape} vs {self.poll_tag_idx.shape}"
            )
        if self.poll_vector_bits.ndim != 1:
            raise ValueError("poll arrays must be one-dimensional")
        if self.init_bits < 0 or self.empty_slots < 0 or self.collision_slots < 0:
            raise ValueError("counts must be non-negative")
        if self.poll_vector_bits.size and self.poll_vector_bits.min() < 0:
            raise ValueError("poll_vector_bits must be non-negative")

    @property
    def n_polls(self) -> int:
        """Number of polls (useful singleton interrogations) in the round."""
        return int(self.poll_vector_bits.size)

    @property
    def reader_bits(self) -> int:
        """Total downlink bits the reader transmits during this round."""
        return int(
            self.init_bits
            + self.poll_vector_bits.sum()
            + self.poll_overhead_bits * self.n_polls
            + self.slot_overhead_bits * (self.empty_slots + self.collision_slots)
        )

    @property
    def vector_bits(self) -> int:
        """Round-attributable polling-vector bits (init + per-poll payload).

        This is the quantity the paper's Fig. 10 averages per tag: the
        per-poll QueryRep framing is excluded, broadcast overhead (round
        init / circle command / indicator vector) is included.
        """
        return int(self.init_bits + self.poll_vector_bits.sum())


@dataclass
class InterrogationPlan:
    """A complete interrogation of a tag population by one protocol."""

    protocol: str
    n_tags: int
    rounds: list[RoundPlan]
    meta: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n_tags < 0:
            raise ValueError("n_tags must be non-negative")

    # ------------------------------------------------------------------
    # aggregate metrics
    # ------------------------------------------------------------------
    @property
    def n_rounds(self) -> int:
        return len(self.rounds)

    @property
    def n_polls(self) -> int:
        return sum(r.n_polls for r in self.rounds)

    @property
    def reader_bits(self) -> int:
        return sum(r.reader_bits for r in self.rounds)

    @property
    def wasted_slots(self) -> int:
        return sum(r.empty_slots + r.collision_slots for r in self.rounds)

    @property
    def avg_vector_bits(self) -> float:
        """Average polling-vector length per tag (paper's Fig. 10 metric)."""
        if self.n_tags == 0:
            return 0.0
        return sum(r.vector_bits for r in self.rounds) / self.n_tags

    def polled_tags(self) -> np.ndarray:
        """Global indices of all tags polled, in interrogation order."""
        if not self.rounds:
            return np.empty(0, dtype=np.int64)
        return np.concatenate([r.poll_tag_idx for r in self.rounds])

    def iter_rounds(self) -> Iterator[RoundPlan]:
        return iter(self.rounds)

    def validate_complete(self) -> None:
        """Check the plan polls every tag exactly once.

        Raises:
            ValueError: if any tag is missed or polled more than once.
        """
        polled = self.polled_tags()
        if polled.size != self.n_tags:
            raise ValueError(
                f"plan polls {polled.size} tags but population has {self.n_tags}"
            )
        if polled.size and (
            np.unique(polled).size != polled.size
            or polled.min() < 0
            or polled.max() >= self.n_tags
        ):
            raise ValueError("plan polls a tag more than once or out of range")


@dataclass(frozen=True)
class ProtocolStats:
    """Flat summary of one interrogation, convenient for aggregation."""

    protocol: str
    n_tags: int
    n_rounds: int
    n_polls: int
    reader_bits: int
    wasted_slots: int
    avg_vector_bits: float
    wire_time_us: float

    @property
    def time_per_tag_us(self) -> float:
        return self.wire_time_us / self.n_tags if self.n_tags else 0.0


class PollingProtocol(ABC):
    """Interface implemented by every polling protocol.

    Subclasses are stateless value objects: configuration lives in the
    constructor, every :meth:`plan` call is independent and driven solely
    by the passed RNG, so experiments stay reproducible.
    """

    #: short identifier used in reports ("CPP", "HPP", "TPP", ...)
    name: str = "abstract"

    @abstractmethod
    def plan(self, tags: "TagSet", rng: np.random.Generator) -> InterrogationPlan:
        """Plan a complete interrogation of ``tags``.

        Args:
            tags: the known tag population (the reader has every ID in
                advance — the paper's system model, §II-A).
            rng: seeded random generator; the only source of randomness.

        Returns:
            A plan that polls every tag exactly once.
        """

    def plan_schedule_batch(
        self,
        tags_list: "list[TagSet]",
        rngs: "list[np.random.Generator]",
        reply_bits: int = 1,
    ):
        """Plan R independent runs jointly and return a ``ScheduleBatch``.

        The replica-axis fast path: run ``r`` uses its own tag population
        ``tags_list[r]`` and its own generator ``rngs[r]``, and the result
        must be **bit-identical** to R sequential ``compile_plan(plan(
        tags_list[r], rngs[r]), reply_bits)`` calls — same seeds drawn in
        the same per-replica order, same rounds, same wire columns.

        The base implementation returns ``None``, meaning the protocol
        has no batched planner and callers must fall back to sequential
        :meth:`plan` calls.  Overrides (HPP, EHPP, TPP) return a
        :class:`repro.phy.schedule.ScheduleBatch`.
        """
        return None

    def plan_state(
        self,
        tags: "TagSet",
        rng: np.random.Generator,
        reply_bits: int = 1,
        slots: np.ndarray | None = None,
    ):
        """Plan ``tags`` and return incremental re-planning state.

        The state (:class:`repro.core.replan.ReplanState`) caches the
        from-scratch plan plus its compiled wire schedule and absorbs
        population churn in O(changed) via :meth:`replan`.  ``slots``
        optionally assigns each tag a stable global slot id (default
        ``0..n-1``); plans and schedules held by the state live in that
        slot space.

        The base implementation returns ``None`` — the protocol has no
        incremental planner and callers must re-plan from scratch.
        Overrides: HPP, TPP, EHPP.
        """
        return None

    def replan(self, state, diff, rng: np.random.Generator):
        """Absorb ``diff`` into ``state`` (made by :meth:`plan_state`).

        Updates the held plan and spliced schedule in place —
        bit-identical no-op for an empty diff — and returns the
        :class:`repro.core.replan.ReplanStats` for the step.
        """
        if state is None:
            raise NotImplementedError(
                f"{self.name} has no incremental planner")
        return state.apply(diff, rng)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
