"""The paper's polling protocols and their shared machinery.

Protocol classes (all :class:`~repro.core.base.PollingProtocol`):

- :class:`~repro.core.cpp.CPP` — conventional polling (96-bit IDs).
- :class:`~repro.core.cpp.EnhancedCPP` — category-prefix masking CPP.
- :class:`~repro.core.coded_polling.CodedPolling` — 48-bit coded frames.
- :class:`~repro.core.hpp.HPP` — hash polling (§III).
- :class:`~repro.core.ehpp.EHPP` — circle-partitioned HPP (§III-D).
- :class:`~repro.core.tpp.TPP` — tree-based polling (§IV).
"""

from repro.core.base import (
    InterrogationPlan,
    PollingProtocol,
    ProtocolStats,
    RoundPlan,
)
from repro.core.coded_polling import CodedPolling
from repro.core.cpp import CPP, EnhancedCPP
from repro.core.ehpp import EHPP
from repro.core.hpp import HPP
from repro.core.planner import (
    CoveringPolicy,
    FixedLoadPolicy,
    IndexLengthPolicy,
    SingletonMaxPolicy,
    hpp_index_length,
    tpp_index_length,
)
from repro.core.polling_tree import PollingTree, Segment, decode_segments
from repro.core.replan import PlanDiff, ReplanState, ReplanStats
from repro.core.rounds import RoundDraw, draw_round
from repro.core.tpp import TPP

__all__ = [
    "InterrogationPlan",
    "PollingProtocol",
    "ProtocolStats",
    "RoundPlan",
    "CPP",
    "EnhancedCPP",
    "CodedPolling",
    "HPP",
    "EHPP",
    "TPP",
    "CoveringPolicy",
    "FixedLoadPolicy",
    "IndexLengthPolicy",
    "SingletonMaxPolicy",
    "hpp_index_length",
    "tpp_index_length",
    "PollingTree",
    "Segment",
    "decode_segments",
    "RoundDraw",
    "draw_round",
    "PlanDiff",
    "ReplanState",
    "ReplanStats",
]
