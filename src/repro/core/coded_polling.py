"""Coded Polling (CP) — the prior-art baseline of Qiao et al. (MobiHoc'11).

CP halves CPP's polling vector by interrogating tags in pairs: for a
pair (A, B) the reader broadcasts one 96-bit *coded frame* derived from
both IDs; each of the two tags validates the frame against its own ID
via its cyclic-redundancy-check unit and recognises itself, then the two
tags reply in a fixed order.  The net effect the ICPP paper cites is a
48-bit polling vector per tag — still "too long for picking a tag".

We reconstruct both the wire behaviour and the code itself.  The frame
for a pair (A, B) packs exactly ``id_bits`` bits — 48 per tag, matching
the baseline the reproduced paper cites:

    ``frame = [ A_hi ⊕ B_hi  (80 bits) | check16(min_hi, max_hi) ]``

where ``X_hi`` is the top 80 EPC bits and ``check16`` is 16 bits of the
tag's *hash unit* over the ordered pair.  A tag T recovers the candidate
partner's top bits as ``v80 ⊕ T_hi`` and accepts iff the transmitted
check matches its own recomputation; membership and reply order drop
out together, and a bystander false-positives with probability 2⁻¹⁶.

Design note — why not the CRC unit, as the original CP description
suggests?  CRC-16 is affine over GF(2) and satisfies the division
property ``crc(m ∥ crc(m)) = const``, so *any* XOR-coded frame built
from self-validating IDs is accepted by **every** listener: both the
naive ``id_A ⊕ id_B`` scheme and a pair-concatenation CRC collapse —
the regression tests ``test_crc_xor_validation_is_blind*`` demonstrate
both collapses on real CRC-embedded populations.  Validation therefore
uses the seeded hash unit the system model already requires of every
tag (§II-A), the minimal nonlinear primitive available.  With an odd
population the last tag is polled CPP-style.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import InterrogationPlan, PollingProtocol, RoundPlan
from repro.phy.commands import EPC_ID_BITS
from repro.phy.crc import crc16
from repro.workloads.tagsets import TagSet

__all__ = ["CodedPolling", "coded_frame", "validate_coded_partner"]


def validate_epc_crc(epc: int, id_bits: int = EPC_ID_BITS) -> bool:
    """True iff the EPC's low 16 bits are the CRC-16 of the rest."""
    return crc16(epc >> 16, id_bits - 16) == (epc & 0xFFFF)


def pair_crc(epc_a: int, epc_b: int, id_bits: int = EPC_ID_BITS) -> int:
    """CRC-16 of the ordered pair concatenation (kept for the blindness

    regression tests — do NOT use for frame validation, see module doc)."""
    lo, hi = sorted((epc_a, epc_b))
    return crc16((lo << id_bits) | hi, 2 * id_bits)


def _pair_check16(hi_a: int, hi_b: int) -> int:
    """16 hash-unit bits over the ordered pair of 80-bit ID tops."""
    from repro.hashing.universal import derive_seed

    lo, hi = sorted((hi_a, hi_b))
    mask = (1 << 64) - 1
    return derive_seed(lo & mask, lo >> 64, hi & mask, hi >> 64) & 0xFFFF


def coded_frame(epc_a: int, epc_b: int, id_bits: int = EPC_ID_BITS) -> int:
    """The ``id_bits``-long pair frame: top-80 XOR plus the pair check."""
    hi_a, hi_b = epc_a >> 16, epc_b >> 16
    if hi_a == hi_b:
        raise ValueError("a coded frame needs two tags with distinct ID tops")
    return ((hi_a ^ hi_b) << 16) | _pair_check16(hi_a, hi_b)


def validate_coded_partner(frame: int, own_epc: int,
                           id_bits: int = EPC_ID_BITS) -> int | None:
    """Tag-side frame check: the recovered partner's ID top bits, or None.

    The tag recovers the candidate partner's top bits from the XOR and
    accepts iff the frame's check matches its own hash-unit
    recomputation — membership in the pair and the reply ordering key
    drop out together.
    """
    v80 = frame >> 16
    check = frame & 0xFFFF
    own_hi = own_epc >> 16
    cand_hi = v80 ^ own_hi
    if cand_hi == own_hi:  # v80 == 0: no valid pair
        return None
    return cand_hi if _pair_check16(own_hi, cand_hi) == check else None


class CodedPolling(PollingProtocol):
    """Coded Polling: one 96-bit coded frame interrogates two tags."""

    name = "CP"

    def __init__(self, id_bits: int = EPC_ID_BITS, shuffle: bool = True):
        if id_bits <= 0 or id_bits % 2:
            raise ValueError("id_bits must be a positive even number")
        self.id_bits = id_bits
        self.shuffle = shuffle

    def plan(self, tags: TagSet, rng: np.random.Generator) -> InterrogationPlan:
        n = len(tags)
        if n == 0:
            return InterrogationPlan(protocol=self.name, n_tags=0, rounds=[])
        order = np.arange(n, dtype=np.int64)
        if self.shuffle and n > 1:
            rng.shuffle(order)
        # within each pair the lower ID-top answers first (the ordering
        # each tag derives locally from the recovered partner bits)
        for p in range(n // 2):
            a, b = int(order[2 * p]), int(order[2 * p + 1])
            if tags.epc(a) >> 16 > tags.epc(b) >> 16:
                order[2 * p], order[2 * p + 1] = b, a

        half = self.id_bits // 2
        # Each paired tag is charged half the coded frame; the reply
        # structure (T1 / reply / T2 per tag) is identical to CPP's, so a
        # per-poll vector of id_bits/2 reproduces CP's wire time exactly.
        vector_bits = np.full(n, half, dtype=np.int64)
        if n % 2:
            vector_bits[-1] = self.id_bits  # unpaired tail tag: plain CPP
        round_plan = RoundPlan(
            label="coded-polling",
            init_bits=0,
            poll_vector_bits=vector_bits,
            poll_tag_idx=order,
            poll_overhead_bits=0,
            extra={"n_pairs": n // 2, "tail_tag": bool(n % 2)},
        )
        return InterrogationPlan(
            protocol=self.name,
            n_tags=n,
            rounds=[round_plan],
            meta={"id_bits": self.id_bits},
        )

    def plan_schedule_batch(
        self,
        tags_list: "list[TagSet]",
        rngs: "list[np.random.Generator]",
        reply_bits: int = 1,
    ):
        """Plan R runs jointly; bit-identical to R ``plan`` calls.

        Reproduces each replica's shuffle from its own generator, then
        resolves the within-pair ordering (lower ID-top first) with one
        vectorised limb comparison per replica instead of the per-pair
        Python loop — ``epc >> 16`` orders exactly like the
        ``(id_hi, id_lo >> 16)`` lexicographic pair.
        """
        from repro.phy.schedule import build_schedule_batch

        n_per = [len(t) for t in tags_list]
        tag_bases = np.concatenate(
            ([0], np.cumsum(np.asarray(n_per, dtype=np.int64)))
        )[:-1]
        half = self.id_bits // 2
        sinks: list[list] = []
        for tags, n, base, rng in zip(tags_list, n_per, tag_bases.tolist(), rngs):
            if n == 0:
                sinks.append([])
                continue
            order = np.arange(n, dtype=np.int64)
            if self.shuffle and n > 1:
                rng.shuffle(order)
            paired = 2 * (n // 2)
            first = order[0:paired:2].copy()
            second = order[1:paired:2].copy()
            hi_a, hi_b = tags.id_hi[first], tags.id_hi[second]
            lo_a = tags.id_lo[first] >> np.uint64(16)
            lo_b = tags.id_lo[second] >> np.uint64(16)
            swap = (hi_a > hi_b) | ((hi_a == hi_b) & (lo_a > lo_b))
            order[0:paired:2] = np.where(swap, second, first)
            order[1:paired:2] = np.where(swap, first, second)
            vector_bits = np.full(n, half, dtype=np.int64)
            if n % 2:
                vector_bits[-1] = self.id_bits
            sinks.append([(0, vector_bits, order + base)])
        return build_schedule_batch(
            self.name,
            np.asarray(n_per, dtype=np.int64),
            sinks,
            tag_bases,
            reply_bits,
            poll_overhead_bits=0,
            run_metas=[{"id_bits": self.id_bits} for _ in tags_list],
        )
