"""Incremental re-planning: reuse the plan you have when the population churns.

Re-planning HPP/TPP/EHPP from scratch on every small churn event throws
away almost all prior work: a departure or arrival perturbs only the
hash buckets the changed tag occupies, yet the one-shot planners redraw
every round.  This module maintains enough per-round state to update an
existing plan in O(changed) instead of O(n):

**The chain sketch.**  Every protocol here is built from HPP *shrink
chains* — a fixed sequence of rounds ``(seed_k, h_k)`` where a tag
participates in rounds ``0..read_at[tag]`` and is polled at the round
where it lands on a *singleton* bucket.  Per round we keep an
invertible sketch of the participant multiset: ``counts[idx]`` (how
many participants hashed to ``idx``) and ``sums[idx]`` (the sum of
their slot ids).  When a count drops to 1 the sum *is* the surviving
tag — no search needed:

- **departure** — decrement the tag's buckets over its participation
  prefix; any bucket dropping to one *promotes* its survivor (the
  survivor's poll moves earlier, releasing its later buckets, which may
  cascade — a worklist drains the transitive closure).
- **arrival** — walk the chain from round 0: an empty bucket polls the
  tag there; a singleton bucket *demotes* the previous occupant (it
  re-walks from the next round); otherwise the tag collides and keeps
  walking.  Tags that fall off the end of the chain *overflow* into
  freshly-seeded rounds appended with the protocol's own policy.

The maintained invariant is exactly what the DES tag machines verify:
at every round, each polled index is hashed by precisely one
still-unread participant.  An empty diff is a pure no-op — the cached
plan and schedule are returned untouched, bit-identical to the
from-scratch artifacts they were built from.

**Index spaces.**  State, plans, and the maintained
:class:`~repro.phy.schedule.WireSchedule` live in *slot space* (stable
global ids from :class:`repro.workloads.inventory.InventoryStore`), so
churn never renumbers unchanged rounds and the schedule updates by
:meth:`~repro.phy.schedule.WireSchedule.splice` of the dirty round
blocks only.  ``state.plan(local_of=...)`` gathers a compacted
local-index plan for the DES / ``validate_complete``.

Cost honesty: ``apply`` does O(changed · rounds-per-tag) sketch work
plus O(dirty-round size) vectorised singleton-array patching; the
splice itself is O(segments) concatenation of column slices.  Only the
*planning* is incremental — localising a plan for execution is O(n)
gathers, which the DES pass dwarfs anyway.
"""

from __future__ import annotations

import itertools
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.core.base import InterrogationPlan, RoundPlan
from repro.core.hpp import MAX_ROUNDS
from repro.core.polling_tree import segment_lengths
from repro.core.rounds import draw_round, fresh_seed
from repro.hashing.universal import (
    _splitmix64_scalar,
    hash_indices,
    hash_mod_ragged,
    hash_u64_ragged,
)
from repro.phy.commands import DEFAULT_COMMAND_SIZES
from repro.phy.schedule import (
    KIND_BROADCAST,
    KIND_POLL,
    RoundPatch,
    WireSchedule,
    compile_plan,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.base import PollingProtocol
    from repro.workloads.tagsets import TagSet

__all__ = [
    "PlanDiff",
    "ReplanStats",
    "ReplanState",
    "HashChainReplanState",
    "EHPPReplanState",
]

_EMPTY_I64 = np.empty(0, dtype=np.int64)


@dataclass(frozen=True)
class PlanDiff:
    """Slot-space churn the planner must absorb.

    ``arrived_slots``/``arrived_words`` are aligned; ``departed_slots``
    name tags leaving the planning population.  Gone-missing/returned
    changes don't appear here — they alter physical presence, not the
    planned interrogation.
    """

    arrived_slots: np.ndarray = field(default_factory=lambda: _EMPTY_I64)
    arrived_words: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.uint64))
    departed_slots: np.ndarray = field(default_factory=lambda: _EMPTY_I64)

    def __post_init__(self) -> None:
        object.__setattr__(self, "arrived_slots",
                           np.asarray(self.arrived_slots, dtype=np.int64))
        object.__setattr__(self, "arrived_words",
                           np.asarray(self.arrived_words, dtype=np.uint64))
        object.__setattr__(self, "departed_slots",
                           np.asarray(self.departed_slots, dtype=np.int64))
        if self.arrived_slots.shape != self.arrived_words.shape:
            raise ValueError("arrived_slots and arrived_words must align")

    @classmethod
    def from_epoch(cls, epoch) -> "PlanDiff":
        """From an :class:`repro.workloads.inventory.EpochView` (duck-typed)."""
        return cls(arrived_slots=epoch.arrived_slots,
                   arrived_words=epoch.arrived_words,
                   departed_slots=epoch.departed_slots)

    @property
    def is_empty(self) -> bool:
        return self.arrived_slots.size == 0 and self.departed_slots.size == 0


@dataclass
class ReplanStats:
    """What one ``apply`` did (all counters are this-epoch only)."""

    arrived: int = 0
    departed: int = 0
    promoted: int = 0
    demoted: int = 0
    overflowed: int = 0
    dirty_rounds: int = 0
    appended_rounds: int = 0
    trimmed_rounds: int = 0
    identity: bool = False


class _Chain:
    """One HPP shrink chain with its per-round invertible sketches."""

    __slots__ = ("policy", "seeds", "hs", "counts", "sums", "n_active",
                 "sing_idx", "sing_tag", "poll_bits", "tree", "read_at",
                 "dirty", "_promoteq", "_insertq", "overflow",
                 "_seeds_u64", "_masks", "_mix_memo")

    def __init__(self, policy, tree: bool):
        self.policy = policy
        self.tree = tree  # TPP's pre-order tree segments vs HPP's flat h
        self.seeds: list[int] = []
        self.hs: list[int] = []
        self.counts: list[np.ndarray] = []
        self.sums: list[np.ndarray] = []
        self.n_active: list[int] = []
        # singleton sets live as *sorted python lists* — churn touches a
        # handful of entries per round, and bisect beats the numpy
        # delete/insert machinery by an order of magnitude at that scale;
        # arrays are materialised only at patch/plan assembly
        self.sing_idx: list[list[int]] = []
        self.sing_tag: list[list[int]] = []
        self.poll_bits: list[np.ndarray | None] = []  # tree mode only
        self.read_at: dict[int, int] = {}
        self.dirty: set[int] = set()
        self._promoteq: list[tuple[int, int]] = []
        self._insertq: list[tuple[int, int]] = []
        self.overflow: list[int] = []
        self._seeds_u64: np.ndarray | None = None  # memo for _index_lists
        self._masks: np.ndarray | None = None
        self._mix_memo: list[tuple[int, int]] | None = None

    def _index_lists(self, words: np.ndarray) -> list[list[int]]:
        """Per-tag hash-index vectors over this chain's rounds.

        ``result[j][k]`` is tag ``j``'s index in round ``k`` —
        bit-identical to :func:`repro.hashing.universal.hash_indices`
        per round (same splitmix64 composition; the scalar fast path
        below applies identical wrap-around arithmetic on plain ints).
        Tiny batches (single promoted/demoted tags, EHPP's few-round
        circle chains) skip numpy-call overhead entirely; larger ones
        go through one ragged hash pass.
        """
        n_rounds, m = len(self.seeds), int(words.size)
        if n_rounds == 0 or m == 0:
            return [[] for _ in range(m)]
        if m * n_rounds <= 48:
            if self._mix_memo is None or len(self._mix_memo) != n_rounds:
                self._mix_memo = [
                    (_splitmix64_scalar(s), (1 << h) - 1)
                    for s, h in zip(self.seeds, self.hs)
                ]
            memo = self._mix_memo
            return [
                [_splitmix64_scalar(w ^ ms) & mask for ms, mask in memo]
                for w in words.tolist()
            ]
        if self._seeds_u64 is None or self._seeds_u64.size != n_rounds:
            self._seeds_u64 = np.asarray(self.seeds, dtype=np.uint64)
            self._masks = (np.uint64(1) << np.asarray(
                self.hs, dtype=np.uint64)) - np.uint64(1)
        hashed = hash_u64_ragged(
            np.tile(words, n_rounds), self._seeds_u64,
            np.full(n_rounds, m, dtype=np.int64),
        )
        idx = (hashed.reshape(n_rounds, m)
               & self._masks[:, None]).astype(np.int64)
        return idx.T.tolist()

    def __len__(self) -> int:
        return len(self.seeds)

    @property
    def n_members(self) -> int:
        return len(self.read_at)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _push_round(self, seed: int, h: int, idx_all: np.ndarray,
                    part: np.ndarray, sing_idx: np.ndarray,
                    sing_tag: np.ndarray) -> None:
        counts = np.bincount(idx_all, minlength=1 << h)
        # float64 sums are exact here (slot-id totals stay far below 2^53)
        sums = np.bincount(idx_all, weights=part,
                           minlength=1 << h).astype(np.int64)
        k = len(self.seeds)
        self.seeds.append(int(seed))
        self.hs.append(int(h))
        self.counts.append(counts)
        self.sums.append(sums)
        self.n_active.append(int(part.size))
        sidx = np.asarray(sing_idx, dtype=np.int64)
        self.sing_idx.append(sidx.tolist())
        self.sing_tag.append(np.asarray(sing_tag, dtype=np.int64).tolist())
        self.poll_bits.append(segment_lengths(sidx, h) if self.tree else None)
        for t in self.sing_tag[k]:
            self.read_at[t] = k

    @classmethod
    def from_rounds(cls, rounds: list[RoundPlan], words: np.ndarray,
                    policy, tree: bool) -> "_Chain":
        """Derive the sketch state from a from-scratch plan's rounds.

        ``rounds`` carry slot-space ``poll_tag_idx``.  Participants per
        round are reconstructed backward (everyone polled at round >= k
        participated in round k), then each round's buckets are rebuilt
        with the very hash the planner used — the resulting singleton
        sets are the plan's own, by construction.
        """
        chain = cls(policy, tree)
        if not rounds:
            return chain
        parts: list[np.ndarray] = [None] * len(rounds)  # type: ignore[list-item]
        acc = _EMPTY_I64
        for k in range(len(rounds) - 1, -1, -1):
            acc = np.concatenate([rounds[k].poll_tag_idx, acc]) \
                if acc.size else np.asarray(rounds[k].poll_tag_idx)
            parts[k] = acc
        for k, rp in enumerate(rounds):
            h, seed = rp.extra["h"], rp.extra["seed"]
            part = np.asarray(parts[k], dtype=np.int64)
            idx_all = hash_indices(words[part], seed, h)
            chain._push_round(seed, h, idx_all, part,
                              rp.extra["singleton_indices"], rp.poll_tag_idx)
        return chain

    # ------------------------------------------------------------------
    # singleton-set edits (bisect on the sorted per-round lists)
    # ------------------------------------------------------------------
    def _sing_remove(self, k: int, idx: int) -> None:
        si = self.sing_idx[k]
        i = bisect_left(si, idx)
        del si[i]
        del self.sing_tag[k][i]
        self.poll_bits[k] = None  # tree segments recompute lazily
        self.dirty.add(k)

    def _sing_add(self, k: int, idx: int, tag: int) -> None:
        si = self.sing_idx[k]
        i = bisect_left(si, idx)
        si.insert(i, idx)
        self.sing_tag[k].insert(i, tag)
        self.poll_bits[k] = None
        self.dirty.add(k)

    def round_poll_bits(self, k: int) -> np.ndarray:
        """Per-poll tree-segment bits of round ``k`` (tree chains only)."""
        pb = self.poll_bits[k]
        if pb is None:
            pb = segment_lengths(
                np.asarray(self.sing_idx[k], dtype=np.int64), self.hs[k])
            self.poll_bits[k] = pb
        return pb

    # ------------------------------------------------------------------
    # the three churn primitives
    # ------------------------------------------------------------------
    def remove_tags(self, slots: list[int], words: np.ndarray,
                    stats: ReplanStats) -> None:
        if not slots:
            return
        vecs = self._index_lists(words[np.asarray(slots, dtype=np.int64)])
        for t, ivec in zip(slots, vecs):
            k_read = self.read_at.pop(t)
            self._sing_remove(k_read, ivec[k_read])
            for k in range(k_read + 1):
                idx = ivec[k]
                c = self.counts[k]
                c[idx] -= 1
                self.sums[k][idx] -= t
                self.n_active[k] -= 1
                if c[idx] == 1:
                    self._promoteq.append((k, idx))

    def insert_tags(self, slots: list[int], words: np.ndarray,
                    stats: ReplanStats) -> None:
        if not slots:
            return
        vecs = self._index_lists(words[np.asarray(slots, dtype=np.int64)])
        for t, ivec in zip(slots, vecs):
            self._insert(t, ivec, 0, stats)
        # demote cascades drain in waves so each wave is one hash pass
        while self._insertq:
            wave, self._insertq = self._insertq, []
            tags = [s for s, _ in wave]
            vecs = self._index_lists(
                words[np.asarray(tags, dtype=np.int64)])
            for (s, start), svec in zip(wave, vecs):
                self._insert(s, svec, start, stats)

    def _insert(self, t: int, ivec: list[int], start: int,
                stats: ReplanStats) -> None:
        for k in range(start, len(self.seeds)):
            idx = ivec[k]
            c = int(self.counts[k][idx])
            if c == 0:
                self.counts[k][idx] = 1
                self.sums[k][idx] += t
                self.n_active[k] += 1
                self._sing_add(k, idx, t)
                self.read_at[t] = k
                return
            if c == 1:
                s = int(self.sums[k][idx])
                if self.read_at.get(s) == k:
                    # the previous singleton collides now: demote it and
                    # let it re-walk from the next round
                    del self.read_at[s]
                    self._sing_remove(k, idx)
                    self._insertq.append((s, k + 1))
                    stats.demoted += 1
            self.counts[k][idx] = c + 1
            self.sums[k][idx] += t
            self.n_active[k] += 1
        self.overflow.append(t)

    def drain_promotions(self, words: np.ndarray, stats: ReplanStats) -> None:
        # Wave-batched: hash all of a wave's survivors in one pass, then
        # promote sequentially with re-validation (an earlier promotion
        # in the wave can change a bucket; if its survivor was not in
        # this wave's hash batch, the candidate re-queues for the next).
        while self._promoteq:
            wave, self._promoteq = self._promoteq, []
            survivors: list[int] = []
            for k, idx in wave:
                if int(self.counts[k][idx]) == 1:
                    survivors.append(int(self.sums[k][idx]))
            uniq = sorted(set(survivors))
            vecs = dict(zip(uniq, self._index_lists(
                words[np.asarray(uniq, dtype=np.int64)])))
            for k, idx in wave:
                if int(self.counts[k][idx]) != 1:
                    continue  # re-collided or emptied since queued
                s = int(self.sums[k][idx])
                rr = self.read_at.get(s)
                if rr is None or rr <= k:
                    continue  # already reads at or before this round
                svec = vecs.get(s)
                if svec is None:
                    self._promoteq.append((k, idx))
                    continue
                self._sing_remove(rr, svec[rr])
                for j in range(k + 1, rr + 1):
                    jdx = svec[j]
                    c = self.counts[j]
                    c[jdx] -= 1
                    self.sums[j][jdx] -= s
                    self.n_active[j] -= 1
                    if c[jdx] == 1:
                        self._promoteq.append((j, jdx))
                self._sing_add(k, idx, s)
                self.read_at[s] = k
                stats.promoted += 1

    # ------------------------------------------------------------------
    # overflow extension and trailing trim
    # ------------------------------------------------------------------
    def extend(self, words: np.ndarray, rng: np.random.Generator,
               stats: ReplanStats) -> int:
        """Append freshly-seeded rounds until the overflow set is read."""
        if not self.overflow:
            return 0
        stats.overflowed += len(self.overflow)
        active = np.sort(np.asarray(self.overflow, dtype=np.int64))
        self.overflow.clear()
        appended = 0
        while active.size:
            if len(self.seeds) >= MAX_ROUNDS:
                raise RuntimeError("replan: chain extension did not converge")
            h = self.policy(int(active.size))
            seed = fresh_seed(rng)
            draw = draw_round(words, active, seed, h)
            idx_all = hash_indices(words[active], seed, h)
            self._push_round(seed, h, idx_all, active,
                             draw.singleton_indices, draw.singleton_tags)
            active = draw.remaining_tags
            appended += 1
        stats.appended_rounds += appended
        return appended

    def trim(self, stats: ReplanStats) -> int:
        """Drop trailing rounds no tag participates in any more.

        Participation prefixes make ``n_active`` non-increasing along
        the chain, so dead rounds always form a suffix.
        """
        trimmed = 0
        while self.seeds and self.n_active[-1] == 0:
            k = len(self.seeds) - 1
            for col in (self.seeds, self.hs, self.counts, self.sums,
                        self.n_active, self.sing_idx, self.sing_tag,
                        self.poll_bits):
                col.pop()
            self.dirty.discard(k)
            trimmed += 1
        stats.trimmed_rounds += trimmed
        return trimmed

    # ------------------------------------------------------------------
    def check_invariants(self, words: np.ndarray) -> None:
        """Recompute everything from scratch and compare (test helper)."""
        if self._promoteq or self._insertq or self.overflow:
            raise AssertionError("chain has undrained work queues")
        members = np.asarray(sorted(self.read_at), dtype=np.int64)
        read = np.asarray([self.read_at[t] for t in members.tolist()],
                          dtype=np.int64)
        for k in range(len(self.seeds)):
            part = members[read >= k]
            if part.size != self.n_active[k]:
                raise AssertionError(f"round {k}: n_active mismatch")
            idx = hash_indices(words[part], self.seeds[k], self.hs[k])
            counts = np.bincount(idx, minlength=1 << self.hs[k])
            if not np.array_equal(counts, self.counts[k]):
                raise AssertionError(f"round {k}: counts diverged")
            sums = np.bincount(idx, weights=part,
                               minlength=1 << self.hs[k]).astype(np.int64)
            if not np.array_equal(sums, self.sums[k]):
                raise AssertionError(f"round {k}: sums diverged")
            singles = np.flatnonzero(counts == 1)
            sidx = np.asarray(self.sing_idx[k], dtype=np.int64)
            stag = np.asarray(self.sing_tag[k], dtype=np.int64)
            if not np.array_equal(singles, sidx):
                raise AssertionError(f"round {k}: singleton indices diverged")
            if not np.array_equal(sums[singles], stag):
                raise AssertionError(f"round {k}: singleton tags diverged")
            polled_here = members[read == k]
            if not np.array_equal(np.sort(stag), polled_here):
                raise AssertionError(f"round {k}: read positions diverged")
            if self.tree and not np.array_equal(
                    self.round_poll_bits(k),
                    segment_lengths(sidx, self.hs[k])):
                raise AssertionError(f"round {k}: tree segments diverged")
        if self.seeds and self.n_active[-1] == 0:
            raise AssertionError("untrimmed dead tail round")
        if len(self.read_at) and not self.seeds:
            raise AssertionError("members but no rounds")


# ----------------------------------------------------------------------
# protocol-facing state objects
# ----------------------------------------------------------------------
class ReplanState:
    """Base class: slot-indexed identity words + the maintained schedule.

    Subclasses implement ``_mutate(diff, rng, stats) -> list[PatchSpec]``
    over their chain layout; this class owns the empty-diff fast path,
    the words array, the schedule splice, and plan localisation.
    """

    def __init__(self, protocol: "PollingProtocol", tags: "TagSet",
                 rng: np.random.Generator, reply_bits: int = 1,
                 slots: np.ndarray | None = None):
        self.protocol = protocol
        self.reply_bits = int(reply_bits)
        n = len(tags)
        if slots is None:
            slots = np.arange(n, dtype=np.int64)
        else:
            slots = np.asarray(slots, dtype=np.int64)
            if slots.size != n:
                raise ValueError("slots must align with tags")
        self.n_slots = int(slots.max()) + 1 if n else 0
        self._words = np.zeros(max(self.n_slots, 1), dtype=np.uint64)
        self._words[slots] = tags.id_words
        # the from-scratch plan IS the initial state: rounds are lifted
        # to slot space and the sketches derived from their own extras,
        # so the cached artifacts are bit-identical to plan+compile
        plan = protocol.plan(tags, rng)
        slot_rounds = [
            RoundPlan(
                label=rp.label, init_bits=rp.init_bits,
                poll_vector_bits=rp.poll_vector_bits,
                poll_tag_idx=slots[rp.poll_tag_idx],
                poll_overhead_bits=rp.poll_overhead_bits,
                extra=dict(rp.extra),
            )
            for rp in plan.rounds
        ]
        self._slot_plan = InterrogationPlan(
            protocol=plan.protocol, n_tags=max(self.n_slots, plan.n_tags),
            rounds=slot_rounds, meta=dict(plan.meta))
        self._sched = compile_plan(self._slot_plan, reply_bits)
        self._plan_dirty = False
        self._ingest(slot_rounds)

    # -- subclass hooks -------------------------------------------------
    def _ingest(self, rounds: list[RoundPlan]) -> None:
        raise NotImplementedError

    def _mutate(self, diff: PlanDiff, rng: np.random.Generator,
                stats: ReplanStats) -> "list[PatchSpec]":
        raise NotImplementedError

    def _assemble(self) -> list[RoundPlan]:
        raise NotImplementedError

    @property
    def n_live(self) -> int:
        raise NotImplementedError

    def check_invariants(self) -> None:
        raise NotImplementedError

    # -- the replan contract --------------------------------------------
    def apply(self, diff: PlanDiff, rng: np.random.Generator) -> ReplanStats:
        """Absorb one epoch's churn; O(changed), not O(n).

        An empty diff returns immediately with ``identity=True`` — the
        cached plan and schedule objects are untouched.
        """
        if diff.is_empty:
            return ReplanStats(identity=True)
        stats = ReplanStats(arrived=int(diff.arrived_slots.size),
                            departed=int(diff.departed_slots.size))
        if diff.arrived_slots.size:
            hi = int(diff.arrived_slots.max()) + 1
            if hi > self._words.size:
                grown = np.zeros(max(hi, self._words.size * 2),
                                 dtype=np.uint64)
                grown[:self._words.size] = self._words
                self._words = grown
            self._words[diff.arrived_slots] = diff.arrived_words
            self.n_slots = max(self.n_slots, hi)
        specs = self._mutate(diff, rng, stats)
        self._sched = self._sched.splice(
            _build_patches(specs, self.reply_bits))
        self._sched.n_tags = max(self.n_slots, 1)
        self._plan_dirty = True
        return stats

    def schedule(self) -> WireSchedule:
        """The maintained slot-space wire schedule (cost it directly)."""
        return self._sched

    def plan(self, local_of: np.ndarray | None = None) -> InterrogationPlan:
        """The current plan; slot space, or localised via ``local_of``.

        ``local_of`` is the epoch's slot→local map
        (:meth:`repro.workloads.inventory.InventoryStore.local_of`); the
        localised plan has ``n_tags == n_live`` and passes
        ``validate_complete`` — hand it to the DES executors.
        """
        if self._plan_dirty:
            self._slot_plan = InterrogationPlan(
                protocol=self.protocol.name,
                n_tags=max(self.n_slots, 1) if self.n_live else 0,
                rounds=self._assemble(), meta=self._meta())
            self._plan_dirty = False
        if local_of is None:
            return self._slot_plan
        plan = self._slot_plan
        rounds = [
            RoundPlan(
                label=rp.label, init_bits=rp.init_bits,
                poll_vector_bits=rp.poll_vector_bits,
                poll_tag_idx=local_of[rp.poll_tag_idx],
                poll_overhead_bits=rp.poll_overhead_bits,
                extra=rp.extra,
            )
            for rp in plan.rounds
        ]
        return InterrogationPlan(protocol=plan.protocol, n_tags=self.n_live,
                                 rounds=rounds, meta=dict(plan.meta))

    def _meta(self) -> dict[str, Any]:
        return {}


class HashChainReplanState(ReplanState):
    """HPP (flat ``h``-bit polls) and TPP (tree segments): one chain."""

    def __init__(self, protocol, tags, rng, reply_bits: int = 1,
                 slots: np.ndarray | None = None, tree: bool = False):
        self._tree = tree
        super().__init__(protocol, tags, rng, reply_bits, slots)

    def _ingest(self, rounds: list[RoundPlan]) -> None:
        self._chain = _Chain.from_rounds(rounds, self._words,
                                         self.protocol.policy, self._tree)

    @property
    def n_live(self) -> int:
        return self._chain.n_members

    def _mutate(self, diff, rng, stats) -> list[RoundPatch]:
        chain = self._chain
        old_len = len(chain)
        chain.remove_tags(diff.departed_slots.tolist(), self._words, stats)
        chain.insert_tags(diff.arrived_slots.tolist(), self._words, stats)
        # extend BEFORE draining promotions: a promotion's survivor may be
        # an overflow tag that only gets its read round in the extension
        chain.extend(self._words, rng, stats)
        chain.drain_promotions(self._words, stats)
        chain.trim(stats)
        stats.dirty_rounds += len(chain.dirty)
        return _chain_patch_specs(chain, 0, old_len, self._init_bits())

    def _init_bits(self) -> int:
        return self.protocol.commands.round_init

    def _assemble(self) -> list[RoundPlan]:
        prefix = "tpp" if self._tree else "hpp"
        return _chain_round_plans(self._chain, self._init_bits(),
                                  f"{prefix}-round-")

    def check_invariants(self) -> None:
        self._chain.check_invariants(self._words)


#: one pending schedule rewrite: ``(start, stop, rounds)`` with
#: planner-style tuples ``(init_bits, poll_bits, poll_tags)`` per round
#: (``poll_bits`` a scalar or per-poll array, ``poll_tags`` a list)
PatchSpec = tuple[int, int, list]


def _chain_patch_specs(chain: _Chain, offset: int, old_len: int,
                       init_bits: int) -> list[PatchSpec]:
    """Specs rewriting a chain's dirty/appended/trimmed rounds.

    ``offset`` is the chain's first round id in the *pre-apply* global
    schedule, ``old_len`` its pre-apply length.
    """
    new_len = len(chain)
    specs: list[PatchSpec] = []
    kept_dirty = sorted(k for k in chain.dirty if k < min(old_len, new_len))
    # consecutive dirty rounds merge into one patch — fewer, larger
    # column blocks beat many single-round ones
    i = 0
    while i < len(kept_dirty):
        j = i
        while j + 1 < len(kept_dirty) and kept_dirty[j + 1] == kept_dirty[j] + 1:
            j += 1
        lo, hi = kept_dirty[i], kept_dirty[j] + 1
        specs.append((offset + lo, offset + hi,
                      [(init_bits,
                        chain.round_poll_bits(k) if chain.tree
                        else chain.hs[k],
                        chain.sing_tag[k]) for k in range(lo, hi)]))
        i = j + 1
    if new_len > old_len:
        specs.append((offset + old_len, offset + old_len,
                      [(init_bits,
                        chain.round_poll_bits(k) if chain.tree
                        else chain.hs[k],
                        chain.sing_tag[k]) for k in range(old_len, new_len)]))
    elif new_len < old_len:
        specs.append((offset + new_len, offset + old_len, []))
    chain.dirty.clear()
    return specs


def _build_patches(specs: list[PatchSpec],
                   reply_bits: int) -> list[RoundPatch]:
    """Materialise every spec's :class:`RoundPatch` in one vector pass.

    Churn rewrites many small round blocks per epoch (EHPP touches a
    few rounds in each of dozens of circles); assembling their exchange
    columns jointly costs a handful of numpy calls total instead of a
    dozen per patch, then each patch takes zero-copy slices.
    """
    if not specs:
        return []
    poll_overhead = DEFAULT_COMMAND_SIZES.query_rep
    flat: list[tuple] = []
    spec_rounds = np.empty(len(specs), dtype=np.int64)
    for i, (_, _, rounds) in enumerate(specs):
        spec_rounds[i] = len(rounds)
        flat.extend(rounds)
    n_flat = len(flat)
    n_polls = np.fromiter((len(rd[2]) for rd in flat), np.int64, n_flat)
    rows_per_round = n_polls + 1
    row_off = np.zeros(n_flat + 1, dtype=np.int64)
    np.cumsum(rows_per_round, out=row_off[1:])
    total = int(row_off[-1])
    start_rows = row_off[:-1]
    is_poll = np.ones(total, dtype=bool)
    is_poll[start_rows] = False
    kind = np.where(is_poll, KIND_POLL, KIND_BROADCAST).astype(np.int8)
    down = np.empty(total, dtype=np.int64)
    down[start_rows] = np.fromiter((rd[0] for rd in flat), np.int64, n_flat)
    tag_idx = np.full(total, -1, dtype=np.int64)
    if total > n_flat:
        if any(isinstance(rd[1], np.ndarray) for rd in flat):
            pb = np.concatenate([
                np.asarray(rd[1], dtype=np.int64)
                if isinstance(rd[1], np.ndarray)
                else np.full(len(rd[2]), rd[1], dtype=np.int64)
                for rd in flat])
        else:
            pb = np.repeat(
                np.fromiter((rd[1] for rd in flat), np.int64, n_flat),
                n_polls)
        down[is_poll] = pb + poll_overhead
        tag_idx[is_poll] = np.fromiter(
            itertools.chain.from_iterable(rd[2] for rd in flat),
            np.int64, total - n_flat)
    uplink = np.zeros(total, dtype=np.int64)
    uplink[is_poll] = reply_bits
    # patch-local round ids restart at 0 within each spec
    spec_bounds = np.zeros(len(specs) + 1, dtype=np.int64)
    np.cumsum(spec_rounds, out=spec_bounds[1:])
    local_round = (np.arange(n_flat, dtype=np.int64)
                   - np.repeat(spec_bounds[:-1], spec_rounds))
    round_id = np.repeat(local_round, rows_per_round)
    patches: list[RoundPatch] = []
    for i, (start, stop, rounds) in enumerate(specs):
        a = int(row_off[spec_bounds[i]])
        b = int(row_off[spec_bounds[i + 1]])
        patches.append(RoundPatch(
            start=start, stop=stop, n_rounds=len(rounds),
            kind=kind[a:b], downlink_bits=down[a:b],
            uplink_bits=uplink[a:b], tag_idx=tag_idx[a:b],
            round_id=round_id[a:b]))
    return patches


def _chain_round_plans(chain: _Chain, init_bits: int,
                       label_prefix: str) -> list[RoundPlan]:
    rounds = []
    for k in range(len(chain)):
        h = chain.hs[k]
        n_polls = len(chain.sing_tag[k])
        bits = (chain.round_poll_bits(k) if chain.tree
                else np.full(n_polls, h, dtype=np.int64))
        extra = {
            "h": h, "seed": chain.seeds[k],
            "singleton_indices": np.asarray(chain.sing_idx[k],
                                            dtype=np.int64),
            "n_active": chain.n_active[k],
        }
        if chain.tree:
            extra["tree_nodes"] = int(bits.sum())
        rounds.append(RoundPlan(
            label=f"{label_prefix}{k}", init_bits=init_bits,
            poll_vector_bits=bits, poll_tag_idx=chain.sing_tag[k],
            extra=extra,
        ))
    return rounds


class EHPPReplanState(ReplanState):
    """EHPP: an ordered list of circles (each a scoped chain) + a tail.

    A tag's circle is the *first* whose selection hash accepts it —
    exactly the semantics the DES tag machines apply to the broadcast
    circle commands, so arrivals slot into the circle that will
    actually capture them on the air.  Tags rejected by every circle
    belong to the (global-scope) tail chain, created on demand.
    """

    def _ingest(self, rounds: list[RoundPlan]) -> None:
        self._circles: list[dict[str, Any]] = []
        self._tail: _Chain | None = None
        policy = self.protocol.policy
        current: list[RoundPlan] | None = None
        tail_rounds: list[RoundPlan] = []
        for rp in rounds:
            if (rp.label.startswith("ehpp-circle") and rp.n_polls == 0
                    and "F" in rp.extra):
                if current is not None:
                    self._circles[-1]["rounds"] = current
                self._circles.append({
                    "seed": rp.extra["seed"], "f": rp.extra["f"],
                    "F": rp.extra["F"],
                    "n_remaining": rp.extra.get("n_remaining", 0),
                })
                current = []
            elif rp.label.startswith("ehpp-tail"):
                tail_rounds.append(rp)
            else:
                assert current is not None, "inner round before any circle"
                current.append(rp)
        if current is not None:
            self._circles[-1]["rounds"] = current
        for c in self._circles:
            c["chain"] = _Chain.from_rounds(c.pop("rounds"), self._words,
                                            policy, tree=False)
        if tail_rounds or not self._circles:
            self._tail = _Chain.from_rounds(tail_rounds, self._words,
                                            policy, tree=False)
        self._home: dict[int, int] = {}  # slot -> circle ordinal (-1 tail)
        for ci, c in enumerate(self._circles):
            for t in c["chain"].read_at:
                self._home[t] = ci
        if self._tail is not None:
            for t in self._tail.read_at:
                self._home[t] = -1

    @property
    def n_live(self) -> int:
        return len(self._home)

    def _chains(self) -> list[tuple[int, _Chain]]:
        out = [(ci, c["chain"]) for ci, c in enumerate(self._circles)]
        if self._tail is not None:
            out.append((-1, self._tail))
        return out

    def _membership(self, slots: np.ndarray) -> list[int]:
        """First-accepting circle per slot (-1 = tail), vectorised."""
        n_circ = len(self._circles)
        if n_circ == 0 or slots.size == 0:
            return [-1] * int(slots.size)
        words = self._words[slots]
        big_f = self._circles[0]["F"]
        sel = hash_mod_ragged(
            np.tile(words, n_circ),
            np.asarray([c["seed"] for c in self._circles], dtype=np.uint64),
            big_f,
            np.full(n_circ, slots.size, dtype=np.int64),
        ).reshape(n_circ, slots.size)
        fs = np.asarray([c["f"] for c in self._circles],
                        dtype=np.int64)[:, None]
        accept = sel <= fs
        hit = accept.any(axis=0)
        first = np.argmax(accept, axis=0)
        return np.where(hit, first, -1).tolist()

    def _mutate(self, diff, rng, stats) -> list[RoundPatch]:
        # pre-apply layout: each circle occupies 1 command round + chain
        offsets: dict[int, int] = {}
        off = 0
        for ci, c in enumerate(self._circles):
            offsets[ci] = off + 1  # the chain starts after the command
            off += 1 + len(c["chain"])
        tail_existed = self._tail is not None
        if tail_existed:
            offsets[-1] = off
            off += len(self._tail)
        old_total = off
        old_lens = {ci: len(ch) for ci, ch in self._chains()}

        by_chain_dep: dict[int, list[int]] = {}
        for t in diff.departed_slots.tolist():
            by_chain_dep.setdefault(self._home.pop(t), []).append(t)
        by_chain_arr: dict[int, list[int]] = {}
        for t, ci in zip(diff.arrived_slots.tolist(),
                         self._membership(diff.arrived_slots)):
            by_chain_arr.setdefault(ci, []).append(t)
            self._home[t] = ci

        new_tail = False
        if -1 in by_chain_arr and self._tail is None:
            self._tail = _Chain(self.protocol.policy, tree=False)
            new_tail = True
        specs: list[PatchSpec] = []
        init_bits = self.protocol.commands.round_init
        for ci, chain in self._chains():
            dep = by_chain_dep.get(ci, [])
            arr = by_chain_arr.get(ci, [])
            if not dep and not arr:
                continue
            chain.remove_tags(dep, self._words, stats)
            chain.insert_tags(arr, self._words, stats)
            chain.extend(self._words, rng, stats)
            chain.drain_promotions(self._words, stats)
            chain.trim(stats)
            stats.dirty_rounds += len(chain.dirty)
            if ci == -1 and new_tail:
                # brand-new tail block: all its rounds arrive in one
                # insert patch at the end of the old schedule
                specs.append((old_total, old_total,
                              [(init_bits, chain.hs[k], chain.sing_tag[k])
                               for k in range(len(chain))]))
                chain.dirty.clear()
            else:
                specs.extend(_chain_patch_specs(
                    chain, offsets[ci], old_lens[ci], init_bits))
        return specs

    def _assemble(self) -> list[RoundPlan]:
        rounds: list[RoundPlan] = []
        circle_bits = self.protocol.commands.circle_command
        init_bits = self.protocol.commands.round_init
        for ci, c in enumerate(self._circles):
            chain = c["chain"]
            rounds.append(RoundPlan(
                label=f"ehpp-circle-{ci}", init_bits=circle_bits,
                poll_vector_bits=_EMPTY_I64, poll_tag_idx=_EMPTY_I64,
                extra={"seed": c["seed"], "f": c["f"], "F": c["F"],
                       "n_joined": chain.n_members,
                       "n_remaining": c["n_remaining"]},
            ))
            rounds.extend(_chain_round_plans(
                chain, init_bits, f"ehpp-circle-{ci}-round-"))
        if self._tail is not None:
            rounds.extend(_chain_round_plans(
                self._tail, init_bits, "ehpp-tail-round-"))
        return rounds

    def _meta(self) -> dict[str, Any]:
        return {"subset_size": self.protocol.subset_size,
                "n_circles": len(self._circles)}

    def check_invariants(self) -> None:
        homes: dict[int, int] = {}
        for ci, chain in self._chains():
            chain.check_invariants(self._words)
            for t in chain.read_at:
                if t in homes:
                    raise AssertionError(f"slot {t} owned by two chains")
                homes[t] = ci
        if homes != self._home:
            raise AssertionError("membership map diverged from chains")
        # every member sits in the first circle whose hash accepts it
        slots = np.asarray(sorted(homes), dtype=np.int64)
        for t, ci in zip(slots.tolist(), self._membership(slots)):
            if homes[t] != ci:
                raise AssertionError(
                    f"slot {t} in chain {homes[t]}, membership says {ci}")
