"""Command-line interface: ``repro-rfid`` (or ``python -m repro.cli``).

Subcommands:

- ``compare``  — run several protocols on one population and print the
  execution-time / vector-length comparison (the paper's Table view).
- ``missing``  — theft-watch sweep: plant missing tags, detect them.
- ``inventory`` — continuous-inventory monitoring loop: per-epoch
  churn, incremental re-planning, missing-tag verdicts; ``--sessions``
  multiplexes concurrent sessions over the batched DES backend.
- ``estimate`` — cardinality estimation demo (zero / vogt / lof).
- ``experiments`` — forwards to ``python -m repro.experiments``.
- ``cache`` — inspect (and optionally compact) a sweep-cell cache
  directory written by ``experiments --cache-dir``.
- ``kernels`` — show the hot-path kernel backend dispatch (numpy
  oracle vs numba JIT, selected via ``REPRO_KERNELS``) and run a quick
  per-kernel micro-benchmark.
- ``hostagent`` — serve this machine's cores to remote sweep runners:
  a persistent warm worker pool behind a TCP shard protocol (point
  runners at it with ``REPRO_HOSTS`` / ``experiments --hosts``).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main", "build_parser"]

_PROTOCOLS = ("CPP", "CP", "HPP", "EHPP", "TPP", "MIC")


def _make_protocol(name: str):
    from repro.baselines.mic import MIC
    from repro.core.coded_polling import CodedPolling
    from repro.core.cpp import CPP
    from repro.core.ehpp import EHPP
    from repro.core.hpp import HPP
    from repro.core.tpp import TPP

    return {
        "CPP": CPP,
        "CP": CodedPolling,
        "HPP": HPP,
        "EHPP": EHPP,
        "TPP": TPP,
        "MIC": MIC,
    }[name]()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-rfid",
        description="Fast RFID polling protocols (ICPP 2016 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    cmp_p = sub.add_parser("compare", help="compare protocols on one population")
    cmp_p.add_argument("-n", "--tags", type=int, default=10_000)
    cmp_p.add_argument("-l", "--info-bits", type=int, default=1)
    cmp_p.add_argument("-r", "--runs", type=int, default=10)
    cmp_p.add_argument("-s", "--seed", type=int, default=0)
    cmp_p.add_argument(
        "-p", "--protocols", nargs="+", choices=_PROTOCOLS,
        default=list(_PROTOCOLS),
    )

    miss_p = sub.add_parser("missing", help="missing-tag detection sweep")
    miss_p.add_argument("-n", "--tags", type=int, default=2_000)
    miss_p.add_argument("-m", "--missing-fraction", type=float, default=0.02)
    miss_p.add_argument("-s", "--seed", type=int, default=0)
    miss_p.add_argument("-p", "--protocol", choices=_PROTOCOLS, default="TPP")
    miss_p.add_argument("--ber", type=float, default=0.0,
                        help="bit error rate of the channel")
    miss_p.add_argument("--backend", choices=("machines", "array"),
                        default="machines",
                        help="DES population backend (array scales to 10^5 tags)")
    miss_p.add_argument("--replicas", type=int, default=1, metavar="R",
                        help="Monte-Carlo replicas of the sweep, executed "
                             "as one replica-batched DES pass (replica r "
                             "is bit-identical to a run with seed+r)")

    inv_p = sub.add_parser(
        "inventory",
        help="continuous-inventory monitoring loop under churn")
    inv_p.add_argument("-n", "--tags", type=int, default=2_000)
    inv_p.add_argument("-e", "--epochs", type=int, default=10)
    inv_p.add_argument("-c", "--churn", type=float, default=0.01,
                       help="per-epoch arrival+departure rate "
                            "(split evenly)")
    inv_p.add_argument("--missing-rate", type=float, default=0.005,
                       help="per-epoch rate of tags going silent")
    inv_p.add_argument("-p", "--protocol", choices=("HPP", "EHPP", "TPP"),
                       default="EHPP")
    inv_p.add_argument("-s", "--seed", type=int, default=0)
    inv_p.add_argument("--full", action="store_true",
                       help="rebuild the plan from scratch every epoch "
                            "instead of incremental re-planning")
    inv_p.add_argument("--sessions", type=int, default=1, metavar="S",
                       help="run S concurrent sessions multiplexed over "
                            "the batched DES backend (asyncio)")
    inv_p.add_argument("--backend", choices=("machines", "array"),
                       default="array")

    est_p = sub.add_parser("estimate", help="cardinality estimation demo")
    est_p.add_argument("-n", "--tags", type=int, default=5_000)
    est_p.add_argument("--method", choices=("zero", "vogt", "lof"), default="zero")
    est_p.add_argument("--rounds", type=int, default=16)
    est_p.add_argument("-s", "--seed", type=int, default=0)

    exp_p = sub.add_parser("experiments", help="regenerate paper artifacts")
    exp_p.add_argument("names", nargs="*")
    exp_p.add_argument("--quick", action="store_true")
    exp_p.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes for Monte-Carlo sweeps")
    exp_p.add_argument("--no-cache", action="store_true",
                       help="disable the per-cell sweep result cache")
    exp_p.add_argument("--cache-dir", metavar="DIR", default=None,
                       help="persist the sweep cache to DIR")
    exp_p.add_argument("--batch", action=argparse.BooleanOptionalAction,
                       default=True,
                       help="batch Monte-Carlo replicas through the "
                            "replica-axis planners (--no-batch disables)")
    exp_p.add_argument("--shm", action=argparse.BooleanOptionalAction,
                       default=None,
                       help="shared-memory dataplane + persistent warm "
                            "worker pool for --jobs > 1 (default follows "
                            "REPRO_SHM; --no-shm forces legacy per-sweep "
                            "pools)")
    exp_p.add_argument("--hosts", metavar="H:P,...", default=None,
                       help="dispatch sweep shards to these repro-rfid "
                            "hostagent daemons (host:port, comma-separated; "
                            "default follows REPRO_HOSTS; results are "
                            "bit-identical to local execution)")

    cache_p = sub.add_parser(
        "cache", help="inspect or compact a sweep-cell cache directory")
    cache_p.add_argument("directory", metavar="DIR",
                         help="cache directory (from experiments --cache-dir)")
    cache_p.add_argument("--compact", action="store_true",
                         help="rewrite the store to a single segment, "
                              "dropping stale and superseded entries")

    kern_p = sub.add_parser(
        "kernels",
        help="show the kernel backend dispatch and micro-bench it")
    kern_p.add_argument("--repeats", type=int, default=5, metavar="N",
                        help="timed repetitions per backend (best-of)")
    kern_p.add_argument("--scale", type=float, default=1.0, metavar="F",
                        help="workload scale factor (0.1 = quick smoke)")
    kern_p.add_argument("--no-bench", action="store_true",
                        help="print backend resolution and the registry "
                             "only, skip the micro-benchmark")

    host_p = sub.add_parser(
        "hostagent",
        help="serve this machine's cores to remote sweep runners")
    host_p.add_argument("--bind", default="127.0.0.1", metavar="ADDR",
                        help="address to listen on (default loopback; a "
                             "non-loopback bind requires the same "
                             "REPRO_REMOTE_KEY here and on the runner)")
    host_p.add_argument("--port", type=int, default=7355, metavar="P",
                        help="TCP port (0 picks an ephemeral port)")
    host_p.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes (default: all cores)")
    return parser


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.apps.information_collection import collect_information
    from repro.phy.link import lower_bound_us
    from repro.workloads.tagsets import uniform_tagset

    tags = uniform_tagset(args.tags, np.random.default_rng(args.seed))
    print(f"{args.tags:,} tags, {args.info_bits}-bit information, "
          f"{args.runs} runs\n")
    print(f"{'protocol':<8} {'vector bits':>12} {'rounds':>8} "
          f"{'time':>10} {'x bound':>9}")
    for name in args.protocols:
        rep = collect_information(
            _make_protocol(name), tags, args.info_bits,
            n_runs=args.runs, seed=args.seed,
        )
        print(f"{rep.protocol:<8} {rep.mean_vector_bits:>12.2f} "
              f"{rep.mean_rounds:>8.1f} {rep.mean_time_s:>9.2f}s "
              f"{rep.ratio_to_lower_bound:>8.2f}x")
    lb = lower_bound_us(args.tags, args.info_bits) / 1e6
    print(f"{'(bound)':<8} {'-':>12} {'-':>8} {lb:>9.2f}s {'1.00x':>9}")
    return 0


def _cmd_missing(args: argparse.Namespace) -> int:
    from repro.apps.missing_tag import detect_missing_tags
    from repro.phy.channel import BitErrorChannel
    from repro.workloads.scenarios import theft_watch_scenario

    scenario = theft_watch_scenario(
        n=args.tags, missing_fraction=args.missing_fraction, seed=args.seed
    )
    channel = BitErrorChannel(args.ber) if args.ber > 0 else None
    if args.replicas < 1:
        raise SystemExit("--replicas must be >= 1")
    if args.replicas > 1:
        reports = detect_missing_tags(
            _make_protocol(args.protocol), scenario, seed=args.seed,
            channel=channel, missing_attempts=5, backend=args.backend,
            replicas=args.replicas,
        )
        first = reports[0]
        print(f"{first.protocol}: {first.n_known:,} known tags, "
              f"{len(first.true_missing)} actually missing, "
              f"{len(reports)} replicas")
        mean_t = sum(r.time_s for r in reports) / len(reports)
        exact = sum(r.exact for r in reports)
        fp = sum(len(r.false_positives) for r in reports)
        fn = sum(len(r.false_negatives) for r in reports)
        print(f"mean sweep time {mean_t:.2f}s, "
              f"{sum(r.n_retries for r in reports)} retransmissions total")
        print(f"exact detections: {exact}/{len(reports)} "
              f"(false positives: {fp}, false negatives: {fn})")
        return 0 if exact == len(reports) else 1
    report = detect_missing_tags(
        _make_protocol(args.protocol), scenario, seed=args.seed,
        channel=channel, missing_attempts=5, backend=args.backend,
    )
    print(f"{report.protocol}: {report.n_known:,} known tags, "
          f"{len(report.true_missing)} actually missing")
    print(f"detected {len(report.detected_missing)} in {report.time_s:.2f}s "
          f"({report.n_retries} retransmissions)")
    print(f"false positives: {len(report.false_positives)}, "
          f"false negatives: {len(report.false_negatives)}"
          f"{' — exact' if report.exact else ''}")
    return 0 if report.exact else 1


def _cmd_inventory(args: argparse.Namespace) -> int:
    import asyncio

    from repro.apps.inventory import (
        AsyncInventoryService, InventorySession, run_concurrent_sessions,
        run_inventory)
    from repro.workloads.inventory import ChurnModel
    from repro.workloads.tagsets import uniform_tagset

    churn = ChurnModel(
        arrival_rate=args.churn / 2, departure_rate=args.churn / 2,
        missing_rate=args.missing_rate, return_rate=0.0)
    mode = "full replan" if args.full else "incremental replan"
    if args.sessions > 1:
        service = AsyncInventoryService(backend=args.backend)
        sessions = [
            InventorySession(
                _make_protocol(args.protocol),
                uniform_tagset(args.tags, np.random.default_rng(
                    (args.seed, i))),
                seed=args.seed + i, incremental=not args.full,
                backend=args.backend)
            for i in range(args.sessions)
        ]
        all_reports = asyncio.run(run_concurrent_sessions(
            sessions, [churn] * args.sessions, args.epochs, service,
            seed=args.seed))
        wire = sum(r.time_us for reps in all_reports for r in reps) / 1e6
        detected = sum(len(r.newly_missing)
                       for reps in all_reports for r in reps)
        batches = len(service.executed_batches)
        execs = sum(s for _, s in service.executed_batches)
        print(f"{args.protocol}: {args.sessions} concurrent sessions x "
              f"{args.epochs} epochs ({mode}, {args.backend} backend)")
        print(f"{execs} epoch polls multiplexed into {batches} "
              f"lockstep DES batches")
        print(f"total wire time {wire:.2f}s, "
              f"{detected} missing-tag detections")
        return 0
    tags = uniform_tagset(args.tags, np.random.default_rng(args.seed))
    reports = run_inventory(
        _make_protocol(args.protocol), tags, churn, args.epochs,
        seed=args.seed, incremental=not args.full, backend=args.backend)
    print(f"{args.protocol}: {args.tags:,} tags, {args.epochs} epochs, "
          f"churn {args.churn:.1%}/epoch ({mode})")
    print(f"{'epoch':>5} {'known':>7} {'present':>8} {'+arr':>5} "
          f"{'-dep':>5} {'missing':>8} {'new':>4} {'wire':>8}")
    for r in reports:
        print(f"{r.epoch:>5} {r.n_known:>7,} {r.n_present:>8,} "
              f"{r.n_arrived:>5} {r.n_departed:>5} "
              f"{len(r.detected_missing):>8} {len(r.newly_missing):>4} "
              f"{r.time_s:>7.2f}s")
    total = sum(r.time_us for r in reports) / 1e6
    print(f"total wire time {total:.2f}s over {len(reports)} epochs")
    return 0


def _cmd_estimate(args: argparse.Namespace) -> int:
    from repro.baselines.estimation import estimate_cardinality

    rng = np.random.default_rng(args.seed)
    est = estimate_cardinality(args.tags, rng, method=args.method,
                               n_rounds=args.rounds)
    err = abs(est - args.tags) / args.tags * 100
    print(f"true n = {args.tags:,}; {args.method} estimate over "
          f"{args.rounds} frames: {est:,.0f} ({err:.1f}% error)")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.experiments.cellstore import CellStore, cache_version

    directory = Path(args.directory)
    if not directory.is_dir():
        print(f"not a directory: {directory}", file=sys.stderr)
        return 2
    store = CellStore(directory, version_salt=f"v={cache_version()}|")
    live = store.load()
    if args.compact:
        store.compact(live)
    desc = store.describe()
    print(f"cache directory : {desc['directory']}")
    print(f"code version    : {cache_version()}")
    print(f"segments        : {desc['segments']}"
          + (f" ({desc['corrupt_segments']} corrupt, dropped)"
             if desc["corrupt_segments"] else ""))
    print(f"disk entries    : {desc['disk_entries']:,}"
          f" ({desc['disk_bytes']:,} bytes)")
    print(f"live entries    : {desc['live_entries']:,}")
    print(f"stale version   : {desc['stale_entries']:,}")
    print(f"superseded      : {desc['duplicate_entries']:,}")
    if desc["migrated_entries"]:
        print(f"migrated legacy : {desc['migrated_entries']:,}")
    if desc["compacted"]:
        print("compacted this run")
    return 0


def _cmd_kernels(args: argparse.Namespace) -> int:
    from repro.kernels.profile import print_report

    print_report(repeats=args.repeats, scale=args.scale,
                 bench=not args.no_bench)
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "missing":
        return _cmd_missing(args)
    if args.command == "inventory":
        return _cmd_inventory(args)
    if args.command == "estimate":
        return _cmd_estimate(args)
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "kernels":
        return _cmd_kernels(args)
    if args.command == "hostagent":
        from repro.experiments.remote import main as agent_main

        forwarded = ["--bind", args.bind, "--port", str(args.port)]
        if args.jobs is not None:
            forwarded.extend(["--jobs", str(args.jobs)])
        return agent_main(forwarded)
    if args.command == "experiments":
        from repro.experiments.__main__ import main as exp_main

        forwarded = list(args.names)
        if args.quick:
            forwarded.append("--quick")
        if args.jobs != 1:
            forwarded.extend(["--jobs", str(args.jobs)])
        if args.no_cache:
            forwarded.append("--no-cache")
        if args.cache_dir:
            forwarded.extend(["--cache-dir", args.cache_dir])
        if not args.batch:
            forwarded.append("--no-batch")
        if args.shm is not None:
            forwarded.append("--shm" if args.shm else "--no-shm")
        if args.hosts:
            forwarded.extend(["--hosts", args.hosts])
        return exp_main(forwarded)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
