"""Analytical model of TPP — paper §IV-D, eqs. (6)–(16).

Per round with ``n_i`` unread tags:

- optimal index length ``h_i`` (eq. 15): λ = n_i/2^{h_i} ∈ [ln 2, 2·ln 2);
- expected singletons (eq. 11): ``m_i = n_i · e^{-n_i/2^{h_i}}``;
- worst-case tree size for ``m_i`` leaves of depth ``h_i`` (eq. 7, the
  tree bifurcates as early as possible):
  ``L_i⁺ = 2^{k+1} − 2 + (h_i − k)·m_i`` with ``2^k < m_i <= 2^{k+1}``;
- per-poll upper bound (eq. 8): ``w_i⁺ = L_i⁺ / m_i``;
- global bound (eq. 16): ``w⁺ < 2/(µ·2) + 2 = 2·e^{ln2·?}`` … numerically
  **3.44 bits** at the worst feasible µ = ln2/e^{ln2} ≈ 0.49.

Besides the paper's worst-case tree, :func:`expected_tree_nodes` gives
the *exact* expectation of the trie size over a uniformly random
``m``-subset of the ``2^h`` leaves — a sharper model matching the
simulated ≈3.06 bits (computed with hypergeometric survival
probabilities per level, in log space for numerical stability).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.special import gammaln

from repro.core.planner import tpp_index_length

__all__ = [
    "singleton_probability",
    "optimal_h",
    "worst_case_tree_nodes",
    "worst_case_vector_length_round",
    "expected_tree_nodes",
    "tpp_round_trace",
    "expected_vector_length",
    "global_upper_bound",
    "TPPRoundModel",
]

_LN2 = math.log(2.0)
_MAX_MODEL_ROUNDS = 10_000
_EPS_TAGS = 1e-9


def singleton_probability(lam: float) -> float:
    """µ(λ) = λ·e^{−λ} — probability an index is a singleton (eq. 12).

    Peaks at 1/e for λ = 1 (paper Fig. 8).
    """
    if lam < 0:
        raise ValueError("λ must be non-negative")
    return lam * math.exp(-lam)


def optimal_h(n_unread: int) -> int:
    """Eq. (15): the integer ``h`` maximising µ (λ ∈ [ln 2, 2 ln 2))."""
    return tpp_index_length(n_unread)


def worst_case_tree_nodes(m: float, h: int) -> float:
    """Eq. (7): max nodes of a binary trie with ``m`` depth-``h`` leaves.

    The maximum is reached when the tree bifurcates as early as
    possible: a complete binary top of depth ``k`` (``2^k < m <= 2^{k+1}``)
    contributing ``2^{k+1} − 2`` nodes, then ``m`` disjoint tails of
    length ``h − k``.
    """
    if m <= 0:
        return 0.0
    if m > float(1 << h) + 1e-9:
        raise ValueError(f"cannot place {m} leaves at depth {h}")
    if m <= 1:
        return float(h)
    k = math.ceil(math.log2(m)) - 1  # 2^k < m <= 2^{k+1}
    if (1 << k) >= m:
        k -= 1
    if m > (1 << (k + 1)):
        k += 1
    return float((1 << (k + 1)) - 2 + (h - k) * m)


def worst_case_vector_length_round(m: float, h: int) -> float:
    """Eq. (8): ``w_i⁺ = L_i⁺ / m_i``."""
    if m <= 0:
        raise ValueError("m must be positive")
    return worst_case_tree_nodes(m, h) / m


def expected_tree_nodes(m: int, h: int) -> float:
    """Exact E[#nodes] of a trie over a uniform random ``m``-subset.

    A depth-``d`` node exists iff at least one of its ``2^{h-d}``
    descendant leaves is selected:

        ``E = Σ_{d=1..h} 2^d · (1 − C(2^h − 2^{h−d}, m) / C(2^h, m))``.

    Evaluated with log-gamma to stay stable for ``h`` up to ~60.
    """
    if not 0 <= m <= (1 << h):
        raise ValueError("m must be in [0, 2^h]")
    if m == 0:
        return 0.0
    total_leaves = float(1 << h)
    d = np.arange(1, h + 1, dtype=np.float64)
    absent = total_leaves - total_leaves / np.exp2(d)  # 2^h − 2^{h−d}
    # log C(absent, m) − log C(2^h, m); C(a, m) = Γ(a+1)/(Γ(m+1)Γ(a−m+1))
    with np.errstate(invalid="ignore"):
        log_ratio = (
            gammaln(absent + 1.0)
            - gammaln(absent - m + 1.0)
            - gammaln(total_leaves + 1.0)
            + gammaln(total_leaves - m + 1.0)
        )
    p_empty = np.where(absent >= m, np.exp(log_ratio), 0.0)
    return float(np.sum(np.exp2(d) * (1.0 - p_empty)))


@dataclass(frozen=True)
class TPPRoundModel:
    """One round of the TPP recursion."""

    round_no: int
    n_unread: float
    h: int
    m_singletons: float
    tree_nodes: float  # expected or worst-case broadcast bits


def tpp_round_trace(n: int | float, exact: bool = False) -> list[TPPRoundModel]:
    """Run the round recursion with eq. (11)/(15).

    Args:
        n: population size.
        exact: if True use :func:`expected_tree_nodes` (sharp model);
            otherwise the paper's worst-case eq. (7) — Fig. 9's series.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    rounds: list[TPPRoundModel] = []
    n_i = float(n)
    for round_no in range(_MAX_MODEL_ROUNDS):
        if n_i < _EPS_TAGS:
            return rounds
        if n_i <= 1.0:
            rounds.append(TPPRoundModel(round_no, n_i, 1, n_i, n_i))
            return rounds
        h = optimal_h(max(int(math.ceil(n_i)), 1))
        m_i = n_i * math.exp(-n_i / float(1 << h))  # eq. (11)
        if exact:
            nodes = expected_tree_nodes(max(int(round(m_i)), 1), h)
        else:
            nodes = worst_case_tree_nodes(m_i, h)
        rounds.append(TPPRoundModel(round_no, n_i, h, m_i, nodes))
        n_i -= m_i
    raise RuntimeError("TPP model recursion did not converge")


def expected_vector_length(
    n: int | float,
    exact: bool = False,
    round_init_bits: int = 0,
) -> float:
    """Eq. (6): per-tag vector bits ``w = Σ L_i / n`` (+ optional inits)."""
    trace = tpp_round_trace(n, exact=exact)
    total = sum(r.tree_nodes for r in trace) + round_init_bits * len(trace)
    return total / float(n)


def global_upper_bound() -> float:
    """Eq. (16): the n-independent bound on the per-round vector length.

    Eq. (13): the minimax singleton probability under the optimal-h
    policy is attained where µ(λ₁) = µ(2λ₁), i.e. λ₁ = ln 2, giving
    µ = ln 2 · e^{−ln 2} = ln 2 / 2 ≈ 0.3466.  Then m = µ·2^h implies
    k = h − 2 in eq. (8) and

        ``w⁺ = (2^{h−1} − 2)/(µ·2^h) + 2 < 1/(2µ) + 2 ≈ 3.44``.
    """
    mu = singleton_probability(_LN2)  # ln2/2
    return 1.0 / (2.0 * mu) + 2.0
