"""The per-protocol execution-time lower bound — paper §V-C.

Any C1G2-compliant information-collection protocol must, per tag, at
least transmit a minimal 4-bit framing command, pay both turnarounds and
carry the ``l``-bit reply:

    ``LB(n, l) = (t_R·4 + T1 + t_T·l + T2) · n``  µs
    (``t_R``/``t_T`` the reader/tag bit times of
    :data:`repro.phy.timing.PAPER_TIMING`).

Re-exported thinly around :func:`repro.phy.link.lower_bound_us` with the
ratio helpers the tables use.
"""

from __future__ import annotations

from repro.phy.link import lower_bound_us
from repro.phy.timing import C1G2Timing, PAPER_TIMING

__all__ = ["lower_bound_us", "lower_bound_s", "ratio_to_lower_bound"]


def lower_bound_s(n_tags: int, info_bits: int, timing: C1G2Timing = PAPER_TIMING) -> float:
    """Lower bound in seconds (the unit of the paper's tables)."""
    return lower_bound_us(n_tags, info_bits, timing) / 1e6


def ratio_to_lower_bound(
    time_s: float, n_tags: int, info_bits: int, timing: C1G2Timing = PAPER_TIMING
) -> float:
    """How many times over the lower bound a measured run is."""
    lb = lower_bound_s(n_tags, info_bits, timing)
    if lb <= 0:
        raise ValueError("lower bound is non-positive; check inputs")
    return time_s / lb
