"""Energy accounting for polling protocols.

The related work (Qiao et al., "Energy-efficient polling protocols in
RFID systems") evaluates polling by *energy*, not only time: active tags
spend battery while listening to the reader and while backscattering.
This module prices a :class:`~repro.phy.schedule.WireSchedule` (or an
:class:`~repro.core.base.InterrogationPlan`, compiled on the fly) under
a simple, configurable energy model:

- the reader transmits at ``reader_tx_mw`` during downlink bits;
- every *awake* tag listens at ``tag_rx_mw`` for the whole interrogation
  until it is read (tags sleep after replying — exactly the protocols'
  semantics), which makes short interrogations doubly valuable;
- a replying tag backscatters at ``tag_tx_mw`` for its reply bits.

The per-tag listening time is derived round by round from the plan: a
tag read in round *i* listens for rounds 1..i (approximated as: all
tags awake during a round listen to the entire round, tags polled in a
round listen on average to half of its polls).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.base import InterrogationPlan
from repro.phy.link import LinkBudget
from repro.phy.schedule import KIND_POLL, WireSchedule, compile_plan

__all__ = ["EnergyModel", "EnergyReport", "plan_energy", "schedule_energy"]


@dataclass(frozen=True)
class EnergyModel:
    """Power levels (milliwatts) for the three radio activities."""

    reader_tx_mw: float = 825.0  # typical 4 W EIRP reader, conducted ~0.8 W
    tag_rx_mw: float = 0.01  # semi-active tag listening
    tag_tx_mw: float = 0.05  # backscatter modulation

    def __post_init__(self) -> None:
        for name in ("reader_tx_mw", "tag_rx_mw", "tag_tx_mw"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


@dataclass(frozen=True)
class EnergyReport:
    """Energy totals in millijoules."""

    protocol: str
    n_tags: int
    reader_mj: float
    tag_listen_mj: float
    tag_tx_mj: float

    @property
    def tag_total_mj(self) -> float:
        return self.tag_listen_mj + self.tag_tx_mj

    @property
    def total_mj(self) -> float:
        return self.reader_mj + self.tag_total_mj

    @property
    def tag_listen_per_tag_mj(self) -> float:
        return self.tag_listen_mj / self.n_tags if self.n_tags else 0.0


def schedule_energy(
    schedule: WireSchedule,
    budget: LinkBudget | None = None,
    model: EnergyModel | None = None,
) -> EnergyReport:
    """Price a wire schedule's reader and tag-side energy.

    The reader-TX / tag-listen / tag-TX splits come from the same
    exchange rows the timing does: per-round durations from
    :meth:`~repro.phy.link.LinkBudget.schedule_round_us`, downlink bits
    from the ``downlink_bits`` column, reply bits from the poll rows'
    ``uplink_bits`` (so per-exchange-varying replies, e.g. the query
    tree's, are priced exactly rather than via a uniform approximation).

    Tags polled within a round are assumed (on average) to listen to
    half of that round before being read; tags deferred to later rounds
    listen to all of it.
    """
    budget = budget if budget is not None else LinkBudget()
    model = model if model is not None else EnergyModel()

    n_rounds = schedule.n_rounds
    round_us = budget.schedule_round_us(schedule)
    rid = schedule.round_id
    is_poll = schedule.kind == KIND_POLL
    polled = np.bincount(rid[is_poll], minlength=n_rounds)
    # tags that stay awake past a round hear all of it; tags read inside
    # it hear half of it on average
    survivors = schedule.n_tags - np.cumsum(polled)
    listen_tag_us = float(np.sum(survivors * round_us + polled * (round_us / 2.0)))
    reader_tx_us = budget.timing.reader_tx_us(schedule.reader_bits)

    us_to_s = 1e-6
    return EnergyReport(
        protocol=schedule.protocol,
        n_tags=schedule.n_tags,
        reader_mj=model.reader_tx_mw * reader_tx_us * us_to_s,
        tag_listen_mj=model.tag_rx_mw * listen_tag_us * us_to_s,
        tag_tx_mj=(
            model.tag_tx_mw * budget.timing.tag_tx_us(schedule.tag_bits) * us_to_s
        ),
    )


def plan_energy(
    plan: InterrogationPlan,
    reply_bits: int,
    budget: LinkBudget | None = None,
    model: EnergyModel | None = None,
) -> EnergyReport:
    """Price a plan's energy: compile to a wire schedule, then price that."""
    return schedule_energy(compile_plan(plan, reply_bits), budget, model)
