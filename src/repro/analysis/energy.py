"""Energy accounting for polling protocols.

The related work (Qiao et al., "Energy-efficient polling protocols in
RFID systems") evaluates polling by *energy*, not only time: active tags
spend battery while listening to the reader and while backscattering.
This module prices an :class:`~repro.core.base.InterrogationPlan` under
a simple, configurable energy model:

- the reader transmits at ``reader_tx_mw`` during downlink bits;
- every *awake* tag listens at ``tag_rx_mw`` for the whole interrogation
  until it is read (tags sleep after replying — exactly the protocols'
  semantics), which makes short interrogations doubly valuable;
- a replying tag backscatters at ``tag_tx_mw`` for its reply bits.

The per-tag listening time is derived round by round from the plan: a
tag read in round *i* listens for rounds 1..i (approximated as: all
tags awake during a round listen to the entire round, tags polled in a
round listen on average to half of its polls).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.base import InterrogationPlan
from repro.phy.link import LinkBudget

__all__ = ["EnergyModel", "EnergyReport", "plan_energy"]


@dataclass(frozen=True)
class EnergyModel:
    """Power levels (milliwatts) for the three radio activities."""

    reader_tx_mw: float = 825.0  # typical 4 W EIRP reader, conducted ~0.8 W
    tag_rx_mw: float = 0.01  # semi-active tag listening
    tag_tx_mw: float = 0.05  # backscatter modulation

    def __post_init__(self) -> None:
        for name in ("reader_tx_mw", "tag_rx_mw", "tag_tx_mw"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


@dataclass(frozen=True)
class EnergyReport:
    """Energy totals in millijoules."""

    protocol: str
    n_tags: int
    reader_mj: float
    tag_listen_mj: float
    tag_tx_mj: float

    @property
    def tag_total_mj(self) -> float:
        return self.tag_listen_mj + self.tag_tx_mj

    @property
    def total_mj(self) -> float:
        return self.reader_mj + self.tag_total_mj

    @property
    def tag_listen_per_tag_mj(self) -> float:
        return self.tag_listen_mj / self.n_tags if self.n_tags else 0.0


def plan_energy(
    plan: InterrogationPlan,
    reply_bits: int,
    budget: LinkBudget | None = None,
    model: EnergyModel | None = None,
) -> EnergyReport:
    """Price a plan's reader and tag-side energy.

    Tags polled within a round are assumed (on average) to listen to
    half of that round's polls before being read; tags deferred to later
    rounds listen to all of it.
    """
    budget = budget if budget is not None else LinkBudget()
    model = model if model is not None else EnergyModel()

    reader_tx_us = 0.0
    listen_tag_us = 0.0  # Σ over tags of listening time
    awake = plan.n_tags
    for rp in plan.rounds:
        round_us = budget.round_us(rp, reply_bits)
        tx_us = budget.timing.reader_tx_us(rp.reader_bits)
        reader_tx_us += tx_us
        polled = rp.n_polls
        # tags that stay awake past this round hear all of it; tags read
        # inside it hear half of it on average
        survivors = awake - polled
        listen_tag_us += survivors * round_us + polled * (round_us / 2.0)
        awake = survivors

    us_to_s = 1e-6
    reader_mj = model.reader_tx_mw * reader_tx_us * us_to_s
    tag_listen_mj = model.tag_rx_mw * listen_tag_us * us_to_s
    tag_tx_mj = (
        model.tag_tx_mw
        * plan.n_polls
        * budget.timing.tag_tx_us(reply_bits)
        * us_to_s
    )
    return EnergyReport(
        protocol=plan.protocol,
        n_tags=plan.n_tags,
        reader_mj=reader_mj,
        tag_listen_mj=tag_listen_mj,
        tag_tx_mj=tag_tx_mj,
    )
