"""Analytical model of HPP — paper eqs. (1)–(5).

With ``n_i`` unread tags and frame ``f_i = 2**h_i`` in round ``i``:

- singleton probability per index (eq. 1):
  ``p_i ≈ e^{-(n_i - 1)/f_i} · n_i / f_i``,
- expected singletons (eq. 2): ``n_si = n_i · e^{-(n_i - 1)/f_i}``,
- survivor recursion (eq. 3): ``n_{i+1} = n_i · (1 - e^{-(n_i-1)/f_i})``,
- average vector length (eq. 4): ``w = Σ h_i · n_si / n``,
- rough upper bound (eq. 5): ``w⁺ = ⌈log₂ n⌉``.

The recursion is evaluated in continuous ``n_i`` exactly as the paper's
Fig. 3 does.  ``expected_total_bits`` additionally charges the per-round
initiation command so the EHPP optimiser can reason about full HPP cost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.planner import IndexLengthPolicy, hpp_index_length

__all__ = [
    "HPPRoundModel",
    "hpp_round_trace",
    "expected_vector_length",
    "expected_total_bits",
    "expected_rounds",
    "vector_length_upper_bound",
    "singleton_fraction",
]

#: stop the continuous recursion once fewer than this many tags remain.
_EPS_TAGS = 1e-9
_MAX_MODEL_ROUNDS = 10_000


def singleton_fraction(n: float, f: float) -> float:
    """Fraction of the ``n`` unread tags read this round (eq. 1/2 ÷ n).

    Equals ``e^{-(n-1)/f}``; the paper's 36.8 %–60.7 % band corresponds
    to λ = n/f ∈ (0.5, 1].
    """
    if n <= 0 or f <= 0:
        raise ValueError("n and f must be positive")
    return math.exp(-(n - 1.0) / f)


@dataclass(frozen=True)
class HPPRoundModel:
    """One round of the continuous recursion."""

    round_no: int
    n_unread: float
    h: int
    n_singletons: float

    @property
    def frame(self) -> int:
        return 1 << self.h


def hpp_round_trace(
    n: int | float,
    policy: IndexLengthPolicy | None = None,
) -> list[HPPRoundModel]:
    """Evaluate the recursion (eq. 3) until the population is exhausted."""
    if n <= 0:
        raise ValueError("n must be positive")
    choose_h = policy if policy is not None else hpp_index_length
    rounds: list[HPPRoundModel] = []
    n_i = float(n)
    for round_no in range(_MAX_MODEL_ROUNDS):
        if n_i < _EPS_TAGS:
            return rounds
        h = choose_h(max(int(math.ceil(n_i)), 1))
        f = float(1 << h)
        n_si = n_i * singleton_fraction(n_i, f)
        if n_i <= 1.0:
            # a lone tag is always a singleton; close the recursion
            rounds.append(HPPRoundModel(round_no, n_i, h, n_i))
            return rounds
        rounds.append(HPPRoundModel(round_no, n_i, h, n_si))
        n_i -= n_si
    raise RuntimeError("HPP model recursion did not converge")


def expected_vector_length(n: int | float, policy: IndexLengthPolicy | None = None) -> float:
    """The paper's eq. (4): average per-tag polling-vector length."""
    trace = hpp_round_trace(n, policy)
    return sum(r.h * r.n_singletons for r in trace) / float(n)


def expected_total_bits(
    n: int | float,
    round_init_bits: int = 0,
    policy: IndexLengthPolicy | None = None,
) -> float:
    """Expected total reader polling bits for an ``n``-tag HPP run.

    ``Σ h_i·n_si`` plus ``round_init_bits`` per round — the cost term the
    EHPP subset-size optimiser minimises per circle.
    """
    trace = hpp_round_trace(n, policy)
    return sum(r.h * r.n_singletons for r in trace) + round_init_bits * len(trace)


def expected_rounds(n: int | float, policy: IndexLengthPolicy | None = None) -> int:
    """Number of rounds until the continuous recursion exhausts ``n``."""
    return len(hpp_round_trace(n, policy))


def vector_length_upper_bound(n: int | float) -> float:
    """Eq. (5): ``w⁺ = ⌈log₂ n⌉``."""
    if n < 1:
        raise ValueError("n must be >= 1")
    return float(math.ceil(math.log2(n))) if n > 1 else 1.0
