"""Analytical model of the MIC baseline (Chen et al., INFOCOM 2011).

MIC is an ALOHA-frame protocol with ``k`` hash functions: in each frame
of ``f`` slots the reader greedily turns as many slots as possible into
singletons by letting each still-unassigned tag fall back through its
``k`` hash choices, then broadcasts an indicator vector
(⌈log₂(k+1)⌉ bits per slot) telling each slot which hash it serves.

The useful-slot fraction at load λ = n/f follows the pass recursion

    pass j:  the ``u_j`` unassigned tags hash uniformly over the whole
             frame, so each of the ``s_j`` still-free slots becomes a
             singleton with probability λ_j·e^{−λ_j}, λ_j = u_j / f,

with ``u_1 = n``, ``s_1 = f``.  At λ = 1 and k = 7 the model yields
≈ 86 % useful slots — matching the MIC paper's "wasted slots drop from
63.2 % to 13.9 %" claim and the greedy simulator in
:mod:`repro.baselines.mic` (integration-tested against each other).
"""

from __future__ import annotations

import math

__all__ = [
    "useful_slot_fraction",
    "tag_resolution_fraction",
    "wasted_slot_fraction",
    "indicator_bits_per_slot",
    "expected_total_slots_per_tag",
]


def useful_slot_fraction(k: int, load: float = 1.0) -> float:
    """Fraction of frame *slots* made singleton after ``k`` greedy passes."""
    if k < 1:
        raise ValueError("k must be >= 1")
    if load <= 0:
        raise ValueError("load must be positive")
    free = 1.0  # free slots, as a fraction of the frame
    unassigned = load  # unassigned tags, per frame slot
    useful = 0.0
    for _ in range(k):
        if free <= 1e-12 or unassigned <= 1e-12:
            break
        # each unassigned tag hashes uniformly over the WHOLE frame, so a
        # free slot is singleton w.p. λe^{−λ} with λ = unassigned / f
        lam = unassigned
        singles = free * lam * math.exp(-lam)
        useful += singles
        free -= singles
        unassigned -= singles
    return useful


def tag_resolution_fraction(k: int, load: float = 1.0) -> float:
    """Fraction of the frame's *tags* resolved (one per useful slot)."""
    return useful_slot_fraction(k, load) / load


def wasted_slot_fraction(k: int, load: float = 1.0) -> float:
    """1 − useful slot fraction; the MIC paper reports 13.9 % at k = 7."""
    return 1.0 - useful_slot_fraction(k, load)


def indicator_bits_per_slot(k: int) -> int:
    """⌈log₂(k+1)⌉ bits: hash id 1..k or 0 = useless slot."""
    if k < 1:
        raise ValueError("k must be >= 1")
    return max(1, math.ceil(math.log2(k + 1)))


def expected_total_slots_per_tag(k: int, load: float = 1.0) -> float:
    """Total frame slots walked per tag across all frames.

    With frames sized ``f_i = n_i / load`` each frame resolves a
    fraction ρ of its tags, so the geometric series of frame sizes sums
    to ``(1/load) / ρ`` slots per tag.  At load 1 and k = 7 this is
    ≈ 1.16 — the multiplier behind the paper's Table I–III MIC rows.
    """
    rho = tag_resolution_fraction(k, load)
    if rho <= 0:
        raise ValueError("degenerate parameters: no tag is ever resolved")
    return (1.0 / load) / rho
