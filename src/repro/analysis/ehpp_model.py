"""Analytical model of EHPP — paper §III-D and Theorem 1.

Per circle with subset size ``n'`` and circle-command length ``l_c`` the
per-tag vector length is ``w = h(n')/n' + l_c/n'``, where ``h(n')`` is
HPP's expected total polling bits over ``n'`` tags.  Theorem 1 brackets
the minimiser: ``n* ∈ [l_c·ln 2, e·l_c·ln 2]``.  This module provides the
bracket, a numerical search for the exact integer minimiser (using the
full eq.-4 recursion, optionally charging the per-round initiation
command), and the whole-population expected vector length used to
reproduce Fig. 5.
"""

from __future__ import annotations

import math
from functools import lru_cache

from repro.analysis.hpp_model import expected_total_bits

__all__ = [
    "subset_size_bounds",
    "circle_cost_per_tag",
    "optimal_subset_size",
    "expected_vector_length",
]

_LN2 = math.log(2.0)
_E = math.e


def subset_size_bounds(circle_command_bits: int) -> tuple[float, float]:
    """Theorem 1's bracket ``[l_c·ln 2, e·l_c·ln 2]`` for the optimum."""
    if circle_command_bits < 0:
        raise ValueError("circle_command_bits must be non-negative")
    return (circle_command_bits * _LN2, _E * circle_command_bits * _LN2)


def circle_cost_per_tag(
    subset_size: int,
    circle_command_bits: int,
    round_init_bits: int = 0,
) -> float:
    """Per-tag vector bits of one circle of ``subset_size`` tags."""
    if subset_size < 1:
        raise ValueError("subset_size must be positive")
    total = expected_total_bits(subset_size, round_init_bits) + circle_command_bits
    return total / subset_size


@lru_cache(maxsize=None)
def optimal_subset_size(
    circle_command_bits: int,
    round_init_bits: int = 0,
    global_search: bool = False,
) -> int:
    """Numerically search the integer subset size minimising circle cost.

    The default follows the paper ("According to Theorem 1, we can
    numerically search the optimal n' for an arbitrary given l_c"):
    the search is confined to Theorem 1's bracket.  Because the exact
    per-circle cost is *stepwise* in ⌈log₂ n'⌉ (the smooth µ·log₂ n'
    model behind the theorem is an upper envelope), near-tied local
    minima also exist just below powers of two slightly outside the
    bracket; pass ``global_search=True`` to find the true discrete
    optimum (the ablation in EXPERIMENTS.md shows the two differ by
    under ~2 % in cost).
    """
    lo_f, hi_f = subset_size_bounds(circle_command_bits)
    if global_search:
        lo, hi = 2, max(int(math.ceil(hi_f * 4)), 64)
    else:
        lo, hi = max(int(math.floor(lo_f)), 2), max(int(math.ceil(hi_f)), 3)
    best_n, best_cost = lo, float("inf")
    for n_prime in range(lo, hi + 1):
        cost = circle_cost_per_tag(n_prime, circle_command_bits, round_init_bits)
        if cost < best_cost:
            best_n, best_cost = n_prime, cost
    return best_n


def expected_vector_length(
    n: int,
    circle_command_bits: int,
    round_init_bits: int = 0,
    subset_size: int | None = None,
) -> float:
    """Whole-population per-tag vector length (Fig. 5's series).

    Full circles of ``subset_size`` tags pay ``l_c`` each; the final
    remainder (≤ subset size) runs bare HPP — matching
    :class:`repro.core.ehpp.EHPP`.
    """
    if n < 1:
        raise ValueError("n must be positive")
    n_star = subset_size if subset_size is not None else optimal_subset_size(
        circle_command_bits, round_init_bits
    )
    total = 0.0
    remaining = n
    while remaining > n_star:
        total += expected_total_bits(n_star, round_init_bits) + circle_command_bits
        remaining -= n_star
    if remaining:
        total += expected_total_bits(remaining, round_init_bits)
    return total / n
