"""Execution-time model — paper §V-A and Fig. 1.

Per-tag collection time with a ``w``-bit polling vector and ``l``-bit
information under the C1G2 timing constants (reader bit time ``t_R``,
tag bit time ``t_T``, both from :data:`repro.phy.timing.PAPER_TIMING`):

    ``t(w, l) = t_R·(4 + w) + T1 + t_T·l + T2``  µs,

and CPP's variant without the 4-bit framing (the reader broadcasts the
raw 96-bit ID): ``t_CPP(l) = t_R·96 + T1 + t_T·l + T2``.
"""

from __future__ import annotations

import numpy as np

from repro.phy.timing import C1G2Timing, PAPER_TIMING

__all__ = [
    "per_tag_time_us",
    "cpp_per_tag_time_us",
    "execution_time_curve",
]


def per_tag_time_us(
    vector_bits: float | np.ndarray,
    info_bits: float = 1,
    timing: C1G2Timing = PAPER_TIMING,
    framing_bits: float = 4,
) -> float | np.ndarray:
    """The paper's per-poll formula; vectorised over ``vector_bits``."""
    w = np.asarray(vector_bits, dtype=np.float64)
    t = (
        timing.reader_bit_us * (framing_bits + w)
        + timing.t1_us
        + timing.tag_bit_us * info_bits
        + timing.t2_us
    )
    return float(t) if np.ndim(vector_bits) == 0 else t


def cpp_per_tag_time_us(
    info_bits: float = 1,
    id_bits: int = 96,
    timing: C1G2Timing = PAPER_TIMING,
) -> float:
    """CPP's per-tag time: bare ID broadcast, no framing command."""
    return float(per_tag_time_us(id_bits, info_bits, timing, framing_bits=0))


def execution_time_curve(
    max_vector_bits: int = 96,
    info_bits: int = 1,
    timing: C1G2Timing = PAPER_TIMING,
) -> tuple[np.ndarray, np.ndarray]:
    """Fig. 1's series: (vector length, per-tag execution time in ms)."""
    if max_vector_bits < 0:
        raise ValueError("max_vector_bits must be non-negative")
    w = np.arange(max_vector_bits + 1, dtype=np.float64)
    t_ms = per_tag_time_us(w, info_bits, timing) / 1e3
    return w, t_ms
