"""Closed-form analytical models from the paper.

These mirror the evaluation's theory curves (Figs. 1, 3, 4, 5, 8, 9) and
serve as oracles for the simulators: every protocol's integration tests
compare the measured per-tag vector length against the matching model.
"""

from repro.analysis import ehpp_model, exec_time, hpp_model, lower_bound, mic_model, tpp_model

__all__ = [
    "ehpp_model",
    "exec_time",
    "hpp_model",
    "lower_bound",
    "mic_model",
    "tpp_model",
]
