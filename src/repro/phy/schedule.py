"""The wire-schedule IR: one columnar exchange list every consumer prices.

The paper's entire evaluation (§V) reduces every protocol to the same
wire primitive — a framed downlink command, a turnaround, an (expected)
uplink reply, a turnaround.  A :class:`WireSchedule` is the flat list of
those exchanges, stored as parallel numpy columns so costing stays
vectorised at 10^5 tags:

==================  =====================================================
column              meaning
==================  =====================================================
``kind``            :data:`KIND_BROADCAST` (back-to-back reader TX, no
                    reply window), :data:`KIND_POLL` (one tag replies),
                    :data:`KIND_EMPTY_SLOT` (reader transmits framing,
                    nobody answers), :data:`KIND_COLLISION_SLOT` (≥2
                    tags garble the reply window).
``downlink_bits``   reader bits of the exchange, framing included.
``uplink_bits``     polls: the expected reply length; collision slots:
                    the garbled reply length (scaled by the budget's
                    collision factor at costing time); empty slots: the
                    reply *window* the reader waits out before declaring
                    silence (0 = classic empty slot, the reader stops at
                    the turnarounds; >0 = the synchronous-frame
                    convention of TRP-style 1-bit slots); broadcasts: 0.
``tag_idx``         polls: global index of the replying tag, or -1 when
                    the protocol cannot identify the replier (TRP's
                    anonymous busy-slots); -1 for every other kind.
``round_id``        non-decreasing group id; one reader round / ALOHA
                    frame / query-tree query per group.
==================  =====================================================

Producers:

- :func:`compile_plan` lowers an
  :class:`~repro.core.base.InterrogationPlan` (the uniform-reply model
  of the seven core protocols and the ALOHA/MIC baselines);
- :class:`ScheduleBuilder` appends rows directly, for baselines whose
  per-exchange costs vary (query tree) or that never build a plan at
  all (TRP, IIP).

Consumers: :meth:`repro.phy.link.LinkBudget.schedule_us` (vectorised
costing), the DES executors in :mod:`repro.sim` (both backends walk
:meth:`WireSchedule.iter_rounds`), :func:`repro.analysis.energy.schedule_energy`,
and :mod:`repro.io` (versioned JSON round-trip).  The cost *formula*
itself lives only in :class:`~repro.phy.link.LinkBudget`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.base import InterrogationPlan
    from repro.phy.link import LinkBudget
    from repro.workloads.tagsets import TagSet

__all__ = [
    "KIND_BROADCAST",
    "KIND_POLL",
    "KIND_EMPTY_SLOT",
    "KIND_COLLISION_SLOT",
    "KIND_NAMES",
    "CostIndex",
    "RoundPatch",
    "WireSchedule",
    "ScheduleBatch",
    "RoundView",
    "ScheduleBuilder",
    "ScheduleEmitter",
    "compile_plan",
    "build_schedule_batch",
]

KIND_BROADCAST = 0
KIND_POLL = 1
KIND_EMPTY_SLOT = 2
KIND_COLLISION_SLOT = 3

KIND_NAMES = ("broadcast", "poll", "empty_slot", "collision_slot")


def _segmented_arange(counts: np.ndarray) -> np.ndarray:
    """``concatenate([arange(c) for c in counts])`` without the loop."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    starts = np.cumsum(counts) - counts
    return np.arange(total, dtype=np.int64) - np.repeat(starts, counts)


@dataclass(frozen=True)
class CostIndex:
    """Budget-independent aggregates a :class:`WireSchedule` is priced from.

    Everything here depends only on the columns, never on the
    :class:`~repro.phy.link.LinkBudget`, so it is computed once per
    schedule (see :meth:`WireSchedule.cost_index`) and reused across
    budgets and repeated costings — pricing a cached 10^5-row schedule
    then touches only these run-length arrays.

    ``down_sums[r, k]`` is the total downlink payload of kind ``k`` in
    round ``r`` (float64 holding an exact integer: integer sums are
    order-independent and stay exact below 2^53, matching the legacy
    loop's sum-payload-then-multiply arithmetic).

    The ``run_*`` columns group rows into runs of identical
    ``(round, kind, chain inputs)``: a run boundary falls wherever the
    round, the kind, the uplink width, or (for wasted slots) the slot
    framing changes.  Poll downlink is excluded on purpose — a poll's
    turnaround chain depends only on its reply width, and splitting a
    round's polls by vector length would turn the legacy loop's single
    ``n_polls * chain`` product into a sum of partial products with
    different IEEE-754 roundings.  Compiled plans emit each round's rows
    in contiguous per-kind blocks with uniform bits, so every
    ``(round, kind)`` pair is exactly one run and ``count * chain``
    reproduces the loop's floats — without the lexicographic sort
    ``np.unique(axis=0)`` would pay.
    """

    down_sums: np.ndarray  # (n_rounds, 4) float64, integer-valued
    run_rid: np.ndarray
    run_kind: np.ndarray
    run_down: np.ndarray  # slot framing bits; 0 on poll runs
    run_up: np.ndarray
    run_count: np.ndarray


def _build_cost_index(schedule: "WireSchedule") -> CostIndex:
    rid = schedule.round_id
    kind = schedule.kind
    down = schedule.downlink_bits
    up = schedule.uplink_bits
    n_rounds = schedule.n_rounds
    down_sums = np.bincount(
        rid * 4 + kind,
        weights=down.astype(np.float64),
        minlength=4 * n_rounds,
    ).reshape(n_rounds, 4)
    slot_down = np.where(kind == KIND_POLL, 0, down)
    first = np.empty(rid.shape, dtype=bool)
    if first.size:
        first[0] = True
    np.not_equal(rid[1:], rid[:-1], out=first[1:])
    first[1:] |= kind[1:] != kind[:-1]
    first[1:] |= up[1:] != up[:-1]
    first[1:] |= slot_down[1:] != slot_down[:-1]
    starts = np.flatnonzero(first)
    return CostIndex(
        down_sums=down_sums,
        run_rid=rid[starts],
        run_kind=kind[starts],
        run_down=slot_down[starts],
        run_up=up[starts],
        run_count=np.diff(starts, append=rid.size),
    )


@dataclass(frozen=True)
class RoundView:
    """One round's rows, split by kind (the executors' working unit)."""

    round_id: int
    broadcast_bits: np.ndarray
    poll_downlink: np.ndarray
    poll_uplink: np.ndarray
    poll_tag: np.ndarray
    empty_downlink: np.ndarray
    empty_uplink: np.ndarray
    collision_downlink: np.ndarray
    collision_uplink: np.ndarray

    @property
    def init_bits(self) -> int:
        """Total broadcast bits opening the round."""
        return int(self.broadcast_bits.sum())

    @property
    def n_polls(self) -> int:
        return int(self.poll_downlink.size)


@dataclass
class WireSchedule:
    """Columnar list of wire exchanges (see the module docstring)."""

    protocol: str
    n_tags: int
    kind: np.ndarray
    downlink_bits: np.ndarray
    uplink_bits: np.ndarray
    tag_idx: np.ndarray
    round_id: np.ndarray
    meta: dict[str, Any] = field(default_factory=dict)
    _cost_index: CostIndex | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        self.kind = np.asarray(self.kind, dtype=np.int8)
        self.downlink_bits = np.asarray(self.downlink_bits, dtype=np.int64)
        self.uplink_bits = np.asarray(self.uplink_bits, dtype=np.int64)
        self.tag_idx = np.asarray(self.tag_idx, dtype=np.int64)
        self.round_id = np.asarray(self.round_id, dtype=np.int64)

    #: exchange-column export order for :meth:`columns`
    _COLUMN_NAMES = ("kind", "downlink_bits", "uplink_bits", "tag_idx",
                     "round_id")

    def columns(self) -> dict[str, np.ndarray]:
        """The exchange columns, suitable for shared-memory export.

        A deferred :class:`ScheduleBatch` materialises first (reading
        any exchange column forces them all).
        """
        return {name: getattr(self, name) for name in self._COLUMN_NAMES}

    @classmethod
    def from_columns(
        cls,
        protocol: str,
        n_tags: int,
        columns: dict[str, np.ndarray],
        meta: dict[str, Any] | None = None,
    ) -> "WireSchedule":
        """Rebuild a schedule over externally owned column buffers.

        Zero-copy when the columns already carry the canonical dtypes
        (``__post_init__``'s ``np.asarray`` passes them through) — e.g.
        read-only views attached from a shared-memory segment.  All
        downstream consumers (cost index, DES executors) read the
        columns without mutating them, so read-only buffers are safe.
        """
        return cls(
            protocol=protocol,
            n_tags=n_tags,
            meta=dict(meta or {}),
            **{name: columns[name] for name in cls._COLUMN_NAMES},
        )

    def cost_index(self) -> CostIndex:
        """Memoised costing aggregates; treat the columns as frozen
        once a schedule has been priced."""
        if self._cost_index is None:
            self._cost_index = _build_cost_index(self)
        return self._cost_index

    # ------------------------------------------------------------------
    # aggregate metrics (mirror InterrogationPlan's, from the columns)
    # ------------------------------------------------------------------
    @property
    def n_exchanges(self) -> int:
        return int(self.kind.size)

    @property
    def n_rounds(self) -> int:
        return int(self.round_id[-1]) + 1 if self.round_id.size else 0

    @property
    def n_polls(self) -> int:
        return int(np.count_nonzero(self.kind == KIND_POLL))

    @property
    def n_empty_slots(self) -> int:
        return int(np.count_nonzero(self.kind == KIND_EMPTY_SLOT))

    @property
    def n_collision_slots(self) -> int:
        return int(np.count_nonzero(self.kind == KIND_COLLISION_SLOT))

    @property
    def wasted_slots(self) -> int:
        return self.n_empty_slots + self.n_collision_slots

    @property
    def reader_bits(self) -> int:
        """Total downlink bits, framing included (= plan ``reader_bits``)."""
        return int(self.downlink_bits.sum())

    @property
    def tag_bits(self) -> int:
        """Total bits successfully delivered uplink (poll replies only)."""
        return int(self.uplink_bits[self.kind == KIND_POLL].sum())

    def polled_tags(self) -> np.ndarray:
        """Global indices of polled tags, in wire order (-1 = anonymous)."""
        return self.tag_idx[self.kind == KIND_POLL]

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Structural invariants; raises ValueError on violation."""
        n = self.kind.size
        for name in ("downlink_bits", "uplink_bits", "tag_idx", "round_id"):
            col = getattr(self, name)
            if col.ndim != 1 or col.size != n:
                raise ValueError(f"column {name} misaligned: {col.shape} vs ({n},)")
        if n == 0:
            return
        if self.kind.min() < KIND_BROADCAST or self.kind.max() > KIND_COLLISION_SLOT:
            raise ValueError("unknown exchange kind")
        if self.downlink_bits.min() < 0 or self.uplink_bits.min() < 0:
            raise ValueError("bit counts must be non-negative")
        if self.round_id[0] < 0 or np.any(np.diff(self.round_id) < 0):
            raise ValueError("round_id must be non-negative and non-decreasing")
        if self.tag_idx.min() < -1 or self.tag_idx.max() >= max(self.n_tags, 1):
            raise ValueError("tag_idx out of range")
        if np.any(self.tag_idx[self.kind != KIND_POLL] != -1):
            raise ValueError("only poll rows may carry a tag index")

    # ------------------------------------------------------------------
    def splice(self, patches: "list[RoundPatch]") -> "WireSchedule":
        """Replace round blocks per ``patches``; a new schedule is returned.

        The identity fast path (no patches) returns ``self`` unchanged.
        Kept rows are sliced, not copied row-by-row, so a splice costs
        O(changed rows) patch assembly plus O(segments) concatenation;
        the result's cost index is rebuilt lazily on first pricing.
        """
        return _splice_schedule(self, patches)

    # ------------------------------------------------------------------
    def iter_rounds(self) -> Iterator[RoundView]:
        """Yield per-round views (rows grouped by ``round_id``)."""
        bounds = np.searchsorted(self.round_id, np.arange(self.n_rounds + 1))
        for r in range(self.n_rounds):
            lo, hi = int(bounds[r]), int(bounds[r + 1])
            kind = self.kind[lo:hi]
            down = self.downlink_bits[lo:hi]
            up = self.uplink_bits[lo:hi]
            tag = self.tag_idx[lo:hi]
            is_p = kind == KIND_POLL
            is_e = kind == KIND_EMPTY_SLOT
            is_c = kind == KIND_COLLISION_SLOT
            yield RoundView(
                round_id=r,
                broadcast_bits=down[kind == KIND_BROADCAST],
                poll_downlink=down[is_p],
                poll_uplink=up[is_p],
                poll_tag=tag[is_p],
                empty_downlink=down[is_e],
                empty_uplink=up[is_e],
                collision_downlink=down[is_c],
                collision_uplink=up[is_c],
            )


# ----------------------------------------------------------------------
# the compiler: InterrogationPlan -> WireSchedule
# ----------------------------------------------------------------------
def compile_plan(plan: "InterrogationPlan", reply_bits: int = 1) -> WireSchedule:
    """Lower a plan to its wire schedule.

    ``reply_bits`` fills the uplink column: it is a property of the
    collection task (how much information each tag carries), not of the
    plan, exactly as in :func:`repro.phy.link.plan_wire_time`.

    Row order per round: the initiation broadcast, then the polls (plan
    order), then the empty slots, then the collision slots.  Slot order
    within an ALOHA/MIC frame is interleaved on the real wire; grouping
    by kind is cost- and counter-preserving, and the DES executors
    consume rows through per-kind pools (:class:`RoundView`).
    """
    if reply_bits < 0:
        raise ValueError("reply_bits must be non-negative")
    rounds = plan.rounds
    n_rounds = len(rounds)
    if n_rounds == 0:
        empty = np.empty(0, dtype=np.int64)
        return WireSchedule(
            protocol=plan.protocol, n_tags=plan.n_tags,
            kind=empty, downlink_bits=empty, uplink_bits=empty,
            tag_idx=empty, round_id=empty,
            meta={**plan.meta, "reply_bits": int(reply_bits)},
        )

    init = np.fromiter((r.init_bits for r in rounds), np.int64, n_rounds)
    n_polls = np.fromiter(
        (r.poll_vector_bits.size for r in rounds), np.int64, n_rounds
    )
    n_empty = np.fromiter((r.empty_slots for r in rounds), np.int64, n_rounds)
    n_coll = np.fromiter((r.collision_slots for r in rounds), np.int64, n_rounds)
    poll_ov = np.fromiter(
        (r.poll_overhead_bits for r in rounds), np.int64, n_rounds
    )
    slot_ov = np.fromiter(
        (r.slot_overhead_bits for r in rounds), np.int64, n_rounds
    )

    rows_per_round = 1 + n_polls + n_empty + n_coll
    total = int(rows_per_round.sum())
    kind = np.empty(total, dtype=np.int8)
    downlink = np.empty(total, dtype=np.int64)
    uplink = np.zeros(total, dtype=np.int64)
    tag_idx = np.full(total, -1, dtype=np.int64)
    round_id = np.repeat(np.arange(n_rounds, dtype=np.int64), rows_per_round)

    start = np.cumsum(rows_per_round) - rows_per_round
    kind[start] = KIND_BROADCAST
    downlink[start] = init

    pos = np.repeat(start + 1, n_polls) + _segmented_arange(n_polls)
    kind[pos] = KIND_POLL
    downlink[pos] = np.concatenate(
        [r.poll_vector_bits for r in rounds]
    ) + np.repeat(poll_ov, n_polls)
    uplink[pos] = reply_bits
    tag_idx[pos] = np.concatenate([r.poll_tag_idx for r in rounds])

    pos = np.repeat(start + 1 + n_polls, n_empty) + _segmented_arange(n_empty)
    kind[pos] = KIND_EMPTY_SLOT
    downlink[pos] = np.repeat(slot_ov, n_empty)

    pos = (
        np.repeat(start + 1 + n_polls + n_empty, n_coll)
        + _segmented_arange(n_coll)
    )
    kind[pos] = KIND_COLLISION_SLOT
    downlink[pos] = np.repeat(slot_ov, n_coll)
    uplink[pos] = reply_bits

    meta = {**plan.meta, "reply_bits": int(reply_bits)}
    if int(poll_ov.min()) == int(poll_ov.max()):
        # uniform poll framing: recorded so ScheduleBatch.from_schedules
        # can recover the plan's vector-bits numerator from the columns
        meta["poll_overhead_bits"] = int(poll_ov[0])
    return WireSchedule(
        protocol=plan.protocol,
        n_tags=plan.n_tags,
        kind=kind,
        downlink_bits=downlink,
        uplink_bits=uplink,
        tag_idx=tag_idx,
        round_id=round_id,
        meta=meta,
    )


# ----------------------------------------------------------------------
# round-block splicing: the incremental replanner's patch primitive
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RoundPatch:
    """Replacement rows for one contiguous block of rounds.

    Applied by :meth:`WireSchedule.splice`: rounds ``[start, stop)`` of
    the target schedule are replaced by this patch's rows.  ``stop ==
    start`` inserts the block before round ``start`` (``start ==
    n_rounds`` appends); a patch with ``n_rounds == 0`` (no rows)
    deletes the block.  ``round_id`` is patch-local — contiguous ids
    ``0..n_rounds-1`` — and is rebased during the splice, as are the
    round ids of every row after the patch, so the result's round ids
    stay contiguous.
    """

    start: int
    stop: int
    n_rounds: int
    kind: np.ndarray
    downlink_bits: np.ndarray
    uplink_bits: np.ndarray
    tag_idx: np.ndarray
    round_id: np.ndarray

    def __post_init__(self) -> None:
        if not 0 <= self.start <= self.stop:
            raise ValueError("need 0 <= start <= stop")
        object.__setattr__(self, "kind", np.asarray(self.kind, dtype=np.int8))
        for name in ("downlink_bits", "uplink_bits", "tag_idx", "round_id"):
            object.__setattr__(
                self, name, np.asarray(getattr(self, name), dtype=np.int64))
            if getattr(self, name).shape != self.kind.shape:
                raise ValueError(f"patch column {name} misaligned")
        if self.round_id.size:
            if int(self.round_id[0]) != 0 or np.any(np.diff(self.round_id) < 0):
                raise ValueError("patch round ids must start at 0, non-decreasing")
            if int(self.round_id[-1]) != self.n_rounds - 1:
                raise ValueError("patch round ids must cover 0..n_rounds-1")
        elif self.n_rounds:
            raise ValueError("a patch with rows=0 must have n_rounds=0")

    @classmethod
    def from_rounds(
        cls,
        start: int,
        stop: int,
        rounds: list[tuple[int, Any, np.ndarray]],
        reply_bits: int = 1,
        poll_overhead_bits: int | None = None,
    ) -> "RoundPatch":
        """Build a patch from planner-style round tuples.

        ``rounds`` entries are ``(init_bits, poll_bits, poll_tag_idx)``
        exactly as :func:`build_schedule_batch` consumes them —
        ``poll_bits`` a per-poll int64 array or a scalar applied to
        every poll.  Rows follow :func:`compile_plan`'s order (the
        initiation broadcast, then the polls in plan order).
        """
        if poll_overhead_bits is None:
            from repro.phy.commands import DEFAULT_COMMAND_SIZES

            poll_overhead_bits = DEFAULT_COMMAND_SIZES.query_rep
        n_rounds = len(rounds)
        n_polls = np.fromiter((np.size(rd[2]) for rd in rounds), np.int64,
                              n_rounds)
        rows_per_round = 1 + n_polls
        total = int(rows_per_round.sum())
        kind = np.empty(total, dtype=np.int8)
        downlink = np.empty(total, dtype=np.int64)
        uplink = np.zeros(total, dtype=np.int64)
        tag_idx = np.full(total, -1, dtype=np.int64)
        round_id = np.repeat(np.arange(n_rounds, dtype=np.int64),
                             rows_per_round)
        start_rows = np.cumsum(rows_per_round) - rows_per_round
        kind[start_rows] = KIND_BROADCAST
        downlink[start_rows] = np.fromiter(
            (rd[0] for rd in rounds), np.int64, n_rounds)
        pos = np.repeat(start_rows + 1, n_polls) + _segmented_arange(n_polls)
        kind[pos] = KIND_POLL
        if total > n_rounds:
            downlink[pos] = np.concatenate([
                rd[1] if isinstance(rd[1], np.ndarray)
                else np.full(int(np.size(rd[2])), rd[1], dtype=np.int64)
                for rd in rounds
            ]) + poll_overhead_bits
            tag_idx[pos] = np.concatenate(
                [np.asarray(rd[2], dtype=np.int64) for rd in rounds])
        uplink[pos] = reply_bits
        return cls(start=start, stop=stop, n_rounds=n_rounds, kind=kind,
                   downlink_bits=downlink, uplink_bits=uplink,
                   tag_idx=tag_idx, round_id=round_id)


def _splice_schedule(schedule: "WireSchedule",
                     patches: list[RoundPatch]) -> "WireSchedule":
    if not patches:
        return schedule
    # Stable sort: patches address *original* round ids, so an insertion
    # (start == stop) consumes no rounds and may share its position with
    # a replace/delete starting there — the insertion's rows land first.
    # Several insertions at one position apply in the order given.
    order = sorted(patches, key=lambda p: (p.start, p.stop))
    n_rounds = schedule.n_rounds
    prev_stop = 0
    for p in order:
        if p.start < prev_stop or p.stop > n_rounds:
            raise ValueError("patches overlap or run past the schedule")
        prev_stop = max(prev_stop, p.stop)
    rid = schedule.round_id
    cols = (schedule.kind, schedule.downlink_bits, schedule.uplink_bits,
            schedule.tag_idx)
    pieces: list[tuple] = []  # (kind, down, up, tag, round_id)
    row = 0
    delta = 0
    for p in order:
        lo = int(np.searchsorted(rid, p.start, side="left"))
        hi = int(np.searchsorted(rid, p.stop, side="left"))
        if lo > row:
            pieces.append(tuple(c[row:lo] for c in cols)
                          + (rid[row:lo] + delta if delta else rid[row:lo],))
        if p.kind.size:
            pieces.append((p.kind, p.downlink_bits, p.uplink_bits, p.tag_idx,
                           p.round_id + (p.start + delta)))
        delta += p.n_rounds - (p.stop - p.start)
        row = hi
    if row < rid.size:
        pieces.append(tuple(c[row:] for c in cols)
                      + (rid[row:] + delta if delta else rid[row:],))
    if pieces:
        kind, down, up, tag, new_rid = (
            np.concatenate([pc[i] for pc in pieces]) for i in range(5))
    else:
        kind = np.empty(0, dtype=np.int8)
        down = up = tag = new_rid = np.empty(0, dtype=np.int64)
    return WireSchedule(
        protocol=schedule.protocol,
        n_tags=schedule.n_tags,
        kind=kind,
        downlink_bits=down,
        uplink_bits=up,
        tag_idx=tag,
        round_id=new_rid,
        meta=dict(schedule.meta),
    )


# ----------------------------------------------------------------------
# the replica axis: R runs' schedules as one columnar batch
# ----------------------------------------------------------------------
@dataclass
class ScheduleBatch(WireSchedule):
    """R independent runs' wire schedules stacked run-major in one IR.

    A :class:`WireSchedule` plus a ``run_id`` column and per-run offset
    tables.  Run ``r`` owns rows ``[run_offsets[r], run_offsets[r+1])``
    and the *globally contiguous* round ids
    ``[run_round_offsets[r], run_round_offsets[r+1])`` — because round
    ids never straddle a run boundary, :meth:`WireSchedule.cost_index`
    and :meth:`~repro.phy.link.LinkBudget.schedule_round_us` work on the
    batch unchanged, and each per-round price is bit-identical to the
    one the standalone per-run schedule would get.

    ``tag_idx`` is *run-local* (0..run_n_tags[r]-1), exactly what
    :func:`compile_plan` would emit for that run alone, so
    :meth:`schedule_for_run` is a pure slice + round-id rebase.  The
    inherited ``n_tags`` holds the total across runs.
    """

    run_id: np.ndarray = None  # type: ignore[assignment]
    run_offsets: np.ndarray = None  # type: ignore[assignment]
    run_round_offsets: np.ndarray = None  # type: ignore[assignment]
    run_n_tags: np.ndarray = None  # type: ignore[assignment]
    run_vector_bits: np.ndarray = None  # type: ignore[assignment]
    run_metas: list[dict[str, Any]] | None = None

    #: exchange columns a deferred batch materialises on first touch
    _LAZY_COLUMNS = ("kind", "downlink_bits", "uplink_bits", "tag_idx",
                     "round_id", "run_id")

    #: a batch exports its run tag alongside the exchange columns
    _COLUMN_NAMES = _LAZY_COLUMNS

    def __post_init__(self) -> None:
        super().__post_init__()
        self._lazy = None
        self._run_n_polls = None
        self._run_reader_bits = None
        for name in ("run_id", "run_offsets", "run_round_offsets",
                     "run_n_tags", "run_vector_bits"):
            col = getattr(self, name)
            if col is None:
                raise ValueError(f"ScheduleBatch requires {name}")
            setattr(self, name, np.asarray(col, dtype=np.int64))
        if self.run_id.shape != self.kind.shape:
            raise ValueError("run_id must align with the exchange columns")
        n_runs = self.run_n_tags.size
        for name in ("run_offsets", "run_round_offsets"):
            if getattr(self, name).size != n_runs + 1:
                raise ValueError(f"{name} must have n_runs+1 entries")
        if self.run_vector_bits.size != n_runs:
            raise ValueError("run_vector_bits must have one entry per run")
        if self.run_metas is not None and len(self.run_metas) != n_runs:
            raise ValueError("run_metas must have one entry per run")

    # ------------------------------------------------------------------
    # deferred construction: aggregates now, exchange rows on demand
    # ------------------------------------------------------------------
    @classmethod
    def _deferred(
        cls,
        *,
        protocol: str,
        n_tags: int,
        meta: dict[str, Any],
        run_offsets: np.ndarray,
        run_round_offsets: np.ndarray,
        run_n_tags: np.ndarray,
        run_vector_bits: np.ndarray,
        run_metas: list[dict[str, Any]] | None,
        cost_index: CostIndex,
        run_n_polls: np.ndarray,
        run_reader_bits: np.ndarray,
        materialise,
    ) -> "ScheduleBatch":
        """Build a batch whose exchange columns don't exist yet.

        Planning a replica batch only to price it (``time_us``) or to
        read plan aggregates never needs the per-exchange rows — the
        cost index and the per-run metric vectors are computable from
        per-round aggregates at a fraction of the cost.  ``materialise``
        is called at most once, on first access to any exchange column
        (``schedule_for_run``, the DES executors, ``validate`` ...), and
        must return the full column dict; until then the batch carries
        only O(n_rounds) state.
        """
        obj = object.__new__(cls)
        obj.protocol = protocol
        obj.n_tags = int(n_tags)
        obj.meta = meta
        obj.run_offsets = run_offsets
        obj.run_round_offsets = run_round_offsets
        obj.run_n_tags = run_n_tags
        obj.run_vector_bits = run_vector_bits
        obj.run_metas = run_metas
        obj._cost_index = cost_index
        obj._run_n_polls = run_n_polls
        obj._run_reader_bits = run_reader_bits
        obj._lazy = materialise
        return obj

    def __getattr__(self, name: str):
        # only reached when ``name`` is genuinely absent: a deferred
        # batch touching an exchange column materialises them all
        d = self.__dict__
        lazy = d.get("_lazy")
        if lazy is not None and name in ScheduleBatch._LAZY_COLUMNS:
            d["_lazy"] = None
            d.update(lazy())
            return d[name]
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    def __getstate__(self):
        if self.__dict__.get("_lazy") is not None:
            _ = self.kind  # closures don't pickle; materialise first
        return dict(self.__dict__)

    @property
    def n_runs(self) -> int:
        return int(self.run_n_tags.size)

    @property
    def n_exchanges(self) -> int:
        # from the offset table, so pricing never forces the columns
        return int(self.run_offsets[-1])

    @property
    def n_rounds(self) -> int:
        # round ids are globally contiguous across runs
        return int(self.run_round_offsets[-1])

    # ------------------------------------------------------------------
    def schedule_for_run(self, r: int) -> WireSchedule:
        """Run ``r``'s rows as a standalone :class:`WireSchedule`.

        Column-for-column identical to compiling that run's plan alone
        (rounds rebased to start at 0).
        """
        lo, hi = int(self.run_offsets[r]), int(self.run_offsets[r + 1])
        meta = dict(self.run_metas[r]) if self.run_metas is not None else {}
        meta.setdefault("reply_bits", self.meta.get("reply_bits", 1))
        return WireSchedule(
            protocol=self.protocol,
            n_tags=int(self.run_n_tags[r]),
            kind=self.kind[lo:hi],
            downlink_bits=self.downlink_bits[lo:hi],
            uplink_bits=self.uplink_bits[lo:hi],
            tag_idx=self.tag_idx[lo:hi],
            round_id=self.round_id[lo:hi] - self.run_round_offsets[r],
            meta=meta,
        )

    # ------------------------------------------------------------------
    def _per_run_int_sum(self, values: np.ndarray) -> np.ndarray:
        """Exact int64 per-run sums of a per-exchange column."""
        csum = np.concatenate(([0], np.cumsum(values, dtype=np.int64)))
        return csum[self.run_offsets[1:]] - csum[self.run_offsets[:-1]]

    def per_run_metric(self, name: str) -> np.ndarray:
        """Length-R vector of a plan/schedule aggregate metric.

        Each entry is bit-identical to the same attribute computed on
        run ``r``'s standalone plan/schedule (integer metrics are exact
        int64 sums; ``avg_vector_bits`` is the same Python int/int
        division the plan property performs).
        """
        n_runs = self.n_runs
        if name == "n_rounds":
            return np.diff(self.run_round_offsets)
        if name == "n_polls":
            if self._run_n_polls is not None:
                return self._run_n_polls
            return np.bincount(
                self.run_id[self.kind == KIND_POLL], minlength=n_runs
            )[:n_runs]
        if name == "wasted_slots":
            if self._run_n_polls is not None:
                # deferred batches come from build_schedule_batch, which
                # never emits empty/collision rows
                return np.zeros(n_runs, dtype=np.int64)
            wasted = (self.kind == KIND_EMPTY_SLOT) | (
                self.kind == KIND_COLLISION_SLOT
            )
            return np.bincount(self.run_id[wasted], minlength=n_runs)[:n_runs]
        if name == "reader_bits":
            if self._run_reader_bits is not None:
                return self._run_reader_bits
            return self._per_run_int_sum(self.downlink_bits)
        if name == "avg_vector_bits":
            return np.array(
                [
                    vb / nt if nt else 0.0
                    for vb, nt in zip(
                        self.run_vector_bits.tolist(), self.run_n_tags.tolist()
                    )
                ],
                dtype=np.float64,
            )
        raise KeyError(f"unknown per-run metric {name!r}")

    # ------------------------------------------------------------------
    @classmethod
    def from_schedules(cls, schedules: list[WireSchedule],
                       protocol: str | None = None) -> "ScheduleBatch":
        """Stack standalone per-run schedules into a batch (reference path)."""
        if not schedules:
            raise ValueError("from_schedules needs at least one schedule")
        if protocol is None:
            protocol = schedules[0].protocol
        rows = np.fromiter((s.n_exchanges for s in schedules), np.int64,
                           len(schedules))
        rounds = np.fromiter((s.n_rounds for s in schedules), np.int64,
                             len(schedules))
        run_offsets = np.concatenate(([0], np.cumsum(rows)))
        run_round_offsets = np.concatenate(([0], np.cumsum(rounds)))

        def cat(cols: list[np.ndarray], dtype: type) -> np.ndarray:
            if not cols:
                return np.empty(0, dtype=dtype)
            return np.concatenate(cols)

        vector_bits = []
        for s in schedules:
            is_b = s.kind == KIND_BROADCAST
            is_p = s.kind == KIND_POLL
            ov = int(s.meta.get("poll_overhead_bits", 0))
            payload = int(s.downlink_bits[is_p].sum()) - ov * int(is_p.sum())
            vector_bits.append(int(s.downlink_bits[is_b].sum()) + payload)
        return cls(
            protocol=protocol,
            n_tags=int(sum(s.n_tags for s in schedules)),
            kind=cat([s.kind for s in schedules], np.int8),
            downlink_bits=cat([s.downlink_bits for s in schedules], np.int64),
            uplink_bits=cat([s.uplink_bits for s in schedules], np.int64),
            tag_idx=cat([s.tag_idx for s in schedules], np.int64),
            round_id=cat(
                [
                    s.round_id + off
                    for s, off in zip(schedules, run_round_offsets[:-1])
                ],
                np.int64,
            ),
            meta={"reply_bits": schedules[0].meta.get("reply_bits", 1)},
            run_id=np.repeat(
                np.arange(len(schedules), dtype=np.int64), rows
            ),
            run_offsets=run_offsets,
            run_round_offsets=run_round_offsets,
            run_n_tags=np.fromiter((s.n_tags for s in schedules), np.int64,
                                   len(schedules)),
            run_vector_bits=np.asarray(vector_bits, dtype=np.int64),
            run_metas=[dict(s.meta) for s in schedules],
        )


def build_schedule_batch(
    protocol: str,
    run_n_tags: np.ndarray,
    run_rounds: list[list[tuple[int, np.ndarray, np.ndarray]]],
    tag_bases: np.ndarray,
    reply_bits: int = 1,
    poll_overhead_bits: int | None = None,
    run_metas: list[dict[str, Any]] | None = None,
) -> ScheduleBatch:
    """Assemble a :class:`ScheduleBatch` from per-run planner output.

    ``run_rounds[r]`` is run ``r``'s round list in plan order; each round
    is ``(init_bits, poll_bits, poll_tag_global)`` where the tag
    indices are *global* into the concatenated batch population and
    ``tag_bases[r]`` rebases them to run-local.  ``poll_bits`` is either
    a per-poll int64 array or a plain scalar meaning every poll in the
    round carries that payload (HPP/EHPP's uniform ``h``); scalars are
    expanded here with one vectorised ``repeat`` instead of a per-round
    allocation in the planner's hot loop.  Rows follow
    :func:`compile_plan`'s order exactly — per round: the initiation
    broadcast then the polls in plan order (the batched core planners
    emit no wasted slots) — so run ``r``'s block is column-for-column
    what ``compile_plan(plan_r, reply_bits)`` would produce.
    """
    if reply_bits < 0:
        raise ValueError("reply_bits must be non-negative")
    if poll_overhead_bits is None:
        # the RoundPlan default: a QueryRep frames every poll
        from repro.phy.commands import DEFAULT_COMMAND_SIZES

        poll_overhead_bits = DEFAULT_COMMAND_SIZES.query_rep
    n_runs = len(run_rounds)
    run_n_tags = np.asarray(run_n_tags, dtype=np.int64)
    tag_bases = np.asarray(tag_bases, dtype=np.int64)
    rounds_per_run = np.fromiter(
        (len(rr) for rr in run_rounds), np.int64, n_runs
    )
    flat = [rd for rr in run_rounds for rd in rr]
    n_rounds = len(flat)
    run_round_offsets = np.concatenate(([0], np.cumsum(rounds_per_run)))
    meta = {"reply_bits": int(reply_bits),
            "poll_overhead_bits": int(poll_overhead_bits)}
    if n_rounds == 0:
        empty = np.empty(0, dtype=np.int64)
        zeros = np.zeros(n_runs + 1, dtype=np.int64)
        return ScheduleBatch(
            protocol=protocol, n_tags=int(run_n_tags.sum()),
            kind=empty, downlink_bits=empty, uplink_bits=empty,
            tag_idx=empty, round_id=empty, meta=meta,
            run_id=empty, run_offsets=zeros, run_round_offsets=zeros,
            run_n_tags=run_n_tags,
            run_vector_bits=np.zeros(n_runs, dtype=np.int64),
            run_metas=run_metas,
        )

    init = np.fromiter((rd[0] for rd in flat), np.int64, n_rounds)
    n_polls = np.fromiter((rd[2].size for rd in flat), np.int64, n_rounds)
    round_run = np.repeat(np.arange(n_runs, dtype=np.int64), rounds_per_run)

    rows_per_round = 1 + n_polls
    total = int(rows_per_round.sum())
    uniform = all(isinstance(rd[1], (int, np.integer)) for rd in flat)
    if uniform:
        per_round_bits = np.fromiter((rd[1] for rd in flat), np.int64,
                                     n_rounds)
        payload_sums = per_round_bits * n_polls
    else:
        per_round_bits = None
        poll_payload = (
            np.concatenate([
                rd[1] if isinstance(rd[1], np.ndarray)
                else np.full(rd[2].size, rd[1], dtype=np.int64)
                for rd in flat
            ])
            if total > n_rounds
            else np.empty(0, dtype=np.int64)
        )
        # per-round payload sums via one cumsum, exact in int64
        pp_csum = np.concatenate(([0], np.cumsum(poll_payload)))
        poll_starts = np.cumsum(n_polls) - n_polls
        payload_sums = pp_csum[poll_starts + n_polls] - pp_csum[poll_starts]
    round_vec = init + payload_sums

    row_csum = np.concatenate(([0], np.cumsum(rows_per_round)))
    run_offsets = row_csum[run_round_offsets]

    # per-run Fig.10 numerator: init bits + poll payload bits, exact ints
    vec_csum = np.concatenate(([0], np.cumsum(round_vec)))
    run_vector_bits = (
        vec_csum[run_round_offsets[1:]] - vec_csum[run_round_offsets[:-1]]
    )

    # ------------------------------------------------------------------
    # cost index straight from the per-round aggregates.  Compiled rows
    # per round are [broadcast, polls...] with uniform poll uplink and
    # zero poll slot framing, so _build_cost_index on the materialised
    # columns would find exactly one broadcast run per round plus one
    # poll run per round-with-polls, in round order — reproduced here
    # without touching (or building) the rows.
    # ------------------------------------------------------------------
    down_sums = np.zeros((n_rounds, 4))
    down_sums[:, KIND_BROADCAST] = init
    down_sums[:, KIND_POLL] = payload_sums + poll_overhead_bits * n_polls
    has_polls = n_polls > 0
    width = 1 + has_polls.astype(np.int64)
    bpos = np.cumsum(width) - width  # each round's broadcast-run slot
    ppos = bpos[has_polls] + 1
    rids = np.arange(n_rounds, dtype=np.int64)
    total_runs = int(width.sum())
    run_rid = np.empty(total_runs, dtype=np.int64)
    run_rid[bpos] = rids
    run_rid[ppos] = rids[has_polls]
    run_kind = np.zeros(total_runs, dtype=np.int8)
    run_kind[ppos] = KIND_POLL
    run_down = np.zeros(total_runs, dtype=np.int64)
    run_down[bpos] = init
    run_up = np.zeros(total_runs, dtype=np.int64)
    run_up[ppos] = reply_bits
    run_count = np.ones(total_runs, dtype=np.int64)
    run_count[ppos] = n_polls[has_polls]
    cost = CostIndex(
        down_sums=down_sums, run_rid=run_rid, run_kind=run_kind,
        run_down=run_down, run_up=run_up, run_count=run_count,
    )

    def per_run_sums(per_round: np.ndarray) -> np.ndarray:
        csum = np.concatenate(([0], np.cumsum(per_round)))
        return csum[run_round_offsets[1:]] - csum[run_round_offsets[:-1]]

    run_n_polls = per_run_sums(n_polls)
    run_reader_bits = per_run_sums(
        init + payload_sums + poll_overhead_bits * n_polls
    )

    def materialise() -> dict[str, np.ndarray]:
        kind = np.empty(total, dtype=np.int8)
        downlink = np.empty(total, dtype=np.int64)
        uplink = np.zeros(total, dtype=np.int64)
        tag_idx = np.full(total, -1, dtype=np.int64)
        round_id = np.repeat(rids, rows_per_round)
        run_id = np.repeat(round_run, rows_per_round)

        start = row_csum[:-1]
        kind[start] = KIND_BROADCAST
        downlink[start] = init

        pos = np.repeat(start + 1, n_polls) + _segmented_arange(n_polls)
        kind[pos] = KIND_POLL
        flat_payload = (
            np.repeat(per_round_bits, n_polls)
            if per_round_bits is not None
            else poll_payload
        )
        downlink[pos] = flat_payload + poll_overhead_bits
        uplink[pos] = reply_bits
        tag_idx[pos] = np.concatenate(
            [rd[2] for rd in flat]
        ) - np.repeat(tag_bases[round_run], n_polls)
        return {
            "kind": kind, "downlink_bits": downlink, "uplink_bits": uplink,
            "tag_idx": tag_idx, "round_id": round_id, "run_id": run_id,
        }

    return ScheduleBatch._deferred(
        protocol=protocol,
        n_tags=int(run_n_tags.sum()),
        meta=meta,
        run_offsets=run_offsets,
        run_round_offsets=run_round_offsets,
        run_n_tags=run_n_tags,
        run_vector_bits=run_vector_bits,
        run_metas=run_metas,
        cost_index=cost,
        run_n_polls=run_n_polls,
        run_reader_bits=run_reader_bits,
        materialise=materialise,
    )


# ----------------------------------------------------------------------
# incremental construction (query tree / TRP / IIP)
# ----------------------------------------------------------------------
class ScheduleBuilder:
    """Append-style WireSchedule construction for irregular baselines."""

    def __init__(self, protocol: str, n_tags: int,
                 meta: dict[str, Any] | None = None) -> None:
        self.protocol = protocol
        self.n_tags = n_tags
        self.meta: dict[str, Any] = dict(meta) if meta else {}
        self._kind: list[int] = []
        self._down: list[int] = []
        self._up: list[int] = []
        self._tag: list[int] = []
        self._round: list[int] = []
        self._current_round = -1

    # ------------------------------------------------------------------
    def begin_round(self) -> int:
        """Open the next round; subsequent rows belong to it."""
        self._current_round += 1
        return self._current_round

    def _append(self, kind: int, downlink: int, uplink: int, tag: int,
                count: int) -> None:
        if self._current_round < 0:
            raise RuntimeError("begin_round() must be called before adding rows")
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return
        self._kind.extend([kind] * count)
        self._down.extend([int(downlink)] * count)
        self._up.extend([int(uplink)] * count)
        self._tag.extend([int(tag)] * count)
        self._round.extend([self._current_round] * count)

    def broadcast(self, downlink_bits: int) -> None:
        self._append(KIND_BROADCAST, downlink_bits, 0, -1, 1)

    def poll(self, downlink_bits: int, uplink_bits: int,
             tag_idx: int = -1, count: int = 1) -> None:
        self._append(KIND_POLL, downlink_bits, uplink_bits, tag_idx, count)

    def polls(self, downlink_bits: int, uplink_bits: int,
              tag_indices: np.ndarray) -> None:
        """Uniform-cost polls of identified tags (one row per tag)."""
        for t in np.asarray(tag_indices, dtype=np.int64).tolist():
            self._append(KIND_POLL, downlink_bits, uplink_bits, t, 1)

    def empty_slot(self, downlink_bits: int, window_bits: int = 0,
                   count: int = 1) -> None:
        """Silent slots; ``window_bits`` is the reply window waited out."""
        self._append(KIND_EMPTY_SLOT, downlink_bits, window_bits, -1, count)

    def collision_slot(self, downlink_bits: int, uplink_bits: int,
                       count: int = 1) -> None:
        self._append(KIND_COLLISION_SLOT, downlink_bits, uplink_bits, -1, count)

    # ------------------------------------------------------------------
    def build(self) -> WireSchedule:
        schedule = WireSchedule(
            protocol=self.protocol,
            n_tags=self.n_tags,
            kind=np.asarray(self._kind, dtype=np.int8),
            downlink_bits=np.asarray(self._down, dtype=np.int64),
            uplink_bits=np.asarray(self._up, dtype=np.int64),
            tag_idx=np.asarray(self._tag, dtype=np.int64),
            round_id=np.asarray(self._round, dtype=np.int64),
            meta=self.meta,
        )
        schedule.validate()
        return schedule


# ----------------------------------------------------------------------
# sweepable interface for schedule-emitting baselines
# ----------------------------------------------------------------------
class ScheduleEmitter(ABC):
    """A baseline that emits a :class:`WireSchedule` directly.

    The counterpart of :class:`~repro.core.base.PollingProtocol` for
    protocols whose wire behaviour doesn't fit the uniform-reply
    ``InterrogationPlan`` model (query tree) or that interrogate a
    *scenario* rather than a population (TRP/IIP missing-tag runs).
    :class:`~repro.experiments.runner.SweepRunner` accepts either,
    caching cells by the emitter's configuration.
    """

    #: short identifier used in reports and cache keys ("QT", "TRP", ...)
    name: str = "abstract"

    @abstractmethod
    def emit(self, tags: "TagSet", rng: np.random.Generator, *,
             info_bits: int = 0,
             budget: "LinkBudget | None" = None) -> WireSchedule:
        """Run the baseline on ``tags`` and return its wire schedule."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
