"""Wire-time accounting: from interrogation plans to microseconds.

The paper's cost model (§V-A): collecting ``l``-bit information from one
tag with a ``w``-bit polling vector takes

    ``37.45 * (4 + w) + T1 + 25 * l + T2``  microseconds,

i.e. a 4-bit QueryRep framing the vector, the downlink payload, the
transmit→receive turnaround, the tag's reply, and the receive→transmit
turnaround.  Round-initiation broadcasts (round init, circle command,
MIC indicator vector) are back-to-back reader transmissions and are
charged downlink bit time only.

Wasted slots (ALOHA baselines, MIC) are charged a slot-framing command
plus turnarounds; collision slots additionally burn a garbled reply of
the payload length.  An ``empty_reply_bits``-style short-circuit for
empty slots is available through :class:`LinkBudget`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.phy.schedule import (
    KIND_BROADCAST,
    KIND_COLLISION_SLOT,
    KIND_EMPTY_SLOT,
    KIND_POLL,
    ScheduleBatch,
    WireSchedule,
    compile_plan,
)
from repro.phy.timing import C1G2Timing, PAPER_TIMING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.base import InterrogationPlan, RoundPlan

__all__ = [
    "LinkBudget",
    "poll_time_us",
    "plan_wire_time",
    "schedule_time_us",
    "lower_bound_us",
]


@dataclass(frozen=True)
class LinkBudget:
    """Costing policy binding a timing model to slot conventions.

    Attributes:
        timing: the C1G2 timing constants.
        empty_slot_full_cost: if True (paper-matching default for the MIC
            comparison), an empty wasted slot costs the same turnarounds
            as a reply slot; if False, the reader only waits
            ``T1 + T3`` before declaring the slot empty.
        collision_reply_bits_factor: fraction of the payload length a
            collision slot burns (1.0 = colliding tags talk over the full
            reply; C1G2 readers typically cannot abort early).
    """

    timing: C1G2Timing = PAPER_TIMING
    empty_slot_full_cost: bool = True
    collision_reply_bits_factor: float = 1.0

    # ------------------------------------------------------------------
    def poll_us(self, vector_bits: float, overhead_bits: float, reply_bits: float) -> float:
        """One request→response exchange."""
        t = self.timing
        return (
            t.reader_tx_us(overhead_bits + vector_bits)
            + t.t1_us
            + t.tag_tx_us(reply_bits)
            + t.t2_us
        )

    def broadcast_us(self, bits: float) -> float:
        """A reader broadcast with no expected reply (back-to-back TX)."""
        return self.timing.reader_tx_us(bits)

    def empty_slot_us(self, overhead_bits: float) -> float:
        t = self.timing
        if self.empty_slot_full_cost:
            return t.reader_tx_us(overhead_bits) + t.t1_us + t.t2_us
        return t.reader_tx_us(overhead_bits) + t.t1_us + t.t3_us

    def collision_slot_us(self, overhead_bits: float, reply_bits: float) -> float:
        t = self.timing
        return (
            t.reader_tx_us(overhead_bits)
            + t.t1_us
            + t.tag_tx_us(reply_bits * self.collision_reply_bits_factor)
            + t.t2_us
        )

    # ------------------------------------------------------------------
    def round_us(self, round_plan: "RoundPlan", reply_bits: int) -> float:
        """Wire time of one planned round collecting ``reply_bits``/tag."""
        t = self.timing
        n_polls = round_plan.n_polls
        total = self.broadcast_us(round_plan.init_bits)
        if n_polls:
            payload = float(round_plan.poll_vector_bits.sum())
            total += t.reader_tx_us(payload + round_plan.poll_overhead_bits * n_polls)
            total += n_polls * (t.t1_us + t.tag_tx_us(reply_bits) + t.t2_us)
        if round_plan.empty_slots:
            total += round_plan.empty_slots * self.empty_slot_us(round_plan.slot_overhead_bits)
        if round_plan.collision_slots:
            total += round_plan.collision_slots * self.collision_slot_us(
                round_plan.slot_overhead_bits, reply_bits
            )
        return total

    def plan_us_loop(self, plan: "InterrogationPlan", reply_bits: int) -> float:
        """Total plan wire time via the per-round Python loop.

        The legible reference implementation: :meth:`plan_us` computes
        the identical floats through the compiled wire schedule, and the
        parity tests + benchmarks keep this loop honest (and measured).
        """
        if reply_bits < 0:
            raise ValueError("reply_bits must be non-negative")
        return sum(self.round_us(r, reply_bits) for r in plan.rounds)

    def plan_us(self, plan: "InterrogationPlan", reply_bits: int) -> float:
        """Total wire time of a complete interrogation plan.

        Compiles the plan to its :class:`~repro.phy.schedule.WireSchedule`
        and prices that — bit-identical to :meth:`plan_us_loop`.
        """
        return self.schedule_us(compile_plan(plan, reply_bits))

    # ------------------------------------------------------------------
    # wire-schedule costing (vectorised)
    # ------------------------------------------------------------------
    def schedule_round_us(self, schedule: WireSchedule) -> np.ndarray:
        """Per-round wire times of a schedule, shape ``(n_rounds,)``.

        Replicates :meth:`round_us`'s operation chain on per-round
        aggregates, in the same IEEE-754 order, so a schedule compiled
        from a plan prices to exactly :meth:`round_us`'s floats:

        - downlink payloads are summed per round as integers (exact
          below 2^53) and multiplied by the bit time once;
        - reply/slot chains are evaluated once per distinct
          ``(round, bits)`` group and multiplied by the group count —
          the count-times-scalar products of the legacy loop.
        """
        t = self.timing
        rb = t.reader_bit_us
        tb = t.tag_bit_us
        n_rounds = schedule.n_rounds
        if schedule.n_exchanges == 0:
            return np.zeros(n_rounds)
        idx = schedule.cost_index()
        broadcast_us = idx.down_sums[:, KIND_BROADCAST] * rb
        poll_tx_us = idx.down_sums[:, KIND_POLL] * rb

        # per-exchange turnaround/reply chains, one product per run
        # (see CostIndex for why this reproduces the loop's floats)
        g_rid, g_kind = idx.run_rid, idx.run_kind
        g_down, g_up, g_count = idx.run_down, idx.run_up, idx.run_count

        def chain_sum(sel: np.ndarray, per_run_us: np.ndarray) -> np.ndarray:
            return np.bincount(
                g_rid[sel], weights=g_count[sel] * per_run_us,
                minlength=n_rounds,
            )

        sel = g_kind == KIND_POLL
        reply_us = chain_sum(sel, (t.t1_us + g_up[sel] * tb) + t.t2_us)
        sel = g_kind == KIND_EMPTY_SLOT
        if self.empty_slot_full_cost:
            empty_us = chain_sum(
                sel, ((g_down[sel] * rb + t.t1_us) + g_up[sel] * tb) + t.t2_us
            )
        else:
            empty_us = chain_sum(sel, (g_down[sel] * rb + t.t1_us) + t.t3_us)
        sel = g_kind == KIND_COLLISION_SLOT
        factor = self.collision_reply_bits_factor
        collision_us = chain_sum(
            sel,
            ((g_down[sel] * rb + t.t1_us) + (g_up[sel] * factor) * tb) + t.t2_us,
        )
        return (
            ((broadcast_us + poll_tx_us) + reply_us) + empty_us
        ) + collision_us

    def schedule_us(self, schedule: WireSchedule) -> float:
        """Total wire time (µs) of a :class:`WireSchedule`."""
        total = 0.0
        # sequential left-to-right reduction, matching plan_us_loop's
        # Python sum over rounds (np.sum's pairwise order would drift
        # in the last ulps)
        for value in self.schedule_round_us(schedule).tolist():
            total += value
        return total

    def schedule_batch_us(self, batch: ScheduleBatch) -> np.ndarray:
        """Per-run wire times of a replica batch, shape ``(n_runs,)``.

        One vectorised :meth:`schedule_round_us` pass prices every round
        of every run (round ids are globally contiguous, so the cost
        index groups exactly as it would per run), then each run's
        rounds are reduced with the same sequential left-to-right Python
        sum as :meth:`schedule_us` — entry ``r`` is bit-identical to
        ``schedule_us(batch.schedule_for_run(r))``.
        """
        round_us = self.schedule_round_us(batch).tolist()
        offsets = batch.run_round_offsets.tolist()
        out = np.empty(batch.n_runs, dtype=np.float64)
        for r in range(batch.n_runs):
            total = 0.0
            for value in round_us[offsets[r]:offsets[r + 1]]:
                total += value
            out[r] = total
        return out


# ----------------------------------------------------------------------
# module-level conveniences (paper-default budget)
# ----------------------------------------------------------------------
_DEFAULT = LinkBudget()


def poll_time_us(
    vector_bits: float,
    reply_bits: float,
    timing: C1G2Timing = PAPER_TIMING,
    overhead_bits: float = 4,
) -> float:
    """The paper's per-poll formula ``37.45*(4+w) + T1 + 25*l + T2``."""
    return LinkBudget(timing=timing).poll_us(vector_bits, overhead_bits, reply_bits)


def plan_wire_time(
    plan: "InterrogationPlan",
    reply_bits: int,
    timing: C1G2Timing = PAPER_TIMING,
    budget: LinkBudget | None = None,
) -> float:
    """Wire time (µs) of ``plan`` when each tag replies ``reply_bits`` bits.

    Thin wrapper: compiles the plan to a wire schedule and prices it
    (bit-identical floats to the historical per-round loop, which
    survives as :meth:`LinkBudget.plan_us_loop`).
    """
    if budget is None:
        budget = _DEFAULT if timing is PAPER_TIMING else LinkBudget(timing=timing)
    return budget.plan_us(plan, reply_bits)


def schedule_time_us(
    schedule: WireSchedule,
    timing: C1G2Timing = PAPER_TIMING,
    budget: LinkBudget | None = None,
) -> float:
    """Wire time (µs) of a compiled :class:`WireSchedule`."""
    if budget is None:
        budget = _DEFAULT if timing is PAPER_TIMING else LinkBudget(timing=timing)
    return budget.schedule_us(schedule)


def lower_bound_us(n_tags: int, reply_bits: int, timing: C1G2Timing = PAPER_TIMING) -> float:
    """The paper's per-protocol lower bound (§V-C).

    Any C1G2 information-collection protocol must at least frame each
    reply with a 4-bit command and pay both turnarounds:

        ``(37.45 * 4 + T1 + 25*l + T2) * n``.
    """
    if n_tags < 0:
        raise ValueError("n_tags must be non-negative")
    per_tag = (
        timing.reader_tx_us(4) + timing.t1_us + timing.tag_tx_us(reply_bits) + timing.t2_us
    )
    return per_tag * n_tags
