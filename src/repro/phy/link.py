"""Wire-time accounting: from interrogation plans to microseconds.

The paper's cost model (§V-A): collecting ``l``-bit information from one
tag with a ``w``-bit polling vector takes

    ``37.45 * (4 + w) + T1 + 25 * l + T2``  microseconds,

i.e. a 4-bit QueryRep framing the vector, the downlink payload, the
transmit→receive turnaround, the tag's reply, and the receive→transmit
turnaround.  Round-initiation broadcasts (round init, circle command,
MIC indicator vector) are back-to-back reader transmissions and are
charged downlink bit time only.

Wasted slots (ALOHA baselines, MIC) are charged a slot-framing command
plus turnarounds; collision slots additionally burn a garbled reply of
the payload length.  An ``empty_reply_bits``-style short-circuit for
empty slots is available through :class:`LinkBudget`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.phy.timing import C1G2Timing, PAPER_TIMING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.base import InterrogationPlan, RoundPlan

__all__ = ["LinkBudget", "poll_time_us", "plan_wire_time", "lower_bound_us"]


@dataclass(frozen=True)
class LinkBudget:
    """Costing policy binding a timing model to slot conventions.

    Attributes:
        timing: the C1G2 timing constants.
        empty_slot_full_cost: if True (paper-matching default for the MIC
            comparison), an empty wasted slot costs the same turnarounds
            as a reply slot; if False, the reader only waits
            ``T1 + T3`` before declaring the slot empty.
        collision_reply_bits_factor: fraction of the payload length a
            collision slot burns (1.0 = colliding tags talk over the full
            reply; C1G2 readers typically cannot abort early).
    """

    timing: C1G2Timing = PAPER_TIMING
    empty_slot_full_cost: bool = True
    collision_reply_bits_factor: float = 1.0

    # ------------------------------------------------------------------
    def poll_us(self, vector_bits: float, overhead_bits: float, reply_bits: float) -> float:
        """One request→response exchange."""
        t = self.timing
        return (
            t.reader_tx_us(overhead_bits + vector_bits)
            + t.t1_us
            + t.tag_tx_us(reply_bits)
            + t.t2_us
        )

    def broadcast_us(self, bits: float) -> float:
        """A reader broadcast with no expected reply (back-to-back TX)."""
        return self.timing.reader_tx_us(bits)

    def empty_slot_us(self, overhead_bits: float) -> float:
        t = self.timing
        if self.empty_slot_full_cost:
            return t.reader_tx_us(overhead_bits) + t.t1_us + t.t2_us
        return t.reader_tx_us(overhead_bits) + t.t1_us + t.t3_us

    def collision_slot_us(self, overhead_bits: float, reply_bits: float) -> float:
        t = self.timing
        return (
            t.reader_tx_us(overhead_bits)
            + t.t1_us
            + t.tag_tx_us(reply_bits * self.collision_reply_bits_factor)
            + t.t2_us
        )

    # ------------------------------------------------------------------
    def round_us(self, round_plan: "RoundPlan", reply_bits: int) -> float:
        """Wire time of one planned round collecting ``reply_bits``/tag."""
        t = self.timing
        n_polls = round_plan.n_polls
        total = self.broadcast_us(round_plan.init_bits)
        if n_polls:
            payload = float(round_plan.poll_vector_bits.sum())
            total += t.reader_tx_us(payload + round_plan.poll_overhead_bits * n_polls)
            total += n_polls * (t.t1_us + t.tag_tx_us(reply_bits) + t.t2_us)
        if round_plan.empty_slots:
            total += round_plan.empty_slots * self.empty_slot_us(round_plan.slot_overhead_bits)
        if round_plan.collision_slots:
            total += round_plan.collision_slots * self.collision_slot_us(
                round_plan.slot_overhead_bits, reply_bits
            )
        return total

    def plan_us(self, plan: "InterrogationPlan", reply_bits: int) -> float:
        """Total wire time of a complete interrogation plan."""
        if reply_bits < 0:
            raise ValueError("reply_bits must be non-negative")
        return sum(self.round_us(r, reply_bits) for r in plan.rounds)


# ----------------------------------------------------------------------
# module-level conveniences (paper-default budget)
# ----------------------------------------------------------------------
_DEFAULT = LinkBudget()


def poll_time_us(
    vector_bits: float,
    reply_bits: float,
    timing: C1G2Timing = PAPER_TIMING,
    overhead_bits: float = 4,
) -> float:
    """The paper's per-poll formula ``37.45*(4+w) + T1 + 25*l + T2``."""
    return LinkBudget(timing=timing).poll_us(vector_bits, overhead_bits, reply_bits)


def plan_wire_time(
    plan: "InterrogationPlan",
    reply_bits: int,
    timing: C1G2Timing = PAPER_TIMING,
    budget: LinkBudget | None = None,
) -> float:
    """Wire time (µs) of ``plan`` when each tag replies ``reply_bits`` bits."""
    if budget is None:
        budget = _DEFAULT if timing is PAPER_TIMING else LinkBudget(timing=timing)
    return budget.plan_us(plan, reply_bits)


def lower_bound_us(n_tags: int, reply_bits: int, timing: C1G2Timing = PAPER_TIMING) -> float:
    """The paper's per-protocol lower bound (§V-C).

    Any C1G2 information-collection protocol must at least frame each
    reply with a 4-bit command and pay both turnarounds:

        ``(37.45 * 4 + T1 + 25*l + T2) * n``.
    """
    if n_tags < 0:
        raise ValueError("n_tags must be non-negative")
    per_tag = (
        timing.reader_tx_us(4) + timing.t1_us + timing.tag_tx_us(reply_bits) + timing.t2_us
    )
    return per_tag * n_tags
