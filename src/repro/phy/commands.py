"""Bit-accurate sizes of C1G2 reader commands.

Polling protocols are costed by the number of bits the reader puts on the
air.  The sizes below follow the EPC C1G2 v1.2.0 air-interface layouts;
the reproduced paper only relies on ``QueryRep`` (4 bits, used to frame
each polling vector) and on abstract "round initiation" / "circle
command" lengths, which are exposed as defaults here so every experiment
pulls its constants from a single place.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CommandSizes", "DEFAULT_COMMAND_SIZES", "EPC_ID_BITS"]

#: Length of an EPC tag identifier (bits).  The paper uses 96-bit EPCs.
EPC_ID_BITS = 96


@dataclass(frozen=True)
class CommandSizes:
    """Sizes (in bits) of the reader commands used by the protocols.

    Attributes:
        query_rep: the 4-bit QueryRep command that frames each polling
            vector transmitted by HPP/EHPP/TPP (§V-A of the paper).
        query: full Query command (22 bits per C1G2: command code, DR, M,
            TRext, Sel, Session, Target, Q, CRC-5).
        ack: ACK command (18 bits: 2-bit code + 16-bit RN16).
        select_header: fixed part of a Select command, excluding the mask
            (about 45 bits: command code, target, action, membank,
            pointer, length, truncate, CRC-16).
        round_init: bits broadcast to start one HPP/TPP round — carries
            the index length ``h`` and the random seed ``r``.  The paper's
            simulation (§V-B) charges 32 bits.
        circle_command: bits broadcast to open one EHPP circle — carries
            ``(f, F, r)``.  The paper's simulation (§V-B) charges 128 bits.
    """

    query_rep: int = 4
    query: int = 22
    ack: int = 18
    select_header: int = 45
    round_init: int = 32
    circle_command: int = 128

    def __post_init__(self) -> None:
        for field_name in (
            "query_rep",
            "query",
            "ack",
            "select_header",
            "round_init",
            "circle_command",
        ):
            value = getattr(self, field_name)
            if not isinstance(value, int) or value < 0:
                raise ValueError(f"{field_name} must be a non-negative int, got {value!r}")

    def select_bits(self, mask_bits: int) -> int:
        """Total size of a Select command with a ``mask_bits``-long mask."""
        if mask_bits < 0:
            raise ValueError("mask_bits must be non-negative")
        return self.select_header + mask_bits


#: Command sizes used by the paper's evaluation.
DEFAULT_COMMAND_SIZES = CommandSizes()
