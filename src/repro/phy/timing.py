"""C1G2 link-timing model.

The EPC C1G2 standard separates any two consecutive transmissions by
turnaround intervals:

- ``T1`` — transmit-to-receive turnaround: after the reader finishes a
  command, tags wait ``T1 = max(RTcal, 20 * Tpri)`` before backscattering.
- ``T2`` — receive-to-transmit turnaround: after a tag reply, the reader
  waits ``T2 ∈ [3 * Tpri, 20 * Tpri]`` before the next command.

The reproduced paper (§V-A) fixes ``T1 = 100 µs`` and ``T2 = 50 µs``, a
reader→tag data rate of 26.7 kbps (the standard's lower bound, i.e.
37.45 µs per bit) and a tag→reader rate of 40 kbps (25 µs per bit, the
intersection lower bound of FM0 and Miller coding rates).

:data:`PAPER_TIMING` is the exact configuration used throughout the
paper's evaluation; other configurations can be built directly or with
:meth:`C1G2Timing.from_rates`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["C1G2Timing", "PAPER_TIMING"]


@dataclass(frozen=True)
class C1G2Timing:
    """Link timing constants, all durations in microseconds.

    Attributes:
        t1_us: transmit-to-receive turnaround (reader done -> tag starts).
        t2_us: receive-to-transmit turnaround (tag done -> reader starts).
        t3_us: additional time a reader waits, after T1, before declaring
            a slot empty (no reply).  The paper folds empty-slot handling
            into its baselines' models; kept configurable here.
        reader_bit_us: time for the reader to transmit one bit downlink.
        tag_bit_us: time for a tag to backscatter one bit uplink.
    """

    t1_us: float = 100.0
    t2_us: float = 50.0
    t3_us: float = 0.0
    reader_bit_us: float = 37.45
    tag_bit_us: float = 25.0

    def __post_init__(self) -> None:
        for field_name in ("t1_us", "t2_us", "t3_us", "reader_bit_us", "tag_bit_us"):
            value = getattr(self, field_name)
            if value < 0:
                raise ValueError(f"{field_name} must be non-negative, got {value!r}")
        if self.reader_bit_us == 0 or self.tag_bit_us == 0:
            raise ValueError("per-bit durations must be positive")

    @classmethod
    def from_rates(
        cls,
        reader_kbps: float = 26.7,
        tag_kbps: float = 40.0,
        t1_us: float = 100.0,
        t2_us: float = 50.0,
        t3_us: float = 0.0,
    ) -> "C1G2Timing":
        """Build a timing model from data rates in kilobits per second."""
        if reader_kbps <= 0 or tag_kbps <= 0:
            raise ValueError("data rates must be positive")
        return cls(
            t1_us=t1_us,
            t2_us=t2_us,
            t3_us=t3_us,
            reader_bit_us=1e3 / reader_kbps,
            tag_bit_us=1e3 / tag_kbps,
        )

    def reader_tx_us(self, bits: float) -> float:
        """Time for the reader to transmit ``bits`` downlink bits."""
        if bits < 0:
            raise ValueError("bits must be non-negative")
        return bits * self.reader_bit_us

    def tag_tx_us(self, bits: float) -> float:
        """Time for a tag to backscatter ``bits`` uplink bits."""
        if bits < 0:
            raise ValueError("bits must be non-negative")
        return bits * self.tag_bit_us

    def turnaround_us(self) -> float:
        """Total turnaround overhead for one request/response exchange."""
        return self.t1_us + self.t2_us

    def with_(self, **changes: float) -> "C1G2Timing":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)


#: Timing configuration used by the paper's evaluation (§V-A).
PAPER_TIMING = C1G2Timing()
