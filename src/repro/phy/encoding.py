"""C1G2 symbol-level encodings: PIE downlink, FM0 / Miller uplink.

The timing constants the paper fixes (37.45 µs/bit down, 25 µs/bit up,
T1 = 100 µs) are *derived* quantities of the C1G2 physical layer.  This
module models that derivation so non-default link profiles can be
explored:

- **Downlink (reader→tag)** uses pulse-interval encoding (PIE): a data-0
  symbol lasts ``Tari`` (6.25–25 µs) and a data-1 lasts 1.5–2 × Tari.
  The average downlink bit time therefore depends on the data *content*;
  the standard's reader-to-tag rate range (26.7–128 kbps) corresponds to
  the extreme Tari/ratio choices.
- **Uplink (tag→reader)** is FM0 baseband or Miller-modulated subcarrier
  with ``M ∈ {1, 2, 4, 8}`` subcarrier cycles per symbol at the
  backscatter link frequency ``BLF = DR / TRcal``: the bit rate is
  ``BLF / M`` (FM0: M = 1 ⇒ 40–640 kbps; Miller M = 8 ⇒ down to 5 kbps).
- **Turnarounds**: ``T1 = max(RTcal, 10/BLF)`` nominal per the standard
  (the paper uses the ``max(RTcal, 20·Tpri)`` variant), ``T2 ∈
  [3, 20] / BLF``.

:class:`LinkProfile` packages one consistent choice and converts to the
:class:`~repro.phy.timing.C1G2Timing` consumed by the rest of the
library; :data:`PAPER_PROFILE` reproduces the paper's constants.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.phy.timing import C1G2Timing

__all__ = [
    "pie_symbol_us",
    "pie_mean_bit_us",
    "uplink_bit_us",
    "LinkProfile",
    "PAPER_PROFILE",
]

#: allowed Tari range per the standard (µs)
TARI_MIN_US = 6.25
TARI_MAX_US = 25.0
#: Miller subcarrier cycles per symbol
VALID_M = (1, 2, 4, 8)
#: divide ratios DR
VALID_DR = (8.0, 64.0 / 3.0)


def pie_symbol_us(tari_us: float, bit: int, one_ratio: float = 2.0) -> float:
    """Duration of one PIE downlink symbol.

    Args:
        tari_us: the data-0 reference interval.
        bit: 0 or 1.
        one_ratio: data-1 length as a multiple of Tari (1.5–2.0).
    """
    if not TARI_MIN_US <= tari_us <= TARI_MAX_US:
        raise ValueError(f"Tari must be in [{TARI_MIN_US}, {TARI_MAX_US}] µs")
    if not 1.5 <= one_ratio <= 2.0:
        raise ValueError("data-1 symbol must be 1.5-2.0 Tari")
    if bit not in (0, 1):
        raise ValueError("bit must be 0 or 1")
    return tari_us if bit == 0 else tari_us * one_ratio


def pie_mean_bit_us(
    tari_us: float, one_ratio: float = 2.0, p_one: float = 0.5
) -> float:
    """Average PIE bit duration for a stream with ones-density ``p_one``."""
    if not 0.0 <= p_one <= 1.0:
        raise ValueError("p_one must be in [0, 1]")
    t0 = pie_symbol_us(tari_us, 0, one_ratio)
    t1 = pie_symbol_us(tari_us, 1, one_ratio)
    return (1.0 - p_one) * t0 + p_one * t1


def uplink_bit_us(blf_khz: float, miller_m: int = 1) -> float:
    """Uplink bit duration: ``M / BLF`` (FM0 when M = 1)."""
    if blf_khz <= 0:
        raise ValueError("BLF must be positive")
    if miller_m not in VALID_M:
        raise ValueError(f"M must be one of {VALID_M}")
    return miller_m * 1e3 / blf_khz


@dataclass(frozen=True)
class LinkProfile:
    """One consistent C1G2 physical-layer configuration.

    Attributes:
        tari_us: downlink data-0 interval.
        one_ratio: downlink data-1 length in Tari units.
        dr: divide ratio (8 or 64/3).
        trcal_us: tag-to-reader calibration interval; ``BLF = DR/TRcal``.
        miller_m: uplink modulation depth (1 = FM0).
        t2_tpri: receive-to-transmit turnaround in uplink bit periods.
    """

    tari_us: float = 25.0
    one_ratio: float = 2.0
    dr: float = 8.0
    trcal_us: float = 200.0
    miller_m: int = 1
    t2_tpri: float = 3.0

    def __post_init__(self) -> None:
        # reuse the validating helpers
        pie_symbol_us(self.tari_us, 0, self.one_ratio)
        if self.dr not in VALID_DR:
            raise ValueError(f"DR must be one of {VALID_DR}")
        if self.miller_m not in VALID_M:
            raise ValueError(f"M must be one of {VALID_M}")
        rtcal = self.rtcal_us
        if not 2.5 * self.tari_us <= rtcal <= 3.0 * self.tari_us:
            raise ValueError("RTcal = (1 + ratio)·Tari must be 2.5-3.0 Tari")
        if not 1.1 * rtcal <= self.trcal_us <= 3.0 * rtcal:
            raise ValueError("TRcal must be within [1.1, 3.0] RTcal")
        if not 2.0 <= self.t2_tpri <= 20.0:
            raise ValueError("T2 must be 2-20 Tpri (3-20 nominal)")

    # -- derived quantities -------------------------------------------
    @property
    def rtcal_us(self) -> float:
        """Reader-to-tag calibration: data-0 + data-1 symbol lengths."""
        return self.tari_us * (1.0 + self.one_ratio)

    @property
    def blf_khz(self) -> float:
        """Backscatter link frequency in kHz."""
        return self.dr / self.trcal_us * 1e3

    @property
    def downlink_bit_us(self) -> float:
        """Mean downlink bit time (random payload)."""
        return pie_mean_bit_us(self.tari_us, self.one_ratio)

    @property
    def uplink_bit_us(self) -> float:
        return uplink_bit_us(self.blf_khz, self.miller_m)

    @property
    def t1_us(self) -> float:
        """Transmit→receive turnaround: max(RTcal, 10 Tpri) nominal."""
        return max(self.rtcal_us, 10.0 * self.uplink_bit_us / self.miller_m)

    @property
    def t2_us(self) -> float:
        return self.t2_tpri * self.uplink_bit_us / self.miller_m

    def to_timing(self) -> C1G2Timing:
        """Collapse the profile into the library's timing constants."""
        return C1G2Timing(
            t1_us=self.t1_us,
            t2_us=self.t2_us,
            reader_bit_us=self.downlink_bit_us,
            tag_bit_us=self.uplink_bit_us,
        )


#: A profile reproducing the paper's §V-A data rates (mean 37.5 µs/bit
#: down ≈ 26.7 kbps, 25 µs/bit up = 40 kbps) and its T2 = 50 µs.  The
#: standard's nominal T1 formula yields 250 µs at this slow BLF; the
#: paper instead fixes T1 = 100 µs — use
#: :data:`repro.phy.timing.PAPER_TIMING` for exact-paper runs.
PAPER_PROFILE = LinkProfile(
    tari_us=25.0, one_ratio=2.0, dr=8.0, trcal_us=200.0, miller_m=1,
    t2_tpri=2.0,
)
