"""C1G2 cyclic redundancy checks: CRC-5 and CRC-16 (CCITT).

The C1G2 air interface protects Query commands with CRC-5
(x⁵ + x³ + 1, preset 0b01001) and everything else — including the EPC a
tag backscatters — with CRC-16/CCITT (x¹⁶ + x¹² + x⁵ + 1, preset 0xFFFF,
inverted output).  The Coded Polling baseline relies on tags validating
a received frame with their CRC-16 unit, so the frame construction in
:mod:`repro.core.coded_polling` uses these implementations.

Bit-level, MSB-first implementations over integers (``value`` holding
``n_bits``), matching the standard's serialisation of commands.
"""

from __future__ import annotations

__all__ = ["crc5", "crc16", "crc16_check"]

_CRC5_POLY = 0b01001  # x^5 + x^3 + 1 (low 5 bits)
_CRC5_PRESET = 0b01001
_CRC16_POLY = 0x1021  # x^16 + x^12 + x^5 + 1
_CRC16_PRESET = 0xFFFF


def _bits_msb_first(value: int, n_bits: int):
    if n_bits < 0:
        raise ValueError("n_bits must be non-negative")
    if value < 0 or (n_bits < value.bit_length()):
        raise ValueError(f"value does not fit in {n_bits} bits")
    for pos in range(n_bits - 1, -1, -1):
        yield (value >> pos) & 1


def crc5(value: int, n_bits: int) -> int:
    """CRC-5 of an ``n_bits``-long message, per C1G2 Annex F."""
    reg = _CRC5_PRESET
    for bit in _bits_msb_first(value, n_bits):
        msb = (reg >> 4) & 1
        reg = (reg << 1) & 0x1F
        if msb ^ bit:
            reg ^= _CRC5_POLY
    return reg


def crc16(value: int, n_bits: int) -> int:
    """CRC-16/CCITT of an ``n_bits``-long message (preset 0xFFFF,

    output ones-complemented, per C1G2 Annex F)."""
    reg = _CRC16_PRESET
    for bit in _bits_msb_first(value, n_bits):
        msb = (reg >> 15) & 1
        reg = (reg << 1) & 0xFFFF
        if msb ^ bit:
            reg ^= _CRC16_POLY
    return reg ^ 0xFFFF


def crc16_check(value: int, n_bits: int, checksum: int) -> bool:
    """True iff ``checksum`` is the CRC-16 of the message."""
    return crc16(value, n_bits) == checksum
