"""EPC Class-1 Generation-2 (C1G2) physical / link layer substrate.

This package models everything the polling protocols need from the air
interface:

- :mod:`repro.phy.timing` — link timing constants (T1/T2 turnaround times,
  reader→tag and tag→reader per-bit durations) following the C1G2
  specification and the parameter choices of the reproduced paper.
- :mod:`repro.phy.commands` — bit-accurate sizes of the C1G2 reader
  commands (Query, QueryRep, Select, ACK, ...) used to cost protocol
  messages.
- :mod:`repro.phy.schedule` — the columnar WireSchedule IR every costed
  consumer (timing, DES, energy, serialisation) compiles plans into.
- :mod:`repro.phy.link` — wire-time accounting: prices an
  :class:`~repro.phy.schedule.WireSchedule` (or an
  :class:`~repro.core.base.InterrogationPlan`, compiled on the fly) in
  microseconds on the air.
- :mod:`repro.phy.channel` — channel models (ideal and bit-error-injected)
  used by the discrete-event simulator.
"""

from repro.phy.timing import C1G2Timing, PAPER_TIMING
from repro.phy.commands import CommandSizes, DEFAULT_COMMAND_SIZES
from repro.phy.schedule import (
    ScheduleBuilder,
    ScheduleEmitter,
    WireSchedule,
    compile_plan,
)
from repro.phy.link import (
    LinkBudget,
    plan_wire_time,
    poll_time_us,
    schedule_time_us,
    lower_bound_us,
)
from repro.phy.channel import Channel, IdealChannel, BitErrorChannel
from repro.phy.crc import crc5, crc16, crc16_check
from repro.phy.encoding import LinkProfile, PAPER_PROFILE

__all__ = [
    "C1G2Timing",
    "PAPER_TIMING",
    "CommandSizes",
    "DEFAULT_COMMAND_SIZES",
    "WireSchedule",
    "ScheduleBuilder",
    "ScheduleEmitter",
    "compile_plan",
    "LinkBudget",
    "plan_wire_time",
    "poll_time_us",
    "schedule_time_us",
    "lower_bound_us",
    "Channel",
    "IdealChannel",
    "BitErrorChannel",
    "crc5",
    "crc16",
    "crc16_check",
    "LinkProfile",
    "PAPER_PROFILE",
]
