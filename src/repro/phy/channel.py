"""Channel models for the discrete-event simulator.

The paper assumes an error-free channel (its evaluation is a timing
model).  The discrete-event path additionally supports a bit-error
channel so the robustness extensions (retransmission on missed polls)
can be exercised: each transmitted frame is independently corrupted with
probability ``1 - (1 - ber)**bits``.

A corrupted downlink frame is *not decoded by any tag* (C1G2 commands
carry a CRC, so a tag drops a frame that fails the check); a corrupted
uplink frame reaches the reader as garbage and must be re-collected.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import OrderedDict

import numpy as np

__all__ = ["Channel", "IdealChannel", "BitErrorChannel"]

#: distinct frame lengths a schedule produces is tiny (a handful of
#: command/reply widths), so a small per-channel memo covers everything
_LOSS_MEMO_MAX = 256


class Channel(ABC):
    """Decides, per frame, whether a transmission survives the air."""

    @abstractmethod
    def deliver(self, bits: int, rng: np.random.Generator) -> bool:
        """True if a ``bits``-long frame arrives intact."""

    def frame_loss_probability(self, bits: int) -> float:
        """Probability a ``bits``-long frame is corrupted."""
        raise NotImplementedError


class IdealChannel(Channel):
    """Loss-free channel (the paper's setting)."""

    def deliver(self, bits: int, rng: np.random.Generator) -> bool:
        if bits < 0:
            raise ValueError("bits must be non-negative")
        return True

    def frame_loss_probability(self, bits: int) -> float:
        return 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "IdealChannel()"


class BitErrorChannel(Channel):
    """Independent bit errors at rate ``ber`` per transmitted bit.

    ``deliver`` runs once per simulated frame, so the loss probability
    ``1 - (1 - ber)**bits`` is memoised per distinct ``bits`` (a tiny
    LRU): the DES pays one float ``pow`` per frame *length*, not per
    frame.  The memo is a pure cache of a deterministic formula —
    counters are bit-identical with or without it.
    """

    def __init__(self, ber: float):
        if not 0.0 <= ber < 1.0:
            raise ValueError(f"ber must be in [0, 1), got {ber}")
        self.ber = ber
        self._loss_memo: OrderedDict[int, float] = OrderedDict()

    def frame_loss_probability(self, bits: int) -> float:
        if bits < 0:
            raise ValueError("bits must be non-negative")
        if bits == 0:
            return 0.0
        memo = self._loss_memo
        p = memo.get(bits)
        if p is None:
            p = 1.0 - (1.0 - self.ber) ** bits
            if len(memo) >= _LOSS_MEMO_MAX:
                memo.popitem(last=False)
            memo[bits] = p
        else:
            memo.move_to_end(bits)
        return p

    def deliver(self, bits: int, rng: np.random.Generator) -> bool:
        return rng.random() >= self.frame_loss_probability(bits)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BitErrorChannel(ber={self.ber!r})"
