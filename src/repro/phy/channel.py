"""Channel models for the discrete-event simulator.

The paper assumes an error-free channel (its evaluation is a timing
model).  The discrete-event path additionally supports a bit-error
channel so the robustness extensions (retransmission on missed polls)
can be exercised: each transmitted frame is independently corrupted with
probability ``1 - (1 - ber)**bits``.

A corrupted downlink frame is *not decoded by any tag* (C1G2 commands
carry a CRC, so a tag drops a frame that fails the check); a corrupted
uplink frame reaches the reader as garbage and must be re-collected.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = ["Channel", "IdealChannel", "BitErrorChannel"]


class Channel(ABC):
    """Decides, per frame, whether a transmission survives the air."""

    @abstractmethod
    def deliver(self, bits: int, rng: np.random.Generator) -> bool:
        """True if a ``bits``-long frame arrives intact."""

    def frame_loss_probability(self, bits: int) -> float:
        """Probability a ``bits``-long frame is corrupted."""
        raise NotImplementedError


class IdealChannel(Channel):
    """Loss-free channel (the paper's setting)."""

    def deliver(self, bits: int, rng: np.random.Generator) -> bool:
        if bits < 0:
            raise ValueError("bits must be non-negative")
        return True

    def frame_loss_probability(self, bits: int) -> float:
        return 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "IdealChannel()"


class BitErrorChannel(Channel):
    """Independent bit errors at rate ``ber`` per transmitted bit."""

    def __init__(self, ber: float):
        if not 0.0 <= ber < 1.0:
            raise ValueError(f"ber must be in [0, 1), got {ber}")
        self.ber = ber

    def frame_loss_probability(self, bits: int) -> float:
        if bits < 0:
            raise ValueError("bits must be non-negative")
        if bits == 0:
            return 0.0
        return 1.0 - (1.0 - self.ber) ** bits

    def deliver(self, bits: int, rng: np.random.Generator) -> bool:
        return rng.random() >= self.frame_loss_probability(bits)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BitErrorChannel(ber={self.ber!r})"
