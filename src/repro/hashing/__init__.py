"""Seeded hashing and bit-string utilities.

The protocols rely on a tag-side hash ``H(r, id) mod 2**h``.  The paper
only requires uniformity; we implement the family with a splitmix64
finaliser, vectorised over numpy ``uint64`` arrays so that planning at
10^5 tags stays array-speed.
"""

from repro.hashing.universal import (
    splitmix64,
    hash_u64,
    hash_indices,
    hash_mod,
    derive_seed,
)
from repro.hashing.bitops import (
    index_to_bits,
    bits_to_index,
    common_prefix_len,
    common_prefix_len_array,
    bit_length_array,
)

__all__ = [
    "splitmix64",
    "hash_u64",
    "hash_indices",
    "hash_mod",
    "derive_seed",
    "index_to_bits",
    "bits_to_index",
    "common_prefix_len",
    "common_prefix_len_array",
    "bit_length_array",
]
