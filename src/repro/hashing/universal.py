"""Vectorised seeded hash family ``H(r, id)``.

Tags in C1G2-style protocol designs are assumed to carry a lightweight
hash unit: given the reader-broadcast seed ``r`` and the tag's own ID,
the tag computes ``H(r, id) mod 2**h``.  The analysis in the paper only
needs this map to behave like a uniform random function for each fresh
seed, so we use the splitmix64 finaliser (a well-studied 64-bit mixer
with full avalanche) applied to ``id ⊕ f(r)``.

All entry points operate on numpy ``uint64`` arrays and never allocate
per-tag Python objects; uniformity is verified by chi-square tests in
``tests/test_hashing.py``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["splitmix64", "hash_u64", "hash_indices", "hash_mod", "derive_seed"]

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
_SHIFT30 = np.uint64(30)
_SHIFT27 = np.uint64(27)
_SHIFT31 = np.uint64(31)
_MASK64 = 0xFFFFFFFFFFFFFFFF


def _splitmix64_scalar(x: int) -> int:
    """Pure-int splitmix64 (fast path for seed mixing; wraps mod 2^64)."""
    z = (x + 0x9E3779B97F4A7C15) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


def splitmix64(x: np.ndarray | int) -> np.ndarray | np.uint64:
    """The splitmix64 finaliser, vectorised over uint64 arrays.

    Accepts either a scalar int (returned as ``np.uint64``) or a numpy
    ``uint64`` array (mixed elementwise).  Arithmetic wraps modulo 2^64
    as the algorithm requires (numpy integer ops wrap silently; the
    scalar path uses plain Python ints with explicit masking).
    """
    if np.isscalar(x) or np.ndim(x) == 0:
        return np.uint64(_splitmix64_scalar(int(x)))
    z = np.asarray(x, dtype=np.uint64)
    z = z + _GOLDEN
    z = (z ^ (z >> _SHIFT30)) * _MIX1
    z = (z ^ (z >> _SHIFT27)) * _MIX2
    return z ^ (z >> _SHIFT31)


def derive_seed(seed: int, *salts: int) -> int:
    """Derive a sub-seed from ``seed`` and integer salts, deterministically.

    Used wherever a protocol needs several independent hash draws from
    one round seed (e.g. MIC's ``k`` hash functions, or fresh per-round
    seeds in HPP).
    """
    z = np.uint64(seed & _MASK64)
    for salt in salts:
        z = splitmix64(z ^ np.uint64(salt & _MASK64))
    return int(z)


def hash_u64(id_words: np.ndarray, seed: int) -> np.ndarray:
    """Full 64-bit hash of each tag identity word under ``seed``.

    Args:
        id_words: uint64 array of tag identity words (see
            :class:`repro.workloads.tagsets.TagSet`).
        seed: the reader-broadcast random seed ``r``.

    Returns:
        uint64 array of the same shape.
    """
    words = np.asarray(id_words, dtype=np.uint64)
    mixed_seed = np.uint64(splitmix64(seed & _MASK64))
    return splitmix64(words ^ mixed_seed)


def hash_indices(id_words: np.ndarray, seed: int, h: int) -> np.ndarray:
    """``H(r, id) mod 2**h`` for every tag — the paper's index draw.

    Args:
        id_words: uint64 array of tag identity words.
        seed: round seed ``r``.
        h: index length in bits, ``0 <= h <= 63``.

    Returns:
        int64 array of indices in ``[0, 2**h)``.
    """
    if not 0 <= h <= 63:
        raise ValueError(f"index length h must be in [0, 63], got {h}")
    mask = np.uint64((1 << h) - 1)
    return (hash_u64(id_words, seed) & mask).astype(np.int64)


def hash_mod(id_words: np.ndarray, seed: int, modulus: int) -> np.ndarray:
    """``H(r, id) mod modulus`` for an arbitrary (non power-of-two) modulus.

    Used by EHPP's circle command (``H(r, ID) mod F``) and by MIC's frame
    mapping.
    """
    if modulus <= 0:
        raise ValueError(f"modulus must be positive, got {modulus}")
    return (hash_u64(id_words, seed) % np.uint64(modulus)).astype(np.int64)
