"""Vectorised seeded hash family ``H(r, id)``.

Tags in C1G2-style protocol designs are assumed to carry a lightweight
hash unit: given the reader-broadcast seed ``r`` and the tag's own ID,
the tag computes ``H(r, id) mod 2**h``.  The analysis in the paper only
needs this map to behave like a uniform random function for each fresh
seed, so we use the splitmix64 finaliser (a well-studied 64-bit mixer
with full avalanche) applied to ``id ⊕ f(r)``.

All entry points operate on numpy ``uint64`` arrays and never allocate
per-tag Python objects; uniformity is verified by chi-square tests in
``tests/test_hashing.py``.

The array-sized work (the elementwise hash and every ragged batch
variant) dispatches through :mod:`repro.kernels`: the numpy oracle
implementations live in :mod:`repro.kernels.numpy_kernels` and a
Numba-JIT backend can replace them bit-identically via
``REPRO_KERNELS`` — this module keeps the public API, the argument
normalisation, and the validation.
"""

from __future__ import annotations

import numpy as np

from repro.kernels import get_kernel

__all__ = [
    "splitmix64",
    "hash_u64",
    "hash_u64_ragged",
    "hash_indices",
    "hash_indices_ragged",
    "hash_mod",
    "hash_mod_ragged",
    "derive_seed",
]

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
_SHIFT30 = np.uint64(30)
_SHIFT27 = np.uint64(27)
_SHIFT31 = np.uint64(31)
_MASK64 = 0xFFFFFFFFFFFFFFFF


def _splitmix64_scalar(x: int) -> int:
    """Pure-int splitmix64 (fast path for seed mixing; wraps mod 2^64)."""
    z = (x + 0x9E3779B97F4A7C15) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


def splitmix64(x: np.ndarray | int) -> np.ndarray | np.uint64:
    """The splitmix64 finaliser, vectorised over uint64 arrays.

    Accepts either a scalar int (returned as ``np.uint64``) or a numpy
    ``uint64`` array (mixed elementwise).  Arithmetic wraps modulo 2^64
    as the algorithm requires (numpy integer ops wrap silently; the
    scalar path uses plain Python ints with explicit masking).
    """
    if np.isscalar(x) or np.ndim(x) == 0:
        return np.uint64(_splitmix64_scalar(int(x)))
    z = np.asarray(x, dtype=np.uint64)
    # first op copies (callers keep their array); the rest mutate the
    # private copy in place — same wrap-around arithmetic, half the
    # temporaries, which matters when the replica batch streams
    # million-element arrays through here.
    z = z + _GOLDEN
    z ^= z >> _SHIFT30
    z *= _MIX1
    z ^= z >> _SHIFT27
    z *= _MIX2
    z ^= z >> _SHIFT31
    return z


def derive_seed(seed: int, *salts: int) -> int:
    """Derive a sub-seed from ``seed`` and integer salts, deterministically.

    Used wherever a protocol needs several independent hash draws from
    one round seed (e.g. MIC's ``k`` hash functions, or fresh per-round
    seeds in HPP).
    """
    z = np.uint64(seed & _MASK64)
    for salt in salts:
        z = splitmix64(z ^ np.uint64(salt & _MASK64))
    return int(z)


def hash_u64(id_words: np.ndarray, seed: int) -> np.ndarray:
    """Full 64-bit hash of each tag identity word under ``seed``.

    Args:
        id_words: uint64 array of tag identity words (see
            :class:`repro.workloads.tagsets.TagSet`).
        seed: the reader-broadcast random seed ``r``.

    Returns:
        uint64 array of the same shape.
    """
    words = np.asarray(id_words, dtype=np.uint64)
    mixed_seed = np.uint64(splitmix64(seed & _MASK64))
    return get_kernel("hash_u64")(words, mixed_seed)


def hash_u64_ragged(
    id_words: np.ndarray, seeds: np.ndarray, counts: np.ndarray
) -> np.ndarray:
    """Hash a flattened ragged batch of R segments in one vectorised pass.

    Segment ``i`` is ``counts[i]`` consecutive identity words hashed
    under ``seeds[i]``; bit-identical to R separate :func:`hash_u64`
    calls (the seed mix and the word mix are both elementwise
    splitmix64, so batching changes nothing but the call count).

    Args:
        id_words: uint64 array of ``counts.sum()`` identity words,
            segment-major.
        seeds: the R per-segment seeds ``r_i``.
        counts: int64 array of the R segment lengths (zeros allowed).

    Returns:
        uint64 array aligned with ``id_words``.
    """
    seeds_u64 = np.asarray(seeds, dtype=np.uint64)
    counts = np.asarray(counts, dtype=np.int64)
    words = np.asarray(id_words, dtype=np.uint64)
    return get_kernel("hash_u64_ragged")(words, seeds_u64, counts)


def hash_indices(id_words: np.ndarray, seed: int, h: int) -> np.ndarray:
    """``H(r, id) mod 2**h`` for every tag — the paper's index draw.

    Args:
        id_words: uint64 array of tag identity words.
        seed: round seed ``r``.
        h: index length in bits, ``0 <= h <= 63``.

    Returns:
        int64 array of indices in ``[0, 2**h)``.

    Dtype contract: the result is always a fresh, writable int64 array
    the caller owns.  Because ``h <= 63`` every index fits in the int63
    value range, so the uint64 hash output is *reinterpreted* in place
    (``.view``) rather than copied (``.astype``) — the masked hash is
    already a private temporary, and skipping the second allocation is
    what keeps the batched replica path allocation-lean.
    """
    if not 0 <= h <= 63:
        raise ValueError(f"index length h must be in [0, 63], got {h}")
    mask = np.uint64((1 << h) - 1)
    return (hash_u64(id_words, seed) & mask).view(np.int64)


def hash_indices_ragged(
    id_words: np.ndarray, seeds: np.ndarray, hs: np.ndarray, counts: np.ndarray
) -> np.ndarray:
    """Ragged-batch :func:`hash_indices`: segment ``i`` uses ``hs[i]``.

    Bit-identical to per-segment :func:`hash_indices` calls; same int64
    dtype contract (fresh array, reinterpreted not copied).
    """
    hs = np.asarray(hs, dtype=np.int64)
    if hs.size and (int(hs.min()) < 0 or int(hs.max()) > 63):
        raise ValueError("index lengths h must be in [0, 63]")
    counts = np.asarray(counts, dtype=np.int64)
    seeds_u64 = np.asarray(seeds, dtype=np.uint64)
    words = np.asarray(id_words, dtype=np.uint64)
    return get_kernel("hash_indices_ragged")(words, seeds_u64, hs, counts)


def _as_int64(values: np.ndarray, modulus: int) -> np.ndarray:
    """Residues -> int64: a free reinterpretation when they fit int63."""
    if modulus <= (1 << 63):
        return values.view(np.int64)
    return values.astype(np.int64)  # pragma: no cover - 2^63 < modulus


def _residues(hashed: np.ndarray, modulus: int) -> np.ndarray:
    """``hashed % modulus`` with a mask fast path for powers of two.

    ``x mod 2^k`` is ``x & (2^k - 1)`` — same residues, no integer
    division (uint64 ``%`` has no SIMD path and dominates e.g. EHPP's
    circle-selection hash, whose default modulus ``F = 2^16`` is a power
    of two).  ``hashed`` is the hash's own fresh temporary, so the mask
    is applied in place.
    """
    if modulus & (modulus - 1) == 0:
        hashed &= np.uint64(modulus - 1)
        return hashed
    return hashed % np.uint64(modulus)


def hash_mod(id_words: np.ndarray, seed: int, modulus: int) -> np.ndarray:
    """``H(r, id) mod modulus`` for an arbitrary (non power-of-two) modulus.

    Used by EHPP's circle command (``H(r, ID) mod F``) and by MIC's frame
    mapping.

    Dtype contract: returns a fresh, writable int64 array.  For any
    ``modulus <= 2**63`` the residues fit the int63 value range and the
    uint64 remainder is reinterpreted in place instead of copied.
    """
    if modulus <= 0:
        raise ValueError(f"modulus must be positive, got {modulus}")
    return _as_int64(_residues(hash_u64(id_words, seed), modulus), modulus)


def hash_mod_ragged(
    id_words: np.ndarray, seeds: np.ndarray, modulus: int, counts: np.ndarray
) -> np.ndarray:
    """Ragged-batch :func:`hash_mod` (one shared modulus, per-segment seeds).

    Bit-identical to per-segment :func:`hash_mod` calls; same int64
    dtype contract.
    """
    if modulus <= 0:
        raise ValueError(f"modulus must be positive, got {modulus}")
    seeds_u64 = np.asarray(seeds, dtype=np.uint64)
    counts = np.asarray(counts, dtype=np.int64)
    words = np.asarray(id_words, dtype=np.uint64)
    return get_kernel("hash_mod_ragged")(words, seeds_u64, modulus, counts)
