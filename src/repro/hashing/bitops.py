"""Bit-string helpers for index encoding and prefix arithmetic.

Indices are transmitted MSB-first and zero-padded on the left to the
round's index length ``h`` (paper §III-B: "If the index is less than h
bits, pad zeros in front of it").  The tree-based protocol's wire cost
is governed by longest-common-prefix lengths between consecutive sorted
indices, computed here both scalar and vectorised.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "index_to_bits",
    "bits_to_index",
    "common_prefix_len",
    "common_prefix_len_array",
    "bit_length_array",
]


def index_to_bits(index: int, h: int) -> str:
    """Render ``index`` as an ``h``-bit MSB-first bit string.

    >>> index_to_bits(5, 4)
    '0101'
    """
    if h < 0:
        raise ValueError("h must be non-negative")
    if h == 0:
        if index != 0:
            raise ValueError(f"index {index} does not fit in 0 bits")
        return ""
    if not 0 <= index < (1 << h):
        raise ValueError(f"index {index} does not fit in {h} bits")
    return format(index, f"0{h}b")


def bits_to_index(bits: str) -> int:
    """Parse an MSB-first bit string back into an integer.

    >>> bits_to_index('0101')
    5
    """
    if bits == "":
        return 0
    if any(c not in "01" for c in bits):
        raise ValueError(f"not a bit string: {bits!r}")
    return int(bits, 2)


def common_prefix_len(a: int, b: int, h: int) -> int:
    """Longest common prefix (in bits) of two ``h``-bit indices.

    >>> common_prefix_len(0b000, 0b010, 3)
    1
    >>> common_prefix_len(0b101, 0b111, 3)
    1
    >>> common_prefix_len(0b011, 0b101, 3)
    0
    """
    if a == b:
        return h
    diff = a ^ b
    return h - diff.bit_length()


def bit_length_array(values: np.ndarray) -> np.ndarray:
    """Vectorised ``int.bit_length`` for a non-negative int64 array.

    Exact for the full int64 range: smears the highest set bit downward,
    then counts set bits — no float rounding involved.
    """
    values = np.asarray(values, dtype=np.int64)
    if values.size and values.min() < 0:
        raise ValueError("values must be non-negative")
    v = values.astype(np.uint64)
    for shift in (1, 2, 4, 8, 16, 32):
        v = v | (v >> np.uint64(shift))
    return np.bitwise_count(v).astype(np.int64)


def common_prefix_len_array(sorted_indices: np.ndarray, h: int) -> np.ndarray:
    """LCP length between each sorted index and its predecessor.

    Args:
        sorted_indices: strictly increasing int64 array of ``h``-bit
            indices (distinct singleton indices, sorted).
        h: index length in bits.

    Returns:
        int64 array ``lcp`` of the same length; ``lcp[0] == 0`` by
        convention (the first index shares nothing with a predecessor).
    """
    idx = np.asarray(sorted_indices, dtype=np.int64)
    if idx.ndim != 1:
        raise ValueError("sorted_indices must be one-dimensional")
    if idx.size == 0:
        return np.empty(0, dtype=np.int64)
    if idx.size and (idx.min() < 0 or (h < 63 and idx.max() >= (1 << h))):
        raise ValueError(f"indices do not fit in {h} bits")
    if np.any(np.diff(idx) <= 0):
        raise ValueError("indices must be strictly increasing")
    lcp = np.zeros(idx.size, dtype=np.int64)
    if idx.size > 1:
        diff = idx[1:] ^ idx[:-1]
        lcp[1:] = h - bit_length_array(diff)
    return lcp
