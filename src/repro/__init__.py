"""repro — Fast RFID Polling Protocols (Liu, Xiao, Liu, Chen; ICPP 2016).

A complete reproduction of the paper's system: the HPP / EHPP / TPP
polling protocols, the CPP / CP / MIC baselines, an EPC C1G2 link-timing
substrate, a discrete-event simulator with independent tag state
machines, the paper's analytical models, and a benchmark harness that
regenerates every figure and table of the evaluation.

Quickstart::

    import numpy as np
    from repro import TPP, uniform_tagset, collect_information

    tags = uniform_tagset(10_000, np.random.default_rng(7))
    report = collect_information(TPP(), tags, info_bits=16, n_runs=10)
    print(f"{report.mean_time_s:.2f}s, "
          f"{report.mean_vector_bits:.2f} bits per polling vector")

Package map
-----------
- :mod:`repro.core` — the paper's protocols (CPP, eCPP, CP, HPP, EHPP, TPP)
- :mod:`repro.baselines` — MIC, framed-slotted ALOHA, query tree
- :mod:`repro.phy` — C1G2 timing, command sizes, wire-time costing, channels
- :mod:`repro.sim` — discrete-event executor with tag state machines
- :mod:`repro.analysis` — the paper's closed-form models (eqs. 1–16)
- :mod:`repro.workloads` — tag populations and scenarios
- :mod:`repro.apps` — information collection, missing-tag detection
- :mod:`repro.experiments` — regenerators for every figure and table
"""

from repro.apps import (
    CollectionReport,
    MissingTagReport,
    collect_information,
    compare_protocols,
    detect_missing_tags,
)
from repro.baselines import DFSA, MIC, FramedSlottedAloha, simulate_query_tree
from repro.core import (
    CPP,
    EHPP,
    HPP,
    TPP,
    CodedPolling,
    EnhancedCPP,
    InterrogationPlan,
    PollingProtocol,
    PollingTree,
    RoundPlan,
)
from repro.phy import (
    BitErrorChannel,
    C1G2Timing,
    CommandSizes,
    IdealChannel,
    LinkBudget,
    PAPER_TIMING,
    lower_bound_us,
    plan_wire_time,
)
from repro.sim import DESResult, execute_plan, simulate
from repro.workloads import (
    Scenario,
    TagSet,
    clustered_tagset,
    cold_chain_scenario,
    sequential_tagset,
    theft_watch_scenario,
    uniform_tagset,
    warehouse_scenario,
)

__version__ = "1.0.0"

__all__ = [
    # protocols
    "CPP",
    "EnhancedCPP",
    "CodedPolling",
    "HPP",
    "EHPP",
    "TPP",
    "MIC",
    "DFSA",
    "FramedSlottedAloha",
    "simulate_query_tree",
    "PollingProtocol",
    "InterrogationPlan",
    "RoundPlan",
    "PollingTree",
    # phy
    "C1G2Timing",
    "PAPER_TIMING",
    "CommandSizes",
    "LinkBudget",
    "IdealChannel",
    "BitErrorChannel",
    "plan_wire_time",
    "lower_bound_us",
    # sim
    "DESResult",
    "execute_plan",
    "simulate",
    # workloads
    "TagSet",
    "uniform_tagset",
    "clustered_tagset",
    "sequential_tagset",
    "Scenario",
    "warehouse_scenario",
    "cold_chain_scenario",
    "theft_watch_scenario",
    # apps
    "CollectionReport",
    "collect_information",
    "compare_protocols",
    "MissingTagReport",
    "detect_missing_tags",
    "__version__",
]
