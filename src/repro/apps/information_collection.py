"""Information collection: gather ``m`` bits from every tag.

Two execution modes:

- the **fast path** plans the interrogation and costs it analytically
  (exactly what the paper's simulation measures) — used for the large
  parameter sweeps of Tables I–III;
- the **DES path** additionally runs the plan against live tag machines
  and returns the actual collected payload values, verifying them
  against ground truth — used by the examples and integration tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.base import PollingProtocol, ProtocolStats
from repro.phy.link import LinkBudget, lower_bound_us
from repro.sim.executor import execute_plan
from repro.workloads.tagsets import TagSet

__all__ = ["CollectionReport", "collect_information", "compare_protocols"]


@dataclass(frozen=True)
class CollectionReport:
    """Aggregated outcome of one or more collection runs."""

    protocol: str
    n_tags: int
    info_bits: int
    n_runs: int
    mean_time_us: float
    std_time_us: float
    mean_vector_bits: float
    mean_rounds: float
    mean_reader_bits: float
    lower_bound_us: float
    #: payload values collected by the DES path (single-run mode only)
    collected: dict[int, int] | None = None

    @property
    def mean_time_s(self) -> float:
        return self.mean_time_us / 1e6

    @property
    def ratio_to_lower_bound(self) -> float:
        return self.mean_time_us / self.lower_bound_us if self.lower_bound_us else 0.0


def collect_information(
    protocol: PollingProtocol,
    tags: TagSet,
    info_bits: int,
    n_runs: int = 10,
    seed: int = 0,
    budget: LinkBudget | None = None,
    use_des: bool = False,
    payloads: np.ndarray | None = None,
    backend: str = "machines",
) -> CollectionReport:
    """Collect ``info_bits`` from every tag, averaged over ``n_runs``.

    Args:
        use_des: execute the plan against live tag machines and return
            the collected payload values (forces ``n_runs == 1``).
        payloads: ground-truth per-tag information (DES mode); random
            values are drawn when omitted.
        backend: DES population backend (``"machines"`` or ``"array"``;
            only used with ``use_des=True``).
    """
    if info_bits < 0:
        raise ValueError("info_bits must be non-negative")
    if n_runs < 1:
        raise ValueError("n_runs must be positive")
    budget = budget if budget is not None else LinkBudget()
    n = len(tags)

    if use_des:
        rng = np.random.default_rng(seed)
        if payloads is None:
            payloads = rng.integers(
                0, max(1 << min(info_bits, 62), 1), size=n, dtype=np.int64
            )
        plan = protocol.plan(tags, rng)
        result = execute_plan(
            plan, tags, info_bits=info_bits, budget=budget, payloads=payloads,
            backend=backend,
        )
        collected = {
            int(i): int(payloads[i]) for i in result.polled_order
        }
        return CollectionReport(
            protocol=protocol.name,
            n_tags=n,
            info_bits=info_bits,
            n_runs=1,
            mean_time_us=result.time_us,
            std_time_us=0.0,
            mean_vector_bits=plan.avg_vector_bits,
            mean_rounds=float(plan.n_rounds),
            mean_reader_bits=float(result.reader_bits),
            lower_bound_us=lower_bound_us(n, info_bits, budget.timing),
            collected=collected,
        )

    times = np.empty(n_runs)
    vectors = np.empty(n_runs)
    rounds = np.empty(n_runs)
    reader_bits = np.empty(n_runs)
    for run in range(n_runs):
        rng = np.random.default_rng(seed + run)
        plan = protocol.plan(tags, rng)
        times[run] = budget.plan_us(plan, info_bits)
        vectors[run] = plan.avg_vector_bits
        rounds[run] = plan.n_rounds
        reader_bits[run] = plan.reader_bits
    return CollectionReport(
        protocol=protocol.name,
        n_tags=n,
        info_bits=info_bits,
        n_runs=n_runs,
        mean_time_us=float(times.mean()),
        std_time_us=float(times.std()),
        mean_vector_bits=float(vectors.mean()),
        mean_rounds=float(rounds.mean()),
        mean_reader_bits=float(reader_bits.mean()),
        lower_bound_us=lower_bound_us(n, info_bits, budget.timing),
    )


def compare_protocols(
    protocols: list[PollingProtocol],
    tags: TagSet,
    info_bits: int,
    n_runs: int = 10,
    seed: int = 0,
    budget: LinkBudget | None = None,
) -> list[CollectionReport]:
    """Run the same collection task under several protocols."""
    return [
        collect_information(p, tags, info_bits, n_runs=n_runs, seed=seed, budget=budget)
        for p in protocols
    ]


def stats_from_report(report: CollectionReport) -> ProtocolStats:
    """Flatten a report into the generic ProtocolStats record."""
    return ProtocolStats(
        protocol=report.protocol,
        n_tags=report.n_tags,
        n_rounds=int(round(report.mean_rounds)),
        n_polls=report.n_tags,
        reader_bits=int(round(report.mean_reader_bits)),
        wasted_slots=0,
        avg_vector_bits=report.mean_vector_bits,
        wire_time_us=report.mean_time_us,
    )
