"""Applications built on the polling protocols.

The paper motivates polling with two system-level tasks (§I):

- :mod:`repro.apps.information_collection` — collect ``m``-bit
  information (sensor readings, battery level, product data) from every
  tag: the task of the paper's Tables I–III.
- :mod:`repro.apps.missing_tag` — 1-bit presence polling of a known
  population, flagging tags that fail to answer (theft detection).
- :mod:`repro.apps.inventory` — the continuous version of the above:
  a long-running monitoring loop over a churning population with
  incremental re-planning and an asyncio session multiplexer.
- :mod:`repro.apps.multi_reader` — interference-graph colouring that
  extends every protocol to multi-reader deployments (§II-A's remark).
"""

from repro.apps.information_collection import (
    CollectionReport,
    collect_information,
    compare_protocols,
)
from repro.apps.inventory import (
    AsyncInventoryService,
    EpochReport,
    InventorySession,
    run_concurrent_sessions,
    run_inventory,
)
from repro.apps.missing_tag import MissingTagReport, detect_missing_tags
from repro.apps.multi_reader import (
    Deployment,
    MultiReaderResult,
    Reader,
    grid_deployment,
    simulate_deployment,
)

__all__ = [
    "CollectionReport",
    "collect_information",
    "compare_protocols",
    "MissingTagReport",
    "detect_missing_tags",
    "EpochReport",
    "InventorySession",
    "AsyncInventoryService",
    "run_inventory",
    "run_concurrent_sessions",
    "Reader",
    "Deployment",
    "grid_deployment",
    "MultiReaderResult",
    "simulate_deployment",
]
