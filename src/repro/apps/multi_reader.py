"""Multi-reader deployments with collision-free scheduling.

The paper presents its protocols for a single reader but notes (§II-A)
they extend to multiple readers "when the collision-free transmission
schedule among the readers is established".  This module establishes
exactly that schedule:

1. tags are assigned to covering readers (least-loaded first, balancing
   interrogation time);
2. readers whose interrogation zones overlap would collide if active
   simultaneously, so an *interference graph* is built and greedily
   coloured (networkx);
3. colour classes run sequentially, readers within a class concurrently
   — every reader runs the chosen polling protocol over its own tag
   share, and the wall-clock of a class is its slowest reader.

The resulting speed-up over a single reader is
``n_readers / n_colours`` in the balanced, dense-interference-free case.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from repro.core.base import PollingProtocol
from repro.phy.link import LinkBudget
from repro.workloads.tagsets import TagSet

__all__ = [
    "Reader",
    "Deployment",
    "grid_deployment",
    "MultiReaderResult",
    "simulate_deployment",
]


@dataclass(frozen=True)
class Reader:
    """A reader with a circular interrogation zone."""

    reader_id: int
    x: float
    y: float
    range_m: float

    def __post_init__(self) -> None:
        if self.range_m <= 0:
            raise ValueError("range_m must be positive")

    def covers(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Boolean mask of positions inside this reader's zone."""
        return (x - self.x) ** 2 + (y - self.y) ** 2 <= self.range_m**2

    def interferes(self, other: "Reader") -> bool:
        """Two readers interfere when their zones overlap."""
        d2 = (self.x - other.x) ** 2 + (self.y - other.y) ** 2
        return d2 < (self.range_m + other.range_m) ** 2


@dataclass
class Deployment:
    """Readers plus tag positions on the floor."""

    readers: list[Reader]
    tag_x: np.ndarray
    tag_y: np.ndarray

    def __post_init__(self) -> None:
        self.tag_x = np.asarray(self.tag_x, dtype=np.float64)
        self.tag_y = np.asarray(self.tag_y, dtype=np.float64)
        if self.tag_x.shape != self.tag_y.shape or self.tag_x.ndim != 1:
            raise ValueError("tag_x and tag_y must be aligned 1-D arrays")
        ids = [r.reader_id for r in self.readers]
        if len(set(ids)) != len(ids):
            raise ValueError("reader ids must be unique")

    @property
    def n_tags(self) -> int:
        return int(self.tag_x.size)

    # ------------------------------------------------------------------
    def coverage(self) -> dict[int, np.ndarray]:
        """reader_id -> indices of tags inside its zone."""
        return {
            r.reader_id: np.flatnonzero(r.covers(self.tag_x, self.tag_y))
            for r in self.readers
        }

    def assign_tags(self) -> dict[int, np.ndarray]:
        """Partition tags among covering readers, least-loaded first.

        Raises:
            ValueError: if any tag is outside every reader's zone.
        """
        cover = self.coverage()
        load = {r.reader_id: 0 for r in self.readers}
        assigned: dict[int, list[int]] = {r.reader_id: [] for r in self.readers}
        covered_by: list[list[int]] = [[] for _ in range(self.n_tags)]
        for rid, tag_idx in cover.items():
            for t in tag_idx.tolist():
                covered_by[t].append(rid)
        uncovered = [t for t, rs in enumerate(covered_by) if not rs]
        if uncovered:
            raise ValueError(
                f"{len(uncovered)} tag(s) outside every reader zone "
                f"(first: {uncovered[:5]})"
            )
        # hardest-to-place tags first (fewest covering readers)
        for t in sorted(range(self.n_tags), key=lambda t: len(covered_by[t])):
            rid = min(covered_by[t], key=lambda r: load[r])
            assigned[rid].append(t)
            load[rid] += 1
        return {
            rid: np.asarray(ts, dtype=np.int64) for rid, ts in assigned.items()
        }

    def interference_graph(self) -> nx.Graph:
        """Nodes = readers, edges = overlapping interrogation zones."""
        g = nx.Graph()
        g.add_nodes_from(r.reader_id for r in self.readers)
        for i, a in enumerate(self.readers):
            for b in self.readers[i + 1:]:
                if a.interferes(b):
                    g.add_edge(a.reader_id, b.reader_id)
        return g

    def schedule(self, strategy: str = "saturation_largest_first") -> list[list[int]]:
        """Colour the interference graph into concurrent reader classes."""
        coloring = nx.greedy_color(self.interference_graph(), strategy=strategy)
        n_colors = max(coloring.values(), default=-1) + 1
        classes: list[list[int]] = [[] for _ in range(n_colors)]
        for rid, color in coloring.items():
            classes[color].append(rid)
        return classes


def grid_deployment(
    n_tags: int,
    rng: np.random.Generator,
    rows: int = 2,
    cols: int = 3,
    spacing_m: float = 8.0,
    range_m: float = 6.0,
) -> Deployment:
    """A rows×cols reader grid with tags scattered over the covered floor.

    With ``range_m < spacing_m`` adjacent zones still overlap (6 + 6 > 8),
    giving a non-trivial interference graph; tags are drawn uniformly and
    rejection-sampled into coverage.
    """
    if rows < 1 or cols < 1:
        raise ValueError("grid must have at least one reader")
    readers = [
        Reader(reader_id=r * cols + c, x=c * spacing_m, y=r * spacing_m,
               range_m=range_m)
        for r in range(rows)
        for c in range(cols)
    ]
    width = (cols - 1) * spacing_m
    height = (rows - 1) * spacing_m
    xs: list[float] = []
    ys: list[float] = []
    while len(xs) < n_tags:
        x = rng.uniform(-range_m, width + range_m, size=n_tags)
        y = rng.uniform(-range_m, height + range_m, size=n_tags)
        inside = np.zeros(n_tags, dtype=bool)
        for r in readers:
            inside |= r.covers(x, y)
        xs.extend(x[inside].tolist())
        ys.extend(y[inside].tolist())
    return Deployment(readers, np.array(xs[:n_tags]), np.array(ys[:n_tags]))


@dataclass(frozen=True)
class MultiReaderResult:
    """Outcome of a scheduled multi-reader interrogation."""

    protocol: str
    n_readers: int
    n_tags: int
    n_colors: int
    total_time_us: float
    single_reader_time_us: float
    per_reader_time_us: dict[int, float]
    per_reader_tags: dict[int, int]
    schedule: list[list[int]] = field(default_factory=list)

    @property
    def speedup(self) -> float:
        return (
            self.single_reader_time_us / self.total_time_us
            if self.total_time_us
            else 0.0
        )


def simulate_deployment(
    protocol: PollingProtocol,
    deployment: Deployment,
    tags: TagSet,
    info_bits: int = 1,
    seed: int = 0,
    budget: LinkBudget | None = None,
) -> MultiReaderResult:
    """Run the protocol on every reader under the colouring schedule.

    Tag ``i`` of the TagSet sits at deployment position ``i``; all
    readers share the backend server's ID knowledge (paper §II-A), so
    each reader plans independently over its assigned share.
    """
    if len(tags) != deployment.n_tags:
        raise ValueError("tags and deployment positions must be aligned")
    budget = budget if budget is not None else LinkBudget()
    assignment = deployment.assign_tags()
    schedule = deployment.schedule()

    per_reader_time: dict[int, float] = {}
    for rid, tag_idx in assignment.items():
        if tag_idx.size == 0:
            per_reader_time[rid] = 0.0
            continue
        rng = np.random.default_rng((seed, rid + 1))
        plan = protocol.plan(tags.subset(tag_idx), rng)
        per_reader_time[rid] = budget.plan_us(plan, info_bits)

    total = sum(
        max((per_reader_time[rid] for rid in group), default=0.0)
        for group in schedule
    )
    single_rng = np.random.default_rng((seed, 0))
    single = budget.plan_us(protocol.plan(tags, single_rng), info_bits)
    return MultiReaderResult(
        protocol=protocol.name,
        n_readers=len(deployment.readers),
        n_tags=deployment.n_tags,
        n_colors=len(schedule),
        total_time_us=total,
        single_reader_time_us=single,
        per_reader_time_us=per_reader_time,
        per_reader_tags={rid: int(v.size) for rid, v in assignment.items()},
        schedule=schedule,
    )
