"""Missing-tag detection via 1-bit presence polling.

The paper's introductory use case: the reader knows the full inventory,
polls every tag for a 1-bit "I am here", and any silent poll identifies
a missing (stolen) tag *with certainty* — polling gives deterministic,
per-tag identification, unlike the probabilistic ALOHA detectors of the
related work.

Built directly on the DES executor's ``present``/``allow_missing``
machinery so the detection path exercises real tag state machines; on a
lossy channel a configurable retry count bounds the false-positive rate
(``P[false missing] <= P[frame loss]^attempts``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.base import PollingProtocol
from repro.phy.channel import Channel
from repro.phy.link import LinkBudget
from repro.sim.executor import simulate
from repro.workloads.scenarios import Scenario

__all__ = ["MissingTagReport", "detect_missing_tags"]


@dataclass(frozen=True)
class MissingTagReport:
    """Outcome of a presence-polling sweep."""

    protocol: str
    n_known: int
    n_present: int
    detected_missing: list[int]
    true_missing: list[int]
    time_us: float
    n_retries: int

    def __post_init__(self) -> None:
        # Detection order depends on the DES backend and replica
        # interleaving; the *set* of verdicts does not.  Normalise at
        # construction so reports compare stably (== across backends).
        object.__setattr__(
            self, "detected_missing", sorted(self.detected_missing)
        )
        object.__setattr__(self, "true_missing", sorted(self.true_missing))

    @property
    def false_positives(self) -> list[int]:
        """Present tags wrongly declared missing."""
        return sorted(set(self.detected_missing) - set(self.true_missing))

    @property
    def false_negatives(self) -> list[int]:
        """Missing tags the sweep failed to flag."""
        return sorted(set(self.true_missing) - set(self.detected_missing))

    @property
    def exact(self) -> bool:
        return not self.false_positives and not self.false_negatives

    @property
    def time_s(self) -> float:
        return self.time_us / 1e6


def detect_missing_tags(
    protocol: PollingProtocol,
    scenario: Scenario,
    seed: int = 0,
    budget: LinkBudget | None = None,
    channel: Channel | None = None,
    missing_attempts: int = 3,
    backend: str = "machines",
    replicas: int | None = None,
) -> MissingTagReport | list[MissingTagReport]:
    """Poll the known population for presence and flag the silent tags.

    Args:
        protocol: any polling protocol (HPP/EHPP/TPP/CPP) or MIC.
        scenario: a workload whose ``present`` set may be a strict
            subset of the known tags (see
            :func:`repro.workloads.scenarios.theft_watch_scenario`).
        missing_attempts: silent polls before a tag is declared missing
            on a lossy channel (1 poll suffices on the ideal channel).
        backend: DES population backend (``"machines"`` or ``"array"``;
            use ``"array"`` for large inventories).
        replicas: run R Monte-Carlo sweeps of the same scenario in one
            replica-batched DES pass and return ``list[MissingTagReport]``
            — replica ``r`` bit-identical to a separate call with
            ``seed=seed+r`` (useful for estimating the false-positive
            rate of a lossy-channel watch).
    """
    result = simulate(
        protocol,
        scenario.tags,
        info_bits=1,
        seed=seed,
        budget=budget,
        channel=channel,
        present=scenario.present,
        missing_attempts=missing_attempts,
        keep_trace=False,
        backend=backend,
        replicas=replicas,
    )

    def report(res) -> MissingTagReport:
        return MissingTagReport(
            protocol=protocol.name,
            n_known=scenario.n_known,
            n_present=scenario.n_present,
            detected_missing=sorted(res.missing),
            true_missing=np.asarray(scenario.missing).tolist(),
            time_us=res.time_us,
            n_retries=res.n_retries,
        )

    if replicas is not None:
        return [report(res) for res in result]
    return report(result)
