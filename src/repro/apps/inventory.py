"""Continuous inventory: the long-running monitoring loop.

The one-shot pipeline (build a :class:`TagSet`, plan, execute, report)
becomes a loop here: every epoch the population churns
(:class:`repro.workloads.inventory.InventoryStore` absorbs the diff),
the interrogation plan is **incrementally re-planned** in O(changed)
(:mod:`repro.core.replan`), the reader polls every known tag for a
1-bit presence reply through the real DES machinery, and the silent
polls become per-epoch missing-tag verdicts that update the session's
belief.  An :class:`AsyncInventoryService` multiplexes many concurrent
sessions (different zones, readers, or protocols) over the
replica-batched DES backend so their per-epoch polls execute as one
lockstep batch per protocol.

Index discipline: the store speaks *slots* (stable global ids), the
DES speaks *local* indices (positions in the epoch's compacted
population).  Sessions localise plans on the way into the executor and
lift missing verdicts back to slots on the way out, so every report is
phrased in ids that remain valid across epochs.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.base import PollingProtocol
from repro.core.replan import PlanDiff, ReplanStats
from repro.phy.channel import Channel
from repro.phy.link import LinkBudget
from repro.sim.batch import execute_plan_batch
from repro.sim.executor import execute_plan
from repro.workloads.inventory import ChurnModel, InventoryStore, PopulationDiff
from repro.workloads.tagsets import TagSet

__all__ = [
    "EpochReport",
    "InventorySession",
    "AsyncInventoryService",
    "run_inventory",
    "run_concurrent_sessions",
]


@dataclass(frozen=True)
class EpochReport:
    """One epoch of one session: churn absorbed, poll flown, verdicts.

    All tag references are **stable slot ids**.  ``detected_missing``
    is every known tag that stayed silent this epoch;
    ``newly_missing`` is the subset the session did not already
    believe missing — the epoch's actionable alarm.
    """

    epoch: int
    protocol: str
    n_known: int
    n_present: int
    n_arrived: int
    n_departed: int
    detected_missing: list[int]
    newly_missing: list[int]
    time_us: float
    n_retries: int
    n_rounds: int
    incremental: bool
    replan: ReplanStats | None = None

    def __post_init__(self) -> None:
        # verdict order depends on the DES backend and replica
        # interleaving; the *set* does not — normalise like
        # MissingTagReport so reports compare stably across backends
        object.__setattr__(
            self, "detected_missing", sorted(self.detected_missing))
        object.__setattr__(self, "newly_missing", sorted(self.newly_missing))

    @property
    def time_s(self) -> float:
        return self.time_us / 1e6


class InventorySession:
    """One reader watching one population, epoch after epoch.

    Each :meth:`step` absorbs a :class:`PopulationDiff`, maintains the
    interrogation plan — incrementally via the protocol's
    :meth:`~repro.core.base.PollingProtocol.plan_state` machinery when
    available (``incremental=True``), rebuilding from scratch otherwise
    — executes the presence poll on the DES, and folds the missing
    verdicts into the session's belief.  Protocols without an
    incremental planner (``plan_state() is None``) transparently fall
    back to per-epoch :meth:`plan` calls.
    """

    def __init__(
        self,
        protocol: PollingProtocol,
        tags: TagSet | None = None,
        seed: int = 0,
        reply_bits: int = 1,
        incremental: bool = True,
        budget: LinkBudget | None = None,
        channel: Channel | None = None,
        missing_attempts: int = 3,
        backend: str = "array",
    ):
        self.protocol = protocol
        self.store = InventoryStore(tags)
        self.reply_bits = int(reply_bits)
        self.budget = budget
        self.channel = channel
        self.missing_attempts = int(missing_attempts)
        self.backend = backend
        self._seed = int(seed)
        self._plan_rng = np.random.default_rng(seed)
        self.believed_missing: set[int] = set()
        self.total_wire_us = 0.0
        self.n_epochs = 0
        self._state = protocol.plan_state(
            self.store.tagset(), self._plan_rng, reply_bits=reply_bits,
            slots=self.store.slots()) if incremental else None
        self.incremental = incremental and self._state is not None

    # ------------------------------------------------------------------
    # plan maintenance (shared by the sync and async paths)
    # ------------------------------------------------------------------
    def _plan_epoch(self, diff: PopulationDiff):
        view = self.store.apply(diff)
        replan_stats = None
        if self.incremental:
            replan_stats = self.protocol.replan(
                self._state, PlanDiff.from_epoch(view), self._plan_rng)
            plan = self._state.plan(self.store.local_of())
        else:
            state = self.protocol.plan_state(
                self.store.tagset(), self._plan_rng,
                reply_bits=self.reply_bits, slots=self.store.slots())
            if state is not None:
                plan = state.plan(self.store.local_of())
            else:  # protocol has no state machinery at all
                plan = self.protocol.plan(self.store.tagset(),
                                          self._plan_rng)
        # the poll's own RNG is keyed by (session seed, epoch) so a
        # session replays identically regardless of service batching
        exec_rng = np.random.default_rng((self._seed, view.epoch))
        return view, plan, replan_stats, exec_rng

    def _absorb(self, view, plan, res, replan_stats) -> EpochReport:
        slots = self.store.slots()
        detected = slots[np.asarray(sorted(res.missing),
                                    dtype=np.int64)].tolist() \
            if res.missing else []
        # departures and confirmed returns leave the belief set
        self.believed_missing.difference_update(
            view.departed_slots.tolist())
        self.believed_missing.difference_update(
            view.returned_slots.tolist())
        newly = sorted(set(detected) - self.believed_missing)
        self.believed_missing.update(detected)
        self.total_wire_us += res.time_us
        self.n_epochs += 1
        return EpochReport(
            epoch=view.epoch,
            protocol=self.protocol.name,
            n_known=view.n_known,
            n_present=view.n_present,
            n_arrived=int(view.arrived_slots.size),
            n_departed=int(view.departed_slots.size),
            detected_missing=detected,
            newly_missing=newly,
            time_us=res.time_us,
            n_retries=res.n_retries,
            n_rounds=len(plan.rounds),
            incremental=self.incremental,
            replan=replan_stats,
        )

    # ------------------------------------------------------------------
    def step(self, diff: PopulationDiff) -> EpochReport:
        """Absorb one epoch's churn and fly its presence poll."""
        view, plan, replan_stats, exec_rng = self._plan_epoch(diff)
        res = execute_plan(
            plan, self.store.tagset(), info_bits=self.reply_bits,
            budget=self.budget, channel=self.channel, rng=exec_rng,
            present=self.store.present_local(),
            missing_attempts=self.missing_attempts, backend=self.backend)
        return self._absorb(view, plan, res, replan_stats)

    async def step_async(self, diff: PopulationDiff,
                         service: "AsyncInventoryService") -> EpochReport:
        """Like :meth:`step`, but the poll executes via ``service``
        (batched with other sessions' concurrent epochs)."""
        view, plan, replan_stats, exec_rng = self._plan_epoch(diff)
        res = await service.execute(
            plan, self.store.tagset(), self.store.present_local(), exec_rng,
            info_bits=self.reply_bits,
            missing_attempts=self.missing_attempts)
        return self._absorb(view, plan, res, replan_stats)


class AsyncInventoryService:
    """Micro-batching dispatcher over the replica-batched DES backend.

    Concurrent sessions awaiting :meth:`execute` within the same event
    -loop window are drained together and grouped by compatibility key
    (protocol × info_bits × missing_attempts); each group runs as ONE
    :func:`repro.sim.batch.execute_plan_batch` call, so S sessions
    polling in the same epoch cost one lockstep DES pass per protocol
    instead of S sequential executions.  Results are bit-identical to
    per-session :func:`execute_plan` calls because each request carries
    its own RNG (the batch machinery's replica-parity guarantee).
    """

    def __init__(self, budget: LinkBudget | None = None,
                 channel: Channel | None = None, backend: str = "array"):
        self.budget = budget
        self.channel = channel
        self.backend = backend
        self.executed_batches: list[tuple[str, int]] = []  # (key, size) log
        self._pending: list[tuple[tuple, Any]] = []
        self._drain_task: asyncio.Task | None = None

    async def execute(self, plan, tags: TagSet, present: np.ndarray,
                      rng: np.random.Generator, info_bits: int = 1,
                      missing_attempts: int = 3):
        loop = asyncio.get_running_loop()
        fut: asyncio.Future = loop.create_future()
        key = (plan.protocol, int(info_bits), int(missing_attempts))
        self._pending.append(
            (key, (plan, tags, present, rng, fut)))
        if self._drain_task is None or self._drain_task.done():
            self._drain_task = loop.create_task(self._drain())
        return await fut

    async def _drain(self) -> None:
        # one cooperative yield lets every already-runnable session
        # task enqueue its request before the batch cuts
        await asyncio.sleep(0)
        while self._pending:
            batch, self._pending = self._pending, []
            groups: dict[tuple, list] = {}
            for key, item in batch:
                groups.setdefault(key, []).append(item)
            for key, items in groups.items():
                plans = [it[0] for it in items]
                tags_list = [it[1] for it in items]
                present_list = [it[2] for it in items]
                rngs = [it[3] for it in items]
                self.executed_batches.append((key[0], len(items)))
                try:
                    results = execute_plan_batch(
                        plans, tags_list, info_bits=key[1],
                        budget=self.budget, channel=self.channel,
                        rngs=rngs, present_list=present_list,
                        missing_attempts=key[2], backend=self.backend)
                except Exception as exc:  # propagate to every waiter
                    for it in items:
                        if not it[4].done():
                            it[4].set_exception(exc)
                    continue
                for it, res in zip(items, results):
                    it[4].set_result(res)
            await asyncio.sleep(0)


def run_inventory(
    protocol: PollingProtocol,
    tags: TagSet,
    churn: ChurnModel,
    n_epochs: int,
    seed: int = 0,
    incremental: bool = True,
    **session_kw,
) -> list[EpochReport]:
    """The sync monitoring loop: churn → replan → poll, ``n_epochs`` times.

    Churn diffs come from ``churn.draw`` on a generator seeded by
    ``seed`` (separate from the session's planning/execution streams),
    so incremental and full-replan runs see identical populations.
    """
    session = InventorySession(protocol, tags, seed=seed,
                               incremental=incremental, **session_kw)
    churn_rng = np.random.default_rng((seed, 0xC0FFEE))
    return [session.step(churn.draw(session.store, churn_rng))
            for _ in range(n_epochs)]


async def run_concurrent_sessions(
    sessions: list[InventorySession],
    churns: list[ChurnModel],
    n_epochs: int,
    service: AsyncInventoryService,
    seed: int = 0,
) -> list[list[EpochReport]]:
    """Drive many sessions concurrently through one batching service.

    Every session advances epoch by epoch in its own task; the service
    coalesces the per-epoch polls.  Returns each session's reports in
    order.
    """
    if len(churns) != len(sessions):
        raise ValueError("one churn model per session")

    async def run_one(i: int, sess: InventorySession,
                      churn: ChurnModel) -> list[EpochReport]:
        churn_rng = np.random.default_rng((seed, i, 0xC0FFEE))
        reports = []
        for _ in range(n_epochs):
            diff = churn.draw(sess.store, churn_rng)
            reports.append(await sess.step_async(diff, service))
        return reports

    return list(await asyncio.gather(
        *(run_one(i, s, c)
          for i, (s, c) in enumerate(zip(sessions, churns)))))
