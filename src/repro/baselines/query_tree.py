"""Binary query-tree anti-collision (Law–Lee–Siu style).

The deterministic identification alternative the related work contrasts
polling with: the reader broadcasts an ID *prefix*; every tag whose ID
starts with the prefix replies with the remaining ID bits (plus its
information payload); on collision the reader splits the prefix by one
bit, on silence it prunes.  It needs no prior ID knowledge but pays
collision and empty queries plus long uplink replies.

Queries have per-node variable costs (the prefix length grows down the
tree, the reply shrinks), which doesn't fit the uniform-slot RoundPlan
model, so this baseline ships with its own small simulator that costs
each query directly through :class:`repro.phy.link.LinkBudget`.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from repro.phy.commands import EPC_ID_BITS
from repro.phy.link import LinkBudget
from repro.workloads.tagsets import TagSet

__all__ = ["QueryTreeResult", "simulate_query_tree"]


@dataclass(frozen=True)
class QueryTreeResult:
    """Outcome of a query-tree identification run."""

    n_tags: int
    n_queries: int
    n_singleton: int
    n_collision: int
    n_empty: int
    reader_bits: int
    tag_bits: int
    wire_time_us: float

    @property
    def time_per_tag_us(self) -> float:
        return self.wire_time_us / self.n_tags if self.n_tags else 0.0


def simulate_query_tree(
    tags: TagSet,
    info_bits: int = 0,
    budget: LinkBudget | None = None,
    command_overhead_bits: int = 4,
) -> QueryTreeResult:
    """Identify every tag with a binary query tree and cost the run.

    Args:
        tags: the population (IDs *unknown* to the reader a priori —
            that is the regime query trees target).
        info_bits: payload bits appended to each identifying reply.
        budget: link costing policy (paper timing by default).
        command_overhead_bits: framing bits per query command.

    Returns:
        Aggregate counters and wire time.
    """
    if budget is None:
        budget = LinkBudget()
    epcs = sorted(tags.epcs())
    if len(set(epcs)) != len(epcs):
        raise ValueError("query tree requires unique tag IDs")

    n_queries = n_singleton = n_collision = n_empty = 0
    reader_bits = tag_bits = 0
    time_us = 0.0

    # stack of (prefix value, prefix length); matching resolved on the
    # sorted EPC list via binary search so each query is O(log n).
    # The root query is the empty prefix (a full-population query).
    stack: list[tuple[int, int]] = [(0, 0)]
    while stack:
        prefix, length = stack.pop()
        lo = bisect.bisect_left(epcs, prefix << (EPC_ID_BITS - length)) if length else 0
        hi = (
            bisect.bisect_left(epcs, (prefix + 1) << (EPC_ID_BITS - length))
            if length
            else len(epcs)
        )
        n_matching = hi - lo
        reply_bits = (EPC_ID_BITS - length) + info_bits
        n_queries += 1
        reader_bits += command_overhead_bits + length
        if n_matching == 0:
            n_empty += 1
            time_us += budget.empty_slot_us(command_overhead_bits + length)
        elif n_matching == 1:
            n_singleton += 1
            tag_bits += reply_bits
            time_us += budget.poll_us(length, command_overhead_bits, reply_bits)
        else:
            n_collision += 1
            time_us += budget.collision_slot_us(
                command_overhead_bits + length, reply_bits
            )
            if length >= EPC_ID_BITS:  # pragma: no cover - unique IDs forbid this
                raise RuntimeError("collision at full ID depth: duplicate IDs?")
            stack.append(((prefix << 1) | 1, length + 1))
            stack.append((prefix << 1, length + 1))

    if n_singleton != len(epcs):  # pragma: no cover - invariant
        raise RuntimeError("query tree failed to identify every tag")
    return QueryTreeResult(
        n_tags=len(epcs),
        n_queries=n_queries,
        n_singleton=n_singleton,
        n_collision=n_collision,
        n_empty=n_empty,
        reader_bits=reader_bits,
        tag_bits=tag_bits,
        wire_time_us=time_us,
    )
