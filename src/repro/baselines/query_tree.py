"""Binary query-tree anti-collision (Law–Lee–Siu style).

The deterministic identification alternative the related work contrasts
polling with: the reader broadcasts an ID *prefix*; every tag whose ID
starts with the prefix replies with the remaining ID bits (plus its
information payload); on collision the reader splits the prefix by one
bit, on silence it prunes.  It needs no prior ID knowledge but pays
collision and empty queries plus long uplink replies.

Queries have per-node variable costs (the prefix length grows down the
tree, the reply shrinks), which doesn't fit the uniform-slot RoundPlan
model — but it fits the wire-schedule IR directly: :func:`plan_query_tree`
emits one :class:`~repro.phy.schedule.WireSchedule` round per query, and
:class:`repro.phy.link.LinkBudget` prices it like every other protocol.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

import numpy as np

from repro.phy.commands import DEFAULT_COMMAND_SIZES, EPC_ID_BITS
from repro.phy.link import LinkBudget
from repro.phy.schedule import ScheduleBuilder, ScheduleEmitter, WireSchedule
from repro.workloads.tagsets import TagSet

__all__ = [
    "QueryTreeResult",
    "QueryTree",
    "plan_query_tree",
    "simulate_query_tree",
]


@dataclass(frozen=True)
class QueryTreeResult:
    """Outcome of a query-tree identification run."""

    n_tags: int
    n_queries: int
    n_singleton: int
    n_collision: int
    n_empty: int
    reader_bits: int
    tag_bits: int
    wire_time_us: float

    @property
    def time_per_tag_us(self) -> float:
        return self.wire_time_us / self.n_tags if self.n_tags else 0.0


def plan_query_tree(
    tags: TagSet,
    info_bits: int = 0,
    command_overhead_bits: int | None = None,
) -> WireSchedule:
    """Run the query tree and emit its wire schedule (one round/query).

    Args:
        tags: the population (IDs *unknown* to the reader a priori —
            that is the regime query trees target).
        info_bits: payload bits appended to each identifying reply.
        command_overhead_bits: framing bits per query command; defaults
            to the C1G2 QueryRep size.
    """
    if command_overhead_bits is None:
        command_overhead_bits = DEFAULT_COMMAND_SIZES.query_rep
    order = sorted(range(len(tags)), key=tags.epc)
    epcs = [tags.epc(i) for i in order]
    if len(set(epcs)) != len(epcs):
        raise ValueError("query tree requires unique tag IDs")

    builder = ScheduleBuilder(
        "QT",
        len(tags),
        meta={
            "info_bits": int(info_bits),
            "command_overhead_bits": int(command_overhead_bits),
        },
    )
    # stack of (prefix value, prefix length); matching resolved on the
    # sorted EPC list via binary search so each query is O(log n).
    # The root query is the empty prefix (a full-population query).
    stack: list[tuple[int, int]] = [(0, 0)]
    n_singleton = 0
    while stack:
        prefix, length = stack.pop()
        lo = bisect.bisect_left(epcs, prefix << (EPC_ID_BITS - length)) if length else 0
        hi = (
            bisect.bisect_left(epcs, (prefix + 1) << (EPC_ID_BITS - length))
            if length
            else len(epcs)
        )
        n_matching = hi - lo
        reply_bits = (EPC_ID_BITS - length) + info_bits
        downlink = command_overhead_bits + length
        builder.begin_round()
        if n_matching == 0:
            builder.empty_slot(downlink)
        elif n_matching == 1:
            n_singleton += 1
            builder.poll(downlink, reply_bits, order[lo])
        else:
            builder.collision_slot(downlink, reply_bits)
            if length >= EPC_ID_BITS:  # pragma: no cover - unique IDs forbid this
                raise RuntimeError("collision at full ID depth: duplicate IDs?")
            stack.append(((prefix << 1) | 1, length + 1))
            stack.append((prefix << 1, length + 1))

    if n_singleton != len(epcs):  # pragma: no cover - invariant
        raise RuntimeError("query tree failed to identify every tag")
    return builder.build()


def simulate_query_tree(
    tags: TagSet,
    info_bits: int = 0,
    budget: LinkBudget | None = None,
    command_overhead_bits: int | None = None,
) -> QueryTreeResult:
    """Identify every tag with a binary query tree and cost the run.

    Thin wrapper over :func:`plan_query_tree`: all counters and the wire
    time are read off the emitted schedule.
    """
    if budget is None:
        budget = LinkBudget()
    schedule = plan_query_tree(tags, info_bits, command_overhead_bits)
    return QueryTreeResult(
        n_tags=len(tags),
        n_queries=schedule.n_rounds,
        n_singleton=schedule.n_polls,
        n_collision=schedule.n_collision_slots,
        n_empty=schedule.n_empty_slots,
        reader_bits=schedule.reader_bits,
        tag_bits=schedule.tag_bits,
        wire_time_us=budget.schedule_us(schedule),
    )


class QueryTree(ScheduleEmitter):
    """Sweepable query-tree baseline (deterministic; the rng is unused)."""

    name = "QT"

    def __init__(self, command_overhead_bits: int | None = None):
        self.command_overhead_bits = command_overhead_bits

    def emit(self, tags: TagSet, rng: np.random.Generator, *,
             info_bits: int = 0,
             budget: LinkBudget | None = None) -> WireSchedule:
        return plan_query_tree(tags, info_bits, self.command_overhead_bits)
