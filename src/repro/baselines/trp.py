"""TRP — the Trusted Reader Protocol for missing-tag *detection*.

Tan, Sheng and Li ("How to monitor for missing RFID tags", ICDCS 2008),
cited by the reproduced paper as the probabilistic alternative to
polling: the reader broadcasts ``⟨f, r⟩``; every present tag answers
with one bit in slot ``H(r, id) mod f``.  Knowing all IDs, the reader
precomputes the *expected* bitmap; a slot that should contain exactly
one tag (an expected singleton) but stays silent proves a missing-tag
event.  TRP detects the event with a target probability α — it does not
say *which* tags are missing, which is exactly the gap the paper's
polling protocols fill (they identify every missing tag with
certainty).

Detection analysis: a particular missing tag is caught in one round iff
its slot is an expected-singleton, probability
``p₁ = (1 − 1/f)^(n−1) ≈ e^{−(n−1)/f}``; over ``k`` independent rounds
``P[detect] = 1 − (1 − p₁)^k``, so ``k = ⌈ln(1−α)/ln(1−p₁)⌉``.

:func:`plan_trp` emits the run as a :class:`~repro.phy.schedule.WireSchedule`
(one round per TRP frame; every slot is walked because silence *is* the
signal — busy slots are anonymous 1-bit polls, silent slots wait out the
same 1-bit reply window), so TRP is priced, serialised, and swept by the
same machinery as every other protocol.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.rounds import fresh_seed
from repro.hashing.universal import hash_mod
from repro.phy.commands import CommandSizes, DEFAULT_COMMAND_SIZES
from repro.phy.link import LinkBudget
from repro.phy.schedule import ScheduleBuilder, ScheduleEmitter, WireSchedule
from repro.phy.timing import C1G2Timing, PAPER_TIMING
from repro.workloads.tagsets import TagSet

__all__ = [
    "trp_singleton_probability",
    "trp_required_rounds",
    "TRPResult",
    "TRP",
    "plan_trp",
    "simulate_trp",
]


def trp_singleton_probability(n: int, f: int) -> float:
    """P[a given tag lands in an expected-singleton slot]."""
    if n < 1 or f < 1:
        raise ValueError("n and f must be positive")
    return (1.0 - 1.0 / f) ** (n - 1)


def trp_required_rounds(n: int, f: int, alpha: float) -> int:
    """Rounds needed to detect one missing tag with probability ≥ α."""
    if not 0.0 < alpha < 1.0:
        raise ValueError("alpha must be in (0, 1)")
    p1 = trp_singleton_probability(n, f)
    if p1 >= 1.0:
        return 1
    return max(1, math.ceil(math.log(1.0 - alpha) / math.log(1.0 - p1)))


@dataclass(frozen=True)
class TRPResult:
    """Outcome of a TRP monitoring run."""

    n_known: int
    n_missing: int
    rounds_run: int
    detected: bool
    first_detection_round: int | None
    wire_time_us: float

    @property
    def time_s(self) -> float:
        return self.wire_time_us / 1e6


def plan_trp(
    tags: TagSet,
    present: np.ndarray,
    rng: np.random.Generator,
    load: float = 1.0,
    alpha: float = 0.99,
    max_rounds: int | None = None,
    init_bits: int = 32,
    stop_on_detection: bool = True,
    commands: CommandSizes = DEFAULT_COMMAND_SIZES,
) -> WireSchedule:
    """Run TRP monitoring rounds and emit the wire schedule.

    Every slot costs a QueryRep plus the 1-bit reply window (the reader
    cannot skip or shorten slots: silence is the signal), so slots map to
    schedule rows as: ≥2 repliers → collision, exactly 1 → an anonymous
    poll (``tag_idx = -1``; TRP never learns *who* replied), 0 → an
    empty slot with a 1-bit ``window_bits``.

    Detection outcome lands in ``meta``: ``n_missing``, ``rounds_run``,
    ``detected``, ``first_detection_round``.
    """
    n = len(tags)
    if n == 0:
        raise ValueError("population must be non-empty")
    f = max(int(round(n / load)), 1)
    round_budget = (
        max_rounds if max_rounds is not None else trp_required_rounds(n, f, alpha)
    )
    qr = commands.query_rep

    present = np.asarray(present, dtype=np.int64)
    present_mask = np.zeros(n, dtype=bool)
    present_mask[present] = True

    builder = ScheduleBuilder("TRP", n)
    detected = False
    first_round: int | None = None
    rounds_run = 0
    for round_no in range(round_budget):
        seed = fresh_seed(rng)
        slots = hash_mod(tags.id_words, seed, f)
        expected = np.bincount(slots, minlength=f)
        observed = np.bincount(slots[present_mask], minlength=f)
        builder.begin_round()
        builder.broadcast(init_bits)
        builder.poll(qr, 1, -1, count=int(np.count_nonzero(observed == 1)))
        builder.empty_slot(qr, window_bits=1,
                           count=int(np.count_nonzero(observed == 0)))
        builder.collision_slot(qr, 1, count=int(np.count_nonzero(observed >= 2)))
        rounds_run = round_no + 1
        # an expected singleton that stays silent is proof
        if np.any((expected == 1) & (observed == 0)):
            detected = True
            if first_round is None:
                first_round = round_no
            if stop_on_detection:
                break
    builder.meta.update(
        n_missing=int(n - present.size),
        rounds_run=rounds_run,
        detected=detected,
        first_detection_round=first_round,
        frame_size=f,
        alpha=alpha,
        load=load,
    )
    return builder.build()


def simulate_trp(
    tags: TagSet,
    present: np.ndarray,
    rng: np.random.Generator,
    load: float = 1.0,
    alpha: float = 0.99,
    max_rounds: int | None = None,
    init_bits: int = 32,
    timing: C1G2Timing = PAPER_TIMING,
    stop_on_detection: bool = True,
) -> TRPResult:
    """Run TRP monitoring rounds until detection (or the α-round budget).

    Thin wrapper over :func:`plan_trp`: the detection outcome comes from
    the schedule's ``meta``, the wire time from pricing the schedule.

    Args:
        tags: the known population (reader side).
        present: indices of tags physically in the field.
        load: frame load factor; ``f = n / load``.
        alpha: target detection probability (sets the round budget).
        max_rounds: override the α-derived budget.
        stop_on_detection: stop at the first missing-slot evidence (the
            monitoring use case); if False run the whole budget.
    """
    schedule = plan_trp(
        tags, present, rng,
        load=load, alpha=alpha, max_rounds=max_rounds,
        init_bits=init_bits, stop_on_detection=stop_on_detection,
    )
    budget = LinkBudget(timing=timing)
    meta = schedule.meta
    return TRPResult(
        n_known=len(tags),
        n_missing=meta["n_missing"],
        rounds_run=meta["rounds_run"],
        detected=meta["detected"],
        first_detection_round=meta["first_detection_round"],
        wire_time_us=budget.schedule_us(schedule),
    )


class TRP(ScheduleEmitter):
    """Sweepable TRP scenario: a random fraction of the tags goes missing."""

    name = "TRP"

    def __init__(
        self,
        missing_fraction: float = 0.01,
        load: float = 1.0,
        alpha: float = 0.99,
        max_rounds: int | None = None,
        init_bits: int = 32,
        stop_on_detection: bool = True,
    ):
        if not 0.0 <= missing_fraction <= 1.0:
            raise ValueError("missing_fraction must be in [0, 1]")
        self.missing_fraction = missing_fraction
        self.load = load
        self.alpha = alpha
        self.max_rounds = max_rounds
        self.init_bits = init_bits
        self.stop_on_detection = stop_on_detection

    def emit(self, tags: TagSet, rng: np.random.Generator, *,
             info_bits: int = 0,
             budget: LinkBudget | None = None) -> WireSchedule:
        n = len(tags)
        n_missing = min(n, max(1, int(round(self.missing_fraction * n))))
        missing = rng.choice(n, size=n_missing, replace=False)
        present = np.setdiff1d(np.arange(n, dtype=np.int64), missing)
        return plan_trp(
            tags, present, rng,
            load=self.load, alpha=self.alpha, max_rounds=self.max_rounds,
            init_bits=self.init_bits, stop_on_detection=self.stop_on_detection,
        )
