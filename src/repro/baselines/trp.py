"""TRP — the Trusted Reader Protocol for missing-tag *detection*.

Tan, Sheng and Li ("How to monitor for missing RFID tags", ICDCS 2008),
cited by the reproduced paper as the probabilistic alternative to
polling: the reader broadcasts ``⟨f, r⟩``; every present tag answers
with one bit in slot ``H(r, id) mod f``.  Knowing all IDs, the reader
precomputes the *expected* bitmap; a slot that should contain exactly
one tag (an expected singleton) but stays silent proves a missing-tag
event.  TRP detects the event with a target probability α — it does not
say *which* tags are missing, which is exactly the gap the paper's
polling protocols fill (they identify every missing tag with
certainty).

Detection analysis: a particular missing tag is caught in one round iff
its slot is an expected singleton, probability
``p₁ = (1 − 1/f)^(n−1) ≈ e^{−(n−1)/f}``; over ``k`` independent rounds
``P[detect] = 1 − (1 − p₁)^k``, so ``k = ⌈ln(1−α)/ln(1−p₁)⌉``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.rounds import fresh_seed
from repro.hashing.universal import hash_mod
from repro.phy.timing import C1G2Timing, PAPER_TIMING
from repro.workloads.tagsets import TagSet

__all__ = [
    "trp_singleton_probability",
    "trp_required_rounds",
    "TRPResult",
    "simulate_trp",
]


def trp_singleton_probability(n: int, f: int) -> float:
    """P[a given tag lands in an expected-singleton slot]."""
    if n < 1 or f < 1:
        raise ValueError("n and f must be positive")
    return (1.0 - 1.0 / f) ** (n - 1)


def trp_required_rounds(n: int, f: int, alpha: float) -> int:
    """Rounds needed to detect one missing tag with probability ≥ α."""
    if not 0.0 < alpha < 1.0:
        raise ValueError("alpha must be in (0, 1)")
    p1 = trp_singleton_probability(n, f)
    if p1 >= 1.0:
        return 1
    return max(1, math.ceil(math.log(1.0 - alpha) / math.log(1.0 - p1)))


@dataclass(frozen=True)
class TRPResult:
    """Outcome of a TRP monitoring run."""

    n_known: int
    n_missing: int
    rounds_run: int
    detected: bool
    first_detection_round: int | None
    wire_time_us: float

    @property
    def time_s(self) -> float:
        return self.wire_time_us / 1e6


def _round_time_us(f: int, init_bits: int, timing: C1G2Timing) -> float:
    """One TRP round: frame announce + f one-bit reply slots.

    Every slot is walked (the reader cannot skip: silence is the
    signal); each costs a 4-bit QueryRep, T1, a 1-bit reply window, T2.
    """
    slot_us = timing.reader_tx_us(4) + timing.t1_us + timing.tag_tx_us(1) + timing.t2_us
    return timing.reader_tx_us(init_bits) + f * slot_us


def simulate_trp(
    tags: TagSet,
    present: np.ndarray,
    rng: np.random.Generator,
    load: float = 1.0,
    alpha: float = 0.99,
    max_rounds: int | None = None,
    init_bits: int = 32,
    timing: C1G2Timing = PAPER_TIMING,
    stop_on_detection: bool = True,
) -> TRPResult:
    """Run TRP monitoring rounds until detection (or the α-round budget).

    Args:
        tags: the known population (reader side).
        present: indices of tags physically in the field.
        load: frame load factor; ``f = n / load``.
        alpha: target detection probability (sets the round budget).
        max_rounds: override the α-derived budget.
        stop_on_detection: stop at the first missing-slot evidence (the
            monitoring use case); if False run the whole budget.
    """
    n = len(tags)
    if n == 0:
        raise ValueError("population must be non-empty")
    f = max(int(round(n / load)), 1)
    budget = max_rounds if max_rounds is not None else trp_required_rounds(n, f, alpha)

    present = np.asarray(present, dtype=np.int64)
    present_mask = np.zeros(n, dtype=bool)
    present_mask[present] = True
    n_missing = int(n - present.size)

    detected = False
    first_round: int | None = None
    time_us = 0.0
    for round_no in range(budget):
        seed = fresh_seed(rng)
        slots = hash_mod(tags.id_words, seed, f)
        expected = np.bincount(slots, minlength=f)
        observed = np.bincount(slots[present_mask], minlength=f)
        time_us += _round_time_us(f, init_bits, timing)
        # an expected singleton that stays silent is proof
        if np.any((expected == 1) & (observed == 0)):
            detected = True
            if first_round is None:
                first_round = round_no
            if stop_on_detection:
                return TRPResult(
                    n_known=n,
                    n_missing=n_missing,
                    rounds_run=round_no + 1,
                    detected=True,
                    first_detection_round=round_no,
                    wire_time_us=time_us,
                )
    return TRPResult(
        n_known=n,
        n_missing=n_missing,
        rounds_run=budget,
        detected=detected,
        first_detection_round=first_round,
        wire_time_us=time_us,
    )
