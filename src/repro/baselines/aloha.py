"""Framed-slotted ALOHA baselines.

The classic anti-collision family the paper's introduction contrasts
polling against: tags pick frame slots at random, so the reader must
walk *every* slot, and ~63.2 % of slots are wasted (empty or collision)
at the optimal load.  Two variants:

- :class:`FramedSlottedAloha` — a single fixed frame size repeated until
  all tags are read.
- :class:`DFSA` — dynamic frame sizing: since this library's system
  model gives the reader the exact backlog (it knows all IDs and counts
  reads), each frame is sized ``round(backlog / load)`` with the
  throughput-optimal default load 1.

Unlike the hash-index protocols, the tag's slot choice here is *not*
predictable by the reader (that unpredictability is exactly why ALOHA
wastes slots), so plans draw slots from the experiment RNG directly.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import InterrogationPlan, PollingProtocol, RoundPlan
from repro.phy.commands import CommandSizes, DEFAULT_COMMAND_SIZES
from repro.workloads.tagsets import TagSet

__all__ = ["FramedSlottedAloha", "DFSA"]

_MAX_FRAMES = 100_000


def _aloha_frame(
    active: np.ndarray, f: int, rng: np.random.Generator
) -> tuple[np.ndarray, int, int, np.ndarray]:
    """One random frame: (read tags, empty slots, collision slots, rest)."""
    slots = rng.integers(0, f, size=active.size)
    counts = np.bincount(slots, minlength=f)
    singleton = counts[slots] == 1
    read = active[singleton]
    order = np.argsort(slots[singleton], kind="stable")
    n_empty = int(np.count_nonzero(counts == 0))
    n_collision = int(np.count_nonzero(counts > 1))
    return read[order], n_empty, n_collision, active[~singleton]


class FramedSlottedAloha(PollingProtocol):
    """Fixed-frame slotted ALOHA repeated to exhaustion."""

    name = "FSA"

    def __init__(self, frame_size: int, frame_init_bits: int = 32,
                 commands: CommandSizes = DEFAULT_COMMAND_SIZES):
        if frame_size < 1:
            raise ValueError("frame_size must be positive")
        if frame_init_bits < 0:
            raise ValueError("frame_init_bits must be non-negative")
        self.frame_size = frame_size
        self.frame_init_bits = frame_init_bits
        self.commands = commands

    def _frame_size(self, backlog: int) -> int:
        return self.frame_size

    def plan(self, tags: TagSet, rng: np.random.Generator) -> InterrogationPlan:
        n = len(tags)
        if n == 0:
            return InterrogationPlan(protocol=self.name, n_tags=0, rounds=[])
        rounds: list[RoundPlan] = []
        active = np.arange(n, dtype=np.int64)
        for frame_no in range(_MAX_FRAMES):
            if active.size == 0:
                return InterrogationPlan(protocol=self.name, n_tags=n, rounds=rounds)
            f = self._frame_size(int(active.size))
            read, n_empty, n_collision, active = _aloha_frame(active, f, rng)
            rounds.append(
                RoundPlan(
                    label=f"{self.name.lower()}-frame-{frame_no}",
                    init_bits=self.frame_init_bits,
                    poll_vector_bits=np.zeros(read.size, dtype=np.int64),
                    poll_tag_idx=read,
                    poll_overhead_bits=self.commands.query_rep,
                    empty_slots=n_empty,
                    collision_slots=n_collision,
                    slot_overhead_bits=self.commands.query_rep,
                    extra={"frame_size": f},
                )
            )
        raise RuntimeError(f"{self.name} did not converge within {_MAX_FRAMES} frames")


class DFSA(FramedSlottedAloha):
    """Dynamic framed-slotted ALOHA: frame sized to the known backlog."""

    name = "DFSA"

    def __init__(self, load: float = 1.0, frame_init_bits: int = 32,
                 commands: CommandSizes = DEFAULT_COMMAND_SIZES):
        if load <= 0:
            raise ValueError("load must be positive")
        super().__init__(frame_size=1, frame_init_bits=frame_init_bits,
                         commands=commands)
        self.load = load

    def _frame_size(self, backlog: int) -> int:
        # frame floor: a 1-slot frame can never resolve 2+ tags
        floor = 1 if backlog == 1 else 2
        return max(int(round(backlog / self.load)), floor)
