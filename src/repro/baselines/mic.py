"""MIC — Multi-hash Information Collection (Chen et al., INFOCOM 2011).

The state-of-the-art ALOHA-based information-collection protocol the
paper compares against (Tables I–III, row "MIC, k=7").

Per frame of ``f`` slots over the ``n'`` unresolved tags:

1. The reader knows all IDs, so it greedily builds a singleton
   assignment using ``k`` hash functions: pass ``j`` maps every
   still-unassigned tag through hash ``j`` into the still-free slots; a
   free slot hit by exactly one such tag is assigned to it.
2. The reader broadcasts an *indicator vector* of ⌈log₂(k+1)⌉ bits per
   slot — the hash number serving each slot, or 0 for a useless slot.
3. Tags decode the vector: a tag claims the first ``j`` (ascending) with
   ``vector[H_j(tag)] == j``; claimed tags reply in their slot, others
   stay silent and retry in the next frame.

Costing follows the reproduced paper's convention: the reader walks
*every* slot of the frame at the uniform full slot length (QueryRep +
T1 + reply + T2), so wasted slots burn a whole slot; with k = 7 about
14 % of slots are wasted, the 1.16× multiplier visible in the paper's
MIC rows.  Set ``uniform_slot_cost=False`` for the ablation where the
(silent) wasted slots cost only an empty-slot timeout.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.base import InterrogationPlan, PollingProtocol, RoundPlan
from repro.core.rounds import fresh_seed
from repro.phy.commands import CommandSizes, DEFAULT_COMMAND_SIZES
from repro.hashing.universal import derive_seed, hash_mod
from repro.workloads.tagsets import TagSet

__all__ = ["MIC"]

_MAX_FRAMES = 100_000


class MIC(PollingProtocol):
    """Multi-hash Information Collection protocol with ``k`` hashes."""

    name = "MIC"

    def __init__(
        self,
        k: int = 7,
        load: float = 1.0,
        frame_init_bits: int = 32,
        uniform_slot_cost: bool = True,
        commands: CommandSizes = DEFAULT_COMMAND_SIZES,
    ):
        """
        Args:
            k: number of hash functions each tag supports (paper: 7).
            load: frame load factor; frame size is ``n' / load``.
            frame_init_bits: bits to open a frame (command + seed).
            uniform_slot_cost: charge wasted slots a full slot (the
                reproduced paper's convention) instead of an empty-slot
                timeout.
            commands: C1G2 command sizes (slot framing = QueryRep).
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        if load <= 0:
            raise ValueError("load must be positive")
        if frame_init_bits < 0:
            raise ValueError("frame_init_bits must be non-negative")
        self.k = k
        self.load = load
        self.frame_init_bits = frame_init_bits
        self.uniform_slot_cost = uniform_slot_cost
        self.commands = commands

    # ------------------------------------------------------------------
    @property
    def indicator_bits_per_slot(self) -> int:
        return max(1, math.ceil(math.log2(self.k + 1)))

    def assign_frame(
        self, id_words: np.ndarray, active: np.ndarray, seed: int, f: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Greedy multi-hash singleton assignment for one frame.

        Returns:
            ``(slot_of_poll, tag_of_poll, pass_of_poll, unresolved)`` —
            assigned slots in ascending order, the owning tag (global
            index) and the hash pass (1-based) that won each slot, plus
            the tags deferred to the next frame.

        A slot's recorded pass must be the pass at which the greedy
        assignment actually happened (not merely *a* hash hitting the
        slot): the tag-side decode rule "claim the first ascending j
        with ``vector[H_j(tag)] == j``" is collision-free exactly for
        true pass numbers (see the proof sketch in tests/test_mic.py).
        """
        active = np.asarray(active, dtype=np.int64)
        slot_owner = np.full(f, -1, dtype=np.int64)  # tag (global) per slot
        slot_pass = np.zeros(f, dtype=np.int64)  # winning hash number
        slot_free = np.ones(f, dtype=bool)
        unassigned = np.ones(active.size, dtype=bool)
        for j in range(1, self.k + 1):
            if not unassigned.any():
                break
            cand = np.flatnonzero(unassigned)
            slots = hash_mod(id_words[active[cand]], derive_seed(seed, j), f)
            usable = slot_free[slots]
            if not usable.any():
                continue
            cand = cand[usable]
            slots = slots[usable]
            counts = np.bincount(slots, minlength=f)
            singleton = counts[slots] == 1
            winners = cand[singleton]
            won_slots = slots[singleton]
            slot_owner[won_slots] = active[winners]
            slot_pass[won_slots] = j
            slot_free[won_slots] = False
            unassigned[winners] = False
        polled_slots = np.flatnonzero(slot_owner >= 0)
        return (
            polled_slots,
            slot_owner[polled_slots],
            slot_pass[polled_slots],
            active[unassigned],
        )

    def plan(self, tags: TagSet, rng: np.random.Generator) -> InterrogationPlan:
        n = len(tags)
        if n == 0:
            return InterrogationPlan(protocol=self.name, n_tags=0, rounds=[])
        rounds: list[RoundPlan] = []
        active = np.arange(n, dtype=np.int64)
        for frame_no in range(_MAX_FRAMES):
            if active.size == 0:
                return InterrogationPlan(
                    protocol=self.name,
                    n_tags=n,
                    rounds=rounds,
                    meta={
                        "k": self.k,
                        "load": self.load,
                        "uniform_slot_cost": self.uniform_slot_cost,
                    },
                )
            # frame floor: a 1-slot frame can never resolve 2+ tags
            floor = 1 if active.size == 1 else 2
            f = max(int(round(active.size / self.load)), floor)
            seed = fresh_seed(rng)
            slots, owners, passes, deferred = self.assign_frame(
                tags.id_words, active, seed, f
            )
            wasted = f - slots.size
            rounds.append(
                RoundPlan(
                    label=f"mic-frame-{frame_no}",
                    init_bits=self.frame_init_bits + f * self.indicator_bits_per_slot,
                    poll_vector_bits=np.zeros(slots.size, dtype=np.int64),
                    poll_tag_idx=owners,
                    poll_overhead_bits=self.commands.query_rep,
                    # wasted slots: full slot length under the paper's
                    # uniform-slot convention, silent timeout otherwise
                    collision_slots=wasted if self.uniform_slot_cost else 0,
                    empty_slots=0 if self.uniform_slot_cost else wasted,
                    slot_overhead_bits=self.commands.query_rep,
                    extra={
                        "seed": seed,
                        "frame_size": f,
                        "useful_slots": int(slots.size),
                        "assigned_slots": slots,
                        "assigned_passes": passes,
                        "n_active": int(active.size),
                    },
                )
            )
            active = deferred
        raise RuntimeError(f"MIC did not converge within {_MAX_FRAMES} frames")

    # ------------------------------------------------------------------
    def decode_vector(
        self, id_words: np.ndarray, tag_global: int, vector: np.ndarray, seed: int
    ) -> int:
        """Tag-side decoding: the slot this tag claims, or -1.

        Scans hash numbers ascending and claims the first slot whose
        indicator equals that hash number — provably unambiguous for a
        greedy reader assignment (see tests/test_mic.py).
        """
        f = int(vector.size)
        word = np.asarray([id_words[tag_global]], dtype=np.uint64)
        for j in range(1, self.k + 1):
            slot = int(hash_mod(word, derive_seed(seed, j), f)[0])
            if vector[slot] == j:
                return slot
        return -1

    def indicator_vector(self, slots: np.ndarray, passes: np.ndarray, f: int) -> np.ndarray:
        """Reader-side indicator vector: the winning hash number per slot."""
        slots = np.asarray(slots, dtype=np.int64)
        passes = np.asarray(passes, dtype=np.int64)
        if slots.shape != passes.shape:
            raise ValueError("slots and passes must be aligned")
        if passes.size and (passes.min() < 1 or passes.max() > self.k):
            raise ValueError("pass numbers must be in [1, k]")
        vector = np.zeros(f, dtype=np.int64)
        vector[slots] = passes
        return vector
