"""Baseline protocols the paper compares against (or motivates from).

- :class:`~repro.baselines.mic.MIC` — the state-of-the-art multi-hash
  information-collection protocol (Chen et al., INFOCOM 2011), the
  paper's head-to-head competitor in Tables I–III.
- :class:`~repro.baselines.aloha.DFSA` — dynamic framed-slotted ALOHA,
  the classic anti-collision family whose wasted slots motivate polling.
- :mod:`repro.baselines.query_tree` — binary query-tree identification,
  the classic deterministic anti-collision alternative.
"""

from repro.baselines.aloha import DFSA, FramedSlottedAloha
from repro.baselines.estimation import estimate_cardinality
from repro.baselines.iip import IIPResult, simulate_iip
from repro.baselines.mic import MIC
from repro.baselines.query_tree import QueryTreeResult, simulate_query_tree
from repro.baselines.trp import TRPResult, simulate_trp, trp_required_rounds

__all__ = [
    "MIC",
    "DFSA",
    "FramedSlottedAloha",
    "QueryTreeResult",
    "simulate_query_tree",
    "TRPResult",
    "simulate_trp",
    "trp_required_rounds",
    "IIPResult",
    "simulate_iip",
    "estimate_cardinality",
]
