"""Baseline protocols the paper compares against (or motivates from).

- :class:`~repro.baselines.mic.MIC` — the state-of-the-art multi-hash
  information-collection protocol (Chen et al., INFOCOM 2011), the
  paper's head-to-head competitor in Tables I–III.
- :class:`~repro.baselines.aloha.DFSA` — dynamic framed-slotted ALOHA,
  the classic anti-collision family whose wasted slots motivate polling.
- :mod:`repro.baselines.query_tree` — binary query-tree identification,
  the classic deterministic anti-collision alternative.
"""

from repro.baselines.aloha import DFSA, FramedSlottedAloha
from repro.baselines.estimation import estimate_cardinality
from repro.baselines.iip import IIP, IIPResult, plan_iip, simulate_iip
from repro.baselines.mic import MIC
from repro.baselines.query_tree import (
    QueryTree,
    QueryTreeResult,
    plan_query_tree,
    simulate_query_tree,
)
from repro.baselines.trp import (
    TRP,
    TRPResult,
    plan_trp,
    simulate_trp,
    trp_required_rounds,
)

__all__ = [
    "MIC",
    "DFSA",
    "FramedSlottedAloha",
    "QueryTree",
    "QueryTreeResult",
    "plan_query_tree",
    "simulate_query_tree",
    "TRP",
    "TRPResult",
    "plan_trp",
    "simulate_trp",
    "trp_required_rounds",
    "IIP",
    "IIPResult",
    "plan_iip",
    "simulate_iip",
    "estimate_cardinality",
]
