"""Iterative ID-free missing-tag identification (Li et al., MobiHoc'10).

The second detection baseline the paper cites: unlike TRP (event
detection) this family identifies *every* missing tag with certainty,
still without transmitting IDs.  Per round the reader broadcasts
``⟨f, r⟩``; every unverified tag picks slot ``H(r, id) mod f``; the
reader precomputes the slot map and learns from each expected-singleton
slot whether its unique tag is present (1-bit reply) or missing
(silence).  Tags in collision slots stay unverified and re-hash next
round, so the procedure converges to a complete present/missing
partition.

Two wire variants, matching the paper's §VI discussion:

- ``bitmap=False`` — the reader walks every slot; the expected-empty
  slots are pure waste ("the useless empty slots cannot be avoided in
  their protocol design").
- ``bitmap=True`` — the reader prepends an ``f``-bit indicator vector so
  tags renumber to useful slots only; empty-slot waste is traded for
  vector bits (the refinement Li et al. propose).

Either way each verification consumes a whole slot, which is what the
paper's polling protocols compress: a TPP poll is a ~3-bit vector, and
its reply doubles as the presence proof.

:func:`plan_iip` emits the run as a :class:`~repro.phy.schedule.WireSchedule`
(one round per frame: present verifications are identified 1-bit polls,
missing-tag silences and expected-empty slots are empty slots, clashing
slots are collisions), priced and swept like every other protocol.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.rounds import fresh_seed
from repro.hashing.universal import hash_mod
from repro.phy.commands import CommandSizes, DEFAULT_COMMAND_SIZES
from repro.phy.link import LinkBudget
from repro.phy.schedule import ScheduleBuilder, ScheduleEmitter, WireSchedule
from repro.workloads.tagsets import TagSet

__all__ = ["IIPResult", "IIP", "plan_iip", "simulate_iip"]

_MAX_ROUNDS = 100_000


@dataclass(frozen=True)
class IIPResult:
    """Outcome of an iterative identification run."""

    n_known: int
    rounds: int
    missing: list[int]
    present: list[int]
    wire_time_us: float
    total_slots: int
    wasted_slots: int
    reader_bits: int

    @property
    def time_s(self) -> float:
        return self.wire_time_us / 1e6


def plan_iip(
    tags: TagSet,
    present: np.ndarray,
    rng: np.random.Generator,
    load: float = 1.0,
    bitmap: bool = True,
    init_bits: int = 32,
    commands: CommandSizes = DEFAULT_COMMAND_SIZES,
) -> WireSchedule:
    """Run IIP to completion and emit its wire schedule.

    Slot → row mapping: a present tag's verification is a QueryRep-framed
    1-bit poll carrying the tag's index; a missing tag's silent slot is
    an empty slot (the reader charges the framing and turnarounds, no
    reply window — that silence is the information); with
    ``bitmap=False`` the walked useless slots add expected-empty rows and
    1-bit collision rows.

    The present/missing partition lands in ``meta`` (``missing``,
    ``present``, ``rounds``, ``total_slots``, ``wasted_slots``).
    """
    if len(tags) == 0:
        raise ValueError("population must be non-empty")
    qr = commands.query_rep

    present_mask = np.zeros(len(tags), dtype=bool)
    present_mask[np.asarray(present, dtype=np.int64)] = True

    unverified = np.arange(len(tags), dtype=np.int64)
    missing: list[int] = []
    found_present: list[int] = []
    total_slots = wasted = 0

    builder = ScheduleBuilder("IIP", len(tags),
                              meta={"bitmap": bool(bitmap), "load": load})
    for round_no in range(_MAX_ROUNDS):
        if unverified.size == 0:
            builder.meta.update(
                rounds=round_no,
                missing=sorted(missing),
                present=sorted(found_present),
                total_slots=total_slots,
                wasted_slots=wasted,
            )
            return builder.build()
        # frame floor: a 1-slot frame can never verify among 2+ tags
        floor = 1 if unverified.size == 1 else 2
        f = max(int(round(unverified.size / load)), floor)
        seed = fresh_seed(rng)
        slots = hash_mod(tags.id_words[unverified], seed, f)
        counts = np.bincount(slots, minlength=f)
        is_singleton = counts[slots] == 1
        verify_tags = unverified[is_singleton]

        builder.begin_round()
        # frame announce (+ indicator vector when skipping is enabled)
        builder.broadcast(init_bits + (f if bitmap else 0))

        # verification slots: 1-bit reply or silence
        replying = verify_tags[present_mask[verify_tags]]
        silent = verify_tags[~present_mask[verify_tags]]
        builder.polls(qr, 1, replying)
        builder.empty_slot(qr, count=int(silent.size))
        total_slots += int(verify_tags.size)

        if not bitmap:
            # the reader must also walk the useless slots
            n_useless = f - int(np.count_nonzero(counts == 1))
            n_empty_expected = int(np.count_nonzero(counts == 0))
            n_collision = n_useless - n_empty_expected
            builder.empty_slot(qr, count=n_empty_expected)
            # collision slots: several tags reply concurrently (1 bit)
            builder.collision_slot(qr, 1, count=n_collision)
            total_slots += n_useless
            wasted += n_useless

        missing.extend(silent.tolist())
        found_present.extend(replying.tolist())
        unverified = unverified[~is_singleton]
    raise RuntimeError("IIP did not converge")  # pragma: no cover


def simulate_iip(
    tags: TagSet,
    present: np.ndarray,
    rng: np.random.Generator,
    load: float = 1.0,
    bitmap: bool = True,
    init_bits: int = 32,
    budget: LinkBudget | None = None,
) -> IIPResult:
    """Identify every missing tag via iterative 1-bit verification slots.

    Thin wrapper over :func:`plan_iip`: the partition comes from the
    schedule's ``meta``, the wire time from pricing the schedule.
    """
    budget = budget if budget is not None else LinkBudget()
    schedule = plan_iip(
        tags, present, rng, load=load, bitmap=bitmap, init_bits=init_bits
    )
    meta = schedule.meta
    return IIPResult(
        n_known=len(tags),
        rounds=meta["rounds"],
        missing=meta["missing"],
        present=meta["present"],
        wire_time_us=budget.schedule_us(schedule),
        total_slots=meta["total_slots"],
        wasted_slots=meta["wasted_slots"],
        reader_bits=schedule.reader_bits,
    )


class IIP(ScheduleEmitter):
    """Sweepable IIP scenario: a random fraction of the tags goes missing."""

    name = "IIP"

    def __init__(
        self,
        missing_fraction: float = 0.01,
        load: float = 1.0,
        bitmap: bool = True,
        init_bits: int = 32,
    ):
        if not 0.0 <= missing_fraction <= 1.0:
            raise ValueError("missing_fraction must be in [0, 1]")
        self.missing_fraction = missing_fraction
        self.load = load
        self.bitmap = bitmap
        self.init_bits = init_bits

    def emit(self, tags: TagSet, rng: np.random.Generator, *,
             info_bits: int = 0,
             budget: LinkBudget | None = None) -> WireSchedule:
        n = len(tags)
        n_missing = min(n, max(1, int(round(self.missing_fraction * n))))
        missing = rng.choice(n, size=n_missing, replace=False)
        present = np.setdiff1d(np.arange(n, dtype=np.int64), missing)
        return plan_iip(
            tags, present, rng,
            load=self.load, bitmap=self.bitmap, init_bits=self.init_bits,
        )
