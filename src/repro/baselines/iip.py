"""Iterative ID-free missing-tag identification (Li et al., MobiHoc'10).

The second detection baseline the paper cites: unlike TRP (event
detection) this family identifies *every* missing tag with certainty,
still without transmitting IDs.  Per round the reader broadcasts
``⟨f, r⟩``; every unverified tag picks slot ``H(r, id) mod f``; the
reader precomputes the slot map and learns from each expected-singleton
slot whether its unique tag is present (1-bit reply) or missing
(silence).  Tags in collision slots stay unverified and re-hash next
round, so the procedure converges to a complete present/missing
partition.

Two wire variants, matching the paper's §VI discussion:

- ``bitmap=False`` — the reader walks every slot; the expected-empty
  slots are pure waste ("the useless empty slots cannot be avoided in
  their protocol design").
- ``bitmap=True`` — the reader prepends an ``f``-bit indicator vector so
  tags renumber to useful slots only; empty-slot waste is traded for
  vector bits (the refinement Li et al. propose).

Either way each verification consumes a whole slot, which is what the
paper's polling protocols compress: a TPP poll is a ~3-bit vector, and
its reply doubles as the presence proof.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.rounds import fresh_seed
from repro.hashing.universal import hash_mod
from repro.phy.link import LinkBudget
from repro.workloads.tagsets import TagSet

__all__ = ["IIPResult", "simulate_iip"]

_MAX_ROUNDS = 100_000


@dataclass(frozen=True)
class IIPResult:
    """Outcome of an iterative identification run."""

    n_known: int
    rounds: int
    missing: list[int]
    present: list[int]
    wire_time_us: float
    total_slots: int
    wasted_slots: int
    reader_bits: int

    @property
    def time_s(self) -> float:
        return self.wire_time_us / 1e6


def simulate_iip(
    tags: TagSet,
    present: np.ndarray,
    rng: np.random.Generator,
    load: float = 1.0,
    bitmap: bool = True,
    init_bits: int = 32,
    budget: LinkBudget | None = None,
) -> IIPResult:
    """Identify every missing tag via iterative 1-bit verification slots.

    Args:
        tags: the known population.
        present: indices of physically present tags.
        load: frame load factor (``f = unverified / load``).
        bitmap: broadcast an f-bit vector to skip useless slots.
        init_bits: frame-announce command size.
        budget: link costing (paper timing by default).
    """
    if len(tags) == 0:
        raise ValueError("population must be non-empty")
    budget = budget if budget is not None else LinkBudget()
    t = budget.timing

    present_mask = np.zeros(len(tags), dtype=bool)
    present_mask[np.asarray(present, dtype=np.int64)] = True

    unverified = np.arange(len(tags), dtype=np.int64)
    missing: list[int] = []
    found_present: list[int] = []
    time_us = 0.0
    total_slots = wasted = reader_bits = 0

    for round_no in range(_MAX_ROUNDS):
        if unverified.size == 0:
            return IIPResult(
                n_known=len(tags),
                rounds=round_no,
                missing=sorted(missing),
                present=sorted(found_present),
                wire_time_us=time_us,
                total_slots=total_slots,
                wasted_slots=wasted,
                reader_bits=reader_bits,
            )
        # frame floor: a 1-slot frame can never verify among 2+ tags
        floor = 1 if unverified.size == 1 else 2
        f = max(int(round(unverified.size / load)), floor)
        seed = fresh_seed(rng)
        slots = hash_mod(tags.id_words[unverified], seed, f)
        counts = np.bincount(slots, minlength=f)
        is_singleton = counts[slots] == 1
        verify_tags = unverified[is_singleton]

        # frame announce (+ indicator vector when skipping is enabled)
        frame_bits = init_bits + (f if bitmap else 0)
        reader_bits += frame_bits
        time_us += budget.broadcast_us(frame_bits)

        # verification slots: 1-bit reply or silence
        n_replies = int(present_mask[verify_tags].sum())
        n_silent = int(verify_tags.size - n_replies)
        time_us += n_replies * budget.poll_us(0, 4, 1)
        time_us += n_silent * budget.empty_slot_us(4)
        total_slots += verify_tags.size
        reader_bits += 4 * int(verify_tags.size)

        if not bitmap:
            # the reader must also walk the useless slots
            n_useless = f - int(np.count_nonzero(counts == 1))
            n_empty_expected = int(np.count_nonzero(counts == 0))
            n_collision = n_useless - n_empty_expected
            time_us += n_empty_expected * budget.empty_slot_us(4)
            # collision slots: several tags reply concurrently (1 bit)
            time_us += n_collision * budget.collision_slot_us(4, 1)
            total_slots += n_useless
            wasted += n_useless
            reader_bits += 4 * n_useless

        missing.extend(verify_tags[~present_mask[verify_tags]].tolist())
        found_present.extend(verify_tags[present_mask[verify_tags]].tolist())
        unverified = unverified[~is_singleton]
    raise RuntimeError("IIP did not converge")  # pragma: no cover
