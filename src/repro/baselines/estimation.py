"""Tag-cardinality estimation — the substrate behind probabilistic sizing.

The reproduced paper's system model gives the reader every tag ID, but
its circle-selection machinery (§III-D) leans on the estimation
literature it cites (Li et al., "Energy efficient algorithms for the
RFID estimation problem"): when a deployment *doesn't* know n, an
estimator supplies it before protocol parameters (frame sizes, index
lengths, subset sizes) can be chosen.  Three classic estimators:

- :func:`zero_estimator` — invert the empty-slot fraction of an ALOHA
  frame: ``E[z/f] = (1 − 1/f)^n ≈ e^{−n/f}`` so ``n̂ = −f·ln(z/f)``.
- :func:`vogt_estimator` — Vogt's minimum-distance fit of the observed
  (empty, singleton, collision) triple against its binomial expectation.
- :func:`lottery_frame_estimator` — LoF / Flajolet–Martin style: tags
  pick slot ``j`` with probability ``2^{−(j+1)}``; the lowest empty slot
  index concentrates around ``log₂(φ·n)`` with ``φ ≈ 0.775``.

Each estimator consumes frames produced by :func:`observe_frame`, which
simulates anonymous tags answering with 1-bit presence replies (no IDs
are exchanged — that is the point).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "FrameObservation",
    "observe_frame",
    "observe_lottery_frame",
    "zero_estimator",
    "vogt_estimator",
    "lottery_frame_estimator",
    "estimate_cardinality",
]

#: LoF magic constant (Flajolet–Martin bias correction)
_PHI = 0.77351


@dataclass(frozen=True)
class FrameObservation:
    """Slot-status counts of one anonymous ALOHA frame."""

    frame_size: int
    empty: int
    singleton: int
    collision: int

    def __post_init__(self) -> None:
        if self.empty + self.singleton + self.collision != self.frame_size:
            raise ValueError("slot counts must sum to the frame size")


def observe_frame(n_tags: int, frame_size: int, rng: np.random.Generator) -> FrameObservation:
    """Anonymous tags pick uniform slots; the reader sees slot statuses."""
    if frame_size < 1:
        raise ValueError("frame_size must be positive")
    if n_tags < 0:
        raise ValueError("n_tags must be non-negative")
    slots = rng.integers(0, frame_size, size=n_tags)
    counts = np.bincount(slots, minlength=frame_size)
    return FrameObservation(
        frame_size=frame_size,
        empty=int(np.count_nonzero(counts == 0)),
        singleton=int(np.count_nonzero(counts == 1)),
        collision=int(np.count_nonzero(counts > 1)),
    )


def observe_lottery_frame(
    n_tags: int,
    frame_size: int,
    rng: np.random.Generator,
    return_overflow: bool = False,
) -> np.ndarray | tuple[np.ndarray, int]:
    """LoF frame: tag joins slot j with probability 2^-(j+1).

    Returns the boolean occupancy vector (True = at least one reply).
    With ``return_overflow=True``, also returns the number of tags whose
    geometric draw fell *beyond* the frame.

    A draw past the last slot means the tag replied outside the observed
    window — the reader hears nothing in-frame.  The old implementation
    clamped those draws onto slot ``frame_size - 1``, spuriously marking
    the last slot occupied: whenever that slot was the lowest truly
    empty one, the estimate doubled (``2^R`` with R pushed one past the
    truth), biasing :func:`lottery_frame_estimator` high for small
    frames.  Truncated draws are now counted separately instead, which
    also lets the estimator recover ``n`` when the whole frame saturates
    (see :func:`lottery_frame_estimator`).
    """
    if frame_size < 1:
        raise ValueError("frame_size must be positive")
    # geometric slot selection; draws beyond the frame are overflow, not
    # occupancy (same RNG consumption as the clamped version)
    draws = rng.geometric(p=0.5, size=n_tags) - 1
    occupied = np.zeros(frame_size, dtype=bool)
    occupied[draws[draws < frame_size]] = True
    if return_overflow:
        return occupied, int(np.count_nonzero(draws >= frame_size))
    return occupied


# ----------------------------------------------------------------------
def zero_estimator(obs: FrameObservation) -> float:
    """Invert the empty-slot fraction; falls back gracefully at extremes."""
    f = obs.frame_size
    if obs.empty == 0:
        # saturated frame: n is at least several times f
        return float(f * math.log(f) + f)
    return -f * math.log(obs.empty / f)


def _expected_triple(n: float, f: int) -> tuple[float, float, float]:
    p0 = (1.0 - 1.0 / f) ** n
    p1 = n / f * (1.0 - 1.0 / f) ** (n - 1.0) if n >= 1 else n / f
    return f * p0, f * p1, f * (1.0 - p0 - p1)


def vogt_estimator(obs: FrameObservation, n_max: int | None = None) -> float:
    """Vogt's Chebyshev-style minimum-distance estimate."""
    f = obs.frame_size
    hi = n_max if n_max is not None else max(16 * f, 64)
    observed = np.array([obs.empty, obs.singleton, obs.collision], dtype=float)
    # coarse-to-fine integer search keeps this dependency-free and exact
    best_n, best_d = 0, float("inf")
    step = max(hi // 256, 1)
    grid = range(0, hi + 1, step)
    for _ in range(3):
        for n in grid:
            e, s, c = _expected_triple(float(n), f)
            d = (e - observed[0]) ** 2 + (s - observed[1]) ** 2 + (c - observed[2]) ** 2
            if d < best_d:
                best_n, best_d = n, d
        lo = max(best_n - step, 0)
        hi2 = best_n + step
        step = max(step // 16, 1)
        grid = range(lo, hi2 + 1, step)
        if step == 1 and len(range(lo, hi2 + 1)) <= 512:
            grid = range(lo, hi2 + 1)
    return float(best_n)


def lottery_frame_estimator(occupied: np.ndarray, overflow: int = 0) -> float:
    """LoF estimate from the lowest empty slot index R: ``n̂ = 2^R / φ``.

    ``overflow`` is the count of draws that fell beyond the frame (see
    :func:`observe_lottery_frame`).  It matters only when every in-frame
    slot is occupied: the lowest empty slot is then censored at the
    frame boundary, and clamping would cap the estimate at
    ``2^f / φ`` no matter how large ``n`` is.  Each tag overflows a
    ``f``-slot frame with probability ``2^-f``, so ``overflow · 2^f``
    is an unbiased moment estimate of ``n`` that de-censors the
    saturated case.
    """
    occupied = np.asarray(occupied, dtype=bool)
    empties = np.flatnonzero(~occupied)
    if empties.size:
        return (2.0 ** int(empties[0])) / _PHI
    if overflow > 0:
        return float(overflow) * 2.0 ** occupied.size
    return (2.0 ** occupied.size) / _PHI


# ----------------------------------------------------------------------
def estimate_cardinality(
    n_true: int,
    rng: np.random.Generator,
    method: str = "zero",
    n_rounds: int = 16,
    frame_size: int | None = None,
) -> float:
    """Multi-round estimate of an unknown population size.

    Args:
        n_true: the hidden ground truth (drives the simulated frames).
        method: ``"zero"``, ``"vogt"`` or ``"lof"``.
        n_rounds: independent frames to average over.
        frame_size: per-frame size; defaults to a LoF-bootstrap for the
            uniform estimators (a first rough sizing pass, as the
            estimation literature prescribes) and 64 slots for LoF.
    """
    if n_rounds < 1:
        raise ValueError("n_rounds must be positive")
    if method == "lof":
        f = frame_size if frame_size is not None else 64
        estimates = [
            lottery_frame_estimator(
                *observe_lottery_frame(n_true, f, rng, return_overflow=True)
            )
            for _ in range(n_rounds)
        ]
        # LoF is log-domain: the geometric mean is the right average
        return float(np.exp(np.mean(np.log(np.maximum(estimates, 1e-9)))))
    if method not in ("zero", "vogt"):
        raise ValueError(f"unknown method {method!r}")
    if frame_size is None:
        # bootstrap a rough size so the main frames sit near load 1
        rough = estimate_cardinality(n_true, rng, method="lof", n_rounds=4)
        frame_size = max(int(rough), 16)
    estimator = zero_estimator if method == "zero" else vogt_estimator
    estimates = [
        estimator(observe_frame(n_true, frame_size, rng)) for _ in range(n_rounds)
    ]
    return float(np.mean(estimates))
