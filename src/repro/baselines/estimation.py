"""Tag-cardinality estimation — the substrate behind probabilistic sizing.

The reproduced paper's system model gives the reader every tag ID, but
its circle-selection machinery (§III-D) leans on the estimation
literature it cites (Li et al., "Energy efficient algorithms for the
RFID estimation problem"): when a deployment *doesn't* know n, an
estimator supplies it before protocol parameters (frame sizes, index
lengths, subset sizes) can be chosen.  Three classic estimators:

- :func:`zero_estimator` — invert the empty-slot fraction of an ALOHA
  frame: ``E[z/f] = (1 − 1/f)^n ≈ e^{−n/f}`` so ``n̂ = −f·ln(z/f)``.
- :func:`vogt_estimator` — Vogt's minimum-distance fit of the observed
  (empty, singleton, collision) triple against its binomial expectation.
- :func:`lottery_frame_estimator` — LoF / Flajolet–Martin style: tags
  pick slot ``j`` with probability ``2^{−(j+1)}``; the lowest empty slot
  index concentrates around ``log₂(φ·n)`` with ``φ ≈ 0.775``.

Each estimator consumes frames produced by :func:`observe_frame`, which
simulates anonymous tags answering with 1-bit presence replies (no IDs
are exchanged — that is the point).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "FrameObservation",
    "observe_frame",
    "observe_lottery_frame",
    "zero_estimator",
    "vogt_estimator",
    "lottery_frame_estimator",
    "estimate_cardinality",
]

#: LoF magic constant (Flajolet–Martin bias correction)
_PHI = 0.77351


@dataclass(frozen=True)
class FrameObservation:
    """Slot-status counts of one anonymous ALOHA frame."""

    frame_size: int
    empty: int
    singleton: int
    collision: int

    def __post_init__(self) -> None:
        if self.empty + self.singleton + self.collision != self.frame_size:
            raise ValueError("slot counts must sum to the frame size")


def observe_frame(n_tags: int, frame_size: int, rng: np.random.Generator) -> FrameObservation:
    """Anonymous tags pick uniform slots; the reader sees slot statuses."""
    if frame_size < 1:
        raise ValueError("frame_size must be positive")
    if n_tags < 0:
        raise ValueError("n_tags must be non-negative")
    slots = rng.integers(0, frame_size, size=n_tags)
    counts = np.bincount(slots, minlength=frame_size)
    return FrameObservation(
        frame_size=frame_size,
        empty=int(np.count_nonzero(counts == 0)),
        singleton=int(np.count_nonzero(counts == 1)),
        collision=int(np.count_nonzero(counts > 1)),
    )


def observe_lottery_frame(
    n_tags: int, frame_size: int, rng: np.random.Generator
) -> np.ndarray:
    """LoF frame: tag joins slot j with probability 2^-(j+1).

    Returns the boolean occupancy vector (True = at least one reply).
    """
    if frame_size < 1:
        raise ValueError("frame_size must be positive")
    # geometric slot selection, truncated to the last slot
    draws = rng.geometric(p=0.5, size=n_tags) - 1
    draws = np.minimum(draws, frame_size - 1)
    occupied = np.zeros(frame_size, dtype=bool)
    occupied[draws] = True
    if n_tags == 0:
        occupied[:] = False
    return occupied


# ----------------------------------------------------------------------
def zero_estimator(obs: FrameObservation) -> float:
    """Invert the empty-slot fraction; falls back gracefully at extremes."""
    f = obs.frame_size
    if obs.empty == 0:
        # saturated frame: n is at least several times f
        return float(f * math.log(f) + f)
    return -f * math.log(obs.empty / f)


def _expected_triple(n: float, f: int) -> tuple[float, float, float]:
    p0 = (1.0 - 1.0 / f) ** n
    p1 = n / f * (1.0 - 1.0 / f) ** (n - 1.0) if n >= 1 else n / f
    return f * p0, f * p1, f * (1.0 - p0 - p1)


def vogt_estimator(obs: FrameObservation, n_max: int | None = None) -> float:
    """Vogt's Chebyshev-style minimum-distance estimate."""
    f = obs.frame_size
    hi = n_max if n_max is not None else max(16 * f, 64)
    observed = np.array([obs.empty, obs.singleton, obs.collision], dtype=float)
    # coarse-to-fine integer search keeps this dependency-free and exact
    best_n, best_d = 0, float("inf")
    step = max(hi // 256, 1)
    grid = range(0, hi + 1, step)
    for _ in range(3):
        for n in grid:
            e, s, c = _expected_triple(float(n), f)
            d = (e - observed[0]) ** 2 + (s - observed[1]) ** 2 + (c - observed[2]) ** 2
            if d < best_d:
                best_n, best_d = n, d
        lo = max(best_n - step, 0)
        hi2 = best_n + step
        step = max(step // 16, 1)
        grid = range(lo, hi2 + 1, step)
        if step == 1 and len(range(lo, hi2 + 1)) <= 512:
            grid = range(lo, hi2 + 1)
    return float(best_n)


def lottery_frame_estimator(occupied: np.ndarray) -> float:
    """LoF estimate from the lowest empty slot index R: ``n̂ = 2^R / φ``."""
    occupied = np.asarray(occupied, dtype=bool)
    empties = np.flatnonzero(~occupied)
    r = int(empties[0]) if empties.size else int(occupied.size)
    return (2.0**r) / _PHI


# ----------------------------------------------------------------------
def estimate_cardinality(
    n_true: int,
    rng: np.random.Generator,
    method: str = "zero",
    n_rounds: int = 16,
    frame_size: int | None = None,
) -> float:
    """Multi-round estimate of an unknown population size.

    Args:
        n_true: the hidden ground truth (drives the simulated frames).
        method: ``"zero"``, ``"vogt"`` or ``"lof"``.
        n_rounds: independent frames to average over.
        frame_size: per-frame size; defaults to a LoF-bootstrap for the
            uniform estimators (a first rough sizing pass, as the
            estimation literature prescribes) and 64 slots for LoF.
    """
    if n_rounds < 1:
        raise ValueError("n_rounds must be positive")
    if method == "lof":
        f = frame_size if frame_size is not None else 64
        estimates = [
            lottery_frame_estimator(observe_lottery_frame(n_true, f, rng))
            for _ in range(n_rounds)
        ]
        # LoF is log-domain: the geometric mean is the right average
        return float(np.exp(np.mean(np.log(np.maximum(estimates, 1e-9)))))
    if method not in ("zero", "vogt"):
        raise ValueError(f"unknown method {method!r}")
    if frame_size is None:
        # bootstrap a rough size so the main frames sit near load 1
        rough = estimate_cardinality(n_true, rng, method="lof", n_rounds=4)
        frame_size = max(int(rough), 16)
    estimator = zero_estimator if method == "zero" else vogt_estimator
    estimates = [
        estimator(observe_frame(n_true, frame_size, rng)) for _ in range(n_rounds)
    ]
    return float(np.mean(estimates))
