"""JSON (de)serialisation of plans, wire schedules, and results.

Lets a deployment archive the exact interrogation schedule a reader
executed (for audit/replay) and lets the experiment harness persist
sweep outputs without pickling.  Numpy arrays are stored as lists;
round ``extra`` payloads keep only JSON-compatible values (arrays are
converted, everything else must already be plain data).

Wire schedules use a versioned format (:data:`SCHEDULE_FORMAT`): the
columns are stored verbatim, and a schedule document may instead embed
the originating plan (``"plan"`` key), in which case loading recompiles
it — a compact fallback for the plan-born protocols.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.base import InterrogationPlan, RoundPlan
from repro.experiments.common import ExperimentResult, Series
from repro.phy.commands import DEFAULT_COMMAND_SIZES
from repro.phy.schedule import WireSchedule, compile_plan

__all__ = [
    "SCHEDULE_FORMAT",
    "iter_jsonl_cells",
    "plan_to_dict",
    "plan_from_dict",
    "save_plan",
    "load_plan",
    "schedule_to_dict",
    "schedule_from_dict",
    "save_schedule",
    "load_schedule",
    "result_to_dict",
    "result_from_dict",
    "save_result",
    "load_result",
]

#: wire-schedule document format tag; bump on breaking column changes
SCHEDULE_FORMAT = "wire-schedule/v1"


def _jsonable(value: Any) -> Any:
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"cannot serialise {type(value).__name__} to JSON")


# ----------------------------------------------------------------------
# legacy sweep-cache cells (JSON lines)
# ----------------------------------------------------------------------
def iter_jsonl_cells(path: str | Path):
    """Yield ``(key, value)`` pairs from a legacy ``cells.jsonl`` file.

    The v1 sweep cache appended one ``{"key": ..., "value": ...}`` JSON
    object per line.  Reading is tolerant by construction: blank lines,
    torn final lines (a crash mid-append), and corrupt records are
    skipped rather than poisoning the rest of the file.  Later
    occurrences of a key supersede earlier ones (append order is write
    order), which callers obtain for free by inserting into a dict.
    """
    path = Path(path)
    if not path.exists():
        return
    raw = path.read_bytes()
    for line in raw.decode("utf-8", errors="replace").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
            key, value = entry["key"], entry["value"]
        except (json.JSONDecodeError, KeyError, TypeError):
            continue
        if isinstance(key, str) and isinstance(value, (int, float, list)):
            yield key, value


# ----------------------------------------------------------------------
# interrogation plans
# ----------------------------------------------------------------------
def plan_to_dict(plan: InterrogationPlan) -> dict[str, Any]:
    """Lossless dict form of a plan (arrays become lists)."""
    return {
        "protocol": plan.protocol,
        "n_tags": plan.n_tags,
        "meta": _jsonable(plan.meta),
        "rounds": [
            {
                "label": r.label,
                "init_bits": r.init_bits,
                "poll_vector_bits": r.poll_vector_bits.tolist(),
                "poll_tag_idx": r.poll_tag_idx.tolist(),
                "poll_overhead_bits": r.poll_overhead_bits,
                "empty_slots": r.empty_slots,
                "collision_slots": r.collision_slots,
                "slot_overhead_bits": r.slot_overhead_bits,
                "extra": _jsonable(r.extra),
            }
            for r in plan.rounds
        ],
    }


def plan_from_dict(data: dict[str, Any]) -> InterrogationPlan:
    """Rebuild a plan; integer-list extras become int64 arrays again
    for the keys the executors consume."""
    array_extras = {"singleton_indices", "assigned_slots", "assigned_passes"}
    rounds = []
    for rd in data["rounds"]:
        extra = dict(rd.get("extra", {}))
        for key in array_extras & extra.keys():
            extra[key] = np.asarray(extra[key], dtype=np.int64)
        rounds.append(
            RoundPlan(
                label=rd["label"],
                init_bits=rd["init_bits"],
                poll_vector_bits=np.asarray(rd["poll_vector_bits"], dtype=np.int64),
                poll_tag_idx=np.asarray(rd["poll_tag_idx"], dtype=np.int64),
                poll_overhead_bits=rd.get(
                    "poll_overhead_bits", DEFAULT_COMMAND_SIZES.query_rep
                ),
                empty_slots=rd.get("empty_slots", 0),
                collision_slots=rd.get("collision_slots", 0),
                slot_overhead_bits=rd.get(
                    "slot_overhead_bits", DEFAULT_COMMAND_SIZES.query_rep
                ),
                extra=extra,
            )
        )
    return InterrogationPlan(
        protocol=data["protocol"],
        n_tags=data["n_tags"],
        rounds=rounds,
        meta=dict(data.get("meta", {})),
    )


def save_plan(plan: InterrogationPlan, path: str | Path) -> Path:
    path = Path(path)
    path.write_text(json.dumps(plan_to_dict(plan)), encoding="utf-8")
    return path


def load_plan(path: str | Path) -> InterrogationPlan:
    return plan_from_dict(json.loads(Path(path).read_text(encoding="utf-8")))


# ----------------------------------------------------------------------
# wire schedules
# ----------------------------------------------------------------------
def schedule_to_dict(
    schedule: WireSchedule, plan: InterrogationPlan | None = None
) -> dict[str, Any]:
    """Versioned dict form of a wire schedule.

    When ``plan`` is given, the document stores the *plan* instead of
    the columns; :func:`schedule_from_dict` recompiles it (bit-identical
    by :func:`~repro.phy.schedule.compile_plan` determinism) — much
    smaller for the plan-born protocols, whose schedules are pure
    functions of the plan.
    """
    doc: dict[str, Any] = {
        "format": SCHEDULE_FORMAT,
        "protocol": schedule.protocol,
        "n_tags": schedule.n_tags,
        "meta": _jsonable(schedule.meta),
    }
    if plan is not None:
        doc["plan"] = plan_to_dict(plan)
        doc["reply_bits"] = int(schedule.meta.get("reply_bits", 1))
    else:
        doc["columns"] = {
            "kind": schedule.kind.tolist(),
            "downlink_bits": schedule.downlink_bits.tolist(),
            "uplink_bits": schedule.uplink_bits.tolist(),
            "tag_idx": schedule.tag_idx.tolist(),
            "round_id": schedule.round_id.tolist(),
        }
    return doc


def schedule_from_dict(data: dict[str, Any]) -> WireSchedule:
    """Rebuild a wire schedule (or recompile one from an embedded plan)."""
    fmt = data.get("format")
    if fmt != SCHEDULE_FORMAT:
        raise ValueError(
            f"unsupported schedule format {fmt!r}; expected {SCHEDULE_FORMAT!r}"
        )
    if "plan" in data:
        plan = plan_from_dict(data["plan"])
        schedule = compile_plan(plan, data.get("reply_bits", 1))
        schedule.meta.update(data.get("meta", {}))
        return schedule
    cols = data["columns"]
    schedule = WireSchedule(
        protocol=data["protocol"],
        n_tags=data["n_tags"],
        kind=np.asarray(cols["kind"], dtype=np.int8),
        downlink_bits=np.asarray(cols["downlink_bits"], dtype=np.int64),
        uplink_bits=np.asarray(cols["uplink_bits"], dtype=np.int64),
        tag_idx=np.asarray(cols["tag_idx"], dtype=np.int64),
        round_id=np.asarray(cols["round_id"], dtype=np.int64),
        meta=dict(data.get("meta", {})),
    )
    schedule.validate()
    return schedule


def save_schedule(
    schedule: WireSchedule,
    path: str | Path,
    plan: InterrogationPlan | None = None,
) -> Path:
    path = Path(path)
    path.write_text(json.dumps(schedule_to_dict(schedule, plan)), encoding="utf-8")
    return path


def load_schedule(path: str | Path) -> WireSchedule:
    return schedule_from_dict(json.loads(Path(path).read_text(encoding="utf-8")))


# ----------------------------------------------------------------------
# experiment results
# ----------------------------------------------------------------------
def result_to_dict(result: ExperimentResult) -> dict[str, Any]:
    return {
        "name": result.name,
        "title": result.title,
        "series": [
            {"label": s.label, "x": list(s.x), "y": list(s.y)}
            for s in result.series
        ],
        "notes": _jsonable(result.notes),
    }


def result_from_dict(data: dict[str, Any]) -> ExperimentResult:
    return ExperimentResult(
        name=data["name"],
        title=data["title"],
        series=[
            Series(label=s["label"], x=list(s["x"]), y=list(s["y"]))
            for s in data["series"]
        ],
        notes=dict(data.get("notes", {})),
    )


def save_result(result: ExperimentResult, path: str | Path) -> Path:
    path = Path(path)
    path.write_text(json.dumps(result_to_dict(result)), encoding="utf-8")
    return path


def load_result(path: str | Path) -> ExperimentResult:
    return result_from_dict(json.loads(Path(path).read_text(encoding="utf-8")))
