"""Independent tag-side state machines.

Each machine models one tag's on-chip protocol logic: it hears reader
messages (dicts with a ``kind`` field), keeps its own state (awake /
asleep, circle membership, TPP bit-register, MIC claimed slot) and
decides on its own — from its own ID and the broadcast parameters —
whether to backscatter a reply.  Nothing here peeks at the reader's
plan; agreement between the two sides is what the executor verifies.

Acknowledgement model: a tag that replied stays in REPLIED state until
the executor delivers an (implicit C1G2-style) acknowledgement, then
sleeps.  Under a lossy channel the reader withholds the ack and re-polls
instead, so no tag is lost to a corrupted reply.
"""

from __future__ import annotations

from enum import Enum
from typing import Any

import numpy as np

from repro.hashing.universal import derive_seed, hash_mod, hash_u64

__all__ = [
    "TagState",
    "Reply",
    "TagMachine",
    "CPPTagMachine",
    "HashTagMachine",
    "TPPTagMachine",
    "MICTagMachine",
    "MachinePopulation",
]

Message = dict[str, Any]


class TagState(Enum):
    READY = "ready"  # awake, not yet read
    REPLIED = "replied"  # reply sent, awaiting implicit ack
    ASLEEP = "asleep"  # read and acknowledged; ignores everything


class Reply:
    """A backscattered reply: who and (optionally) what."""

    __slots__ = ("tag_index", "payload")

    def __init__(self, tag_index: int, payload: int = 0):
        self.tag_index = tag_index
        self.payload = payload

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Reply(tag={self.tag_index})"


class TagMachine:
    """Base tag: identity, sleep/ack bookkeeping, message dispatch."""

    def __init__(self, tag_index: int, id_word: int, epc: int, payload: int = 0):
        self.tag_index = tag_index
        self.id_word = np.uint64(id_word)
        self.epc = epc
        self.payload = payload
        self.state = TagState.READY

    # -- identity-derived hash draws (the tag's "hash hardware") -------
    def hash_index(self, seed: int, h: int) -> int:
        """``H(r, id) mod 2**h`` computed tag-side."""
        word = int(hash_u64(np.asarray([self.id_word]), seed)[0])
        return word & ((1 << h) - 1)

    def hash_mod(self, seed: int, modulus: int) -> int:
        return int(hash_mod(np.asarray([self.id_word]), seed, modulus)[0])

    # -- lifecycle ------------------------------------------------------
    @property
    def awake(self) -> bool:
        return self.state is TagState.READY

    def acknowledge(self) -> None:
        """Implicit ack after a successful reply: go to sleep."""
        if self.state is not TagState.REPLIED:
            raise RuntimeError(f"tag {self.tag_index} acked in state {self.state}")
        self.state = TagState.ASLEEP

    def revert_reply(self) -> None:
        """The reply was lost; stay awake for the reader's retry."""
        if self.state is not TagState.REPLIED:
            raise RuntimeError(f"tag {self.tag_index} reverted in state {self.state}")
        self.state = TagState.READY

    def force_wake(self) -> None:
        """Reader-directed wake-up of a wrongly-read tag (lossy channels:

        a stale-register tag may answer a poll meant for another tag; the
        reader detects the wrong payload/ID and re-activates it)."""
        self.state = TagState.READY

    def _reply(self) -> Reply:
        self.state = TagState.REPLIED
        return Reply(self.tag_index, self.payload)

    # -- protocol dispatch ----------------------------------------------
    def on_message(self, msg: Message) -> Reply | None:
        """Hear a reader message; return a Reply to backscatter, or None."""
        if self.state is TagState.ASLEEP:
            return None
        handler = getattr(self, f"_on_{msg['kind']}", None)
        if handler is None:
            return None  # commands for other protocols are ignored
        return handler(msg)


class CPPTagMachine(TagMachine):
    """CPP and enhanced-CPP logic: match the broadcast ID (or suffix)."""

    def __init__(self, tag_index: int, id_word: int, epc: int,
                 payload: int = 0, id_bits: int = 96):
        super().__init__(tag_index, id_word, epc, payload)
        self.id_bits = id_bits
        self.selected = True  # full-population scope until a Select narrows it

    def _on_cpp_poll(self, msg: Message) -> Reply | None:
        if self.awake and msg["epc"] == self.epc:
            return self._reply()
        return None

    def _on_select(self, msg: Message) -> None:
        bits = msg["prefix_bits"]
        self.selected = (self.epc >> (self.id_bits - bits)) == msg["prefix"]
        return None

    def _on_suffix_poll(self, msg: Message) -> Reply | None:
        bits = msg["suffix_bits"]
        if (
            self.awake
            and self.selected
            and (self.epc & ((1 << bits) - 1)) == msg["suffix"]
        ):
            return self._reply()
        return None


class CPTagMachine(TagMachine):
    """Coded Polling logic: XOR-recover the partner, validate its CRC.

    Requires a CRC-embedded population
    (:func:`repro.workloads.tagsets.crc_embedded_tagset`).  On a valid
    frame the tag derives its reply rank from the EPC ordering within
    the pair; it also answers bare-ID polls (the odd tail tag).
    """

    def __init__(self, tag_index: int, id_word: int, epc: int,
                 payload: int = 0, id_bits: int = 96):
        super().__init__(tag_index, id_word, epc, payload)
        self.id_bits = id_bits
        self._rank: int | None = None

    def _on_cp_frame(self, msg: Message) -> None:
        from repro.core.coded_polling import validate_coded_partner

        partner_hi = validate_coded_partner(msg["frame"], self.epc, self.id_bits)
        self._rank = None
        if partner_hi is not None and self.awake:
            self._rank = 0 if (self.epc >> 16) < partner_hi else 1
        return None

    def _on_cp_slot(self, msg: Message) -> Reply | None:
        if self.awake and self._rank == msg["rank"]:
            return self._reply()
        return None

    def _on_cpp_poll(self, msg: Message) -> Reply | None:
        if self.awake and msg["epc"] == self.epc:
            return self._reply()
        return None


class HashTagMachine(TagMachine):
    """HPP / EHPP logic: pick an index per round, answer your own index."""

    def __init__(self, tag_index: int, id_word: int, epc: int, payload: int = 0):
        super().__init__(tag_index, id_word, epc, payload)
        self.in_circle = True  # no circle command yet => global scope
        self._index: int | None = None

    def _on_circle_cmd(self, msg: Message) -> None:
        # join iff H(r, ID) mod F <= f  (paper §III-D)
        draw = self.hash_mod(msg["seed"], msg["F"])
        self.in_circle = draw <= msg["f"]
        self._index = None
        return None

    def _on_round_init(self, msg: Message) -> None:
        if msg.get("global_scope", True) or self.in_circle:
            self._index = self.hash_index(msg["seed"], msg["h"])
        else:
            self._index = None
        return None

    def _on_poll_index(self, msg: Message) -> Reply | None:
        if self.awake and self._index is not None and msg["index"] == self._index:
            return self._reply()
        return None


class TPPTagMachine(HashTagMachine):
    """TPP logic: maintain the h-bit register A, reply when A matches."""

    def __init__(self, tag_index: int, id_word: int, epc: int, payload: int = 0):
        super().__init__(tag_index, id_word, epc, payload)
        self._h = 0
        self._a = 0

    def _on_round_init(self, msg: Message) -> None:
        super()._on_round_init(msg)
        self._h = msg["h"]
        self._a = 0
        return None

    def _on_tpp_segment(self, msg: Message) -> Reply | None:
        if self._index is None:
            return None
        k = msg["length"]
        if not 0 <= k <= self._h:
            raise ValueError(f"segment length {k} outside [0, {self._h}]")
        # overwrite the LAST k bits of A with the segment (paper Fig. 7)
        keep = ((1 << self._h) - 1) ^ ((1 << k) - 1)
        self._a = (self._a & keep) | msg["value"]
        if self.awake and self._a == self._index:
            return self._reply()
        return None


class MachinePopulation:
    """The per-tag-object simulation backend: one machine per tag.

    Implements the population interface the executor's ``_Air`` speaks —
    :meth:`dispatch`, :meth:`acknowledge`, :meth:`revert_reply`,
    :meth:`force_wake`, :meth:`asleep_indices` — by looping over live
    :class:`TagMachine` objects.  This is the *oracle* backend: legible,
    one state machine per tag, O(awake) Python dispatch per broadcast.
    The vectorised array backend (:mod:`repro.sim.tagarray`) must match
    its counters bit for bit.

    The awake set is maintained *incrementally*: a machine leaves when
    its read is acknowledged and re-enters via :meth:`force_wake` (an
    O(1) dict insert — reply iteration order does not affect any
    ``DESResult`` counter, because a unique responder is unique in any
    order and a multi-responder poll is a collision that reverts every
    replier symmetrically).
    """

    #: executor hint: per-object dispatch, not batched
    vectorized = False

    def __init__(self, machines: list[TagMachine], present: np.ndarray):
        self.machines = machines
        self.present = present
        self._awake: dict[int, TagMachine] = {
            m.tag_index: m for m in machines if present[m.tag_index]
        }

    def __len__(self) -> int:
        return len(self.machines)

    def dispatch(self, msg: Message) -> list[Reply]:
        """Deliver ``msg`` to every awake machine; collect the replies."""
        replies = []
        for machine in self._awake.values():
            reply = machine.on_message(msg)
            if reply is not None:
                replies.append(reply)
        return replies

    def acknowledge(self, tag_index: int) -> None:
        self.machines[tag_index].acknowledge()
        self._awake.pop(tag_index, None)

    def revert_reply(self, tag_index: int) -> None:
        self.machines[tag_index].revert_reply()

    def force_wake(self, tag_index: int) -> None:
        self.machines[tag_index].force_wake()
        if tag_index not in self._awake:
            self._awake[tag_index] = self.machines[tag_index]

    def asleep_indices(self) -> list[int]:
        """Tag indices that were read and acknowledged, ascending."""
        return sorted(
            m.tag_index for m in self.machines if m.state is TagState.ASLEEP
        )


class MICTagMachine(TagMachine):
    """MIC logic: decode the indicator vector, reply in the claimed slot."""

    def __init__(self, tag_index: int, id_word: int, epc: int,
                 payload: int = 0, k: int = 7):
        super().__init__(tag_index, id_word, epc, payload)
        self.k = k
        self._claimed_slot: int | None = None

    def _on_mic_frame(self, msg: Message) -> None:
        vector = msg["vector"]
        seed = msg["seed"]
        f = int(len(vector))
        self._claimed_slot = None
        if not self.awake:
            return None
        # claim the first ascending hash number whose slot carries it
        for j in range(1, self.k + 1):
            slot = self.hash_mod(derive_seed(seed, j), f)
            if vector[slot] == j:
                self._claimed_slot = slot
                break
        return None

    def _on_mic_slot(self, msg: Message) -> Reply | None:
        if self.awake and self._claimed_slot == msg["slot"]:
            return self._reply()
        return None
