"""A small discrete-event engine: clock, typed events, priority queue.

The RFID air interface is reader-driven, so the schedule is mostly
sequential — but modelling it as explicit timestamped events gives us an
auditable trace (each turnaround, transmission and reply is an event)
and a natural seam for failure injection.  The engine is deliberately
generic: events carry a kind, a timestamp and a payload dict.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Iterator

__all__ = ["EventKind", "Event", "EventQueue", "Trace"]


class EventKind(Enum):
    """Everything that can happen on the air or in the reader."""

    ROUND_START = "round_start"
    READER_TX_START = "reader_tx_start"
    READER_TX_END = "reader_tx_end"
    TAG_REPLY_START = "tag_reply_start"
    TAG_REPLY_END = "tag_reply_end"
    REPLY_TIMEOUT = "reply_timeout"
    COLLISION = "collision"
    TAG_READ = "tag_read"
    FRAME_LOST = "frame_lost"
    RETRY = "retry"
    DONE = "done"


@dataclass(frozen=True, order=True)
class Event:
    """A timestamped event; ordering is (time, seq) for stable replay."""

    time_us: float
    seq: int
    kind: EventKind = field(compare=False)
    data: dict[str, Any] = field(compare=False, default_factory=dict)


class EventQueue:
    """Priority queue of future events plus the simulation clock."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self.now_us: float = 0.0

    def schedule(self, delay_us: float, kind: EventKind, **data: Any) -> Event:
        """Schedule an event ``delay_us`` after the current clock.

        The delay must be finite and non-negative: a negative delay
        schedules into the past, and a ``NaN``/``inf`` delay would
        corrupt both the heap ordering (NaN compares false against
        everything) and the simulation clock.
        """
        if not math.isfinite(delay_us):
            raise ValueError(f"delay must be finite, got {delay_us!r}")
        if delay_us < 0:
            raise ValueError("cannot schedule into the past")
        event = Event(self.now_us + delay_us, next(self._counter), kind, data)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Advance the clock to the next event and return it."""
        if not self._heap:
            raise IndexError("event queue is empty")
        event = heapq.heappop(self._heap)
        self.now_us = event.time_us
        return event

    def advance(self, delay_us: float) -> None:
        """Advance the clock without materialising an event.

        The trace-free fast path: semantically equivalent to
        ``schedule(delay_us, ...)`` immediately followed by ``pop()``
        when nothing else is pending, minus the Event allocation and the
        heap round-trip.  Validation matches :meth:`schedule` so the two
        paths reject exactly the same inputs.
        """
        if not math.isfinite(delay_us):
            raise ValueError(f"delay must be finite, got {delay_us!r}")
        if delay_us < 0:
            raise ValueError("cannot schedule into the past")
        self.now_us += delay_us

    def __len__(self) -> int:
        return len(self._heap)

    def run(self, handler: Callable[[Event], None], max_events: int | None = None) -> int:
        """Drain the queue through ``handler``; returns events processed."""
        processed = 0
        while self._heap:
            if max_events is not None and processed >= max_events:
                break
            handler(self.pop())
            processed += 1
        return processed


class Trace:
    """An append-only record of processed events with query helpers.

    Per-kind counters are maintained incrementally in :meth:`record` /
    :meth:`tally`, so :meth:`count` is O(1) instead of a full event
    scan — and keeps working when ``keep=False`` (reporting what *would*
    have been recorded, which is what the fast-clock execution path
    feeds it through :meth:`tally`).
    """

    def __init__(self, keep: bool = True) -> None:
        self.keep = keep
        self.events: list[Event] = []
        self._counts: dict[EventKind, int] = {}

    def record(self, event: Event) -> None:
        self._counts[event.kind] = self._counts.get(event.kind, 0) + 1
        if self.keep:
            self.events.append(event)

    def tally(self, kind: EventKind) -> None:
        """Count an event that is not materialised (trace-free fast clock)."""
        self._counts[kind] = self._counts.get(kind, 0) + 1

    def tally_many(self, kind: EventKind, count: int) -> None:
        """Bulk :meth:`tally`: ``count`` unmaterialised events of ``kind``."""
        if count:
            self._counts[kind] = self._counts.get(kind, 0) + int(count)

    def of_kind(self, kind: EventKind) -> list[Event]:
        return [e for e in self.events if e.kind is kind]

    def count(self, kind: EventKind) -> int:
        return self._counts.get(kind, 0)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    @property
    def duration_us(self) -> float:
        return self.events[-1].time_us if self.events else 0.0
