"""Plan executor: runs an interrogation plan against live tag machines.

For every protocol the reader's script (the plan) is replayed message by
message through the event engine; the tag machines independently decide
whether to reply.  Under the ideal channel the executor *asserts* that
exactly the predicted tag answers every poll and that every tag ends up
read exactly once — the strongest correctness check in the repository,
because the tag side shares no code path with the planner's
singleton-sifting logic.

Under a :class:`~repro.phy.channel.BitErrorChannel` the executor runs
the retransmission extension for the polling protocols (CPP, eCPP, HPP,
EHPP, TPP): a failed poll is retried with an escalating context re-send
(poll → round-init + poll → circle-command + round-init + poll), with
TPP recovering via a full-length segment that rewrites the whole tag
register.  MIC and the ALOHA baselines are only executable on the ideal
channel (their frame structure has no per-tag retry semantics).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.base import InterrogationPlan, PollingProtocol, RoundPlan
from repro.core.polling_tree import PollingTree, Segment, segment_values
from repro.phy.channel import Channel, IdealChannel
from repro.phy.link import LinkBudget
from repro.phy.schedule import RoundView, compile_plan
from repro.sim.engine import EventKind, EventQueue, Trace
from repro.sim.tag import (
    CPPTagMachine,
    CPTagMachine,
    HashTagMachine,
    MachinePopulation,
    MICTagMachine,
    Reply,
    TagMachine,
    TPPTagMachine,
)
from repro.sim.tagarray import build_array_population
from repro.workloads.tagsets import TagSet

__all__ = ["DESResult", "execute_plan", "simulate", "build_tag_machines",
           "BACKENDS"]

#: per-poll retry ceiling under a lossy channel before giving up
MAX_POLL_ATTEMPTS = 200

#: simulation backends: per-tag Python objects (the legible oracle) vs
#: numpy state arrays (O(1) Python work per poll, scales to 10^5 tags)
BACKENDS = ("machines", "array")


@dataclass
class DESResult:
    """Outcome of a discrete-event execution."""

    protocol: str
    n_tags: int
    time_us: float
    reader_bits: int
    tag_bits: int
    polled_order: list[int]
    n_retries: int
    trace: Trace
    missing: list[int]

    @property
    def all_read(self) -> bool:
        return len(set(self.polled_order)) == self.n_tags


class _ReadOrder:
    """The reader's log of acknowledged reads, with O(1) un-read.

    Behaves like the plain list it replaces, except that ``remove``
    (the lossy retry path un-reading a wrongly-read tag) is a dict
    lookup plus a tombstone instead of an O(n) scan-and-shift.  A tag
    is asleep while logged, so it appears at most once between its
    ``append`` and any ``remove``.
    """

    def __init__(self) -> None:
        self._entries: list[int | None] = []
        self._pos: dict[int, int] = {}

    def append(self, tag_index: int) -> None:
        self._pos[tag_index] = len(self._entries)
        self._entries.append(tag_index)

    def extend(self, tag_indices: list[int]) -> None:
        base = len(self._entries)
        self._entries.extend(tag_indices)
        self._pos.update(zip(tag_indices, range(base, len(self._entries))))

    def remove(self, tag_index: int) -> None:
        self._entries[self._pos.pop(tag_index)] = None

    def to_list(self) -> list[int]:
        return [t for t in self._entries if t is not None]


class _Air:
    """The half-duplex medium: broadcasts, replies, timing, trace."""

    def __init__(
        self,
        population: Any,
        budget: LinkBudget,
        channel: Channel,
        rng: np.random.Generator,
        info_bits: int,
        trace: Trace,
    ):
        self.pop = population
        self.budget = budget
        self.channel = channel
        self.rng = rng
        self.info_bits = info_bits
        self.trace = trace
        self.queue = EventQueue()
        self.reader_bits = 0
        self.tag_bits = 0
        self.n_retries = 0
        self.read_order = _ReadOrder()
        self.missing_found: list[int] = []
        self.allow_missing = False
        self.missing_attempts = 3

    # ------------------------------------------------------------------
    @property
    def present(self) -> np.ndarray:
        return self.pop.present

    @property
    def now_us(self) -> float:
        return self.queue.now_us

    def _advance(self, dt_us: float, kind: EventKind, **data: Any) -> None:
        if self.trace.keep:
            self.queue.schedule(dt_us, kind, **data)
            self.trace.record(self.queue.pop())
        else:
            # trace-free fast clock: same validation and same time
            # arithmetic, no Event allocation / heap round-trip
            self.queue.advance(dt_us)
            self.trace.tally(kind)

    def wake(self, tag_index: int) -> None:
        """Reader-directed wake-up of a wrongly-read tag (lossy channels)."""
        self.pop.force_wake(tag_index)

    # ------------------------------------------------------------------
    def broadcast(self, bits: int, msg: dict[str, Any]) -> list[Reply]:
        """Transmit ``msg`` (costing ``bits``); collect replies."""
        t = self.budget.timing
        self.reader_bits += bits
        self._advance(t.reader_tx_us(bits), EventKind.READER_TX_END,
                      bits=bits, kind_str=msg["kind"])
        if not self.channel.deliver(bits, self.rng):
            self._advance(0.0, EventKind.FRAME_LOST, bits=bits)
            return []
        return self.pop.dispatch(msg)

    def poll(self, bits: int, msg: dict[str, Any]) -> tuple[Reply | None, bool]:
        """A request/response exchange.

        Returns ``(reply, collision)``: the unique successful reply (with
        turnarounds and reply time charged), or ``None`` on silence /
        collision / uplink loss.
        """
        t = self.budget.timing
        replies = self.broadcast(bits, msg)
        if len(replies) == 0:
            # T1 wait, then the reader declares the slot empty
            self._advance(t.t1_us + t.t3_us + t.t2_us, EventKind.REPLY_TIMEOUT)
            return None, False
        if len(replies) > 1:
            # concurrent backscatter: garbled for the full reply length
            self._advance(
                t.t1_us + t.tag_tx_us(self.info_bits) + t.t2_us, EventKind.COLLISION,
                tags=[r.tag_index for r in replies],
            )
            for r in replies:
                self.pop.revert_reply(r.tag_index)
            return None, True
        reply = replies[0]
        self._advance(t.t1_us, EventKind.TAG_REPLY_START, tag=reply.tag_index)
        self._advance(t.tag_tx_us(self.info_bits), EventKind.TAG_REPLY_END,
                      tag=reply.tag_index)
        self._advance(t.t2_us, EventKind.READER_TX_START)
        if not self.channel.deliver(self.info_bits, self.rng):
            self.pop.revert_reply(reply.tag_index)
            self._advance(0.0, EventKind.FRAME_LOST, uplink=True,
                          tag=reply.tag_index)
            return None, False
        self.tag_bits += self.info_bits
        self.pop.acknowledge(reply.tag_index)
        self.read_order.append(reply.tag_index)
        self._advance(0.0, EventKind.TAG_READ, tag=reply.tag_index)
        return reply, False


# ----------------------------------------------------------------------
def build_tag_machines(
    plan: InterrogationPlan,
    tags: TagSet,
    payloads: np.ndarray | None = None,
) -> list[TagMachine]:
    """Instantiate the right tag machine type for ``plan.protocol``."""
    n = len(tags)
    payloads = np.zeros(n, dtype=np.int64) if payloads is None else payloads
    words = tags.id_words

    def mk(cls, **kw) -> list[TagMachine]:
        return [
            cls(i, int(words[i]), tags.epc(i), int(payloads[i]), **kw)
            for i in range(n)
        ]

    name = plan.protocol
    if name in ("CPP", "eCPP"):
        return mk(CPPTagMachine, id_bits=plan.meta.get("id_bits", 96))
    if name == "CP":
        return mk(CPTagMachine, id_bits=plan.meta.get("id_bits", 96))
    if name in ("HPP", "EHPP"):
        return mk(HashTagMachine)
    if name == "TPP":
        return mk(TPPTagMachine)
    if name == "MIC":
        return mk(MICTagMachine, k=plan.meta.get("k", 7))
    raise NotImplementedError(
        f"no tag state machine for protocol {name!r} "
        "(the DES covers CPP/eCPP/CP/HPP/EHPP/TPP/MIC)"
    )


# ----------------------------------------------------------------------
# per-protocol round execution
# ----------------------------------------------------------------------
def _poll_with_retry(
    air: _Air,
    poll_bits: int,
    poll_msg: dict[str, Any],
    expected_tag: int,
    context: list[tuple[int, dict[str, Any]]],
    recovery: tuple[int, dict[str, Any]] | None = None,
) -> bool:
    """Poll; on failure escalate by re-sending context, then retry.

    Args:
        context: [(bits, msg)] outer-to-inner prerequisite broadcasts
            (circle command, round init) re-sent on escalating retries.
        recovery: optional replacement poll used on retries (TPP's
            full-register segment).
        allow_missing: if the polled tag may be physically absent,
            silence is a *detection*, not an error: after
            ``missing_attempts`` silent polls the tag is declared
            missing (one attempt suffices on the ideal channel).

    Returns:
        True if the expected tag was read, False if declared missing.
    """
    attempt = 0
    bits, msg = poll_bits, poll_msg
    ideal = isinstance(air.channel, IdealChannel)
    allow_missing = air.allow_missing
    give_up_after = (
        (1 if ideal else air.missing_attempts)
        if allow_missing
        else MAX_POLL_ATTEMPTS
    )
    while True:
        reply, _collision = air.poll(bits, msg)
        if reply is not None and reply.tag_index == expected_tag:
            return True
        if reply is not None:
            # a stale-register tag answered alone (possible only after
            # frame loss); un-read it and fall through to the retry path
            if ideal:
                raise RuntimeError(
                    f"poll answered by tag {reply.tag_index}, "
                    f"expected {expected_tag} ({msg})"
                )
            air.wake(reply.tag_index)
            air.read_order.remove(reply.tag_index)
        attempt += 1
        if attempt >= give_up_after:
            if allow_missing:
                air.missing_found.append(expected_tag)
                return False
            raise RuntimeError(
                f"tag {expected_tag} unreachable after {attempt} attempts"
            )
        if ideal:
            raise RuntimeError(f"no/garbled reply on ideal channel for {msg}")
        air.n_retries += 1
        air._advance(0.0, EventKind.RETRY, attempt=attempt, tag=expected_tag)
        # escalate: re-send the last `min(attempt, len(context))` context
        # messages, outermost first
        n_ctx = min(attempt, len(context))
        for ctx_bits, ctx_msg in context[len(context) - n_ctx:]:
            air.broadcast(ctx_bits, ctx_msg)
        if recovery is not None:
            bits, msg = recovery


def _execute_cpp_round(air: _Air, rp: RoundPlan, view: RoundView, tags: TagSet,
                       plan: InterrogationPlan) -> None:
    context: list[tuple[int, dict[str, Any]]] = []
    if plan.protocol == "eCPP":
        category_bits = plan.meta["category_bits"]
        select_msg = {
            "kind": "select",
            "prefix": rp.extra["category"],
            "prefix_bits": category_bits,
        }
        air.broadcast(view.init_bits, select_msg)
        context = [(view.init_bits, select_msg)]
        for tag_idx, down, vec in zip(
            view.poll_tag, view.poll_downlink, rp.poll_vector_bits
        ):
            suffix_bits = int(vec)
            suffix = tags.epc(int(tag_idx)) & ((1 << suffix_bits) - 1)
            msg = {"kind": "suffix_poll", "suffix": suffix, "suffix_bits": suffix_bits}
            _poll_with_retry(air, int(down), msg, int(tag_idx), context)
    else:
        for tag_idx, down in zip(view.poll_tag, view.poll_downlink):
            msg = {"kind": "cpp_poll", "epc": tags.epc(int(tag_idx))}
            _poll_with_retry(air, int(down), msg, int(tag_idx), context)


def _execute_cp_round(air: _Air, rp: RoundPlan, view: RoundView, tags: TagSet,
                      plan: InterrogationPlan) -> None:
    """Coded Polling: one frame per pair, two ordered replies.

    A bystander tag false-positives on a frame with probability 2⁻¹⁶
    (inherent to the 16-bit pair check), garbling a slot even on the
    ideal channel; the reader recovers by re-polling the expected tag
    with its bare ID, which only that tag can match.  The same bare-ID
    fallback covers frame loss on noisy channels.
    """
    from repro.core.coded_polling import coded_frame

    id_bits = plan.meta.get("id_bits", 96)
    idx = view.poll_tag
    down = view.poll_downlink
    for p in range(rp.extra["n_pairs"]):
        a, b = int(idx[2 * p]), int(idx[2 * p + 1])
        # the frame's downlink cost is the pair's two schedule rows
        frame_bits = int(down[2 * p] + down[2 * p + 1])
        frame_msg = {"kind": "cp_frame",
                     "frame": coded_frame(tags.epc(a), tags.epc(b), id_bits)}
        air.broadcast(frame_bits, frame_msg)
        for rank, expected in enumerate((a, b)):
            # the slot advance is implicit (rank derived tag-side), so the
            # poll itself carries no reader bits beyond the shared frame
            reply, _collision = air.poll(0, {"kind": "cp_slot", "rank": rank})
            if reply is not None and reply.tag_index == expected:
                continue
            if reply is not None:
                # a false-positive bystander answered alone: un-read it
                air.wake(reply.tag_index)
                air.read_order.remove(reply.tag_index)
            air.n_retries += 1
            air._advance(0.0, EventKind.RETRY, tag=expected, cp_fallback=True)
            _poll_with_retry(
                air, id_bits,
                {"kind": "cpp_poll", "epc": tags.epc(expected)}, expected, [],
            )
    if rp.extra["tail_tag"]:
        tail = int(idx[-1])
        _poll_with_retry(air, int(down[-1]),
                         {"kind": "cpp_poll", "epc": tags.epc(tail)}, tail, [])


def _execute_hash_round(air: _Air, rp: RoundPlan, view: RoundView,
                        circle_ctx: list) -> None:
    h, seed = rp.extra["h"], rp.extra["seed"]
    init_msg = {
        "kind": "round_init",
        "h": h,
        "seed": seed,
        "global_scope": not circle_ctx,
    }
    air.broadcast(view.init_bits, init_msg)
    context = circle_ctx + [(view.init_bits, init_msg)]
    for tag_idx, down, index in zip(
        view.poll_tag, view.poll_downlink, rp.extra["singleton_indices"]
    ):
        msg = {"kind": "poll_index", "index": int(index)}
        _poll_with_retry(air, int(down), msg, int(tag_idx), context)


def _execute_tpp_round(air: _Air, rp: RoundPlan, view: RoundView) -> None:
    h, seed = rp.extra["h"], rp.extra["seed"]
    init_msg = {"kind": "round_init", "h": h, "seed": seed, "global_scope": True}
    air.broadcast(view.init_bits, init_msg)
    context = [(view.init_bits, init_msg)]
    if getattr(air.pop, "vectorized", False):
        # the array backend's whole point is scale, so use the planner's
        # closed-form segments directly; the machines backend keeps the
        # explicit-tree cross-check below as the independent oracle
        values = segment_values(rp.extra["singleton_indices"], h)
        segments = [
            Segment(value=int(v), length=int(k))
            for v, k in zip(values, rp.poll_vector_bits)
        ]
    else:
        # the explicit tree cross-checks the planner's closed-form segments
        tree = PollingTree.from_indices(rp.extra["singleton_indices"], h)
        segments = tree.segments()
        if [s.length for s in segments] != rp.poll_vector_bits.tolist():
            raise RuntimeError("polling-tree segments disagree with the plan")
    for seg, tag_idx, down, index in zip(
        segments, view.poll_tag, view.poll_downlink, rp.extra["singleton_indices"]
    ):
        msg = {"kind": "tpp_segment", "value": seg.value, "length": seg.length}
        # recovery poll: a full-length segment rewriting the whole register
        recovery = (
            h + rp.poll_overhead_bits,
            {"kind": "tpp_segment", "value": int(index), "length": h},
        )
        _poll_with_retry(air, int(down), msg, int(tag_idx), context, recovery)


def _execute_mic_frame(air: _Air, rp: RoundPlan, view: RoundView,
                       mic_uniform: bool) -> None:
    if not isinstance(air.channel, IdealChannel):
        raise NotImplementedError("MIC execution requires the ideal channel")
    f = rp.extra["frame_size"]
    seed = rp.extra["seed"]
    slots = np.asarray(rp.extra["assigned_slots"], dtype=np.int64)
    passes = np.asarray(rp.extra["assigned_passes"], dtype=np.int64)
    vector = np.zeros(f, dtype=np.int64)
    vector[slots] = passes
    air.broadcast(view.init_bits, {"kind": "mic_frame", "seed": seed, "vector": vector})
    # the schedule groups rows by kind; the wire interleaves them per
    # slot, so the executor draws each slot's bits from the matching pool
    owner = dict(zip(slots.tolist(), view.poll_tag.tolist()))
    poll_bits = dict(zip(slots.tolist(), view.poll_downlink.tolist()))
    wasted_down = iter(
        (view.collision_downlink if mic_uniform else view.empty_downlink).tolist()
    )
    wasted_up = iter(
        (view.collision_uplink if mic_uniform else view.empty_uplink).tolist()
    )
    t = air.budget.timing
    for slot in range(f):
        msg = {"kind": "mic_slot", "slot": slot}
        if slot in owner:
            reply, _ = air.poll(int(poll_bits[slot]), msg)
            if reply is None:
                if air.allow_missing:
                    air.missing_found.append(owner[slot])
                else:
                    raise RuntimeError(f"MIC slot {slot} silent unexpectedly")
            elif reply.tag_index != owner[slot]:
                raise RuntimeError(f"MIC slot {slot} answered unexpectedly")
        else:
            # wasted slot: reader transmits the slot command, nobody
            # answers; charged per the schedule's slot convention
            replies = air.broadcast(int(next(wasted_down)), msg)
            if replies:
                raise RuntimeError(f"silent MIC slot {slot} drew a reply")
            if mic_uniform:
                air._advance(
                    t.t1_us + t.tag_tx_us(int(next(wasted_up))) + t.t2_us,
                    EventKind.REPLY_TIMEOUT, slot=slot,
                )
            else:
                next(wasted_up)
                air._advance(t.t1_us + t.t3_us, EventKind.REPLY_TIMEOUT, slot=slot)


# ----------------------------------------------------------------------
def _run_plan(air: _Air, plan: InterrogationPlan, tags: TagSet,
              schedule: Any) -> None:
    """Replay every round of ``plan`` through ``air`` (sequential path)."""
    circle_ctx: list[tuple[int, dict[str, Any]]] = []
    for rp, view in zip(plan.rounds, schedule.iter_rounds()):
        if plan.protocol in ("CPP", "eCPP"):
            _execute_cpp_round(air, rp, view, tags, plan)
        elif plan.protocol == "CP":
            _execute_cp_round(air, rp, view, tags, plan)
        elif plan.protocol in ("HPP", "EHPP"):
            if rp.label.startswith("ehpp-circle") and rp.n_polls == 0 and "F" in rp.extra:
                msg = {
                    "kind": "circle_cmd",
                    "seed": rp.extra["seed"],
                    "f": rp.extra["f"],
                    "F": rp.extra["F"],
                }
                air.broadcast(view.init_bits, msg)
                circle_ctx = [(view.init_bits, msg)]
                continue
            if rp.label.startswith("ehpp-tail"):
                circle_ctx = []
            _execute_hash_round(air, rp, view, circle_ctx)
        elif plan.protocol == "TPP":
            _execute_tpp_round(air, rp, view)
        elif plan.protocol == "MIC":
            _execute_mic_frame(air, rp, view,
                               plan.meta.get("uniform_slot_cost", True))
        else:
            raise NotImplementedError(f"no executor for protocol {plan.protocol!r}")


def _finish(air: _Air, plan: InterrogationPlan, tags: TagSet,
            trace: Trace) -> DESResult:
    """Check the read-everyone invariant and assemble the result."""
    asleep = air.pop.asleep_indices()
    expected = sorted(np.flatnonzero(air.present).tolist())
    if asleep != expected:
        raise RuntimeError(
            f"{len(expected) - len(asleep)} present tag(s) were never read"
        )
    return DESResult(
        protocol=plan.protocol,
        n_tags=len(tags),
        time_us=air.now_us,
        reader_bits=air.reader_bits,
        tag_bits=air.tag_bits,
        polled_order=air.read_order.to_list(),
        n_retries=air.n_retries,
        trace=trace,
        missing=sorted(set(air.missing_found)),
    )


def execute_plan(
    plan: InterrogationPlan,
    tags: TagSet,
    info_bits: int = 1,
    budget: LinkBudget | None = None,
    channel: Channel | None = None,
    rng: np.random.Generator | None = None,
    payloads: np.ndarray | None = None,
    keep_trace: bool = True,
    present: np.ndarray | None = None,
    missing_attempts: int = 3,
    backend: str = "machines",
    replicas: int | None = None,
) -> DESResult | list["DESResult"]:
    """Execute ``plan`` over the air against a live tag population.

    Args:
        present: indices of tags physically in the field; ``None`` means
            the whole known population.  When a subset is given, silent
            polls *detect* missing tags instead of raising — the
            missing-tag application of §I.
        missing_attempts: silent polls before declaring a tag missing on
            a lossy channel (1 is used on the ideal channel).
        backend: ``"machines"`` runs one Python state machine per tag
            (the legible oracle); ``"array"`` runs the vectorized
            numpy-state-array population (:mod:`repro.sim.tagarray`),
            bit-identical counters at a fraction of the Python work.
        replicas: run R independent Monte-Carlo replicas in one
            replica-batched pass and return ``list[DESResult]``.  Each
            of ``plan``/``tags``/``present``/``payloads`` may then be a
            length-R sequence (or a single value shared by every
            replica); ``rng`` must be a length-R sequence of generators
            since replicas consume independent channel streams.  Results
            are bit-identical to R separate ``execute_plan`` calls.
    """
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
    if replicas is not None:
        from repro.sim.batch import execute_plan_batch

        def spread(value: Any) -> list[Any]:
            if isinstance(value, (list, tuple)):
                if len(value) != replicas:
                    raise ValueError(
                        f"expected {replicas} per-replica values, got {len(value)}"
                    )
                return list(value)
            return [value] * replicas

        if isinstance(rng, np.random.Generator):
            raise ValueError(
                "replicas needs one generator per replica (a shared "
                "generator would interleave the channel streams)"
            )
        return execute_plan_batch(
            spread(plan), spread(tags),
            info_bits=info_bits, budget=budget, channel=channel,
            rngs=None if rng is None else list(rng),
            payloads_list=spread(payloads),
            present_list=spread(present),
            missing_attempts=missing_attempts,
            backend=backend,
        )
    budget = budget if budget is not None else LinkBudget()
    channel = channel if channel is not None else IdealChannel()
    rng = rng if rng is not None else np.random.default_rng(0)
    trace = Trace(keep=keep_trace)
    present_mask = np.ones(len(tags), dtype=bool)
    if present is not None:
        present_mask = np.zeros(len(tags), dtype=bool)
        present_mask[np.asarray(present, dtype=np.int64)] = True
    if backend == "array":
        pop = build_array_population(plan, tags, payloads, present_mask)
    else:
        machines = build_tag_machines(plan, tags, payloads)
        pop = MachinePopulation(machines, present_mask)
    air = _Air(pop, budget, channel, rng, info_bits, trace)
    if present is not None:
        air.allow_missing = True
        air.missing_attempts = missing_attempts

    # the reader's wire script: every bit count the event loop charges
    # comes from the compiled schedule rows, not from re-deriving the
    # RoundPlan arithmetic (the plan still supplies message *semantics* —
    # seeds, prefixes, segment values — which never hit the wire budget)
    schedule = compile_plan(plan, info_bits)
    _run_plan(air, plan, tags, schedule)
    return _finish(air, plan, tags, trace)


def simulate(
    protocol: PollingProtocol,
    tags: TagSet,
    info_bits: int = 1,
    seed: int = 0,
    budget: LinkBudget | None = None,
    channel: Channel | None = None,
    keep_trace: bool = True,
    present: np.ndarray | None = None,
    payloads: np.ndarray | None = None,
    missing_attempts: int = 3,
    backend: str = "machines",
    replicas: int | None = None,
) -> DESResult | list[DESResult]:
    """Plan + execute in one call (plan RNG and channel RNG split).

    With ``replicas=R`` the call runs R independent Monte-Carlo
    replicas — replica ``r`` seeded exactly like ``simulate(seed=seed+r)``
    — in one replica-batched pass, returning ``list[DESResult]``
    bit-identical to the R separate calls (the trace is never kept).
    """
    if replicas is not None:
        plans = [
            protocol.plan(tags, np.random.default_rng(seed + r))
            for r in range(replicas)
        ]
        rngs = [
            np.random.default_rng(seed + r + 0x9E3779B9)
            for r in range(replicas)
        ]
        return execute_plan(
            plans, [tags] * replicas,
            info_bits=info_bits, budget=budget, channel=channel, rng=rngs,
            present=present, payloads=payloads,
            missing_attempts=missing_attempts, backend=backend,
            replicas=replicas,
        )
    plan_rng = np.random.default_rng(seed)
    channel_rng = np.random.default_rng(seed + 0x9E3779B9)
    plan = protocol.plan(tags, plan_rng)
    return execute_plan(
        plan,
        tags,
        info_bits=info_bits,
        budget=budget,
        channel=channel,
        rng=channel_rng,
        keep_trace=keep_trace,
        present=present,
        payloads=payloads,
        missing_attempts=missing_attempts,
        backend=backend,
    )
