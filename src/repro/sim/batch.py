"""Replica-batched DES execution: R Monte-Carlo replicas in one pass.

A sweep cell whose metric needs *execution* (lossy-channel time and
retries, missing-tag verdicts, DES counters) is R independent runs of
one ``(protocol, n)`` point.  Running them one at a time repeats the
same per-poll Python work R times; this module runs them **lockstep**
instead:

- the R replica populations live on block-concatenated numpy state
  buffers (:func:`~repro.sim.tagarray.build_batch_populations`), each
  replica a contiguous slice with its own offset and round clock;
- every delivered round initiation across replicas is hashed in a
  single ragged batch (:func:`~repro.sim.tagarray.batch_round_inits`),
  reusing the PR-4 ``hash_indices_ragged`` machinery;
- each round's polls are resolved from a vectorised **verdict** (which
  planned tags are present and guaranteed-unique responders) and then
  committed as spans: one ``cumsum`` for the clock, one scatter for the
  sleep states, bulk trace tallies — with lossy channels resolved by
  RNG speculation (draw a window of loss variates at once, commit the
  failure-free prefix, replay the failing poll through the sequential
  retry machinery on the *same* restored stream).

Every per-replica draw comes from that replica's own generator in the
sequential order, every fallback runs the unmodified sequential code on
the same population views, and every commit reproduces the sequential
float/trace arithmetic — so results are **bit-identical** to R separate
:func:`~repro.sim.executor.execute_plan` calls (the parity matrix in
``tests/test_batch_des.py`` asserts it counter for counter).

CP and MIC have no lockstep driver (pair frames and indicator frames
carry no per-poll verdict structure); their replicas run the sequential
rounds per replica within the same call, still on batched populations.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.core.polling_tree import segment_values
from repro.kernels import get_kernel
from repro.phy.channel import Channel, IdealChannel
from repro.phy.link import LinkBudget
from repro.phy.schedule import compile_plan
from repro.sim.engine import EventKind, Trace
from repro.sim.executor import (
    DESResult,
    _Air,
    _finish,
    _poll_with_retry,
    _run_plan,
    execute_plan,
)
from repro.sim.tagarray import batch_round_inits, build_batch_populations
from repro.workloads.tagsets import TagSet

__all__ = ["execute_plan_batch", "LOCKSTEP_PROTOCOLS"]

#: protocols the lockstep driver vectorises across replicas; CP and MIC
#: fall back to per-replica sequential rounds within the same call
LOCKSTEP_PROTOCOLS = ("HPP", "EHPP", "TPP", "CPP", "eCPP")


def execute_plan_batch(
    plans: Sequence[Any],
    tags_list: Sequence[TagSet],
    info_bits: int = 1,
    budget: LinkBudget | None = None,
    channel: Channel | None = None,
    rngs: Sequence[np.random.Generator] | None = None,
    payloads_list: Sequence[np.ndarray | None] | None = None,
    present_list: Sequence[np.ndarray | None] | None = None,
    missing_attempts: int = 3,
    backend: str = "array",
) -> list[DESResult]:
    """Execute R same-protocol plans as one replica batch.

    Entry ``r`` of the result is bit-identical (counters, times, read
    order, missing sets) to ``execute_plan(plans[r], tags_list[r], ...,
    rng=rngs[r], keep_trace=False)``.  All plans must share one
    protocol; ``backend="machines"`` degrades to the sequential oracle
    loop (for parity tests and exotic configurations).
    """
    n_rep = len(plans)
    if len(tags_list) != n_rep:
        raise ValueError("plans and tags_list must have equal length")
    budget = budget if budget is not None else LinkBudget()
    channel = channel if channel is not None else IdealChannel()
    rngs = (
        [np.random.default_rng(0) for _ in range(n_rep)]
        if rngs is None
        else list(rngs)
    )
    if len(rngs) != n_rep:
        raise ValueError("rngs must supply one generator per replica")
    payloads_list = (
        [None] * n_rep if payloads_list is None else list(payloads_list)
    )
    present_list = (
        [None] * n_rep if present_list is None else list(present_list)
    )
    if not n_rep:
        return []
    if backend == "machines":
        return [
            execute_plan(
                plan, tags, info_bits=info_bits, budget=budget,
                channel=channel, rng=rng, payloads=payloads,
                keep_trace=False, present=present,
                missing_attempts=missing_attempts, backend="machines",
            )
            for plan, tags, rng, payloads, present in zip(
                plans, tags_list, rngs, payloads_list, present_list
            )
        ]
    protocols = {plan.protocol for plan in plans}
    if len(protocols) > 1:
        raise ValueError(
            f"one protocol per batch, got {sorted(protocols)}"
        )
    present_masks = []
    for tags, present in zip(tags_list, present_list):
        mask = np.ones(len(tags), dtype=bool)
        if present is not None:
            mask = np.zeros(len(tags), dtype=bool)
            mask[np.asarray(present, dtype=np.int64)] = True
        present_masks.append(mask)
    pops = build_batch_populations(
        list(plans), list(tags_list), payloads_list, present_masks
    )
    traces = [Trace(keep=False) for _ in range(n_rep)]
    airs = []
    for pop, rng, present, trace in zip(pops, rngs, present_list, traces):
        air = _Air(pop, budget, channel, rng, info_bits, trace)
        if present is not None:
            air.allow_missing = True
            air.missing_attempts = missing_attempts
        airs.append(air)
    schedules = [compile_plan(plan, info_bits) for plan in plans]
    if plans[0].protocol in LOCKSTEP_PROTOCOLS:
        _run_lockstep(airs, list(plans), list(tags_list), schedules)
    else:
        for air, plan, tags, schedule in zip(airs, plans, tags_list, schedules):
            _run_plan(air, plan, tags, schedule)
    return [
        _finish(air, plan, tags, trace)
        for air, plan, tags, trace in zip(airs, plans, tags_list, traces)
    ]


# ----------------------------------------------------------------------
# the lockstep driver
# ----------------------------------------------------------------------
def _run_lockstep(airs, plans, tags_list, schedules) -> None:
    """Advance all replicas round by round, batching the shared stages.

    Per joint step, every live replica's round goes through three
    phases: (A) its initiation broadcast (delivery drawn from that
    replica's own stream, dispatch deferred), (B) one joint ragged hash
    over every replica whose initiation was delivered, and (C) its poll
    spans, resolved from the round verdict.  Replicas consume disjoint
    generators, so phase interleaving cannot perturb any draw order.
    """
    proto = plans[0].protocol
    n_rep = len(plans)
    rounds = [
        list(zip(plan.rounds, schedule.iter_rounds()))
        for plan, schedule in zip(plans, schedules)
    ]
    pos = [0] * n_rep
    circle_ctx: list[list] = [[] for _ in range(n_rep)]
    hash_like = proto in ("HPP", "EHPP", "TPP")
    live = [r for r in range(n_rep) if rounds[r]]
    while live:
        init_group: list[tuple[int, Any, dict]] = []
        poll_group: list[tuple[int, Any, Any, list]] = []
        verdicts: dict[int, np.ndarray] = {}
        for r in live:
            rp, view = rounds[r][pos[r]]
            air = airs[r]
            if hash_like:
                if (rp.label.startswith("ehpp-circle") and rp.n_polls == 0
                        and "F" in rp.extra):
                    msg = {
                        "kind": "circle_cmd",
                        "seed": rp.extra["seed"],
                        "f": rp.extra["f"],
                        "F": rp.extra["F"],
                    }
                    air.broadcast(view.init_bits, msg)
                    circle_ctx[r] = [(view.init_bits, msg)]
                    continue
                if rp.label.startswith("ehpp-tail"):
                    circle_ctx[r] = []
                init_msg = {
                    "kind": "round_init",
                    "h": rp.extra["h"],
                    "seed": rp.extra["seed"],
                    "global_scope": not circle_ctx[r],
                }
                if _broadcast_nodispatch(air, view.init_bits, init_msg):
                    init_group.append((r, rp, init_msg))
                poll_group.append(
                    (r, rp, view, circle_ctx[r] + [(view.init_bits, init_msg)])
                )
            elif proto == "eCPP":
                select_msg = {
                    "kind": "select",
                    "prefix": rp.extra["category"],
                    "prefix_bits": plans[r].meta["category_bits"],
                }
                if _broadcast_nodispatch(air, view.init_bits, select_msg):
                    air.pop.dispatch(select_msg)
                    verdicts[r] = air.pop.present[view.poll_tag]
                poll_group.append(
                    (r, rp, view, [(view.init_bits, select_msg)])
                )
            else:  # CPP transmits no initiation at all (init_bits == 0)
                verdicts[r] = air.pop.present[view.poll_tag]
                poll_group.append((r, rp, view, []))
        if init_group:
            batch_round_inits(
                [(airs[r].pop, msg) for r, _, msg in init_group]
            )
            for r, rp, _ in init_group:
                verdicts[r] = _hash_round_verdict(airs[r].pop, rp)
        for r, rp, view, context in poll_group:
            _run_round_polls(
                airs[r], proto, rp, view, tags_list[r], context,
                verdicts.get(r),
            )
        next_live = []
        for r in live:
            pos[r] += 1
            if pos[r] < len(rounds[r]):
                next_live.append(r)
        live = next_live


def _broadcast_nodispatch(air: _Air, bits: int, msg: dict) -> bool:
    """:meth:`_Air.broadcast` minus the dispatch: returns delivery.

    Same bit charge, same clock advances, same single channel draw —
    the caller decides how (and whether) to apply the message, e.g. by
    folding it into a joint :func:`batch_round_inits` pass.
    """
    t = air.budget.timing
    air.reader_bits += bits
    air._advance(t.reader_tx_us(bits), EventKind.READER_TX_END,
                 bits=bits, kind_str=msg["kind"])
    if not air.channel.deliver(bits, air.rng):
        air._advance(0.0, EventKind.FRAME_LOST, bits=bits)
        return False
    return True


def _hash_round_verdict(pop, rp) -> np.ndarray:
    """Per-poll verdict of a delivered hash round: will the planned tag
    reply alone?

    True iff the planned tag is present *and* is the unique tag of the
    executing eligible set that drew the polled index.  A present
    planned singleton always satisfies this (the execution-eligible set
    is a subset of the planner's active set, which held no other drawer
    of that index), and an absent tag never does (it is not eligible,
    and any other drawer would have made the index a planner collision)
    — so on the ideal channel ``~verdict`` is exactly the missing set.
    """
    tags_local = np.asarray(rp.poll_tag_idx, dtype=np.int64)
    if tags_local.size == 0:
        return np.zeros(0, dtype=bool)
    si = np.asarray(rp.extra["singleton_indices"], dtype=np.int64)
    counts, owner = pop._ensure_counts()
    in_range = si < counts.size
    cnt = np.zeros(si.size, dtype=np.int64)
    own = np.full(si.size, -1, dtype=np.int64)
    cnt[in_range] = counts[si[in_range]]
    own[in_range] = owner[si[in_range]]
    unique = (cnt == 1) & (own == tags_local)
    return pop.present[tags_local] & unique


def _loss_probs(channel: Channel, bits: np.ndarray) -> np.ndarray:
    """Per-poll downlink loss probabilities, via the channel's own
    scalar method per distinct bit count (bit-identical to per-call)."""
    lo, hi = int(bits.min()), int(bits.max())
    if lo == hi:  # almost every round polls a constant downlink width
        return np.full(bits.size, channel.frame_loss_probability(lo))
    out = np.empty(bits.size, dtype=np.float64)
    for b in np.unique(bits).tolist():
        out[bits == b] = channel.frame_loss_probability(int(b))
    return out


def _run_round_polls(air, proto, rp, view, tags, context, verdict) -> None:
    """Execute one round's polls: committed spans + scalar fallbacks.

    ``verdict is None`` means the round's initiation (or Select) was
    lost before dispatch — the round starts on the sequential scalar
    machinery, whose escalating retries re-send the initiation as
    context.  The first clean read proves the round state is live on
    the population again, so the verdict becomes computable and the
    span machinery resumes for the rest of the round.
    """
    m = view.n_polls
    if m == 0:
        return
    pop = air.pop
    down = view.poll_downlink
    tags_local = view.poll_tag
    ideal = isinstance(air.channel, IdealChannel)

    si = values = lengths = None
    h = recovery_bits = 0
    if proto in ("HPP", "EHPP", "TPP"):
        si = np.asarray(rp.extra["singleton_indices"], dtype=np.int64)
    if proto == "TPP":
        h = int(rp.extra["h"])
        values = segment_values(si, h)
        lengths = rp.poll_vector_bits
        recovery_bits = h + rp.poll_overhead_bits

    def scalar_poll(j: int) -> bool:
        tag = int(tags_local[j])
        bits = int(down[j])
        if proto == "TPP":
            msg = {"kind": "tpp_segment", "value": int(values[j]),
                   "length": int(lengths[j])}
            recovery = (
                recovery_bits,
                {"kind": "tpp_segment", "value": int(si[j]), "length": h},
            )
            return _poll_with_retry(air, bits, msg, tag, context, recovery)
        if proto in ("HPP", "EHPP"):
            msg = {"kind": "poll_index", "index": int(si[j])}
        elif proto == "eCPP":
            suffix_bits = int(rp.poll_vector_bits[j])
            msg = {
                "kind": "suffix_poll",
                "suffix": tags.epc(tag) & ((1 << suffix_bits) - 1),
                "suffix_bits": suffix_bits,
            }
        else:
            msg = {"kind": "cpp_poll", "epc": tags.epc(tag)}
        return _poll_with_retry(air, bits, msg, tag, context)

    if pop._stale:
        for j in range(m):
            scalar_poll(j)
        return

    j = 0
    if verdict is None:
        # lost initiation: scalar polls until one reads cleanly (its
        # retry escalation re-delivered the initiation to the whole
        # population), then derive the verdict from the now-live round
        # state — identical, for the remaining polls, to the verdict a
        # delivered initiation would have produced
        recovered = False
        while j < m:
            read = scalar_poll(j)
            j += 1
            if read and not pop._stale:
                recovered = True
                break
        if not recovered:
            return
        if si is not None:
            verdict = _hash_round_verdict(pop, rp)
        else:  # eCPP: the Select rode along on the same re-broadcast
            verdict = pop.present[tags_local]

    if not ideal:
        up_p = air.channel.frame_loss_probability(air.info_bits)
        pd = _loss_probs(air.channel, down)
        # speculative window: large enough to amortise the bulk draw,
        # small enough that a failure's discarded tail stays cheap
        p_fail = float(pd.max()) + up_p
        w_cap = m if p_fail <= 0.0 else int(min(m, max(64.0, 4.0 / p_fail)))

    clean = True
    while j < m:
        if not clean:
            scalar_poll(j)
            j += 1
            continue
        if ideal:
            v = verdict[j:]
            if v.all():
                _commit_span(air, proto, rp, view, j, m, None)
            elif air.allow_missing:
                # on the ideal channel ~verdict is exactly the missing
                # set (see _hash_round_verdict), so the whole mixed tail
                # commits in one span
                _commit_span(air, proto, rp, view, j, m, v)
            else:
                # impossible for a sound plan; the scalar path raises
                # the sequential executor's exact diagnostics
                clean = False
                continue
            j = m
            continue
        w = min(m - j, w_cap)
        state = air.rng.bit_generator.state
        u = air.rng.random(2 * w)
        ok = (u[0::2] >= pd[j:j + w]) & (u[1::2] >= up_p) & verdict[j:j + w]
        if ok.all():
            _commit_span(air, proto, rp, view, j, j + w, None)
            j += w
            continue
        # rewind to the window start and advance exactly the prefix's
        # draws; the failing poll then replays its own (identical)
        # variates through the sequential retry machinery
        bad = int(np.argmin(ok))
        air.rng.bit_generator.state = state
        if bad:
            air.rng.random(2 * bad)
            _commit_span(air, proto, rp, view, j, j + bad, None)
            j += bad
        read = scalar_poll(j)
        j += 1
        # a retry may wake a wrongly-read tag (stale state the verdict
        # cannot see), and a TPP give-up leaves the cohort register off
        # the planned track — both drop the round to the scalar path
        clean = not pop._stale and (proto != "TPP" or read)


def _commit_span(air, proto, rp, view, j0: int, j1: int,
                 pattern: np.ndarray | None) -> None:
    """Commit polls ``[j0, j1)`` wholesale: clock, states, counters.

    ``pattern is None`` commits every poll as a clean read;
    otherwise ``pattern[k]`` says whether poll ``j0+k`` reads its tag
    (True) or times out into a missing verdict (False, ideal channel
    only).  The clock fold (the ``poll_commit`` kernel, numpy oracle or
    JIT via REPRO_KERNELS) adds the same per-event float delays in the
    same order as the sequential ``_advance`` chain, so times stay
    bit-identical.
    """
    if j1 <= j0:
        return
    t = air.budget.timing
    pop = air.pop
    down = view.poll_downlink[j0:j1]
    span_tags = view.poll_tag[j0:j1]
    count = j1 - j0
    reply_t = t.tag_tx_us(air.info_bits)
    trace = air.trace
    new_now, n_read, down_bits = get_kernel("poll_commit")(
        air.queue.now_us, down, t.reader_bit_us, t.t1_us, reply_t,
        t.t2_us, t.t1_us + t.t3_us + t.t2_us, pattern,
    )
    if pattern is None:
        read_tags = span_tags
    else:
        read_tags = span_tags[pattern]
        air.missing_found.extend(span_tags[~pattern].tolist())
        trace.tally_many(EventKind.REPLY_TIMEOUT, count - n_read)
    air.queue.now_us = new_now
    trace.tally_many(EventKind.READER_TX_END, count)
    trace.tally_many(EventKind.TAG_REPLY_START, n_read)
    trace.tally_many(EventKind.TAG_REPLY_END, n_read)
    trace.tally_many(EventKind.READER_TX_START, n_read)
    trace.tally_many(EventKind.TAG_READ, n_read)
    air.reader_bits += down_bits
    if n_read:
        pop._commit_ack_bulk(read_tags)
        air.read_order.extend(read_tags.tolist())
        air.tag_bits += n_read * air.info_bits
    if proto == "TPP":
        # every committed segment landed, so the shared register sits at
        # the last committed poll's drawn index (read or timed out)
        pop._scalar_a = int(rp.extra["singleton_indices"][j1 - 1])
