"""Vectorised tag-array simulation backend.

The machines backend (:mod:`repro.sim.tag`) models every tag as a live
Python object and delivers each broadcast with a Python loop over the
awake set — O(n) interpreter work per poll, O(n·polls) per run, which
caps the DES near n ≈ 10³.  This module models the *whole population*
as numpy state arrays instead:

- a round broadcast computes every tag's hash draw in one batched
  :func:`~repro.hashing.universal.hash_u64` call and groups the results
  into an index → tags lookup once per round;
- each poll then resolves its responder set from that lookup — O(1)
  Python work per poll (candidate lists are almost always singletons);
- TPP's per-tag bit register collapses to one scalar: the register
  update ``A := (A & keep) | segment`` does not depend on tag identity,
  so every tag that heard the same segments since the last round
  initiation holds the *same* register value.  Only tags woken mid-round
  by the lossy retry path can diverge, and those are tracked in a small
  per-tag "stale" set updated individually.

State that the object machines keep per instance (sleep/ack state,
circle membership, TPP registers, MIC claimed slots, CP ranks, eCPP
Select flags) lives here in flat arrays, updated only for the tags that
actually *hear* a broadcast (present and not asleep) so that woken tags
retain exactly the stale state a real tag would — the property the
lossy retry machinery depends on.

The backend implements the same population interface as
:class:`~repro.sim.tag.MachinePopulation` and must produce bit-identical
``DESResult`` counters; ``tests/test_tagarray.py`` asserts that parity
for every executable protocol on ideal and lossy channels.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.base import InterrogationPlan
from repro.hashing.universal import (
    derive_seed,
    hash_indices,
    hash_indices_ragged,
    hash_mod,
    splitmix64,
)
from repro.sim.tag import Reply
from repro.workloads.tagsets import TagSet

__all__ = [
    "ArrayTagPopulation",
    "build_array_population",
    "build_batch_populations",
    "batch_round_inits",
]

Message = dict[str, Any]

_READY = np.int8(0)
_REPLIED = np.int8(1)
_ASLEEP = np.int8(2)

_M64 = (1 << 64) - 1


class ArrayTagPopulation:
    """Base array backend: state arrays, lifecycle, message dispatch.

    Subclasses add protocol-specific arrays and register handlers in
    ``self._handlers``; unknown message kinds are ignored, exactly as a
    machine without the matching ``_on_<kind>`` method ignores them.
    """

    #: executor hint: batched dispatch, cheap at large n
    vectorized = True

    def __init__(self, tags: TagSet, payloads: np.ndarray, present: np.ndarray):
        self.tags = tags
        self.n = len(tags)
        self.words = tags.id_words
        self.payloads = np.asarray(payloads, dtype=np.int64)
        self.present = present
        self.state = np.full(self.n, _READY, dtype=np.int8)
        #: tags woken by the reader since the last state-defining
        #: broadcast — they missed broadcasts while asleep, so their
        #: per-tag arrays are authoritative where the cohort's shared
        #: (per-round) structures are not
        self._stale: set[int] = set()
        self._handlers: dict[str, Any] = {}

    # -- population interface ------------------------------------------
    def __len__(self) -> int:
        return self.n

    def dispatch(self, msg: Message) -> list[Reply]:
        handler = self._handlers.get(msg["kind"])
        if handler is None:
            return []
        return handler(msg)

    def acknowledge(self, tag_index: int) -> None:
        if self.state[tag_index] != _REPLIED:
            raise RuntimeError(
                f"tag {tag_index} acked in state {self._state_name(tag_index)}"
            )
        self._freeze(tag_index)
        self.state[tag_index] = _ASLEEP
        self._stale.discard(tag_index)

    def _commit_ack_bulk(self, tags_local: np.ndarray) -> None:
        """Batched poll commit: the given READY tags reply and are acked.

        Semantically ``for t in tags_local: state REPLIED then
        acknowledge(t)`` for tags the caller has *proved* reply alone and
        in order (the replica-batched executor's speculation commit);
        per-tag ``_freeze`` hooks are replaced by vectorised overrides.
        """
        self.state[tags_local] = _ASLEEP

    def revert_reply(self, tag_index: int) -> None:
        if self.state[tag_index] != _REPLIED:
            raise RuntimeError(
                f"tag {tag_index} reverted in state {self._state_name(tag_index)}"
            )
        self.state[tag_index] = _READY

    def force_wake(self, tag_index: int) -> None:
        # a woken tag slept through broadcasts, so its shared-state view
        # is stale until the next state-defining broadcast re-syncs it
        if self.state[tag_index] == _ASLEEP:
            self._stale.add(tag_index)
        self.state[tag_index] = _READY

    def asleep_indices(self) -> list[int]:
        return np.flatnonzero(self.state == _ASLEEP).tolist()

    # -- shared helpers -------------------------------------------------
    def _state_name(self, tag_index: int) -> str:
        return {0: "TagState.READY", 1: "TagState.REPLIED", 2: "TagState.ASLEEP"}[
            int(self.state[tag_index])
        ]

    def _freeze(self, tag_index: int) -> None:
        """Protocol hook: materialise shared state before a tag sleeps."""

    def _heard(self) -> np.ndarray:
        """Indices of tags that hear a broadcast: present and not asleep."""
        return np.flatnonzero(self.present & (self.state != _ASLEEP))

    def _reply_all(self, responders: list[int]) -> list[Reply]:
        out = []
        for t in responders:
            self.state[t] = _REPLIED
            out.append(Reply(t, int(self.payloads[t])))
        return out

    def _ready(self, t: int) -> bool:
        return bool(self.state[t] == _READY)


# ----------------------------------------------------------------------
class _HashArray(ArrayTagPopulation):
    """HPP / EHPP: per-round hash indices resolved through a lookup."""

    def __init__(self, tags: TagSet, payloads: np.ndarray, present: np.ndarray):
        super().__init__(tags, payloads, present)
        self.in_circle = np.ones(self.n, dtype=bool)
        self.index = np.full(self.n, -1, dtype=np.int64)  # -1 == None
        #: index value -> tags that drew it at the last round init; built
        #: lazily from ``_lookup_eligible`` on the first poll that needs
        #: it (the replica-batched fast path resolves polls without it)
        self._lookup: dict[int, list[int]] | None = {}
        self._lookup_eligible = np.empty(0, dtype=np.int64)
        #: lazy (drawers-per-index, unique-drawer) arrays over the same
        #: eligible set; resolves singleton candidates in O(1) without
        #: materialising the dict (collisions fall back to the dict)
        self._counts_cache: tuple[np.ndarray, np.ndarray] | None = None
        #: ``(seed, h, global_scope)`` of the applied round initiation.
        #: A re-delivered initiation of the *same* round (the lossy retry
        #: path re-sending context) recomputes identical draws over a
        #: subset of the original eligible set, so the index array and
        #: the lookup stay valid — only register state and stale
        #: tracking need re-syncing, which keeps retries O(1).
        self._applied: tuple | None = None
        self._handlers.update(
            circle_cmd=self._on_circle_cmd,
            round_init=self._on_round_init,
            poll_index=self._on_poll_index,
        )

    # -- broadcasts -----------------------------------------------------
    def _on_circle_cmd(self, msg: Message) -> list[Reply]:
        heard = self._heard()
        draw = hash_mod(self.words[heard], msg["seed"], msg["F"])
        self.in_circle[heard] = draw <= msg["f"]
        self.index[heard] = -1
        self._lookup = {}
        self._lookup_eligible = np.empty(0, dtype=np.int64)
        self._counts_cache = None
        self._applied = None
        self._stale.clear()  # every awake tag heard this and is in sync
        return []

    def _round_init_key(self, msg: Message) -> tuple:
        return (msg["seed"], msg["h"], bool(msg.get("global_scope", True)))

    def _on_round_init(self, msg: Message) -> list[Reply]:
        heard = self._heard()
        if self._applied == self._round_init_key(msg):
            self._stale.clear()
            self._round_reset(msg, heard)
            return []
        if msg.get("global_scope", True):
            eligible = heard
        else:
            eligible = heard[self.in_circle[heard]]
        draws = (
            hash_indices(self.words[eligible], msg["seed"], msg["h"])
            if eligible.size
            else np.empty(0, dtype=np.int64)
        )
        self._apply_round_state(msg, heard, eligible, draws)
        return []

    def _apply_round_state(
        self,
        msg: Message,
        heard: np.ndarray,
        eligible: np.ndarray,
        draws: np.ndarray,
    ) -> None:
        """Scatter one round initiation's draws into the state arrays.

        Shared by the per-population dispatch path and by
        :func:`batch_round_inits`, which computes ``draws`` for many
        replicas in one ragged hash call.
        """
        self.index[heard] = -1
        if eligible.size:
            self.index[eligible] = draws
        self._lookup = None
        self._lookup_eligible = eligible
        self._counts_cache = None
        self._applied = self._round_init_key(msg)
        self._stale.clear()
        self._round_reset(msg, heard)

    def _ensure_lookup(self) -> dict[int, list[int]]:
        if self._lookup is None:
            lookup: dict[int, list[int]] = {}
            eligible = self._lookup_eligible
            for t, v in zip(eligible.tolist(), self.index[eligible].tolist()):
                lookup.setdefault(v, []).append(t)
            self._lookup = lookup
        return self._lookup

    def _ensure_counts(self) -> tuple[np.ndarray, np.ndarray]:
        """Drawers-per-index and unique-drawer arrays for the round.

        ``counts[v]`` is how many eligible tags drew ``v`` and
        ``owner[v]`` the drawer when unique — enough to resolve every
        singleton index (the overwhelmingly common poll) in O(1) without
        the dict, and reused by the batched verdict computation.
        """
        if self._counts_cache is None:
            drawn = self.index[self._lookup_eligible]
            counts = (
                np.bincount(drawn) if drawn.size else np.zeros(0, dtype=np.int64)
            )
            owner = np.full(counts.size, -1, dtype=np.int64)
            owner[drawn] = self._lookup_eligible
            self._counts_cache = (counts, owner)
        return self._counts_cache

    def _candidates(self, value: int) -> tuple[int, ...] | list[int]:
        """Eligible tags whose round index equals ``value``."""
        if self._lookup is not None:
            return self._lookup.get(value, ())
        counts, owner = self._ensure_counts()
        if value >= counts.size or value < 0:
            return ()
        n_drawers = counts[value]
        if n_drawers == 0:
            return ()
        if n_drawers == 1:
            return (int(owner[value]),)
        return self._ensure_lookup().get(value, ())

    def _round_reset(self, msg: Message, heard: np.ndarray) -> None:
        """TPP hook: reset the register state at round initiation."""

    # -- polls ----------------------------------------------------------
    def _on_poll_index(self, msg: Message) -> list[Reply]:
        index = msg["index"]
        responders = [
            t
            for t in self._candidates(index)
            if self.state[t] == _READY and t not in self._stale
        ]
        # a woken tag answers with whatever index its register still
        # holds from the round it was read in (the stale-register reply
        # the lossy retry path must detect)
        for t in self._stale:
            if self.state[t] == _READY and self.index[t] == index:
                responders.append(t)
        responders.sort()
        return self._reply_all(responders)


class _TPPArray(_HashArray):
    """TPP: the per-tag h-bit register collapses to one cohort scalar."""

    def __init__(self, tags: TagSet, payloads: np.ndarray, present: np.ndarray):
        super().__init__(tags, payloads, present)
        self.a = np.zeros(self.n, dtype=np.int64)  # authoritative for stale tags
        self.h = np.zeros(self.n, dtype=np.int64)
        self._scalar_a = 0
        self._scalar_h = 0
        #: does any cohort tag hold an index?  A machine with ``_index is
        #: None`` skips segments *before* validating them, so an empty
        #: indexed cohort (e.g. the very first round_init was lost) must
        #: ignore segments rather than length-check them.
        self._cohort_indexed = False
        self._handlers["tpp_segment"] = self._on_tpp_segment

    def _on_circle_cmd(self, msg: Message) -> list[Reply]:
        out = super()._on_circle_cmd(msg)
        self._cohort_indexed = False
        return out

    def _round_reset(self, msg: Message, heard: np.ndarray) -> None:
        self.h[heard] = msg["h"]
        self.a[heard] = 0
        self._scalar_a = 0
        self._scalar_h = msg["h"]
        self._cohort_indexed = self._lookup_eligible.size > 0

    def _freeze(self, tag_index: int) -> None:
        # going to sleep freezes the register at its current (shared)
        # value; a later force_wake resumes from exactly this snapshot
        if tag_index not in self._stale:
            self.a[tag_index] = self._scalar_a

    def _commit_ack_bulk(self, tags_local: np.ndarray) -> None:
        # a committed tag slept right after its own segment landed, when
        # the shared register equalled its drawn index — the same value
        # the per-tag ``_freeze`` would have snapshotted
        self.a[tags_local] = self.index[tags_local]
        super()._commit_ack_bulk(tags_local)

    def _on_tpp_segment(self, msg: Message) -> list[Reply]:
        k = msg["length"]
        value = msg["value"]
        responders: list[int] = []
        if self._cohort_indexed:
            if not 0 <= k <= self._scalar_h:
                raise ValueError(f"segment length {k} outside [0, {self._scalar_h}]")
            keep = ((1 << self._scalar_h) - 1) ^ ((1 << k) - 1)
            self._scalar_a = (self._scalar_a & keep) | value
            responders = [
                t
                for t in self._candidates(self._scalar_a)
                if self.state[t] == _READY and t not in self._stale
            ]
        for t in self._stale:
            if self.state[t] == _ASLEEP or self.index[t] == -1:
                continue
            ht = int(self.h[t])
            if not 0 <= k <= ht:
                raise ValueError(f"segment length {k} outside [0, {ht}]")
            keep_t = ((1 << ht) - 1) ^ ((1 << k) - 1)
            self.a[t] = (int(self.a[t]) & keep_t) | value
            if self.state[t] == _READY and self.a[t] == self.index[t]:
                responders.append(t)
        responders.sort()
        return self._reply_all(responders)


# ----------------------------------------------------------------------
class _CPPArray(ArrayTagPopulation):
    """CPP / eCPP: exact-ID and Select + suffix matching."""

    def __init__(self, tags: TagSet, payloads: np.ndarray, present: np.ndarray,
                 id_bits: int = 96):
        super().__init__(tags, payloads, present)
        self.id_bits = id_bits
        self.selected = np.ones(self.n, dtype=bool)
        self._epc_to_tag = {tags.epc(i): i for i in range(self.n)}
        #: per suffix length: suffix value -> tags carrying it (static)
        self._suffix_lookup: dict[int, dict[int, list[int]]] = {}
        self._handlers.update(
            select=self._on_select,
            cpp_poll=self._on_cpp_poll,
            suffix_poll=self._on_suffix_poll,
        )

    # -- broadcasts -----------------------------------------------------
    def _on_select(self, msg: Message) -> list[Reply]:
        heard = self._heard()
        bits = msg["prefix_bits"]
        prefix = msg["prefix"]
        if self.id_bits != 96:  # exotic ID width: exact big-int fallback
            shift = self.id_bits - bits
            self.selected[heard] = [
                (self.tags.epc(t) >> shift) == prefix for t in heard.tolist()
            ]
            return []
        hi = self.tags.id_hi[heard]
        lo = self.tags.id_lo[heard]
        if bits == 0:
            match = np.full(heard.size, prefix == 0)
        elif bits <= 32:
            match = (hi >> np.uint64(32 - bits)) == np.uint64(prefix)
        else:
            # prefix spans into the low word: compare (hi, lo >> drop)
            drop = 96 - bits
            match = (hi == np.uint64(prefix >> (bits - 32))) & (
                (lo >> np.uint64(drop)) == np.uint64(prefix & ((1 << (bits - 32)) - 1))
            )
        self.selected[heard] = match
        return []

    # -- polls ----------------------------------------------------------
    def _on_cpp_poll(self, msg: Message) -> list[Reply]:
        t = self._epc_to_tag.get(msg["epc"])
        if t is None or not self.present[t] or self.state[t] != _READY:
            return []
        return self._reply_all([t])

    def _suffixes(self, bits: int) -> dict[int, list[int]]:
        cached = self._suffix_lookup.get(bits)
        if cached is None:
            cached = {}
            if bits <= 64:
                vals = (self.tags.id_lo & np.uint64((1 << bits) - 1)).tolist() \
                    if bits < 64 else self.tags.id_lo.tolist()
                for t, v in enumerate(vals):
                    cached.setdefault(int(v), []).append(t)
            else:  # suffix reaches into the high word: exact big-int path
                mask = (1 << bits) - 1
                for t in range(self.n):
                    cached.setdefault(self.tags.epc(t) & mask, []).append(t)
            self._suffix_lookup[bits] = cached
        return cached

    def _on_suffix_poll(self, msg: Message) -> list[Reply]:
        bits = msg["suffix_bits"]
        responders = [
            t
            for t in self._suffixes(bits).get(msg["suffix"], ())
            if self.present[t] and self.state[t] == _READY and self.selected[t]
        ]
        return self._reply_all(responders)


# ----------------------------------------------------------------------
class _CPArray(_CPPArray):
    """Coded Polling: batched pair-frame validation via the hash unit.

    The per-tag check of :func:`repro.core.coded_polling.validate_coded_partner`
    — recover the candidate partner's 80-bit ID top by XOR, recompute
    the 16 hash-unit check bits over the ordered pair — is evaluated for
    every hearing tag at once on (hi16, lo64) limb arrays, reproducing
    the 2⁻¹⁶ bystander false positives of the object machines exactly.
    """

    def __init__(self, tags: TagSet, payloads: np.ndarray, present: np.ndarray,
                 id_bits: int = 96):
        super().__init__(tags, payloads, present, id_bits=id_bits)
        # 80-bit ID tops (epc >> 16) as two uint64 limbs
        self._top_hi = tags.id_hi >> np.uint64(16)
        self._top_lo = ((tags.id_hi & np.uint64(0xFFFF)) << np.uint64(48)) | (
            tags.id_lo >> np.uint64(16)
        )
        self.rank = np.full(self.n, -1, dtype=np.int64)  # -1 == None
        self._rank_tags: dict[int, list[int]] = {}
        self._handlers.update(
            cp_frame=self._on_cp_frame,
            cp_slot=self._on_cp_slot,
        )

    def _on_cp_frame(self, msg: Message) -> list[Reply]:
        heard = self._heard()
        self.rank[heard] = -1
        self._rank_tags = {}
        self._stale.clear()  # every awake tag heard the frame
        v80 = msg["frame"] >> 16
        check = msg["frame"] & 0xFFFF
        if v80 == 0 or heard.size == 0:  # no valid pair recoverable
            return []
        own_hi, own_lo = self._top_hi[heard], self._top_lo[heard]
        cand_hi = own_hi ^ np.uint64((v80 >> 64) & 0xFFFF)
        cand_lo = own_lo ^ np.uint64(v80 & _M64)
        own_first = (own_hi < cand_hi) | ((own_hi == cand_hi) & (own_lo < cand_lo))
        lo_hi = np.where(own_first, own_hi, cand_hi)
        lo_lo = np.where(own_first, own_lo, cand_lo)
        hi_hi = np.where(own_first, cand_hi, own_hi)
        hi_lo = np.where(own_first, cand_lo, own_lo)
        # derive_seed(lo & m, lo >> 64, hi & m, hi >> 64), vectorised
        z = splitmix64(lo_lo ^ lo_hi)
        z = splitmix64(z ^ hi_lo)
        z = splitmix64(z ^ hi_hi)
        valid = (z & np.uint64(0xFFFF)) == np.uint64(check)
        valid &= self.state[heard] == _READY
        winners = heard[valid]
        ranks = np.where(own_first[valid], 0, 1)
        self.rank[winners] = ranks
        by_rank: dict[int, list[int]] = {}
        for t, r in zip(winners.tolist(), ranks.tolist()):
            by_rank.setdefault(r, []).append(t)
        self._rank_tags = by_rank
        return []

    def _on_cp_slot(self, msg: Message) -> list[Reply]:
        rank = msg["rank"]
        responders = [
            t
            for t in self._rank_tags.get(rank, ())
            if self.state[t] == _READY and t not in self._stale
        ]
        for t in self._stale:
            if self.state[t] == _READY and self.rank[t] == rank:
                responders.append(t)
        responders.sort()
        return self._reply_all(responders)


# ----------------------------------------------------------------------
class _MICArray(ArrayTagPopulation):
    """MIC: batched indicator-vector decoding, slot lookup per frame."""

    def __init__(self, tags: TagSet, payloads: np.ndarray, present: np.ndarray,
                 k: int = 7):
        super().__init__(tags, payloads, present)
        self.k = k
        self.claimed = np.full(self.n, -1, dtype=np.int64)
        self._slot_tags: dict[int, list[int]] = {}
        self._handlers.update(
            mic_frame=self._on_mic_frame,
            mic_slot=self._on_mic_slot,
        )

    def _on_mic_frame(self, msg: Message) -> list[Reply]:
        heard = self._heard()
        self.claimed[heard] = -1
        vector = np.asarray(msg["vector"], dtype=np.int64)
        f = int(vector.size)
        seed = msg["seed"]
        awake = heard[self.state[heard] == _READY]
        unclaimed = np.ones(awake.size, dtype=bool)
        claimed = np.full(awake.size, -1, dtype=np.int64)
        # claim the first ascending hash number whose slot carries it
        for j in range(1, self.k + 1):
            if not unclaimed.any():
                break
            slots = hash_mod(self.words[awake], derive_seed(seed, j), f)
            hit = unclaimed & (vector[slots] == j)
            claimed[hit] = slots[hit]
            unclaimed &= ~hit
        self.claimed[awake] = claimed
        by_slot: dict[int, list[int]] = {}
        for t, s in zip(awake.tolist(), claimed.tolist()):
            if s >= 0:
                by_slot.setdefault(s, []).append(t)
        self._slot_tags = by_slot
        return []

    def _on_mic_slot(self, msg: Message) -> list[Reply]:
        responders = [
            t
            for t in self._slot_tags.get(msg["slot"], ())
            if self.state[t] == _READY
        ]
        return self._reply_all(responders)


# ----------------------------------------------------------------------
def build_array_population(
    plan: InterrogationPlan,
    tags: TagSet,
    payloads: np.ndarray | None,
    present: np.ndarray,
) -> ArrayTagPopulation:
    """Instantiate the right array population for ``plan.protocol``."""
    n = len(tags)
    payloads = np.zeros(n, dtype=np.int64) if payloads is None else payloads
    name = plan.protocol
    if name in ("CPP", "eCPP"):
        return _CPPArray(tags, payloads, present,
                         id_bits=plan.meta.get("id_bits", 96))
    if name == "CP":
        return _CPArray(tags, payloads, present,
                        id_bits=plan.meta.get("id_bits", 96))
    if name in ("HPP", "EHPP"):
        return _HashArray(tags, payloads, present)
    if name == "TPP":
        return _TPPArray(tags, payloads, present)
    if name == "MIC":
        return _MICArray(tags, payloads, present, k=plan.meta.get("k", 7))
    raise NotImplementedError(
        f"no tag state machine for protocol {name!r} "
        "(the DES covers CPP/eCPP/CP/HPP/EHPP/TPP/MIC)"
    )


# ----------------------------------------------------------------------
# the replica axis: R populations on block-concatenated state buffers
# ----------------------------------------------------------------------
#: mutable per-tag state arrays re-sliced into the shared batch buffers;
#: attributes a population class lacks are simply skipped
_BATCH_STATE_ATTRS = (
    "state", "present", "payloads", "index", "in_circle",
    "a", "h", "selected", "rank", "claimed",
)


def build_batch_populations(
    plans: list[InterrogationPlan],
    tags_list: list[TagSet],
    payloads_list: list[np.ndarray | None],
    present_masks: list[np.ndarray],
) -> list[ArrayTagPopulation]:
    """R replica populations whose state lives in one block per attribute.

    Each replica gets a normal :func:`build_array_population` view, then
    every mutable per-tag array is re-sliced out of a block-concatenated
    buffer (replica ``r`` owns the contiguous segment at its offset).
    Views stay drop-in populations — per-replica dispatch, acknowledge
    and retry paths are untouched — while batched stages operate on the
    shared buffers without gathering.
    """
    pops = [
        build_array_population(plan, tags, payloads, present)
        for plan, tags, payloads, present in zip(
            plans, tags_list, payloads_list, present_masks
        )
    ]
    for name in _BATCH_STATE_ATTRS:
        owners = [p for p in pops if hasattr(p, name)]
        parts = [getattr(p, name) for p in owners]
        if not parts:
            continue
        block = (
            np.concatenate(parts)
            if len(parts) > 1
            else np.asarray(parts[0])
        )
        offset = 0
        for pop, part in zip(owners, parts):
            pop_slice = block[offset:offset + part.size]
            setattr(pop, name, pop_slice)
            offset += part.size
    return pops


def batch_round_inits(
    pop_msgs: list[tuple[ArrayTagPopulation, Message]],
) -> None:
    """Apply many replicas' delivered round initiations in one pass.

    The eligible sets of all replicas are hashed with a single
    :func:`~repro.hashing.universal.hash_indices_ragged` call, then each
    replica's draws are scattered through its own
    :meth:`_HashArray._apply_round_state` — bit-identical to dispatching
    each ``round_init`` message separately.
    """
    heards: list[np.ndarray] = []
    eligibles: list[np.ndarray] = []
    for pop, msg in pop_msgs:
        heard = pop._heard()
        if msg.get("global_scope", True):
            eligible = heard
        else:
            eligible = heard[pop.in_circle[heard]]
        heards.append(heard)
        eligibles.append(eligible)
    counts = np.fromiter(
        (e.size for e in eligibles), np.int64, len(eligibles)
    )
    words = [
        pop.words[e]
        for (pop, _), e in zip(pop_msgs, eligibles)
        if e.size
    ]
    if words:
        draws_flat = hash_indices_ragged(
            np.concatenate(words) if len(words) > 1 else words[0],
            [msg["seed"] for _, msg in pop_msgs],
            [msg["h"] for _, msg in pop_msgs],
            counts,
        )
    else:
        draws_flat = np.empty(0, dtype=np.int64)
    offsets = np.concatenate(([0], np.cumsum(counts)))
    for i, (pop, msg) in enumerate(pop_msgs):
        pop._apply_round_state(
            msg, heards[i], eligibles[i],
            draws_flat[offsets[i]:offsets[i + 1]],
        )
