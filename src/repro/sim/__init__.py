"""Discrete-event execution of the polling protocols.

The planners in :mod:`repro.core` are reader-side: they decide what the
reader transmits and *predict* which tag answers.  This package is the
other half of the validation story — it executes a plan on the air
against **independent tag state machines** (each tag computes its own
hashes, tracks its own TPP bit-register, decodes its own MIC indicator
vector) through a real event-queue engine, and checks that:

1. exactly one tag replies to every poll, and it is the predicted tag;
2. every tag is read exactly once;
3. the event clock agrees with :func:`repro.phy.link.plan_wire_time`.

Under a lossy channel (:class:`repro.phy.channel.BitErrorChannel`) the
executor additionally supports a retransmission policy for the polling
protocols, an extension beyond the paper's error-free setting.

Two interchangeable population backends execute the tag side (selected
with ``backend="machines" | "array"`` on :func:`execute_plan` /
:func:`simulate`): per-tag Python state machines (the legible oracle)
and vectorised numpy state arrays (:mod:`repro.sim.tagarray`) with
bit-identical counters at 10⁵-tag scale — see ``docs/SIMULATOR.md``.
On top of the array backend, :func:`execute_plan_batch` (also reachable
as ``execute_plan(..., replicas=R)``) replays R Monte-Carlo replicas in
one lockstep pass, bit-identical to R separate runs.
"""

from repro.sim.engine import Event, EventKind, EventQueue, Trace
from repro.sim.tag import (
    CPPTagMachine,
    CPTagMachine,
    HashTagMachine,
    MachinePopulation,
    MICTagMachine,
    TagMachine,
    TagState,
    TPPTagMachine,
)
from repro.sim.tagarray import ArrayTagPopulation, build_array_population
from repro.sim.executor import BACKENDS, DESResult, execute_plan, simulate
from repro.sim.batch import execute_plan_batch

__all__ = [
    "Event",
    "EventKind",
    "EventQueue",
    "Trace",
    "TagMachine",
    "TagState",
    "CPPTagMachine",
    "CPTagMachine",
    "HashTagMachine",
    "TPPTagMachine",
    "MICTagMachine",
    "MachinePopulation",
    "ArrayTagPopulation",
    "build_array_population",
    "BACKENDS",
    "DESResult",
    "execute_plan",
    "execute_plan_batch",
    "simulate",
]
