"""Named application scenarios used by the examples and integration tests.

Each scenario bundles a tag population generator with the payload length
the application collects per tag, mirroring the use cases the paper's
introduction motivates:

- *warehouse inventory*: presence checking — 1-bit replies;
- *cold chain*: sensor-augmented tags reporting temperature — 16/32-bit
  replies;
- *theft watch*: 1-bit presence polling of a known population, with a
  configurable fraction of tags missing (stolen).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.workloads.tagsets import TagSet, clustered_tagset, uniform_tagset

__all__ = [
    "Scenario",
    "warehouse_scenario",
    "cold_chain_scenario",
    "theft_watch_scenario",
]


@dataclass(frozen=True)
class Scenario:
    """A named workload: tag population + per-tag payload length."""

    name: str
    tags: TagSet
    info_bits: int
    #: indices of tags that are physically present (for missing-tag apps
    #: this may be a strict subset of the known population).
    present: np.ndarray
    description: str = ""

    def __post_init__(self) -> None:
        present = np.asarray(self.present, dtype=np.int64)
        if present.size and (present.min() < 0 or present.max() >= len(self.tags)):
            raise ValueError("present indices out of range")
        if self.info_bits < 0:
            raise ValueError("info_bits must be non-negative")
        object.__setattr__(self, "present", present)

    @property
    def n_known(self) -> int:
        return len(self.tags)

    @property
    def n_present(self) -> int:
        return int(self.present.size)

    @property
    def missing(self) -> np.ndarray:
        """Indices of known tags that are absent from the field."""
        mask = np.ones(len(self.tags), dtype=bool)
        mask[self.present] = False
        return np.flatnonzero(mask).astype(np.int64)

    def payloads(self, rng: np.random.Generator) -> np.ndarray:
        """Random per-tag payloads (the sensed information), int64."""
        high = 1 << min(self.info_bits, 62)
        return rng.integers(0, max(high, 1), size=len(self.tags), dtype=np.int64)


def _all_present(n: int) -> np.ndarray:
    return np.arange(n, dtype=np.int64)


def warehouse_scenario(
    n: int = 5000, seed: int = 7, info_bits: int = 1
) -> Scenario:
    """Inventory presence check over a clustered (per-SKU) population."""
    rng = np.random.default_rng(seed)
    tags = clustered_tagset(n, rng, n_categories=max(n // 500, 2))
    return Scenario(
        name="warehouse",
        tags=tags,
        info_bits=info_bits,
        present=_all_present(n),
        description="per-SKU clustered EPCs, 1-bit presence polling",
    )


def cold_chain_scenario(n: int = 2000, seed: int = 11, info_bits: int = 16) -> Scenario:
    """Sensor-augmented tags reporting a temperature word."""
    rng = np.random.default_rng(seed)
    tags = uniform_tagset(n, rng)
    return Scenario(
        name="cold-chain",
        tags=tags,
        info_bits=info_bits,
        present=_all_present(n),
        description=f"uniform EPCs, {info_bits}-bit sensor reading per tag",
    )


def theft_watch_scenario(
    n: int = 3000, missing_fraction: float = 0.02, seed: int = 23
) -> Scenario:
    """A known population with a fraction of tags stolen (absent)."""
    if not 0.0 <= missing_fraction <= 1.0:
        raise ValueError("missing_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    tags = uniform_tagset(n, rng)
    n_missing = int(round(n * missing_fraction))
    missing = rng.choice(n, size=n_missing, replace=False)
    mask = np.ones(n, dtype=bool)
    mask[missing] = False
    return Scenario(
        name="theft-watch",
        tags=tags,
        info_bits=1,
        present=np.flatnonzero(mask).astype(np.int64),
        description=f"{n_missing} of {n} tags missing; 1-bit presence polling",
    )
