"""Tag populations: 96-bit EPC identifiers and their hashing words.

A :class:`TagSet` stores the population in struct-of-arrays form:

- ``id_hi``: the top 32 bits of each 96-bit EPC (header + category),
- ``id_lo``: the low 64 bits (serial side),
- ``id_words``: a 64-bit fold of the full ID used by every hash draw.

Keeping identities in fixed-width numpy columns lets planners hash and
bucket 10^5 tags without a single per-tag Python object, following the
HPC guide's vectorisation idiom.  Full 96-bit Python ints are available
via :meth:`TagSet.epc` / :meth:`TagSet.epcs` when bit-exact IDs are
needed (CPP transmits them verbatim; the enhanced CPP masks their
prefix).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hashing.universal import splitmix64
from repro.phy.commands import EPC_ID_BITS

__all__ = [
    "TagSet",
    "uniform_tagset",
    "clustered_tagset",
    "sequential_tagset",
    "adversarial_tagset",
]

_HI_BITS = EPC_ID_BITS - 64  # 32 bits above the low word


@dataclass(frozen=True)
class TagSet:
    """An immutable population of RFID tags with 96-bit EPC identifiers."""

    id_hi: np.ndarray  # uint64, only low 32 bits used
    id_lo: np.ndarray  # uint64

    def __post_init__(self) -> None:
        hi = np.asarray(self.id_hi, dtype=np.uint64)
        lo = np.asarray(self.id_lo, dtype=np.uint64)
        if hi.shape != lo.shape or hi.ndim != 1:
            raise ValueError("id_hi and id_lo must be aligned 1-D arrays")
        if hi.size and int(hi.max()) >= (1 << _HI_BITS):
            raise ValueError(f"id_hi values must fit in {_HI_BITS} bits")
        object.__setattr__(self, "id_hi", hi)
        object.__setattr__(self, "id_lo", lo)
        # 64-bit identity word: an injective-mixing fold of (hi, lo).
        words = splitmix64(hi) ^ lo
        object.__setattr__(self, "_id_words", np.asarray(words, dtype=np.uint64))

    # ------------------------------------------------------------------
    @property
    def id_words(self) -> np.ndarray:
        """uint64 identity words consumed by the hash family."""
        return self._id_words  # type: ignore[attr-defined]

    #: export order for :meth:`columns` / :meth:`from_columns`
    _COLUMN_NAMES = ("id_hi", "id_lo", "id_words")

    def columns(self) -> dict[str, np.ndarray]:
        """The identity columns, suitable for shared-memory export.

        ``id_words`` is included even though it is derivable: attaching
        it costs nothing (zero-copy) while recomputing the splitmix64
        fold per worker per cell is exactly the work the dataplane
        removes.
        """
        return {
            "id_hi": self.id_hi,
            "id_lo": self.id_lo,
            "id_words": self.id_words,
        }

    @classmethod
    def from_columns(cls, columns: dict[str, np.ndarray]) -> "TagSet":
        """Rebuild a TagSet over externally owned buffers, zero-copy.

        Trusted constructor for columns produced by :meth:`columns`
        (e.g. attached from a shared-memory segment): skips validation
        and the identity-word fold, and keeps the arrays as handed in —
        including read-only views.  The result is bit-identical to the
        TagSet that exported the columns.
        """
        self = object.__new__(cls)
        object.__setattr__(self, "id_hi", columns["id_hi"])
        object.__setattr__(self, "id_lo", columns["id_lo"])
        object.__setattr__(self, "_id_words", columns["id_words"])
        return self

    def __len__(self) -> int:
        return int(self.id_hi.size)

    @property
    def n(self) -> int:
        return len(self)

    def epc(self, i: int) -> int:
        """The full 96-bit EPC of tag ``i`` as a Python int."""
        return (int(self.id_hi[i]) << 64) | int(self.id_lo[i])

    def epcs(self) -> list[int]:
        """All 96-bit EPCs (allocates Python ints; use sparingly)."""
        return [self.epc(i) for i in range(len(self))]

    def subset(self, indices: np.ndarray) -> "TagSet":
        """A new TagSet restricted to ``indices`` (global order preserved)."""
        idx = np.asarray(indices, dtype=np.int64)
        return TagSet(self.id_hi[idx], self.id_lo[idx])

    def category_prefix_bits(self) -> int:
        """Length of the common ID prefix shared by *all* tags.

        Used by the enhanced CPP variant (paper §II-B): tags of the same
        item class share a category prefix the reader can mask once.
        Returns 0 for an empty or single-bit-diverse population.
        """
        if len(self) <= 1:
            return EPC_ID_BITS
        hi_diff = int(np.bitwise_or.reduce(self.id_hi ^ self.id_hi[0]))
        if hi_diff:
            return _HI_BITS - hi_diff.bit_length()
        lo_diff = int(np.bitwise_or.reduce(self.id_lo ^ self.id_lo[0]))
        return _HI_BITS + (64 - lo_diff.bit_length() if lo_diff else 64)

    def assert_unique(self) -> None:
        """Raise if two tags share an EPC (IDs must be unique)."""
        if _duplicate_mask(self.id_hi, self.id_lo).any():
            raise ValueError("duplicate tag EPCs in population")


def _duplicate_mask(hi: np.ndarray, lo: np.ndarray) -> np.ndarray:
    """Mark rows whose (hi, lo) pair already occurred at a smaller index.

    A stable lexsort plus an adjacent-row compare; ~3x faster than
    ``np.unique(axis=0)``, which has to sort void-dtype row views.
    """
    if hi.size < 2:
        return np.zeros(hi.size, dtype=bool)
    order = np.lexsort((lo, hi))
    sh, sl = hi[order], lo[order]
    same_as_prev = np.concatenate(
        ([False], (sh[1:] == sh[:-1]) & (sl[1:] == sl[:-1]))
    )
    mask = np.zeros(hi.size, dtype=bool)
    # lexsort is stable, so within a duplicate group the smallest original
    # index sorts first and is the one kept
    mask[order] = same_as_prev
    return mask


def _draw_unique(rng: np.random.Generator, n: int, hi_gen, lo_gen) -> TagSet:
    """Draw tags, redrawing on the (unlikely) event of duplicates."""
    hi = np.asarray(hi_gen(n), dtype=np.uint64)
    lo = np.asarray(lo_gen(n), dtype=np.uint64)
    for _ in range(8):
        dup_mask = _duplicate_mask(hi, lo)
        n_dup = int(dup_mask.sum())
        if not n_dup:
            return TagSet(hi, lo)
        hi[dup_mask] = np.asarray(hi_gen(n_dup), dtype=np.uint64)
        lo[dup_mask] = np.asarray(lo_gen(n_dup), dtype=np.uint64)
    raise ValueError("duplicate tag EPCs in population")


def uniform_tagset(n: int, rng: np.random.Generator) -> TagSet:
    """``n`` tags with uniformly random 96-bit EPCs (the paper's default:

    "we consider a more general case without any assumption on the
    distribution of tag IDs").
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    return _draw_unique(
        rng,
        n,
        lambda k: rng.integers(0, 1 << _HI_BITS, size=k, dtype=np.uint64),
        lambda k: rng.integers(0, 1 << 63, size=k, dtype=np.uint64) * 2
        + rng.integers(0, 2, size=k, dtype=np.uint64),
    )


def clustered_tagset(
    n: int,
    rng: np.random.Generator,
    n_categories: int = 8,
    category_bits: int = 32,
) -> TagSet:
    """Tags clustered into categories sharing a ``category_bits`` prefix.

    Models item-class EPC allocation (same SKU ⇒ same category ID); the
    enhanced CPP exploits exactly this structure.
    """
    if not 1 <= category_bits <= _HI_BITS:
        raise ValueError(f"category_bits must be in [1, {_HI_BITS}]")
    if n_categories < 1:
        raise ValueError("n_categories must be positive")
    categories = rng.integers(0, 1 << category_bits, size=n_categories, dtype=np.uint64)
    shift = np.uint64(_HI_BITS - category_bits)
    low_hi_bits = _HI_BITS - category_bits

    def hi_gen(k: int) -> np.ndarray:
        assign = rng.integers(0, n_categories, size=k, dtype=np.int64)
        hi = categories[assign] << shift
        if low_hi_bits:
            hi = hi | rng.integers(0, 1 << low_hi_bits, size=k, dtype=np.uint64)
        return hi

    return _draw_unique(
        rng,
        n,
        hi_gen,
        lambda k: rng.integers(0, 1 << 63, size=k, dtype=np.uint64) * 2
        + rng.integers(0, 2, size=k, dtype=np.uint64),
    )


def sequential_tagset(n: int, base: int = 0x3000_1234_0000_0000_0000_0000) -> TagSet:
    """Tags with consecutive serial numbers starting at ``base``.

    A common factory-programmed layout; maximises shared ID prefixes and
    is the best case for prefix-masking CPP variants.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    serials = np.arange(n, dtype=np.uint64)
    base_hi = np.uint64((base >> 64) & ((1 << _HI_BITS) - 1))
    base_lo = base & 0xFFFFFFFFFFFFFFFF
    lo = (np.uint64(base_lo) + serials).astype(np.uint64)
    # carry into the high word on wraparound
    carry = lo < np.uint64(base_lo)
    hi = np.full(n, base_hi, dtype=np.uint64)
    hi[carry] += np.uint64(1)
    return TagSet(hi, lo)


def crc_embedded_tagset(n: int, rng: np.random.Generator) -> TagSet:
    """Tags whose EPC low 16 bits are the CRC-16 of the high 80 bits.

    Models C1G2 EPC memory carrying a StoredCRC: the Coded Polling
    baseline needs self-validating identifiers so a tag can recognise a
    coded pair frame with its CRC unit (see
    :mod:`repro.core.coded_polling`).
    """
    from repro.phy.crc import crc16  # local import: phy does not need workloads

    if n < 0:
        raise ValueError("n must be non-negative")
    base = uniform_tagset(n, rng)
    # keep the high 80 bits, replace the low 16 with the CRC of the rest
    hi = base.id_hi
    lo_high48 = base.id_lo >> np.uint64(16)
    lo = np.empty(n, dtype=np.uint64)
    for i in range(n):
        top80 = (int(hi[i]) << 48) | int(lo_high48[i])
        lo[i] = (int(lo_high48[i]) << 16) | crc16(top80, 80)
    tags = TagSet(hi, lo)
    tags.assert_unique()
    return tags


def adversarial_tagset(n: int, rng: np.random.Generator) -> TagSet:
    """IDs crafted to look pathological to naive (non-seeded) bucketing:

    all tags agree on their low 16 ID bits.  A protocol whose hash truly
    mixes the seed is unaffected — a regression guard exercised by the
    property tests.
    """
    lo_fixed = np.uint64(int(rng.integers(0, 1 << 16)))
    return _draw_unique(
        rng,
        n,
        lambda k: rng.integers(0, 1 << _HI_BITS, size=k, dtype=np.uint64),
        lambda k: (rng.integers(0, 1 << 47, size=k, dtype=np.uint64) << np.uint64(16))
        | lo_fixed,
    )
